// Quickstart: run a Rodinia kernel under MESA and compare against the CPU.
//
// This is the smallest end-to-end use of the public pipeline:
//
//  1. pick a kernel (a RISC-V program with a hot loop),
//  2. time it on the out-of-order CPU model,
//  3. run it under a MESA controller with an M-128 spatial accelerator,
//  4. check both executions computed identical results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
	"mesa/internal/mem"
)

func main() {
	k, err := kernels.ByName("hotspot")
	if err != nil {
		log.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	fmt.Printf("kernel %q: %s\n", k.Name, k.Description)

	// CPU baseline: functional machine + trace-driven OoO timing model.
	cpuMem := k.NewMemory(1)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	cpuRes, err := cpu.Time(cpu.DefaultBOOM(), prog, cpuMem, hier, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU: %.0f cycles at IPC %.2f\n", cpuRes.Cycles, cpuRes.IPC)

	// MESA: transparent detection, mapping, and offload. The OpenMP
	// annotation marks the loop parallelizable, unlocking tiling and
	// pipelining (the paper's §4.3 optimizations).
	be := accel.M128()
	opts := core.DefaultOptions(be)
	opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
	ctl := core.NewController(opts)

	mesaMem := k.NewMemory(1)
	report, _, err := ctl.Run(prog, mesaMem, mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Regions) == 0 {
		log.Fatalf("loop did not qualify: %v", report.Rejections)
	}
	rr := report.Regions[0]
	fmt.Printf("MESA: detected %d-instruction loop, mapped onto %s with %d tiles\n",
		rr.Region.Len(), be.Name, rr.Tiles)
	fmt.Printf("MESA: configuration took %d cycles (%.2f µs); %d iterations offloaded\n",
		rr.ConfigCost.Total(), rr.ConfigCost.Micros(be.ClockGHz), rr.Iterations)
	fmt.Printf("MESA: steady state %.3f cycles/iteration (%s-bound)\n", rr.FinalII, rr.Bound)
	fmt.Printf("hot-loop speedup vs single core: %.1fx\n", cpuRes.Cycles/rr.TotalCycles())

	// Correctness: both runs must produce the same memory image, and the
	// kernel's own verifier must accept the accelerated output.
	if !cpuMem.Equal(mesaMem) {
		log.Fatal("MISMATCH between CPU and MESA memory state")
	}
	if err := k.Verify(mesaMem); err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs verified: CPU and accelerator agree bit-for-bit")
}
