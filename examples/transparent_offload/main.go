// Transparent offload: accelerate code you wrote yourself, with zero
// accelerator-specific annotations.
//
// This example demonstrates MESA's headline property (the paper's M2): the
// program below is plain RISC-V assembly — a SAXPY-like loop compiled the
// way any compiler would emit it. Nothing in it mentions an accelerator.
// MESA's loop-stream detector finds the hot loop at runtime, checks criteria
// C1–C3, translates it to a dataflow graph, maps the graph onto the spatial
// array, and offloads — while the architecture remains fully transparent:
// the program's observable behaviour is identical.
//
// Run with: go run ./examples/transparent_offload
package main

import (
	"fmt"
	"log"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/core"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

const n = 4096

// Plain RISC-V assembly with a hot loop: y[i] = a*x[i] + y[i].
const source = `
	li   a0, 0x100000     # x
	li   a1, 0x200000     # y
	li   t0, 0
	li   t1, 4096
	li   t2, 0x80000
	flw  fs0, 0(t2)       # a
loop:
	flw  ft0, 0(a0)
	flw  ft1, 0(a1)
	fmadd.s ft2, ft0, fs0, ft1
	fsw  ft2, 0(a1)
	addi a0, a0, 4
	addi a1, a1, 4
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`

func main() {
	prog, err := asm.Assemble(0x1000, source)
	if err != nil {
		log.Fatal(err)
	}

	setup := func() *mem.Memory {
		m := mem.NewMemory()
		m.StoreF32(0x80000, 2.5)
		for i := uint32(0); i < n; i++ {
			m.StoreF32(0x100000+4*i, float32(i)*0.25)
			m.StoreF32(0x200000+4*i, float32(i)*0.5)
		}
		return m
	}

	// Reference: the program as the programmer understands it.
	refMem := setup()
	machine := sim.New(prog, refMem)
	if _, err := machine.Run(1_000_000); err != nil {
		log.Fatal(err)
	}

	// The same binary under a MESA-equipped system. No recompilation, no
	// pragmas: the loop is serial as far as MESA knows, so only the base
	// spatial mapping applies (no tiling without an OpenMP annotation).
	ctl := core.NewController(core.DefaultOptions(accel.M128()))
	mesaMem := setup()
	report, _, err := ctl.Run(prog, mesaMem, mem.MustHierarchy(mem.DefaultHierarchy()), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	if len(report.Regions) == 0 {
		log.Fatalf("loop not detected: %v", report.Rejections)
	}
	rr := report.Regions[0]
	fmt.Printf("detected loop [%#x, %#x): %d instructions, mix %d compute / %d memory\n",
		rr.Region.Start, rr.Region.End, rr.Region.Len(),
		rr.Region.Mix.Compute, rr.Region.Mix.Memory)
	fmt.Printf("offloaded %d of %d iterations after %d profiling iterations on the CPU\n",
		rr.Iterations, n, uint64(n)-rr.Iterations)
	fmt.Printf("per-iteration latency on the array: %.1f cycles\n", rr.FinalAvgIter)

	if !refMem.Equal(mesaMem) {
		log.Fatal("transparency violated: memory differs")
	}
	// Spot-check the SAXPY result.
	for _, i := range []uint32{0, 1, n / 2, n - 1} {
		x := float32(i) * 0.25
		y := float32(i) * 0.5
		want := x*2.5 + y
		if got := mesaMem.LoadF32(0x200000 + 4*i); got != want {
			log.Fatalf("y[%d] = %g, want %g", i, got, want)
		}
	}
	fmt.Println("transparent: accelerated execution is indistinguishable from the CPU's")
}
