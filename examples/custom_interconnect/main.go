// Custom interconnect: retarget MESA to a backend it has never seen.
//
// MESA is backend-agnostic by design (the paper's §3.3): the mapper needs
// only an operation-capability mask (F_op) and a function giving the
// point-to-point transfer latency between two PE coordinates. This example
// defines a 2D *torus* interconnect — wrap-around links in both dimensions,
// which none of the built-in models provide — plugs it into an accelerator
// configuration, and compares the resulting mapping quality against the
// paper's half-ring NoC and a plain mesh on the same kernel.
//
// Run with: go run ./examples/custom_interconnect
package main

import (
	"fmt"
	"log"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
	"mesa/internal/noc"
)

// Torus is a mesh with wrap-around links: the hop distance in each dimension
// is the minimum of going straight or wrapping around.
type Torus struct {
	Rows, Cols int
}

// Name implements noc.Interconnect.
func (t Torus) Name() string { return "torus" }

// Latency implements noc.Interconnect.
func (t Torus) Latency(a, b noc.Coord) int {
	dr := wrapDist(a.Row, b.Row, t.Rows)
	dc := wrapDist(a.Col, b.Col, t.Cols)
	return dr + dc
}

func wrapDist(x, y, size int) int {
	d := x - y
	if d < 0 {
		d = -d
	}
	// Edge (load/store) columns sit outside the wrapped region; fall back
	// to straight distance for them.
	if x < 0 || y < 0 || x >= size || y >= size {
		return d
	}
	if w := size - d; w < d {
		return w
	}
	return d
}

func main() {
	k, err := kernels.ByName("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}

	interconnects := []noc.Interconnect{
		noc.DefaultHalfRing(),
		noc.Mesh{},
		Torus{Rows: 16, Cols: 8},
	}

	fmt.Printf("mapping the %q loop body onto M-128 with three interconnects:\n\n", k.Name)
	fmt.Printf("%-10s %22s %18s\n", "network", "modeled iter latency", "critical path len")
	for _, ic := range interconnects {
		be := accel.M128()
		be.Interconnect = ic

		ldfg, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
		if err != nil {
			log.Fatal(err)
		}
		sdfg, stats, err := core.NewMapper(core.DefaultMapperOptions()).Map(ldfg, be)
		if err != nil {
			log.Fatalf("%s: %v", ic.Name(), err)
		}
		ev := sdfg.Evaluate()
		fmt.Printf("%-10s %19.1f c %18d   (bus fallbacks %d)\n",
			ic.Name(), ev.Total, len(ev.CriticalPath()), stats.BusFallbacks)
	}

	fmt.Println("\nThe same Algorithm 1 hardware produced all three mappings; only the")
	fmt.Println("latency function l(C) changed — the property that lets MESA target")
	fmt.Println("different spatial accelerator variants without redesign.")
}
