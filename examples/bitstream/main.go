// Bitstream: persist and reload an accelerator configuration.
//
// MESA keeps a configuration cache for loops it has already mapped (§4.3).
// This example shows what that cache actually stores: the serialized
// configuration bitstream of task T3. A kernel's hot loop is mapped once,
// encoded to bytes (as it would be kept in the cache or spilled to memory),
// then decoded into a fresh accelerator whose execution is bit-identical —
// without re-running detection, renaming, or Algorithm 1.
//
// Run with: go run ./examples/bitstream
package main

import (
	"fmt"
	"log"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

func main() {
	k, err := kernels.ByName("lavamd")
	if err != nil {
		log.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	be := accel.M128()

	// First encounter: translate and map (tasks T1 + T2).
	ldfg, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		log.Fatal(err)
	}
	sdfg, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(ldfg, be)
	if err != nil {
		log.Fatal(err)
	}

	// Task T3: serialize the configuration.
	bits, err := accel.EncodeConfig(ldfg.Graph, sdfg.Pos, ldfg.LoopBranch)
	if err != nil {
		log.Fatal(err)
	}
	raw := bits.Bytes()
	fmt.Printf("configuration: %d words (%d bytes) for a %d-instruction region\n",
		bits.Words(), len(raw), ldfg.Graph.Len())

	// Later re-encounter: reload the stream (e.g. from the config cache)
	// and configure a fresh accelerator from it alone.
	g, pos, loopBranch, err := accel.DecodeConfig(bits)
	if err != nil {
		log.Fatal(err)
	}

	memory := k.NewMemory(9)
	machine := sim.New(prog, memory)
	for machine.PC != loopStart {
		if err := machine.Step(); err != nil {
			log.Fatal(err)
		}
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	engine, err := accel.NewEngine(be, g, pos, loopBranch, memory, hier)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{})
	if err != nil {
		log.Fatal(err)
	}
	machine.PC = end
	if _, err := machine.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	if err := k.Verify(memory); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded accelerator ran %d iterations (%.1f cycles each); output verified\n",
		res.Iterations, res.AvgIterCycles)
}
