// Iterative optimization: watch MESA's feedback loop refine its model.
//
// MESA's key difference from ahead-of-time CGRA compilers (the paper's F3)
// is that it keeps optimizing after the first configuration: performance
// counters at the PEs and load/store entries measure real operation and
// transfer latencies, those measurements replace the model's estimates, the
// mapper re-runs, and the accelerator is reconfigured whenever the refined
// model predicts a win. This example drives the loop manually so each stage
// is visible.
//
// Run with: go run ./examples/iterative_opt
package main

import (
	"fmt"
	"log"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

func main() {
	k, err := kernels.ByName("cfd")
	if err != nil {
		log.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	be := accel.M128()

	// T1: build the LDFG with *estimated* node weights (constant op
	// latencies, optimistic L1-hit memory latency).
	ldfg, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDFG: %d nodes (%d memory), loop branch i%d\n",
		ldfg.Graph.Len(), len(ldfg.MemNodes()), ldfg.LoopBranch)

	// T2: initial spatial mapping from the estimates.
	mapper := core.NewMapper(core.DefaultMapperOptions())
	sdfg, _, err := mapper.Map(ldfg, be)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model predicts %.1f cycles/iteration\n", sdfg.Evaluate().Total)

	// Reach the loop entry with the architectural state the CPU would hand
	// over, then execute batches on the accelerator.
	memory := k.NewMemory(7)
	machine := sim.New(prog, memory)
	for machine.PC != loopStart {
		if err := machine.Step(); err != nil {
			log.Fatal(err)
		}
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	engine, err := accel.NewEngine(be, ldfg.Graph, sdfg.Pos, ldfg.LoopBranch, memory, hier)
	if err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= 4; round++ {
		res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{MaxIterations: 64})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: measured %.1f cycles/iteration (AMAT %.1f)\n",
			round, res.AvgIterCycles, engine.MeasuredAMAT())

		// Feedback: fold measured node and edge latencies into the model.
		nodes, edges, err := engine.Feedback(ldfg.Graph)
		if err != nil {
			log.Fatal(err)
		}
		refined := sdfg.Evaluate()
		fmt.Printf("         counters updated %d node weights, %d edge weights; "+
			"model now predicts %.1f cycles\n", nodes, edges, refined.Total)
		fmt.Printf("         critical path:")
		for _, id := range refined.CriticalPath() {
			fmt.Printf(" i%d(%v)", id, ldfg.Graph.Node(id).Inst.Op)
		}
		fmt.Println()

		// Remap against the refined weights and reconfigure if better.
		ldfg.Graph.ClearMeasurements()
		newSDFG, _, err := mapper.Map(ldfg, be)
		if err != nil {
			log.Fatal(err)
		}
		if pred := newSDFG.Evaluate().Total; pred < refined.Total*0.97 && newSDFG.DiffersFrom(sdfg) {
			fmt.Printf("         remapping adopted: predicted %.1f cycles — reconfiguring\n", pred)
			sdfg = newSDFG
			engine, err = accel.NewEngine(be, ldfg.Graph, sdfg.Pos, ldfg.LoopBranch, memory, hier)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Println("         remapping not adopted (no predicted win)")
		}
		if res.Done {
			break
		}
	}

	// Drain the remaining iterations and verify.
	for {
		res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{MaxIterations: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		if res.Done {
			break
		}
	}
	machine.PC = end
	if _, err := machine.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	if err := k.Verify(memory); err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel output verified after iterative optimization")
}
