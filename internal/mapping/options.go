package mapping

import "mesa/internal/accel"

// Options tunes Algorithm 1's hardware parameters and carries the optional
// inputs that refinement strategies consume. The zero values of the extra
// fields leave every strategy's greedy seed bit-identical to the paper's
// hardware mapper.
type Options struct {
	// WindowRows/WindowCols give the fixed candidate-matrix dimensions.
	// The paper's hardware uses a fixed 4×8 window positioned at the
	// predecessor with higher latency (§3.3).
	WindowRows, WindowCols int

	// FullSearchFallback widens the search to the whole grid when the fixed
	// window yields no valid candidate, before resorting to the bus.
	FullSearchFallback bool

	// DisableTieBreak turns off the free-neighborhood tie-breaking rule
	// (ties are then resolved by scan order). Used by the ablation study.
	DisableTieBreak bool

	// TimeShare is the time-multiplexing extension (the paper's stated
	// future work): the maximum number of instructions sharing one PE or
	// load/store entry. 1 (the default) is the paper's pure spatial
	// mapping; 2 lets regions up to twice the array size map, at the cost
	// of serialized execution on shared units.
	TimeShare int

	// Tiles is the tile count the placement will run under; refinement
	// strategies optimize PredictedII(Tiles). 0 is treated as 1.
	Tiles int

	// Seed seeds the deterministic PRNG of stochastic strategies
	// (greedy+anneal). The same seed always yields the same placement.
	Seed uint64

	// RefineSteps bounds the refinement loop of iterative strategies; 0
	// selects the strategy's default budget.
	RefineSteps int

	// Attrib is measured bottleneck feedback from a previous run of this
	// region (nil on the first mapping). The congestion strategy biases
	// placement away from the rows, units, and ports it names; the auto
	// meta-strategy selects its delegate from it; strategies that ignore it
	// must behave identically with or without it.
	Attrib *accel.Attribution

	// Sticky pins the auto meta-strategy to a previously chosen delegate
	// for this region (empty on the first mapping). Like Attrib it is
	// per-call mechanism state, not a placement-shaping knob: the
	// controller threads it between optimization rounds so a region's
	// escalation decision does not flip-flop, and it is deliberately
	// excluded from the memo-cache fingerprint.
	Sticky string
}

// DefaultOptions matches the paper's hardware implementation.
func DefaultOptions() Options {
	return Options{WindowRows: 4, WindowCols: 8, FullSearchFallback: true, TimeShare: 1}
}

// MapStats reports what the mapper did, feeding the imap FSM timing model
// (Figure 8) and the experiments.
type MapStats struct {
	Nodes             int
	PEPlacements      int
	LSUPlacements     int
	BusFallbacks      int
	FullSearches      int
	CandidatesScanned int
	// ReductionCycles accumulates the per-instruction reduction-tree depth
	// (the variable-duration imap stage).
	ReductionCycles int

	// Strategy is the registry name of the strategy that produced the
	// placement (empty when the greedy Mapper was driven directly).
	Strategy string

	// RefineSteps/RefineAccepted count refinement moves proposed and
	// accepted by iterative strategies (zero for single-pass strategies).
	// The modulo strategy reports II search attempts in RefineSteps and
	// whether the search converged on its lower bound in RefineAccepted.
	RefineSteps    int
	RefineAccepted int

	// ScheduledII is the initiation interval the modulo strategy's accepted
	// schedule targeted (zero for strategies that do not schedule).
	ScheduledII int

	// Delegate is the registry name of the strategy the auto meta-strategy
	// selected (empty for every other strategy).
	Delegate string
}
