package mapping_test

import (
	"math"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/sched"
)

// TestModuloAchievesLowerBound is the acceptance criterion for the modulo
// strategy: on recurrence-bound kernels (where max(ResMII, RecMII) is the
// recurrence), the schedule's PredictedII must equal that lower bound
// exactly — the placement adds no NoC or port pressure beyond it. At
// least one kernel in the suite must be recurrence-bound, or the check
// is vacuous and the test fails.
func TestModuloAchievesLowerBound(t *testing.T) {
	be := accel.M128()
	strat, err := mapping.ByName("modulo")
	if err != nil {
		t.Fatal(err)
	}
	recurrenceBound := 0
	achieved := 0
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		rec := sched.RecMII(l.Graph, func(n *dfg.Node) float64 { return n.OpLat }, true)
		memII := float64(len(l.MemNodes())) / float64(be.MemPorts)
		if rec < memII {
			continue // memory-port bound: the recurrence is not the floor
		}
		recurrenceBound++
		s, st, err := strat.Map(l, be, mapping.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got := s.PredictedII(1); math.Abs(got-rec) < 1e-9 {
			achieved++
		} else {
			t.Logf("%s: PredictedII %.3f vs recurrence bound %.3f (scheduled II %d)",
				k.Name, got, rec, st.ScheduledII)
		}
	}
	if recurrenceBound == 0 {
		t.Fatal("no recurrence-bound kernel in the suite; the bound check is vacuous")
	}
	if achieved == 0 {
		t.Errorf("modulo met its lower bound on 0 of %d recurrence-bound kernels", recurrenceBound)
	}
	t.Logf("modulo met max(ResMII,RecMII) on %d/%d recurrence-bound kernels", achieved, recurrenceBound)
}

// TestModuloNeverWorseThanGreedyPredicted pins the II search's value: the
// modulo schedule's PredictedII never exceeds greedy's on any kernel (it
// optimizes exactly that bound, and the bounds below it are placement-
// independent).
func TestModuloNeverWorseThanGreedyPredicted(t *testing.T) {
	be := accel.M128()
	greedy, _ := mapping.ByName("greedy")
	modulo, _ := mapping.ByName("modulo")
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		g, _, gerr := greedy.Map(l, be, mapping.DefaultOptions())
		m, _, merr := modulo.Map(l, be, mapping.DefaultOptions())
		if (gerr == nil) != (merr == nil) {
			t.Fatalf("%s: greedy err %v, modulo err %v", k.Name, gerr, merr)
		}
		if gerr != nil {
			continue
		}
		if mII, gII := m.PredictedII(1), g.PredictedII(1); mII > gII+1e-9 {
			t.Errorf("%s: modulo PredictedII %.3f worse than greedy %.3f", k.Name, mII, gII)
		}
	}
}

// TestModuloStatsShape pins the schedule bookkeeping: a converged search
// reports the II it accepted and how many intervals it tried.
func TestModuloStatsShape(t *testing.T) {
	be := accel.M128()
	strat, _ := mapping.ByName("modulo")
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	l := hotLoop(t, k)
	s, st, err := strat.Map(l, be, mapping.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "modulo" {
		t.Errorf("Strategy = %q", st.Strategy)
	}
	if st.ScheduledII < 1 {
		t.Errorf("ScheduledII = %d, want >= 1", st.ScheduledII)
	}
	if st.RefineSteps < 1 {
		t.Errorf("RefineSteps = %d, want >= 1 (II attempts)", st.RefineSteps)
	}
	if st.PEPlacements+st.LSUPlacements+st.BusFallbacks != st.Nodes {
		t.Errorf("placements %d+%d+%d do not cover %d nodes",
			st.PEPlacements, st.LSUPlacements, st.BusFallbacks, st.Nodes)
	}
	if s.PredictedII(1) < 1 {
		t.Errorf("PredictedII = %f", s.PredictedII(1))
	}
}

// TestAutoDelegation pins the selector policy: nil attribution and
// dependence/timeshare bounds stay on greedy, noc escalates to congestion,
// memports to modulo, and Options.Sticky overrides the selector.
func TestAutoDelegation(t *testing.T) {
	be := accel.M128()
	auto, err := mapping.ByName("auto")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	l := hotLoop(t, k)

	attribFor := func(bound string) *accel.Attribution {
		a := syntheticAttribution()
		a.Chosen = bound
		return a
	}
	cases := []struct {
		name     string
		attrib   *accel.Attribution
		sticky   string
		delegate string
	}{
		{name: "nil attribution", delegate: "greedy"},
		{name: "dependence", attrib: attribFor("dependence"), delegate: "greedy"},
		{name: "timeshare", attrib: attribFor("timeshare"), delegate: "greedy"},
		{name: "noc", attrib: attribFor("noc"), delegate: "congestion"},
		{name: "memports", attrib: attribFor("memports"), delegate: "modulo"},
		{name: "sticky wins", attrib: attribFor("noc"), sticky: "modulo", delegate: "modulo"},
	}
	for _, c := range cases {
		o := mapping.DefaultOptions()
		o.Attrib = c.attrib
		o.Sticky = c.sticky
		_, st, err := auto.Map(l, be, o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if st.Strategy != "auto" {
			t.Errorf("%s: Strategy = %q, want auto", c.name, st.Strategy)
		}
		if st.Delegate != c.delegate {
			t.Errorf("%s: Delegate = %q, want %q", c.name, st.Delegate, c.delegate)
		}
	}
}

// TestAutoWithoutFeedbackMatchesGreedy pins auto's cold-start cost: with no
// attribution, the placement is byte-identical to the greedy pass.
func TestAutoWithoutFeedbackMatchesGreedy(t *testing.T) {
	be := accel.M128()
	greedy, _ := mapping.ByName("greedy")
	auto, _ := mapping.ByName("auto")
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		g, _, gerr := greedy.Map(l, be, mapping.DefaultOptions())
		a, _, aerr := auto.Map(l, be, mapping.DefaultOptions())
		if (gerr == nil) != (aerr == nil) {
			t.Fatalf("%s: greedy err %v, auto err %v", k.Name, gerr, aerr)
		}
		if gerr != nil {
			continue
		}
		if g.String() != a.String() {
			t.Errorf("%s: auto without feedback diverged from greedy", k.Name)
		}
	}
}
