package mapping

import (
	"math"
	"math/rand/v2"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/noc"
	"mesa/internal/sched"
)

func init() { Register(moduloStrategy{}) }

const (
	// moduloMaxIITries bounds the II search: candidate intervals from
	// max(ResMII, RecMII) upward. Bounds other than the NoC pressure are
	// placement-independent, so the search almost always converges on the
	// first attempt; the extra attempts relax the per-slot lane and port
	// budgets when a congested placement misses the bound.
	moduloMaxIITries = 6

	// moduloTimeSearch bounds the issue-slot search per candidate, in
	// multiples of the II (every modulo slot repeats within one II, so a
	// single II of consecutive times already covers all residues; the
	// margin tolerates reservation-table fragmentation).
	moduloTimeSearch = 4

	// moduloNoCWeight penalizes candidate positions whose input edges must
	// ride the shared NoC instead of a neighbor link: each such edge raises
	// the placement's NoC II bound by 1/(lanes×rows), so steering consumers
	// adjacent to producers directly lowers PredictedII.
	moduloNoCWeight = 2.0

	// moduloLaneWeight penalizes NoC transfers landing in a modulo slot
	// whose destination-row lanes are already fully reserved: the transfer
	// would serialize behind the slot's earlier traffic in steady state.
	moduloLaneWeight = 4.0

	// moduloConflictWeight penalizes (unit, slot) reservations that could
	// not be satisfied within the bounded time search. The schedule stays
	// legal — unit occupancy is still capped by the time-share limit — but
	// the steady-state pipeline would stall, so such candidates lose to any
	// conflict-free one.
	moduloConflictWeight = 64.0

	// moduloStream is the PCG stream constant for seeded tie-breaks, fixed
	// so a given Options.Seed always reproduces the same placement.
	moduloStream = 0x6d6f6449 // "modI"

	moduloEps = 1e-9
)

// moduloStrategy is the software scheduling counterpart to the paper's
// hardware mapper: iterative modulo scheduling of the LDFG onto the PE
// grid, built on the same ResMII/RecMII bounds and reservation structures
// as the OpenCGRA baseline (internal/sched), but aware of the MESA
// geometry — memory nodes on the edge columns, FP capability masks, the
// half-ring NoC — and of routing cost: each node is placed at the
// position minimizing its issue time plus the NoC pressure its input
// edges would add. The II search runs from max(ResMII, RecMII) upward
// and keeps the best placement seen under PredictedII; seeded PCG
// tie-breaks make the whole search deterministic.
type moduloStrategy struct{}

func (moduloStrategy) Name() string { return "modulo" }

func (moduloStrategy) Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error) {
	if err := be.Validate(); err != nil {
		return nil, nil, err
	}
	share := o.TimeShare
	if share < 1 {
		share = 1
	}
	if err := validateCapacity(l, be, share); err != nil {
		return nil, nil, err
	}
	tiles := o.Tiles
	if tiles < 1 {
		tiles = 1
	}

	g := l.Graph
	mii := sched.MinII(
		sched.ResMII(len(l.ComputeNodes()), be.NumPEs(), len(l.MemNodes()), be.MemPorts),
		sched.RecMII(g, nodeOpLat, true))

	var (
		best      *SDFG
		bestStats *MapStats
		bestII    = math.Inf(1)
		bestTotal = math.Inf(1)
	)
	tries := 0
	converged := 0
	for ii := mii; ii < mii+moduloMaxIITries; ii++ {
		tries++
		s, stats := scheduleAtII(l, be, o, share, ii)
		achieved := s.PredictedII(1)
		total := s.Evaluate().Total
		if achieved < bestII-moduloEps ||
			(achieved < bestII+moduloEps && total < bestTotal-moduloEps) {
			best, bestStats, bestII, bestTotal = s, stats, achieved, total
			bestStats.ScheduledII = ii
		}
		if achieved <= float64(ii)+moduloEps {
			converged = 1
			break
		}
	}

	// The per-pass Completion values steered placement; refresh them from
	// the performance model of the placement actually returned.
	copy(best.Completion, best.Evaluate().Completion)

	bestStats.Strategy = "modulo"
	bestStats.RefineSteps = tries
	bestStats.RefineAccepted = converged
	return best, bestStats, nil
}

// scheduleAtII runs one modulo-scheduling pass at a fixed candidate II:
// nodes in program order, each assigned an (issue time, position) pair
// against a modulo reservation table over every spatial unit, a counted
// per-slot budget of memory ports, and per-row per-slot NoC lane budgets.
func scheduleAtII(l *LDFG, be *accel.Config, o Options, share, ii int) (*SDFG, *MapStats) {
	g := l.Graph
	s := newSDFG(l, be, share)
	stats := &MapStats{Nodes: g.Len()}
	m := NewMapper(o) // helper reuse: latencyAt, candidate enumeration

	units, unitOf := unitIndex(be)
	mrt := sched.NewTable(units, ii)
	memPorts := sched.NewBudget(ii, be.MemPorts)
	lanes := be.NoCLanesPerRow
	if lanes < 1 {
		lanes = 1
	}
	rowLanes := make([]*sched.Budget, be.Rows)
	for r := range rowLanes {
		rowLanes[r] = sched.NewBudget(ii, lanes)
	}

	rng := rand.New(rand.NewPCG(o.Seed, moduloStream))
	hr, isHalfRing := be.Interconnect.(noc.HalfRing)

	var scratch []dfg.Edge
	type choice struct {
		pos      noc.Coord
		issue    int
		slot     int
		overflow bool // no conflict-free slot found in the bounded search
	}
	var ties []choice

	// nocInputs counts the input edges of n that would ride the shared NoC
	// if n sat at c, mirroring PredictedII's edge accounting (control edges
	// ride the broadcast network and are free).
	nocInputs := func(n *dfg.Node, c noc.Coord) int {
		count := 0
		for _, e := range scratch {
			if e.Kind == dfg.DepCtrl || !s.Placed(e.From) {
				continue
			}
			switch {
			case s.OnBus(e.From) || c == BusCoord:
				count++
			case isHalfRing && hr.UsesNoC(s.Pos[e.From], c):
				count++
			}
		}
		return count
	}

	for i := range g.Nodes {
		n := &g.Nodes[i]
		id := dfg.NodeID(i)
		isMem := sched.IsMemOp(n)
		scratch = n.Parents(scratch[:0])

		var candidates []noc.Coord
		if isMem {
			candidates = m.edgeCandidates(s, unplacedCoord)
		} else {
			// The modulo scheduler is a software pass: it always searches
			// the whole grid rather than the hardware's fixed window.
			candidates = m.fullCandidates(s, n)
		}
		stats.CandidatesScanned += len(candidates)
		stats.ReductionCycles += ReductionDepth(len(candidates))

		if len(candidates) == 0 {
			s.place(id, BusCoord)
			stats.BusFallbacks++
			s.Completion[id] = m.latencyAt(s, n, BusCoord)
			continue
		}

		ties = ties[:0]
		bestScore := math.Inf(1)
		for _, c := range candidates {
			arrival := m.latencyAt(s, n, c) - n.OpLat
			t0 := int(math.Ceil(arrival - moduloEps))
			if t0 < 0 {
				t0 = 0
			}
			unit := unitOf(c)
			issue, overflow := -1, false
			for dt := 0; dt < moduloTimeSearch*ii; dt++ {
				t := t0 + dt
				slot := mrt.Slot(t)
				if isMem && !memPorts.Free(slot) {
					continue
				}
				if mrt.Busy(unit, slot) {
					continue
				}
				issue = t
				break
			}
			if issue < 0 {
				issue, overflow = t0, true
			}
			slot := mrt.Slot(issue)

			score := float64(issue) + n.OpLat
			nocN := nocInputs(n, c)
			score += moduloNoCWeight * float64(nocN)
			if nocN > 0 && c.Row >= 0 && c.Row < be.Rows && !rowLanes[c.Row].Free(slot) {
				score += moduloLaneWeight * float64(nocN)
			}
			if overflow {
				score += moduloConflictWeight
			}

			ch := choice{pos: c, issue: issue, slot: slot, overflow: overflow}
			switch {
			case score < bestScore-moduloEps:
				bestScore = score
				ties = append(ties[:0], ch)
			case score < bestScore+moduloEps:
				ties = append(ties, ch)
			}
		}

		pick := ties[0]
		if len(ties) > 1 && !o.DisableTieBreak {
			pick = ties[rng.IntN(len(ties))]
		}

		s.place(id, pick.pos)
		s.Completion[id] = float64(pick.issue) + n.OpLat
		if !pick.overflow {
			mrt.Reserve(unitOf(pick.pos), pick.slot)
		}
		if isMem {
			memPorts.Take(pick.slot)
			stats.LSUPlacements++
		} else {
			stats.PEPlacements++
		}
		if nocN := nocInputs(n, pick.pos); nocN > 0 && pick.pos.Row >= 0 && pick.pos.Row < be.Rows {
			for k := 0; k < nocN; k++ {
				rowLanes[pick.pos.Row].Take(pick.slot)
			}
		}
	}
	return s, stats
}

// unitIndex enumerates every spatial unit of the backend — the PE grid in
// row-major order followed by the edge load/store slots — and returns the
// count plus a total deterministic position→index function for the modulo
// reservation table.
func unitIndex(be *accel.Config) (int, func(noc.Coord) int) {
	idx := make(map[noc.Coord]int, be.NumPEs())
	next := 0
	for r := 0; r < be.Rows; r++ {
		for c := 0; c < be.Cols; c++ {
			idx[noc.Coord{Row: r, Col: c}] = next
			next++
		}
	}
	for r := 0; r < be.Rows; r++ {
		for _, col := range be.EdgeColumns() {
			pos := noc.Coord{Row: r, Col: col}
			if _, dup := idx[pos]; !dup {
				idx[pos] = next
				next++
			}
		}
	}
	return next, func(c noc.Coord) int { return idx[c] }
}
