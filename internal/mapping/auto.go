package mapping

import (
	"fmt"

	"mesa/internal/accel"
)

func init() { Register(autoStrategy{}) }

// autoStrategy selects a concrete strategy per mapping from the region's
// measured bottleneck attribution: greedy while the bound is the loop's
// own recurrence or compute (no placement change can beat it), congestion
// when the NoC is the bound (measured hot-spot penalties reroute the
// pressure), and modulo when the memory ports are the bound (the
// reservation-table schedule spreads port traffic across the II). The
// first mapping of a region has no measurement yet and uses greedy — the
// paper's hardware pass — so auto costs nothing until feedback says a
// remap would pay.
//
// The controller makes the decision sticky per region via Options.Sticky:
// once a region escalates, later optimization rounds keep the same
// delegate instead of flip-flopping on the shifted bottleneck the new
// placement exposes. Adoption remains guarded by the controller's usual
// predicted-improvement threshold and revert-on-regression check, so auto
// is never worse than greedy beyond one discarded trial round.
type autoStrategy struct{}

func (autoStrategy) Name() string { return "auto" }

func (autoStrategy) Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error) {
	name := o.Sticky
	if name == "" {
		name = selectDelegate(o.Attrib)
	}
	delegate, err := ByName(name)
	if err != nil {
		return nil, nil, fmt.Errorf("auto: delegate %q: %w", name, err)
	}
	s, stats, err := delegate.Map(l, be, o)
	if err != nil {
		return nil, nil, err
	}
	stats.Strategy = "auto"
	stats.Delegate = name
	return s, stats, nil
}

// selectDelegate maps a measured bottleneck to the strategy built to
// attack it. A nil attribution (first mapping, no measurement) and the
// placement-independent bounds keep the hardware greedy pass.
func selectDelegate(attrib *accel.Attribution) string {
	if attrib == nil {
		return "greedy"
	}
	switch attrib.Chosen {
	case "noc":
		return "congestion"
	case "memports":
		return "modulo"
	default:
		// dependence / timeshare: the bound is the loop itself, not the
		// placement; the cheap single-pass mapper is already optimal here.
		return "greedy"
	}
}
