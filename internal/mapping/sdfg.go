package mapping

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/noc"
	"mesa/internal/sched"
)

// BusCoord is the pseudo-position of instructions that failed spatial
// routing and fell back to the secondary bus (§3.3).
var BusCoord = noc.Coord{Row: -128, Col: -128}

// unplacedCoord marks a node not yet assigned by the mapper.
var unplacedCoord = noc.Coord{Row: -1 << 20, Col: -1 << 20}

// CtrlLat is the latency of enable-signal delivery over the accelerator's
// control network (branch predication).
const CtrlLat = 1

// nodeOpLat is the latency model the mapper charges throughout: each node
// costs its estimated operation latency.
func nodeOpLat(n *dfg.Node) float64 { return n.OpLat }

// LiveInLat is the latency for a live-in register value to reach a PE's
// input buffer at iteration start (values are written during configuration
// or carried between iterations).
const LiveInLat = 1

// SDFG is the Spatial Dataflow Graph: the same graph as the LDFG, indexed by
// 2D position (task T2's output). It binds each node to a virtual coordinate
// on the backend and serves as MESA's internal architecture model: the
// performance model evaluated over it predicts accelerator behaviour.
type SDFG struct {
	Backend *accel.Config
	LDFG    *LDFG

	// Pos maps each node to its virtual coordinate; memory nodes sit on the
	// edge columns, routed-out nodes on BusCoord.
	Pos []noc.Coord

	// Completion holds the mapper's latency estimate L_i per node at
	// placement time (the model that drove the placement decisions).
	Completion []float64

	// shareLimit is the maximum instructions per position (1 = pure spatial
	// mapping as in the paper; >1 enables the time-multiplexing extension).
	shareLimit int

	grid map[noc.Coord][]dfg.NodeID
}

func newSDFG(l *LDFG, be *accel.Config, shareLimit int) *SDFG {
	if shareLimit < 1 {
		shareLimit = 1
	}
	n := l.Graph.Len()
	s := &SDFG{
		Backend: be, LDFG: l,
		Pos:        make([]noc.Coord, n),
		Completion: make([]float64, n),
		shareLimit: shareLimit,
		grid:       make(map[noc.Coord][]dfg.NodeID, n),
	}
	for i := range s.Pos {
		s.Pos[i] = unplacedCoord
	}
	return s
}

// Placed reports whether node id has a position (grid, edge, or bus).
func (s *SDFG) Placed(id dfg.NodeID) bool { return s.Pos[id] != unplacedCoord }

// OnBus reports whether node id fell back to the secondary bus.
func (s *SDFG) OnBus(id dfg.NodeID) bool { return s.Pos[id] == BusCoord }

// At returns the first node occupying a coordinate, if any.
func (s *SDFG) At(c noc.Coord) (dfg.NodeID, bool) {
	ids := s.grid[c]
	if len(ids) == 0 {
		return dfg.None, false
	}
	return ids[0], true
}

// Occupants returns every node assigned to a coordinate (more than one only
// with the time-multiplexing extension).
func (s *SDFG) Occupants(c noc.Coord) []dfg.NodeID { return s.grid[c] }

// free reports whether the coordinate can accept another instruction
// (F_free; with time-sharing, up to shareLimit occupants).
func (s *SDFG) free(c noc.Coord) bool {
	return len(s.grid[c]) < s.shareLimit
}

func (s *SDFG) place(id dfg.NodeID, c noc.Coord) {
	s.Pos[id] = c
	if c != BusCoord {
		s.grid[c] = append(s.grid[c], id)
	}
}

// unplace removes a node from its position, deleting emptied grid entries so
// occupancy-derived figures (Utilization, String) stay exact. Refinement
// strategies use unplace/place pairs to explore alternative placements.
func (s *SDFG) unplace(id dfg.NodeID) {
	c := s.Pos[id]
	if c != BusCoord && c != unplacedCoord {
		ids := s.grid[c]
		for i, occ := range ids {
			if occ == id {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(s.grid, c)
		} else {
			s.grid[c] = ids
		}
	}
	s.Pos[id] = unplacedCoord
}

// EdgeLatency is the placement-derived transfer-latency model used to
// evaluate the SDFG (Equation 2's L_(i,j) terms). Bus-resident endpoints pay
// the fallback bus latency; pure control edges ride the control network.
func (s *SDFG) EdgeLatency(from, to dfg.NodeID) float64 {
	n := s.LDFG.Graph.Node(to)
	isData := n.PredDep == from || n.MemDep == from
	for k := 0; k < 3 && !isData; k++ {
		isData = n.Src[k] == from
	}
	if !isData && n.CtrlDep == from {
		return CtrlLat
	}
	if s.OnBus(from) || s.OnBus(to) {
		return float64(s.Backend.BusLat)
	}
	if !s.Placed(from) || !s.Placed(to) {
		return 0
	}
	return float64(s.Backend.Interconnect.Latency(s.Pos[from], s.Pos[to]))
}

// Evaluate runs the performance model over the mapped graph, honoring any
// measured edge latencies recorded on the graph.
func (s *SDFG) Evaluate() *dfg.Eval {
	return s.LDFG.Graph.Evaluate(s.EdgeLatency)
}

// PredictedII estimates the steady-state initiation interval of this
// placement under pipelining with the given tile count, from the model
// alone: the loop-carried recurrence, the memory-port bound, and the NoC
// bandwidth implied by which edges ride the shared network. The iterative
// optimizer uses it to judge whether a candidate remapping would improve
// throughput (for parallel loops) rather than just iteration latency, and
// the greedy+anneal strategy uses it as its refinement cost function.
func (s *SDFG) PredictedII(tiles int) float64 {
	if tiles < 1 {
		tiles = 1
	}
	g := s.LDFG.Graph
	be := s.Backend

	rec := sched.RecMII(g, nodeOpLat, true)
	ii := rec / float64(tiles)

	if m := float64(len(s.LDFG.MemNodes())) / float64(be.MemPorts); m > ii {
		ii = m
	}

	nocN := 0
	hr, isHalfRing := be.Interconnect.(noc.HalfRing)
	var scratch []dfg.Edge
	for i := range g.Nodes {
		scratch = g.Nodes[i].Parents(scratch[:0])
		for _, e := range scratch {
			if e.Kind == dfg.DepCtrl {
				continue
			}
			switch {
			case s.OnBus(e.From) || s.OnBus(e.To):
				nocN++
			case isHalfRing && hr.UsesNoC(s.Pos[e.From], s.Pos[e.To]):
				nocN++
			}
		}
	}
	lanes := be.NoCLanesPerRow
	if lanes < 1 {
		lanes = 1
	}
	if n := float64(nocN) / float64(lanes*be.Rows); n > ii {
		ii = n
	}

	if floor := 1.0 / float64(tiles); ii < floor {
		ii = floor
	}
	return ii
}

// DiffersFrom reports whether any node is placed differently than in o.
func (s *SDFG) DiffersFrom(o *SDFG) bool {
	if o == nil || len(s.Pos) != len(o.Pos) {
		return true
	}
	for i := range s.Pos {
		if s.Pos[i] != o.Pos[i] {
			return true
		}
	}
	return false
}

// Utilization reports the fraction of PEs occupied by compute nodes.
func (s *SDFG) Utilization() float64 {
	used := 0
	for c := range s.grid {
		if s.Backend.InBounds(c) {
			used++
		}
	}
	return float64(used) / float64(s.Backend.NumPEs())
}

// String renders the grid occupancy for debugging and the mesamap tool.
func (s *SDFG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s grid %dx%d, %d nodes\n", s.Backend.Name, s.Backend.Rows, s.Backend.Cols, len(s.Pos))
	for r := 0; r < s.Backend.Rows; r++ {
		// Left edge (load/store entries).
		writeCell := func(c noc.Coord) {
			switch ids := s.grid[c]; len(ids) {
			case 0:
				b.WriteString("   .")
			case 1:
				fmt.Fprintf(&b, "%4s", fmt.Sprintf("i%d", ids[0]))
			default:
				fmt.Fprintf(&b, "%4s", fmt.Sprintf("i%d+", ids[0]))
			}
		}
		writeCell(noc.Coord{Row: r, Col: -1})
		b.WriteString(" |")
		for c := 0; c < s.Backend.Cols; c++ {
			writeCell(noc.Coord{Row: r, Col: c})
		}
		b.WriteString(" |")
		writeCell(noc.Coord{Row: r, Col: s.Backend.Cols})
		b.WriteByte('\n')
	}
	var bus []string
	for id := range s.Pos {
		if s.OnBus(dfg.NodeID(id)) {
			bus = append(bus, fmt.Sprintf("i%d", id))
		}
	}
	if len(bus) > 0 {
		fmt.Fprintf(&b, "bus: %s\n", strings.Join(bus, " "))
	}
	return b.String()
}
