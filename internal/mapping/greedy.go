package mapping

import (
	"fmt"
	"math"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/noc"
)

func init() { Register(greedyStrategy{}) }

// greedyStrategy is the paper's hardware mapper behind the Strategy
// interface. It is the default and the seed for every refinement strategy.
type greedyStrategy struct{}

func (greedyStrategy) Name() string { return "greedy" }

func (greedyStrategy) Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error) {
	s, stats, err := NewMapper(o).Map(l, be)
	if err != nil {
		return nil, nil, err
	}
	stats.Strategy = "greedy"
	return s, stats, nil
}

// Mapper implements the paper's Algorithm 1: a single-pass, greedy,
// locally latency-minimizing assignment of LDFG nodes to backend positions.
type Mapper struct {
	opts Options

	// penalty, when non-nil, adds a bias to each candidate's score during
	// selection (the congestion strategy feeds measured hot-spot penalties
	// through it). It never alters the latency recorded in Completion, and a
	// nil penalty leaves the pass bit-identical to the paper's mapper.
	penalty func(noc.Coord) float64

	// probe, when non-nil, records the candidate-matrix population per node
	// (consumed by the imap FSM simulator).
	probe []int
}

// NewMapper returns a Mapper with the given options.
func NewMapper(opts Options) *Mapper { return &Mapper{opts: opts} }

func (m *Mapper) penaltyAt(c noc.Coord) float64 {
	if m.penalty == nil {
		return 0
	}
	return m.penalty(c)
}

// Map converts the LDFG into an SDFG on the backend. Nodes are visited in
// program order; each is placed at the candidate position minimizing its
// expected latency L_i = L_op + max(A_s1, A_s2) under the current partial
// placement, with ties broken toward positions with more free neighbors.
// Instructions that cannot be routed fall back to the secondary bus.
func (m *Mapper) Map(l *LDFG, be *accel.Config) (*SDFG, *MapStats, error) {
	if err := be.Validate(); err != nil {
		return nil, nil, err
	}
	share := m.opts.TimeShare
	if share < 1 {
		share = 1
	}
	g := l.Graph
	if err := validateCapacity(l, be, share); err != nil {
		return nil, nil, err
	}

	s := newSDFG(l, be, share)
	stats := &MapStats{Nodes: g.Len()}
	var scratch []dfg.Edge

	// seedCursor provides anchors for nodes with no placed parents; it
	// sweeps rows so independent chains spread across the grid.
	seedRow := 0

	for i := range g.Nodes {
		n := &g.Nodes[i]
		id := dfg.NodeID(i)

		// Arrival anchor: the placed parent with the highest completion
		// time — the input that will arrive last dominates L_i, so the
		// candidate window centers on it (the paper's key observation).
		anchor := unplacedCoord
		bestArrival := math.Inf(-1)
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			if e.Kind == dfg.DepCtrl {
				continue // control edges ride the broadcast network
			}
			if !s.Placed(e.From) || s.OnBus(e.From) {
				continue
			}
			if c := s.Completion[e.From]; c > bestArrival {
				bestArrival = c
				anchor = s.Pos[e.From]
			}
		}

		isMem := (n.Inst.IsLoad() || n.Inst.IsStore()) && !n.Fwd
		var candidates []noc.Coord
		if isMem {
			candidates = m.edgeCandidates(s, anchor)
		} else {
			if anchor == unplacedCoord {
				anchor = noc.Coord{Row: seedRow % be.Rows, Col: 0}
				seedRow += 2
			}
			candidates = m.windowCandidates(s, n, anchor)
			if len(candidates) == 0 && m.opts.FullSearchFallback {
				stats.FullSearches++
				candidates = m.fullCandidates(s, n)
			}
		}
		stats.CandidatesScanned += len(candidates)
		stats.ReductionCycles += ReductionDepth(len(candidates))
		if m.probe != nil {
			m.probe = append(m.probe, len(candidates))
		}

		if len(candidates) == 0 {
			s.place(id, BusCoord)
			stats.BusFallbacks++
			s.Completion[id] = m.latencyAt(s, n, BusCoord)
			continue
		}

		best := candidates[0]
		bestLat := m.latencyAt(s, n, best)
		bestScore := bestLat + m.penaltyAt(best)
		bestFree := m.freeNeighbors(s, best)
		for _, c := range candidates[1:] {
			lat := m.latencyAt(s, n, c)
			score := lat + m.penaltyAt(c)
			if score < bestScore {
				best, bestLat, bestScore, bestFree = c, lat, score, m.freeNeighbors(s, c)
				continue
			}
			if score == bestScore && !m.opts.DisableTieBreak {
				// Tie-break: prefer positions with more free entries in the
				// local neighborhood (keeps future placements viable).
				if f := m.freeNeighbors(s, c); f > bestFree {
					best, bestLat, bestFree = c, lat, f
				}
			}
		}
		s.place(id, best)
		s.Completion[id] = bestLat
		if isMem {
			stats.LSUPlacements++
		} else {
			stats.PEPlacements++
		}
	}
	return s, stats, nil
}

// validateCapacity checks the region against the backend's structural
// capacity under the given time-share factor: instruction count, load/store
// entries, PE count, and F_op (FP instructions can only occupy FP-capable
// PEs; an overflow is a structural routing failure — §4.1: a loop passing
// C1–C3 can still fail during mapping). Shared by every mapping strategy so
// a region rejected by one is rejected identically by all.
func validateCapacity(l *LDFG, be *accel.Config, share int) error {
	g := l.Graph
	if cap := share * be.MaxInstructions(); g.Len() > cap {
		return fmt.Errorf("mapping: region of %d instructions exceeds backend capacity %d", g.Len(), cap)
	}
	if n := len(l.MemNodes()); n > share*be.LSUEntries() {
		return fmt.Errorf("mapping: region needs %d load/store entries, backend has %d", n, share*be.LSUEntries())
	}
	if n := len(l.ComputeNodes()); n > share*be.NumPEs() {
		return fmt.Errorf("mapping: region needs %d PEs, backend has %d", n, share*be.NumPEs())
	}
	fpPEs := 0
	for r := 0; r < be.Rows; r++ {
		for c := 0; c < be.Cols; c++ {
			if be.HasFP(noc.Coord{Row: r, Col: c}) {
				fpPEs++
			}
		}
	}
	fpNodes := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.Fwd && !n.Inst.IsMem() && n.Inst.Op.IsFP() {
			fpNodes++
		}
	}
	if fpNodes > share*fpPEs {
		return fmt.Errorf("mapping: region needs %d FP PEs, backend has %d", fpNodes, share*fpPEs)
	}
	return nil
}

// latencyAt computes the expected completion time of node n if placed at c:
// Equation 1 over the already-placed parents.
func (m *Mapper) latencyAt(s *SDFG, n *dfg.Node, c noc.Coord) float64 {
	be := s.Backend
	arrival := 0.0
	consider := func(p dfg.NodeID, ctrl bool) {
		if p == dfg.None || !s.Placed(p) {
			return
		}
		var lat float64
		switch {
		case ctrl:
			lat = CtrlLat
		case s.OnBus(p) || c == BusCoord:
			lat = float64(be.BusLat)
		default:
			lat = float64(be.Interconnect.Latency(s.Pos[p], c))
		}
		if a := s.Completion[p] + lat; a > arrival {
			arrival = a
		}
	}
	for k := 0; k < 3; k++ {
		consider(n.Src[k], false)
	}
	hasLiveIn := false
	for k := 0; k < 3; k++ {
		if n.Src[k] == dfg.None && n.LiveIn[k] != isa.RegNone {
			hasLiveIn = true
		}
	}
	if hasLiveIn && arrival < LiveInLat {
		arrival = LiveInLat
	}
	consider(n.MemDep, false)
	consider(n.PredDep, false)
	consider(n.CtrlDep, true)
	// Node weight: the current model estimate, refined by measured
	// counters between optimization rounds.
	return arrival + n.OpLat
}

// windowCandidates generates the fixed candidate matrix C_i: a
// WindowRows×WindowCols region centered on the anchor, filtered by F_free
// and F_op (occupancy and capability masks).
func (m *Mapper) windowCandidates(s *SDFG, n *dfg.Node, anchor noc.Coord) []noc.Coord {
	be := s.Backend
	cls := ClassOf(n)
	r0 := anchor.Row - m.opts.WindowRows/2
	c0 := anchor.Col - m.opts.WindowCols/2
	// Clamp the window to the grid, preserving its size where possible.
	r0 = clamp(r0, 0, be.Rows-m.opts.WindowRows)
	c0 = clamp(c0, 0, be.Cols-m.opts.WindowCols)
	out := make([]noc.Coord, 0, m.opts.WindowRows*m.opts.WindowCols)
	for r := r0; r < r0+m.opts.WindowRows; r++ {
		for c := c0; c < c0+m.opts.WindowCols; c++ {
			pos := noc.Coord{Row: r, Col: c}
			if be.InBounds(pos) && be.Supports(pos, cls) && s.free(pos) {
				out = append(out, pos)
			}
		}
	}
	return out
}

// fullCandidates scans the whole grid (the widened search used before the
// bus fallback).
func (m *Mapper) fullCandidates(s *SDFG, n *dfg.Node) []noc.Coord {
	be := s.Backend
	cls := ClassOf(n)
	var out []noc.Coord
	for r := 0; r < be.Rows; r++ {
		for c := 0; c < be.Cols; c++ {
			pos := noc.Coord{Row: r, Col: c}
			if be.Supports(pos, cls) && s.free(pos) {
				out = append(out, pos)
			}
		}
	}
	return out
}

// edgeCandidates lists free load/store entry slots. When an anchor exists,
// slots are restricted to a band of rows around it (the LSU analog of the
// fixed window); otherwise all free slots are candidates.
func (m *Mapper) edgeCandidates(s *SDFG, anchor noc.Coord) []noc.Coord {
	be := s.Backend
	lo, hi := 0, be.Rows-1
	if anchor != unplacedCoord {
		lo = clamp(anchor.Row-m.opts.WindowRows, 0, be.Rows-1)
		hi = clamp(anchor.Row+m.opts.WindowRows, 0, be.Rows-1)
	}
	var out []noc.Coord
	for r := lo; r <= hi; r++ {
		for _, col := range be.EdgeColumns() {
			pos := noc.Coord{Row: r, Col: col}
			if s.free(pos) {
				out = append(out, pos)
			}
		}
	}
	if len(out) == 0 && anchor != unplacedCoord {
		// Band exhausted: widen to every edge slot.
		for r := 0; r < be.Rows; r++ {
			for _, col := range be.EdgeColumns() {
				pos := noc.Coord{Row: r, Col: col}
				if s.free(pos) {
					out = append(out, pos)
				}
			}
		}
	}
	return out
}

// freeNeighbors counts unoccupied valid positions among the 4-neighbors.
func (m *Mapper) freeNeighbors(s *SDFG, c noc.Coord) int {
	if c == BusCoord {
		return 0
	}
	count := 0
	for _, d := range [4]noc.Coord{{Row: -1}, {Row: 1}, {Col: -1}, {Col: 1}} {
		p := noc.Coord{Row: c.Row + d.Row, Col: c.Col + d.Col}
		if (s.Backend.InBounds(p) || s.Backend.IsEdge(p)) && s.free(p) {
			count++
		}
	}
	return count
}

// ReductionDepth models the reduction-tree stage of the imap FSM whose cycle
// count depends on the candidate-matrix dimensions (Figure 8).
func ReductionDepth(candidates int) int {
	if candidates <= 1 {
		return 1
	}
	d := 0
	for v := candidates - 1; v > 0; v >>= 1 {
		d++
	}
	return d
}

func clamp(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
