package mapping

import (
	"bytes"
	"fmt"
	"strings"

	"mesa/internal/accel"
)

// ImapState is a state of the instruction-mapping state machine (Figure 8).
// The FSM processes one LDFG entry at a time: read the instruction, generate
// the candidate matrix around the higher-latency predecessor, filter it by
// F_free ⊙ F_op, reduce the latency matrix to its argmin, and write the
// placement into the SDFG.
type ImapState uint8

// FSM states, in per-instruction order.
const (
	ImapIdle ImapState = iota
	ImapRead
	ImapCandidates
	ImapFilter
	ImapReduce
	ImapWrite
	ImapDone
)

var imapStateNames = [...]string{
	ImapIdle: "idle", ImapRead: "read", ImapCandidates: "cand",
	ImapFilter: "filter", ImapReduce: "reduce", ImapWrite: "write",
	ImapDone: "done",
}

func (s ImapState) String() string {
	if int(s) < len(imapStateNames) {
		return imapStateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ImapStep is one FSM dwell: a state held for Cycles cycles while mapping
// instruction Node.
type ImapStep struct {
	Node   int
	State  ImapState
	Cycles int
}

// ImapTrace is the cycle-by-cycle activity of the imap FSM for one region —
// the data behind Figure 8's timing diagram.
type ImapTrace struct {
	Steps       []ImapStep
	TotalCycles int
}

// SimulateImapFSM replays the mapping of an LDFG as the hardware state
// machine would execute it, using the actual per-instruction candidate
// counts the mapper visited. The FSM models the hardware's greedy mapper
// (Algorithm 1), so the replay always uses the greedy pass regardless of
// which Strategy produced the deployed placement. Every state is
// constant-duration except the reduction, whose depth is the log of the
// candidate-matrix population (the argmin reduction tree).
//
// Invariant (tested): the trace's total equals EstimateConfigCost's
// InstrMap component — the formula and the machine agree cycle-for-cycle.
func SimulateImapFSM(l *LDFG, be *accel.Config, opts Options) (*ImapTrace, *SDFG, error) {
	mapper := NewMapper(opts)
	sdfg, stats, err := mapper.Map(l, be)
	if err != nil {
		return nil, nil, err
	}

	// Re-derive per-node candidate counts by replaying placement decisions:
	// the mapper records only totals, so walk nodes in order and recompute
	// each window against the evolving occupancy. To avoid duplicating the
	// mapper, rerun it with a per-node probe.
	perNode, err := mapper.candidateCounts(l, be)
	if err != nil {
		return nil, nil, err
	}

	tr := &ImapTrace{}
	add := func(node int, st ImapState, cycles int) {
		tr.Steps = append(tr.Steps, ImapStep{Node: node, State: st, Cycles: cycles})
		tr.TotalCycles += cycles
	}
	for i, cand := range perNode {
		add(i, ImapRead, 1)
		add(i, ImapCandidates, 1)
		add(i, ImapFilter, 1)
		add(i, ImapReduce, ReductionDepth(cand))
		add(i, ImapWrite, 1)
	}

	// Cross-check against the aggregate statistics.
	if got := sumReduce(tr); got != stats.ReductionCycles {
		return nil, nil, fmt.Errorf("mapping: FSM reduction cycles %d != mapper stats %d", got, stats.ReductionCycles)
	}
	return tr, sdfg, nil
}

func sumReduce(tr *ImapTrace) int {
	n := 0
	for _, s := range tr.Steps {
		if s.State == ImapReduce {
			n += s.Cycles
		}
	}
	return n
}

// candidateCounts reruns the mapping, recording the candidate-matrix
// population per node (the variable input to the reduce stage).
func (m *Mapper) candidateCounts(l *LDFG, be *accel.Config) ([]int, error) {
	probe := NewMapper(m.opts)
	probe.penalty = m.penalty
	probe.probe = make([]int, 0, l.Graph.Len())
	if _, _, err := probe.Map(l, be); err != nil {
		return nil, err
	}
	return probe.probe, nil
}

// RenderTimingDiagram renders the FSM trace in the style of Figure 8: one
// row per instruction, one column per cycle, letters naming the active
// state (r=read, c=candidates, f=filter, R=reduce, w=write).
func (tr *ImapTrace) RenderTimingDiagram(maxNodes int) string {
	letters := map[ImapState][]byte{
		ImapRead: {'r'}, ImapCandidates: {'c'}, ImapFilter: {'f'},
		ImapReduce: {'R'}, ImapWrite: {'w'},
	}
	var b strings.Builder
	cycle := 0
	row := -1
	var line []byte
	flush := func() {
		if row >= 0 && row < maxNodes {
			fmt.Fprintf(&b, "i%-3d %s\n", row, line)
		}
	}
	for _, st := range tr.Steps {
		if st.Node != row {
			flush()
			row = st.Node
			line = bytes.Repeat([]byte{' '}, cycle)
		}
		line = append(line, bytes.Repeat(letters[st.State], st.Cycles)...)
		cycle += st.Cycles
	}
	flush()
	if tr.Steps != nil && tr.Steps[len(tr.Steps)-1].Node >= maxNodes {
		fmt.Fprintf(&b, "... (%d more instructions)\n", tr.Steps[len(tr.Steps)-1].Node+1-maxNodes)
	}
	fmt.Fprintf(&b, "total: %d cycles\n", tr.TotalCycles)
	return b.String()
}
