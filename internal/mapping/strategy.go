// Package mapping holds MESA's placement machinery: the Logical and Spatial
// Dataflow Graph types, the imap FSM timing model, and a registry of
// pluggable mapping strategies behind the Strategy interface.
//
// The paper's Algorithm 1 (the hardware's single-pass greedy mapper) is the
// default "greedy" strategy; "greedy+anneal" refines its placement with a
// bounded, deterministically seeded simulated anneal over the predicted
// initiation interval; "congestion" re-runs the greedy pass with candidate
// scores biased away from the hot rows, units, and ports named by a measured
// accel.Attribution report — closing the paper's measure → re-optimize loop
// with an actual re-placement rather than just tile scaling.
package mapping

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mesa/internal/accel"
)

// Strategy maps a Logical DFG onto a backend. Implementations must be
// stateless and safe for concurrent use (the experiment sweeps fan mapping
// out over a worker pool), and deterministic: identical inputs must produce
// byte-identical SDFGs and identical MapStats.
type Strategy interface {
	// Name returns the registry name of the strategy.
	Name() string
	// Map places every node of l on be. Options carries Algorithm 1's
	// hardware parameters plus optional measured feedback (Options.Attrib)
	// for attribution-driven strategies.
	Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
)

// Register adds a strategy to the registry. Registering a duplicate name
// panics: strategy names key result caches and CLI flags, so a silent
// replacement would corrupt both.
func Register(s Strategy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[s.Name()]; ok {
		panic(fmt.Sprintf("mapping: strategy %q registered twice", s.Name()))
	}
	registry[s.Name()] = s
}

// ByName looks a strategy up by its registry name. The error lists every
// available strategy, so CLI surfaces can relay it verbatim.
func ByName(name string) (Strategy, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("mapping: unknown strategy %q (available: %s)",
		name, strings.Join(namesLocked(), ", "))
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the paper's hardware mapper (Algorithm 1, "greedy") — the
// strategy every layer uses when none is configured, preserving pre-registry
// behaviour bit for bit.
func Default() Strategy { return greedyStrategy{} }
