package mapping

import (
	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// LDFG is the Logical Dataflow Graph: the DFG stored in program order
// (analogous to a reorder buffer), produced by task T1 of the paper. It
// carries the region's loop-control information alongside the graph.
// Construction (renaming, shadow tracking, store-to-load forwarding) lives in
// internal/core; this package consumes the finished graph.
type LDFG struct {
	Graph *dfg.Graph

	// LoopBranch is the node of the loop-closing backward branch, or
	// dfg.None when the region has none (straight-line region).
	LoopBranch dfg.NodeID

	// Inductions lists nodes of the form rd = rd + imm where rd is live-in:
	// the loop induction updates, used for iteration-count estimation and
	// next-iteration prefetching (§4.2).
	Inductions []dfg.NodeID

	// Forwarded counts loads satisfied by static store-to-load forwarding.
	Forwarded int
}

// MemNodes returns the graph's memory nodes (loads/stores needing LSU
// entries) in program order, excluding statically forwarded loads.
func (l *LDFG) MemNodes() []dfg.NodeID {
	var out []dfg.NodeID
	for i := range l.Graph.Nodes {
		n := &l.Graph.Nodes[i]
		if (n.Inst.IsLoad() || n.Inst.IsStore()) && !n.Fwd {
			out = append(out, n.ID)
		}
	}
	return out
}

// ComputeNodes returns nodes that need a PE: everything except LSU-resident
// memory nodes. Forwarded loads behave as move PEs.
func (l *LDFG) ComputeNodes() []dfg.NodeID {
	var out []dfg.NodeID
	for i := range l.Graph.Nodes {
		n := &l.Graph.Nodes[i]
		if (n.Inst.IsLoad() || n.Inst.IsStore()) && !n.Fwd {
			continue
		}
		out = append(out, dfg.NodeID(i))
	}
	return out
}

// ClassOf returns the placement class of a node: forwarded loads occupy
// ordinary PEs as pass-through moves.
func ClassOf(n *dfg.Node) isa.Class {
	if n.Fwd {
		return isa.ClassALU
	}
	return n.Inst.Class()
}
