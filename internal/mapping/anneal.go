package mapping

import (
	"math"
	"math/rand/v2"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/noc"
)

func init() { Register(annealStrategy{}) }

const (
	// defaultAnnealSteps is the refinement budget when Options.RefineSteps
	// is zero: enough to explore the M-128-scale grids the paper targets
	// while keeping a full kernel sweep interactive.
	defaultAnnealSteps = 600

	// annealT0/annealTEnd bracket the geometric cooling schedule, in units
	// of the cost function (cycles, with the II term weighted below).
	annealT0   = 4.0
	annealTEnd = 0.05

	// annealIIWeight makes the cost lexicographic in practice: one unit of
	// predicted II outweighs any plausible iteration-latency delta, so the
	// anneal first minimizes throughput (PredictedII) and only then the
	// modeled iteration latency.
	annealIIWeight = 1000.0

	// annealStream is the PCG stream constant, fixed so a given
	// Options.Seed always reproduces the same placement.
	annealStream = 0x6d657361 // "mesa"
)

// annealStrategy refines the greedy placement with a bounded simulated
// anneal: random relocations and swaps of placed nodes, accepted by the
// Metropolis rule over PredictedII (weighted) plus modeled iteration
// latency. The best placement ever seen is returned, so the result is never
// worse than the greedy seed under the cost function, and the seeded PCG
// makes the whole refinement deterministic.
type annealStrategy struct{}

func (annealStrategy) Name() string { return "greedy+anneal" }

func (annealStrategy) Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error) {
	cur, stats, err := NewMapper(o).Map(l, be)
	if err != nil {
		return nil, nil, err
	}
	steps := o.RefineSteps
	if steps <= 0 {
		steps = defaultAnnealSteps
	}
	tiles := o.Tiles
	if tiles < 1 {
		tiles = 1
	}
	cost := func(s *SDFG) float64 {
		return s.PredictedII(tiles)*annealIIWeight + s.Evaluate().Total
	}

	rng := rand.New(rand.NewPCG(o.Seed, annealStream))
	curCost := cost(cur)
	best, bestCost := cur.clone(), curCost
	accepted := 0
	movable := movableNodes(cur)
	temp := annealT0
	alpha := math.Pow(annealTEnd/annealT0, 1/float64(steps))
	if len(movable) > 0 {
		for i := 0; i < steps; i++ {
			undo, ok := proposeMove(rng, cur, movable)
			temp *= alpha
			if !ok {
				continue
			}
			c := cost(cur)
			if c <= curCost || rng.Float64() < math.Exp((curCost-c)/temp) {
				curCost = c
				accepted++
				if c < bestCost {
					best, bestCost = cur.clone(), c
				}
			} else {
				undo()
			}
		}
	}

	// The greedy Completion estimates described the seed placement; refresh
	// them from the performance model of the placement actually returned.
	copy(best.Completion, best.Evaluate().Completion)

	stats.Strategy = "greedy+anneal"
	stats.RefineSteps = steps
	stats.RefineAccepted = accepted
	return best, stats, nil
}

// movableNodes lists the nodes the anneal may touch: everything placed on a
// spatial unit. Bus-resident nodes stay on the bus (the greedy pass already
// proved no spatial slot was reachable for them).
func movableNodes(s *SDFG) []dfg.NodeID {
	var out []dfg.NodeID
	for i := range s.Pos {
		id := dfg.NodeID(i)
		if s.Placed(id) && !s.OnBus(id) {
			out = append(out, id)
		}
	}
	return out
}

// proposeMove applies one random relocation or swap to s and returns an undo
// closure. ok is false when the sampled move was inapplicable (no free
// target, incompatible classes); the caller just skips that step, keeping
// the proposal sequence deterministic.
func proposeMove(rng *rand.Rand, s *SDFG, movable []dfg.NodeID) (undo func(), ok bool) {
	id := movable[rng.IntN(len(movable))]
	n := s.LDFG.Graph.Node(id)
	isMem := (n.Inst.IsLoad() || n.Inst.IsStore()) && !n.Fwd

	if rng.IntN(2) == 0 {
		targets := relocationTargets(s, n, isMem)
		if len(targets) == 0 {
			return nil, false
		}
		t := targets[rng.IntN(len(targets))]
		old := s.Pos[id]
		s.unplace(id)
		s.place(id, t)
		return func() {
			s.unplace(id)
			s.place(id, old)
		}, true
	}

	other := movable[rng.IntN(len(movable))]
	if other == id {
		return nil, false
	}
	no := s.LDFG.Graph.Node(other)
	otherMem := (no.Inst.IsLoad() || no.Inst.IsStore()) && !no.Fwd
	if isMem != otherMem {
		return nil, false // LSU slots and PEs are disjoint resources
	}
	pa, pb := s.Pos[id], s.Pos[other]
	if pa == pb {
		return nil, false // same time-shared unit: swapping is a no-op
	}
	if !isMem && (!s.Backend.Supports(pb, ClassOf(n)) || !s.Backend.Supports(pa, ClassOf(no))) {
		return nil, false
	}
	s.unplace(id)
	s.unplace(other)
	s.place(id, pb)
	s.place(other, pa)
	return func() {
		s.unplace(id)
		s.unplace(other)
		s.place(id, pa)
		s.place(other, pb)
	}, true
}

// relocationTargets lists every legal destination for node n other than its
// current unit, in deterministic scan order: free capable grid positions for
// compute nodes, free edge slots for memory nodes.
func relocationTargets(s *SDFG, n *dfg.Node, isMem bool) []noc.Coord {
	be := s.Backend
	cur := s.Pos[n.ID]
	var out []noc.Coord
	if isMem {
		for r := 0; r < be.Rows; r++ {
			for _, col := range be.EdgeColumns() {
				pos := noc.Coord{Row: r, Col: col}
				if pos != cur && s.free(pos) {
					out = append(out, pos)
				}
			}
		}
		return out
	}
	cls := ClassOf(n)
	for r := 0; r < be.Rows; r++ {
		for c := 0; c < be.Cols; c++ {
			pos := noc.Coord{Row: r, Col: c}
			if pos != cur && be.Supports(pos, cls) && s.free(pos) {
				out = append(out, pos)
			}
		}
	}
	return out
}

// clone deep-copies the placement (positions, estimates, and occupancy
// grid); the backend and graph are shared, immutable inputs.
func (s *SDFG) clone() *SDFG {
	c := &SDFG{
		Backend:    s.Backend,
		LDFG:       s.LDFG,
		Pos:        append([]noc.Coord(nil), s.Pos...),
		Completion: append([]float64(nil), s.Completion...),
		shareLimit: s.shareLimit,
		grid:       make(map[noc.Coord][]dfg.NodeID, len(s.grid)),
	}
	for k, v := range s.grid {
		c.grid[k] = append([]dfg.NodeID(nil), v...)
	}
	return c
}
