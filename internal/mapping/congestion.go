package mapping

import (
	"mesa/internal/accel"
	"mesa/internal/noc"
)

func init() { Register(congestionStrategy{}) }

const (
	// congestionRowWeight converts a row's measured NoC lane occupancy
	// (0..1) into equivalent latency cycles during candidate scoring.
	congestionRowWeight = 2.0

	// congestionUnitWeight does the same for a unit's firing utilization,
	// scaled up further when the memory ports spent a large share of active
	// cycles stalling (port pressure raises the price of piling more work
	// onto busy units, LSU slots included).
	congestionUnitWeight = 1.0
)

// congestionStrategy re-runs the greedy pass with candidate scores biased
// away from the hot rows, units, and ports named by a measured
// accel.Attribution report — the paper's measure → re-optimize loop closed
// with an actual re-placement instead of just tile scaling. Without feedback
// (Options.Attrib nil) it degenerates to the plain greedy pass, so first
// mappings are bit-identical to the default strategy.
type congestionStrategy struct{}

func (congestionStrategy) Name() string { return "congestion" }

func (congestionStrategy) Map(l *LDFG, be *accel.Config, o Options) (*SDFG, *MapStats, error) {
	m := NewMapper(o)
	m.penalty = congestionPenalty(o.Attrib)
	s, stats, err := m.Map(l, be)
	if err != nil {
		return nil, nil, err
	}
	stats.Strategy = "congestion"
	return s, stats, nil
}

// congestionPenalty turns an attribution report into a per-coordinate score
// bias. Rows pay their NoC lane occupancy, units pay their firing
// utilization, and the unit term is scaled by the measured port pressure
// (total port-wait cycles over active cycles) so LSU hot spots repel harder
// when memory arbitration was the stall source.
func congestionPenalty(at *accel.Attribution) func(noc.Coord) float64 {
	if at == nil {
		return nil
	}
	rowOcc := make(map[int]float64, len(at.NoCRows))
	for _, r := range at.NoCRows {
		rowOcc[r.Row] = r.Occupancy
	}
	unit := make(map[noc.Coord]float64, len(at.PEs))
	for _, p := range at.PEs {
		unit[noc.Coord{Row: p.Row, Col: p.Col}] = p.Utilization
	}
	portPressure := 0.0
	if at.ActiveCycles > 0 {
		wait := 0.0
		for _, p := range at.Ports {
			wait += p.WaitCycles
		}
		portPressure = wait / at.ActiveCycles
	}
	return func(c noc.Coord) float64 {
		return congestionRowWeight*rowOcc[c.Row] + congestionUnitWeight*(1+portPressure)*unit[c]
	}
}
