package mapping_test

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
)

// hotLoop extracts a kernel's hot-loop body (the same slice the experiments
// package maps).
func hotLoop(t *testing.T, k *kernels.Kernel) *mapping.LDFG {
	t.Helper()
	be := accel.M128()
	prog, loopStart, err := k.Program()
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return l
}

// syntheticAttribution exercises the congestion penalty with plausible hot
// rows and port pressure (the strategy must be deterministic for any
// feedback, measured or synthetic).
func syntheticAttribution() *accel.Attribution {
	return &accel.Attribution{
		ActiveCycles: 1000,
		NoCRows: []accel.RowOccupancy{
			{Row: 0, Lanes: 2, Transfers: 900, Occupancy: 0.9},
			{Row: 1, Lanes: 2, Transfers: 300, Occupancy: 0.3},
		},
		PEs: []accel.PEUtil{
			{Row: 0, Col: 0, Nodes: 1, Firings: 950, BusyCycles: 950, Utilization: 0.95},
			{Row: 0, Col: 1, Nodes: 1, Firings: 400, BusyCycles: 400, Utilization: 0.4},
		},
		Ports: []accel.PortShare{
			{Port: 0, Grants: 500, WaitCycles: 250, WaitShare: 0.5},
			{Port: 1, Grants: 100, WaitCycles: 10, WaitShare: 0.1},
		},
	}
}

// TestStrategyDeterminism is the mapper determinism property: mapping the
// same LDFG twice, for every kernel and every registered strategy, yields a
// byte-identical SDFG.String() and identical MapStats.
func TestStrategyDeterminism(t *testing.T) {
	be := accel.M128()
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		for _, name := range mapping.Names() {
			strat, err := mapping.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := mapping.DefaultOptions()
			if name == "congestion" {
				opts.Attrib = syntheticAttribution()
			}
			s1, st1, err1 := strat.Map(l, be, opts)
			s2, st2, err2 := strat.Map(l, be, opts)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s/%s: error nondeterminism: %v vs %v", k.Name, name, err1, err2)
			}
			if err1 != nil {
				continue // kernel does not map under this strategy; both agree
			}
			if s1.String() != s2.String() {
				t.Errorf("%s/%s: SDFG differs between identical Map calls:\n%s\nvs\n%s",
					k.Name, name, s1.String(), s2.String())
			}
			if *st1 != *st2 {
				t.Errorf("%s/%s: MapStats differ: %+v vs %+v", k.Name, name, st1, st2)
			}
			if st1.Strategy != name {
				t.Errorf("%s/%s: MapStats.Strategy = %q", k.Name, name, st1.Strategy)
			}
		}
	}
}

// TestCongestionWithoutFeedbackMatchesGreedy pins the congestion strategy's
// fallback: with no attribution to steer by, it is the greedy pass.
func TestCongestionWithoutFeedbackMatchesGreedy(t *testing.T) {
	be := accel.M128()
	greedy, err := mapping.ByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	cong, err := mapping.ByName("congestion")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		g, _, gerr := greedy.Map(l, be, mapping.DefaultOptions())
		c, _, cerr := cong.Map(l, be, mapping.DefaultOptions())
		if (gerr == nil) != (cerr == nil) {
			t.Fatalf("%s: greedy err %v, congestion err %v", k.Name, gerr, cerr)
		}
		if gerr != nil {
			continue
		}
		if g.String() != c.String() {
			t.Errorf("%s: congestion without feedback diverged from greedy", k.Name)
		}
	}
}

// TestAnnealNeverWorseThanSeed pins the annealer's best-seen restore: its
// placement cost never exceeds the greedy seed it started from.
func TestAnnealNeverWorseThanSeed(t *testing.T) {
	be := accel.M128()
	greedy, err := mapping.ByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels.All() {
		l := hotLoop(t, k)
		g, _, gerr := greedy.Map(l, be, mapping.DefaultOptions())
		a, _, aerr := anneal.Map(l, be, mapping.DefaultOptions())
		if gerr != nil || aerr != nil {
			if (gerr == nil) != (aerr == nil) {
				t.Fatalf("%s: greedy err %v, anneal err %v", k.Name, gerr, aerr)
			}
			continue
		}
		gc := g.PredictedII(1)*1000 + g.Evaluate().Total
		ac := a.PredictedII(1)*1000 + a.Evaluate().Total
		if ac > gc+1e-9 {
			t.Errorf("%s: anneal cost %.3f worse than greedy seed %.3f", k.Name, ac, gc)
		}
	}
}

// TestByNameUnknown pins the CLI-facing error message.
func TestByNameUnknown(t *testing.T) {
	_, err := mapping.ByName("bogus")
	if err == nil {
		t.Fatal("ByName(bogus): no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown strategy "bogus"`) || !strings.Contains(msg, "available:") {
		t.Errorf("error message %q does not name the strategy and the available set", msg)
	}
	for _, name := range mapping.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error message %q omits registered strategy %q", msg, name)
		}
	}
}

// TestNamesSortedAndComplete pins the registry contents.
func TestNamesSortedAndComplete(t *testing.T) {
	names := mapping.Names()
	want := []string{"auto", "congestion", "greedy", "greedy+anneal", "modulo"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if mapping.Default().Name() != "greedy" {
		t.Errorf("Default() = %q, want greedy", mapping.Default().Name())
	}
}
