package isa

import "fmt"

// RISC-V major opcodes.
const (
	opcLOAD    = 0x03
	opcLOADFP  = 0x07
	opcMISCMEM = 0x0F
	opcOPIMM   = 0x13
	opcAUIPC   = 0x17
	opcSTORE   = 0x23
	opcSTOREFP = 0x27
	opcOP      = 0x33
	opcLUI     = 0x37
	opcMADD    = 0x43
	opcMSUB    = 0x47
	opcNMSUB   = 0x4B
	opcNMADD   = 0x4F
	opcOPFP    = 0x53
	opcBRANCH  = 0x63
	opcJALR    = 0x67
	opcJAL     = 0x6F
	opcSYSTEM  = 0x73
)

type rspec struct {
	opcode uint32
	funct3 uint32
	funct7 uint32
}

var rEnc = map[Op]rspec{
	OpADD:    {opcOP, 0, 0x00},
	OpSUB:    {opcOP, 0, 0x20},
	OpSLL:    {opcOP, 1, 0x00},
	OpSLT:    {opcOP, 2, 0x00},
	OpSLTU:   {opcOP, 3, 0x00},
	OpXOR:    {opcOP, 4, 0x00},
	OpSRL:    {opcOP, 5, 0x00},
	OpSRA:    {opcOP, 5, 0x20},
	OpOR:     {opcOP, 6, 0x00},
	OpAND:    {opcOP, 7, 0x00},
	OpMUL:    {opcOP, 0, 0x01},
	OpMULH:   {opcOP, 1, 0x01},
	OpMULHSU: {opcOP, 2, 0x01},
	OpMULHU:  {opcOP, 3, 0x01},
	OpDIV:    {opcOP, 4, 0x01},
	OpDIVU:   {opcOP, 5, 0x01},
	OpREM:    {opcOP, 6, 0x01},
	OpREMU:   {opcOP, 7, 0x01},
}

var iEnc = map[Op]rspec{
	OpADDI:  {opcOPIMM, 0, 0},
	OpSLTI:  {opcOPIMM, 2, 0},
	OpSLTIU: {opcOPIMM, 3, 0},
	OpXORI:  {opcOPIMM, 4, 0},
	OpORI:   {opcOPIMM, 6, 0},
	OpANDI:  {opcOPIMM, 7, 0},
	OpJALR:  {opcJALR, 0, 0},
	OpLB:    {opcLOAD, 0, 0},
	OpLH:    {opcLOAD, 1, 0},
	OpLW:    {opcLOAD, 2, 0},
	OpLBU:   {opcLOAD, 4, 0},
	OpLHU:   {opcLOAD, 5, 0},
	OpFLW:   {opcLOADFP, 2, 0},
}

var sEnc = map[Op]rspec{
	OpSB:  {opcSTORE, 0, 0},
	OpSH:  {opcSTORE, 1, 0},
	OpSW:  {opcSTORE, 2, 0},
	OpFSW: {opcSTOREFP, 2, 0},
}

var bEnc = map[Op]uint32{
	OpBEQ: 0, OpBNE: 1, OpBLT: 4, OpBGE: 5, OpBLTU: 6, OpBGEU: 7,
}

// fpEnc covers OP-FP instructions: funct7 plus a fixed funct3 where the
// encoding requires one (negative means "rounding mode", encoded as 0 RNE).
type fpSpec struct {
	funct7 uint32
	funct3 int32 // -1: rounding-mode field
	rs2    int32 // -1: real rs2; otherwise fixed rs2 field value
}

var fpEnc = map[Op]fpSpec{
	OpFADDS:   {0x00, -1, -1},
	OpFSUBS:   {0x04, -1, -1},
	OpFMULS:   {0x08, -1, -1},
	OpFDIVS:   {0x0C, -1, -1},
	OpFSQRTS:  {0x2C, -1, 0},
	OpFSGNJS:  {0x10, 0, -1},
	OpFSGNJNS: {0x10, 1, -1},
	OpFSGNJXS: {0x10, 2, -1},
	OpFMINS:   {0x14, 0, -1},
	OpFMAXS:   {0x14, 1, -1},
	OpFCVTWS:  {0x60, -1, 0},
	OpFCVTWUS: {0x60, -1, 1},
	OpFCVTSW:  {0x68, -1, 0},
	OpFCVTSWU: {0x68, -1, 1},
	OpFMVXW:   {0x70, 0, 0},
	OpFCLASSS: {0x70, 1, 0},
	OpFEQS:    {0x50, 2, -1},
	OpFLTS:    {0x50, 1, -1},
	OpFLES:    {0x50, 0, -1},
	OpFMVWX:   {0x78, 0, 0},
}

var fmaEnc = map[Op]uint32{
	OpFMADDS: opcMADD, OpFMSUBS: opcMSUB, OpFNMSUBS: opcNMSUB, OpFNMADDS: opcNMADD,
}

var csrEnc = map[Op]uint32{OpCSRRW: 1, OpCSRRS: 2, OpCSRRC: 3}

// Encode converts an instruction to its 32-bit RISC-V machine encoding.
func Encode(in Inst) (uint32, error) {
	rd := uint32(in.Rd.Num())
	rs1 := uint32(in.Rs1.Num())
	rs2 := uint32(in.Rs2.Num())
	if in.Rd == RegNone {
		rd = 0
	}
	if in.Rs1 == RegNone {
		rs1 = 0
	}
	if in.Rs2 == RegNone {
		rs2 = 0
	}
	imm := uint32(in.Imm)

	switch {
	case in.Op == OpNOP:
		return encodeI(0, 0, 0, opcOPIMM), nil // addi x0, x0, 0
	case in.Op == OpECALL:
		return 0x00000073, nil
	case in.Op == OpEBREAK:
		return 0x00100073, nil
	case in.Op == OpFENCE:
		return 0x0000000F, nil
	case in.Op == OpLUI:
		return (imm & 0xFFFFF000) | rd<<7 | opcLUI, nil
	case in.Op == OpAUIPC:
		return (imm & 0xFFFFF000) | rd<<7 | opcAUIPC, nil
	case in.Op == OpJAL:
		if err := checkRange(in.Imm, 21, 2, in); err != nil {
			return 0, err
		}
		return encodeJ(imm, rd), nil
	case in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI:
		shamt := imm & 31
		f7 := uint32(0)
		var f3 uint32
		switch in.Op {
		case OpSLLI:
			f3 = 1
		case OpSRLI:
			f3 = 5
		case OpSRAI:
			f3, f7 = 5, 0x20
		}
		return f7<<25 | shamt<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOPIMM, nil
	}

	if spec, ok := rEnc[in.Op]; ok {
		return spec.funct7<<25 | rs2<<20 | rs1<<15 | spec.funct3<<12 | rd<<7 | spec.opcode, nil
	}
	if spec, ok := iEnc[in.Op]; ok {
		if err := checkRange(in.Imm, 12, 1, in); err != nil {
			return 0, err
		}
		return (imm&0xFFF)<<20 | rs1<<15 | spec.funct3<<12 | rd<<7 | spec.opcode, nil
	}
	if spec, ok := sEnc[in.Op]; ok {
		if err := checkRange(in.Imm, 12, 1, in); err != nil {
			return 0, err
		}
		return (imm>>5&0x7F)<<25 | rs2<<20 | rs1<<15 | spec.funct3<<12 |
			(imm&0x1F)<<7 | spec.opcode, nil
	}
	if f3, ok := bEnc[in.Op]; ok {
		if err := checkRange(in.Imm, 13, 2, in); err != nil {
			return 0, err
		}
		return encodeB(imm, rs2, rs1, f3), nil
	}
	if spec, ok := fpEnc[in.Op]; ok {
		f3 := uint32(0)
		if spec.funct3 >= 0 {
			f3 = uint32(spec.funct3)
		}
		r2 := rs2
		if spec.rs2 >= 0 {
			r2 = uint32(spec.rs2)
		}
		return spec.funct7<<25 | r2<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOPFP, nil
	}
	if opc, ok := fmaEnc[in.Op]; ok {
		rs3 := uint32(in.Rs3.Num())
		return rs3<<27 | 0<<25 | rs2<<20 | rs1<<15 | 0<<12 | rd<<7 | opc, nil
	}
	if f3, ok := csrEnc[in.Op]; ok {
		return (imm&0xFFF)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcSYSTEM, nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", in)
}

// MustEncode is Encode but panics on error; for use in tests and builders
// with known-valid instructions.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

func encodeI(imm, rs1, rd, opc uint32) uint32 {
	return (imm&0xFFF)<<20 | rs1<<15 | rd<<7 | opc
}

func encodeB(imm, rs2, rs1, f3 uint32) uint32 {
	return (imm>>12&1)<<31 | (imm>>5&0x3F)<<25 | rs2<<20 | rs1<<15 |
		f3<<12 | (imm>>1&0xF)<<8 | (imm>>11&1)<<7 | opcBRANCH
}

func encodeJ(imm, rd uint32) uint32 {
	return (imm>>20&1)<<31 | (imm>>1&0x3FF)<<21 | (imm>>11&1)<<20 |
		(imm>>12&0xFF)<<12 | rd<<7 | opcJAL
}

func checkRange(imm int32, bits, align uint, in Inst) error {
	min := -(int32(1) << (bits - 1))
	max := int32(1)<<(bits-1) - 1
	if imm < min || imm > max {
		return fmt.Errorf("isa: immediate %d out of %d-bit range in %v", imm, bits, in)
	}
	if align > 1 && imm%int32(align) != 0 {
		return fmt.Errorf("isa: immediate %d not %d-byte aligned in %v", imm, align, in)
	}
	return nil
}
