// Package isa implements the RISC-V RV32IMF instruction set used throughout
// the MESA reproduction: instruction representation, binary encoding and
// decoding, disassembly, and operand/classification queries.
//
// The package is the shared vocabulary between the functional simulator
// (internal/sim), the out-of-order CPU timing model (internal/cpu), the MESA
// controller (internal/core), and the spatial accelerator (internal/accel).
package isa

import "fmt"

// Op identifies an RV32IMF operation. The zero value is OpInvalid.
type Op uint8

// RV32I base integer instructions, RV32M multiply/divide extension, and the
// RV32F single-precision floating-point extension, plus the system
// instructions MESA must recognize (and reject) during region checks.
const (
	OpInvalid Op = iota

	// RV32I register-register.
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND

	// RV32I register-immediate.
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI

	// Upper immediates.
	OpLUI
	OpAUIPC

	// RV32M.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// Loads.
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU

	// Stores.
	OpSB
	OpSH
	OpSW

	// Conditional branches.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Unconditional jumps.
	OpJAL
	OpJALR

	// RV32F loads/stores.
	OpFLW
	OpFSW

	// RV32F computational.
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS
	OpFSQRTS
	OpFMINS
	OpFMAXS
	OpFMADDS
	OpFMSUBS
	OpFNMADDS
	OpFNMSUBS

	// RV32F conversion / move / compare.
	OpFCVTWS
	OpFCVTWUS
	OpFCVTSW
	OpFCVTSWU
	OpFMVXW
	OpFMVWX
	OpFEQS
	OpFLTS
	OpFLES
	OpFSGNJS
	OpFSGNJNS
	OpFSGNJXS
	OpFCLASSS

	// System instructions (unsupported by the accelerator; their presence in
	// a loop disqualifies it under criterion C2).
	OpECALL
	OpEBREAK
	OpFENCE
	OpCSRRW
	OpCSRRS
	OpCSRRC

	// NOP is the canonical ADDI x0, x0, 0 pseudo-instruction; the decoder
	// never produces it but builders may emit it explicitly.
	OpNOP

	numOps
)

// NumOps reports the number of distinct operations (for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpLUI: "lui", OpAUIPC: "auipc",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpFLW: "flw", OpFSW: "fsw",
	OpFADDS: "fadd.s", OpFSUBS: "fsub.s", OpFMULS: "fmul.s", OpFDIVS: "fdiv.s",
	OpFSQRTS: "fsqrt.s", OpFMINS: "fmin.s", OpFMAXS: "fmax.s",
	OpFMADDS: "fmadd.s", OpFMSUBS: "fmsub.s",
	OpFNMADDS: "fnmadd.s", OpFNMSUBS: "fnmsub.s",
	OpFCVTWS: "fcvt.w.s", OpFCVTWUS: "fcvt.wu.s",
	OpFCVTSW: "fcvt.s.w", OpFCVTSWU: "fcvt.s.wu",
	OpFMVXW: "fmv.x.w", OpFMVWX: "fmv.w.x",
	OpFEQS: "feq.s", OpFLTS: "flt.s", OpFLES: "fle.s",
	OpFSGNJS: "fsgnj.s", OpFSGNJNS: "fsgnjn.s", OpFSGNJXS: "fsgnjx.s",
	OpFCLASSS: "fclass.s",
	OpECALL:   "ecall", OpEBREAK: "ebreak", OpFENCE: "fence",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpNOP: "nop",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups operations by the functional-unit type that executes them.
// PE capability masks (F_op in the paper) and latency tables are keyed by
// Class.
type Class uint8

const (
	ClassInvalid Class = iota
	ClassALU           // integer add/sub/logic/shift/compare/lui/auipc
	ClassMul           // integer multiply
	ClassDiv           // integer divide/remainder
	ClassLoad          // integer and FP loads
	ClassStore         // integer and FP stores
	ClassBranch        // conditional branches
	ClassJump          // jal/jalr
	ClassFPAdd         // fadd/fsub/fmin/fmax/fsgnj/compares/conversions/moves
	ClassFPMul         // fmul and fused multiply-add family
	ClassFPDiv         // fdiv/fsqrt
	ClassSystem        // ecall/ebreak/fence/csr*

	NumClasses = iota
)

var classNames = [...]string{
	ClassInvalid: "invalid", ClassALU: "alu", ClassMul: "mul", ClassDiv: "div",
	ClassLoad: "load", ClassStore: "store", ClassBranch: "branch",
	ClassJump: "jump", ClassFPAdd: "fpadd", ClassFPMul: "fpmul",
	ClassFPDiv: "fpdiv", ClassSystem: "system",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

var opClasses = [numOps]Class{
	OpADD: ClassALU, OpSUB: ClassALU, OpSLL: ClassALU, OpSLT: ClassALU,
	OpSLTU: ClassALU, OpXOR: ClassALU, OpSRL: ClassALU, OpSRA: ClassALU,
	OpOR: ClassALU, OpAND: ClassALU,
	OpADDI: ClassALU, OpSLTI: ClassALU, OpSLTIU: ClassALU, OpXORI: ClassALU,
	OpORI: ClassALU, OpANDI: ClassALU, OpSLLI: ClassALU, OpSRLI: ClassALU,
	OpSRAI: ClassALU, OpLUI: ClassALU, OpAUIPC: ClassALU, OpNOP: ClassALU,
	OpMUL: ClassMul, OpMULH: ClassMul, OpMULHSU: ClassMul, OpMULHU: ClassMul,
	OpDIV: ClassDiv, OpDIVU: ClassDiv, OpREM: ClassDiv, OpREMU: ClassDiv,
	OpLB: ClassLoad, OpLH: ClassLoad, OpLW: ClassLoad, OpLBU: ClassLoad,
	OpLHU: ClassLoad, OpFLW: ClassLoad,
	OpSB: ClassStore, OpSH: ClassStore, OpSW: ClassStore, OpFSW: ClassStore,
	OpBEQ: ClassBranch, OpBNE: ClassBranch, OpBLT: ClassBranch,
	OpBGE: ClassBranch, OpBLTU: ClassBranch, OpBGEU: ClassBranch,
	OpJAL: ClassJump, OpJALR: ClassJump,
	OpFADDS: ClassFPAdd, OpFSUBS: ClassFPAdd, OpFMINS: ClassFPAdd,
	OpFMAXS: ClassFPAdd, OpFSGNJS: ClassFPAdd, OpFSGNJNS: ClassFPAdd,
	OpFSGNJXS: ClassFPAdd, OpFEQS: ClassFPAdd, OpFLTS: ClassFPAdd,
	OpFLES: ClassFPAdd, OpFCVTWS: ClassFPAdd, OpFCVTWUS: ClassFPAdd,
	OpFCVTSW: ClassFPAdd, OpFCVTSWU: ClassFPAdd, OpFMVXW: ClassFPAdd,
	OpFMVWX: ClassFPAdd, OpFCLASSS: ClassFPAdd,
	OpFMULS: ClassFPMul, OpFMADDS: ClassFPMul, OpFMSUBS: ClassFPMul,
	OpFNMADDS: ClassFPMul, OpFNMSUBS: ClassFPMul,
	OpFDIVS: ClassFPDiv, OpFSQRTS: ClassFPDiv,
	OpECALL: ClassSystem, OpEBREAK: ClassSystem, OpFENCE: ClassSystem,
	OpCSRRW: ClassSystem, OpCSRRS: ClassSystem, OpCSRRC: ClassSystem,
}

// Class reports the functional-unit class of o.
func (o Op) Class() Class {
	if o < numOps {
		return opClasses[o]
	}
	return ClassInvalid
}

// IsFP reports whether o reads or writes the floating-point register file.
func (o Op) IsFP() bool {
	switch o.Class() {
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		return true
	}
	return o == OpFLW || o == OpFSW
}

// HasImm reports whether o carries an immediate operand.
func (o Op) HasImm() bool {
	switch o {
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI,
		OpSRAI, OpLUI, OpAUIPC, OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH,
		OpSW, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpJAL, OpJALR,
		OpFLW, OpFSW, OpCSRRW, OpCSRRS, OpCSRRC:
		return true
	}
	return false
}
