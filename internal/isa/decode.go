package isa

import "fmt"

// Decode converts a 32-bit RISC-V machine word into an Inst. It supports the
// RV32IMF subset defined by this package and returns an error for anything
// else.
func Decode(word uint32) (Inst, error) {
	opc := word & 0x7F
	rd := Reg(word >> 7 & 31)
	f3 := word >> 12 & 7
	rs1 := Reg(word >> 15 & 31)
	rs2 := Reg(word >> 20 & 31)
	f7 := word >> 25 & 0x7F

	immI := int32(word) >> 20
	immS := int32(word)>>25<<5 | int32(word>>7&31)
	immB := int32(word)>>31<<12 | int32(word>>7&1)<<11 |
		int32(word>>25&0x3F)<<5 | int32(word>>8&0xF)<<1
	immU := int32(word & 0xFFFFF000)
	immJ := int32(word)>>31<<20 | int32(word>>12&0xFF)<<12 |
		int32(word>>20&1)<<11 | int32(word>>21&0x3FF)<<1

	none := RegNone
	switch opc {
	case opcLUI:
		return Inst{Op: OpLUI, Rd: rd, Rs1: none, Rs2: none, Rs3: none, Imm: immU}, nil
	case opcAUIPC:
		return Inst{Op: OpAUIPC, Rd: rd, Rs1: none, Rs2: none, Rs3: none, Imm: immU}, nil
	case opcJAL:
		return Inst{Op: OpJAL, Rd: rd, Rs1: none, Rs2: none, Rs3: none, Imm: immJ}, nil
	case opcJALR:
		if f3 != 0 {
			return Inst{}, fmt.Errorf("isa: bad jalr funct3 %d", f3)
		}
		return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: immI}, nil

	case opcBRANCH:
		for op, bf3 := range bEnc {
			if bf3 == f3 {
				return Inst{Op: op, Rd: none, Rs1: rs1, Rs2: rs2, Rs3: none, Imm: immB}, nil
			}
		}
		return Inst{}, fmt.Errorf("isa: bad branch funct3 %d", f3)

	case opcLOAD:
		var op Op
		switch f3 {
		case 0:
			op = OpLB
		case 1:
			op = OpLH
		case 2:
			op = OpLW
		case 4:
			op = OpLBU
		case 5:
			op = OpLHU
		default:
			return Inst{}, fmt.Errorf("isa: bad load funct3 %d", f3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: immI}, nil

	case opcLOADFP:
		if f3 != 2 {
			return Inst{}, fmt.Errorf("isa: bad fp-load funct3 %d", f3)
		}
		return Inst{Op: OpFLW, Rd: rd + 32, Rs1: rs1, Rs2: none, Rs3: none, Imm: immI}, nil

	case opcSTORE:
		var op Op
		switch f3 {
		case 0:
			op = OpSB
		case 1:
			op = OpSH
		case 2:
			op = OpSW
		default:
			return Inst{}, fmt.Errorf("isa: bad store funct3 %d", f3)
		}
		return Inst{Op: op, Rd: none, Rs1: rs1, Rs2: rs2, Rs3: none, Imm: immS}, nil

	case opcSTOREFP:
		if f3 != 2 {
			return Inst{}, fmt.Errorf("isa: bad fp-store funct3 %d", f3)
		}
		return Inst{Op: OpFSW, Rd: none, Rs1: rs1, Rs2: rs2 + 32, Rs3: none, Imm: immS}, nil

	case opcOPIMM:
		var op Op
		imm := immI
		switch f3 {
		case 0:
			op = OpADDI
		case 1:
			op, imm = OpSLLI, int32(word>>20&31)
		case 2:
			op = OpSLTI
		case 3:
			op = OpSLTIU
		case 4:
			op = OpXORI
		case 5:
			if f7 == 0x20 {
				op = OpSRAI
			} else {
				op = OpSRLI
			}
			imm = int32(word >> 20 & 31)
		case 6:
			op = OpORI
		case 7:
			op = OpANDI
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: imm}, nil

	case opcOP:
		for op, spec := range rEnc {
			if spec.funct3 == f3 && spec.funct7 == f7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: none}, nil
			}
		}
		return Inst{}, fmt.Errorf("isa: bad OP funct3=%d funct7=%#x", f3, f7)

	case opcOPFP:
		return decodeFP(word, rd, f3, rs1, rs2, f7)

	case opcMADD, opcMSUB, opcNMSUB, opcNMADD:
		var op Op
		switch opc {
		case opcMADD:
			op = OpFMADDS
		case opcMSUB:
			op = OpFMSUBS
		case opcNMSUB:
			op = OpFNMSUBS
		case opcNMADD:
			op = OpFNMADDS
		}
		if word>>25&3 != 0 {
			return Inst{}, fmt.Errorf("isa: only single-precision FMA supported")
		}
		rs3 := Reg(word >> 27 & 31)
		return Inst{Op: op, Rd: rd + 32, Rs1: rs1 + 32, Rs2: rs2 + 32, Rs3: rs3 + 32}, nil

	case opcMISCMEM:
		return Inst{Op: OpFENCE, Rd: none, Rs1: none, Rs2: none, Rs3: none}, nil

	case opcSYSTEM:
		switch f3 {
		case 0:
			if word>>20&0xFFF == 1 {
				return Inst{Op: OpEBREAK, Rd: none, Rs1: none, Rs2: none, Rs3: none}, nil
			}
			return Inst{Op: OpECALL, Rd: none, Rs1: none, Rs2: none, Rs3: none}, nil
		case 1:
			return Inst{Op: OpCSRRW, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: int32(word >> 20)}, nil
		case 2:
			return Inst{Op: OpCSRRS, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: int32(word >> 20)}, nil
		case 3:
			return Inst{Op: OpCSRRC, Rd: rd, Rs1: rs1, Rs2: none, Rs3: none, Imm: int32(word >> 20)}, nil
		}
		return Inst{}, fmt.Errorf("isa: bad system funct3 %d", f3)
	}
	return Inst{}, fmt.Errorf("isa: unknown opcode %#x", opc)
}

func decodeFP(word uint32, rd Reg, f3 uint32, rs1, rs2 Reg, f7 uint32) (Inst, error) {
	none := RegNone
	frd, frs1, frs2 := rd+32, rs1+32, rs2+32
	switch f7 {
	case 0x00:
		return Inst{Op: OpFADDS, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x04:
		return Inst{Op: OpFSUBS, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x08:
		return Inst{Op: OpFMULS, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x0C:
		return Inst{Op: OpFDIVS, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x2C:
		return Inst{Op: OpFSQRTS, Rd: frd, Rs1: frs1, Rs2: none, Rs3: none}, nil
	case 0x10:
		ops := [3]Op{OpFSGNJS, OpFSGNJNS, OpFSGNJXS}
		if f3 > 2 {
			return Inst{}, fmt.Errorf("isa: bad fsgnj funct3 %d", f3)
		}
		return Inst{Op: ops[f3], Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x14:
		if f3 > 1 {
			return Inst{}, fmt.Errorf("isa: bad fmin/fmax funct3 %d", f3)
		}
		op := OpFMINS
		if f3 == 1 {
			op = OpFMAXS
		}
		return Inst{Op: op, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	case 0x60:
		op := OpFCVTWS
		if rs2.Num() == 1 {
			op = OpFCVTWUS
		}
		return Inst{Op: op, Rd: rd, Rs1: frs1, Rs2: none, Rs3: none}, nil
	case 0x68:
		op := OpFCVTSW
		if rs2.Num() == 1 {
			op = OpFCVTSWU
		}
		return Inst{Op: op, Rd: frd, Rs1: rs1, Rs2: none, Rs3: none}, nil
	case 0x70:
		if f3 == 1 {
			return Inst{Op: OpFCLASSS, Rd: rd, Rs1: frs1, Rs2: none, Rs3: none}, nil
		}
		return Inst{Op: OpFMVXW, Rd: rd, Rs1: frs1, Rs2: none, Rs3: none}, nil
	case 0x78:
		return Inst{Op: OpFMVWX, Rd: frd, Rs1: rs1, Rs2: none, Rs3: none}, nil
	case 0x50:
		var op Op
		switch f3 {
		case 2:
			op = OpFEQS
		case 1:
			op = OpFLTS
		case 0:
			op = OpFLES
		default:
			return Inst{}, fmt.Errorf("isa: bad fp-compare funct3 %d", f3)
		}
		return Inst{Op: op, Rd: rd, Rs1: frs1, Rs2: frs2, Rs3: none}, nil
	}
	return Inst{}, fmt.Errorf("isa: bad OP-FP funct7 %#x", f7)
}
