package isa

import "fmt"

// Reg names an architectural register. Values 0–31 are the integer registers
// x0–x31; values 32–63 are the floating-point registers f0–f31. RegNone marks
// an absent operand.
type Reg uint8

// Integer registers.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	X31
)

// Floating-point registers.
const (
	F0 Reg = iota + 32
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// RegNone marks an operand slot that is not used by the instruction.
const RegNone Reg = 255

// NumRegs is the size of the combined architectural register space
// (32 integer + 32 floating-point).
const NumRegs = 64

// Common ABI aliases.
const (
	RegZero = X0 // hardwired zero
	RegRA   = X1 // return address
	RegSP   = X2 // stack pointer
	RegGP   = X3 // global pointer
	RegTP   = X4 // thread pointer
	RegT0   = X5 // temporaries
	RegT1   = X6
	RegT2   = X7
	RegS0   = X8 // saved registers
	RegS1   = X9
	RegA0   = X10 // argument registers
	RegA1   = X11
	RegA2   = X12
	RegA3   = X13
	RegA4   = X14
	RegA5   = X15
	RegA6   = X16
	RegA7   = X17
)

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r < 32 }

// Num returns the 5-bit register number within its file.
func (r Reg) Num() uint8 { return uint8(r) & 31 }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r < 32:
		return fmt.Sprintf("x%d", r)
	case r < 64:
		return fmt.Sprintf("f%d", r-32)
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// IntReg returns the integer register with number n (panics if n > 31).
func IntReg(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: integer register number %d out of range", n))
	}
	return Reg(n)
}

// FPReg returns the floating-point register with number n (panics if n > 31).
func FPReg(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: fp register number %d out of range", n))
	}
	return Reg(n + 32)
}
