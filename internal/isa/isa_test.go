package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleInsts returns one representative instruction per encodable opcode.
func sampleInsts() []Inst {
	none := RegNone
	return []Inst{
		{Op: OpADD, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpSUB, Rd: X1, Rs1: X2, Rs2: X3, Rs3: none},
		{Op: OpSLL, Rd: X8, Rs1: X9, Rs2: X10, Rs3: none},
		{Op: OpSLT, Rd: X11, Rs1: X12, Rs2: X13, Rs3: none},
		{Op: OpSLTU, Rd: X14, Rs1: X15, Rs2: X16, Rs3: none},
		{Op: OpXOR, Rd: X17, Rs1: X18, Rs2: X19, Rs3: none},
		{Op: OpSRL, Rd: X20, Rs1: X21, Rs2: X22, Rs3: none},
		{Op: OpSRA, Rd: X23, Rs1: X24, Rs2: X25, Rs3: none},
		{Op: OpOR, Rd: X26, Rs1: X27, Rs2: X28, Rs3: none},
		{Op: OpAND, Rd: X29, Rs1: X30, Rs2: X31, Rs3: none},
		{Op: OpADDI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: -42},
		{Op: OpSLTI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 100},
		{Op: OpSLTIU, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 100},
		{Op: OpXORI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: -1},
		{Op: OpORI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0x7F},
		{Op: OpANDI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0xFF},
		{Op: OpSLLI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 7},
		{Op: OpSRLI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 13},
		{Op: OpSRAI, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 31},
		{Op: OpLUI, Rd: X5, Rs1: none, Rs2: none, Rs3: none, Imm: 0x12345000},
		{Op: OpAUIPC, Rd: X5, Rs1: none, Rs2: none, Rs3: none, Imm: -4096},
		{Op: OpMUL, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpMULH, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpMULHSU, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpMULHU, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpDIV, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpDIVU, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpREM, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpREMU, Rd: X5, Rs1: X6, Rs2: X7, Rs3: none},
		{Op: OpLB, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: -8},
		{Op: OpLH, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 16},
		{Op: OpLW, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 2047},
		{Op: OpLBU, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: -2048},
		{Op: OpLHU, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0},
		{Op: OpSB, Rd: none, Rs1: X6, Rs2: X7, Rs3: none, Imm: -8},
		{Op: OpSH, Rd: none, Rs1: X6, Rs2: X7, Rs3: none, Imm: 16},
		{Op: OpSW, Rd: none, Rs1: X6, Rs2: X7, Rs3: none, Imm: 1024},
		{Op: OpBEQ, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: -64},
		{Op: OpBNE, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: 64},
		{Op: OpBLT, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: 4094},
		{Op: OpBGE, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: -4096},
		{Op: OpBLTU, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: 8},
		{Op: OpBGEU, Rd: none, Rs1: X5, Rs2: X6, Rs3: none, Imm: -8},
		{Op: OpJAL, Rd: X1, Rs1: none, Rs2: none, Rs3: none, Imm: -2048},
		{Op: OpJALR, Rd: X1, Rs1: X5, Rs2: none, Rs3: none, Imm: 12},
		{Op: OpFLW, Rd: F5, Rs1: X6, Rs2: none, Rs3: none, Imm: 4},
		{Op: OpFSW, Rd: none, Rs1: X6, Rs2: F7, Rs3: none, Imm: -4},
		{Op: OpFADDS, Rd: F1, Rs1: F2, Rs2: F3, Rs3: none},
		{Op: OpFSUBS, Rd: F4, Rs1: F5, Rs2: F6, Rs3: none},
		{Op: OpFMULS, Rd: F7, Rs1: F8, Rs2: F9, Rs3: none},
		{Op: OpFDIVS, Rd: F10, Rs1: F11, Rs2: F12, Rs3: none},
		{Op: OpFSQRTS, Rd: F13, Rs1: F14, Rs2: none, Rs3: none},
		{Op: OpFMINS, Rd: F15, Rs1: F16, Rs2: F17, Rs3: none},
		{Op: OpFMAXS, Rd: F18, Rs1: F19, Rs2: F20, Rs3: none},
		{Op: OpFMADDS, Rd: F1, Rs1: F2, Rs2: F3, Rs3: F4},
		{Op: OpFMSUBS, Rd: F5, Rs1: F6, Rs2: F7, Rs3: F8},
		{Op: OpFNMADDS, Rd: F9, Rs1: F10, Rs2: F11, Rs3: F12},
		{Op: OpFNMSUBS, Rd: F13, Rs1: F14, Rs2: F15, Rs3: F16},
		{Op: OpFCVTWS, Rd: X5, Rs1: F6, Rs2: none, Rs3: none},
		{Op: OpFCVTWUS, Rd: X5, Rs1: F6, Rs2: none, Rs3: none},
		{Op: OpFCVTSW, Rd: F5, Rs1: X6, Rs2: none, Rs3: none},
		{Op: OpFCVTSWU, Rd: F5, Rs1: X6, Rs2: none, Rs3: none},
		{Op: OpFMVXW, Rd: X5, Rs1: F6, Rs2: none, Rs3: none},
		{Op: OpFMVWX, Rd: F5, Rs1: X6, Rs2: none, Rs3: none},
		{Op: OpFEQS, Rd: X5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFLTS, Rd: X5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFLES, Rd: X5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFSGNJS, Rd: F5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFSGNJNS, Rd: F5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFSGNJXS, Rd: F5, Rs1: F6, Rs2: F7, Rs3: none},
		{Op: OpFCLASSS, Rd: X5, Rs1: F6, Rs2: none, Rs3: none},
		{Op: OpECALL, Rd: none, Rs1: none, Rs2: none, Rs3: none},
		{Op: OpEBREAK, Rd: none, Rs1: none, Rs2: none, Rs3: none},
		{Op: OpFENCE, Rd: none, Rs1: none, Rs2: none, Rs3: none},
		{Op: OpCSRRW, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0x300},
		{Op: OpCSRRS, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0x301},
		{Op: OpCSRRC, Rd: X5, Rs1: X6, Rs2: none, Rs3: none, Imm: 0x302},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInsts() {
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := Decode(word)
		if err != nil {
			t.Fatalf("decode %v (%#08x): %v", in, word, err)
		}
		got.Addr = in.Addr
		if got != in {
			t.Errorf("round trip %v: got %v (word %#08x)", in, got, word)
		}
	}
}

func TestEncodeRejectsOutOfRangeImmediates(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: X1, Rs1: X2, Rs2: RegNone, Rs3: RegNone, Imm: 5000},
		{Op: OpADDI, Rd: X1, Rs1: X2, Rs2: RegNone, Rs3: RegNone, Imm: -5000},
		{Op: OpSW, Rd: RegNone, Rs1: X2, Rs2: X3, Rs3: RegNone, Imm: 4096},
		{Op: OpBEQ, Rd: RegNone, Rs1: X2, Rs2: X3, Rs3: RegNone, Imm: 3}, // misaligned
		{Op: OpBEQ, Rd: RegNone, Rs1: X2, Rs2: X3, Rs3: RegNone, Imm: 1 << 14},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("expected encode error for %v", in)
		}
	}
}

// TestDecodeRandomWordsNeverPanics is a property test: arbitrary 32-bit
// words must decode or error, never crash, and successful decodes must
// re-encode to a word that decodes to the same instruction.
func TestDecodeRandomWordsNeverPanics(t *testing.T) {
	f := func(word uint32) bool {
		in, err := Decode(word)
		if err != nil {
			return true
		}
		word2, err := Encode(in)
		if err != nil {
			// Some decodable fields (e.g. CSR immediates beyond 12-bit
			// signed range) may not re-encode; tolerate explicit errors.
			return true
		}
		in2, err := Decode(word2)
		if err != nil {
			return false
		}
		return in2 == in
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesAndDest(t *testing.T) {
	add := Inst{Op: OpADD, Rd: X5, Rs1: X6, Rs2: X7, Rs3: RegNone}
	if s := add.Sources(); s != [3]Reg{X6, X7, RegNone} {
		t.Errorf("add sources = %v", s)
	}
	if rd, ok := add.Dest(); !ok || rd != X5 {
		t.Errorf("add dest = %v %v", rd, ok)
	}

	// Writes to x0 are discarded.
	addX0 := Inst{Op: OpADD, Rd: X0, Rs1: X6, Rs2: X7, Rs3: RegNone}
	if _, ok := addX0.Dest(); ok {
		t.Error("write to x0 should report no destination")
	}

	// Reads of x0 create no dependency.
	addi := Inst{Op: OpADDI, Rd: X5, Rs1: X0, Rs2: RegNone, Rs3: RegNone, Imm: 1}
	if s := addi.Sources(); s[0] != RegNone {
		t.Errorf("x0 source should be RegNone, got %v", s[0])
	}

	// ADDI reads only rs1.
	addi2 := Inst{Op: OpADDI, Rd: X5, Rs1: X6, Rs2: X9, Rs3: RegNone, Imm: 1}
	if s := addi2.Sources(); s[1] != RegNone {
		t.Errorf("addi must not read rs2, got %v", s[1])
	}

	// Stores read rs1 (base) and rs2 (data) but write nothing.
	sw := Inst{Op: OpSW, Rd: RegNone, Rs1: X6, Rs2: X7, Rs3: RegNone}
	if s := sw.Sources(); s != [3]Reg{X6, X7, RegNone} {
		t.Errorf("sw sources = %v", s)
	}
	if _, ok := sw.Dest(); ok {
		t.Error("store should have no destination")
	}

	// FMA reads three registers.
	fma := Inst{Op: OpFMADDS, Rd: F1, Rs1: F2, Rs2: F3, Rs3: F4}
	if s := fma.Sources(); s != [3]Reg{F2, F3, F4} {
		t.Errorf("fma sources = %v", s)
	}
}

func TestClassification(t *testing.T) {
	checks := []struct {
		op   Op
		cls  Class
		isFP bool
	}{
		{OpADD, ClassALU, false},
		{OpMUL, ClassMul, false},
		{OpDIV, ClassDiv, false},
		{OpLW, ClassLoad, false},
		{OpFLW, ClassLoad, true},
		{OpSW, ClassStore, false},
		{OpFSW, ClassStore, true},
		{OpBEQ, ClassBranch, false},
		{OpJAL, ClassJump, false},
		{OpFADDS, ClassFPAdd, true},
		{OpFMULS, ClassFPMul, true},
		{OpFMADDS, ClassFPMul, true},
		{OpFDIVS, ClassFPDiv, true},
		{OpFSQRTS, ClassFPDiv, true},
		{OpECALL, ClassSystem, false},
	}
	for _, c := range checks {
		if got := c.op.Class(); got != c.cls {
			t.Errorf("%v class = %v, want %v", c.op, got, c.cls)
		}
		if got := c.op.IsFP(); got != c.isFP {
			t.Errorf("%v IsFP = %v, want %v", c.op, got, c.isFP)
		}
	}
}

func TestBranchHelpers(t *testing.T) {
	br := Inst{Op: OpBNE, Rd: RegNone, Rs1: X5, Rs2: X0, Rs3: RegNone, Imm: -16, Addr: 0x100}
	if !br.IsBackwardBranch() {
		t.Error("negative-offset branch should be backward")
	}
	if got := br.BranchTarget(); got != 0xF0 {
		t.Errorf("branch target = %#x, want 0xf0", got)
	}
	fwd := Inst{Op: OpBEQ, Rd: RegNone, Rs1: X5, Rs2: X0, Rs3: RegNone, Imm: 8, Addr: 0x100}
	if fwd.IsBackwardBranch() {
		t.Error("positive-offset branch is not backward")
	}
}

func TestProgramAt(t *testing.T) {
	prog := isaProgram(0x1000, 4)
	p := &prog
	if in, ok := p.At(0x1004); !ok || in.Addr != 0x1004 {
		t.Errorf("At(0x1004) = %v %v", in, ok)
	}
	if _, ok := p.At(0x0FFC); ok {
		t.Error("address below base should miss")
	}
	if _, ok := p.At(0x1002); ok {
		t.Error("misaligned address should miss")
	}
	if _, ok := p.At(p.End()); ok {
		t.Error("address past end should miss")
	}
	if got := len(p.Slice(0x1004, 0x100C)); got != 2 {
		t.Errorf("Slice len = %d, want 2", got)
	}
}

// isaProgram builds an n-instruction nop program at base.
func isaProgram(base uint32, n int) Program {
	insts := make([]Inst, n)
	for i := range insts {
		insts[i] = Nop()
		insts[i].Addr = base + uint32(4*i)
	}
	return Program{Base: base, Insts: insts}
}

func TestRegHelpers(t *testing.T) {
	if !F0.IsFP() || X0.IsFP() {
		t.Error("IsFP misclassifies")
	}
	if F7.Num() != 7 || X7.Num() != 7 {
		t.Error("Num should strip the file bit")
	}
	if IntReg(31) != X31 || FPReg(31) != F31 {
		t.Error("register constructors broken")
	}
	if X5.String() != "x5" || F5.String() != "f5" || RegNone.String() != "-" {
		t.Error("register names broken")
	}
}
