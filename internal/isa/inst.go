package isa

import "fmt"

// Inst is a decoded RV32IMF instruction. Rs3 is used only by the fused
// multiply-add family; unused operand slots hold RegNone. Imm holds the
// sign-extended immediate for formats that carry one (for branches and jumps
// it is the byte offset relative to the instruction's own address).
type Inst struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Rs3  Reg
	Imm  int32
	Addr uint32 // instruction address, filled in when placed in a Program
}

// Nop returns the canonical no-op.
func Nop() Inst {
	return Inst{Op: OpNOP, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone}
}

// Class reports the functional-unit class of the instruction.
func (in Inst) Class() Class { return in.Op.Class() }

// IsLoad reports whether the instruction reads memory.
func (in Inst) IsLoad() bool { return in.Op.Class() == ClassLoad }

// IsStore reports whether the instruction writes memory.
func (in Inst) IsStore() bool { return in.Op.Class() == ClassStore }

// IsMem reports whether the instruction accesses memory.
func (in Inst) IsMem() bool { return in.IsLoad() || in.IsStore() }

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool { return in.Op.Class() == ClassBranch }

// IsJump reports whether the instruction is an unconditional jump.
func (in Inst) IsJump() bool { return in.Op.Class() == ClassJump }

// IsControl reports whether the instruction can redirect the PC.
func (in Inst) IsControl() bool { return in.IsBranch() || in.IsJump() }

// IsSystem reports whether the instruction is a system instruction, which
// disqualifies a loop from acceleration under criterion C2.
func (in Inst) IsSystem() bool { return in.Op.Class() == ClassSystem }

// BranchTarget returns the target address of a PC-relative branch or JAL.
// It must not be called on other instructions.
func (in Inst) BranchTarget() uint32 {
	return in.Addr + uint32(in.Imm)
}

// IsBackwardBranch reports whether the instruction is a conditional branch or
// JAL with a negative offset — the loop-closing pattern the loop-stream
// detector looks for.
func (in Inst) IsBackwardBranch() bool {
	return (in.IsBranch() || in.Op == OpJAL) && in.Imm < 0
}

// Dest returns the destination register and whether the instruction writes
// one. Writes to x0 are discarded by the architecture and reported as no
// destination.
func (in Inst) Dest() (Reg, bool) {
	switch in.Op.Class() {
	case ClassStore, ClassBranch, ClassSystem, ClassInvalid:
		return RegNone, false
	}
	if in.Op == OpNOP || in.Rd == RegNone || in.Rd == X0 {
		return RegNone, false
	}
	return in.Rd, true
}

// Sources returns the architectural registers the instruction reads, in
// (rs1, rs2, rs3) order, with RegNone for absent slots. Reads of x0 are
// reported as RegNone because x0 carries the constant zero and creates no
// dataflow dependency.
func (in Inst) Sources() [3]Reg {
	srcs := [3]Reg{RegNone, RegNone, RegNone}
	norm := func(r Reg) Reg {
		if r == X0 || r == RegNone {
			return RegNone
		}
		return r
	}
	switch in.Op {
	case OpLUI, OpAUIPC, OpJAL, OpNOP, OpECALL, OpEBREAK, OpFENCE:
		// no register sources
	case OpFMADDS, OpFMSUBS, OpFNMADDS, OpFNMSUBS:
		srcs[0], srcs[1], srcs[2] = norm(in.Rs1), norm(in.Rs2), norm(in.Rs3)
	default:
		srcs[0] = norm(in.Rs1)
		if usesRs2(in.Op) {
			srcs[1] = norm(in.Rs2)
		}
	}
	return srcs
}

// usesRs2 reports whether op reads a second register operand.
func usesRs2(op Op) bool {
	switch op {
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU,
		OpSB, OpSH, OpSW, OpFSW,
		OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU,
		OpFADDS, OpFSUBS, OpFMULS, OpFDIVS, OpFMINS, OpFMAXS,
		OpFEQS, OpFLTS, OpFLES, OpFSGNJS, OpFSGNJNS, OpFSGNJXS:
		return true
	}
	return false
}

// String renders the instruction in conventional assembly syntax.
func (in Inst) String() string {
	op := in.Op
	switch {
	case op == OpNOP:
		return "nop"
	case op == OpECALL || op == OpEBREAK || op == OpFENCE:
		return op.String()
	case op == OpLUI || op == OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", op, in.Rd, uint32(in.Imm)>>12)
	case op == OpJAL:
		return fmt.Sprintf("%s %s, %d", op, in.Rd, in.Imm)
	case op == OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Rs1)
	case in.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Rs1)
	case in.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rs2, in.Imm, in.Rs1)
	case in.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", op, in.Rs1, in.Rs2, in.Imm)
	case op == OpFSQRTS || op == OpFCVTWS || op == OpFCVTWUS || op == OpFCVTSW ||
		op == OpFCVTSWU || op == OpFMVXW || op == OpFMVWX || op == OpFCLASSS:
		return fmt.Sprintf("%s %s, %s", op, in.Rd, in.Rs1)
	case op == OpFMADDS || op == OpFMSUBS || op == OpFNMADDS || op == OpFNMSUBS:
		return fmt.Sprintf("%s %s, %s, %s, %s", op, in.Rd, in.Rs1, in.Rs2, in.Rs3)
	case op.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a contiguous sequence of instructions starting at Base. Symbols
// maps label names to instruction addresses.
type Program struct {
	Base    uint32
	Insts   []Inst
	Symbols map[string]uint32
}

// At returns the instruction at address addr and whether it exists.
func (p *Program) At(addr uint32) (Inst, bool) {
	if addr < p.Base || (addr-p.Base)%4 != 0 {
		return Inst{}, false
	}
	idx := int(addr-p.Base) / 4
	if idx >= len(p.Insts) {
		return Inst{}, false
	}
	return p.Insts[idx], true
}

// End returns the address one past the last instruction.
func (p *Program) End() uint32 { return p.Base + uint32(4*len(p.Insts)) }

// Slice returns the instructions with addresses in [start, end).
func (p *Program) Slice(start, end uint32) []Inst {
	if start < p.Base {
		start = p.Base
	}
	if end > p.End() {
		end = p.End()
	}
	if start >= end {
		return nil
	}
	return p.Insts[(start-p.Base)/4 : (end-p.Base)/4]
}
