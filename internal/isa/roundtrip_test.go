package isa

import "testing"

// FuzzDecodeEncode checks the Decode↔Encode round trip over arbitrary
// machine words. Exact word-level identity cannot hold for every decodable
// word — Decode deliberately ignores fields the simulator does not model
// (FP rounding modes, fence orderings, non-zero shift funct7 bits) — so the
// property is canonicalization: one Decode→Encode trip must reach a fixed
// point without losing instruction semantics.
//
// The committed corpus pins branch-offset sign/boundary encodings: the
// ±4 KiB B-type extremes, the ±1 MiB J-type extremes, and the -2048/+2047
// I/S-type limits that the asm.Builder validation rejects beyond.
//
// Run open-ended with:
//
//	go test ./internal/isa -run '^$' -fuzz '^FuzzDecodeEncode$'
func FuzzDecodeEncode(f *testing.F) {
	seeds := []uint32{
		0x00000073, // ecall
		0x00100073, // ebreak
		0x0000000F, // fence
		0x00000013, // nop (addi x0,x0,0)
		MustEncode(Inst{Op: OpBEQ, Rd: RegNone, Rs1: X1, Rs2: X2, Rs3: RegNone, Imm: 4094}),
		MustEncode(Inst{Op: OpBEQ, Rd: RegNone, Rs1: X1, Rs2: X2, Rs3: RegNone, Imm: -4096}),
		MustEncode(Inst{Op: OpBNE, Rd: RegNone, Rs1: X5, Rs2: X6, Rs3: RegNone, Imm: -2}),
		MustEncode(Inst{Op: OpJAL, Rd: X1, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Imm: 1048574}),
		MustEncode(Inst{Op: OpJAL, Rd: X1, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Imm: -1048576}),
		MustEncode(Inst{Op: OpADDI, Rd: X5, Rs1: X5, Rs2: RegNone, Rs3: RegNone, Imm: -2048}),
		MustEncode(Inst{Op: OpSW, Rd: RegNone, Rs1: X2, Rs2: X8, Rs3: RegNone, Imm: 2047}),
		MustEncode(Inst{Op: OpFMADDS, Rd: F0, Rs1: F1, Rs2: F2, Rs3: F3}),
		MustEncode(Inst{Op: OpFLW, Rd: F5, Rs1: X10, Rs2: RegNone, Rs3: RegNone, Imm: -2048}),
		MustEncode(Inst{Op: OpFSW, Rd: RegNone, Rs1: X10, Rs2: F5, Rs3: RegNone, Imm: 2044}),
		0xFFFFFFFF, // undecodable
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		in1, err := Decode(word)
		if err != nil {
			return // not part of the modeled subset
		}
		w1, err := Encode(in1)
		if err != nil {
			t.Fatalf("Decode(%#08x) = %v, but Encode failed: %v", word, in1, err)
		}
		in2, err := Decode(w1)
		if err != nil {
			t.Fatalf("Encode(%v) = %#08x does not decode: %v", in1, w1, err)
		}
		if in2 != in1 {
			t.Fatalf("canonicalized word %#08x decodes to %v, original %#08x gave %v", w1, in2, word, in1)
		}
		w2, err := Encode(in2)
		if err != nil {
			t.Fatalf("re-encode of %v failed: %v", in2, err)
		}
		if w2 != w1 {
			t.Fatalf("Encode∘Decode not a fixed point: %#08x -> %#08x -> %#08x", word, w1, w2)
		}
	})
}

// TestBranchOffsetBoundaries pins the exact signed boundaries of the B- and
// J-type immediates through a full encode/decode cycle.
func TestBranchOffsetBoundaries(t *testing.T) {
	cases := []struct {
		op  Op
		imm int32
		ok  bool
	}{
		{OpBEQ, 4094, true},
		{OpBEQ, 4096, false},
		{OpBEQ, -4096, true},
		{OpBEQ, -4098, false},
		{OpBEQ, 3, false}, // misaligned
		{OpJAL, 1048574, true},
		{OpJAL, 1048576, false},
		{OpJAL, -1048576, true},
		{OpJAL, -1048578, false},
	}
	for _, c := range cases {
		in := Inst{Op: c.op, Rd: RegNone, Rs1: X1, Rs2: X2, Rs3: RegNone, Imm: c.imm}
		if c.op == OpJAL {
			in = Inst{Op: OpJAL, Rd: X1, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Imm: c.imm}
		}
		w, err := Encode(in)
		if !c.ok {
			if err == nil {
				t.Errorf("%v imm=%d: expected encode error", c.op, c.imm)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v imm=%d: %v", c.op, c.imm, err)
			continue
		}
		got, err := Decode(w)
		if err != nil {
			t.Errorf("%v imm=%d: decode: %v", c.op, c.imm, err)
			continue
		}
		if got.Imm != c.imm {
			t.Errorf("%v: imm %d round-tripped to %d", c.op, c.imm, got.Imm)
		}
	}
}
