package core

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
)

func TestImapFSMMatchesCostFormula(t *testing.T) {
	be := accel.M128()
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, loopStart := k.MustProgram()
			var end uint32
			for _, in := range prog.Insts {
				if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
					end = in.Addr + 4
				}
			}
			l, err := BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
			if err != nil {
				t.Fatal(err)
			}
			tr, sdfg, err := SimulateImapFSM(l, be, DefaultMapperOptions())
			if err != nil {
				t.Skipf("region does not map: %v", err)
			}
			_, stats, err := NewMapper(DefaultMapperOptions()).Map(l, be)
			if err != nil {
				t.Fatal(err)
			}
			cost := EstimateConfigCost(l, stats, 1)
			if tr.TotalCycles != cost.InstrMap {
				t.Errorf("FSM total %d != formula InstrMap %d", tr.TotalCycles, cost.InstrMap)
			}
			if sdfg == nil {
				t.Fatal("no SDFG produced")
			}
			// Per-instruction structure: 4 fixed states + >=1 reduce cycle.
			fixed := 0
			for _, st := range tr.Steps {
				if st.State != ImapReduce {
					fixed += st.Cycles
				}
			}
			if fixed != 4*l.Graph.Len() {
				t.Errorf("fixed cycles = %d, want %d", fixed, 4*l.Graph.Len())
			}
		})
	}
}

func TestImapFSMTimingDiagram(t *testing.T) {
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	be := accel.M128()
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := SimulateImapFSM(l, be, DefaultMapperOptions())
	if err != nil {
		t.Fatal(err)
	}
	diagram := tr.RenderTimingDiagram(6)
	if !strings.Contains(diagram, "rcfR") {
		t.Errorf("diagram missing the read/cand/filter/reduce sequence:\n%s", diagram)
	}
	if !strings.Contains(diagram, "total:") {
		t.Error("diagram missing total")
	}
	// Rows are staggered: instruction i1's states start after i0's finish.
	lines := strings.Split(diagram, "\n")
	if len(lines) < 3 {
		t.Fatalf("diagram too short:\n%s", diagram)
	}
	if len(lines[1]) <= len("i0   rcfRw") {
		t.Errorf("second row not staggered:\n%s", diagram)
	}
	t.Logf("\n%s", diagram)
}

func TestImapStateString(t *testing.T) {
	if ImapReduce.String() != "reduce" || ImapIdle.String() != "idle" {
		t.Error("state names wrong")
	}
}
