package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/sim"
)

// timeSharedBackend is the small time-multiplexed configuration the fuzzing
// subsystem also differentials against: 16 PEs, 4-way time sharing.
func timeSharedBackend() *accel.Config {
	be := accel.M128()
	be.Name = "M-16-shared"
	be.Rows, be.Cols = 4, 4
	be.FPSlice = 4
	be.MemPorts = 2
	return be
}

type batchDiffOutcome struct {
	mem     *mem.Memory
	machine *sim.Machine
	report  *Report
}

// TestBatchEngineDifferential is the controller-level lockstep gate: every
// suite kernel, under every registered placement strategy, runs its spatial
// M-128 and 4x4 time-shared configurations both on scalar engines and as
// lanes of one shared accel.BatchRunner. The batched reports must match the
// scalar ones on every observable — cycles, counters, attribution, activity,
// registers, and final memory.
func TestBatchEngineDifferential(t *testing.T) {
	strategies := mapping.Names()
	if testing.Short() {
		strategies = []string{"greedy"}
	}

	for _, sname := range strategies {
		strat, err := mapping.ByName(sname)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(sname, func(t *testing.T) {
			for _, k := range kernels.All() {
				k := k
				t.Run(k.Name, func(t *testing.T) {
					prog, loopStart := k.MustProgram()
					optsFor := func(shared bool) Options {
						var opts Options
						if shared {
							opts = DefaultOptions(timeSharedBackend())
							opts.MapperOpts.TimeShare = 4
							opts.OptimizeBatch = 8
						} else {
							opts = DefaultOptions(accel.M128())
						}
						opts.Mapper = strat
						if k.Parallel {
							opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
						}
						return opts
					}
					runOnce := func(opts Options) (batchDiffOutcome, error) {
						ctl := NewController(opts)
						m := k.NewMemory(42)
						hier := mem.MustHierarchy(mem.DefaultHierarchy())
						report, machine, err := ctl.Run(prog, m, hier, 20_000_000)
						return batchDiffOutcome{mem: m, machine: machine, report: report}, err
					}

					variants := []bool{false, true} // spatial, time-shared
					scalar := make([]batchDiffOutcome, len(variants))
					scalarErr := make([]error, len(variants))
					for i, shared := range variants {
						scalar[i], scalarErr[i] = runOnce(optsFor(shared))
					}

					// Batched: both variants as lanes of one runner. The two
					// lanes decode the same program into the same graph shape,
					// so both step on the shared BatchEngine in lockstep.
					batched := make([]batchDiffOutcome, len(variants))
					batchedErr := make([]error, len(variants))
					r := accel.NewBatchRunner(len(variants))
					var wg sync.WaitGroup
					for i, shared := range variants {
						wg.Add(1)
						go func(i int, shared bool) {
							defer wg.Done()
							h := r.Lane(i)
							defer h.Finish()
							opts := optsFor(shared)
							opts.EngineFactory = func(cfg *accel.Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (LoopEngine, error) {
								eng, err := h.Engine(cfg, g, pos, loopBranch, m, hier)
								if err != nil {
									return nil, err
								}
								return eng, nil
							}
							batched[i], batchedErr[i] = runOnce(opts)
						}(i, shared)
					}
					wg.Wait()

					for i, shared := range variants {
						name := "M-128"
						if shared {
							name = "M-16-shared"
						}
						if (batchedErr[i] != nil) != (scalarErr[i] != nil) {
							t.Errorf("%s: batched err %v, scalar err %v", name, batchedErr[i], scalarErr[i])
							continue
						}
						if scalarErr[i] != nil {
							continue
						}
						compareBatchOutcome(t, name, scalar[i], batched[i])
					}
				})
			}
		})
	}
}

func compareBatchOutcome(t *testing.T, name string, want, got batchDiffOutcome) {
	t.Helper()
	if !want.mem.Equal(got.mem) {
		t.Errorf("%s: batched memory diverged at %#x", name, want.mem.Diff(got.mem, 8))
	}
	for r := range want.machine.Regs {
		if got.machine.Regs[r] != want.machine.Regs[r] {
			t.Errorf("%s: x/f%d = %#x, scalar %#x", name, r, got.machine.Regs[r], want.machine.Regs[r])
		}
	}
	if got.report.CPURetired != want.report.CPURetired {
		t.Errorf("%s: CPURetired = %d, scalar %d", name, got.report.CPURetired, want.report.CPURetired)
	}
	if got.report.AccelIterations != want.report.AccelIterations {
		t.Errorf("%s: AccelIterations = %d, scalar %d", name, got.report.AccelIterations, want.report.AccelIterations)
	}
	if len(got.report.Regions) != len(want.report.Regions) {
		t.Fatalf("%s: %d regions, scalar %d", name, len(got.report.Regions), len(want.report.Regions))
	}
	for i := range want.report.Regions {
		p, q := want.report.Regions[i], got.report.Regions[i]
		if q.TotalCycles() != p.TotalCycles() || q.FinalII != p.FinalII || q.Bound != p.Bound ||
			q.Iterations != p.Iterations || q.Tiles != p.Tiles || q.Reconfigs != p.Reconfigs {
			t.Errorf("%s region %d: batched %.3f cyc II %.3f (%s) iters %d, scalar %.3f cyc II %.3f (%s) iters %d",
				name, i, q.TotalCycles(), q.FinalII, q.Bound, q.Iterations,
				p.TotalCycles(), p.FinalII, p.Bound, p.Iterations)
		}
		if !reflect.DeepEqual(p.Counters, q.Counters) {
			t.Errorf("%s region %d: counters differ:\nscalar:  %+v\nbatched: %+v", name, i, p.Counters, q.Counters)
		}
		if p.Activity != q.Activity {
			t.Errorf("%s region %d: activity differs:\nscalar:  %+v\nbatched: %+v", name, i, p.Activity, q.Activity)
		}
		if (p.Attrib == nil) != (q.Attrib == nil) {
			t.Fatalf("%s region %d: attribution presence differs", name, i)
		}
		if p.Attrib != nil {
			var pj, qj bytes.Buffer
			if err := p.Attrib.WriteJSON(&pj); err != nil {
				t.Fatal(err)
			}
			if err := q.Attrib.WriteJSON(&qj); err != nil {
				t.Fatal(err)
			}
			if pj.String() != qj.String() {
				t.Errorf("%s region %d: attribution differs:\nscalar:  %s\nbatched: %s",
					name, i, pj.String(), qj.String())
			}
		}
	}
}
