package core

import (
	"fmt"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mapping"
	"mesa/internal/mem"
	"mesa/internal/obs"
	"mesa/internal/sched"
	"mesa/internal/sim"
)

// defaultPlanningHorizon is the tile-choice horizon when no trip-count
// estimate is available.
const defaultPlanningHorizon = 4096.0

// Options configures a MESA Controller.
type Options struct {
	Backend  *accel.Config
	Detector DetectorConfig

	// Mapper is the placement strategy (nil selects mapping.Default(), the
	// paper's greedy hardware mapper). The strategy name participates in
	// Fingerprint, so cached results never cross strategies.
	Mapper mapping.Strategy

	// MapperOpts tunes Algorithm 1's hardware parameters; every strategy
	// receives them (refinement strategies also read the extra fields —
	// Seed, RefineSteps — while the controller fills Tiles and Attrib
	// per call).
	MapperOpts MapperOptions

	// OptimizeBatch is the number of accelerated iterations executed
	// between optimization rounds (counter-sampling windows).
	OptimizeBatch uint64

	// MaxOptimizeRounds bounds iterative remapping attempts per region.
	MaxOptimizeRounds int

	// ImproveThreshold is the fractional predicted-latency improvement a
	// new mapping must offer before MESA pays for reconfiguration.
	ImproveThreshold float64

	// EnableTiling duplicates the SDFG across the grid for loops annotated
	// as parallel (Figure 6). EnablePipelining overlaps iterations of
	// parallel loops at the initiation interval.
	EnableTiling     bool
	EnablePipelining bool
	MaxTiles         int

	// MinEstimatedIterations rejects regions whose C3 trip-count estimate
	// predicts too few remaining iterations to amortize configuration
	// (the paper finds 50–100 iterations are needed; the default is
	// conservative so short-but-repeated loops still qualify and hit the
	// configuration cache on re-entry).
	MinEstimatedIterations int

	// ConfigCacheSize is the number of loop configurations kept for reuse.
	ConfigCacheSize int

	// MaxLoopIterations is a safety bound per accelerated region.
	MaxLoopIterations uint64

	// Recorder receives the unified trace: CPU retirements, controller FSM
	// phase changes, and accelerator events. nil (the default) disables
	// tracing with no overhead beyond one branch per hook.
	Recorder *obs.Recorder

	// EngineFactory overrides how offload builds accelerator engines from
	// decoded bitstream configurations (nil uses accel.NewEngine). It is a
	// mechanism knob, not a semantics knob — implementations must behave
	// byte-identically to the scalar engine — so it is deliberately
	// excluded from Fingerprint: memoized results are valid across engine
	// mechanisms (the batched sweep path relies on this to share cache
	// entries with scalar runs).
	EngineFactory EngineFactory
}

// DefaultOptions returns the evaluation defaults for a backend.
func DefaultOptions(backend *accel.Config) Options {
	det := DefaultDetectorConfig(backend.MaxInstructions())
	det.SupportsFP = backend.FPSlice > 0
	return Options{
		Backend:                backend,
		Detector:               det,
		Mapper:                 mapping.Default(),
		MapperOpts:             DefaultMapperOptions(),
		OptimizeBatch:          32,
		MaxOptimizeRounds:      3,
		ImproveThreshold:       0.03,
		EnableTiling:           true,
		EnablePipelining:       true,
		MaxTiles:               64,
		MinEstimatedIterations: 8,
		ConfigCacheSize:        8,
		MaxLoopIterations:      50_000_000,
	}
}

// RoundReport records one counter-sampling window of an accelerated region.
type RoundReport struct {
	Iterations   uint64
	AvgIter      float64
	II           float64
	Bound        string
	Reconfigured bool
	Reverted     bool    // the previous reconfiguration regressed and was undone
	Predicted    float64 // model-predicted iteration latency after the round
}

// RegionReport summarizes one accelerated region.
type RegionReport struct {
	Region *Region
	LDFG   *LDFG
	SDFG   *SDFG
	Stats  *MapStats

	Tiles          int
	ConfigCost     ConfigCost
	ConfigCacheHit bool
	// ConfigWords is the size of the configuration bitstream actually
	// streamed to the accelerator (per tile instance).
	ConfigWords int
	// EstimatedIterations is the C3 trip-count estimate at configuration
	// time (0 when the exit condition was data-dependent).
	EstimatedIterations uint64

	Iterations     uint64
	AccelCycles    float64 // execution cycles in the chosen mode
	OverheadCycles float64 // configuration + reconfiguration cycles
	Reconfigs      int
	Rounds         []RoundReport

	FinalAvgIter float64
	FinalII      float64
	Bound        string

	// Attrib is the bottleneck attribution behind Bound, from the last
	// counter window on the final engine configuration: all four candidate
	// IIs, recurrence contributors, per-PE utilization, NoC row occupancy,
	// and port contention shares.
	Attrib *accel.Attribution

	Activity accel.Activity
	Counters *accel.Counters
}

// TotalCycles returns execution plus overhead cycles for the region.
func (r *RegionReport) TotalCycles() float64 { return r.AccelCycles + r.OverheadCycles }

// Report summarizes a full monitored program run.
type Report struct {
	CPURetired      uint64 // instructions retired on the CPU core
	AccelIterations uint64
	Regions         []*RegionReport
	DetectorStalls  int
	Rejections      map[RejectReason]int
	CacheHits       uint64
	CacheMisses     uint64
}

// Controller is the MESA hardware block: it monitors a core, detects
// accelerable regions, builds and maps DFGs, configures the accelerator,
// offloads execution, and iteratively re-optimizes from measured counters.
type Controller struct {
	opts  Options
	cache *ConfigCache

	detector *Detector
	detected *Region

	// Trace state: rec is nil when tracing is disabled; now is the global
	// trace cycle (one retired CPU instruction displays as one cycle, and
	// accelerated regions advance it by their serialized execution time).
	rec *obs.Recorder
	now float64
}

// NewController builds a controller with the given options.
func NewController(opts Options) *Controller {
	if opts.Backend == nil {
		panic("core: Options.Backend is required")
	}
	if opts.Detector.MaxInsts == 0 {
		par := opts.Detector.ParallelLoops
		opts.Detector = DefaultDetectorConfig(opts.Backend.MaxInstructions())
		opts.Detector.SupportsFP = opts.Backend.FPSlice > 0
		opts.Detector.ParallelLoops = par
		if ts := opts.MapperOpts.TimeShare; ts > 1 {
			// The time-multiplexing extension grows the structural capacity
			// criterion C1 checks.
			opts.Detector.MaxInsts *= ts
		}
	}
	if opts.MaxTiles == 0 {
		opts.MaxTiles = 64
	}
	if opts.OptimizeBatch == 0 {
		opts.OptimizeBatch = 32
	}
	if opts.MaxLoopIterations == 0 {
		opts.MaxLoopIterations = 50_000_000
	}
	if opts.Mapper == nil {
		opts.Mapper = mapping.Default()
	}
	return &Controller{
		opts:  opts,
		cache: NewConfigCache(opts.ConfigCacheSize),
		rec:   opts.Recorder,
	}
}

// mapRegion invokes the configured strategy with the controller's static
// mapper options plus the per-call context: the tile count the placement
// will run under, on re-optimization rounds the measured bottleneck
// attribution that feedback-driven strategies bias on, and — for the auto
// meta-strategy — the delegate this region already escalated to, so the
// per-region decision is sticky across rounds.
func (c *Controller) mapRegion(ldfg *LDFG, tiles int, attrib *accel.Attribution, sticky string) (*SDFG, *MapStats, error) {
	mo := c.opts.MapperOpts
	mo.Tiles = tiles
	mo.Attrib = attrib
	mo.Sticky = sticky
	sdfg, stats, err := c.opts.Mapper.Map(ldfg, c.opts.Backend, mo)
	if err != nil {
		return nil, nil, err
	}
	if c.rec.Enabled() {
		c.rec.InstantArgs(obs.PIDController, 0, "fsm", "map "+c.opts.Mapper.Name(), c.now,
			map[string]any{
				"nodes": stats.Nodes, "pe": stats.PEPlacements, "lsu": stats.LSUPlacements,
				"bus": stats.BusFallbacks, "full_searches": stats.FullSearches,
				"candidates": stats.CandidatesScanned, "refine_accepted": stats.RefineAccepted,
			})
	}
	return sdfg, stats, nil
}

// Trace implements sim.Tracer: the controller's monitoring hook.
func (c *Controller) Trace(ev sim.Event) {
	if c.detected == nil && c.detector != nil {
		if r := c.detector.Observe(ev); r != nil {
			c.detected = r
		}
	}
}

type configuredRegion struct {
	region *Region
	ldfg   *LDFG
	sdfg   *SDFG
	stats  *MapStats
	tiles  int
	report *RegionReport

	// delegate is the strategy the auto meta-strategy chose for this
	// region (empty until a remap round decides, and always empty for
	// concrete strategies). Threaded back through Options.Sticky so the
	// escalation decision holds for the region's remaining rounds.
	delegate string
}

// Run executes prog on a monitored machine, transparently offloading
// detected regions to the accelerator. The functional memory is shared
// between core and accelerator; hier provides memory timing.
func (c *Controller) Run(prog *isa.Program, memory *mem.Memory, hier *mem.Hierarchy, maxSteps uint64) (*Report, *sim.Machine, error) {
	machine := sim.New(prog, memory)
	return c.RunMachine(machine, hier, maxSteps)
}

// RunMachine is Run for a pre-built machine (allowing callers to seed
// registers before execution).
func (c *Controller) RunMachine(machine *sim.Machine, hier *mem.Hierarchy, maxSteps uint64) (*Report, *sim.Machine, error) {
	c.detector = NewDetector(machine.Prog, c.opts.Detector)
	c.detected = nil
	machine.Attach(c)
	if c.rec.Enabled() {
		c.rec.NameProcess(obs.PIDCPU, "cpu core (retired instructions)")
		c.rec.NameProcess(obs.PIDController, "mesa controller")
		c.rec.NameProcess(obs.PIDAccel, "spatial accelerator")
		// CPU retirements ride the same sim.Tracer hook the controller's
		// detector monitors; the controller clock keeps the track aligned
		// with accelerated regions.
		machine.Attach(sim.NewRetireRecorder(c.rec, func() float64 { return c.now }))
	}

	report := &Report{Rejections: c.detector.Rejections}
	configured := make(map[uint32]*configuredRegion)
	failed := make(map[uint32]bool)

	var steps uint64
	for !machine.Halted && steps < maxSteps {
		if cr, ok := configured[machine.PC]; ok {
			if err := c.offload(cr, machine, hier, report); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err := machine.Step(); err != nil {
			return nil, nil, err
		}
		steps++
		if c.rec.Enabled() {
			c.now++
		}

		if c.detected != nil {
			region := c.detected
			c.detected = nil
			if failed[region.Start] {
				continue
			}
			if c.rec.Enabled() {
				c.rec.InstantArgs(obs.PIDController, 0, "fsm", "detect", c.now,
					map[string]any{"pc": fmt.Sprintf("%#x", region.Start), "insts": region.Len()})
			}
			cr, err := c.configure(region, report, &machine.Regs)
			if err != nil {
				// Structural mapping failure: the region stays on the CPU.
				failed[region.Start] = true
				if c.rec.Enabled() {
					c.rec.InstantArgs(obs.PIDController, 0, "fsm", "reject", c.now,
						map[string]any{"reason": err.Error()})
				}
				continue
			}
			configured[region.Start] = cr
			if c.rec.Enabled() {
				cost := float64(cr.report.ConfigCost.Total())
				c.rec.CompleteArgs(obs.PIDController, 0, "fsm", "configure", c.now, cost,
					map[string]any{"tiles": cr.tiles, "cache_hit": cr.report.ConfigCacheHit})
				c.now += cost
			}
		}
	}
	if !machine.Halted {
		return nil, nil, fmt.Errorf("core: program did not halt within %d steps", maxSteps)
	}
	report.CPURetired = machine.Stats.Retired
	report.DetectorStalls = c.detector.Stalls
	report.CacheHits, report.CacheMisses = c.cache.Hits, c.cache.Misses
	return report, machine, nil
}

// configure translates a detected region to a mapped, ready configuration
// (tasks T1–T3), consulting the configuration cache first.
func (c *Controller) configure(region *Region, report *Report, regs *[isa.NumRegs]uint32) (*configuredRegion, error) {
	be := c.opts.Backend

	if sdfg, ldfg, tiles, ok := c.cache.Lookup(region.Start); ok {
		rr := &RegionReport{
			Region: region, LDFG: ldfg, SDFG: sdfg, Stats: &MapStats{},
			Tiles: tiles, ConfigCacheHit: true,
			ConfigCost: ConfigCost{ConfigWrite: tiles * cfgCyclesPerNode * ldfg.Graph.Len(), Transfer: transferCycles},
		}
		report.Regions = append(report.Regions, rr)
		return &configuredRegion{region: region, ldfg: ldfg, sdfg: sdfg, stats: rr.Stats, tiles: tiles, report: rr}, nil
	}

	ldfg, err := BuildLDFG(region.Insts, be.EstimateLat)
	if err != nil {
		return nil, err
	}
	sdfg, stats, err := c.mapRegion(ldfg, 1, nil, "")
	if err != nil {
		return nil, err
	}

	// C3 iteration-count estimate from the branch condition (§4.1): the
	// remaining trip count gates profitability and sets the tile-choice
	// planning horizon.
	horizon := float64(defaultPlanningHorizon)
	est, estOK := EstimateTripCount(ldfg, regs)
	if estOK {
		if est < uint64(c.opts.MinEstimatedIterations) {
			return nil, fmt.Errorf("core: estimated %d remaining iterations, below profitability threshold %d",
				est, c.opts.MinEstimatedIterations)
		}
		horizon = float64(est)
	}

	tiles := c.chooseTiles(region, ldfg, stats, horizon)
	rr := &RegionReport{
		Region: region, LDFG: ldfg, SDFG: sdfg, Stats: stats,
		Tiles:               tiles,
		ConfigCost:          EstimateConfigCost(ldfg, stats, tiles),
		EstimatedIterations: est,
	}
	rr.OverheadCycles = float64(rr.ConfigCost.Total())
	c.cache.Insert(region.Start, sdfg, ldfg, tiles)
	report.Regions = append(report.Regions, rr)
	return &configuredRegion{region: region, ldfg: ldfg, sdfg: sdfg, stats: stats,
		tiles: tiles, report: rr, delegate: stats.Delegate}, nil
}

// chooseTiles picks the spatial duplication factor for a parallel loop:
// bounded by free PEs, free load/store entries, the configured maximum, and
// — since every duplicated instance lengthens the configuration stream —
// the number of tiles beyond which the shared memory ports, not the
// per-tile recurrence, bound throughput anyway.
func (c *Controller) chooseTiles(region *Region, ldfg *LDFG, stats *MapStats, horizon float64) int {
	if !region.Parallel || !c.opts.EnableTiling {
		return 1
	}
	be := c.opts.Backend
	tiles := c.opts.MaxTiles
	if stats.PEPlacements > 0 {
		if byPE := be.NumPEs() / stats.PEPlacements; byPE < tiles {
			tiles = byPE
		}
	}
	if stats.LSUPlacements > 0 {
		if byLSU := be.LSUEntries() / stats.LSUPlacements; byLSU < tiles {
			tiles = byLSU
		}
	}
	if tiles < 1 {
		tiles = 1
	}

	// Every duplicated instance lengthens the configuration stream, so MESA
	// balances configuration cost against modeled steady-state throughput
	// over the expected iteration horizon (the C3 iteration-count
	// estimate): pick the tile count minimizing config + horizon × II.
	if horizon <= 0 {
		horizon = defaultPlanningHorizon
	}
	nodes := ldfg.Graph.Len()
	edges := len(ldfg.Graph.Edges(nil))
	cfgPerTile := float64(cfgCyclesPerNode*nodes + cfgCyclesPerEdge*edges)
	memII := float64(len(ldfg.MemNodes())) / float64(be.MemPorts)
	rec := recurrenceMII(ldfg.Graph)

	best, bestCost := 1, 0.0
	for t := 1; t <= tiles; t++ {
		ii := rec / float64(t)
		if memII > ii {
			ii = memII
		}
		if floor := 1.0 / float64(t); ii < floor {
			ii = floor
		}
		cost := cfgPerTile*float64(t) + horizon*ii
		if t == 1 || cost < bestCost {
			best, bestCost = t, cost
		}
	}
	return best
}

// recurrenceMII returns the loop-carried recurrence bound: the largest
// weight of a node whose output register feeds the next iteration.
func recurrenceMII(g *dfg.Graph) float64 {
	return sched.RecMII(g, func(n *dfg.Node) float64 { return n.OpLat }, true)
}

// offload transfers control to the accelerator for one full loop execution,
// running optimization rounds between counter-sampling windows, then
// resumes the CPU past the region.
func (c *Controller) offload(cr *configuredRegion, machine *sim.Machine, hier *mem.Hierarchy, report *Report) error {
	be := c.opts.Backend
	rr := cr.report
	pipelined := c.opts.EnablePipelining && cr.region.Parallel

	// Configuration travels to the accelerator as the serialized bitstream
	// (task T3): the engine is constructed from the decoded stream, so the
	// bitstream provably carries the complete configuration.
	engine, words, err := c.engineFromBitstream(be, cr.ldfg, cr.sdfg, machine.Mem, hier)
	if err != nil {
		return err
	}
	rr.ConfigWords = words
	offloadStart := c.now
	engine.AttachRecorder(c.rec, c.now)

	remaining := c.opts.MaxLoopIterations
	round := 0
	// Revert-on-regression state: after adopting a new mapping, the next
	// counter window verifies the model's prediction against reality and
	// rolls back if the measured iteration latency regressed.
	var prevSDFG *SDFG
	var prevStats *MapStats
	var prevAvg float64
	checkPending := false
	optimizeDone := false

	swapEngine := func(s *SDFG) error {
		prevEngine := engine
		var err error
		engine, _, err = c.engineFromBitstream(be, cr.ldfg, s, machine.Mem, hier)
		if err != nil {
			return err
		}
		engine.AttachRecorder(c.rec, prevEngine.TraceClock())
		rr.Activity = addActivity(rr.Activity, prevEngine.Activity())
		return nil
	}

	for remaining > 0 {
		batch := remaining
		if round < c.opts.MaxOptimizeRounds && c.opts.OptimizeBatch < batch {
			batch = c.opts.OptimizeBatch
		}
		res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{
			Pipelined: pipelined, Tiles: cr.tiles, MaxIterations: batch,
		})
		if err != nil {
			return err
		}
		remaining -= res.Iterations
		rr.Iterations += res.Iterations
		rr.AccelCycles += res.TotalCycles
		rr.FinalAvgIter, rr.FinalII, rr.Bound = res.AvgIterCycles, res.II, res.Bound
		rr.Attrib = res.Attrib
		roundRep := RoundReport{
			Iterations: res.Iterations, AvgIter: res.AvgIterCycles,
			II: res.II, Bound: res.Bound,
		}
		if c.rec.Enabled() {
			c.rec.InstantArgs(obs.PIDController, 0, "fsm", "counter window", engine.TraceClock(),
				map[string]any{"iterations": res.Iterations, "ii": res.II, "bound": res.Bound})
		}

		if checkPending {
			checkPending = false
			if res.AvgIterCycles > prevAvg*1.02 && !res.Done {
				// The adopted mapping measured worse: roll back and stop
				// optimizing (the deterministic mapper would re-propose it).
				cr.sdfg, cr.stats = prevSDFG, prevStats
				rr.SDFG, rr.Stats = prevSDFG, prevStats
				cost := ReconfigureCost(cr.ldfg, prevStats, cr.tiles)
				rr.OverheadCycles += float64(cost.Total())
				rr.Reconfigs++
				roundRep.Reverted = true
				c.cache.Insert(cr.region.Start, prevSDFG, cr.ldfg, cr.tiles)
				if err := swapEngine(prevSDFG); err != nil {
					return err
				}
				if c.rec.Enabled() {
					c.rec.Instant(obs.PIDController, 0, "fsm", "revert", engine.TraceClock())
				}
				optimizeDone = true
				rr.Rounds = append(rr.Rounds, roundRep)
				round++
				continue
			}
		}

		if res.Done {
			rr.Rounds = append(rr.Rounds, roundRep)
			break
		}

		if round < c.opts.MaxOptimizeRounds && !optimizeDone {
			// Iterative optimization: fold measured counters into the DFG
			// model, remap, and reconfigure when the model predicts a
			// sufficiently better iteration latency.
			g := cr.ldfg.Graph
			if _, _, err := engine.Feedback(g); err != nil {
				return err
			}
			current := cr.sdfg.Evaluate().Total
			currentII := cr.sdfg.PredictedII(cr.tiles)
			g.ClearMeasurements() // candidate placements use interconnect estimates
			// The measured attribution flows into the remap: feedback-driven
			// strategies (congestion) re-place away from the hot resources
			// it names, and the auto meta-strategy selects its delegate from
			// it, closing the measure → re-optimize loop.
			newSDFG, newStats, mapErr := c.mapRegion(cr.ldfg, cr.tiles, res.Attrib, cr.delegate)
			if mapErr == nil {
				if newStats.Delegate != "" {
					// Sticky per-region decision: once auto escalates,
					// later rounds keep the delegate instead of chasing
					// the shifted bottleneck of the new placement.
					cr.delegate = newStats.Delegate
				}
				predicted := newSDFG.Evaluate().Total
				roundRep.Predicted = predicted
				// For pipelined/tiled loops throughput (the initiation
				// interval) is the objective; iteration latency decides
				// serialized loops.
				better := predicted < current*(1-c.opts.ImproveThreshold)
				if pipelined || cr.tiles > 1 {
					// Throughput-bound execution: only a genuinely lower
					// initiation interval justifies paying for
					// reconfiguration.
					newII := newSDFG.PredictedII(cr.tiles)
					better = newII < currentII*(1-c.opts.ImproveThreshold)
				}
				if better && newSDFG.DiffersFrom(cr.sdfg) {
					prevSDFG, prevStats, prevAvg = cr.sdfg, cr.stats, res.AvgIterCycles
					checkPending = true
					cr.sdfg, cr.stats = newSDFG, newStats
					rr.SDFG, rr.Stats = newSDFG, newStats
					cost := ReconfigureCost(cr.ldfg, newStats, cr.tiles)
					rr.OverheadCycles += float64(cost.Total())
					rr.Reconfigs++
					roundRep.Reconfigured = true
					c.cache.Insert(cr.region.Start, newSDFG, cr.ldfg, cr.tiles)
					if err := swapEngine(newSDFG); err != nil {
						return err
					}
					if c.rec.Enabled() {
						c.rec.InstantArgs(obs.PIDController, 0, "fsm", "reconfigure", engine.TraceClock(),
							map[string]any{"predicted": roundRep.Predicted})
					}
				}
			}
		}
		rr.Rounds = append(rr.Rounds, roundRep)
		round++
	}

	rr.Activity = addActivity(rr.Activity, engine.Activity())
	// Tiling duplicates the configuration across the array: the work per
	// iteration is unchanged (iterations are divided among tiles) but the
	// powered-on region grows with the tile count.
	rr.Activity.PEsConfigured *= float64(cr.tiles)
	rr.Counters = engine.Counters()
	report.AccelIterations += rr.Iterations

	if c.rec.Enabled() {
		c.now = engine.TraceClock()
		c.rec.CompleteArgs(obs.PIDController, 0, "fsm", "offload", offloadStart, c.now-offloadStart,
			map[string]any{"iterations": rr.Iterations, "bound": rr.Bound})
		c.rec.Instant(obs.PIDController, 0, "fsm", "resume cpu", c.now)
	}

	// Control returns to the CPU at the loop's fall-through address.
	machine.PC = cr.region.End
	return nil
}

// engineFromBitstream serializes the mapping to the configuration bitstream
// and builds the accelerator engine from the decoded stream, returning the
// stream size in words. The engine comes from Options.EngineFactory when
// set (e.g. a batched lane), and accel.NewEngine otherwise; either way the
// bitstream provably carries the complete configuration.
func (c *Controller) engineFromBitstream(be *accel.Config, ldfg *LDFG, sdfg *SDFG, memory *mem.Memory, hier *mem.Hierarchy) (LoopEngine, int, error) {
	bits, err := accel.EncodeConfig(ldfg.Graph, sdfg.Pos, ldfg.LoopBranch)
	if err != nil {
		return nil, 0, err
	}
	g, pos, loopBranch, err := accel.DecodeConfig(bits)
	if err != nil {
		return nil, 0, err
	}
	if c.opts.EngineFactory != nil {
		engine, err := c.opts.EngineFactory(be, g, pos, loopBranch, memory, hier)
		if err != nil {
			return nil, 0, err
		}
		return engine, bits.Words(), nil
	}
	engine, err := accel.NewEngine(be, g, pos, loopBranch, memory, hier)
	if err != nil {
		return nil, 0, err
	}
	return engine, bits.Words(), nil
}

func addActivity(a, b accel.Activity) accel.Activity {
	pes := a.PEsConfigured
	if b.PEsConfigured > pes {
		pes = b.PEsConfigured
	}
	return accel.Activity{
		Cycles:        a.Cycles + b.Cycles,
		IntALU:        a.IntALU + b.IntALU,
		FPU:           a.FPU + b.FPU,
		NoC:           a.NoC + b.NoC,
		LSU:           a.LSU + b.LSU,
		CtrlEvents:    a.CtrlEvents + b.CtrlEvents,
		MemAccesses:   a.MemAccesses + b.MemAccesses,
		PEsConfigured: pes,
	}
}
