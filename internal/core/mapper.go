package core

import "mesa/internal/mapping"

// The placement machinery — Algorithm 1, its options, and its statistics —
// lives in internal/mapping, where it is one registered implementation of
// the pluggable mapping.Strategy interface. The aliases below keep
// internal/core's established surface working unchanged.

// MapperOptions tunes Algorithm 1's hardware parameters (and carries the
// optional refinement inputs; see mapping.Options).
type MapperOptions = mapping.Options

// DefaultMapperOptions matches the paper's hardware implementation.
func DefaultMapperOptions() MapperOptions { return mapping.DefaultOptions() }

// MapStats reports what the mapper did, feeding the imap FSM timing model
// (Figure 8) and the experiments.
type MapStats = mapping.MapStats

// Mapper implements the paper's Algorithm 1: a single-pass, greedy,
// locally latency-minimizing assignment of LDFG nodes to backend positions.
type Mapper = mapping.Mapper

// NewMapper returns a Mapper with the given options.
func NewMapper(opts MapperOptions) *Mapper { return mapping.NewMapper(opts) }
