package core_test

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/genkern"
	"mesa/internal/mapping"
	"mesa/internal/noc"
)

// TestMapperInvariantsOnRandomGraphs maps hundreds of random loop bodies
// and checks Algorithm 1's structural invariants on every placement:
// occupancy (F_free), capability (F_op), memory nodes on LSU slots, and
// bookkeeping consistency.
func TestMapperInvariantsOnRandomGraphs(t *testing.T) {
	backends := []*accel.Config{accel.M64(), accel.M128(), accel.M512()}
	for seed := int64(0); seed < 150; seed++ {
		g, err := genkern.Generate(seed, genkern.DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog := g.Prog
		// Extract the loop body.
		var loopStart, end uint32
		for _, in := range prog.Insts {
			if in.IsBackwardBranch() {
				loopStart, end = in.BranchTarget(), in.Addr+4
			}
		}
		body := prog.Slice(loopStart, end)
		be := backends[seed%int64(len(backends))]
		l, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		share := 1 + int(seed%3) // also exercise the time-sharing extension
		opts := core.DefaultMapperOptions()
		opts.TimeShare = share
		s, stats, err := core.NewMapper(opts).Map(l, be)
		if err != nil {
			continue // structural rejection is a valid outcome
		}

		occupancy := map[noc.Coord]int{}
		buses := 0
		for i := range l.Graph.Nodes {
			id := dfg.NodeID(i)
			n := l.Graph.Node(id)
			if !s.Placed(id) {
				t.Fatalf("seed %d: node %d unplaced", seed, i)
			}
			if s.OnBus(id) {
				buses++
				continue
			}
			p := s.Pos[id]
			occupancy[p]++
			isMem := (n.Inst.IsLoad() || n.Inst.IsStore()) && !n.Fwd
			if isMem {
				if !be.IsEdge(p) {
					t.Fatalf("seed %d: memory node %d at %v (not an LSU slot)", seed, i, p)
				}
				continue
			}
			if !be.InBounds(p) {
				t.Fatalf("seed %d: compute node %d off-grid at %v", seed, i, p)
			}
			if !be.Supports(p, mapping.ClassOf(n)) {
				t.Fatalf("seed %d: node %d (%v) violates F_op at %v", seed, i, n.Inst.Op, p)
			}
		}
		for p, k := range occupancy {
			if k > share {
				t.Fatalf("seed %d: coordinate %v holds %d nodes (limit %d)", seed, p, k, share)
			}
		}
		if stats.BusFallbacks != buses {
			t.Fatalf("seed %d: stats.BusFallbacks=%d, counted %d", seed, stats.BusFallbacks, buses)
		}
		if stats.PEPlacements+stats.LSUPlacements+stats.BusFallbacks != l.Graph.Len() {
			t.Fatalf("seed %d: placement counts don't add up: %+v vs %d nodes",
				seed, stats, l.Graph.Len())
		}

		// The mapper's incremental completion estimates agree with a fresh
		// evaluation over the final placement when no measurements exist:
		// each node's estimate is at most the final value (later placements
		// cannot reduce earlier arrival times under greedy order) and the
		// final evaluation is well-formed.
		ev := s.Evaluate()
		if ev.Total <= 0 {
			t.Fatalf("seed %d: degenerate evaluation", seed)
		}
	}
}

// TestMapperDeterminism: identical inputs produce identical placements.
func TestMapperDeterminism(t *testing.T) {
	g, err := genkern.Generate(99, genkern.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	prog := g.Prog
	var loopStart, end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() {
			loopStart, end = in.BranchTarget(), in.Addr+4
		}
	}
	be := accel.M128()
	body := prog.Slice(loopStart, end)
	l1, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l1, be)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l2, be)
	if err != nil {
		t.Fatal(err)
	}
	if s1.DiffersFrom(s2) {
		t.Error("mapper is not deterministic")
	}
}
