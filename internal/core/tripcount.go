package core

import (
	"mesa/internal/alu"
	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// EstimateTripCount implements the second half of criterion C3 (§4.1):
// "MESA makes an estimate of the loop's expected iteration count based on
// the branch condition and PC trace." Given the LDFG and the architectural
// register values at loop entry, it recognizes the canonical induction
// pattern — the loop branch comparing a register advanced by a constant
// step per iteration against a loop-invariant bound — and solves for the
// remaining iterations.
//
// Returns (count, true) on success; (0, false) when the loop's exit
// condition is data-dependent (e.g. a moving bound or a comparison between
// two updated registers), in which case the caller falls back to the
// observed-iterations heuristic.
func EstimateTripCount(l *LDFG, regs *[isa.NumRegs]uint32) (uint64, bool) {
	if l.LoopBranch == dfg.None {
		return 0, false
	}
	g := l.Graph
	br := g.Node(l.LoopBranch)
	if !br.Inst.IsBranch() {
		return 0, false
	}

	// Classify each branch operand: an induction value (register updated by
	// rd = rd + imm each iteration) or a loop-invariant live-in.
	type side struct {
		induction bool
		reg       isa.Reg
		step      int32
		value     uint32
		ok        bool
	}
	classify := func(src dfg.NodeID, liveIn isa.Reg) side {
		switch {
		case src != dfg.None:
			n := g.Node(src)
			// The branch usually consumes the induction update directly.
			if n.Inst.Op == isa.OpADDI && n.Inst.Rs1 == n.Inst.Rd {
				rd := n.Inst.Rd
				// The register must be carried to the next iteration by
				// this same node.
				if g.LiveOut[rd] == src {
					return side{induction: true, reg: rd, step: n.Inst.Imm,
						value: regs[rd], ok: true}
				}
			}
			return side{}
		case liveIn != isa.RegNone:
			// Loop-invariant only if nothing in the region writes it.
			if _, written := g.LiveOut[liveIn]; written {
				return side{}
			}
			v := uint32(0)
			if liveIn != isa.X0 {
				v = regs[liveIn]
			}
			return side{reg: liveIn, value: v, ok: true}
		}
		return side{}
	}

	s1 := classify(br.Src[0], br.LiveIn[0])
	s2 := classify(br.Src[1], br.LiveIn[1])
	if !s1.ok || !s2.ok {
		return 0, false
	}

	// Normalize to (induction, bound).
	ind, bound := s1, s2
	if !ind.induction {
		ind, bound = s2, s1
	}
	if !ind.induction || bound.induction || ind.step == 0 {
		return 0, false
	}

	// The loop continues while the branch is taken; count evaluations until
	// it first falls through. cur is the induction value at the first branch
	// evaluation after entry.
	cur := int64(int32(ind.value)) + int64(ind.step)
	bnd := bound.value
	step := int64(ind.step)
	op := br.Inst.Op
	indIsFirst := s1.induction

	evalTaken := func(v int64) (bool, bool) {
		var a, b uint32
		if indIsFirst {
			a, b = uint32(v), bnd
		} else {
			a, b = bnd, uint32(v)
		}
		t, err := alu.EvalBranch(op, a, b)
		return t, err == nil
	}

	// Fast closed form for the canonical counted loop: blt ind, bound with a
	// positive step.
	if indIsFirst && op == isa.OpBLT && step > 0 {
		b := int64(int32(bnd))
		if cur >= b {
			return 1, true
		}
		return uint64((b-cur+step-1)/step) + 1, true
	}

	// General case: walk the induction sequence (bounded; returns false if
	// the loop does not provably terminate within the cap).
	const walkCap = 1 << 20
	v := cur
	for i := uint64(1); i <= walkCap; i++ {
		t, ok := evalTaken(v)
		if !ok {
			return 0, false
		}
		if !t {
			return i, true
		}
		v += step
	}
	return 0, false
}
