package core

import (
	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

// LoopEngine is the accelerator-engine contract the controller's offload
// loop consumes: the exact subset of *accel.Engine it calls. The scalar
// engine implements it directly; accel.BatchLaneEngine implements it over
// one lane of a shared lockstep batch. Any implementation must be
// observationally identical to the scalar engine — the controller's revert
// and feedback decisions compare measured latencies across windows, so a
// divergent engine would change optimization behavior, not just timing.
type LoopEngine interface {
	AttachRecorder(r *obs.Recorder, base float64)
	TraceClock() float64
	RunLoop(regs *[isa.NumRegs]uint32, opts accel.LoopOptions) (*accel.LoopResult, error)
	Feedback(g *dfg.Graph) (nodes, edges int, err error)
	Counters() *accel.Counters
	Activity() accel.Activity
}

// EngineFactory builds the engine for one offload, from the configuration
// the controller decoded out of the bitstream. It is a mechanism hook, not
// a semantics hook: implementations must return engines byte-identical in
// behavior to accel.NewEngine (the batched differential tests enforce
// this), which is why the factory is excluded from Options.Fingerprint —
// cached results are valid across engine mechanisms.
type EngineFactory func(cfg *accel.Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (LoopEngine, error)
