package core

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mapping"
	"mesa/internal/noc"
)

// loopBody assembles a region (instructions only, ending with the loop
// branch) from assembly text.
func loopBody(t *testing.T, src string) []isa.Inst {
	t.Helper()
	p, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Insts
}

func constLat(in isa.Inst) float64 { return 1 }

func TestRenameTable(t *testing.T) {
	rt := NewRenameTable()
	if rt.Producer(isa.X5) != dfg.None {
		t.Error("unwritten register should be live-in")
	}
	rt.Write(isa.X5, 3)
	if rt.Producer(isa.X5) != 3 {
		t.Error("producer not recorded")
	}
	rt.Write(isa.X5, 7)
	if rt.Producer(isa.X5) != 7 {
		t.Error("producer not updated")
	}
	rt.Write(isa.X0, 9)
	if rt.Producer(isa.X0) != dfg.None {
		t.Error("x0 must not be renamed")
	}
	snap := rt.Snapshot()
	if len(snap) != 1 || snap[isa.X5] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestBuildLDFGRenaming(t *testing.T) {
	// The paper's Figure 3 renaming example: i1 writes r0, i2 reads r0.
	body := loopBody(t, `
	add  x5, x6, x7
	add  x8, x5, x5
	addi x5, x8, 1
	add  x9, x5, x6
	blt  x9, x10, -16
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	g := l.Graph
	// i2 reads x5 twice: both slots renamed to i0.
	if g.Node(1).Src[0] != 0 || g.Node(1).Src[1] != 0 {
		t.Errorf("i1 sources = %v", g.Node(1).Src)
	}
	// i3 redefines x5; i4 must read the NEW producer (i2).
	if g.Node(3).Src[0] != 2 {
		t.Errorf("i3 src1 = %v, want i2", g.Node(3).Src[0])
	}
	// x6 is never written: live-in.
	if g.Node(0).LiveIn[0] != isa.X6 || g.Node(0).Src[0] != dfg.None {
		t.Errorf("i0 should read live-in x6, got %v/%v", g.Node(0).Src[0], g.Node(0).LiveIn[0])
	}
	// Live-outs: x5 -> i2, x8 -> i1, x9 -> i3.
	if g.LiveOut[isa.X5] != 2 || g.LiveOut[isa.X8] != 1 || g.LiveOut[isa.X9] != 3 {
		t.Errorf("live-outs = %v", g.LiveOut)
	}
	// The closing branch is the loop branch.
	if l.LoopBranch != 4 {
		t.Errorf("loop branch = %v", l.LoopBranch)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLDFGPredication(t *testing.T) {
	// Forward branch shadowing one instruction that redefines x5.
	body := loopBody(t, `
	addi x5, x6, 1
	beq  x6, x7, 8
	addi x5, x5, 10
	add  x8, x5, x5
	blt  x8, x9, -16
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	g := l.Graph
	sh := g.Node(2) // the shadowed addi
	if sh.CtrlDep != 1 {
		t.Errorf("ctrl dep = %v, want branch i1", sh.CtrlDep)
	}
	if sh.PredDep != 0 {
		t.Errorf("pred dep = %v, want i0 (previous x5 producer)", sh.PredDep)
	}
	// The consumer after the shadow reads the shadowed producer.
	if g.Node(3).Src[0] != 2 {
		t.Errorf("post-shadow consumer src = %v", g.Node(3).Src[0])
	}
	// Instruction after the shadow is NOT control-dependent.
	if g.Node(3).CtrlDep != dfg.None {
		t.Errorf("i3 should not be shadowed, ctrl = %v", g.Node(3).CtrlDep)
	}
}

func TestBuildLDFGPredLiveIn(t *testing.T) {
	// Shadowed instruction whose destination has no prior producer: the
	// old value comes from the live-in register.
	body := loopBody(t, `
	beq  x6, x7, 8
	addi x5, x6, 10
	add  x8, x5, x5
	blt  x8, x9, -12
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	n := l.Graph.Node(1)
	if n.PredDep != dfg.None || n.PredLiveIn != isa.X5 {
		t.Errorf("pred live-in = %v/%v, want live-in x5", n.PredDep, n.PredLiveIn)
	}
}

func TestBuildLDFGStoreLoadForwarding(t *testing.T) {
	// sw then lw at the same address: the load forwards the stored value.
	body := loopBody(t, `
	add x5, x6, x7
	sw  x5, 8(x10)
	lw  x8, 8(x10)
	lw  x9, 12(x10)
	add x11, x8, x9
	blt x11, x12, -20
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	g := l.Graph
	fwd := g.Node(2)
	if !fwd.Fwd {
		t.Fatal("exact-match load should forward")
	}
	if fwd.Src[1] != 0 {
		t.Errorf("forwarded data source = %v, want i0", fwd.Src[1])
	}
	if l.Forwarded != 1 {
		t.Errorf("Forwarded = %d", l.Forwarded)
	}
	// The disjoint load must NOT forward or depend on the store.
	other := g.Node(3)
	if other.Fwd || other.MemDep != dfg.None {
		t.Errorf("disjoint load got fwd=%v memdep=%v", other.Fwd, other.MemDep)
	}
}

func TestBuildLDFGOverlappingStoreOrders(t *testing.T) {
	// sb overlapping a later lw (same base, inexact): must order after.
	body := loopBody(t, `
	sb  x5, 9(x10)
	lw  x8, 8(x10)
	add x9, x8, x8
	blt x9, x12, -12
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Graph.Node(1).MemDep; got != 0 {
		t.Errorf("overlapping load memdep = %v, want i0", got)
	}
}

func TestBuildLDFGInductionDetection(t *testing.T) {
	body := loopBody(t, `
	lw   x5, 0(x10)
	addi x10, x10, 4
	addi x6, x6, 1
	blt  x6, x7, -12
`)
	l, err := BuildLDFG(body, constLat)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Inductions) != 2 {
		t.Errorf("inductions = %v, want [i1 i2]", l.Inductions)
	}
}

func TestCheckRegionRejections(t *testing.T) {
	cfg := DefaultDetectorConfig(128)
	cases := []struct {
		name   string
		src    string
		reason RejectReason
	}{
		{"system", "ecall\nbne x5, x6, -4", RejectSystemInst},
		{"indirect", "jalr x0, 0(x5)\nbne x5, x6, -4", RejectIndirectJump},
		{"call", "jal x1, fn\nfn: nop\nbne x5, x6, -8", RejectCall},
		{"inner-loop", "addi x5, x5, 1\nbne x5, x6, -4\nbne x5, x7, -8", RejectInnerLoop},
		{"early-exit", "beq x5, x6, 12\naddi x5, x5, 1\nbne x5, x7, -8", RejectEarlyExit},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			insts := loopBody(t, c.src)
			_, reason := CheckRegion(insts, cfg)
			if reason != c.reason {
				t.Errorf("reason = %q, want %q", reason, c.reason)
			}
		})
	}

	// A clean loop passes with the right mix.
	insts := loopBody(t, `
	lw   x5, 0(x10)
	add  x6, x6, x5
	addi x10, x10, 4
	addi x7, x7, 1
	blt  x7, x8, -16
`)
	mix, reason := CheckRegion(insts, cfg)
	if reason != "" {
		t.Fatalf("clean loop rejected: %v", reason)
	}
	if mix.Compute != 3 || mix.Memory != 1 || mix.Control != 1 {
		t.Errorf("mix = %+v", mix)
	}

	// FP on a non-FP backend is rejected.
	cfg.SupportsFP = false
	fp := loopBody(t, "fadd.s f1, f2, f3\nbne x5, x6, -4")
	if _, reason := CheckRegion(fp, cfg); reason != RejectUnsupportedFP {
		t.Errorf("FP reason = %q", reason)
	}
}

// TestFigure4RowSliceVsMesh reproduces the paper's Figure 4: placing i3
// (which depends only on i1) under two interconnects. With the hierarchical
// row-slice interconnect, any free in-row position is optimal (1 cycle);
// with the mesh, the free position nearest to i1 wins.
func TestFigure4RowSliceVsMesh(t *testing.T) {
	mkBackend := func(ic noc.Interconnect) *accel.Config {
		be := accel.M128()
		be.Rows, be.Cols = 4, 4
		be.FPSlice = 4 // make all of the top-left 4x4 FP-capable
		be.Interconnect = ic
		return be
	}
	body := loopBody(t, `
	fadd.s f1, f2, f3
	fmul.s f4, f1, f1
	fmul.s f5, f1, f1
	blt    x5, x6, -12
`)

	for _, tc := range []struct {
		name string
		ic   noc.Interconnect
	}{
		{"rowslice", noc.DefaultRowSlice()},
		{"mesh", noc.Mesh{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			be := mkBackend(tc.ic)
			l, err := BuildLDFG(body, be.EstimateLat)
			if err != nil {
				t.Fatal(err)
			}
			s, _, err := NewMapper(DefaultMapperOptions()).Map(l, be)
			if err != nil {
				t.Fatal(err)
			}
			// i3 (node 2) transfer latency from i1 (node 0) must be the
			// interconnect's minimum achievable from a free slot.
			got := tc.ic.Latency(s.Pos[0], s.Pos[2])
			if got > 2 {
				t.Errorf("i3 placed %v from i1 at %v: lat %d too far", s.Pos[2], s.Pos[0], got)
			}
			// Positions must be distinct and valid.
			if s.Pos[1] == s.Pos[2] {
				t.Error("i2 and i3 share a PE")
			}
			for i := 0; i < 3; i++ {
				if !be.InBounds(s.Pos[i]) {
					t.Errorf("node %d off-grid at %v", i, s.Pos[i])
				}
				if !be.Supports(s.Pos[i], l.Graph.Node(dfg.NodeID(i)).Inst.Class()) {
					t.Errorf("node %d at %v violates F_op", i, s.Pos[i])
				}
			}
		})
	}
}

func TestMapperPlacesMemOnEdges(t *testing.T) {
	be := accel.M128()
	body := loopBody(t, `
	lw   x5, 0(x10)
	add  x6, x6, x5
	sw   x6, 0(x11)
	addi x10, x10, 4
	addi x11, x11, 4
	addi x7, x7, 1
	blt  x7, x8, -24
`)
	l, err := BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	s, stats, err := NewMapper(DefaultMapperOptions()).Map(l, be)
	if err != nil {
		t.Fatal(err)
	}
	if !be.IsEdge(s.Pos[0]) || !be.IsEdge(s.Pos[2]) {
		t.Errorf("memory nodes not on edges: %v %v", s.Pos[0], s.Pos[2])
	}
	if stats.LSUPlacements != 2 || stats.PEPlacements != 5 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.BusFallbacks != 0 {
		t.Errorf("unexpected bus fallbacks: %d", stats.BusFallbacks)
	}
	// Every node occupies a unique coordinate.
	seen := map[noc.Coord]bool{}
	for i, p := range s.Pos {
		if seen[p] {
			t.Errorf("node %d duplicates position %v", i, p)
		}
		seen[p] = true
	}
}

func TestMapperRejectsOversizedRegions(t *testing.T) {
	be := accel.M64()
	var sb strings.Builder
	for i := 0; i < be.MaxInstructions(); i++ {
		sb.WriteString("add x5, x6, x7\n")
	}
	sb.WriteString("blt x5, x8, -4\n")
	body := loopBody(t, sb.String())
	l, err := BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewMapper(DefaultMapperOptions()).Map(l, be); err == nil {
		t.Fatal("oversized region should fail to map")
	}
}

func TestMapperFPOnlyOnFPPEs(t *testing.T) {
	be := accel.M128()
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		sb.WriteString("fadd.s f1, f2, f3\n")
	}
	sb.WriteString("blt x5, x8, -4\n")
	body := loopBody(t, sb.String())
	l, err := BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := NewMapper(DefaultMapperOptions()).Map(l, be)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if s.OnBus(dfg.NodeID(i)) {
			continue
		}
		if !be.HasFP(s.Pos[i]) {
			t.Errorf("FP node %d on non-FP PE %v", i, s.Pos[i])
		}
	}
}

func TestConfigCostScales(t *testing.T) {
	be := accel.M128()
	small := loopBody(t, "add x5, x6, x7\nblt x5, x8, -4")
	l, err := BuildLDFG(small, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := NewMapper(DefaultMapperOptions()).Map(l, be)
	if err != nil {
		t.Fatal(err)
	}
	c1 := EstimateConfigCost(l, stats, 1)
	c4 := EstimateConfigCost(l, stats, 4)
	if c1.Total() <= 0 {
		t.Fatal("zero config cost")
	}
	if c4.ConfigWrite != 4*c1.ConfigWrite {
		t.Errorf("tiled config write = %d, want 4x%d", c4.ConfigWrite, c1.ConfigWrite)
	}
	r := ReconfigureCost(l, stats, 1)
	if r.Total() >= c1.Total() {
		t.Error("reconfiguration should be cheaper than initial configuration")
	}
	if c1.Micros(2.0) <= 0 {
		t.Error("Micros broken")
	}
}

func TestConfigCache(t *testing.T) {
	c := NewConfigCache(2)
	s := &SDFG{}
	l := &LDFG{}
	c.Insert(0x100, s, l, 1)
	c.Insert(0x200, s, l, 2)
	if _, _, tiles, ok := c.Lookup(0x100); !ok || tiles != 1 {
		t.Fatal("lookup miss for cached entry")
	}
	c.Insert(0x300, s, l, 3) // evicts LRU (0x200)
	if _, _, _, ok := c.Lookup(0x200); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, _, _, ok := c.Lookup(0x100); !ok {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestReductionDepth(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2, 8: 3, 32: 5, 33: 6}
	for n, want := range cases {
		if got := mapping.ReductionDepth(n); got != want {
			t.Errorf("mapping.ReductionDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSDFGString(t *testing.T) {
	be := accel.M64()
	body := loopBody(t, "add x5, x6, x7\nlw x8, 0(x9)\nblt x5, x8, -8")
	l, err := BuildLDFG(body, be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := NewMapper(DefaultMapperOptions()).Map(l, be)
	if err != nil {
		t.Fatal(err)
	}
	if out := s.String(); !strings.Contains(out, "i0") {
		t.Errorf("grid dump missing nodes:\n%s", out)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %f", u)
	}
}
