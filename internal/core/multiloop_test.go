package core

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// TestControllerMultipleRegions: a program with two distinct hot loops must
// have both detected, mapped, and offloaded independently.
func TestControllerMultipleRegions(t *testing.T) {
	prog := asm.MustAssemble(0x1000, `
	# phase 1: scale an array
	li   a0, 0x100000
	li   t0, 0
	li   t1, 512
scale:
	lw   t2, 0(a0)
	slli t2, t2, 1
	sw   t2, 0(a0)
	addi a0, a0, 4
	addi t0, t0, 1
	blt  t0, t1, scale
	# phase 2: sum a different array
	li   a1, 0x200000
	li   t0, 0
	li   t3, 0
sum:
	lw   t4, 0(a1)
	add  t3, t3, t4
	addi a1, a1, 4
	addi t0, t0, 1
	blt  t0, t1, sum
	li   a2, 0x300000
	sw   t3, 0(a2)
	ecall
`)
	setup := func() *mem.Memory {
		m := mem.NewMemory()
		for i := uint32(0); i < 512; i++ {
			m.StoreWord(0x100000+4*i, i+1)
			m.StoreWord(0x200000+4*i, 2*i+3)
		}
		return m
	}

	refMem := setup()
	refMachine := sim.New(prog, refMem)
	if _, err := refMachine.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	ctl := NewController(DefaultOptions(accel.M128()))
	m := setup()
	report, machine, err := ctl.Run(prog, m, mem.MustHierarchy(mem.DefaultHierarchy()), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) != 2 {
		t.Fatalf("accelerated %d regions, want 2 (rejections: %v)", len(report.Regions), report.Rejections)
	}
	for i, rr := range report.Regions {
		if rr.Iterations < 400 {
			t.Errorf("region %d: only %d iterations accelerated", i, rr.Iterations)
		}
	}
	if !refMem.Equal(m) {
		t.Fatal("memory mismatch")
	}
	if machine.Regs[isa.X28] != refMachine.Regs[isa.X28] { // t3 = sum
		t.Fatalf("sum register mismatch: %d vs %d", machine.Regs[isa.X28], refMachine.Regs[isa.X28])
	}
}

// TestDetectorICacheFallback: instructions skipped by a consistently-taken
// forward branch never retire, so the trace cache must fetch them from the
// I-cache (counted as stalls) before the region can be validated.
func TestDetectorICacheFallback(t *testing.T) {
	prog := asm.MustAssemble(0x1000, `
	li   t0, 0
	li   t1, 64
	li   t2, 0
loop:
	beq  t2, zero, skip  # always taken: the addi below never retires
	addi t3, t3, 7
skip:
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`)
	ctl := NewController(DefaultOptions(accel.M128()))
	m := mem.NewMemory()
	report, machine, err := ctl.Run(prog, m, mem.MustHierarchy(mem.DefaultHierarchy()), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) != 1 {
		t.Fatalf("regions = %d (rejections: %v)", len(report.Regions), report.Rejections)
	}
	if report.DetectorStalls == 0 {
		t.Error("expected I-cache fallback stalls for the never-retired instruction")
	}
	// The predicated add must never have fired.
	if machine.Regs[isa.X28] != 0 {
		t.Errorf("t3 = %d, want 0 (shadowed add always disabled)", machine.Regs[isa.X28])
	}
	if machine.Regs[isa.RegT0] != 64 {
		t.Errorf("t0 = %d, want 64", machine.Regs[isa.RegT0])
	}
}

// TestControllerStraightLineLoopViaJ: an unconditional backward jump closes
// an infinite loop; such loops cannot exit and must not be misdetected in a
// way that breaks execution (the region is rejected for having no valid
// exit path: the closing jump never falls through, so execution would never
// return — the detector accepts it, but the accelerated loop is bounded by
// MaxLoopIterations). This test uses a conditional exit to stay realistic.
func TestControllerLoopWithEarlyBoundUpdate(t *testing.T) {
	// The loop bound lives in a register the loop itself updates: the
	// branch compares against a moving target, exercising live-out
	// round-trips between accelerator iterations.
	prog := asm.MustAssemble(0x1000, `
	li   t0, 0
	li   t1, 100
loop:
	addi t0, t0, 1
	addi t1, t1, -1
	blt  t0, t1, loop
	ecall
`)
	refMem := mem.NewMemory()
	refMachine := sim.New(prog, refMem)
	if _, err := refMachine.Run(100_000); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(DefaultOptions(accel.M128()))
	report, machine, err := ctl.Run(prog, mem.NewMemory(), mem.MustHierarchy(mem.DefaultHierarchy()), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if machine.Regs[isa.RegT0] != refMachine.Regs[isa.RegT0] ||
		machine.Regs[isa.RegT1] != refMachine.Regs[isa.RegT1] {
		t.Fatalf("registers diverged: t0=%d/%d t1=%d/%d",
			machine.Regs[isa.RegT0], refMachine.Regs[isa.RegT0],
			machine.Regs[isa.RegT1], refMachine.Regs[isa.RegT1])
	}
	_ = report
}

// TestControllerRejectsUnsupportedLoops: loops with calls or inner loops
// stay on the CPU and still execute correctly.
func TestControllerRejectsUnsupportedLoops(t *testing.T) {
	prog := asm.MustAssemble(0x1000, `
	li   t0, 0
	li   t1, 32
outer:
	li   t2, 0
inner:
	addi t2, t2, 1
	blt  t2, t1, inner
	add  t3, t3, t2
	addi t0, t0, 1
	blt  t0, t1, outer
	ecall
`)
	ctl := NewController(DefaultOptions(accel.M128()))
	report, machine, err := ctl.Run(prog, mem.NewMemory(), mem.MustHierarchy(mem.DefaultHierarchy()), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The inner loop (a clean counted loop) is accelerable; the outer loop
	// containing it is not (C2 inner-loop rejection).
	if report.Rejections[RejectInnerLoop] == 0 {
		t.Errorf("outer loop not rejected: %v", report.Rejections)
	}
	if machine.Regs[isa.X28] != 32*32 {
		t.Errorf("t3 = %d, want 1024", machine.Regs[isa.X28])
	}
}
