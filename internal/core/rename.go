// Package core implements the MESA controller — the paper's primary
// contribution. It monitors a CPU's retired-instruction stream for
// accelerable loops (§4.1, criteria C1–C3), translates a detected region
// into the Logical DFG via instruction renaming (§3.2), spatially maps the
// LDFG onto an accelerator backend with the greedy latency-minimizing
// Algorithm 1 to form the Spatial DFG (§3.3), emits the accelerator
// configuration (§4.3), and iteratively re-optimizes the mapping from
// measured performance counters.
package core

import (
	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// RenameTable generalizes out-of-order register renaming: architectural
// registers are renamed to the instruction (LDFG node) that last wrote them.
// There are as many "physical registers" as instructions, mirroring a
// spatial accelerator where every PE produces its own output (paper §3.2).
type RenameTable struct {
	producer [isa.NumRegs]dfg.NodeID
}

// NewRenameTable returns a table with every register unmapped (live-in).
func NewRenameTable() *RenameTable {
	t := &RenameTable{}
	t.Reset()
	return t
}

// Reset unmaps every register.
func (t *RenameTable) Reset() {
	for i := range t.producer {
		t.producer[i] = dfg.None
	}
}

// Producer returns the node that last wrote r, or dfg.None when the value is
// live-in to the region.
func (t *RenameTable) Producer(r isa.Reg) dfg.NodeID {
	if r == isa.RegNone || r == isa.X0 {
		return dfg.None
	}
	return t.producer[r]
}

// Write records node id as the latest producer of register r.
func (t *RenameTable) Write(r isa.Reg, id dfg.NodeID) {
	if r == isa.RegNone || r == isa.X0 {
		return
	}
	t.producer[r] = id
}

// Snapshot copies the table's current mapping for all written registers.
func (t *RenameTable) Snapshot() map[isa.Reg]dfg.NodeID {
	out := make(map[isa.Reg]dfg.NodeID)
	for r, id := range t.producer {
		if id != dfg.None {
			out[isa.Reg(r)] = id
		}
	}
	return out
}
