package core

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/dfg"
	"mesa/internal/mapping"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

func fingerprintOf(t *testing.T, o *Options) string {
	t.Helper()
	var b strings.Builder
	o.Fingerprint(&b)
	return b.String()
}

// TestFingerprintDistinguishesStrategies: the memo-cache key must change
// with the placement strategy, so results computed under one mapper are
// never served for another.
func TestFingerprintDistinguishesStrategies(t *testing.T) {
	base := DefaultOptions(accel.M128())
	prints := map[string]string{}
	for _, name := range mapping.Names() {
		strat, err := mapping.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := base
		o.Mapper = strat
		fp := fingerprintOf(t, &o)
		for other, ofp := range prints {
			if fp == ofp {
				t.Errorf("strategies %q and %q produce identical fingerprints", name, other)
			}
		}
		prints[name] = fp
	}

	// A nil Mapper means the greedy default and must key like it.
	o := base
	o.Mapper = nil
	if got, want := fingerprintOf(t, &o), prints["greedy"]; got != want {
		t.Errorf("nil Mapper fingerprint differs from greedy:\n%s\nvs\n%s", got, want)
	}
}

// TestFingerprintKeysRefinementKnobs: the annealing budget and seed are
// timing-relevant under greedy+anneal and must perturb the key.
func TestFingerprintKeysRefinementKnobs(t *testing.T) {
	o := DefaultOptions(accel.M128())
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	o.Mapper = anneal
	base := fingerprintOf(t, &o)

	seeded := o
	seeded.MapperOpts.Seed = 7
	if fingerprintOf(t, &seeded) == base {
		t.Error("MapperOpts.Seed does not perturb the fingerprint")
	}
	steps := o
	steps.MapperOpts.RefineSteps = 50
	if fingerprintOf(t, &steps) == base {
		t.Error("MapperOpts.RefineSteps does not perturb the fingerprint")
	}
}

// TestFingerprintDistinguishesEveryOption: every semantics-bearing Options
// field must perturb the fingerprint — a collision would let scalar and
// batched sweeps (which share the memo cache by design) serve one
// configuration's result for another.
func TestFingerprintDistinguishesEveryOption(t *testing.T) {
	congestion, err := mapping.ByName("congestion")
	if err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		name   string
		mutate func(o *Options)
	}{
		{"Backend", func(o *Options) { o.Backend = accel.M512() }},
		{"Detector.MaxInsts", func(o *Options) { o.Detector.MaxInsts++ }},
		{"Detector.StableIterations", func(o *Options) { o.Detector.StableIterations++ }},
		{"Detector.MinIterations", func(o *Options) { o.Detector.MinIterations++ }},
		{"Detector.MaxMemFrac", func(o *Options) { o.Detector.MaxMemFrac += 0.125 }},
		{"Detector.SupportsFP", func(o *Options) { o.Detector.SupportsFP = !o.Detector.SupportsFP }},
		{"Detector.ParallelLoops", func(o *Options) { o.Detector.ParallelLoops = map[uint32]bool{0x1000: true} }},
		{"Mapper", func(o *Options) { o.Mapper = congestion }},
		{"MapperOpts.WindowRows", func(o *Options) { o.MapperOpts.WindowRows++ }},
		{"MapperOpts.WindowCols", func(o *Options) { o.MapperOpts.WindowCols++ }},
		{"MapperOpts.FullSearchFallback", func(o *Options) { o.MapperOpts.FullSearchFallback = !o.MapperOpts.FullSearchFallback }},
		{"MapperOpts.DisableTieBreak", func(o *Options) { o.MapperOpts.DisableTieBreak = !o.MapperOpts.DisableTieBreak }},
		{"MapperOpts.TimeShare", func(o *Options) { o.MapperOpts.TimeShare = 4 }},
		{"MapperOpts.Tiles", func(o *Options) { o.MapperOpts.Tiles = 2 }},
		{"MapperOpts.Seed", func(o *Options) { o.MapperOpts.Seed = 7 }},
		{"MapperOpts.RefineSteps", func(o *Options) { o.MapperOpts.RefineSteps = 50 }},
		{"OptimizeBatch", func(o *Options) { o.OptimizeBatch++ }},
		{"MaxOptimizeRounds", func(o *Options) { o.MaxOptimizeRounds++ }},
		{"ImproveThreshold", func(o *Options) { o.ImproveThreshold += 0.125 }},
		{"EnableTiling", func(o *Options) { o.EnableTiling = !o.EnableTiling }},
		{"EnablePipelining", func(o *Options) { o.EnablePipelining = !o.EnablePipelining }},
		{"MaxTiles", func(o *Options) { o.MaxTiles++ }},
		{"MinEstimatedIterations", func(o *Options) { o.MinEstimatedIterations++ }},
		{"ConfigCacheSize", func(o *Options) { o.ConfigCacheSize++ }},
		{"MaxLoopIterations", func(o *Options) { o.MaxLoopIterations++ }},
	}

	prints := map[string]string{"base": fingerprintOf(t, &Options{Backend: accel.M128()})}
	base := DefaultOptions(accel.M128())
	prints["defaults"] = fingerprintOf(t, &base)
	for _, m := range muts {
		o := DefaultOptions(accel.M128())
		m.mutate(&o)
		fp := fingerprintOf(t, &o)
		for other, ofp := range prints {
			if fp == ofp {
				t.Errorf("mutating %s collides with %s: %s", m.name, other, fp)
			}
		}
		prints[m.name] = fp
	}
}

// TestFingerprintExcludesMechanismKnobs pins the documented exclusions:
// Recorder, EngineFactory, and MapperOpts.Attrib must NOT perturb the
// fingerprint — tracing never changes simulated behaviour, every engine
// factory is byte-identical to the scalar engine, and Attrib is per-call
// feedback the controller fills during a run. Their exclusion is what lets
// traced, scalar, and batched runs share memo entries.
func TestFingerprintExcludesMechanismKnobs(t *testing.T) {
	base := DefaultOptions(accel.M128())
	want := fingerprintOf(t, &base)

	traced := base
	traced.Recorder = obs.NewRecorder()
	if fingerprintOf(t, &traced) != want {
		t.Error("Recorder perturbs the fingerprint; traced runs would never share cache entries")
	}

	batched := base
	batched.EngineFactory = func(cfg *accel.Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (LoopEngine, error) {
		return nil, nil
	}
	if fingerprintOf(t, &batched) != want {
		t.Error("EngineFactory perturbs the fingerprint; batched sweeps could not share scalar cache entries")
	}

	fedback := base
	fedback.MapperOpts.Attrib = &accel.Attribution{}
	if fingerprintOf(t, &fedback) != want {
		t.Error("MapperOpts.Attrib perturbs the fingerprint")
	}

	sticky := base
	sticky.MapperOpts.Sticky = "modulo"
	if fingerprintOf(t, &sticky) != want {
		t.Error("MapperOpts.Sticky perturbs the fingerprint; it is per-call mechanism state like Attrib")
	}
}
