package core

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/mapping"
)

func fingerprintOf(t *testing.T, o *Options) string {
	t.Helper()
	var b strings.Builder
	o.Fingerprint(&b)
	return b.String()
}

// TestFingerprintDistinguishesStrategies: the memo-cache key must change
// with the placement strategy, so results computed under one mapper are
// never served for another.
func TestFingerprintDistinguishesStrategies(t *testing.T) {
	base := DefaultOptions(accel.M128())
	prints := map[string]string{}
	for _, name := range mapping.Names() {
		strat, err := mapping.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := base
		o.Mapper = strat
		fp := fingerprintOf(t, &o)
		for other, ofp := range prints {
			if fp == ofp {
				t.Errorf("strategies %q and %q produce identical fingerprints", name, other)
			}
		}
		prints[name] = fp
	}

	// A nil Mapper means the greedy default and must key like it.
	o := base
	o.Mapper = nil
	if got, want := fingerprintOf(t, &o), prints["greedy"]; got != want {
		t.Errorf("nil Mapper fingerprint differs from greedy:\n%s\nvs\n%s", got, want)
	}
}

// TestFingerprintKeysRefinementKnobs: the annealing budget and seed are
// timing-relevant under greedy+anneal and must perturb the key.
func TestFingerprintKeysRefinementKnobs(t *testing.T) {
	o := DefaultOptions(accel.M128())
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	o.Mapper = anneal
	base := fingerprintOf(t, &o)

	seeded := o
	seeded.MapperOpts.Seed = 7
	if fingerprintOf(t, &seeded) == base {
		t.Error("MapperOpts.Seed does not perturb the fingerprint")
	}
	steps := o
	steps.MapperOpts.RefineSteps = 50
	if fingerprintOf(t, &steps) == base {
		t.Error("MapperOpts.RefineSteps does not perturb the fingerprint")
	}
}
