package core

import "fmt"

// ConfigCost models MESA's configuration latency in cycles, following the
// hardware's state machines (Figure 8 and §5): LDFG construction (renaming,
// one instruction per cycle), the imap FSM whose per-instruction cost is a
// fixed number of pipeline states plus a variable-depth reduction over the
// candidate matrix, the configuration block streaming bits to the
// accelerator, and the architectural-state control transfer. The totals land
// in the paper's 10³–10⁴ cycle range (Table 2, JIT ns–µs).
type ConfigCost struct {
	LDFGBuild   int // renaming + dependency recording
	InstrMap    int // imap FSM over all instructions
	ConfigWrite int // SDFG → accelerator bitstream (scales with tiles)
	Transfer    int // pipeline drain + architectural state shuttle
}

// Per-instruction imap FSM states besides the variable reduction stage:
// read-LDFG, generate-candidates, filter (F_free ⊙ F_op), and write-SDFG.
const imapFixedStates = 4

// Control-transfer model: waiting for in-flight instructions to commit plus
// moving the architectural state (64 registers at 2 per cycle, both ways
// amortized once).
const (
	drainCycles    = 24
	archStateRegs  = 64
	regsPerCycle   = 2
	transferCycles = drainCycles + 2*archStateRegs/regsPerCycle
)

// Configuration-write costs per element.
const (
	cfgCyclesPerNode = 2 // opcode + operand routing bits
	cfgCyclesPerEdge = 1 // interconnect control bits
)

// EstimateConfigCost computes the configuration latency for a mapped region.
// tiles > 1 replays the configuration stream once per duplicated instance.
func EstimateConfigCost(l *LDFG, stats *MapStats, tiles int) ConfigCost {
	if tiles < 1 {
		tiles = 1
	}
	nodes := l.Graph.Len()
	edges := len(l.Graph.Edges(nil))
	return ConfigCost{
		LDFGBuild:   nodes + 2,
		InstrMap:    imapFixedStates*nodes + stats.ReductionCycles,
		ConfigWrite: tiles * (cfgCyclesPerNode*nodes + cfgCyclesPerEdge*edges),
		Transfer:    transferCycles,
	}
}

// ReconfigureCost is the cost of adopting a new mapping for an
// already-detected region during iterative optimization: the LDFG is
// already built, so only remapping and rewriting the configuration remain.
func ReconfigureCost(l *LDFG, stats *MapStats, tiles int) ConfigCost {
	c := EstimateConfigCost(l, stats, tiles)
	c.LDFGBuild = 0
	c.Transfer = drainCycles // iteration boundary handoff only
	return c
}

// Total returns the configuration latency in cycles.
func (c ConfigCost) Total() int {
	return c.LDFGBuild + c.InstrMap + c.ConfigWrite + c.Transfer
}

// Micros converts the cost to microseconds at the given clock.
func (c ConfigCost) Micros(clockGHz float64) float64 {
	return float64(c.Total()) / (clockGHz * 1e3)
}

func (c ConfigCost) String() string {
	return fmt.Sprintf("config{ldfg=%d imap=%d write=%d xfer=%d total=%d}",
		c.LDFGBuild, c.InstrMap, c.ConfigWrite, c.Transfer, c.Total())
}
