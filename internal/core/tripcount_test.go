package core

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
)

func ldfgFor(t *testing.T, src string) *LDFG {
	t.Helper()
	p, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	// The region is the whole assembled body (callers assemble loop bodies
	// ending with the backward branch).
	l, err := BuildLDFG(p.Insts, constLat)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestEstimateTripCountCountedLoop(t *testing.T) {
	l := ldfgFor(t, `
	add  x8, x8, x9
	addi x5, x5, 1
	blt  x5, x6, -8
`)
	var regs [isa.NumRegs]uint32
	regs[isa.X5] = 0
	regs[isa.X6] = 64
	n, ok := EstimateTripCount(l, &regs)
	if !ok || n != 64 {
		t.Fatalf("estimate = %d,%v, want 64,true", n, ok)
	}
	// Mid-loop: 10 iterations already done.
	regs[isa.X5] = 10
	n, ok = EstimateTripCount(l, &regs)
	if !ok || n != 54 {
		t.Fatalf("mid-loop estimate = %d,%v, want 54,true", n, ok)
	}
	// Strided step.
	l3 := ldfgFor(t, `
	addi x5, x5, 3
	blt  x5, x6, -4
`)
	regs[isa.X5], regs[isa.X6] = 0, 10
	n, ok = EstimateTripCount(l3, &regs)
	if !ok || n != 4 {
		t.Fatalf("stride-3 estimate = %d,%v, want 4,true", n, ok)
	}
}

func TestEstimateTripCountBNE(t *testing.T) {
	l := ldfgFor(t, `
	addi x5, x5, 1
	bne  x5, x6, -4
`)
	var regs [isa.NumRegs]uint32
	regs[isa.X6] = 100
	n, ok := EstimateTripCount(l, &regs)
	if !ok || n != 100 {
		t.Fatalf("bne estimate = %d,%v, want 100,true", n, ok)
	}
}

func TestEstimateTripCountDownCounter(t *testing.T) {
	// Counting down with bge ind, bound.
	l := ldfgFor(t, `
	addi x5, x5, -1
	bge  x5, x6, -4
`)
	var regs [isa.NumRegs]uint32
	regs[isa.X5] = 10
	regs[isa.X6] = 0
	// Do-while semantics: the body runs for x5 = 9..0 (taken) plus the
	// final iteration where x5 = -1 falls through: 11 iterations.
	n, ok := EstimateTripCount(l, &regs)
	if !ok || n != 11 {
		t.Fatalf("down-counter estimate = %d,%v, want 11,true", n, ok)
	}
}

func TestEstimateTripCountDataDependent(t *testing.T) {
	// Moving bound (nw-style): no estimate.
	l := ldfgFor(t, `
	addi x5, x5, 1
	addi x6, x6, -1
	blt  x5, x6, -8
`)
	var regs [isa.NumRegs]uint32
	regs[isa.X6] = 100
	if _, ok := EstimateTripCount(l, &regs); ok {
		t.Fatal("moving bound should not be estimable")
	}
	// Condition fed by a load: no estimate.
	l2 := ldfgFor(t, `
	lw   x7, 0(x10)
	addi x5, x5, 1
	blt  x5, x7, -8
`)
	if _, ok := EstimateTripCount(l2, &regs); ok {
		t.Fatal("load-fed bound should not be estimable")
	}
}

// TestControllerRejectsShortLoops: the C3 estimate gates profitability.
func TestControllerRejectsShortLoops(t *testing.T) {
	prog := asm.MustAssemble(0x1000, `
	li   t0, 0
	li   t1, 5
loop:
	add  x8, x8, x9
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`)
	opts := DefaultOptions(accel.M128())
	opts.Detector.StableIterations = 2
	opts.Detector.MinIterations = 2
	opts.MinEstimatedIterations = 8
	ctl := NewController(opts)
	report, _, err := ctl.Run(prog, mem.NewMemory(), mem.MustHierarchy(mem.DefaultHierarchy()), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) != 0 {
		t.Fatalf("5-iteration loop should not be accelerated (est too low)")
	}
}

// TestControllerRecordsEstimate: kernels report their remaining-iteration
// estimate, matching N minus the profiling iterations.
func TestControllerRecordsEstimate(t *testing.T) {
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := k.MustProgram()
	ctl := NewController(DefaultOptions(accel.M128()))
	report, _, err := ctl.Run(prog, k.NewMemory(42), mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) == 0 {
		t.Fatal("no region")
	}
	rr := report.Regions[0]
	if rr.EstimatedIterations == 0 {
		t.Fatal("no trip-count estimate recorded")
	}
	if rr.EstimatedIterations != rr.Iterations {
		t.Errorf("estimate %d != accelerated iterations %d (should be exact for counted loops)",
			rr.EstimatedIterations, rr.Iterations)
	}
}
