package core_test

import (
	"fmt"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/core"
	"mesa/internal/isa"
)

// ExampleBuildLDFG shows task T1: translating a loop body into the Logical
// DFG by register renaming (Figure 3's flow).
func ExampleBuildLDFG() {
	body := asm.MustAssemble(0x1000, `
	lw   x5, 0(x10)
	addi x5, x5, 1
	sw   x5, 0(x10)
	addi x10, x10, 4
	addi x6, x6, 1
	blt  x6, x7, -20
`).Insts

	be := accel.M128()
	ldfg, _ := core.BuildLDFG(body, be.EstimateLat)
	g := ldfg.Graph

	// The addi at index 1 consumes the load's output: renamed to node i0.
	fmt.Println("i1 source:", g.Node(1).Src[0])
	// The store's data operand is the addi's output: node i1.
	fmt.Println("i2 data source:", g.Node(2).Src[1])
	// x10 is live-in for the load (no prior producer in the region).
	fmt.Println("i0 live-in:", g.Node(0).LiveIn[0])
	// The final writers of each register (the rename-table snapshot):
	fmt.Println("x10 live-out node:", g.LiveOut[isa.X10])
	// Output:
	// i1 source: 0
	// i2 data source: 1
	// i0 live-in: x10
	// x10 live-out node: 3
}

// ExampleMapper_Map shows task T2: Algorithm 1 placing a dependent chain so
// that transfer latencies stay minimal.
func ExampleMapper_Map() {
	body := asm.MustAssemble(0x1000, `
	add  x5, x6, x7
	add  x8, x5, x5
	add  x9, x8, x8
	blt  x9, x7, -12
`).Insts
	be := accel.M128()
	ldfg, _ := core.BuildLDFG(body, be.EstimateLat)
	sdfg, stats, _ := core.NewMapper(core.DefaultMapperOptions()).Map(ldfg, be)

	// The dependent adds land within one hop of each other.
	d1 := be.Interconnect.Latency(sdfg.Pos[0], sdfg.Pos[1])
	d2 := be.Interconnect.Latency(sdfg.Pos[1], sdfg.Pos[2])
	fmt.Println("chain transfer latencies:", d1, d2)
	fmt.Println("bus fallbacks:", stats.BusFallbacks)
	fmt.Println("modeled iteration latency:", sdfg.Evaluate().Total)
	// Output:
	// chain transfer latencies: 1 1
	// bus fallbacks: 0
	// modeled iteration latency: 7
}

// ExampleEstimateConfigCost shows task T3's timing model: the configuration
// latency MESA pays before offloading (Table 2's ns–µs JIT range).
func ExampleEstimateConfigCost() {
	body := asm.MustAssemble(0x1000, `
	lw   x5, 0(x10)
	add  x6, x6, x5
	addi x10, x10, 4
	addi x7, x7, 1
	blt  x7, x8, -16
`).Insts
	be := accel.M128()
	ldfg, _ := core.BuildLDFG(body, be.EstimateLat)
	_, stats, _ := core.NewMapper(core.DefaultMapperOptions()).Map(ldfg, be)
	cost := core.EstimateConfigCost(ldfg, stats, 1)
	fmt.Printf("sub-microsecond at 2 GHz: %v\n", cost.Micros(2.0) < 1.0)
	// Output:
	// sub-microsecond at 2 GHz: true
}

// ExampleCheckRegion shows criterion C2 rejecting a loop with a system call.
func ExampleCheckRegion() {
	body := asm.MustAssemble(0x1000, `
	ecall
	bne x5, x6, -4
`).Insts
	_, reason := core.CheckRegion(body, core.DefaultDetectorConfig(128))
	fmt.Println(reason)
	// Output:
	// C2: system instruction in loop
}
