package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/obs"
	"mesa/internal/sim"
)

// TestObservabilityDifferential runs every kernel through the controller
// twice — once plain, once with a trace recorder attached — and requires
// the observed run to be indistinguishable from the plain one: identical
// final memory, identical architectural registers, and identical timing
// (cycles, iterations, counters). Both runs must also match the functional
// interpreter, and the trace itself must be a well-formed Chrome
// trace-event stream with CPU, controller, and accelerator tracks.
func TestObservabilityDifferential(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, loopStart := k.MustProgram()

			// Functional reference.
			refMem := k.NewMemory(42)
			refMachine := sim.New(prog, refMem)
			if _, err := refMachine.Run(20_000_000); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			type outcome struct {
				mem     *mem.Memory
				machine *sim.Machine
				report  *Report
			}
			runOnce := func(rec *obs.Recorder) outcome {
				opts := DefaultOptions(accel.M128())
				opts.Recorder = rec
				if k.Parallel {
					opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
				}
				ctl := NewController(opts)
				m := k.NewMemory(42)
				hier := mem.MustHierarchy(mem.DefaultHierarchy())
				report, machine, err := ctl.Run(prog, m, hier, 20_000_000)
				if err != nil {
					t.Fatalf("controller run: %v", err)
				}
				return outcome{mem: m, machine: machine, report: report}
			}

			plain := runOnce(nil)
			rec := obs.NewRecorder()
			traced := runOnce(rec)

			// Architectural state: both runs must match the interpreter and
			// therefore each other.
			for _, o := range []struct {
				name string
				outcome
			}{{"plain", plain}, {"traced", traced}} {
				if !refMem.Equal(o.mem) {
					t.Fatalf("%s run memory diverged from reference at %#x",
						o.name, refMem.Diff(o.mem, 8))
				}
				if err := k.Verify(o.mem); err != nil {
					t.Fatalf("%s run: %v", o.name, err)
				}
				for r := range refMachine.Regs {
					if o.machine.Regs[r] != refMachine.Regs[r] {
						t.Errorf("%s run: x/f%d = %#x, ref %#x",
							o.name, r, o.machine.Regs[r], refMachine.Regs[r])
					}
				}
			}

			// Timing: attaching the recorder must not change a single number.
			if got, want := traced.report.CPURetired, plain.report.CPURetired; got != want {
				t.Errorf("traced CPURetired = %d, plain %d", got, want)
			}
			if got, want := traced.report.AccelIterations, plain.report.AccelIterations; got != want {
				t.Errorf("traced AccelIterations = %d, plain %d", got, want)
			}
			if len(traced.report.Regions) != len(plain.report.Regions) {
				t.Fatalf("traced regions = %d, plain %d",
					len(traced.report.Regions), len(plain.report.Regions))
			}
			for i := range plain.report.Regions {
				p, q := plain.report.Regions[i], traced.report.Regions[i]
				if p.TotalCycles() != q.TotalCycles() || p.FinalII != q.FinalII || p.Bound != q.Bound {
					t.Errorf("region %d: traced %.3f cyc II %.3f (%s), plain %.3f cyc II %.3f (%s)",
						i, q.TotalCycles(), q.FinalII, q.Bound, p.TotalCycles(), p.FinalII, p.Bound)
				}
				if !reflect.DeepEqual(p.Counters, q.Counters) {
					t.Errorf("region %d: counters differ under tracing", i)
				}

				// The attribution report is a pure function of the counters:
				// it must exist, agree between plain and traced runs down to
				// the serialized bytes, carry all four candidate bounds in
				// canonical order with the region's Bound starred as
				// limiting, and report per-PE utilization.
				if p.Attrib == nil || q.Attrib == nil {
					t.Fatalf("region %d: missing attribution report (plain %v, traced %v)",
						i, p.Attrib != nil, q.Attrib != nil)
				}
				attribJSON := func(a *accel.Attribution) string {
					var buf bytes.Buffer
					if err := a.WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					return buf.String()
				}
				if pj, qj := attribJSON(p.Attrib), attribJSON(q.Attrib); pj != qj {
					t.Errorf("region %d: attribution differs under tracing:\nplain:  %s\ntraced: %s", i, pj, qj)
				}
				wantBounds := []string{"dependence", "memports", "noc", "timeshare"}
				if len(p.Attrib.Bounds) != len(wantBounds) {
					t.Fatalf("region %d: %d candidate bounds, want %d", i, len(p.Attrib.Bounds), len(wantBounds))
				}
				for j, name := range wantBounds {
					if p.Attrib.Bounds[j].Name != name {
						t.Errorf("region %d: bound[%d] = %q, want %q", i, j, p.Attrib.Bounds[j].Name, name)
					}
					if p.Attrib.Bounds[j].Limiting != (name == p.Attrib.Chosen) {
						t.Errorf("region %d: bound %q limiting flag inconsistent with chosen %q",
							i, name, p.Attrib.Chosen)
					}
				}
				if p.Bound != "serial" && p.Attrib.Chosen != p.Bound {
					t.Errorf("region %d: attribution chose %q, region bound %q", i, p.Attrib.Chosen, p.Bound)
				}
				if len(p.Attrib.PEs) == 0 {
					t.Errorf("region %d: attribution has no per-PE utilization", i)
				}
			}

			// The metrics report is a pure function of the run: two
			// snapshots of the same report must serialize identically.
			snap := func(r *Report) string {
				reg := obs.NewRegistry()
				r.AddMetrics(reg)
				var buf bytes.Buffer
				if err := reg.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			if a, b := snap(traced.report), snap(traced.report); a != b {
				t.Error("metrics report is not deterministic across snapshots")
			}

			// Trace stream: valid JSON with all three tracks populated.
			if len(traced.report.Regions) == 0 {
				return // kernel ran on the CPU only; no accel track expected
			}
			var buf bytes.Buffer
			if err := rec.WriteTrace(&buf); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			var doc struct {
				TraceEvents []struct {
					PID int32  `json:"pid"`
					Ph  string `json:"ph"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("trace is not valid JSON: %v", err)
			}
			tracks := map[int32]int{}
			for _, ev := range doc.TraceEvents {
				if ev.Ph != "M" {
					tracks[ev.PID]++
				}
			}
			for _, pid := range []int32{obs.PIDCPU, obs.PIDController, obs.PIDAccel} {
				if tracks[pid] == 0 {
					t.Errorf("trace has no events on pid %d (tracks: %v)", pid, tracks)
				}
			}
		})
	}
}
