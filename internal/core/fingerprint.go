package core

import (
	"fmt"
	"io"
	"sort"
)

// Fingerprint writes a deterministic description of every option that can
// affect the controller's simulated behaviour to w, for content-hash cache
// keys. The Recorder is deliberately excluded: tracing never perturbs
// architectural or timing state (enforced by TestObservabilityDifferential),
// and callers that trace bypass result caching anyway. EngineFactory is
// excluded for the same reason: every factory must produce engines
// byte-identical to the scalar path (enforced by the batch differential
// tests), so scalar and batched runs legitimately share cache entries.
func (o *Options) Fingerprint(w io.Writer) {
	io.WriteString(w, "core|")
	o.Backend.Fingerprint(w)
	d := &o.Detector
	fmt.Fprintf(w, "|det|%d|%d|%d|%g|%t|",
		d.MaxInsts, d.StableIterations, d.MinIterations, d.MaxMemFrac, d.SupportsFP)
	addrs := make([]uint32, 0, len(d.ParallelLoops))
	for a, ok := range d.ParallelLoops {
		if ok {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(w, "p%d|", a)
	}
	// The strategy name keys the placement algorithm itself, so cached
	// results from one strategy are never served for another. MapperOpts
	// .Attrib and .Sticky are deliberately excluded: both are per-call
	// mechanism state the controller fills during a run (measured feedback
	// and the auto meta-strategy's per-region delegate), never part of the
	// static options.
	name := "greedy"
	if o.Mapper != nil {
		name = o.Mapper.Name()
	}
	m := &o.MapperOpts
	fmt.Fprintf(w, "map|%s|%d|%d|%t|%t|%d|%d|%d|%d|",
		name, m.WindowRows, m.WindowCols, m.FullSearchFallback, m.DisableTieBreak,
		m.TimeShare, m.Tiles, m.Seed, m.RefineSteps)
	fmt.Fprintf(w, "%d|%d|%g|%t|%t|%d|%d|%d|%d",
		o.OptimizeBatch, o.MaxOptimizeRounds, o.ImproveThreshold,
		o.EnableTiling, o.EnablePipelining, o.MaxTiles,
		o.MinEstimatedIterations, o.ConfigCacheSize, o.MaxLoopIterations)
}
