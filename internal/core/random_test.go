package core_test

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/genkern"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// TestRandomLoopsDifferential runs generated loop bodies — integer and FP
// arithmetic, loads/stores with aliasing, nested predicated forward
// branches — through the functional interpreter and a MESA controller with
// the spatial accelerator; final memory and register state must match
// exactly. This exercises renaming, live-in/live-out handling, memory
// disambiguation, store-to-load forwarding, predication (including PredDep
// chains), mapping, and the optimization rounds against an oracle, across
// hundreds of program shapes no hand-written test would cover.
//
// The generator lives in internal/genkern (promoted from this file); the
// full every-strategy × both-backends sweep is genkern's own differential
// test and the `mesabench fuzz` subcommand. This test keeps the
// high-seed-count spatial configuration as the controller's own regression
// net.
func TestRandomLoopsDifferential(t *testing.T) {
	const seeds = 250
	accelerated := 0
	for seed := int64(0); seed < seeds; seed++ {
		g, err := genkern.Generate(seed, genkern.DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Reference.
		refMem := g.NewMemory()
		refMachine := sim.New(g.Prog, refMem)
		if _, err := refMachine.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		// MESA.
		opts := core.DefaultOptions(accel.M128())
		opts.OptimizeBatch = 8
		ctl := core.NewController(opts)
		accMem := g.NewMemory()
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		report, machine, err := ctl.Run(g.Prog, accMem, hier, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: controller: %v", seed, err)
		}
		if len(report.Regions) > 0 && report.Regions[0].Iterations > 0 {
			accelerated++
		}

		if !refMem.Equal(accMem) {
			diff := refMem.Diff(accMem, 4)
			t.Fatalf("seed %d: memory mismatch at %#x\nprogram:\n%s",
				seed, diff, g.Dump())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if machine.Regs[r] != refMachine.Regs[r] {
				t.Fatalf("seed %d: reg %v = %#x, ref %#x\nprogram:\n%s",
					seed, isa.Reg(r), machine.Regs[r], refMachine.Regs[r], g.Dump())
			}
		}
	}
	if accelerated < seeds/2 {
		t.Errorf("only %d/%d random loops were accelerated — generator or detector too conservative", accelerated, seeds)
	}
	t.Logf("%d/%d random loops accelerated and verified", accelerated, seeds)
}
