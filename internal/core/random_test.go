package core

import (
	"math/rand"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// TestRandomLoopsDifferential generates random loop bodies — integer and FP
// arithmetic, loads/stores with aliasing, nested predicated forward
// branches — and runs each program twice: purely on the functional
// interpreter and under a MESA controller with the spatial accelerator.
// Final memory and register state must match exactly. This exercises
// renaming, live-in/live-out handling, memory disambiguation, store-to-load
// forwarding, predication (including PredDep chains), mapping, and the
// optimization rounds against an oracle, across hundreds of program shapes
// no hand-written test would cover.
func TestRandomLoopsDifferential(t *testing.T) {
	const seeds = 250
	accelerated := 0
	for seed := int64(0); seed < seeds; seed++ {
		prog, ok := randomLoopProgram(t, seed)
		if prog == nil {
			continue
		}

		memSetup := func() *mem.Memory {
			m := mem.NewMemory()
			rng := rand.New(rand.NewSource(seed * 31))
			for i := uint32(0); i < 512; i++ {
				m.StoreWord(scratchBase+4*i, rng.Uint32())
			}
			return m
		}

		// Reference.
		refMem := memSetup()
		refMachine := sim.New(prog, refMem)
		if _, err := refMachine.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		// MESA.
		opts := DefaultOptions(accel.M128())
		opts.OptimizeBatch = 8
		ctl := NewController(opts)
		accMem := memSetup()
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		report, machine, err := ctl.Run(prog, accMem, hier, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: controller: %v", seed, err)
		}
		if len(report.Regions) > 0 && report.Regions[0].Iterations > 0 {
			accelerated++
		}

		if !refMem.Equal(accMem) {
			diff := refMem.Diff(accMem, 4)
			t.Fatalf("seed %d: memory mismatch at %#x\nprogram:\n%s",
				seed, diff, dumpProgram(prog))
		}
		for r := 0; r < isa.NumRegs; r++ {
			if machine.Regs[r] != refMachine.Regs[r] {
				t.Fatalf("seed %d: reg %v = %#x, ref %#x\nprogram:\n%s",
					seed, isa.Reg(r), machine.Regs[r], refMachine.Regs[r], dumpProgram(prog))
			}
		}
		_ = ok
	}
	if accelerated < seeds/2 {
		t.Errorf("only %d/%d random loops were accelerated — generator or detector too conservative", accelerated, seeds)
	}
	t.Logf("%d/%d random loops accelerated and verified", accelerated, seeds)
}

const scratchBase = kernels.ArrA

// randomLoopProgram builds a random program with one hot loop. Returns nil
// when the generated shape is degenerate.
func randomLoopProgram(t *testing.T, seed int64) (*isa.Program, bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Register pools. t0/t1 are the induction counter and bound; a0 is the
	// scratch array base (bumped at most once per iteration); the rest are
	// free data registers.
	intRegs := []isa.Reg{isa.X8, isa.X9, isa.X18, isa.X19, isa.X28, isa.X29, isa.X30, isa.X31}
	fpRegs := []isa.Reg{isa.F0, isa.F1, isa.F2, isa.F3, isa.F4}
	pickInt := func() isa.Reg { return intRegs[rng.Intn(len(intRegs))] }
	pickFP := func() isa.Reg { return fpRegs[rng.Intn(len(fpRegs))] }

	b := asm.NewBuilder(0x1000)
	// Prelude: seed the data registers with random values.
	for _, r := range intRegs {
		b.LI(r, int32(rng.Uint32()))
	}
	b.LI(isa.RegA0, scratchBase+64)
	b.LI(isa.RegT0, 0)
	b.LI(isa.RegT1, int32(8+rng.Intn(56))) // 8–63 iterations
	// FP registers from scratch memory (finite random bit patterns would
	// include NaNs; the ALU handles them deterministically, so load raw).
	for i, r := range fpRegs {
		b.FLW(r, int32(4*i), isa.RegA0)
	}
	b.Label("loop")

	// Body: a random mix of operations with nested forward branches.
	bodyLen := 4 + rng.Intn(20)
	// Forward branches use unique labels; track open shadows to keep them
	// nested (the hardware handles nested predication).
	type shadow struct{ end int }
	var open []shadow
	labelN := 0
	pending := map[int][]string{} // body index -> labels to place before it

	for i := 0; i < bodyLen; i++ {
		for _, lbl := range pending[i] {
			b.Label(lbl)
		}
		delete(pending, i)
		for len(open) > 0 && open[len(open)-1].end <= i {
			open = open[:len(open)-1]
		}

		switch rng.Intn(10) {
		case 0, 1: // integer reg-reg
			ops := []func(rd, rs1, rs2 isa.Reg) *asm.Builder{b.ADD, b.SUB, b.XOR, b.OR, b.AND, b.MUL, b.SLL, b.SRL}
			ops[rng.Intn(len(ops))](pickInt(), pickInt(), pickInt())
		case 2: // integer imm
			b.ADDI(pickInt(), pickInt(), int32(rng.Intn(2048)-1024))
		case 3: // shift/compare
			if rng.Intn(2) == 0 {
				b.SLLI(pickInt(), pickInt(), int32(rng.Intn(31)))
			} else {
				b.SLT(pickInt(), pickInt(), pickInt())
			}
		case 4: // load
			b.LW(pickInt(), int32(4*rng.Intn(32)), isa.RegA0)
		case 5: // store (random offset: exercises disambiguation/forwarding)
			b.SW(pickInt(), int32(4*rng.Intn(32)), isa.RegA0)
		case 6, 7: // FP
			switch rng.Intn(4) {
			case 0:
				b.FADD(pickFP(), pickFP(), pickFP())
			case 1:
				b.FMUL(pickFP(), pickFP(), pickFP())
			case 2:
				b.FSUB(pickFP(), pickFP(), pickFP())
			case 3:
				b.FMADD(pickFP(), pickFP(), pickFP(), pickFP())
			}
		case 8: // FP load/store
			if rng.Intn(2) == 0 {
				b.FLW(pickFP(), int32(4*rng.Intn(32)), isa.RegA0)
			} else {
				b.FSW(pickFP(), int32(4*rng.Intn(32)), isa.RegA0)
			}
		case 9: // forward branch opening a (nested) shadow
			maxEnd := bodyLen
			if len(open) > 0 && open[len(open)-1].end < maxEnd {
				maxEnd = open[len(open)-1].end
			}
			if maxEnd <= i+2 {
				b.NOP()
				break
			}
			end := i + 2 + rng.Intn(maxEnd-i-2)
			labelN++
			lbl := "skip" + string(rune('a'+labelN%26)) + string(rune('0'+labelN/26))
			if rng.Intn(2) == 0 {
				b.BEQ(pickInt(), pickInt(), lbl)
			} else {
				b.BLT(pickInt(), pickInt(), lbl)
			}
			pending[end] = append(pending[end], lbl)
			open = append(open, shadow{end: end})
		}
	}
	// Close any labels still pending at or past the body end.
	for _, lbls := range pending {
		for _, lbl := range lbls {
			b.Label(lbl)
		}
	}

	b.ADDI(isa.RegT0, isa.RegT0, 1)
	b.BLT(isa.RegT0, isa.RegT1, "loop")
	// Publish register state through memory so the verifier sees it (the
	// differential check also compares registers directly).
	b.SW(isa.X8, 0, isa.RegA0)
	b.ECALL()

	prog, err := b.Program()
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	return prog, true
}

func dumpProgram(p *isa.Program) string {
	s := ""
	for _, in := range p.Insts {
		s += in.String() + "\n"
	}
	return s
}
