package core

import (
	"testing"

	"mesa/internal/asm"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// detectOn runs a program with an attached detector until it halts and
// returns the first region plus the detector.
func detectOn(t *testing.T, src string, cfg DetectorConfig) (*Region, *Detector) {
	t.Helper()
	prog, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(prog, cfg)
	machine := sim.New(prog, mem.NewMemory())
	var region *Region
	machine.Attach(tracerFunc(func(ev sim.Event) {
		if region == nil {
			if r := d.Observe(ev); r != nil {
				region = r
			}
		}
	}))
	if _, err := machine.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return region, d
}

type tracerFunc func(sim.Event)

func (f tracerFunc) Trace(ev sim.Event) { f(ev) }

func TestDetectorRejectsMemoryHeavyLoop(t *testing.T) {
	// 7 loads out of 9 instructions: memFrac ≈ 0.78 > the 0.75 threshold.
	src := `
	li t0, 0
	li t1, 64
	li a0, 0x100000
loop:
	lw x8, 0(a0)
	lw x9, 4(a0)
	lw x18, 8(a0)
	lw x19, 12(a0)
	lw x20, 16(a0)
	lw x21, 20(a0)
	lw x22, 24(a0)
	addi t0, t0, 1
	blt t0, t1, loop
	ecall
`
	region, d := detectOn(t, src, DefaultDetectorConfig(128))
	if region != nil {
		t.Fatalf("memory-heavy loop detected (memFrac %.2f)", region.Mix.MemFrac())
	}
	if d.Rejections[RejectMemHeavy] == 0 {
		t.Errorf("rejections = %v, want C3 mem-heavy", d.Rejections)
	}
}

func TestDetectorNeedsStability(t *testing.T) {
	// A loop that runs only twice never reaches StableIterations=3.
	src := `
	li t0, 0
	li t1, 2
loop:
	addi t0, t0, 1
	blt t0, t1, loop
	ecall
`
	region, _ := detectOn(t, src, DefaultDetectorConfig(128))
	if region != nil {
		t.Fatal("2-iteration loop should not be detected with StableIterations=3")
	}
}

func TestDetectorAcceptsCleanLoop(t *testing.T) {
	src := `
	li t0, 0
	li t1, 64
loop:
	add x8, x8, x9
	addi t0, t0, 1
	blt t0, t1, loop
	ecall
`
	region, _ := detectOn(t, src, DefaultDetectorConfig(128))
	if region == nil {
		t.Fatal("clean loop not detected")
	}
	if region.Len() != 3 {
		t.Errorf("region length = %d, want 3", region.Len())
	}
	if region.Mix.Compute != 2 || region.Mix.Control != 1 {
		t.Errorf("mix = %+v", region.Mix)
	}
	if region.ObservedIterations < 3 {
		t.Errorf("observed iterations = %d", region.ObservedIterations)
	}
}

func TestDetectorDoesNotRedetectRejected(t *testing.T) {
	// A loop with a CSR access: C2 rejects it exactly once; the rejected
	// map prevents re-evaluation on every subsequent iteration.
	src := `
	li t0, 0
	li t1, 64
loop:
	csrrs x8, x0, 0x301
	addi t0, t0, 1
	blt t0, t1, loop
	ecall
`
	region, d := detectOn(t, src, DefaultDetectorConfig(128))
	if region != nil {
		t.Fatal("loop with CSR access detected")
	}
	if got := d.Rejections[RejectSystemInst]; got != 1 {
		t.Errorf("system rejections = %d, want exactly 1 (no re-detection)", got)
	}
}

func TestDetectorC1SizeGate(t *testing.T) {
	// A 3-instruction loop against a 2-instruction capacity: C1 rejection.
	src := `
	li t0, 0
	li t1, 64
loop:
	add x8, x8, x9
	addi t0, t0, 1
	blt t0, t1, loop
	ecall
`
	cfg := DefaultDetectorConfig(2)
	region, d := detectOn(t, src, cfg)
	if region != nil {
		t.Fatal("oversized loop detected")
	}
	if d.Rejections[RejectTooLarge] == 0 {
		t.Errorf("rejections = %v, want C1", d.Rejections)
	}
}
