package core

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/sim"
)

// The paper names the lack of PE time-multiplexing as a limitation of its
// hardware ("further compounded by MESA's current lack of support for
// time-multiplexing PEs", §6.2) and future work. These tests cover the
// reproduction's opt-in extension: MapperOptions.TimeShare > 1 lets up to
// that many instructions share one unit, executions serializing on it.

// TestTimeShareMapsSRADOnM64: srad structurally fails on M-64 (48 FP ops vs
// 32 FP PEs); with 2-way time sharing it must map and run correctly.
func TestTimeShareMapsSRADOnM64(t *testing.T) {
	k, err := kernels.ByName("srad")
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M64()

	// Baseline: still rejected without the extension.
	plain := DefaultOptions(be)
	plainReport, _, err := NewController(plain).Run(prog, k.NewMemory(42), mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainReport.Regions) != 0 {
		t.Fatal("srad should not map on M-64 without time sharing")
	}

	// Extension: 2-way time sharing.
	opts := DefaultOptions(be)
	opts.MapperOpts.TimeShare = 2
	opts.Detector.MaxInsts = 0 // let NewController derive it with the extension
	opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
	ctl := NewController(opts)
	m := k.NewMemory(42)
	report, _, err := ctl.Run(prog, m, mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) == 0 {
		t.Fatalf("srad did not map with time sharing (rejections: %v)", report.Rejections)
	}
	rr := report.Regions[0]
	if rr.Iterations == 0 {
		t.Fatal("no iterations accelerated")
	}
	if err := k.Verify(m); err != nil {
		t.Fatalf("time-shared execution produced wrong results: %v", err)
	}

	// At least one unit must actually be shared.
	shared := false
	for r := 0; r < be.Rows && !shared; r++ {
		for c := -be.EdgeDepth; c < be.Cols+be.EdgeDepth && !shared; c++ {
			if len(rr.SDFG.Occupants(noc.Coord{Row: r, Col: c})) > 1 {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("no unit holds more than one instruction")
	}
	t.Logf("srad on M-64 with 2-way time sharing: %d iterations, avg %.1f cyc/iter, II %.2f (%s)",
		rr.Iterations, rr.FinalAvgIter, rr.FinalII, rr.Bound)
}

// TestTimeShareCorrectDifferential: time-shared execution remains bit-exact
// against the functional reference on a kernel that fits either way.
func TestTimeShareCorrectDifferential(t *testing.T) {
	k, err := kernels.ByName("cfd")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := k.MustProgram()

	refMem := k.NewMemory(7)
	refMachine := sim.New(prog, refMem)
	if _, err := refMachine.Run(50_000_000); err != nil {
		t.Fatal(err)
	}

	// Force heavy sharing: a tiny 4x4 grid where cfd's 23 instructions
	// must share the 16 PEs (and all FP-capable for this test).
	be := accel.M128()
	be.Name, be.Rows, be.Cols = "M-16-shared", 4, 4
	be.FPSlice = 4
	be.MemPorts = 2
	opts := DefaultOptions(be)
	opts.MapperOpts.TimeShare = 4
	opts.Detector.MaxInsts = 0
	ctl := NewController(opts)
	m := k.NewMemory(7)
	report, machine, err := ctl.Run(prog, m, mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) == 0 {
		t.Fatalf("cfd did not map on the shared tiny grid: %v", report.Rejections)
	}
	if !refMem.Equal(m) {
		t.Fatal("time-shared execution diverged from reference memory")
	}
	for r := 0; r < 64; r++ {
		if machine.Regs[r] != refMachine.Regs[r] {
			t.Fatalf("reg %d mismatch", r)
		}
	}
}

// TestTimeShareSlowerThanSpatial: sharing trades throughput for capacity —
// the same kernel on the same grid must not get faster when crammed onto
// fewer PEs.
func TestTimeShareSlowerThanSpatial(t *testing.T) {
	k, err := kernels.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	run := func(rows, cols, share int) float64 {
		be := accel.M128()
		be.Rows, be.Cols = rows, cols
		be.FPSlice = 4
		opts := DefaultOptions(be)
		opts.MapperOpts.TimeShare = share
		opts.Detector.MaxInsts = 0
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
		ctl := NewController(opts)
		report, _, err := ctl.Run(prog, k.NewMemory(3), mem.MustHierarchy(mem.DefaultHierarchy()), 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Regions) == 0 {
			t.Fatalf("kmeans did not map on %dx%d/share=%d", rows, cols, share)
		}
		return report.Regions[0].TotalCycles()
	}
	spatial := run(16, 8, 1) // plenty of PEs, pure spatial
	shared := run(2, 4, 4)   // 8 PEs, 4-way shared
	if shared <= spatial {
		t.Errorf("time-shared tiny grid (%.0f cyc) should not beat spatial (%.0f cyc)", shared, spatial)
	}
}
