package core

import "mesa/internal/mapping"

// The SDFG (the Spatial Dataflow Graph and MESA's internal architecture
// model), its coordinate sentinels, and the placement-derived latency model
// moved to internal/mapping with the rest of the placement machinery.

// SDFG is the Spatial Dataflow Graph (task T2's output).
type SDFG = mapping.SDFG

// BusCoord is the pseudo-position of instructions that failed spatial
// routing and fell back to the secondary bus (§3.3).
var BusCoord = mapping.BusCoord

const (
	// CtrlLat is the latency of enable-signal delivery over the control
	// network (branch predication).
	CtrlLat = mapping.CtrlLat
	// LiveInLat is the latency for a live-in register value to reach a PE's
	// input buffer at iteration start.
	LiveInLat = mapping.LiveInLat
)
