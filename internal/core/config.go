package core

// ConfigCache caches accelerator configurations for loops that were already
// mapped, in case they are re-encountered in the near future (§4.3): a hit
// skips LDFG construction and mapping, paying only the configuration write
// and control transfer.
type ConfigCache struct {
	capacity int
	entries  map[uint32]*cacheEntry
	clock    uint64

	Hits, Misses uint64
}

type cacheEntry struct {
	sdfg  *SDFG
	ldfg  *LDFG
	tiles int
	used  uint64
}

// NewConfigCache returns a cache holding up to capacity configurations.
func NewConfigCache(capacity int) *ConfigCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ConfigCache{capacity: capacity, entries: make(map[uint32]*cacheEntry)}
}

// Lookup returns the cached mapping for a loop's start address, if present.
func (c *ConfigCache) Lookup(start uint32) (*SDFG, *LDFG, int, bool) {
	e, ok := c.entries[start]
	if !ok {
		c.Misses++
		return nil, nil, 0, false
	}
	c.clock++
	e.used = c.clock
	c.Hits++
	return e.sdfg, e.ldfg, e.tiles, true
}

// Insert stores a mapping, evicting the least recently used entry if full.
func (c *ConfigCache) Insert(start uint32, s *SDFG, l *LDFG, tiles int) {
	c.clock++
	if _, ok := c.entries[start]; !ok && len(c.entries) >= c.capacity {
		var victim uint32
		var oldest uint64 = ^uint64(0)
		for addr, e := range c.entries {
			if e.used < oldest {
				oldest, victim = e.used, addr
			}
		}
		delete(c.entries, victim)
	}
	c.entries[start] = &cacheEntry{sdfg: s, ldfg: l, tiles: tiles, used: c.clock}
}

// Len reports the number of cached configurations.
func (c *ConfigCache) Len() int { return len(c.entries) }
