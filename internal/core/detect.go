package core

import (
	"fmt"

	"mesa/internal/isa"
	"mesa/internal/sim"
)

// Region is a code region that passed detection: a loop body spanning
// [Start, End), where End is the address just past the closing backward
// branch.
type Region struct {
	Start, End uint32
	Insts      []isa.Inst

	// Parallel records an OpenMP-style annotation (omp parallel / omp simd):
	// iterations are independent, enabling tiling and pipelining (§4.3).
	Parallel bool

	// ObservedIterations is how many times the loop iterated while being
	// profiled — the PC-trace side of the paper's C3 iteration estimate.
	ObservedIterations int

	// Mix summarizes the instruction classes for C3.
	Mix RegionMix
}

// Len returns the instruction count of the region.
func (r *Region) Len() int { return len(r.Insts) }

// RegionMix is the instruction-class census used by criterion C3.
type RegionMix struct {
	Compute, Memory, Control, Other int
}

// Total returns the instruction count.
func (m RegionMix) Total() int { return m.Compute + m.Memory + m.Control + m.Other }

// MemFrac returns the memory-instruction fraction.
func (m RegionMix) MemFrac() float64 {
	if t := m.Total(); t > 0 {
		return float64(m.Memory) / float64(t)
	}
	return 0
}

// DetectorConfig parameterizes region detection (§4.1).
type DetectorConfig struct {
	// MaxInsts is the trace-cache capacity: criterion C1 rejects loops
	// larger than the accelerator can hold (64–512 in the evaluations).
	MaxInsts int

	// StableIterations is how many consecutive times the same loop must
	// close before MESA commits to profiling it.
	StableIterations int

	// MinIterations is the C3 confidence threshold: the loop must have been
	// observed to iterate at least this many times (the evaluation found
	// 50–100 iterations are needed to amortize configuration cost, so
	// proceeding without evidence of reuse is unwise).
	MinIterations int

	// MaxMemFrac rejects regions whose memory fraction exceeds this bound
	// (C3 instruction-mix check).
	MaxMemFrac float64

	// SupportsFP reports whether the target backend has FP-capable PEs
	// (C2 rejects FP instructions otherwise).
	SupportsFP bool

	// ParallelLoops marks loop start addresses annotated with OpenMP
	// pragmas (omp parallel / omp simd).
	ParallelLoops map[uint32]bool
}

// DefaultDetectorConfig returns detection thresholds used in the evaluation.
func DefaultDetectorConfig(maxInsts int) DetectorConfig {
	return DetectorConfig{
		MaxInsts:         maxInsts,
		StableIterations: 3,
		MinIterations:    3,
		MaxMemFrac:       0.75,
		SupportsFP:       true,
	}
}

// RejectReason classifies why a candidate loop failed a criterion.
type RejectReason string

// Rejection reasons surfaced by the detector and CheckRegion.
const (
	RejectTooLarge       RejectReason = "C1: loop exceeds accelerator capacity"
	RejectSystemInst     RejectReason = "C2: system instruction in loop"
	RejectInnerLoop      RejectReason = "C2: backward branch inside loop (inner loop)"
	RejectIndirectJump   RejectReason = "C2: indirect jump in loop"
	RejectCall           RejectReason = "C2: jump-and-link (call) in loop"
	RejectEarlyExit      RejectReason = "C2: branch exits the loop region"
	RejectUnsupportedFP  RejectReason = "C2: FP instruction on non-FP backend"
	RejectMemHeavy       RejectReason = "C3: unfavorable instruction mix (memory-bound)"
	RejectFewIterations  RejectReason = "C3: insufficient expected iteration count"
	RejectNotRepeating   RejectReason = "loop not yet stable"
	RejectIncompleteTape RejectReason = "trace cache incomplete"
)

// CheckRegion performs the control check (C2) over a candidate region's
// instructions. The last instruction must be the loop-closing backward
// branch.
func CheckRegion(insts []isa.Inst, cfg DetectorConfig) (RegionMix, RejectReason) {
	var mix RegionMix
	if len(insts) == 0 {
		return mix, RejectIncompleteTape
	}
	start := insts[0].Addr
	end := insts[len(insts)-1].Addr + 4
	for i, in := range insts {
		last := i == len(insts)-1
		switch {
		case in.IsSystem():
			return mix, RejectSystemInst
		case in.Op == isa.OpJALR:
			return mix, RejectIndirectJump
		case in.Op == isa.OpJAL:
			if _, writesRA := in.Dest(); writesRA {
				return mix, RejectCall
			}
			if in.Imm < 0 && !last {
				return mix, RejectInnerLoop
			}
			if in.Imm > 0 {
				if t := in.BranchTarget(); t >= end || t <= in.Addr {
					return mix, RejectEarlyExit
				}
			}
		case in.IsBranch():
			if in.Imm < 0 {
				if !last || in.BranchTarget() != start {
					return mix, RejectInnerLoop
				}
			} else if t := in.BranchTarget(); t >= end || t <= in.Addr {
				return mix, RejectEarlyExit
			}
		case in.Op.IsFP() && !cfg.SupportsFP:
			return mix, RejectUnsupportedFP
		}

		switch in.Class() {
		case isa.ClassLoad, isa.ClassStore:
			mix.Memory++
		case isa.ClassBranch, isa.ClassJump:
			mix.Control++
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv,
			isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			mix.Compute++
		default:
			mix.Other++
		}
	}
	return mix, ""
}

// Detector implements MESA's frontend monitoring: a loop-stream detector at
// the (simulated) decode stage, a trace cache that captures region
// instructions without interfering with fetch, and the C1–C3 gates.
type Detector struct {
	cfg  DetectorConfig
	prog *isa.Program

	// Current loop candidate.
	candStart, candEnd uint32
	candCount          int

	// Trace cache: instruction slots for the candidate region.
	tape      []isa.Inst
	tapeValid []bool
	tapeCount int

	// Stalls counts the fetch-stall accesses used to retrieve instructions
	// missing from the trace cache (the paper's I-cache fallback).
	Stalls int

	// Rejections tallies rejected candidates by reason.
	Rejections map[RejectReason]int

	rejected map[uint32]bool // loops already rejected: don't retry
}

// NewDetector builds a detector monitoring prog.
func NewDetector(prog *isa.Program, cfg DetectorConfig) *Detector {
	return &Detector{
		cfg: cfg, prog: prog,
		Rejections: make(map[RejectReason]int),
		rejected:   make(map[uint32]bool),
	}
}

// Observe consumes one retired-instruction event. When a loop satisfies
// C1–C3 and its instructions are captured, Observe returns the validated
// Region; otherwise nil.
func (d *Detector) Observe(ev sim.Event) *Region {
	// Fill the trace cache while within the candidate region.
	if d.tape != nil && ev.PC >= d.candStart && ev.PC < d.candEnd {
		idx := int(ev.PC-d.candStart) / 4
		if !d.tapeValid[idx] {
			d.tape[idx] = ev.Inst
			d.tapeValid[idx] = true
			d.tapeCount++
		}
	}

	// Loop-stream detection: a taken backward branch closing a loop.
	in := ev.Inst
	isClose := (in.IsBranch() && ev.Taken && in.Imm < 0) ||
		(in.Op == isa.OpJAL && in.Imm < 0)
	if !isClose {
		return nil
	}
	start, end := in.BranchTarget(), ev.PC+4
	if d.rejected[start] {
		return nil
	}
	if start != d.candStart || end != d.candEnd {
		// New candidate loop.
		d.candStart, d.candEnd, d.candCount = start, end, 0
		n := int(end-start) / 4
		if n > d.cfg.MaxInsts {
			d.reject(start, RejectTooLarge)
			return nil
		}
		d.tape = make([]isa.Inst, n)
		d.tapeValid = make([]bool, n)
		d.tapeCount = 0
		d.candCount = 1
		return nil
	}
	d.candCount++
	if d.candCount < d.cfg.StableIterations || d.candCount < d.cfg.MinIterations {
		return nil
	}

	// Retrieve any instructions never retired (skipped by taken forward
	// branches) directly from the I-cache, stalling fetch briefly.
	if d.tapeCount < len(d.tape) {
		for i := range d.tape {
			if !d.tapeValid[i] {
				inst, ok := d.prog.At(d.candStart + uint32(4*i))
				if !ok {
					d.reject(start, RejectIncompleteTape)
					return nil
				}
				d.tape[i] = inst
				d.tapeValid[i] = true
				d.tapeCount++
				d.Stalls++
			}
		}
	}

	mix, reason := CheckRegion(d.tape, d.cfg)
	if reason != "" {
		d.reject(start, reason)
		return nil
	}
	if mix.MemFrac() > d.cfg.MaxMemFrac {
		d.reject(start, RejectMemHeavy)
		return nil
	}

	region := &Region{
		Start: d.candStart, End: d.candEnd,
		Insts:              append([]isa.Inst(nil), d.tape...),
		Parallel:           d.cfg.ParallelLoops[d.candStart],
		ObservedIterations: d.candCount,
		Mix:                mix,
	}
	// Reset so the same loop is not re-detected while being accelerated.
	d.candStart, d.candEnd, d.candCount = 0, 0, 0
	d.tape, d.tapeValid, d.tapeCount = nil, nil, 0
	return region
}

func (d *Detector) reject(start uint32, reason RejectReason) {
	d.Rejections[reason]++
	d.rejected[start] = true
	d.tape, d.tapeValid, d.tapeCount = nil, nil, 0
	d.candStart, d.candEnd, d.candCount = 0, 0, 0
}

// String summarizes the detector state.
func (d *Detector) String() string {
	return fmt.Sprintf("detector{stalls=%d rejections=%v}", d.Stalls, d.Rejections)
}
