package core

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// TestControllerEndToEndAllKernels is the reproduction's central
// differential test: every kernel runs (a) purely on the functional
// simulator and (b) under a MESA controller that detects the hot loop,
// maps it, and offloads execution to the simulated spatial accelerator.
// Final memory contents must be identical, and the kernel's own verifier
// must pass on the accelerated run.
func TestControllerEndToEndAllKernels(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, loopStart := k.MustProgram()

			// Reference: pure functional execution.
			refMem := k.NewMemory(42)
			refMachine := sim.New(prog, refMem)
			if _, err := refMachine.Run(20_000_000); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Accelerated: MESA controller over the M-128 backend.
			be := accel.M128()
			opts := DefaultOptions(be)
			if k.Parallel {
				opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
			}
			ctl := NewController(opts)
			accelMem := k.NewMemory(42)
			hier := mem.MustHierarchy(mem.DefaultHierarchy())
			report, machine, err := ctl.Run(prog, accelMem, hier, 20_000_000)
			if err != nil {
				t.Fatalf("controller run: %v", err)
			}

			if len(report.Regions) == 0 {
				t.Fatalf("no region accelerated (rejections: %v)", report.Rejections)
			}
			rr := report.Regions[0]
			if rr.Iterations == 0 {
				t.Fatal("region configured but never executed")
			}
			// Most iterations must run on the accelerator, not the CPU (the
			// CPU only executes the profiling iterations).
			if rr.Iterations < uint64(k.N)*8/10 {
				t.Errorf("only %d/%d iterations accelerated", rr.Iterations, k.N)
			}

			// Differential check: memory and the kernel verifier.
			if !refMem.Equal(accelMem) {
				diff := refMem.Diff(accelMem, 8)
				t.Fatalf("memory mismatch at addresses %#x", diff)
			}
			if err := k.Verify(accelMem); err != nil {
				t.Fatal(err)
			}

			// Architectural state: live registers must match the reference.
			for r := 0; r < 64; r++ {
				if machine.Regs[r] != refMachine.Regs[r] {
					t.Errorf("x/f%d = %#x, ref %#x", r, machine.Regs[r], refMachine.Regs[r])
				}
			}

			// Sanity on the report.
			if rr.ConfigCost.Total() <= 0 {
				t.Error("missing configuration cost")
			}
			if rr.AccelCycles <= 0 {
				t.Error("no accelerator cycles recorded")
			}
			if k.Parallel && rr.Tiles < 1 {
				t.Errorf("tiles = %d", rr.Tiles)
			}
			t.Logf("%s: %d insts, tiles=%d, iters=%d, avgIter=%.1f cyc, II=%.2f (%s), config=%d cyc, reconfigs=%d, bus=%d",
				k.Name, rr.Region.Len(), rr.Tiles, rr.Iterations, rr.FinalAvgIter,
				rr.FinalII, rr.Bound, rr.ConfigCost.Total(), rr.Reconfigs, rr.Stats.BusFallbacks)
		})
	}
}

// TestControllerM64RejectsSRAD checks the structural C1/PE-capacity gate:
// srad's 124-instruction body must not qualify on the 64-PE configuration
// (as in the paper's Figure 14) while still running correctly on the CPU.
func TestControllerM64RejectsSRAD(t *testing.T) {
	k, err := kernels.ByName("srad")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := k.MustProgram()
	be := accel.M64()
	ctl := NewController(DefaultOptions(be))
	m := k.NewMemory(42)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	report, _, err := ctl.Run(prog, m, hier, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) != 0 {
		t.Fatalf("srad should not qualify on M-64 (got %d regions)", len(report.Regions))
	}
	if err := k.Verify(m); err != nil {
		t.Fatalf("CPU fallback produced wrong results: %v", err)
	}
}

// TestControllerConfigCacheHit re-enters the same loop twice; the second
// encounter must hit the configuration cache.
func TestControllerConfigCacheHit(t *testing.T) {
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	// Build a program with the nn loop executed twice by wrapping: easiest
	// equivalent is running the controller twice with the same instance.
	prog, _ := k.MustProgram()
	be := accel.M128()
	ctl := NewController(DefaultOptions(be))
	hier := mem.MustHierarchy(mem.DefaultHierarchy())

	m1 := k.NewMemory(1)
	if _, _, err := ctl.Run(prog, m1, hier, 20_000_000); err != nil {
		t.Fatal(err)
	}
	m2 := k.NewMemory(2)
	report, _, err := ctl.Run(prog, m2, hier, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheHits == 0 {
		t.Error("second run should hit the configuration cache")
	}
	if len(report.Regions) == 0 || !report.Regions[0].ConfigCacheHit {
		t.Error("region report should record the cache hit")
	}
	if err := k.Verify(m2); err != nil {
		t.Fatal(err)
	}
}

// TestControllerIterativeOptimization verifies the feedback loop runs: with
// optimization rounds enabled, measured latencies flow back into the DFG
// model between batches.
func TestControllerIterativeOptimization(t *testing.T) {
	k, err := kernels.ByName("cfd")
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M128()
	opts := DefaultOptions(be)
	opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
	opts.OptimizeBatch = 16
	opts.MaxOptimizeRounds = 4
	ctl := NewController(opts)
	m := k.NewMemory(42)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	report, _, err := ctl.Run(prog, m, hier, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regions) == 0 {
		t.Fatal("no region")
	}
	rr := report.Regions[0]
	if len(rr.Rounds) < 2 {
		t.Fatalf("expected multiple optimization rounds, got %d", len(rr.Rounds))
	}
	if err := k.Verify(m); err != nil {
		t.Fatal(err)
	}
}
