package core

import (
	"sort"

	"mesa/internal/accel"
	"mesa/internal/obs"
)

// AddMetrics folds the run's counter surfaces into the registry: the
// controller's own counters plus the accelerator performance counters and
// component activity aggregated over every accelerated region. No-op on a
// nil registry.
func (r *Report) AddMetrics(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Add("controller",
		obs.Count("cpu_retired", r.CPURetired),
		obs.Count("accel_iterations", r.AccelIterations),
		obs.Count("regions", uint64(len(r.Regions))),
		obs.Count("config_cache_hits", r.CacheHits),
		obs.Count("config_cache_misses", r.CacheMisses),
		obs.M("detector_stalls", float64(r.DetectorStalls)),
	)

	var counters accel.Counters
	var activity accel.Activity
	var overhead float64
	var reconfigs, tiles int
	mapper := map[string]*MapStats{}
	// delegates counts, per meta-strategy, which concrete strategy each
	// region's final placement delegated to (the auto selection policy's
	// observable output).
	delegates := map[string]map[string]int{}
	for _, rr := range r.Regions {
		counters.AddScalars(rr.Counters)
		activity = addActivity(activity, rr.Activity)
		overhead += rr.OverheadCycles
		reconfigs += rr.Reconfigs
		tiles += rr.Tiles
		if st := rr.Stats; st != nil && st.Nodes > 0 {
			name := st.Strategy
			if name == "" {
				name = "greedy" // direct Mapper use predates the registry
			}
			agg := mapper[name]
			if agg == nil {
				agg = &MapStats{}
				mapper[name] = agg
			}
			agg.Nodes += st.Nodes
			agg.PEPlacements += st.PEPlacements
			agg.LSUPlacements += st.LSUPlacements
			agg.BusFallbacks += st.BusFallbacks
			agg.FullSearches += st.FullSearches
			agg.CandidatesScanned += st.CandidatesScanned
			agg.ReductionCycles += st.ReductionCycles
			agg.RefineSteps += st.RefineSteps
			agg.RefineAccepted += st.RefineAccepted
			if st.Delegate != "" {
				if delegates[name] == nil {
					delegates[name] = map[string]int{}
				}
				delegates[name][st.Delegate]++
			}
		}
	}
	reg.Add("regions",
		obs.M("overhead_cycles", overhead),
		obs.M("reconfigurations", float64(reconfigs)),
		obs.M("tiles", float64(tiles)),
	)
	names := make([]string, 0, len(mapper))
	for name := range mapper {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := mapper[name]
		ms := []obs.Metric{
			obs.M("nodes", float64(st.Nodes)),
			obs.M("pe_placements", float64(st.PEPlacements)),
			obs.M("lsu_placements", float64(st.LSUPlacements)),
			obs.M("bus_fallbacks", float64(st.BusFallbacks)),
			obs.M("full_searches", float64(st.FullSearches)),
			obs.M("candidates_scanned", float64(st.CandidatesScanned)),
			obs.M("reduction_cycles", float64(st.ReductionCycles)),
			obs.M("refine_steps", float64(st.RefineSteps)),
			obs.M("refine_accepted", float64(st.RefineAccepted)),
		}
		if del := delegates[name]; len(del) > 0 {
			dn := make([]string, 0, len(del))
			for d := range del {
				dn = append(dn, d)
			}
			sort.Strings(dn)
			for _, d := range dn {
				ms = append(ms, obs.M("selected_"+d, float64(del[d])))
			}
		}
		reg.Add("mapper."+name, ms...)
	}
	reg.Add("accel.counters", counters.Metrics()...)
	reg.Add("accel.activity", activity.Metrics()...)
}
