package core

import (
	"mesa/internal/accel"
	"mesa/internal/obs"
)

// AddMetrics folds the run's counter surfaces into the registry: the
// controller's own counters plus the accelerator performance counters and
// component activity aggregated over every accelerated region. No-op on a
// nil registry.
func (r *Report) AddMetrics(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Add("controller",
		obs.Count("cpu_retired", r.CPURetired),
		obs.Count("accel_iterations", r.AccelIterations),
		obs.Count("regions", uint64(len(r.Regions))),
		obs.Count("config_cache_hits", r.CacheHits),
		obs.Count("config_cache_misses", r.CacheMisses),
		obs.M("detector_stalls", float64(r.DetectorStalls)),
	)

	var counters accel.Counters
	var activity accel.Activity
	var overhead float64
	var reconfigs, tiles int
	for _, rr := range r.Regions {
		counters.AddScalars(rr.Counters)
		activity = addActivity(activity, rr.Activity)
		overhead += rr.OverheadCycles
		reconfigs += rr.Reconfigs
		tiles += rr.Tiles
	}
	reg.Add("regions",
		obs.M("overhead_cycles", overhead),
		obs.M("reconfigurations", float64(reconfigs)),
		obs.M("tiles", float64(tiles)),
	)
	reg.Add("accel.counters", counters.Metrics()...)
	reg.Add("accel.activity", activity.Metrics()...)
}
