package core

import (
	"fmt"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mapping"
	"mesa/internal/mem"
)

// OpLatencyFunc estimates the execution latency of an instruction on the
// target backend (node weights in the first LDFG build, before measured
// values exist).
type OpLatencyFunc func(in isa.Inst) float64

// LDFG is the Logical Dataflow Graph: the DFG stored in program order
// (analogous to a reorder buffer), produced by task T1 of the paper. The
// type lives in internal/mapping with the placement machinery that consumes
// it; construction (renaming, shadows, forwarding) stays here.
type LDFG = mapping.LDFG

type storeRecord struct {
	node     dfg.NodeID
	baseProd dfg.NodeID // producer of the base address register
	baseLive isa.Reg    // live-in base register when baseProd is None
	offset   int32
	width    uint32
	dataProd dfg.NodeID // producer of the stored value
	dataLive isa.Reg
	ctrl     dfg.NodeID // predication context of the store
}

// newNode returns a Node with all dependency slots cleared.
func newNode(in isa.Inst, lat float64) dfg.Node {
	return dfg.Node{
		Inst:       in,
		OpLat:      lat,
		Src:        [3]dfg.NodeID{dfg.None, dfg.None, dfg.None},
		LiveIn:     [3]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone},
		MemDep:     dfg.None,
		PredDep:    dfg.None,
		PredLiveIn: isa.RegNone,
		CtrlDep:    dfg.None,
	}
}

// LDFGOptions tunes LDFG construction (ablation knobs).
type LDFGOptions struct {
	// DisableForwarding turns off static store-to-load forwarding; exact
	// store/load pairs then go through the LSU like any other access.
	DisableForwarding bool
}

// BuildLDFG translates a code region (the instructions of one loop body, in
// program order, including the closing backward branch if present) into the
// Logical DFG. Renaming maps every architectural source register to the last
// node writing it; forward-branch shadows add control and hidden
// predication dependencies; exact store-to-load pairs become forwarding
// edges.
func BuildLDFG(insts []isa.Inst, opLat OpLatencyFunc) (*LDFG, error) {
	return BuildLDFGOpts(insts, opLat, LDFGOptions{})
}

// BuildLDFGOpts is BuildLDFG with explicit options.
func BuildLDFGOpts(insts []isa.Inst, opLat OpLatencyFunc, opts LDFGOptions) (*LDFG, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("core: empty region")
	}
	g := dfg.NewGraph()
	table := NewRenameTable()
	l := &LDFG{Graph: g, LoopBranch: dfg.None}

	// Pre-compute forward-branch shadow extents (by instruction index).
	type shadow struct {
		branch dfg.NodeID
		end    int // first index past the shadowed range
	}
	var active []shadow
	var stores []storeRecord

	base := insts[0].Addr
	idxOf := func(addr uint32) int { return int(addr-base) / 4 }

	for i, in := range insts {
		// Retire shadows that end at or before this instruction.
		for len(active) > 0 && active[len(active)-1].end <= i {
			active = active[:len(active)-1]
		}

		n := newNode(in, opLat(in))
		if len(active) > 0 {
			n.CtrlDep = active[len(active)-1].branch
		}

		// Rename sources.
		srcs := in.Sources()
		for k, r := range srcs {
			if r == isa.RegNone {
				continue
			}
			if p := table.Producer(r); p != dfg.None {
				n.Src[k] = p
			} else {
				n.LiveIn[k] = r
			}
		}

		// Hidden predication dependency for destination writers in a shadow.
		if rd, ok := in.Dest(); ok && n.CtrlDep != dfg.None {
			if p := table.Producer(rd); p != dfg.None {
				n.PredDep = p
			} else {
				n.PredLiveIn = rd
			}
		}

		// Memory handling: static disambiguation plus store-to-load
		// forwarding for exact matches. Dynamic disambiguation of the
		// remaining pairs is the LSU's job.
		if in.IsLoad() || in.IsStore() {
			baseProd := table.Producer(in.Rs1)
			baseLive := isa.RegNone
			if baseProd == dfg.None {
				baseLive = in.Rs1
			}
			width := mem.AccessBytes(in.Op)

			if in.IsLoad() {
				for s := len(stores) - 1; s >= 0; s-- {
					st := stores[s]
					sameBase := st.baseProd == baseProd && st.baseLive == baseLive
					if !sameBase {
						// Different base identity: the LSU disambiguates at
						// runtime; no static edge.
						continue
					}
					if st.offset == in.Imm && st.width == width && width == 4 &&
						st.ctrl == n.CtrlDep && !opts.DisableForwarding {
						// Exact match in the same predication context:
						// forward the stored value, eliding the access.
						n.Fwd = true
						n.Src[1] = st.dataProd
						n.LiveIn[1] = st.dataLive
						n.MemDep = dfg.None
						l.Forwarded++
						break
					}
					if rangesOverlap(st.offset, st.width, in.Imm, width) {
						// Same base, overlapping bytes, inexact: order after
						// the store.
						n.MemDep = st.node
						break
					}
					// Same base, provably disjoint: keep scanning older
					// stores.
				}
			}
			_ = baseLive
		}

		id := g.Add(n)

		if in.IsStore() {
			dataProd := table.Producer(in.Rs2)
			dataLive := isa.RegNone
			if dataProd == dfg.None {
				dataLive = in.Rs2
			}
			baseProd := table.Producer(in.Rs1)
			baseLive := isa.RegNone
			if baseProd == dfg.None {
				baseLive = in.Rs1
			}
			stores = append(stores, storeRecord{
				node: id, baseProd: baseProd, baseLive: baseLive,
				offset: in.Imm, width: mem.AccessBytes(in.Op),
				dataProd: dataProd, dataLive: dataLive,
				ctrl: g.Node(id).CtrlDep,
			})
		}

		// Register writes update the rename table after the instruction is
		// numbered (its consumers rename to this node).
		if rd, ok := in.Dest(); ok {
			// Induction detection: rd = rd + imm with rd live-in or fed by
			// the previous induction update of the same register.
			if in.Op == isa.OpADDI && in.Rs1 == rd && table.Producer(rd) == dfg.None {
				l.Inductions = append(l.Inductions, id)
			}
			table.Write(rd, id)
		}

		// Control instructions: record shadows and the loop branch.
		if in.IsBranch() {
			if in.Imm > 0 {
				end := idxOf(in.BranchTarget())
				if end > i+1 && end <= len(insts) {
					active = append(active, shadow{branch: id, end: end})
				}
			} else if i == len(insts)-1 {
				l.LoopBranch = id
			}
		}
	}

	g.LiveOut = table.Snapshot()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: LDFG invalid: %w", err)
	}
	return l, nil
}

func rangesOverlap(aOff int32, aW uint32, bOff int32, bW uint32) bool {
	return aOff < bOff+int32(bW) && bOff < aOff+int32(aW)
}
