package core

import (
	"mesa/internal/accel"
	"mesa/internal/mapping"
)

// The instruction-mapping FSM model (Figure 8) moved to internal/mapping
// alongside the greedy mapper whose decisions it replays.

// ImapState is a state of the instruction-mapping state machine.
type ImapState = mapping.ImapState

// FSM states, in per-instruction order.
const (
	ImapIdle       = mapping.ImapIdle
	ImapRead       = mapping.ImapRead
	ImapCandidates = mapping.ImapCandidates
	ImapFilter     = mapping.ImapFilter
	ImapReduce     = mapping.ImapReduce
	ImapWrite      = mapping.ImapWrite
	ImapDone       = mapping.ImapDone
)

// ImapStep is one FSM dwell: a state held for Cycles cycles while mapping
// instruction Node.
type ImapStep = mapping.ImapStep

// ImapTrace is the cycle-by-cycle activity of the imap FSM for one region —
// the data behind Figure 8's timing diagram.
type ImapTrace = mapping.ImapTrace

// SimulateImapFSM replays the mapping of an LDFG as the hardware state
// machine would execute it (always the greedy pass; see
// mapping.SimulateImapFSM).
func SimulateImapFSM(l *LDFG, be *accel.Config, opts MapperOptions) (*ImapTrace, *SDFG, error) {
	return mapping.SimulateImapFSM(l, be, opts)
}
