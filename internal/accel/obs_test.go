package accel

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

// busFanout builds a producer on the grid fanning out to three consumers on
// the fallback bus: every producer→consumer transfer rides the bus, none
// touch the NoC.
func busFanout(t *testing.T) (*Engine, *[isa.NumRegs]uint32) {
	t.Helper()
	g := dfg.NewGraph()
	src := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone}, 1)
	src.LiveIn[0], src.LiveIn[1] = isa.X6, isa.X7
	srcID := g.Add(src)
	for k := 0; k < 3; k++ {
		n := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.IntReg(8 + k), Rs1: isa.X5, Rs2: isa.X5, Rs3: isa.RegNone}, 1)
		n.Src[0] = srcID
		g.Add(n)
	}
	g.LiveOut[isa.X8] = 1

	// A one-row grid with one NoC lane: aggregate lane bandwidth is exactly
	// one transfer per cycle, so three misattributed bus transfers would
	// claim a NoC initiation-interval bound of 3.
	cfg := M128()
	cfg.Rows, cfg.Cols, cfg.NoCLanesPerRow = 1, 4, 1
	bus := noc.Coord{Row: -128, Col: -128}
	pos := []noc.Coord{{Row: 0, Col: 0}, bus, bus, bus}
	e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), mem.MustHierarchy(mem.DefaultHierarchy()))
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6], regs[isa.X7] = 1, 2
	return e, &regs
}

// TestBusTrafficDoesNotBoundNoC is the regression test for the counter bug
// where fallback-bus transfers were charged against row-lane NoC bandwidth:
// a mapping with three bus transfers per iteration and zero NoC transfers
// previously reported II=3 with bound "noc"; the correct model is II=1 with
// bound "dependence".
func TestBusTrafficDoesNotBoundNoC(t *testing.T) {
	e, regs := busFanout(t)
	res, err := e.RunLoop(regs, LoopOptions{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.BusTransfers != 3 {
		t.Errorf("BusTransfers = %d, want 3", c.BusTransfers)
	}
	if c.NoCTransfers != 0 {
		t.Errorf("NoCTransfers = %d, want 0 (bus traffic must not count as NoC)", c.NoCTransfers)
	}
	if res.Bound != "dependence" {
		t.Errorf("bound = %q, want \"dependence\" (pre-fix behavior mislabels it \"noc\")", res.Bound)
	}
	if res.II != 1 {
		t.Errorf("II = %v, want 1 (pre-fix behavior inflates it to 3)", res.II)
	}
}

// TestFeedbackCountsOnlyChanges: both node and edge counts must use
// changed-only semantics — a second Feedback with no new measurements
// reports zero updates.
func TestFeedbackCountsOnlyChanges(t *testing.T) {
	e, regs := busFanout(t)
	if _, err := e.RunIteration(regs); err != nil {
		t.Fatal(err)
	}
	g := e.g
	nodes, edges, err := e.Feedback(g)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 3 {
		t.Errorf("first Feedback: edges = %d, want 3 (one per measured edge)", edges)
	}
	// Same counters, same graph: every weight is already the measured value.
	nodes2, edges2, err := e.Feedback(g)
	if err != nil {
		t.Fatal(err)
	}
	if nodes2 != 0 || edges2 != 0 {
		t.Errorf("second Feedback: (nodes, edges) = (%d, %d), want (0, 0); first reported (%d, %d)",
			nodes2, edges2, nodes, edges)
	}
}

// TestEngineTraceEvents: with a recorder attached the engine emits node
// firings, port grants, and iteration slices; with none attached, counters
// and timing are identical.
func TestEngineTraceEvents(t *testing.T) {
	run := func(rec *obs.Recorder) (*LoopResult, Counters) {
		g := dfg.NewGraph()
		ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
		ld.LiveIn[0] = isa.X6
		ldID := g.Add(ld)
		add := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X7, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
		add.Src[0] = ldID
		addID := g.Add(add)
		g.LiveOut[isa.X7] = addID

		memory := mem.NewMemory()
		memory.StoreWord(0x1000, 41)
		pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 0, Col: 0}}
		e, err := NewEngine(M128(), g, pos, dfg.None, memory, mem.MustHierarchy(mem.DefaultHierarchy()))
		if err != nil {
			t.Fatal(err)
		}
		e.AttachRecorder(rec, 0)
		var regs [isa.NumRegs]uint32
		regs[isa.X6] = 0x1000
		res, err := e.RunLoop(&regs, LoopOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if regs[isa.X7] != 42 {
			t.Fatalf("x7 = %d, want 42", regs[isa.X7])
		}
		c := *e.Counters()
		c.OpLatSum, c.OpLatN, c.EdgeLatSum, c.EdgeLatN = nil, nil, nil, nil
		return res, c
	}

	rec := obs.NewRecorder()
	traced, tracedCounters := run(rec)
	plain, plainCounters := run(nil)

	if traced.TotalCycles != plain.TotalCycles || !reflect.DeepEqual(tracedCounters, plainCounters) {
		t.Errorf("tracing changed behavior: cycles %v vs %v, counters %+v vs %+v",
			traced.TotalCycles, plain.TotalCycles, tracedCounters, plainCounters)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	want := map[string]bool{"accel-firing": false, "port-grant": false, "iteration": false}
	for _, ev := range parsed.TraceEvents {
		switch {
		case ev.Name == "iteration":
			want["iteration"] = true
		case ev.Name == "port grant":
			want["port-grant"] = true
		case ev.Cat == "accel" && strings.HasPrefix(ev.Name, "i"):
			want["accel-firing"] = true
		}
	}
	for k, ok := range want {
		if !ok {
			t.Errorf("trace missing %s events", k)
		}
	}
}
