// Package accel simulates the custom parameterizable spatial accelerator of
// the paper (§5.2): a 2D grid of processing elements with direct links to
// immediate neighbors and a lightweight half-ring NoC, port-limited
// load/store entries along the grid edges with store-to-load forwarding and
// dynamic disambiguation, predicated forward branches, and per-PE latency
// counters that feed MESA's iterative optimizer. Execution is event-driven
// at per-operation granularity — the same granularity the paper's RTL
// testbench measures.
package accel

import (
	"fmt"

	"mesa/internal/isa"
	"mesa/internal/noc"
)

// OpLatencies holds per-class operation latencies in cycles (node weights
// for compute classes; memory classes use the cache model instead).
type OpLatencies [isa.NumClasses]float64

// DefaultOpLatencies returns the PE timing used across the evaluation,
// consistent with the paper's worked example (FP add/sub 3 cycles, FP
// multiply 5 cycles).
func DefaultOpLatencies() OpLatencies {
	var l OpLatencies
	l[isa.ClassALU] = 1
	l[isa.ClassMul] = 3
	l[isa.ClassDiv] = 12
	l[isa.ClassBranch] = 1
	l[isa.ClassJump] = 1
	l[isa.ClassFPAdd] = 3
	l[isa.ClassFPMul] = 5
	l[isa.ClassFPDiv] = 16
	l[isa.ClassLoad] = 0  // determined by the memory system
	l[isa.ClassStore] = 0 // determined by the memory system
	return l
}

// Config describes a spatial accelerator backend: grid geometry, functional
// capabilities (the F_op masks), interconnect, and memory interface. MESA
// treats this as an opaque target; only Supports and the interconnect's
// latency function are consulted during mapping.
type Config struct {
	Name string

	// Grid geometry. PEs occupy columns [0, Cols); load/store entries
	// occupy EdgeDepth virtual columns on each side of the grid
	// (columns -EdgeDepth..-1 and Cols..Cols+EdgeDepth-1), one entry per
	// row per column. The paper's design has "far more entries sharing a
	// port" than its illustration shows; EdgeDepth=2 gives 4 entries per
	// row.
	Rows, Cols int
	EdgeDepth  int

	// FPSlice is the side length of the square FP-capable slices tiled in a
	// checkerboard over the grid (Table 1 lists 2×2 FP slices; half of all
	// PEs carry FP logic). Zero disables FP support entirely.
	FPSlice int

	// Interconnect supplies point-to-point transfer latencies.
	Interconnect noc.Interconnect

	// NoCLanesPerRow bounds concurrent long-distance transfers per grid row
	// each cycle; additional transfers queue (contention).
	NoCLanesPerRow int

	// MemPorts is the number of cache ports shared by all load/store
	// entries: at most MemPorts accesses may begin per cycle.
	MemPorts int

	// OpLat gives per-class PE latencies.
	OpLat OpLatencies

	// LoadLatEstimate seeds the DFG model's memory node weight before any
	// measured AMAT exists (an optimistic L1-hit estimate).
	LoadLatEstimate float64

	// BusLat is the transfer latency over the secondary fallback bus used
	// by instructions that could not be routed (§3.3).
	BusLat int

	// EnablePrefetch turns on next-iteration speculative prefetching for
	// strided loads (§4.2: loads whose base registers depend only on
	// induction registers are prefetched an iteration ahead).
	EnablePrefetch bool

	// EnableVectorization coalesces same-cache-line accesses issued in the
	// same iteration into one memory-port slot (§4.2: loads sharing an
	// unchanged base register with different offsets are vectorized).
	EnableVectorization bool

	// ClockGHz is the accelerator clock, used for energy accounting.
	ClockGHz float64
}

// M128 returns the paper's default configuration: 128 PEs in a 16×8 grid,
// half FP-capable, half-ring NoC.
func M128() *Config {
	return &Config{
		Name: "M-128", Rows: 16, Cols: 8, EdgeDepth: 2, FPSlice: 2,
		Interconnect:    noc.DefaultHalfRing(),
		NoCLanesPerRow:  2,
		MemPorts:        8,
		OpLat:           DefaultOpLatencies(),
		LoadLatEstimate: 3,
		BusLat:          8,
		EnablePrefetch:  true,
		ClockGHz:        2.0,
	}
}

// M512 returns the 512-PE configuration (64×8 grid).
func M512() *Config {
	c := M128()
	c.Name, c.Rows, c.Cols = "M-512", 64, 8
	c.MemPorts = scaledPorts(512)
	return c
}

// M64 returns the 64-PE configuration (16×4 grid).
func M64() *Config {
	c := M128()
	c.Name, c.Rows, c.Cols = "M-64", 16, 4
	c.MemPorts = scaledPorts(64)
	return c
}

// scaledPorts models the cache interface: port count grows with the square
// root of the array size (banked caches scale sub-linearly), anchored at 8
// ports for 128 PEs. This is the "cache limitation" that keeps performance
// from scaling linearly with PEs (§6.2) and the memory bottleneck beyond
// 128 PEs in the nn scaling study (Figure 15).
func scaledPorts(pes int) int {
	p := 1
	for p*p*2 < pes {
		p++
	}
	// p ≈ sqrt(pes/2): 128 → 8, 512 → 16, 64 → 5~6, 32 → 4.
	if p < 2 {
		p = 2
	}
	return p
}

// WithPEs returns a configuration scaled to n PEs, keeping 8 columns where
// possible (used by the PE-scaling experiment, Figure 15).
func WithPEs(n int) *Config {
	c := M128()
	switch {
	case n < 8:
		c.Rows, c.Cols = 1, n
	case n <= 32:
		c.Rows, c.Cols = n/4, 4
	default:
		c.Rows, c.Cols = n/8, 8
	}
	c.Name = fmt.Sprintf("M-%d", c.Rows*c.Cols)
	c.MemPorts = scaledPorts(c.Rows * c.Cols)
	return c
}

// NumPEs reports the number of processing elements.
func (c *Config) NumPEs() int { return c.Rows * c.Cols }

// LSUEntries reports the number of load/store entries.
func (c *Config) LSUEntries() int { return 2 * c.EdgeDepth * c.Rows }

// EdgeColumns lists the virtual column indices holding load/store entries.
func (c *Config) EdgeColumns() []int {
	cols := make([]int, 0, 2*c.EdgeDepth)
	for d := 1; d <= c.EdgeDepth; d++ {
		cols = append(cols, -d, c.Cols+d-1)
	}
	return cols
}

// MaxInstructions is the structural capacity used by criterion C1: the
// region cannot exceed the available PEs plus load/store entries.
func (c *Config) MaxInstructions() int { return c.NumPEs() + c.LSUEntries() }

// IsEdge reports whether the coordinate is a load/store entry slot.
func (c *Config) IsEdge(at noc.Coord) bool {
	if at.Row < 0 || at.Row >= c.Rows {
		return false
	}
	return (at.Col >= -c.EdgeDepth && at.Col < 0) ||
		(at.Col >= c.Cols && at.Col < c.Cols+c.EdgeDepth)
}

// InBounds reports whether the coordinate is a PE position.
func (c *Config) InBounds(at noc.Coord) bool {
	return at.Row >= 0 && at.Row < c.Rows && at.Col >= 0 && at.Col < c.Cols
}

// HasFP reports whether the PE at the coordinate carries FP logic.
// FP slices tile the grid in a checkerboard: half of all PEs support FP.
func (c *Config) HasFP(at noc.Coord) bool {
	if c.FPSlice <= 0 {
		return false
	}
	return (at.Row/c.FPSlice+at.Col/c.FPSlice)%2 == 0
}

// Supports implements the F_op capability check: whether the unit at the
// coordinate can execute the given instruction class.
func (c *Config) Supports(at noc.Coord, cls isa.Class) bool {
	switch cls {
	case isa.ClassLoad, isa.ClassStore:
		return c.IsEdge(at)
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassBranch:
		return c.InBounds(at)
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		return c.InBounds(at) && c.HasFP(at)
	}
	return false
}

// EstimateLat returns the initial node weight for an instruction before any
// measurements exist.
func (c *Config) EstimateLat(in isa.Inst) float64 {
	switch in.Class() {
	case isa.ClassLoad:
		return c.LoadLatEstimate
	case isa.ClassStore:
		return 1
	}
	return c.OpLat[in.Class()]
}

// Validate checks structural sanity of the configuration.
func (c *Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("accel: %s has empty grid %dx%d", c.Name, c.Rows, c.Cols)
	}
	if c.Interconnect == nil {
		return fmt.Errorf("accel: %s has no interconnect", c.Name)
	}
	if c.MemPorts <= 0 {
		return fmt.Errorf("accel: %s has no memory ports", c.Name)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("accel: %s has non-positive clock", c.Name)
	}
	return nil
}
