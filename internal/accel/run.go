package accel

import (
	"fmt"
	"math"

	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// LoopOptions selects the execution mode for an accelerated loop region.
type LoopOptions struct {
	// Pipelined overlaps successive iterations at the steady-state
	// initiation interval. Only applied to loops annotated as parallel
	// (MESA does not speculate across iterations, §4.3).
	Pipelined bool

	// Tiles is the number of duplicated SDFG instances executing
	// iterations concurrently (spatial tiling, Figure 6). 1 = no tiling.
	Tiles int

	// MaxIterations bounds execution (0 = no bound).
	MaxIterations uint64
}

// LoopResult summarizes an accelerated loop execution.
type LoopResult struct {
	Iterations uint64

	// SerialCycles is the sum of per-iteration dataflow latencies: the cost
	// when the array restarts after each iteration completes (no
	// pipelining, no tiling).
	SerialCycles float64

	// TotalCycles is the modeled cost under the requested mode (pipelining
	// and tiling overlap iterations down to the initiation interval).
	TotalCycles float64

	// AvgIterCycles is SerialCycles / Iterations (per-iteration latency).
	AvgIterCycles float64

	// II is the steady-state initiation interval per iteration under the
	// requested mode (equals AvgIterCycles when fully serialized).
	II float64

	// Bound names the throughput-limiting resource. The vocabulary is
	// exhaustive: "serial" when the loop ran fully serialized (no pipelining
	// or tiling requested, so no steady-state bound applies); otherwise one
	// of the four candidates the initiation-interval model weighs against
	// each other — "dependence" (cross-iteration recurrence), "memports"
	// (shared memory ports), "noc" (row-lane bandwidth), or "timeshare"
	// (serialized occupants of a time-multiplexed unit, only reachable with
	// the time-multiplexing extension). A loop that never completed an
	// iteration reports the degenerate default "dependence" (see
	// InitiationInterval). Attrib carries the full decomposition.
	Bound string

	// Attrib is the bottleneck attribution report behind Bound: all four
	// candidate IIs, the recurrence chain, and the resource heatmaps. It is
	// always populated (serial runs report the bounds pipelining would have
	// had) and derives purely from counters, never perturbing timing.
	Attrib *Attribution

	// Done reports that the loop's closing branch fell through (the loop
	// finished) rather than execution stopping at MaxIterations.
	Done bool
}

// RunLoop executes the mapped loop until its closing branch falls through or
// MaxIterations is reached, starting from the architectural state in regs
// (updated in place with live-out values). Functionally, iterations run in
// program order against the shared memory; timing is assembled from the
// measured per-iteration behaviour per the selected mode.
func (e *Engine) RunLoop(regs *[isa.NumRegs]uint32, opts LoopOptions) (*LoopResult, error) {
	if opts.Tiles <= 0 {
		opts.Tiles = 1
	}
	res := &LoopResult{}
	for {
		it, err := e.RunIteration(regs)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		res.SerialCycles += it.Cycles
		if !it.Continue {
			res.Done = true
			break
		}
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			break
		}
	}
	finishLoop(res, e.attribSource(), opts)
	e.AddElapsed(res.TotalCycles)
	return res, nil
}

// finishLoop derives the mode-adjusted totals and the attribution report for
// an executed loop. It is shared by the scalar RunLoop and the batched
// engine's per-lane finalization, so both paths produce identical results
// from identical counters. opts.Tiles must already be normalized (>= 1).
func finishLoop(res *LoopResult, src *attribSource, opts LoopOptions) {
	res.AvgIterCycles = res.SerialCycles / float64(res.Iterations)
	res.II = res.AvgIterCycles
	res.TotalCycles = res.SerialCycles
	res.Bound = "serial"

	res.Attrib = src.explain(opts)
	if opts.Pipelined || opts.Tiles > 1 {
		res.II = res.Attrib.II
		res.Bound = res.Attrib.Chosen
		if res.Iterations > 1 {
			res.TotalCycles = res.AvgIterCycles + float64(res.Iterations-1)*res.II
		} else {
			res.TotalCycles = res.AvgIterCycles
		}
	}
}

// InitiationInterval computes the steady-state cycles between successive
// iteration completions under pipelining and tiling, limited by the
// cross-iteration dependence recurrence, the shared memory ports, NoC
// bandwidth, and (with the time-multiplexing extension) the most-loaded
// time-shared unit. It uses this engine's measured per-iteration counters.
//
// The returned bound is one of "dependence", "memports", "noc", or
// "timeshare" — the same vocabulary LoopResult.Bound documents (RunLoop adds
// "serial" for non-pipelined executions, which never reach this model).
// When no iteration has completed there are no counters to attribute, and
// the model explicitly falls back to the degenerate default: II 1 with
// bound "dependence" (the recurrence floor of one cycle per iteration).
//
// The result is defined as the (II, Chosen) projection of the full
// Explain attribution report, so the summary and the report cannot diverge.
func (e *Engine) InitiationInterval(opts LoopOptions) (float64, string) {
	a := e.Explain(opts)
	return a.II, a.Chosen
}

// Feedback writes the measured per-node operation latencies and per-edge
// transfer latencies back into the graph's performance model — the
// counter-driven refinement loop of the paper (F3). It returns the number
// of node and edge weights whose value actually changed (an edge with no
// prior measurement counts as changed when one is adopted).
func (e *Engine) Feedback(g *dfg.Graph) (nodes, edges int, err error) {
	if g.Len() != e.g.Len() {
		return 0, 0, fmt.Errorf("accel: feedback graph has %d nodes, engine has %d", g.Len(), e.g.Len())
	}
	nodes, edges = applyFeedback(g, &e.counters)
	return nodes, edges, nil
}

// applyFeedback folds a counter set's measured latencies back into g.
// Shared by the scalar engine's Feedback and the batched per-lane path.
// The caller must have verified that g matches the counters' graph.
func applyFeedback(g *dfg.Graph, c *Counters) (nodes, edges int) {
	for i := range g.Nodes {
		if n := c.OpLatN[i]; n > 0 {
			measured := c.OpLatSum[i] / float64(n)
			if math.Abs(measured-g.Nodes[i].OpLat) > 1e-9 {
				nodes++
			}
			g.Nodes[i].OpLat = measured
		}
	}
	for k, sum := range c.EdgeLatSum {
		n := c.EdgeLatN[k]
		if n == 0 {
			continue
		}
		key := c.EdgePairs[k]
		from := dfg.NodeID(key >> 32)
		to := dfg.NodeID(key & 0xFFFFFFFF)
		measured := sum / float64(n)
		if prev, ok := g.MeasuredEdgeLatency(from, to); !ok || math.Abs(measured-prev) > 1e-9 {
			edges++
		}
		g.SetEdgeLatency(from, to, measured)
	}
	return nodes, edges
}

// MeasuredAMAT returns the average measured load latency in cycles.
func (e *Engine) MeasuredAMAT() float64 {
	var sum float64
	var n uint64
	for i := range e.g.Nodes {
		node := &e.g.Nodes[i]
		if node.Inst.IsLoad() && !node.Fwd && e.counters.OpLatN[i] > 0 {
			sum += e.counters.OpLatSum[i] / float64(e.counters.OpLatN[i])
			n++
		}
	}
	if n == 0 {
		return e.cfg.LoadLatEstimate
	}
	return sum / float64(n)
}
