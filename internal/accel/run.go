package accel

import (
	"fmt"
	"math"

	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// LoopOptions selects the execution mode for an accelerated loop region.
type LoopOptions struct {
	// Pipelined overlaps successive iterations at the steady-state
	// initiation interval. Only applied to loops annotated as parallel
	// (MESA does not speculate across iterations, §4.3).
	Pipelined bool

	// Tiles is the number of duplicated SDFG instances executing
	// iterations concurrently (spatial tiling, Figure 6). 1 = no tiling.
	Tiles int

	// MaxIterations bounds execution (0 = no bound).
	MaxIterations uint64
}

// LoopResult summarizes an accelerated loop execution.
type LoopResult struct {
	Iterations uint64

	// SerialCycles is the sum of per-iteration dataflow latencies: the cost
	// when the array restarts after each iteration completes (no
	// pipelining, no tiling).
	SerialCycles float64

	// TotalCycles is the modeled cost under the requested mode (pipelining
	// and tiling overlap iterations down to the initiation interval).
	TotalCycles float64

	// AvgIterCycles is SerialCycles / Iterations (per-iteration latency).
	AvgIterCycles float64

	// II is the steady-state initiation interval per iteration under the
	// requested mode (equals AvgIterCycles when fully serialized).
	II float64

	// Bound names the throughput-limiting resource: "serial" when the loop
	// ran fully serialized (no pipelining or tiling requested), otherwise
	// "dependence", "memports", "noc", or — with the time-multiplexing
	// extension — "timeshare".
	Bound string

	// Done reports that the loop's closing branch fell through (the loop
	// finished) rather than execution stopping at MaxIterations.
	Done bool
}

// RunLoop executes the mapped loop until its closing branch falls through or
// MaxIterations is reached, starting from the architectural state in regs
// (updated in place with live-out values). Functionally, iterations run in
// program order against the shared memory; timing is assembled from the
// measured per-iteration behaviour per the selected mode.
func (e *Engine) RunLoop(regs *[isa.NumRegs]uint32, opts LoopOptions) (*LoopResult, error) {
	if opts.Tiles <= 0 {
		opts.Tiles = 1
	}
	res := &LoopResult{}
	for {
		it, err := e.RunIteration(regs)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		res.SerialCycles += it.Cycles
		if !it.Continue {
			res.Done = true
			break
		}
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			break
		}
	}
	res.AvgIterCycles = res.SerialCycles / float64(res.Iterations)
	res.II = res.AvgIterCycles
	res.TotalCycles = res.SerialCycles
	res.Bound = "serial"

	if opts.Pipelined || opts.Tiles > 1 {
		ii, bound := e.InitiationInterval(opts)
		res.II = ii
		res.Bound = bound
		if res.Iterations > 1 {
			res.TotalCycles = res.AvgIterCycles + float64(res.Iterations-1)*ii
		} else {
			res.TotalCycles = res.AvgIterCycles
		}
	}
	e.AddElapsed(res.TotalCycles)
	return res, nil
}

// InitiationInterval computes the steady-state cycles between successive
// iteration completions under pipelining and tiling, limited by the
// cross-iteration dependence recurrence, the shared memory ports, and NoC
// bandwidth. It uses this engine's measured per-iteration counters.
func (e *Engine) InitiationInterval(opts LoopOptions) (float64, string) {
	iters := float64(e.counters.Iterations)
	if iters == 0 {
		return 1, "dependence"
	}
	tiles := float64(opts.Tiles)
	if tiles < 1 {
		tiles = 1
	}

	// Dependence-recurrence MII: a live-out register consumed as a live-in
	// of the next iteration closes a cycle through that node. Each tile
	// runs its own recurrence, so tiling divides the aggregate interval.
	recMII := 1.0
	for r, id := range e.g.LiveOut {
		if !e.liveInUsed(r) {
			continue
		}
		n := e.g.Node(id)
		lat := e.cfg.EstimateLat(n.Inst)
		if e.counters.OpLatN[id] > 0 {
			lat = e.counters.OpLatSum[id] / float64(e.counters.OpLatN[id])
		}
		if lat+1 > recMII {
			recMII = lat + 1 // +1: transfer back to the consumer's input
		}
	}
	depII := recMII / tiles

	// Resource MII: memory ports are shared by all tiles. Forwarded and
	// coalesced accesses never consumed a port slot.
	memPerIter := float64(e.counters.Loads+e.counters.Stores-e.counters.Forwarded-e.counters.Coalesced) / iters
	memII := memPerIter / float64(e.cfg.MemPorts)

	// NoC bandwidth: lanes per row, one transfer per lane per cycle.
	// Fallback-bus transfers are counted separately (BusTransfers) and do
	// not occupy lanes, so they are excluded here.
	nocPerIter := float64(e.counters.NoCTransfers) / iters
	lanes := float64(max(1, e.cfg.NoCLanesPerRow) * e.cfg.Rows)
	nocII := nocPerIter / lanes

	ii, bound := depII, "dependence"
	if memII > ii {
		ii, bound = memII, "memports"
	}
	if nocII > ii {
		ii, bound = nocII, "noc"
	}
	// Time-shared units must complete all their occupants each iteration.
	if e.timeShared && e.maxUnitWork > ii {
		ii, bound = e.maxUnitWork, "timeshare"
	}
	if ii < 1.0/tiles {
		ii = 1.0 / tiles // at most one iteration completes per tile per cycle
	}
	return ii, bound
}

// liveInUsed reports whether register r is read as a live-in anywhere in
// the graph (including predication live-ins).
func (e *Engine) liveInUsed(r isa.Reg) bool {
	for i := range e.g.Nodes {
		n := &e.g.Nodes[i]
		for k := 0; k < 3; k++ {
			if n.Src[k] == dfg.None && n.LiveIn[k] == r {
				return true
			}
		}
		if n.PredLiveIn == r {
			return true
		}
	}
	return false
}

// Feedback writes the measured per-node operation latencies and per-edge
// transfer latencies back into the graph's performance model — the
// counter-driven refinement loop of the paper (F3). It returns the number
// of node and edge weights whose value actually changed (an edge with no
// prior measurement counts as changed when one is adopted).
func (e *Engine) Feedback(g *dfg.Graph) (nodes, edges int, err error) {
	if g.Len() != e.g.Len() {
		return 0, 0, fmt.Errorf("accel: feedback graph has %d nodes, engine has %d", g.Len(), e.g.Len())
	}
	for i := range g.Nodes {
		if n := e.counters.OpLatN[i]; n > 0 {
			measured := e.counters.OpLatSum[i] / float64(n)
			if math.Abs(measured-g.Nodes[i].OpLat) > 1e-9 {
				nodes++
			}
			g.Nodes[i].OpLat = measured
		}
	}
	for key, sum := range e.counters.EdgeLatSum {
		n := e.counters.EdgeLatN[key]
		if n == 0 {
			continue
		}
		from := dfg.NodeID(key >> 32)
		to := dfg.NodeID(key & 0xFFFFFFFF)
		measured := sum / float64(n)
		if prev, ok := g.MeasuredEdgeLatency(from, to); !ok || math.Abs(measured-prev) > 1e-9 {
			edges++
		}
		g.SetEdgeLatency(from, to, measured)
	}
	return nodes, edges, nil
}

// MeasuredAMAT returns the average measured load latency in cycles.
func (e *Engine) MeasuredAMAT() float64 {
	var sum float64
	var n uint64
	for i := range e.g.Nodes {
		node := &e.g.Nodes[i]
		if node.Inst.IsLoad() && !node.Fwd && e.counters.OpLatN[i] > 0 {
			sum += e.counters.OpLatSum[i] / float64(e.counters.OpLatN[i])
			n++
		}
	}
	if n == 0 {
		return e.cfg.LoadLatEstimate
	}
	return sum / float64(n)
}
