package accel

import (
	"fmt"
	"io"
)

// Fingerprint writes a deterministic description of every simulation-relevant
// configuration field to w, for content-hash cache keys: two configs with the
// same fingerprint produce identical simulated timing for the same program.
// The interconnect is identified by its concrete type and value (all
// implementations are plain-data structs).
func (c *Config) Fingerprint(w io.Writer) {
	fmt.Fprintf(w, "accel|%s|%d|%d|%d|%d|%T%+v|%d|%d|%v|%g|%d|%t|%t|%g",
		c.Name, c.Rows, c.Cols, c.EdgeDepth, c.FPSlice,
		c.Interconnect, c.Interconnect,
		c.NoCLanesPerRow, c.MemPorts, c.OpLat, c.LoadLatEstimate, c.BusLat,
		c.EnablePrefetch, c.EnableVectorization, c.ClockGHz)
}
