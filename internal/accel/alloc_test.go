package accel

import (
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

// allocLoopLane builds a small but feature-complete loop — strided load, ALU
// op, store, same-line second load (forwarding/coalescing), induction update,
// and a loop-closing branch — with prefetch and vectorization enabled, plus
// the pre-touched memory pages its iterations walk. Each call constructs a
// fresh graph and memory, so multiple lanes never share state.
func allocLoopLane(t testing.TB, timeShare bool) (BatchLane, [isa.NumRegs]uint32) {
	t.Helper()
	g := dfg.NewGraph()
	// n0: lw x5, 0(x10)
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X10
	id0 := g.Add(ld)
	// n1: x6 = x5 + 1
	add := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X6, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	add.Src[0] = id0
	id1 := g.Add(add)
	// n2: sw x6, 4(x10)
	st := newNode(isa.Inst{Op: isa.OpSW, Rd: isa.RegNone, Rs1: isa.X10, Rs2: isa.X6, Rs3: isa.RegNone, Imm: 4}, 1)
	st.LiveIn[0] = isa.X10
	st.Src[1] = id1
	id2 := g.Add(st)
	// n3: lw x7, 4(x10) — forwarded from n2's in-flight store
	ld2 := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X7, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 4}, 3)
	ld2.LiveIn[0] = isa.X10
	ld2.MemDep = id2
	id3 := g.Add(ld2)
	// n4: x8 = x7 + x5
	sum := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X8, Rs1: isa.X7, Rs2: isa.X5, Rs3: isa.RegNone}, 1)
	sum.Src[0] = id3
	sum.Src[1] = id0
	g.Add(sum)
	// n5: x10 = x10 + 4 (induction — stable stride for the prefetcher)
	ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X10, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 4}, 1)
	ind.LiveIn[0] = isa.X10
	id5 := g.Add(ind)
	// n6: bne x10, x11 -> loop
	br := newNode(isa.Inst{Op: isa.OpBNE, Rd: isa.RegNone, Rs1: isa.X10, Rs2: isa.X11, Rs3: isa.RegNone, Imm: -24}, 1)
	br.Src[0] = id5
	br.LiveIn[1] = isa.X11
	id6 := g.Add(br)
	g.LiveOut[isa.X10] = id5

	cfg := M128()
	cfg.EnablePrefetch = true
	cfg.EnableVectorization = true
	memory := mem.NewMemory()
	// Pre-touch every page the measured iterations can reach so the sparse
	// functional memory never page-faults (page allocation is the memory
	// substrate's, not the hot loop's).
	for addr := uint32(0x1000); addr < 0x40000; addr += 4 {
		memory.StoreWord(addr, addr)
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := rowPlacement(cfg, g)
	if timeShare {
		// Stack the ALU nodes on one PE to exercise the unit-busy scratch.
		pos[1] = noc.Coord{Row: 0, Col: 0}
		pos[4] = noc.Coord{Row: 0, Col: 0}
		pos[5] = noc.Coord{Row: 0, Col: 0}
		pos[6] = noc.Coord{Row: 0, Col: 0}
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X10] = 0x1000
	regs[isa.X11] = 0x3f000
	return BatchLane{Cfg: cfg, G: g, Pos: pos, LoopBranch: id6, Mem: memory, Hier: hier}, regs
}

// allocLoop constructs a scalar engine over the allocLoopLane fixture.
func allocLoop(t testing.TB, timeShare bool) (*Engine, [isa.NumRegs]uint32) {
	t.Helper()
	l, regs := allocLoopLane(t, timeShare)
	e, err := NewEngine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
	if err != nil {
		t.Fatal(err)
	}
	return e, regs
}

// TestRunIterationZeroAllocs pins the untraced per-iteration path at zero
// heap allocations: all scratch state (line-grant table, unit-busy array,
// store buffer, edge counters) is engine-owned and reused across iterations.
// Both the spatial and the time-shared configurations are covered.
func TestRunIterationZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		timeShare bool
	}{{"spatial", false}, {"timeshared", true}} {
		t.Run(tc.name, func(t *testing.T) {
			e, regs := allocLoop(t, tc.timeShare)
			if tc.timeShare && !e.timeShared {
				t.Fatal("placement did not trigger time sharing")
			}
			// Warm once so one-time growth (store-buffer backing array) is
			// excluded; AllocsPerRun also does its own warm-up run.
			if _, err := e.RunIteration(&regs); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(200, func() {
				if _, err := e.RunIteration(&regs); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("untraced RunIteration allocates %.2f objects/iteration, want 0", avg)
			}
		})
	}
}

// TestRunIterationTracedMayAllocate documents the traced-path allowance: with
// a recorder attached, RunIteration emits trace events and MAY allocate (the
// recorder buffers events); the zero-allocation invariant applies only to the
// untraced path. This test asserts tracing works on the same loop — not that
// it is allocation-free.
func TestRunIterationTracedMayAllocate(t *testing.T) {
	e, regs := allocLoop(t, false)
	rec := obs.NewRecorder()
	e.AttachRecorder(rec, 0)
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	if !e.traced {
		t.Fatal("recorder did not enable the traced path")
	}
}
