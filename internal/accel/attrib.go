package accel

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/noc"
)

// AttribSchemaVersion identifies the attribution report layout. Bump it when
// a field is added, removed, or its meaning changes, so saved reports remain
// interpretable.
const AttribSchemaVersion = 1

// maxRecurrenceNodes bounds the recurrence list in a report to the
// top contributors by measured latency.
const maxRecurrenceNodes = 8

// CandidateII is one throughput bound considered by the initiation-interval
// model. Every report carries all four candidates in a fixed order
// (dependence, memports, noc, timeshare), not just the winner, so a reader
// can see how close the runner-up resources are to becoming the bottleneck.
type CandidateII struct {
	Name     string  `json:"name"`
	II       float64 `json:"ii"`
	Limiting bool    `json:"limiting"`
}

// RecurrenceNode is one cross-iteration dependence cycle contributor: a node
// whose live-out register is consumed as a live-in of the next iteration.
// Lat is the measured average operation latency (the configured estimate
// when the node never fired); the recurrence interval it implies is Lat+1.
type RecurrenceNode struct {
	Node int     `json:"node"`
	Op   string  `json:"op"`
	Reg  string  `json:"reg"`
	Lat  float64 `json:"lat"`
}

// PEUtil is the firing utilization of one configured unit (PE or load/store
// entry slot): the share of active accelerator cycles the unit spent
// executing, from the same per-node latency counters MESA's frontend tallies.
type PEUtil struct {
	Row         int     `json:"row"`
	Col         int     `json:"col"`
	Nodes       int     `json:"nodes"` // instructions mapped to this unit
	Firings     uint64  `json:"firings"`
	BusyCycles  float64 `json:"busy_cycles"`
	Utilization float64 `json:"utilization"`
}

// RowOccupancy is the NoC lane occupancy of one grid row: transfers that
// arbitrated for this row's lanes over the lanes' aggregate capacity
// (lanes × active cycles, one transfer per lane per cycle).
type RowOccupancy struct {
	Row       int     `json:"row"`
	Lanes     int     `json:"lanes"`
	Transfers uint64  `json:"transfers"`
	Occupancy float64 `json:"occupancy"`
}

// PortShare is one shared memory port's contention profile. WaitShare is
// this port's fraction of all port-wait cycles (0 when no access waited).
type PortShare struct {
	Port       int     `json:"port"`
	Grants     uint64  `json:"grants"`
	WaitCycles float64 `json:"wait_cycles"`
	WaitShare  float64 `json:"wait_share"`
}

// Attribution is the bottleneck attribution report for one loop execution:
// the full initiation-interval decomposition plus the resource heatmaps
// behind it. It is derived purely from the engine's performance counters, so
// producing it never perturbs simulated timing, and its JSON serialization
// is byte-stable (fixed field order, deterministically ordered slices).
type Attribution struct {
	SchemaVersion int `json:"schema_version"`

	Iterations uint64 `json:"iterations"`
	Tiles      int    `json:"tiles"`
	// Mode is "pipelined" when the loop overlapped iterations (pipelining or
	// tiling requested) and "serial" otherwise; in serial mode the candidate
	// IIs describe what pipelining would have been limited by.
	Mode string `json:"mode"`

	// Chosen is the limiting candidate ("dependence", "memports", "noc", or
	// "timeshare") and II its steady-state initiation interval, after the
	// 1/tiles floor (FloorII) is applied.
	Chosen  string  `json:"chosen"`
	II      float64 `json:"ii"`
	FloorII float64 `json:"floor_ii"`

	Bounds     []CandidateII    `json:"bounds"`
	Recurrence []RecurrenceNode `json:"recurrence"`
	PEs        []PEUtil         `json:"pe_utilization"`
	NoCRows    []RowOccupancy   `json:"noc_rows"`
	Ports      []PortShare      `json:"ports"`

	// ActiveCycles is the denominator of the utilization and occupancy
	// figures: the sum of measured iteration latencies.
	ActiveCycles float64 `json:"active_cycles"`
}

// attribSource is the state a bottleneck attribution derives from. Both the
// scalar Engine and each BatchEngine lane project themselves onto one, so
// the batched path produces byte-identical reports by construction: there is
// exactly one implementation of the attribution math.
type attribSource struct {
	cfg         *Config
	g           *dfg.Graph
	pos         []noc.Coord
	counters    *Counters
	timeShared  bool
	maxUnitWork float64
}

// attribSource projects the engine onto the shared attribution view.
func (e *Engine) attribSource() *attribSource {
	return &attribSource{
		cfg: e.cfg, g: e.g, pos: e.pos, counters: &e.counters,
		timeShared: e.timeShared, maxUnitWork: e.maxUnitWork,
	}
}

// Explain computes the full bottleneck attribution for this engine's
// measured counters under the given loop options. InitiationInterval is
// defined as the (II, Chosen) projection of this report, so the two can
// never disagree. With no completed iterations the report is the documented
// degenerate default: II 1, bound "dependence", empty heatmaps.
func (e *Engine) Explain(opts LoopOptions) *Attribution {
	return e.attribSource().explain(opts)
}

func (e *attribSource) explain(opts LoopOptions) *Attribution {
	tiles := opts.Tiles
	if tiles < 1 {
		tiles = 1
	}
	a := &Attribution{
		SchemaVersion: AttribSchemaVersion,
		Iterations:    e.counters.Iterations,
		Tiles:         tiles,
		Mode:          "serial",
		FloorII:       1.0 / float64(tiles),
		ActiveCycles:  e.counters.ActiveCycles,
	}
	if opts.Pipelined || tiles > 1 {
		a.Mode = "pipelined"
	}

	iters := float64(e.counters.Iterations)
	if iters == 0 {
		// Degenerate: no iteration ever completed, so no counter can name a
		// bottleneck. Report the dependence bound's floor of one cycle —
		// matching InitiationInterval's documented degenerate return — with
		// all four candidates present (the other three at zero).
		a.Chosen, a.II = "dependence", 1
		a.Bounds = []CandidateII{
			{Name: "dependence", II: 1, Limiting: true},
			{Name: "memports"}, {Name: "noc"}, {Name: "timeshare"},
		}
		return a
	}

	// Dependence-recurrence MII (see InitiationInterval): every live-out
	// register consumed as a live-in closes a cycle through its producer.
	recMII := 1.0
	for r, id := range e.g.LiveOut {
		if !e.liveInUsed(r) {
			continue
		}
		n := e.g.Node(id)
		lat := e.cfg.EstimateLat(n.Inst)
		if e.counters.OpLatN[id] > 0 {
			lat = e.counters.OpLatSum[id] / float64(e.counters.OpLatN[id])
		}
		a.Recurrence = append(a.Recurrence, RecurrenceNode{
			Node: int(id), Op: n.Inst.Op.String(), Reg: r.String(), Lat: lat,
		})
		if lat+1 > recMII {
			recMII = lat + 1 // +1: transfer back to the consumer's input
		}
	}
	sort.Slice(a.Recurrence, func(i, j int) bool {
		if a.Recurrence[i].Lat != a.Recurrence[j].Lat {
			return a.Recurrence[i].Lat > a.Recurrence[j].Lat
		}
		return a.Recurrence[i].Node < a.Recurrence[j].Node
	})
	if len(a.Recurrence) > maxRecurrenceNodes {
		a.Recurrence = a.Recurrence[:maxRecurrenceNodes]
	}
	depII := recMII / float64(tiles)

	// Resource MIIs, identical to InitiationInterval's model.
	memPerIter := float64(e.counters.Loads+e.counters.Stores-e.counters.Forwarded-e.counters.Coalesced) / iters
	memII := memPerIter / float64(e.cfg.MemPorts)
	nocPerIter := float64(e.counters.NoCTransfers) / iters
	lanes := float64(max(1, e.cfg.NoCLanesPerRow) * e.cfg.Rows)
	nocII := nocPerIter / lanes

	ii, bound := depII, "dependence"
	if memII > ii {
		ii, bound = memII, "memports"
	}
	if nocII > ii {
		ii, bound = nocII, "noc"
	}
	tsII := 0.0
	if e.timeShared {
		tsII = e.maxUnitWork
		if tsII > ii {
			ii, bound = tsII, "timeshare"
		}
	}
	if ii < a.FloorII {
		ii = a.FloorII
	}
	a.Chosen, a.II = bound, ii
	a.Bounds = []CandidateII{
		{Name: "dependence", II: depII, Limiting: bound == "dependence"},
		{Name: "memports", II: memII, Limiting: bound == "memports"},
		{Name: "noc", II: nocII, Limiting: bound == "noc"},
		{Name: "timeshare", II: tsII, Limiting: bound == "timeshare"},
	}

	a.PEs = e.peUtilization()
	a.NoCRows = e.rowOccupancy()
	a.Ports = e.portShares()
	return a
}

// liveInUsed reports whether register r is read as a live-in anywhere in
// the graph (including predication live-ins).
func (e *attribSource) liveInUsed(r isa.Reg) bool {
	for i := range e.g.Nodes {
		n := &e.g.Nodes[i]
		for k := 0; k < 3; k++ {
			if n.Src[k] == dfg.None && n.LiveIn[k] == r {
				return true
			}
		}
		if n.PredLiveIn == r {
			return true
		}
	}
	return false
}

// peUtilization groups the per-node latency counters by configured unit
// (bus-fallback nodes carry no unit) and normalizes by active cycles.
func (e *attribSource) peUtilization() []PEUtil {
	type key struct{ row, col int }
	acc := map[key]*PEUtil{}
	for i := range e.g.Nodes {
		p := e.pos[i]
		if !e.cfg.InBounds(p) && !e.cfg.IsEdge(p) {
			continue // fallback bus: not a spatial unit
		}
		k := key{p.Row, p.Col}
		u := acc[k]
		if u == nil {
			u = &PEUtil{Row: p.Row, Col: p.Col}
			acc[k] = u
		}
		u.Nodes++
		u.Firings += e.counters.OpLatN[i]
		u.BusyCycles += e.counters.OpLatSum[i]
	}
	out := make([]PEUtil, 0, len(acc))
	for _, u := range acc {
		if e.counters.ActiveCycles > 0 {
			u.Utilization = u.BusyCycles / e.counters.ActiveCycles
		}
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// rowOccupancy reports each grid row's NoC lane occupancy. Rows with no
// transfers are included so the heatmap covers the whole array.
func (e *attribSource) rowOccupancy() []RowOccupancy {
	lanes := max(1, e.cfg.NoCLanesPerRow)
	out := make([]RowOccupancy, e.cfg.Rows)
	for r := range out {
		out[r] = RowOccupancy{Row: r, Lanes: lanes}
		if r < len(e.counters.RowTransfers) {
			out[r].Transfers = e.counters.RowTransfers[r]
			if capacity := float64(lanes) * e.counters.ActiveCycles; capacity > 0 {
				out[r].Occupancy = float64(out[r].Transfers) / capacity
			}
		}
	}
	return out
}

// portShares reports each shared memory port's grants and its share of the
// total port-contention stall cycles.
func (e *attribSource) portShares() []PortShare {
	out := make([]PortShare, len(e.counters.PortGrants))
	for p := range out {
		out[p] = PortShare{
			Port:       p,
			Grants:     e.counters.PortGrants[p],
			WaitCycles: e.counters.PortWait[p],
		}
		if e.counters.PortWaitCycles > 0 {
			out[p].WaitShare = e.counters.PortWait[p] / e.counters.PortWaitCycles
		}
	}
	return out
}

// WriteJSON emits the report as indented JSON with a trailing newline. The
// output is byte-stable for a given report.
func (a *Attribution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// Render prints the report as a compact human-readable table: the candidate
// IIs with the winner starred, the recurrence chain, a per-PE utilization
// decile heatmap ('.' = unconfigured, 0–9 = utilization decile), NoC row
// occupancy, and the port contention split.
func (a *Attribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bottleneck attribution (schema v%d): %s mode, %d iterations, %d tile(s)\n",
		a.SchemaVersion, a.Mode, a.Iterations, a.Tiles)
	fmt.Fprintf(&b, "  II %.3f, bound %s (floor %.3f)\n", a.II, a.Chosen, a.FloorII)
	b.WriteString("  candidate IIs:")
	for _, c := range a.Bounds {
		star := ""
		if c.Limiting {
			star = "*"
		}
		fmt.Fprintf(&b, "  %s %.3f%s", c.Name, c.II, star)
	}
	b.WriteString("\n")
	if len(a.Recurrence) > 0 {
		b.WriteString("  recurrence nodes (measured lat, II contribution = lat+1):\n")
		for _, r := range a.Recurrence {
			fmt.Fprintf(&b, "    i%-3d %-8s via %-4s lat %.2f\n", r.Node, r.Op, r.Reg, r.Lat)
		}
	}
	if len(a.PEs) > 0 {
		b.WriteString(a.renderPEHeatmap())
	}
	if len(a.NoCRows) > 0 {
		b.WriteString("  NoC row occupancy:")
		for _, r := range a.NoCRows {
			if r.Transfers > 0 {
				fmt.Fprintf(&b, "  row%d %.1f%% (%d xfers/%d lanes)", r.Row, 100*r.Occupancy, r.Transfers, r.Lanes)
			}
		}
		b.WriteString("\n")
	}
	if len(a.Ports) > 0 {
		b.WriteString("  mem port contention:")
		for _, p := range a.Ports {
			fmt.Fprintf(&b, "  p%d %d grants %.0f wait (%.0f%%)", p.Port, p.Grants, p.WaitCycles, 100*p.WaitShare)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// renderPEHeatmap draws the configured units as a decile grid plus the
// busiest units with exact figures. Grid bounds cover every configured
// coordinate (edge load/store columns included).
func (a *Attribution) renderPEHeatmap() string {
	minRow, maxRow := a.PEs[0].Row, a.PEs[0].Row
	minCol, maxCol := a.PEs[0].Col, a.PEs[0].Col
	cells := map[[2]int]PEUtil{}
	for _, u := range a.PEs {
		if u.Row < minRow {
			minRow = u.Row
		}
		if u.Row > maxRow {
			maxRow = u.Row
		}
		if u.Col < minCol {
			minCol = u.Col
		}
		if u.Col > maxCol {
			maxCol = u.Col
		}
		cells[[2]int{u.Row, u.Col}] = u
	}
	var b strings.Builder
	b.WriteString("  PE firing utilization (decile heatmap, '.' unconfigured):\n")
	for r := minRow; r <= maxRow; r++ {
		b.WriteString("    ")
		for c := minCol; c <= maxCol; c++ {
			u, ok := cells[[2]int{r, c}]
			if !ok {
				b.WriteByte('.')
				continue
			}
			d := int(u.Utilization * 10)
			if d > 9 {
				d = 9
			}
			if d < 0 {
				d = 0
			}
			b.WriteByte(byte('0' + d))
		}
		b.WriteString("\n")
	}
	top := append([]PEUtil(nil), a.PEs...)
	sort.Slice(top, func(i, j int) bool {
		if top[i].BusyCycles != top[j].BusyCycles {
			return top[i].BusyCycles > top[j].BusyCycles
		}
		if top[i].Row != top[j].Row {
			return top[i].Row < top[j].Row
		}
		return top[i].Col < top[j].Col
	})
	if len(top) > 4 {
		top = top[:4]
	}
	b.WriteString("  busiest units:")
	for _, u := range top {
		fmt.Fprintf(&b, "  (%d,%d) %.1f%% (%d firings)", u.Row, u.Col, 100*u.Utilization, u.Firings)
	}
	b.WriteString("\n")
	return b.String()
}
