package accel

import (
	"fmt"
	"math"

	"mesa/internal/alu"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

// Engine executes a mapped dataflow graph on the simulated accelerator.
// Execution is event-driven at operation granularity: a node fires once all
// of its inputs have arrived; arrivals include interconnect latency with NoC
// lane contention; loads and stores arbitrate for the shared memory ports
// and take the cache hierarchy's latency for their actual addresses.
//
// The engine is simultaneously the functional model (it computes real values
// against the shared memory, verified against the RV32 interpreter) and the
// performance model (per-PE latency counters, reported back to MESA).
type Engine struct {
	cfg  *Config
	g    *dfg.Graph
	pos  []noc.Coord
	mem  *mem.Memory
	hier *mem.Hierarchy

	// Loop control.
	loopBranch dfg.NodeID

	// Per-iteration scratch state, sized to the graph.
	value      []uint32
	completion []float64
	enabled    []bool
	taken      []bool

	// Resource state (reset per iteration; steady-state contention across
	// iterations is captured by the initiation-interval model in run.go).
	// Ports reset by cursor, not by clearing: portZeroFrom is the first port
	// untouched this iteration — grants sweep ports in index order (the
	// arbiter picks the lowest-index minimum and untouched ports are the
	// minimum, free at 0), so slots at or past the cursor hold only dead
	// values from earlier iterations.
	portFree     []float64
	portZeroFrom int
	laneFree     [][]float64

	// Strided-prefetch state per load node (§4.2): once a load's address
	// advances by a stable stride between iterations, the next iteration's
	// line is prefetched.
	pfLastAddr []uint32
	pfStride   []int64
	pfSeen     []uint8

	// Dense per-edge transfer-latency indexing: edges[i] carries the
	// precomputed index of each of node i's incoming edges into the
	// Counters.EdgeLatSum/EdgeLatN slices, and edgePairs decodes an index
	// back to its packed (from,to) pair. Duplicate (from,to) pairs share one
	// index so per-pair aggregation matches the old map semantics.
	edges     []nodeEdges
	edgePairs []uint64

	// Per-iteration cache-line coalescing scratch (vectorization): an
	// open-addressed line-tag table stamped with the iteration generation,
	// so it is never cleared or reallocated between iterations. Entries
	// whose lineGen differs from iterGen are dead; capacity is fixed at
	// construction (a power of two well above the per-iteration line count,
	// which is bounded by the graph's memory-node count).
	lineTag  []uint32
	lineVal  []float64
	lineGen  []uint32
	lineMask uint32
	iterGen  uint32

	// Per-iteration in-flight store buffer, reused across iterations (reset
	// to length zero, backing array kept).
	storeBuf []storeBufEntry

	// Time-multiplexing extension: when the mapper assigned multiple
	// instructions to one unit, their executions serialize on it. unitOf
	// maps each node to a dense grid-unit index (-1 for bus fallback);
	// unitBusy/unitGen are generation-stamped like the line-grant scratch.
	timeShared  bool
	unitOf      []int32
	unitBusy    []float64
	unitGen     []uint32
	maxUnitWork float64 // largest per-iteration work on any shared unit

	counters Counters
	activity Activity

	// Observability: nil rec disables tracing entirely (the hot paths pay a
	// single boolean check and never allocate). traced caches rec.Enabled()
	// so the per-operand paths don't repeat the nil check. traceClock is the
	// engine's global cycle offset; node firings within an iteration are
	// emitted relative to it and it advances by the iteration latency, so
	// the trace shows the serialized execution timeline.
	rec        *obs.Recorder
	traced     bool
	traceClock float64
	nodeLabel  []string
}

// nodeEdges holds one node's incoming-edge indices into the dense per-edge
// counter slices (-1 when the edge is absent).
type nodeEdges struct {
	src  [3]int32
	mem  int32
	pred int32
}

// Counters accumulates measured per-node and per-edge latencies — the
// hardware performance counters at PEs and load/store entries (§5.2) whose
// values MESA's frontend tallies to refine its DFG model.
type Counters struct {
	Iterations uint64

	// OpLatSum[i] accumulates node i's observed operation latency
	// (inputs-ready to output-produced).
	OpLatSum []float64
	OpLatN   []uint64

	// EdgeLatSum/EdgeLatN accumulate observed transfer latency per distinct
	// (from,to) edge, including NoC queueing. They are dense slices indexed
	// by the engine's precomputed edge index; EdgePairs[k] decodes index k to
	// its packed from<<32|to pair (see edgeKey).
	EdgeLatSum []float64
	EdgeLatN   []uint64
	EdgePairs  []uint64

	// Memory behaviour.
	Loads, Stores  uint64
	Forwarded      uint64 // loads satisfied by in-flight store data
	Prefetches     uint64 // next-iteration strided prefetches issued
	Coalesced      uint64 // accesses merged into an earlier same-line access
	Invalidations  uint64 // loads replayed due to late-resolving stores
	PortWaitCycles float64
	NoCTransfers   uint64 // transfers riding the row-lane NoC
	NoCWaitCycles  float64
	LocalTransfers uint64
	BusTransfers   uint64 // transfers over the secondary fallback bus

	// Attribution sources (Explain): ActiveCycles is the sum of measured
	// iteration latencies; RowTransfers splits NoCTransfers by grid row;
	// PortGrants/PortWait split port arbitration by physical port.
	ActiveCycles float64
	RowTransfers []uint64
	PortGrants   []uint64
	PortWait     []float64
}

func edgeKey(from, to dfg.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// Activity tracks per-component busy cycles for energy accounting.
type Activity struct {
	Cycles      float64 // total accelerator cycles while running
	IntALU      float64 // ALU-active cycles (integer ops)
	FPU         float64 // FP-active cycles
	NoC         float64 // NoC transfer-cycles
	LSU         float64 // load/store entry active cycles
	CtrlEvents  uint64  // control-network assertions
	MemAccesses uint64

	// PEsConfigured is the number of PEs holding instructions (summed over
	// tiles). Unconfigured slices are power-gated, so leakage scales with
	// this rather than the full array (0 means unknown: charge the full
	// array).
	PEsConfigured float64
}

// IterationResult reports one executed iteration.
type IterationResult struct {
	Cycles   float64
	Continue bool // loop branch taken: run another iteration
}

// NewEngine configures the accelerator with a mapped graph. pos gives each
// node's coordinate (edge columns for memory nodes); coordinates outside the
// grid and edges denote the fallback bus. loopBranch is the loop-closing
// branch node, or dfg.None for straight-line regions.
func NewEngine(cfg *Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pos) != g.Len() {
		return nil, fmt.Errorf("accel: placement has %d entries for %d nodes", len(pos), g.Len())
	}
	n := g.Len()
	e := &Engine{
		cfg: cfg, g: g, pos: pos, mem: m, hier: hier,
		loopBranch: loopBranch,
		value:      make([]uint32, n),
		completion: make([]float64, n),
		enabled:    make([]bool, n),
		taken:      make([]bool, n),
		portFree:   make([]float64, cfg.MemPorts),
		pfLastAddr: make([]uint32, n),
		pfStride:   make([]int64, n),
		pfSeen:     make([]uint8, n),
	}
	e.edges, e.edgePairs = buildEdgeIndex(g)
	e.counters = Counters{
		OpLatSum:     make([]float64, n),
		OpLatN:       make([]uint64, n),
		EdgeLatSum:   make([]float64, len(e.edgePairs)),
		EdgeLatN:     make([]uint64, len(e.edgePairs)),
		EdgePairs:    e.edgePairs,
		RowTransfers: make([]uint64, cfg.Rows),
		PortGrants:   make([]uint64, cfg.MemPorts),
		PortWait:     make([]float64, cfg.MemPorts),
	}
	e.laneFree = make([][]float64, cfg.Rows)
	for r := range e.laneFree {
		e.laneFree[r] = make([]float64, max(1, cfg.NoCLanesPerRow))
	}
	for _, p := range pos {
		if cfg.InBounds(p) {
			e.activity.PEsConfigured++
		}
	}
	if cfg.EnableVectorization {
		// Size the line-grant scratch at 4× the per-iteration line bound (one
		// table entry per non-coalesced memory access) so probe chains stay
		// short and insertion never fills the table.
		memNodes := 0
		for i := range g.Nodes {
			if g.Nodes[i].Inst.IsLoad() || g.Nodes[i].Inst.IsStore() {
				memNodes++
			}
		}
		capacity := nextPow2(max(16, 4*memNodes))
		e.lineTag = make([]uint32, capacity)
		e.lineVal = make([]float64, capacity)
		e.lineGen = make([]uint32, capacity)
		e.lineMask = uint32(capacity - 1)
	}
	// Detect time-shared units (the mapping extension): any coordinate with
	// more than one instruction serializes its occupants.
	work := make(map[noc.Coord]float64)
	count := make(map[noc.Coord]int)
	for i, p := range pos {
		if !cfg.InBounds(p) && !cfg.IsEdge(p) {
			continue
		}
		count[p]++
		work[p] += cfg.EstimateLat(g.Nodes[i].Inst)
		if count[p] > 1 {
			e.timeShared = true
			if work[p] > e.maxUnitWork {
				e.maxUnitWork = work[p]
			}
		}
	}
	if e.timeShared {
		// Dense busy-time array over every valid unit slot (PE grid plus the
		// edge load/store columns), generation-stamped so it needs no
		// per-iteration clearing. Bus-fallback nodes map to -1 and never
		// serialize (matching the previous map semantics, which only ever
		// held in-grid coordinates).
		stride := cfg.Cols + 2*cfg.EdgeDepth
		e.unitOf = make([]int32, n)
		for i, p := range pos {
			if cfg.InBounds(p) || cfg.IsEdge(p) {
				e.unitOf[i] = int32(p.Row*stride + p.Col + cfg.EdgeDepth)
			} else {
				e.unitOf[i] = -1
			}
		}
		units := cfg.Rows * stride
		e.unitBusy = make([]float64, units)
		e.unitGen = make([]uint32, units)
	}
	return e, nil
}

// buildEdgeIndex assigns every distinct (from,to) dependency pair a dense
// index into the Counters edge slices. Duplicate pairs (a node consuming the
// same producer through several operand slots) share one index, so per-pair
// aggregation is identical to the previous map-keyed accumulation. It is a
// free function because the scalar Engine and the batched engine both build
// the same index from the same graph.
func buildEdgeIndex(g *dfg.Graph) ([]nodeEdges, []uint64) {
	edges := make([]nodeEdges, g.Len())
	var pairs []uint64
	idxOf := make(map[uint64]int32, g.Len())
	idx := func(from, to dfg.NodeID) int32 {
		key := edgeKey(from, to)
		if i, ok := idxOf[key]; ok {
			return i
		}
		i := int32(len(pairs))
		idxOf[key] = i
		pairs = append(pairs, key)
		return i
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		id := dfg.NodeID(i)
		ne := nodeEdges{src: [3]int32{-1, -1, -1}, mem: -1, pred: -1}
		for k := 0; k < 3; k++ {
			if n.Src[k] != dfg.None {
				ne.src[k] = idx(n.Src[k], id)
			}
		}
		if n.MemDep != dfg.None {
			ne.mem = idx(n.MemDep, id)
		}
		if n.PredDep != dfg.None {
			ne.pred = idx(n.PredDep, id)
		}
		edges[i] = ne
	}
	return edges, pairs
}

// nextPow2 returns the smallest power of two >= n (n must be positive).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Trace thread-ID layout within the accelerator process: tid 0 is the
// iteration track, node i fires on tid i+1, and memory ports start at
// portTIDBase (no graph approaches 4096 nodes).
const (
	iterTID     = 0
	portTIDBase = 4096
)

func nodeTID(id dfg.NodeID) int32 { return int32(id) + 1 }
func portTID(p int) int32         { return int32(portTIDBase + p) }

// AttachRecorder routes the engine's trace events to r, with this engine's
// execution starting at global cycle base. A nil recorder disables tracing;
// timing and functional behavior are identical either way.
func (e *Engine) AttachRecorder(r *obs.Recorder, base float64) {
	e.rec = r
	e.traced = r.Enabled()
	e.traceClock = base
	if !e.traced {
		return
	}
	if e.nodeLabel == nil {
		e.nodeLabel = make([]string, e.g.Len())
		for i := range e.g.Nodes {
			e.nodeLabel[i] = fmt.Sprintf("i%d %s", i, e.g.Nodes[i].Inst.Op)
		}
	}
	r.NameThread(obs.PIDAccel, iterTID, "iterations")
	for i := range e.g.Nodes {
		where := "bus"
		if p := e.pos[i]; e.cfg.InBounds(p) || e.cfg.IsEdge(p) {
			where = fmt.Sprintf("(%d,%d)", p.Row, p.Col)
		}
		r.NameThread(obs.PIDAccel, nodeTID(dfg.NodeID(i)), e.nodeLabel[i]+" @"+where)
	}
	for p := range e.portFree {
		r.NameThread(obs.PIDAccel, portTID(p), fmt.Sprintf("mem port %d", p))
	}
}

// TraceClock returns the engine's current global trace cycle (the base plus
// all iteration latencies executed so far).
func (e *Engine) TraceClock() float64 { return e.traceClock }

// onBus reports whether a node fell back to the secondary bus.
func (e *Engine) onBus(id dfg.NodeID) bool {
	p := e.pos[id]
	return !e.cfg.InBounds(p) && !e.cfg.IsEdge(p)
}

// transfer returns the arrival time at `to` of data produced by `from` at
// time ready, charging interconnect latency and NoC lane contention, and
// records the measured edge latency under the precomputed edge index.
func (e *Engine) transfer(from, to dfg.NodeID, edge int32, ready float64) float64 {
	var lat float64
	switch {
	case e.onBus(from) || e.onBus(to):
		// Fallback-bus traffic does not occupy NoC lanes: it must not count
		// against the row-lane bandwidth bound of the initiation-interval
		// model.
		lat = float64(e.cfg.BusLat)
		e.counters.BusTransfers++
		if e.traced {
			e.rec.Complete(obs.PIDAccel, nodeTID(from), "bus", "bus transfer", e.traceClock+ready, lat)
		}
	default:
		a, b := e.pos[from], e.pos[to]
		base := float64(e.cfg.Interconnect.Latency(a, b))
		hr, isHalfRing := e.cfg.Interconnect.(noc.HalfRing)
		if isHalfRing && hr.UsesNoC(a, b) {
			// Arbitrate for a NoC lane in the producer's row.
			row := a.Row
			if row < 0 || row >= len(e.laneFree) {
				row = 0
			}
			lane := 0
			for l := 1; l < len(e.laneFree[row]); l++ {
				if e.laneFree[row][l] < e.laneFree[row][lane] {
					lane = l
				}
			}
			start := math.Max(ready, e.laneFree[row][lane])
			e.counters.NoCWaitCycles += start - ready
			e.laneFree[row][lane] = start + 1
			lat = (start - ready) + base
			e.counters.NoCTransfers++
			e.counters.RowTransfers[row]++
			e.activity.NoC += base
			if e.traced && start > ready {
				e.rec.Complete(obs.PIDAccel, nodeTID(from), "noc", "lane wait", e.traceClock+ready, start-ready)
			}
		} else {
			// Local neighbor links are part of PE power: no NoC activity.
			lat = base
			e.counters.LocalTransfers++
		}
	}
	e.counters.EdgeLatSum[edge] += lat
	e.counters.EdgeLatN[edge]++
	return ready + lat
}

// port grabs the earliest available memory port at or after ready and
// returns the access start time. With vectorization enabled, an access to a
// cache line already touched this iteration coalesces onto the earlier
// access's port grant (wide-access merging of same-base loads, §4.2).
func (e *Engine) port(ready float64, addr uint32) float64 {
	const lineShift = 6 // 64-byte lines
	var lineSlot uint32
	vectorized := e.cfg.EnableVectorization
	if vectorized {
		// Open-addressed probe for this iteration's grant on the line. Slots
		// stamped with an older generation are dead, so the table is never
		// cleared between iterations; within a generation nothing is deleted,
		// so the probe chain for a live key is contiguous and the first stale
		// slot both terminates the search and receives the insertion.
		tag := addr >> lineShift
		slot := (tag * 2654435761) & e.lineMask
		for e.lineGen[slot] == e.iterGen && e.lineTag[slot] != tag {
			slot = (slot + 1) & e.lineMask
		}
		if e.lineGen[slot] == e.iterGen {
			if grant := e.lineVal[slot]; grant >= ready-1 {
				e.counters.Coalesced++
				return math.Max(ready, grant)
			}
		}
		lineSlot = slot
	}
	var best int
	if z := e.portZeroFrom; z < len(e.portFree) {
		// Ports at or past the cursor are untouched this iteration: their
		// free time is 0, the global minimum (grants only raise free times),
		// and the scan below picks the lowest-index minimum — which is
		// exactly z. Granting through the cursor keeps selection, timing,
		// and counters identical while skipping the O(ports) scan and the
		// per-iteration O(ports) clear.
		best = z
		e.portZeroFrom = z + 1
		e.portFree[best] = 0
	} else {
		best = 0
		for p := 1; p < len(e.portFree); p++ {
			if e.portFree[p] < e.portFree[best] {
				best = p
			}
		}
	}
	start := math.Max(ready, e.portFree[best])
	e.counters.PortWaitCycles += start - ready
	e.counters.PortGrants[best]++
	e.counters.PortWait[best] += start - ready
	e.portFree[best] = start + 1 // ports accept one access per cycle
	if vectorized {
		e.lineTag[lineSlot] = addr >> lineShift
		e.lineVal[lineSlot] = start
		e.lineGen[lineSlot] = e.iterGen
	}
	if e.traced {
		e.rec.Complete(obs.PIDAccel, portTID(best), "mem", "port grant", e.traceClock+start, 1)
	}
	return start
}

// prefetchNext records a load's address and, once its stride across
// iterations is stable, pulls the next iteration's line into the caches.
func (e *Engine) prefetchNext(id dfg.NodeID, addr uint32) {
	if !e.cfg.EnablePrefetch {
		return
	}
	if e.pfSeen[id] > 0 {
		stride := int64(addr) - int64(e.pfLastAddr[id])
		if e.pfSeen[id] > 1 && stride == e.pfStride[id] && stride != 0 {
			e.hier.Prefetch(uint32(int64(addr) + stride))
			e.counters.Prefetches++
		}
		e.pfStride[id] = stride
	}
	e.pfLastAddr[id] = addr
	if e.pfSeen[id] < 2 {
		e.pfSeen[id]++
	}
}

// storeBufEntry is an in-flight store visible to later loads of the same
// iteration (program-order forwarding, Figure 5).
type storeBufEntry struct {
	node      dfg.NodeID
	addr      uint32
	width     uint32
	value     uint32
	dataReady float64 // when the store's data is available to forward
	addrReady float64 // when the store's address resolves
	op        isa.Op
	enabled   bool
}

// readReg reads an architectural live-in register (x0 and the none sentinel
// read as zero).
func readReg(regs *[isa.NumRegs]uint32, r isa.Reg) uint32 {
	if r == isa.X0 || r == isa.RegNone {
		return 0
	}
	return regs[r]
}

// RunIteration executes one loop iteration. regs carries the architectural
// live-in values and receives the live-out values. The returned result gives
// the iteration latency and whether the loop branch requests another
// iteration.
func (e *Engine) RunIteration(regs *[isa.NumRegs]uint32) (IterationResult, error) {
	g := e.g
	e.portZeroFrom = 0 // all ports free; stale slots die on first grant
	for r := range e.laneFree {
		for l := range e.laneFree[r] {
			e.laneFree[r][l] = 0
		}
	}

	// Advance the scratch generation: every line-grant and unit-busy slot
	// stamped with an older generation becomes dead without any clearing. On
	// the (astronomically rare) uint32 wraparound, clear the stamps so stale
	// entries cannot alias the new generation.
	e.iterGen++
	if e.iterGen == 0 {
		clear(e.lineGen)
		clear(e.unitGen)
		e.iterGen = 1
	}

	storeBuf := e.storeBuf[:0]
	total := 0.0

	for i := range g.Nodes {
		n := &g.Nodes[i]
		id := dfg.NodeID(i)
		ne := &e.edges[i]

		// Predication: enabled iff every controlling branch is enabled and
		// not taken.
		en := true
		ctrlArrival := 0.0
		if n.CtrlDep != dfg.None {
			b := n.CtrlDep
			en = e.enabled[b] && !e.taken[b]
			if a := e.completion[b] + ctrlLat; a > ctrlArrival {
				ctrlArrival = a
			}
			e.activity.CtrlEvents++
		}
		e.enabled[i] = en

		// Operand gathering.
		var opVal [3]uint32
		arrival := ctrlArrival
		for k := 0; k < 3; k++ {
			switch {
			case n.Src[k] != dfg.None:
				src := n.Src[k]
				opVal[k] = e.value[src]
				if a := e.transfer(src, id, ne.src[k], e.completion[src]); a > arrival {
					arrival = a
				}
			case n.LiveIn[k] != isa.RegNone:
				opVal[k] = readReg(regs, n.LiveIn[k])
				if liveInLat > arrival {
					arrival = liveInLat
				}
			}
		}
		if n.MemDep != dfg.None {
			if a := e.transfer(n.MemDep, id, ne.mem, e.completion[n.MemDep]); a > arrival {
				arrival = a
			}
		}

		if !en {
			// Disabled PE: forward the old destination value (the hidden
			// predication dependency) after one forwarding cycle.
			var old uint32
			pa := ctrlArrival
			if n.PredDep != dfg.None {
				old = e.value[n.PredDep]
				if a := e.transfer(n.PredDep, id, ne.pred, e.completion[n.PredDep]); a > pa {
					pa = a
				}
			} else if n.PredLiveIn != isa.RegNone {
				old = readReg(regs, n.PredLiveIn)
				if liveInLat > pa {
					pa = liveInLat
				}
			}
			e.value[i] = old
			e.completion[i] = pa + 1
			e.taken[i] = false
			if e.completion[i] > total {
				total = e.completion[i]
			}
			continue
		}

		start := arrival
		// Time-shared units serialize their occupants.
		if e.timeShared {
			if u := e.unitOf[i]; u >= 0 && e.unitGen[u] == e.iterGen && e.unitBusy[u] > start {
				start = e.unitBusy[u]
			}
		}
		var val uint32
		var done float64

		switch {
		case n.Fwd:
			// Statically forwarded load: a pass-through move PE.
			val = opVal[1]
			done = start + 1
			e.activity.IntALU++

		case n.Inst.IsLoad():
			addr := alu.EffAddr(opVal[0], n.Inst.Imm)
			width := mem.AccessBytes(n.Inst.Op)
			e.counters.Loads++
			e.activity.LSU++
			e.activity.MemAccesses++
			// Dynamic store-to-load forwarding and disambiguation against
			// in-flight stores of this iteration.
			fwdDone := math.Inf(-1)
			fwd := false
			conflict := false
			var conflictDone float64
			for s := len(storeBuf) - 1; s >= 0; s-- {
				st := &storeBuf[s]
				if !st.enabled {
					continue
				}
				if !overlap(st.addr, st.width, addr, width) {
					continue
				}
				if st.addr == addr && st.width == width && width == 4 {
					// Exact match: broadcast forwarding path.
					val = st.value
					fwdDone = math.Max(start, st.dataReady) + 1
					fwd = true
					if st.addrReady > start {
						// The store's address resolved after this load
						// issued: the load speculated and is invalidated.
						e.counters.Invalidations++
						fwdDone = math.Max(fwdDone, st.addrReady+invalidateLat)
					}
				} else {
					// Partial overlap: the load must replay from memory
					// after the store commits.
					conflict = true
					conflictDone = math.Max(st.dataReady, st.addrReady)
				}
				break
			}
			if fwd {
				e.counters.Forwarded++
				done = fwdDone
			} else {
				issue := start
				if conflict {
					e.counters.Invalidations++
					issue = math.Max(issue, conflictDone+invalidateLat)
				}
				at := e.port(issue, addr)
				lat := float64(e.hier.AccessLatency(addr))
				e.prefetchNext(id, addr)
				// Functional read sees program-order memory: apply any
				// overlapping earlier stores of this iteration first.
				v, err := loadThroughBuffer(e.mem, n.Inst.Op, addr, storeBuf)
				if err != nil {
					return IterationResult{}, err
				}
				val = v
				done = at + lat
			}

		case n.Inst.IsStore():
			addr := alu.EffAddr(opVal[0], n.Inst.Imm)
			width := mem.AccessBytes(n.Inst.Op)
			e.counters.Stores++
			e.activity.LSU++
			e.activity.MemAccesses++
			at := e.port(start, addr)
			done = at + 1
			storeBuf = append(storeBuf, storeBufEntry{
				node: id, addr: addr, width: width, value: opVal[1],
				dataReady: done, addrReady: start, op: n.Inst.Op, enabled: true,
			})
			val = opVal[1]

		case n.Inst.IsBranch():
			tk, err := alu.EvalBranch(n.Inst.Op, opVal[0], opVal[1])
			if err != nil {
				return IterationResult{}, err
			}
			e.taken[i] = tk
			if tk {
				val = 1
			}
			done = start + e.cfg.OpLat[isa.ClassBranch]
			e.activity.IntALU += e.cfg.OpLat[isa.ClassBranch]

		case n.Inst.Op == isa.OpJAL && n.Inst.Imm < 0:
			// Loop-closing jump: unconditionally continue.
			e.taken[i] = true
			done = start + 1

		default:
			a, b := opVal[0], opVal[1]
			if n.Inst.Op.HasImm() || n.Inst.Op == isa.OpLUI {
				b = uint32(n.Inst.Imm)
			}
			v, err := alu.Eval(n.Inst.Op, a, b, opVal[2])
			if err != nil {
				return IterationResult{}, fmt.Errorf("accel: node i%d: %w", i, err)
			}
			val = v
			lat := e.cfg.OpLat[n.Inst.Class()]
			done = start + lat
			if n.Inst.Op.IsFP() {
				e.activity.FPU += lat
			} else {
				e.activity.IntALU += lat
			}
		}

		e.value[i] = val
		e.completion[i] = done
		if e.timeShared {
			if u := e.unitOf[i]; u >= 0 {
				if e.unitGen[u] != e.iterGen {
					e.unitGen[u] = e.iterGen
					e.unitBusy[u] = done
				} else if done > e.unitBusy[u] {
					e.unitBusy[u] = done
				}
			}
		}
		e.counters.OpLatSum[i] += done - start
		e.counters.OpLatN[i]++
		if e.traced {
			e.rec.Complete(obs.PIDAccel, nodeTID(id), "accel", e.nodeLabel[i], e.traceClock+start, done-start)
		}
		if done > total {
			total = done
		}
	}

	// Commit enabled stores to memory in program order, then park the buffer's
	// grown backing array on the engine for the next iteration.
	for i := range storeBuf {
		st := &storeBuf[i]
		if !st.enabled || !e.enabled[st.node] {
			continue
		}
		if err := e.mem.Store(st.op, st.addr, st.value); err != nil {
			return IterationResult{}, err
		}
	}
	e.storeBuf = storeBuf

	// Update architectural live-outs.
	for r, id := range g.LiveOut {
		if r != isa.X0 {
			regs[r] = e.value[id]
		}
	}

	cont := false
	if e.loopBranch != dfg.None && e.enabled[e.loopBranch] {
		cont = e.taken[e.loopBranch]
	}

	e.counters.Iterations++
	e.counters.ActiveCycles += total
	if e.traced {
		e.rec.Complete(obs.PIDAccel, iterTID, "accel", "iteration", e.traceClock, total)
		e.traceClock += total
	}
	return IterationResult{Cycles: total, Continue: cont}, nil
}

// AddElapsed charges wall-clock accelerator cycles (leakage time). RunLoop
// calls this with the mode-adjusted total so that pipelined and tiled
// executions pay leakage for elapsed time, not for the sum of per-iteration
// latencies.
func (e *Engine) AddElapsed(cycles float64) { e.activity.Cycles += cycles }

// loadThroughBuffer reads memory as seen at this point of the iteration:
// earlier enabled stores of the same iteration shadow memory contents. It is
// a free function shared by the scalar and batched engines.
func loadThroughBuffer(m *mem.Memory, op isa.Op, addr uint32, buf []storeBufEntry) (uint32, error) {
	width := mem.AccessBytes(op)
	covered := false
	for s := len(buf) - 1; s >= 0 && !covered; s-- {
		if buf[s].enabled && overlap(buf[s].addr, buf[s].width, addr, width) {
			covered = true
		}
	}
	if !covered {
		return m.Load(op, addr)
	}
	// Overlay: apply buffered stores byte-wise onto a copy of the loaded
	// bytes. Rare path (aliasing within one iteration); accesses are at most
	// 4 bytes wide, so the scratch lives on the stack.
	var scratch [4]byte
	bytes := scratch[:width]
	for k := range bytes {
		bytes[k] = m.LoadByte(addr + uint32(k))
	}
	for _, st := range buf {
		if !st.enabled {
			continue
		}
		for k := uint32(0); k < st.width; k++ {
			a := st.addr + k
			if a >= addr && a < addr+width {
				bytes[a-addr] = byte(st.value >> (8 * k))
			}
		}
	}
	var word uint32
	for k := int(width) - 1; k >= 0; k-- {
		word = word<<8 | uint32(bytes[k])
	}
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(word))), nil
	case isa.OpLH:
		return uint32(int32(int16(word))), nil
	}
	return word, nil
}

func overlap(aAddr, aW, bAddr, bW uint32) bool {
	return aAddr < bAddr+bW && bAddr < aAddr+aW
}

// Counters returns the accumulated performance counters.
func (e *Engine) Counters() *Counters { return &e.counters }

// Activity returns the accumulated component activity for energy modeling.
func (e *Engine) Activity() Activity { return e.activity }

// ResetCounters clears measured statistics (used between optimization
// rounds so each round reflects the current configuration).
func (e *Engine) ResetCounters() {
	n := e.g.Len()
	e.counters = Counters{
		OpLatSum:     make([]float64, n),
		OpLatN:       make([]uint64, n),
		EdgeLatSum:   make([]float64, len(e.edgePairs)),
		EdgeLatN:     make([]uint64, len(e.edgePairs)),
		EdgePairs:    e.edgePairs,
		RowTransfers: make([]uint64, e.cfg.Rows),
		PortGrants:   make([]uint64, e.cfg.MemPorts),
		PortWait:     make([]float64, e.cfg.MemPorts),
	}
}

const (
	ctrlLat       = 1.0
	liveInLat     = 1.0
	invalidateLat = 2.0
)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
