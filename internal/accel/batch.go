package accel

import (
	"fmt"
	"math"

	"mesa/internal/alu"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// BatchLane describes one independent simulation to run in a batch: its own
// backend config, placement, memory, and cache hierarchy over a graph that
// is structurally identical to every other lane's graph (same instructions
// and dependencies; node weights and placements may differ).
type BatchLane struct {
	Cfg        *Config
	G          *dfg.Graph
	Pos        []noc.Coord
	LoopBranch dfg.NodeID
	Mem        *mem.Memory
	Hier       *mem.Hierarchy
}

// BatchEngine steps N independent simulations of one kernel in lockstep.
// Per-lane node state (values, completion times, predication flags,
// prefetch trackers, per-node and per-edge latency counters) lives in
// contiguous structure-of-arrays blocks indexed [lane*stride + slot], so the
// per-node inner loop iterates lanes innermost over dense memory instead of
// pointer-chasing N separate Engines. Lane-local resources whose size
// depends on the lane's config (memory ports, NoC lanes, the line-coalesce
// table, time-shared unit scratch, the store buffer) stay per-lane.
//
// The batched step is a transcription of Engine.RunIteration over offset
// state: every lane's results — counters, attribution, activity, registers,
// memory — are byte-identical to running that lane alone on a scalar
// Engine. The differential tests in batch_test.go and internal/core pin
// this equivalence; any behavioral change to RunIteration must be mirrored
// here.
//
// A BatchEngine is not safe for concurrent use; BatchRunner provides the
// concurrency layer.
type BatchEngine struct {
	capacity int

	// Shared graph shape, established by the first configured lane. All
	// lanes share the node list, loop branch, and dense edge index: the
	// edge index is a pure function of the graph's dependency structure,
	// so structurally identical graphs produce identical indices.
	shaped        bool
	n             int // nodes per lane
	nE            int // distinct (from,to) edges per lane
	ref           *dfg.Graph
	refLoopBranch dfg.NodeID
	edges         []nodeEdges
	edgePairs     []uint64

	// Structure-of-arrays lane state: node blocks are [lane*n + node],
	// edge blocks are [lane*nE + edge]. Each lane's counter slices are
	// subslices of these blocks, so Counters aggregation writes straight
	// into the dense arrays.
	value      []uint32
	completion []float64
	enabled    []bool
	taken      []bool
	pfLastAddr []uint32
	pfStride   []int64
	pfSeen     []uint8
	opLatSum   []float64
	opLatN     []uint64
	edgeLatSum []float64
	edgeLatN   []uint64

	// Shared iteration generation for every lane's stamped scratch (line
	// grants, unit busy times). Scalar engines use per-engine generations,
	// but all checks are equality-only and each Step advances the
	// generation exactly once, so sharing one is behavior-identical; the
	// wraparound clear covers every lane.
	iterGen uint32

	lanes    []batchLane
	active   []int // lanes still running the current batch of loops
	runOrder []int // lanes of the current batch, in StartLoops order
}

// batchLane holds one lane's config-sized resources and run state.
type batchLane struct {
	configured bool

	cfg  *Config
	g    *dfg.Graph
	pos  []noc.Coord
	mem  *mem.Memory
	hier *mem.Hierarchy

	// Per-iteration resource state (reset each step, like the scalar
	// engine resets per iteration).
	// Ports reset by cursor, not by clearing (see Engine.portZeroFrom):
	// slots at or past portZeroFrom hold only dead values from earlier
	// iterations.
	portFree     []float64
	portZeroFrom int
	laneFree     [][]float64

	// Line-coalesce scratch (vectorization), generation-stamped against
	// the engine-wide iterGen.
	lineTag  []uint32
	lineVal  []float64
	lineGen  []uint32
	lineMask uint32

	storeBuf []storeBufEntry

	// Time-multiplexing extension state (see Engine).
	timeShared  bool
	unitOf      []int32
	unitBusy    []float64
	unitGen     []uint32
	maxUnitWork float64

	// c's per-node and per-edge slices alias the BatchEngine's SoA blocks;
	// scalar counter fields live here directly.
	c        Counters
	activity Activity

	// Armed-run state for the current batch of loops.
	armed     bool
	regs      *[isa.NumRegs]uint32
	opts      LoopOptions
	res       LoopResult
	err       error
	iterTotal float64
}

// LaneRun arms one lane for a batched loop execution.
type LaneRun struct {
	Lane int
	Regs *[isa.NumRegs]uint32
	Opts LoopOptions
}

// LaneResult is one lane's outcome from a batched loop execution: exactly
// the (result, error) pair the scalar Engine.RunLoop would have returned.
type LaneResult struct {
	Res *LoopResult
	Err error
}

// NewBatchEngine configures a batch with one slot per lane and runs them
// with RunLoops. Lane 0 establishes the shared graph shape; every further
// lane must be structurally identical or configuration fails.
func NewBatchEngine(lanes []BatchLane) (*BatchEngine, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("accel: batch needs at least one lane")
	}
	b := newBatchEngine(len(lanes))
	for i, l := range lanes {
		if err := b.configureSlot(i, l); err != nil {
			return nil, fmt.Errorf("accel: batch lane %d: %w", i, err)
		}
	}
	return b, nil
}

// newBatchEngine allocates an engine with capacity lane slots. Slots are
// configured individually (configureSlot) and may be reconfigured between
// runs; the SoA blocks are allocated once, on the first configuration.
func newBatchEngine(capacity int) *BatchEngine {
	return &BatchEngine{
		capacity: capacity,
		lanes:    make([]batchLane, capacity),
		active:   make([]int, 0, capacity),
		runOrder: make([]int, 0, capacity),
	}
}

// Capacity returns the number of lane slots.
func (b *BatchEngine) Capacity() int { return b.capacity }

// batchShapeErr explains a structural mismatch between a lane's graph and
// the batch shape.
func batchShapeCompatible(ref, g *dfg.Graph, refBranch, branch dfg.NodeID) error {
	if g.Len() != ref.Len() {
		return fmt.Errorf("graph has %d nodes, batch shape has %d", g.Len(), ref.Len())
	}
	if branch != refBranch {
		return fmt.Errorf("loop branch %d differs from batch shape's %d", branch, refBranch)
	}
	for i := range ref.Nodes {
		a, c := &ref.Nodes[i], &g.Nodes[i]
		// OpLat is deliberately excluded: it is a performance-model weight
		// (refined per lane by feedback) that execution never reads.
		if a.Inst != c.Inst || a.Src != c.Src || a.LiveIn != c.LiveIn ||
			a.MemDep != c.MemDep || a.PredDep != c.PredDep ||
			a.PredLiveIn != c.PredLiveIn || a.CtrlDep != c.CtrlDep || a.Fwd != c.Fwd {
			return fmt.Errorf("node i%d differs from batch shape", i)
		}
	}
	if len(g.LiveOut) != len(ref.LiveOut) {
		return fmt.Errorf("live-out set differs from batch shape")
	}
	for r, id := range ref.LiveOut {
		if got, ok := g.LiveOut[r]; !ok || got != id {
			return fmt.Errorf("live-out %v differs from batch shape", r)
		}
	}
	return nil
}

// configureSlot (re)configures one lane slot, mirroring NewEngine's
// validation and state construction. The slot's SoA blocks and counters are
// zeroed; resource arrays are rebuilt for the lane's config.
func (b *BatchEngine) configureSlot(slot int, l BatchLane) error {
	if slot < 0 || slot >= b.capacity {
		return fmt.Errorf("accel: batch slot %d out of range [0,%d)", slot, b.capacity)
	}
	if err := l.Cfg.Validate(); err != nil {
		return err
	}
	if len(l.Pos) != l.G.Len() {
		return fmt.Errorf("accel: placement has %d entries for %d nodes", len(l.Pos), l.G.Len())
	}
	if !b.shaped {
		n := l.G.Len()
		b.n = n
		b.ref = l.G
		b.refLoopBranch = l.LoopBranch
		b.edges, b.edgePairs = buildEdgeIndex(l.G)
		b.nE = len(b.edgePairs)
		c := b.capacity
		b.value = make([]uint32, c*n)
		b.completion = make([]float64, c*n)
		b.enabled = make([]bool, c*n)
		b.taken = make([]bool, c*n)
		b.pfLastAddr = make([]uint32, c*n)
		b.pfStride = make([]int64, c*n)
		b.pfSeen = make([]uint8, c*n)
		b.opLatSum = make([]float64, c*n)
		b.opLatN = make([]uint64, c*n)
		b.edgeLatSum = make([]float64, c*b.nE)
		b.edgeLatN = make([]uint64, c*b.nE)
		b.shaped = true
	} else if err := batchShapeCompatible(b.ref, l.G, b.refLoopBranch, l.LoopBranch); err != nil {
		return fmt.Errorf("accel: batch lane incompatible: %w", err)
	}

	L := &b.lanes[slot]
	if L.armed {
		return fmt.Errorf("accel: batch slot %d reconfigured while armed", slot)
	}
	cfg, g, n := l.Cfg, l.G, b.n
	base, eb := slot*n, slot*b.nE

	// Fresh state for the slot, matching a newly constructed Engine.
	clear(b.value[base : base+n])
	clear(b.completion[base : base+n])
	clear(b.enabled[base : base+n])
	clear(b.taken[base : base+n])
	clear(b.pfLastAddr[base : base+n])
	clear(b.pfStride[base : base+n])
	clear(b.pfSeen[base : base+n])
	clear(b.opLatSum[base : base+n])
	clear(b.opLatN[base : base+n])
	clear(b.edgeLatSum[eb : eb+b.nE])
	clear(b.edgeLatN[eb : eb+b.nE])

	storeBuf := L.storeBuf[:0] // keep the grown backing array across reconfigures
	*L = batchLane{
		configured: true,
		cfg:        cfg,
		g:          g,
		pos:        l.Pos,
		mem:        l.Mem,
		hier:       l.Hier,
		portFree:   make([]float64, cfg.MemPorts),
		storeBuf:   storeBuf,
	}
	L.laneFree = make([][]float64, cfg.Rows)
	for r := range L.laneFree {
		L.laneFree[r] = make([]float64, max(1, cfg.NoCLanesPerRow))
	}
	L.c = Counters{
		OpLatSum:     b.opLatSum[base : base+n : base+n],
		OpLatN:       b.opLatN[base : base+n : base+n],
		EdgeLatSum:   b.edgeLatSum[eb : eb+b.nE : eb+b.nE],
		EdgeLatN:     b.edgeLatN[eb : eb+b.nE : eb+b.nE],
		EdgePairs:    b.edgePairs,
		RowTransfers: make([]uint64, cfg.Rows),
		PortGrants:   make([]uint64, cfg.MemPorts),
		PortWait:     make([]float64, cfg.MemPorts),
	}
	for _, p := range l.Pos {
		if cfg.InBounds(p) {
			L.activity.PEsConfigured++
		}
	}
	if cfg.EnableVectorization {
		memNodes := 0
		for i := range g.Nodes {
			if g.Nodes[i].Inst.IsLoad() || g.Nodes[i].Inst.IsStore() {
				memNodes++
			}
		}
		capacity := nextPow2(max(16, 4*memNodes))
		L.lineTag = make([]uint32, capacity)
		L.lineVal = make([]float64, capacity)
		L.lineGen = make([]uint32, capacity)
		L.lineMask = uint32(capacity - 1)
	}
	// Time-shared unit detection, identical to NewEngine.
	work := make(map[noc.Coord]float64)
	count := make(map[noc.Coord]int)
	for i, p := range l.Pos {
		if !cfg.InBounds(p) && !cfg.IsEdge(p) {
			continue
		}
		count[p]++
		work[p] += cfg.EstimateLat(g.Nodes[i].Inst)
		if count[p] > 1 {
			L.timeShared = true
			if work[p] > L.maxUnitWork {
				L.maxUnitWork = work[p]
			}
		}
	}
	if L.timeShared {
		stride := cfg.Cols + 2*cfg.EdgeDepth
		L.unitOf = make([]int32, n)
		for i, p := range l.Pos {
			if cfg.InBounds(p) || cfg.IsEdge(p) {
				L.unitOf[i] = int32(p.Row*stride + p.Col + cfg.EdgeDepth)
			} else {
				L.unitOf[i] = -1
			}
		}
		units := cfg.Rows * stride
		L.unitBusy = make([]float64, units)
		L.unitGen = make([]uint32, units)
	}
	return nil
}

// StartLoops arms the given lanes for a lockstep loop execution. Counters
// and activity accumulate across successive runs on the same slot (matching
// the scalar engine across repeated RunLoop calls); only the per-run
// LoopResult state is reset. Drive the batch with Step until it returns 0,
// then collect per-lane outcomes with Results.
func (b *BatchEngine) StartLoops(runs []LaneRun) error {
	if len(b.runOrder) != 0 {
		return fmt.Errorf("accel: batch already has an uncollected run")
	}
	if len(runs) == 0 {
		return fmt.Errorf("accel: batch run needs at least one lane")
	}
	for _, r := range runs {
		if r.Lane < 0 || r.Lane >= b.capacity {
			return fmt.Errorf("accel: batch lane %d out of range [0,%d)", r.Lane, b.capacity)
		}
		if !b.lanes[r.Lane].configured {
			return fmt.Errorf("accel: batch lane %d not configured", r.Lane)
		}
		if r.Regs == nil {
			return fmt.Errorf("accel: batch lane %d has nil registers", r.Lane)
		}
	}
	for idx, r := range runs {
		L := &b.lanes[r.Lane]
		if L.armed {
			// Duplicate lane in this run list: roll back so a failed
			// StartLoops leaves the batch unarmed.
			for _, prev := range runs[:idx] {
				b.lanes[prev.Lane].armed = false
				b.lanes[prev.Lane].regs = nil
			}
			return fmt.Errorf("accel: batch lane %d armed twice", r.Lane)
		}
		opts := r.Opts
		if opts.Tiles <= 0 {
			opts.Tiles = 1
		}
		L.armed = true
		L.regs = r.Regs
		L.opts = opts
		L.res = LoopResult{}
		L.err = nil
	}
	for _, r := range runs {
		b.runOrder = append(b.runOrder, r.Lane)
		b.active = append(b.active, r.Lane)
	}
	return nil
}

// Step executes one loop iteration on every still-active lane in lockstep
// and returns the number of lanes still running. The per-node loop iterates
// lanes innermost over the SoA blocks; per-lane pre- and post-iteration
// work (resource resets, store commit, live-outs, loop control) brackets
// it. A lane that errors is recorded and dropped; the remaining lanes are
// unaffected. The steady-state path performs no heap allocations.
func (b *BatchEngine) Step() (int, error) {
	if len(b.runOrder) == 0 {
		return 0, fmt.Errorf("accel: batch Step without StartLoops")
	}
	if len(b.active) == 0 {
		return 0, nil
	}

	// Pre-iteration resets, per lane (scalar: top of RunIteration).
	for _, ln := range b.active {
		L := &b.lanes[ln]
		L.portZeroFrom = 0 // all ports free; stale slots die on first grant
		for r := range L.laneFree {
			lf := L.laneFree[r]
			for l := range lf {
				lf[l] = 0
			}
		}
		L.storeBuf = L.storeBuf[:0]
		L.iterTotal = 0
	}

	// Advance the shared scratch generation; on wraparound clear every
	// lane's stamps so stale entries cannot alias the new generation.
	b.iterGen++
	if b.iterGen == 0 {
		for s := range b.lanes {
			clear(b.lanes[s].lineGen)
			clear(b.lanes[s].unitGen)
		}
		b.iterGen = 1
	}

	g := b.ref
	for i := range g.Nodes {
		n := &g.Nodes[i]
		id := dfg.NodeID(i)
		ne := &b.edges[i]

		for _, ln := range b.active {
			L := &b.lanes[ln]
			if L.err != nil {
				continue
			}
			base := ln * b.n

			// Predication: enabled iff every controlling branch is enabled
			// and not taken.
			en := true
			ctrlArrival := 0.0
			if n.CtrlDep != dfg.None {
				br := int(n.CtrlDep)
				en = b.enabled[base+br] && !b.taken[base+br]
				if a := b.completion[base+br] + ctrlLat; a > ctrlArrival {
					ctrlArrival = a
				}
				L.activity.CtrlEvents++
			}
			b.enabled[base+i] = en

			// Operand gathering.
			var opVal [3]uint32
			arrival := ctrlArrival
			for k := 0; k < 3; k++ {
				switch {
				case n.Src[k] != dfg.None:
					src := int(n.Src[k])
					opVal[k] = b.value[base+src]
					if a := b.laneTransfer(L, n.Src[k], id, ne.src[k], b.completion[base+src]); a > arrival {
						arrival = a
					}
				case n.LiveIn[k] != isa.RegNone:
					opVal[k] = readReg(L.regs, n.LiveIn[k])
					if liveInLat > arrival {
						arrival = liveInLat
					}
				}
			}
			if n.MemDep != dfg.None {
				if a := b.laneTransfer(L, n.MemDep, id, ne.mem, b.completion[base+int(n.MemDep)]); a > arrival {
					arrival = a
				}
			}

			if !en {
				// Disabled PE: forward the old destination value after one
				// forwarding cycle.
				var old uint32
				pa := ctrlArrival
				if n.PredDep != dfg.None {
					old = b.value[base+int(n.PredDep)]
					if a := b.laneTransfer(L, n.PredDep, id, ne.pred, b.completion[base+int(n.PredDep)]); a > pa {
						pa = a
					}
				} else if n.PredLiveIn != isa.RegNone {
					old = readReg(L.regs, n.PredLiveIn)
					if liveInLat > pa {
						pa = liveInLat
					}
				}
				b.value[base+i] = old
				b.completion[base+i] = pa + 1
				b.taken[base+i] = false
				if b.completion[base+i] > L.iterTotal {
					L.iterTotal = b.completion[base+i]
				}
				continue
			}

			start := arrival
			// Time-shared units serialize their occupants.
			if L.timeShared {
				if u := L.unitOf[i]; u >= 0 && L.unitGen[u] == b.iterGen && L.unitBusy[u] > start {
					start = L.unitBusy[u]
				}
			}
			var val uint32
			var done float64

			switch {
			case n.Fwd:
				// Statically forwarded load: a pass-through move PE.
				val = opVal[1]
				done = start + 1
				L.activity.IntALU++

			case n.Inst.IsLoad():
				addr := alu.EffAddr(opVal[0], n.Inst.Imm)
				width := mem.AccessBytes(n.Inst.Op)
				L.c.Loads++
				L.activity.LSU++
				L.activity.MemAccesses++
				// Dynamic store-to-load forwarding and disambiguation
				// against this lane's in-flight stores of this iteration.
				fwdDone := math.Inf(-1)
				fwd := false
				conflict := false
				var conflictDone float64
				storeBuf := L.storeBuf
				for s := len(storeBuf) - 1; s >= 0; s-- {
					st := &storeBuf[s]
					if !st.enabled {
						continue
					}
					if !overlap(st.addr, st.width, addr, width) {
						continue
					}
					if st.addr == addr && st.width == width && width == 4 {
						// Exact match: broadcast forwarding path.
						val = st.value
						fwdDone = math.Max(start, st.dataReady) + 1
						fwd = true
						if st.addrReady > start {
							L.c.Invalidations++
							fwdDone = math.Max(fwdDone, st.addrReady+invalidateLat)
						}
					} else {
						// Partial overlap: the load must replay from memory
						// after the store commits.
						conflict = true
						conflictDone = math.Max(st.dataReady, st.addrReady)
					}
					break
				}
				if fwd {
					L.c.Forwarded++
					done = fwdDone
				} else {
					issue := start
					if conflict {
						L.c.Invalidations++
						issue = math.Max(issue, conflictDone+invalidateLat)
					}
					at := b.lanePort(L, issue, addr)
					lat := float64(L.hier.AccessLatency(addr))
					b.lanePrefetch(L, base+i, addr)
					v, err := loadThroughBuffer(L.mem, n.Inst.Op, addr, storeBuf)
					if err != nil {
						L.err = err
						continue
					}
					val = v
					done = at + lat
				}

			case n.Inst.IsStore():
				addr := alu.EffAddr(opVal[0], n.Inst.Imm)
				width := mem.AccessBytes(n.Inst.Op)
				L.c.Stores++
				L.activity.LSU++
				L.activity.MemAccesses++
				at := b.lanePort(L, start, addr)
				done = at + 1
				L.storeBuf = append(L.storeBuf, storeBufEntry{
					node: id, addr: addr, width: width, value: opVal[1],
					dataReady: done, addrReady: start, op: n.Inst.Op, enabled: true,
				})
				val = opVal[1]

			case n.Inst.IsBranch():
				tk, err := alu.EvalBranch(n.Inst.Op, opVal[0], opVal[1])
				if err != nil {
					L.err = err
					continue
				}
				b.taken[base+i] = tk
				if tk {
					val = 1
				}
				done = start + L.cfg.OpLat[isa.ClassBranch]
				L.activity.IntALU += L.cfg.OpLat[isa.ClassBranch]

			case n.Inst.Op == isa.OpJAL && n.Inst.Imm < 0:
				// Loop-closing jump: unconditionally continue.
				b.taken[base+i] = true
				done = start + 1

			default:
				a, c2 := opVal[0], opVal[1]
				if n.Inst.Op.HasImm() || n.Inst.Op == isa.OpLUI {
					c2 = uint32(n.Inst.Imm)
				}
				v, err := alu.Eval(n.Inst.Op, a, c2, opVal[2])
				if err != nil {
					L.err = fmt.Errorf("accel: node i%d: %w", i, err)
					continue
				}
				val = v
				lat := L.cfg.OpLat[n.Inst.Class()]
				done = start + lat
				if n.Inst.Op.IsFP() {
					L.activity.FPU += lat
				} else {
					L.activity.IntALU += lat
				}
			}

			b.value[base+i] = val
			b.completion[base+i] = done
			if L.timeShared {
				if u := L.unitOf[i]; u >= 0 {
					if L.unitGen[u] != b.iterGen {
						L.unitGen[u] = b.iterGen
						L.unitBusy[u] = done
					} else if done > L.unitBusy[u] {
						L.unitBusy[u] = done
					}
				}
			}
			L.c.OpLatSum[i] += done - start
			L.c.OpLatN[i]++
			if done > L.iterTotal {
				L.iterTotal = done
			}
		}
	}

	// Post-iteration, per lane: commit stores in program order, update
	// live-outs, evaluate loop control, and retire finished lanes.
	nextActive := b.active[:0]
	for _, ln := range b.active {
		L := &b.lanes[ln]
		base := ln * b.n
		if L.err == nil {
			for s := range L.storeBuf {
				st := &L.storeBuf[s]
				if !st.enabled || !b.enabled[base+int(st.node)] {
					continue
				}
				if err := L.mem.Store(st.op, st.addr, st.value); err != nil {
					L.err = err
					break
				}
			}
		}
		if L.err != nil {
			continue // retired with error; Results reports it
		}

		for r, id := range g.LiveOut {
			if r != isa.X0 {
				L.regs[r] = b.value[base+int(id)]
			}
		}

		cont := false
		if b.refLoopBranch != dfg.None && b.enabled[base+int(b.refLoopBranch)] {
			cont = b.taken[base+int(b.refLoopBranch)]
		}

		L.c.Iterations++
		L.c.ActiveCycles += L.iterTotal
		L.res.Iterations++
		L.res.SerialCycles += L.iterTotal
		if !cont {
			L.res.Done = true
			continue
		}
		if L.opts.MaxIterations > 0 && L.res.Iterations >= L.opts.MaxIterations {
			continue
		}
		nextActive = append(nextActive, ln)
	}
	b.active = nextActive
	return len(b.active), nil
}

// Results collects each armed lane's outcome, in StartLoops order, and
// disarms the batch. A lane that errored carries the error the scalar
// RunLoop would have returned; successful lanes get the finalized
// LoopResult (mode-adjusted totals plus the attribution report), produced
// by the same finishLoop the scalar path uses.
func (b *BatchEngine) Results() []LaneResult {
	out := make([]LaneResult, 0, len(b.runOrder))
	for _, ln := range b.runOrder {
		L := &b.lanes[ln]
		if L.err != nil {
			out = append(out, LaneResult{Err: L.err})
		} else {
			r := new(LoopResult)
			*r = L.res
			finishLoop(r, b.laneAttribSource(ln), L.opts)
			L.activity.Cycles += r.TotalCycles
			out = append(out, LaneResult{Res: r})
		}
		L.armed = false
		L.regs = nil
	}
	b.runOrder = b.runOrder[:0]
	b.active = b.active[:0]
	return out
}

// RunLoops arms the given lanes, steps them in lockstep to completion, and
// returns the per-lane outcomes in input order.
func (b *BatchEngine) RunLoops(runs []LaneRun) ([]LaneResult, error) {
	if err := b.StartLoops(runs); err != nil {
		return nil, err
	}
	for {
		left, err := b.Step()
		if err != nil {
			return nil, err
		}
		if left == 0 {
			break
		}
	}
	return b.Results(), nil
}

// laneTransfer is Engine.transfer over one lane's state (untraced path).
func (b *BatchEngine) laneTransfer(L *batchLane, from, to dfg.NodeID, edge int32, ready float64) float64 {
	var lat float64
	switch {
	case laneOnBus(L, from) || laneOnBus(L, to):
		lat = float64(L.cfg.BusLat)
		L.c.BusTransfers++
	default:
		a, c := L.pos[from], L.pos[to]
		base := float64(L.cfg.Interconnect.Latency(a, c))
		hr, isHalfRing := L.cfg.Interconnect.(noc.HalfRing)
		if isHalfRing && hr.UsesNoC(a, c) {
			row := a.Row
			if row < 0 || row >= len(L.laneFree) {
				row = 0
			}
			lanes := L.laneFree[row]
			lane := 0
			for l := 1; l < len(lanes); l++ {
				if lanes[l] < lanes[lane] {
					lane = l
				}
			}
			start := math.Max(ready, lanes[lane])
			L.c.NoCWaitCycles += start - ready
			lanes[lane] = start + 1
			lat = (start - ready) + base
			L.c.NoCTransfers++
			L.c.RowTransfers[row]++
			L.activity.NoC += base
		} else {
			lat = base
			L.c.LocalTransfers++
		}
	}
	L.c.EdgeLatSum[edge] += lat
	L.c.EdgeLatN[edge]++
	return ready + lat
}

func laneOnBus(L *batchLane, id dfg.NodeID) bool {
	p := L.pos[id]
	return !L.cfg.InBounds(p) && !L.cfg.IsEdge(p)
}

// lanePort is Engine.port over one lane's state (untraced path).
func (b *BatchEngine) lanePort(L *batchLane, ready float64, addr uint32) float64 {
	const lineShift = 6 // 64-byte lines
	var lineSlot uint32
	vectorized := L.cfg.EnableVectorization
	if vectorized {
		tag := addr >> lineShift
		slot := (tag * 2654435761) & L.lineMask
		for L.lineGen[slot] == b.iterGen && L.lineTag[slot] != tag {
			slot = (slot + 1) & L.lineMask
		}
		if L.lineGen[slot] == b.iterGen {
			if grant := L.lineVal[slot]; grant >= ready-1 {
				L.c.Coalesced++
				return math.Max(ready, grant)
			}
		}
		lineSlot = slot
	}
	var best int
	if z := L.portZeroFrom; z < len(L.portFree) {
		// Exactly the scalar engine's cursor grant: untouched ports are the
		// lowest-index minimum, so this is the port the scan would pick.
		best = z
		L.portZeroFrom = z + 1
		L.portFree[best] = 0
	} else {
		best = 0
		for p := 1; p < len(L.portFree); p++ {
			if L.portFree[p] < L.portFree[best] {
				best = p
			}
		}
	}
	start := math.Max(ready, L.portFree[best])
	L.c.PortWaitCycles += start - ready
	L.c.PortGrants[best]++
	L.c.PortWait[best] += start - ready
	L.portFree[best] = start + 1 // ports accept one access per cycle
	if vectorized {
		L.lineTag[lineSlot] = addr >> lineShift
		L.lineVal[lineSlot] = start
		L.lineGen[lineSlot] = b.iterGen
	}
	return start
}

// lanePrefetch is Engine.prefetchNext over one lane's SoA prefetch state;
// idx is the node's absolute SoA index (base+node).
func (b *BatchEngine) lanePrefetch(L *batchLane, idx int, addr uint32) {
	if !L.cfg.EnablePrefetch {
		return
	}
	if b.pfSeen[idx] > 0 {
		stride := int64(addr) - int64(b.pfLastAddr[idx])
		if b.pfSeen[idx] > 1 && stride == b.pfStride[idx] && stride != 0 {
			L.hier.Prefetch(uint32(int64(addr) + stride))
			L.c.Prefetches++
		}
		b.pfStride[idx] = stride
	}
	b.pfLastAddr[idx] = addr
	if b.pfSeen[idx] < 2 {
		b.pfSeen[idx]++
	}
}

// laneAttribSource projects one lane onto the shared attribution view, so
// batched attribution reports are produced by the exact code the scalar
// Engine.Explain uses.
func (b *BatchEngine) laneAttribSource(lane int) *attribSource {
	L := &b.lanes[lane]
	return &attribSource{
		cfg: L.cfg, g: L.g, pos: L.pos, counters: &L.c,
		timeShared: L.timeShared, maxUnitWork: L.maxUnitWork,
	}
}

// LaneCounters returns a deep copy of one lane's accumulated counters. The
// copy detaches the caller from the SoA blocks, so it stays valid after the
// slot is reconfigured for another simulation.
func (b *BatchEngine) LaneCounters(lane int) *Counters {
	return copyCounters(&b.lanes[lane].c)
}

// LaneActivity returns one lane's accumulated component activity.
func (b *BatchEngine) LaneActivity(lane int) Activity {
	return b.lanes[lane].activity
}

// LaneExplain computes the bottleneck attribution for one lane.
func (b *BatchEngine) LaneExplain(lane int, opts LoopOptions) *Attribution {
	return b.laneAttribSource(lane).explain(opts)
}

// LaneFeedback applies one lane's measured latencies to g, mirroring
// Engine.Feedback.
func (b *BatchEngine) LaneFeedback(lane int, g *dfg.Graph) (nodes, edges int, err error) {
	L := &b.lanes[lane]
	if g.Len() != L.g.Len() {
		return 0, 0, fmt.Errorf("accel: feedback graph has %d nodes, engine has %d", g.Len(), L.g.Len())
	}
	nodes, edges = applyFeedback(g, &L.c)
	return nodes, edges, nil
}

// LaneMeasuredAMAT returns one lane's average measured load latency,
// mirroring Engine.MeasuredAMAT.
func (b *BatchEngine) LaneMeasuredAMAT(lane int) float64 {
	L := &b.lanes[lane]
	var sum float64
	var n uint64
	for i := range L.g.Nodes {
		node := &L.g.Nodes[i]
		if node.Inst.IsLoad() && !node.Fwd && L.c.OpLatN[i] > 0 {
			sum += L.c.OpLatSum[i] / float64(L.c.OpLatN[i])
			n++
		}
	}
	if n == 0 {
		return L.cfg.LoadLatEstimate
	}
	return sum / float64(n)
}

// copyCounters deep-copies a counter set, detaching every slice.
func copyCounters(c *Counters) *Counters {
	out := *c
	out.OpLatSum = append([]float64(nil), c.OpLatSum...)
	out.OpLatN = append([]uint64(nil), c.OpLatN...)
	out.EdgeLatSum = append([]float64(nil), c.EdgeLatSum...)
	out.EdgeLatN = append([]uint64(nil), c.EdgeLatN...)
	out.EdgePairs = append([]uint64(nil), c.EdgePairs...)
	out.RowTransfers = append([]uint64(nil), c.RowTransfers...)
	out.PortGrants = append([]uint64(nil), c.PortGrants...)
	out.PortWait = append([]float64(nil), c.PortWait...)
	return &out
}
