package accel

import (
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// TestNoCContention: many simultaneous long-distance transfers from one row
// must queue on the row's NoC lanes, showing up as wait cycles.
func TestNoCContention(t *testing.T) {
	g := dfg.NewGraph()
	// One producer...
	src := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone}, 1)
	src.LiveIn[0], src.LiveIn[1] = isa.X6, isa.X7
	srcID := g.Add(src)
	// ...fanning out to six consumers far across the grid (all transfers
	// ride the NoC and originate in the same row).
	for k := 0; k < 6; k++ {
		n := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.IntReg(8 + k), Rs1: isa.X5, Rs2: isa.X5, Rs3: isa.RegNone}, 1)
		n.Src[0] = srcID
		g.Add(n)
	}
	g.LiveOut[isa.X8] = 1

	cfg := M128()
	cfg.NoCLanesPerRow = 1
	pos := make([]noc.Coord, g.Len())
	pos[0] = noc.Coord{Row: 0, Col: 0}
	for k := 1; k < g.Len(); k++ {
		pos[k] = noc.Coord{Row: 9 + k, Col: 7} // far away (rows 10..15): NoC required
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6], regs[isa.X7] = 1, 2
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.NoCTransfers < 6 {
		t.Errorf("NoC transfers = %d, want >= 6", c.NoCTransfers)
	}
	if c.NoCWaitCycles == 0 {
		t.Error("six transfers on one lane should queue (no wait recorded)")
	}

	// With more lanes, waiting shrinks.
	cfg2 := M128()
	cfg2.NoCLanesPerRow = 6
	e2, err := NewEngine(cfg2, g, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	if e2.Counters().NoCWaitCycles >= c.NoCWaitCycles {
		t.Errorf("more lanes did not reduce waiting: %.0f vs %.0f",
			e2.Counters().NoCWaitCycles, c.NoCWaitCycles)
	}
}

// TestBusFallbackTiming: a node on the secondary bus pays BusLat per
// transfer but still computes correctly.
func TestBusFallbackTiming(t *testing.T) {
	g := dfg.NewGraph()
	a := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	a.LiveIn[0] = isa.X6
	aID := g.Add(a)
	b := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X7, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 2}, 1)
	b.Src[0] = aID
	bID := g.Add(b)
	g.LiveOut[isa.X7] = bID

	cfg := M128()
	bus := noc.Coord{Row: -128, Col: -128} // outside grid and edges: the bus
	pos := []noc.Coord{{Row: 0, Col: 0}, bus}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6] = 10
	res, err := e.RunIteration(&regs)
	if err != nil {
		t.Fatal(err)
	}
	if regs[isa.X7] != 13 {
		t.Errorf("x7 = %d, want 13", regs[isa.X7])
	}
	// Timing: live-in(1) + add(1) + bus(8) + add(1) = 11.
	want := 1.0 + 1 + float64(cfg.BusLat) + 1
	if res.Cycles != want {
		t.Errorf("cycles = %v, want %v", res.Cycles, want)
	}
}

// TestLoadInvalidationReplay: a load whose address issues before an earlier
// overlapping store resolves must be invalidated and replayed, with the
// correct (program-order) value.
func TestLoadInvalidationReplay(t *testing.T) {
	g := dfg.NewGraph()
	// n0: slow chain feeding the store's address... modeled by a multiply.
	mul := newNode(isa.Inst{Op: isa.OpMUL, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone}, 3)
	mul.LiveIn[0], mul.LiveIn[1] = isa.X6, isa.X7
	mulID := g.Add(mul)
	// n1: sb x8, 1(x5) — byte store, address late (depends on the multiply),
	// partially overlapping the later word load.
	st := newNode(isa.Inst{Op: isa.OpSB, Rd: isa.RegNone, Rs1: isa.X5, Rs2: isa.X8, Rs3: isa.RegNone, Imm: 1}, 1)
	st.Src[0] = mulID
	st.LiveIn[1] = isa.X8
	g.Add(st)
	// n2: lw x9, 0(x10) — address ready immediately, overlaps the store.
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X9, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X10
	ldID := g.Add(ld)
	g.LiveOut[isa.X9] = ldID

	cfg := M128()
	memory := mem.NewMemory()
	memory.StoreWord(0x1000, 0xAABBCCDD)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := []noc.Coord{{Row: 0, Col: 0}, {Row: 0, Col: -1}, {Row: 1, Col: -1}}
	e, err := NewEngine(cfg, g, pos, dfg.None, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6], regs[isa.X7] = 0x400, 4 // 0x400*4 = 0x1000
	regs[isa.X8] = 0xEE
	regs[isa.X10] = 0x1000
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	// Program order: the byte store precedes the load, so the load sees it.
	if regs[isa.X9] != 0xAABBEEDD {
		t.Errorf("load value = %#x, want 0xAABBEEDD (store forwarded in program order)", regs[isa.X9])
	}
	if e.Counters().Invalidations == 0 {
		t.Error("late-resolving overlapping store should invalidate the load")
	}
	if memory.LoadWord(0x1000) != 0xAABBEEDD {
		t.Error("store not committed")
	}
}

// TestEngineRejectsBadPlacementLength: defensive validation.
func TestEngineRejectsBadPlacementLength(t *testing.T) {
	g := dfg.NewGraph()
	g.Add(newNode(isa.Nop(), 1))
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	if _, err := NewEngine(M128(), g, nil, dfg.None, mem.NewMemory(), hier); err == nil {
		t.Error("mismatched placement accepted")
	}
	bad := M128()
	bad.MemPorts = 0
	if _, err := NewEngine(bad, g, []noc.Coord{{}}, dfg.None, mem.NewMemory(), hier); err == nil {
		t.Error("invalid config accepted")
	}
}
