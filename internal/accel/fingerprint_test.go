package accel

import (
	"strings"
	"testing"

	"mesa/internal/isa"
	"mesa/internal/noc"
)

func configPrint(c *Config) string {
	var b strings.Builder
	c.Fingerprint(&b)
	return b.String()
}

// TestConfigFingerprintDistinguishesEveryField: every Config field is
// simulation-relevant, so perturbing any one of them must change the
// fingerprint — a collision would let the memo cache (and the mesad response
// store) serve one configuration's timing for another.
func TestConfigFingerprintDistinguishesEveryField(t *testing.T) {
	muts := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"Name", func(c *Config) { c.Name = "M-128-variant" }},
		{"Rows", func(c *Config) { c.Rows++ }},
		{"Cols", func(c *Config) { c.Cols++ }},
		{"EdgeDepth", func(c *Config) { c.EdgeDepth++ }},
		{"FPSlice", func(c *Config) { c.FPSlice++ }},
		{"Interconnect type", func(c *Config) { c.Interconnect = noc.DefaultRowSlice() }},
		{"Interconnect value", func(c *Config) {
			hr := noc.DefaultHalfRing()
			hr.RouterLat++
			c.Interconnect = hr
		}},
		{"NoCLanesPerRow", func(c *Config) { c.NoCLanesPerRow++ }},
		{"MemPorts", func(c *Config) { c.MemPorts++ }},
		{"OpLat", func(c *Config) { c.OpLat[isa.ClassALU]++ }},
		{"LoadLatEstimate", func(c *Config) { c.LoadLatEstimate++ }},
		{"BusLat", func(c *Config) { c.BusLat++ }},
		{"EnablePrefetch", func(c *Config) { c.EnablePrefetch = !c.EnablePrefetch }},
		{"EnableVectorization", func(c *Config) { c.EnableVectorization = !c.EnableVectorization }},
		{"ClockGHz", func(c *Config) { c.ClockGHz++ }},
	}

	prints := map[string]string{"base": configPrint(M128())}
	for _, m := range muts {
		c := M128()
		m.mutate(c)
		fp := configPrint(c)
		for other, ofp := range prints {
			if fp == ofp {
				t.Errorf("mutating %s collides with %s: %s", m.name, other, fp)
			}
		}
		prints[m.name] = fp
	}

	// Determinism: the same config always prints the same bytes.
	if configPrint(M128()) != prints["base"] {
		t.Error("fingerprint is not deterministic for identical configs")
	}
}
