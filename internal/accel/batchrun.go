package accel

import (
	"fmt"
	"sync"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/obs"
)

// BatchRunner lets N independent simulation drivers (one goroutine each,
// e.g. N MESA controllers sweeping configs of one kernel) share a single
// lockstep BatchEngine. Each driver owns one BatchLaneHandle and builds
// engines through it exactly as it would call NewEngine; RunLoop calls from
// the lanes rendezvous into combining rounds: when every participating lane
// has a loop request outstanding, the arrivals are executed as one batched
// RunLoops pass and the per-lane results handed back.
//
// The rendezvous is deadlock-free because lanes leave the pool explicitly:
// a lane that stops running loops calls Finish (or falls back to the scalar
// path), shrinking the quorum the next round waits for. Per-lane results
// are byte-identical to scalar execution — the engine guarantees it per
// lane, and the runner adds only scheduling.
type BatchRunner struct {
	mu      sync.Mutex
	eng     *BatchEngine
	nBatch  int // unfinished lanes on the batched (non-scalar) path
	pending []*laneReq
	handles []BatchLaneHandle
}

type laneReq struct {
	slot int
	regs *[isa.NumRegs]uint32
	opts LoopOptions
	res  *LoopResult
	err  error
	done chan struct{}
}

// NewBatchRunner creates a runner with the given number of lanes.
func NewBatchRunner(lanes int) *BatchRunner {
	r := &BatchRunner{
		eng:     newBatchEngine(lanes),
		nBatch:  lanes,
		handles: make([]BatchLaneHandle, lanes),
	}
	for i := range r.handles {
		r.handles[i] = BatchLaneHandle{r: r, slot: i}
	}
	return r
}

// Lane returns lane i's handle. Each handle belongs to one driver
// goroutine; distinct handles may be used concurrently.
func (r *BatchRunner) Lane(i int) *BatchLaneHandle { return &r.handles[i] }

// BatchLaneHandle is one driver's port into the shared batch. It hands out
// BatchLaneEngine values that satisfy the same contract as *Engine.
type BatchLaneHandle struct {
	r        *BatchRunner
	slot     int
	finished bool
	// scalar marks the lane as permanently fallen back to private scalar
	// engines: its graph didn't match the batch shape, its config failed
	// batch validation, or it needs tracing. Scalar lanes leave the
	// rendezvous quorum and behave exactly like direct NewEngine users.
	scalar bool
	cur    *BatchLaneEngine
}

// Engine builds the lane's next engine over the given configuration,
// mirroring NewEngine's contract (the controller reconfigures between
// optimization rounds; each call supersedes the previous engine, whose
// counters and activity remain readable). On any batch-side configuration
// failure the lane permanently falls back to scalar engines, preserving
// NewEngine's exact error surface.
func (h *BatchLaneHandle) Engine(cfg *Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (*BatchLaneEngine, error) {
	r := h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.finished {
		return nil, fmt.Errorf("accel: batch lane %d used after Finish", h.slot)
	}
	if h.cur != nil {
		h.cur.detachLocked()
		h.cur = nil
	}
	lane := BatchLane{Cfg: cfg, G: g, Pos: pos, LoopBranch: loopBranch, Mem: m, Hier: hier}
	if !h.scalar {
		if err := r.eng.configureSlot(h.slot, lane); err != nil {
			// Leave the batch: this lane's shape or config doesn't fit.
			// The quorum shrinks, possibly releasing a waiting round.
			h.scalar = true
			r.nBatch--
			r.maybeRoundLocked()
		}
	}
	if h.scalar {
		sc, err := NewEngine(cfg, g, pos, loopBranch, m, hier)
		if err != nil {
			return nil, err
		}
		h.cur = &BatchLaneEngine{h: h, lane: lane, sc: sc}
		return h.cur, nil
	}
	h.cur = &BatchLaneEngine{h: h, lane: lane}
	return h.cur, nil
}

// Finish retires the lane: it will run no more loops, so rendezvous rounds
// stop waiting for it. Idempotent; every lane must eventually call it (or
// its driver must abandon the runner entirely) or other lanes block.
func (h *BatchLaneHandle) Finish() {
	r := h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.finished {
		return
	}
	h.finished = true
	if !h.scalar {
		r.nBatch--
		r.maybeRoundLocked()
	}
}

// maybeRoundLocked fires a combining round if every remaining batched lane
// has a request outstanding. Called with r.mu held; the round itself runs
// after releasing the lock (no lane can join or leave meanwhile: joiners
// block on r.mu and every batched lane is inside the round).
func (r *BatchRunner) maybeRoundLocked() {
	if r.nBatch > 0 && len(r.pending) == r.nBatch {
		reqs := r.pending
		r.pending = nil
		r.mu.Unlock()
		r.executeRound(reqs)
		r.mu.Lock()
	}
}

// runLoop enqueues one lane's loop request and blocks until a round
// delivers its result. The arrival that completes the quorum executes the
// round on its own goroutine.
func (r *BatchRunner) runLoop(slot int, regs *[isa.NumRegs]uint32, opts LoopOptions) (*LoopResult, error) {
	req := &laneReq{slot: slot, regs: regs, opts: opts, done: make(chan struct{})}
	r.mu.Lock()
	r.pending = append(r.pending, req)
	if len(r.pending) == r.nBatch {
		reqs := r.pending
		r.pending = nil
		r.mu.Unlock()
		r.executeRound(reqs)
	} else {
		r.mu.Unlock()
		<-req.done
	}
	return req.res, req.err
}

// executeRound runs one batched RunLoops pass over the gathered requests
// and publishes per-lane results. The engine is quiescent for the duration:
// every batched lane is a participant (blocked or executing here), and
// scalar or finished lanes never touch it.
func (r *BatchRunner) executeRound(reqs []*laneReq) {
	runs := make([]LaneRun, len(reqs))
	for i, q := range reqs {
		runs[i] = LaneRun{Lane: q.slot, Regs: q.regs, Opts: q.opts}
	}
	results, err := r.eng.RunLoops(runs)
	for i, q := range reqs {
		if err != nil {
			q.err = err
		} else {
			q.res, q.err = results[i].Res, results[i].Err
		}
		close(q.done)
	}
}

// BatchLaneEngine is the engine a BatchLaneHandle hands to its driver. It
// presents the scalar *Engine method set the controller consumes
// (AttachRecorder, TraceClock, RunLoop, Feedback, Counters, Activity),
// backed either by one lane of the shared BatchEngine or by a private
// scalar Engine after fallback. A superseded engine (its handle built a
// newer one) stays readable: its counters and activity are snapshotted at
// detach time, matching the scalar pattern of holding onto a replaced
// *Engine.
type BatchLaneEngine struct {
	h    *BatchLaneHandle
	lane BatchLane

	// sc, when non-nil, delegates everything to a private scalar engine.
	sc *Engine

	// base is the trace clock offset received via AttachRecorder.
	base float64

	// Detach snapshot (batched lanes only).
	detached    bool
	detCounters *Counters
	detActivity Activity
}

// detachLocked snapshots the live lane state so the engine stays readable
// after its slot is reconfigured. Called with r.mu held.
func (e *BatchLaneEngine) detachLocked() {
	if e.sc != nil || e.detached {
		return
	}
	e.detCounters = e.h.r.eng.LaneCounters(e.h.slot)
	e.detActivity = e.h.r.eng.LaneActivity(e.h.slot)
	e.detached = true
}

// AttachRecorder mirrors Engine.AttachRecorder. Batched lanes cannot emit
// per-node traces (their firing order interleaves across lanes), so an
// enabled recorder converts the lane to the scalar path on the spot — the
// slot holds no measurements yet (attachment directly follows
// construction), so nothing is lost and results stay byte-identical.
func (e *BatchLaneEngine) AttachRecorder(rec *obs.Recorder, base float64) {
	e.base = base
	if e.sc != nil {
		e.sc.AttachRecorder(rec, base)
		return
	}
	if !rec.Enabled() {
		return
	}
	h := e.h
	r := h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if !h.scalar {
		h.scalar = true
		r.nBatch--
		r.maybeRoundLocked()
	}
	sc, err := NewEngine(e.lane.Cfg, e.lane.G, e.lane.Pos, e.lane.LoopBranch, e.lane.Mem, e.lane.Hier)
	if err != nil {
		// configureSlot accepted the identical arguments, so NewEngine
		// cannot fail here.
		panic(fmt.Sprintf("accel: scalar fallback failed after batch accepted lane: %v", err))
	}
	e.sc = sc
	sc.AttachRecorder(rec, base)
}

// TraceClock mirrors Engine.TraceClock.
func (e *BatchLaneEngine) TraceClock() float64 {
	if e.sc != nil {
		return e.sc.TraceClock()
	}
	return e.base
}

// RunLoop mirrors Engine.RunLoop, rendezvousing with the other batched
// lanes so the iterations execute in lockstep.
func (e *BatchLaneEngine) RunLoop(regs *[isa.NumRegs]uint32, opts LoopOptions) (*LoopResult, error) {
	if e.sc != nil {
		return e.sc.RunLoop(regs, opts)
	}
	if e.detached {
		return nil, fmt.Errorf("accel: batch lane %d: RunLoop on superseded engine", e.h.slot)
	}
	return e.h.r.runLoop(e.h.slot, regs, opts)
}

// Feedback mirrors Engine.Feedback.
func (e *BatchLaneEngine) Feedback(g *dfg.Graph) (nodes, edges int, err error) {
	if e.sc != nil {
		return e.sc.Feedback(g)
	}
	if g.Len() != e.lane.G.Len() {
		return 0, 0, fmt.Errorf("accel: feedback graph has %d nodes, engine has %d", g.Len(), e.lane.G.Len())
	}
	r := e.h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.detached {
		nodes, edges = applyFeedback(g, e.detCounters)
		return nodes, edges, nil
	}
	return e.h.r.eng.LaneFeedback(e.h.slot, g)
}

// Counters mirrors Engine.Counters. The returned set is a detached copy:
// safe to retain across reconfigurations of the underlying lane slot.
func (e *BatchLaneEngine) Counters() *Counters {
	if e.sc != nil {
		return e.sc.Counters()
	}
	r := e.h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.detached {
		return e.detCounters
	}
	return e.h.r.eng.LaneCounters(e.h.slot)
}

// Activity mirrors Engine.Activity.
func (e *BatchLaneEngine) Activity() Activity {
	if e.sc != nil {
		return e.sc.Activity()
	}
	r := e.h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.detached {
		return e.detActivity
	}
	return e.h.r.eng.LaneActivity(e.h.slot)
}
