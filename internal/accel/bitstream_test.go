package accel

import (
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// buildMappedRegion creates a small mapped region exercising every encoded
// field: immediates, live-ins, all dependency kinds, predication, and a
// forwarded load.
func buildMappedRegion() (*dfg.Graph, []noc.Coord, dfg.NodeID) {
	g := dfg.NewGraph()
	// i0: x5 = x6 + 100
	n0 := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 100}, 1)
	n0.LiveIn[0] = isa.X6
	i0 := g.Add(n0)
	// i1: branch shadowing i2
	br := newNode(isa.Inst{Op: isa.OpBEQ, Rd: isa.RegNone, Rs1: isa.X7, Rs2: isa.X0, Rs3: isa.RegNone, Imm: 8}, 1)
	br.LiveIn[0] = isa.X7
	i1 := g.Add(br)
	// i2: predicated x5 update
	sh := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X5, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: -7}, 1)
	sh.Src[0] = i0
	sh.CtrlDep = i1
	sh.PredDep = i0
	i2 := g.Add(sh)
	// i3: store x5
	st := newNode(isa.Inst{Op: isa.OpSW, Rd: isa.RegNone, Rs1: isa.X10, Rs2: isa.X5, Rs3: isa.RegNone, Imm: 4}, 1)
	st.LiveIn[0] = isa.X10
	st.Src[1] = i2
	i3 := g.Add(st)
	// i4: forwarded reload
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X8, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 4}, 3)
	ld.LiveIn[0] = isa.X10
	ld.Fwd = true
	ld.Src[1] = i2
	i4 := g.Add(ld)
	// i5: induction + loop branch
	ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X9, Rs1: isa.X9, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	ind.LiveIn[0] = isa.X9
	i5 := g.Add(ind)
	lb := newNode(isa.Inst{Op: isa.OpBLT, Rd: isa.RegNone, Rs1: isa.X9, Rs2: isa.X28, Rs3: isa.RegNone, Imm: -24}, 1)
	lb.Src[0] = i5
	lb.LiveIn[1] = isa.X28
	i6 := g.Add(lb)

	g.LiveOut[isa.X5] = i2
	g.LiveOut[isa.X8] = i4
	g.LiveOut[isa.X9] = i5

	pos := []noc.Coord{
		{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0},
		{Row: 2, Col: -1}, {Row: 1, Col: 1}, {Row: 2, Col: 2}, {Row: 3, Col: 2},
	}
	_ = i3
	return g, pos, i6
}

func TestBitstreamRoundTrip(t *testing.T) {
	g, pos, lb := buildMappedRegion()
	bs, err := EncodeConfig(g, pos, lb)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Words() != 2+4*g.Len()+len(g.LiveOut) {
		t.Errorf("words = %d", bs.Words())
	}
	if len(bs.Bytes()) != 8*bs.Words() {
		t.Error("Bytes length wrong")
	}

	g2, pos2, lb2, err := DecodeConfig(bs)
	if err != nil {
		t.Fatal(err)
	}
	if lb2 != lb {
		t.Errorf("loop branch = %v, want %v", lb2, lb)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("node count = %d", g2.Len())
	}
	for i := range g.Nodes {
		a, b := g.Node(dfg.NodeID(i)), g2.Node(dfg.NodeID(i))
		if a.Inst.Op != b.Inst.Op || a.Inst.Imm != b.Inst.Imm {
			t.Errorf("node %d inst mismatch: %v vs %v", i, a.Inst, b.Inst)
		}
		if a.Src != b.Src || a.LiveIn != b.LiveIn || a.MemDep != b.MemDep ||
			a.PredDep != b.PredDep || a.CtrlDep != b.CtrlDep ||
			a.PredLiveIn != b.PredLiveIn || a.Fwd != b.Fwd {
			t.Errorf("node %d deps mismatch", i)
		}
		if a.OpLat != b.OpLat {
			t.Errorf("node %d OpLat %v vs %v", i, a.OpLat, b.OpLat)
		}
		if pos[i] != pos2[i] {
			t.Errorf("node %d pos %v vs %v", i, pos[i], pos2[i])
		}
	}
	for r, id := range g.LiveOut {
		if g2.LiveOut[r] != id {
			t.Errorf("live-out %v mismatch", r)
		}
	}
}

// TestBitstreamLoadedEngineMatches: an engine configured from the decoded
// bitstream must execute identically to one configured directly.
func TestBitstreamLoadedEngineMatches(t *testing.T) {
	g, pos, lb := buildMappedRegion()
	bs, err := EncodeConfig(g, pos, lb)
	if err != nil {
		t.Fatal(err)
	}
	g2, pos2, lb2, err := DecodeConfig(bs)
	if err != nil {
		t.Fatal(err)
	}

	run := func(gr *dfg.Graph, ps []noc.Coord, l dfg.NodeID) ([isa.NumRegs]uint32, uint32, float64) {
		cfg := M128()
		memory := mem.NewMemory()
		memory.StoreWord(0x2004, 0xDEAD)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		e, err := NewEngine(cfg, gr, ps, l, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]uint32
		regs[isa.X6] = 5
		regs[isa.X7] = 0 // branch taken: predicated node disabled
		regs[isa.X10] = 0x2000
		regs[isa.X28] = 6
		res, err := e.RunLoop(&regs, LoopOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return regs, memory.LoadWord(0x2004), res.SerialCycles
	}

	regsA, memA, cycA := run(g, pos, lb)
	regsB, memB, cycB := run(g2, pos2, lb2)
	if regsA != regsB {
		t.Error("register state differs between direct and bitstream-loaded engines")
	}
	if memA != memB {
		t.Errorf("memory differs: %#x vs %#x", memA, memB)
	}
	if cycA != cycB {
		t.Errorf("timing differs: %v vs %v", cycA, cycB)
	}
}

func TestBitstreamValidation(t *testing.T) {
	g, pos, lb := buildMappedRegion()
	if _, err := EncodeConfig(g, pos[:2], lb); err == nil {
		t.Error("short placement accepted")
	}
	bs, _ := EncodeConfig(g, pos, lb)
	if _, _, _, err := DecodeConfig(bs[:1]); err == nil {
		t.Error("truncated stream accepted")
	}
	bad := append(Bitstream{}, bs...)
	bad[0] ^= uint64(1) << 60 // corrupt magic
	if _, _, _, err := DecodeConfig(bad); err == nil {
		t.Error("bad magic accepted")
	}
	ver := append(Bitstream{}, bs...)
	ver[0] ^= uint64(1) << 40 // corrupt version
	if _, _, _, err := DecodeConfig(ver); err == nil {
		t.Error("bad version accepted")
	}
	short := append(Bitstream{}, bs[:len(bs)-1]...)
	if _, _, _, err := DecodeConfig(short); err == nil {
		t.Error("wrong length accepted")
	}
}
