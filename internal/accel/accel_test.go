package accel

import (
	"testing"

	"mesa/internal/alu"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

func newNode(in isa.Inst, lat float64) dfg.Node {
	return dfg.Node{
		Inst:       in,
		OpLat:      lat,
		Src:        [3]dfg.NodeID{dfg.None, dfg.None, dfg.None},
		LiveIn:     [3]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone},
		MemDep:     dfg.None,
		PredDep:    dfg.None,
		PredLiveIn: isa.RegNone,
		CtrlDep:    dfg.None,
	}
}

// rowPlacement places nodes left-to-right along row 0, memory ops on edges.
func rowPlacement(cfg *Config, g *dfg.Graph) []noc.Coord {
	pos := make([]noc.Coord, g.Len())
	col := 0
	edgeRow := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Inst.IsMem() && !n.Fwd {
			pos[i] = noc.Coord{Row: edgeRow, Col: -1}
			edgeRow++
		} else {
			pos[i] = noc.Coord{Row: 0, Col: col % cfg.Cols}
			col++
		}
	}
	return pos
}

func TestConfigGeometry(t *testing.T) {
	for _, cfg := range []*Config{M64(), M128(), M512()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	c := M128()
	if c.NumPEs() != 128 || c.Rows != 16 || c.Cols != 8 {
		t.Errorf("M-128 geometry wrong: %d PEs %dx%d", c.NumPEs(), c.Rows, c.Cols)
	}
	if M512().NumPEs() != 512 || M64().NumPEs() != 64 {
		t.Error("M-512/M-64 PE counts wrong")
	}
	// Half the PEs are FP-capable.
	fp := 0
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			if c.HasFP(noc.Coord{Row: r, Col: col}) {
				fp++
			}
		}
	}
	if fp != 64 {
		t.Errorf("FP PEs = %d, want 64 (half)", fp)
	}
	// Edge slots support only memory classes.
	edge := noc.Coord{Row: 3, Col: -1}
	if !c.Supports(edge, isa.ClassLoad) || c.Supports(edge, isa.ClassALU) {
		t.Error("edge capability mask wrong")
	}
	inner := noc.Coord{Row: 3, Col: 3}
	if c.Supports(inner, isa.ClassLoad) || !c.Supports(inner, isa.ClassALU) {
		t.Error("PE capability mask wrong")
	}
	if got := len(c.EdgeColumns()); got != 4 {
		t.Errorf("edge columns = %d, want 4", got)
	}
	if c.LSUEntries() != 64 {
		t.Errorf("LSU entries = %d", c.LSUEntries())
	}
}

func TestWithPEs(t *testing.T) {
	for _, n := range []int{16, 32, 64, 128, 256, 512} {
		cfg := WithPEs(n)
		if cfg.NumPEs() != n {
			t.Errorf("WithPEs(%d) gives %d PEs", n, cfg.NumPEs())
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("WithPEs(%d): %v", n, err)
		}
	}
}

// TestEngineSimpleDataflow executes a tiny add chain and checks both the
// computed value and the latency accounting.
func TestEngineSimpleDataflow(t *testing.T) {
	g := dfg.NewGraph()
	// n0: x5 = x6 + x7 (live-ins); n1: x8 = x5 + x5
	n0 := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone}, 1)
	n0.LiveIn[0], n0.LiveIn[1] = isa.X6, isa.X7
	id0 := g.Add(n0)
	n1 := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X8, Rs1: isa.X5, Rs2: isa.X5, Rs3: isa.RegNone}, 1)
	n1.Src[0], n1.Src[1] = id0, id0
	id1 := g.Add(n1)
	g.LiveOut[isa.X5] = id0
	g.LiveOut[isa.X8] = id1

	cfg := M128()
	memory := mem.NewMemory()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := []noc.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	e, err := NewEngine(cfg, g, pos, dfg.None, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6], regs[isa.X7] = 30, 12
	res, err := e.RunIteration(&regs)
	if err != nil {
		t.Fatal(err)
	}
	if regs[isa.X5] != 42 || regs[isa.X8] != 84 {
		t.Errorf("results: x5=%d x8=%d", regs[isa.X5], regs[isa.X8])
	}
	// Timing: live-in (1) + add (1) = 2 for n0; +1 transfer +1 add = 4.
	if res.Cycles != 4 {
		t.Errorf("iteration cycles = %v, want 4", res.Cycles)
	}
	if res.Continue {
		t.Error("no loop branch: should not continue")
	}
}

// TestEngineLoadStoreAndForwarding checks memory semantics including the
// runtime store-to-load forwarding path.
func TestEngineLoadStoreAndForwarding(t *testing.T) {
	g := dfg.NewGraph()
	// n0: lw x5, 0(x10); n1: sw x5, 4(x10); n2: lw x6, 4(x10) [fwd at runtime]
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X10
	id0 := g.Add(ld)
	st := newNode(isa.Inst{Op: isa.OpSW, Rd: isa.RegNone, Rs1: isa.X10, Rs2: isa.X5, Rs3: isa.RegNone, Imm: 4}, 1)
	st.LiveIn[0] = isa.X10
	st.Src[1] = id0
	g.Add(st)
	ld2 := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X6, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 4}, 3)
	ld2.LiveIn[0] = isa.X10
	id2 := g.Add(ld2)
	g.LiveOut[isa.X5] = id0
	g.LiveOut[isa.X6] = id2

	cfg := M128()
	memory := mem.NewMemory()
	memory.StoreWord(0x1000, 77)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 1, Col: -1}, {Row: 2, Col: -1}}
	e, err := NewEngine(cfg, g, pos, dfg.None, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X10] = 0x1000
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	if regs[isa.X5] != 77 || regs[isa.X6] != 77 {
		t.Errorf("x5=%d x6=%d, want 77/77", regs[isa.X5], regs[isa.X6])
	}
	if memory.LoadWord(0x1004) != 77 {
		t.Error("store not committed")
	}
	c := e.Counters()
	if c.Forwarded != 1 {
		t.Errorf("runtime forwards = %d, want 1", c.Forwarded)
	}
}

// TestEnginePredication checks disabled PEs forward the old register value.
func TestEnginePredication(t *testing.T) {
	build := func(x6 uint32) uint32 {
		g := dfg.NewGraph()
		// n0: x5 = x7 + 1 ; n1: beq x6, x0 -> shadow n2
		// n2 (shadowed): x5 = x5 + 10 ; n3: x8 = x5 + 0
		n0 := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X5, Rs1: isa.X7, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
		n0.LiveIn[0] = isa.X7
		id0 := g.Add(n0)
		br := newNode(isa.Inst{Op: isa.OpBEQ, Rd: isa.RegNone, Rs1: isa.X6, Rs2: isa.X0, Rs3: isa.RegNone, Imm: 8}, 1)
		br.LiveIn[0] = isa.X6
		id1 := g.Add(br)
		sh := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X5, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 10}, 1)
		sh.Src[0] = id0
		sh.CtrlDep = id1
		sh.PredDep = id0
		id2 := g.Add(sh)
		fin := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X8, Rs1: isa.X5, Rs2: isa.RegNone, Rs3: isa.RegNone}, 1)
		fin.Src[0] = id2
		id3 := g.Add(fin)
		g.LiveOut[isa.X5] = id2
		g.LiveOut[isa.X8] = id3

		cfg := M128()
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		pos := []noc.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 1, Col: 1}}
		e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), hier)
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]uint32
		regs[isa.X6] = x6
		regs[isa.X7] = 100
		if _, err := e.RunIteration(&regs); err != nil {
			t.Fatal(err)
		}
		return regs[isa.X8]
	}
	// Branch not taken (x6 != 0): shadowed addi executes -> 111.
	if got := build(5); got != 111 {
		t.Errorf("not-taken path: x8 = %d, want 111", got)
	}
	// Branch taken (x6 == 0): shadowed addi disabled, forwards old x5=101.
	if got := build(0); got != 101 {
		t.Errorf("taken path: x8 = %d, want 101", got)
	}
}

// TestEngineLoopExecution runs a counted accumulation loop.
func TestEngineLoopExecution(t *testing.T) {
	g := dfg.NewGraph()
	// n0: x5 = x5 + x6 (acc); n1: x6 = x6 + 1; n2: blt x6, x7, loop
	acc := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X5, Rs1: isa.X5, Rs2: isa.X6, Rs3: isa.RegNone}, 1)
	acc.LiveIn[0], acc.LiveIn[1] = isa.X5, isa.X6
	id0 := g.Add(acc)
	ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X6, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	ind.LiveIn[0] = isa.X6
	id1 := g.Add(ind)
	br := newNode(isa.Inst{Op: isa.OpBLT, Rd: isa.RegNone, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone, Imm: -8}, 1)
	br.Src[0] = id1
	br.LiveIn[1] = isa.X7
	id2 := g.Add(br)
	g.LiveOut[isa.X5] = id0
	g.LiveOut[isa.X6] = id1

	cfg := M128()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := []noc.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 1}}
	e, err := NewEngine(cfg, g, pos, id2, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X7] = 10
	res, err := e.RunLoop(&regs, LoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Iterations != 10 {
		t.Fatalf("iterations = %d done=%v, want 10/true", res.Iterations, res.Done)
	}
	if regs[isa.X5] != 45 {
		t.Errorf("sum = %d, want 45", regs[isa.X5])
	}
	if res.SerialCycles != res.TotalCycles {
		t.Error("serial mode should not overlap iterations")
	}

	// MaxIterations cap.
	var regs2 [isa.NumRegs]uint32
	regs2[isa.X7] = 10
	e2, _ := NewEngine(cfg, g, pos, id2, mem.NewMemory(), hier)
	res2, err := e2.RunLoop(&regs2, LoopOptions{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Done || res2.Iterations != 4 {
		t.Errorf("capped run: %d iterations done=%v", res2.Iterations, res2.Done)
	}
}

// TestEnginePipelinedFasterThanSerial checks the initiation-interval model.
func TestEnginePipelinedFasterThanSerial(t *testing.T) {
	g := dfg.NewGraph()
	ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X6, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	ind.LiveIn[0] = isa.X6
	id0 := g.Add(ind)
	// A long dependent chain to inflate per-iteration latency.
	prev := id0
	for i := 0; i < 8; i++ {
		n := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X8, Rs1: isa.X8, Rs2: isa.X6, Rs3: isa.RegNone}, 1)
		n.Src[1] = prev
		n.LiveIn[0] = isa.X8
		prev = g.Add(n)
	}
	br := newNode(isa.Inst{Op: isa.OpBLT, Rd: isa.RegNone, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone, Imm: -8}, 1)
	br.Src[0] = id0
	br.LiveIn[1] = isa.X7
	brID := g.Add(br)
	g.LiveOut[isa.X6] = id0

	cfg := M128()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := make([]noc.Coord, g.Len())
	for i := range pos {
		pos[i] = noc.Coord{Row: i / cfg.Cols, Col: i % cfg.Cols}
	}
	run := func(opts LoopOptions) *LoopResult {
		e, err := NewEngine(cfg, g, pos, brID, mem.NewMemory(), hier)
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]uint32
		regs[isa.X7] = 100
		res, err := e.RunLoop(&regs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(LoopOptions{})
	piped := run(LoopOptions{Pipelined: true})
	if piped.TotalCycles >= serial.TotalCycles {
		t.Errorf("pipelined %v !< serial %v", piped.TotalCycles, serial.TotalCycles)
	}
	tiled := run(LoopOptions{Pipelined: true, Tiles: 4})
	if tiled.TotalCycles > piped.TotalCycles {
		t.Errorf("tiled %v > pipelined %v", tiled.TotalCycles, piped.TotalCycles)
	}
}

// TestEngineFeedback verifies measured latencies flow back into the graph.
func TestEngineFeedback(t *testing.T) {
	g := dfg.NewGraph()
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X10
	id0 := g.Add(ld)
	use := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X6, Rs1: isa.X5, Rs2: isa.X5, Rs3: isa.RegNone}, 1)
	use.Src[0] = id0
	id1 := g.Add(use)
	g.LiveOut[isa.X6] = id1

	cfg := M128()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 0, Col: 0}}
	e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X10] = 0x2000
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	nodes, edges, err := e.Feedback(g)
	if err != nil {
		t.Fatal(err)
	}
	if edges == 0 {
		t.Error("no edge measurements recorded")
	}
	_ = nodes
	// The cold load's measured latency must exceed the optimistic estimate.
	if g.Node(id0).OpLat <= 3 {
		t.Errorf("measured load latency = %v, want > L1 estimate", g.Node(id0).OpLat)
	}
	if amat := e.MeasuredAMAT(); amat <= 3 {
		t.Errorf("AMAT = %v", amat)
	}
}

func TestEngineValueSemanticsMatchALU(t *testing.T) {
	// FP multiply on the accelerator must equal alu.Eval bit-for-bit.
	g := dfg.NewGraph()
	n := newNode(isa.Inst{Op: isa.OpFMULS, Rd: isa.F1, Rs1: isa.F2, Rs2: isa.F3, Rs3: isa.RegNone}, 5)
	n.LiveIn[0], n.LiveIn[1] = isa.F2, isa.F3
	id := g.Add(n)
	g.LiveOut[isa.F1] = id
	cfg := M128()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	e, err := NewEngine(cfg, g, []noc.Coord{{Row: 0, Col: 0}}, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.F2] = alu.F32(1.5)
	regs[isa.F3] = alu.F32(-2.25)
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	want, _ := alu.Eval(isa.OpFMULS, alu.F32(1.5), alu.F32(-2.25), 0)
	if regs[isa.F1] != want {
		t.Errorf("fp result %#x, want %#x", regs[isa.F1], want)
	}
}
