package accel

import (
	"bytes"
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// loadAdd builds a two-node graph — an edge load feeding a grid accumulator
// (X7 += loaded word) — that exercises a memory port, a row-lane NoC
// transfer, and a cross-iteration recurrence through X7.
func loadAdd(t *testing.T) (*Engine, *[isa.NumRegs]uint32) {
	t.Helper()
	g := dfg.NewGraph()
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X6
	ldID := g.Add(ld)
	add := newNode(isa.Inst{Op: isa.OpADD, Rd: isa.X7, Rs1: isa.X5, Rs2: isa.X7, Rs3: isa.RegNone}, 1)
	add.Src[0] = ldID
	add.LiveIn[1] = isa.X7
	addID := g.Add(add)
	g.LiveOut[isa.X7] = addID

	memory := mem.NewMemory()
	memory.StoreWord(0x1000, 41)
	pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 0, Col: 0}}
	e, err := NewEngine(M128(), g, pos, dfg.None, memory, mem.MustHierarchy(mem.DefaultHierarchy()))
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X6] = 0x1000
	return e, &regs
}

var boundNames = []string{"dependence", "memports", "noc", "timeshare"}

// checkBounds asserts the report carries all four candidate IIs in the fixed
// order, with the Limiting flag set exactly on the chosen bound.
func checkBounds(t *testing.T, a *Attribution) {
	t.Helper()
	if len(a.Bounds) != len(boundNames) {
		t.Fatalf("len(Bounds) = %d, want %d", len(a.Bounds), len(boundNames))
	}
	for i, c := range a.Bounds {
		if c.Name != boundNames[i] {
			t.Errorf("Bounds[%d].Name = %q, want %q", i, c.Name, boundNames[i])
		}
		if c.Limiting != (c.Name == a.Chosen) {
			t.Errorf("Bounds[%d] (%s): Limiting = %v with Chosen = %q", i, c.Name, c.Limiting, a.Chosen)
		}
	}
}

// TestExplainDegenerateNoIterations pins the documented degenerate path: with
// no completed iterations the report (and InitiationInterval, its projection)
// must fall back to II 1 with bound "dependence", all four candidates present.
func TestExplainDegenerateNoIterations(t *testing.T) {
	e, _ := loadAdd(t)
	a := e.Explain(LoopOptions{Pipelined: true})
	if a.Iterations != 0 {
		t.Fatalf("Iterations = %d before any run, want 0", a.Iterations)
	}
	if a.II != 1 || a.Chosen != "dependence" {
		t.Errorf("degenerate report = (%v, %q), want (1, dependence)", a.II, a.Chosen)
	}
	checkBounds(t, a)
	if len(a.PEs) != 0 || len(a.Recurrence) != 0 {
		t.Errorf("degenerate report carries heatmaps: %d PEs, %d recurrence nodes",
			len(a.PEs), len(a.Recurrence))
	}
	ii, bound := e.InitiationInterval(LoopOptions{Pipelined: true})
	if ii != a.II || bound != a.Chosen {
		t.Errorf("InitiationInterval = (%v, %q), Explain = (%v, %q): projections diverged",
			ii, bound, a.II, a.Chosen)
	}
}

// TestExplainDegenerateTiledFloor: the 1/tiles floor and pipelined mode must
// be reported even on the degenerate path.
func TestExplainDegenerateTiledFloor(t *testing.T) {
	e, _ := loadAdd(t)
	a := e.Explain(LoopOptions{Tiles: 4})
	if a.Mode != "pipelined" {
		t.Errorf("Mode = %q with Tiles=4, want pipelined", a.Mode)
	}
	if a.FloorII != 0.25 {
		t.Errorf("FloorII = %v with Tiles=4, want 0.25", a.FloorII)
	}
}

// TestExplainMatchesInitiationInterval: after a real run the summary must be
// the exact (II, Chosen) projection of the full report, and the chosen bound
// must be one of the four candidates.
func TestExplainMatchesInitiationInterval(t *testing.T) {
	e, regs := loadAdd(t)
	opts := LoopOptions{Pipelined: true}
	if _, err := e.RunLoop(regs, opts); err != nil {
		t.Fatal(err)
	}
	a := e.Explain(opts)
	if a.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	ii, bound := e.InitiationInterval(opts)
	if ii != a.II || bound != a.Chosen {
		t.Errorf("InitiationInterval = (%v, %q), Explain = (%v, %q): projections diverged",
			ii, bound, a.II, a.Chosen)
	}
	checkBounds(t, a)
	if len(a.Recurrence) == 0 {
		t.Error("live-out X7 is consumed as a live-in source: want at least one recurrence node")
	}
	for i := 1; i < len(a.Recurrence); i++ {
		p, q := a.Recurrence[i-1], a.Recurrence[i]
		if p.Lat < q.Lat || (p.Lat == q.Lat && p.Node > q.Node) {
			t.Errorf("Recurrence not sorted by (Lat desc, Node asc) at %d: %+v before %+v", i, p, q)
		}
	}
}

// TestExplainCounterSplits: the per-row and per-port splits must tile their
// aggregate counters exactly — nothing double-counted, nothing dropped — and
// the report's heatmaps must reproduce them.
func TestExplainCounterSplits(t *testing.T) {
	e, regs := loadAdd(t)
	if _, err := e.RunLoop(regs, LoopOptions{}); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()

	var rowSum uint64
	for _, n := range c.RowTransfers {
		rowSum += n
	}
	if rowSum != c.NoCTransfers {
		t.Errorf("sum(RowTransfers) = %d, NoCTransfers = %d", rowSum, c.NoCTransfers)
	}
	var waitSum float64
	var grantSum uint64
	for p := range c.PortGrants {
		grantSum += c.PortGrants[p]
		waitSum += c.PortWait[p]
	}
	if grantSum == 0 {
		t.Error("the load must be granted a memory port: sum(PortGrants) = 0")
	}
	if waitSum != c.PortWaitCycles {
		t.Errorf("sum(PortWait) = %v, PortWaitCycles = %v", waitSum, c.PortWaitCycles)
	}
	if c.ActiveCycles <= 0 {
		t.Errorf("ActiveCycles = %v after a completed iteration", c.ActiveCycles)
	}

	a := e.Explain(LoopOptions{})
	if a.ActiveCycles != c.ActiveCycles {
		t.Errorf("report ActiveCycles = %v, counters = %v", a.ActiveCycles, c.ActiveCycles)
	}
	var reportXfers uint64
	for _, r := range a.NoCRows {
		reportXfers += r.Transfers
	}
	if reportXfers != c.NoCTransfers {
		t.Errorf("sum of NoCRows transfers = %d, NoCTransfers = %d", reportXfers, c.NoCTransfers)
	}
	var reportGrants uint64
	for _, p := range a.Ports {
		reportGrants += p.Grants
	}
	if reportGrants != grantSum {
		t.Errorf("sum of Ports grants = %d, counters = %d", reportGrants, grantSum)
	}
	if len(a.PEs) == 0 {
		t.Error("both nodes occupy spatial units: want a non-empty PE heatmap")
	}
}

// TestAttributionJSONByteStable: serializing the same report twice must be
// byte-identical, and rendering must not mutate the report.
func TestAttributionJSONByteStable(t *testing.T) {
	e, regs := loadAdd(t)
	if _, err := e.RunLoop(regs, LoopOptions{Pipelined: true}); err != nil {
		t.Fatal(err)
	}
	a := e.Explain(LoopOptions{Pipelined: true})
	var first, second bytes.Buffer
	if err := a.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	_ = a.Render()
	if err := a.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("WriteJSON is not byte-stable across Render")
	}
	if first.Len() == 0 || first.Bytes()[first.Len()-1] != '\n' {
		t.Error("WriteJSON output must end with a newline")
	}
}
