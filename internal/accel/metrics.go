package accel

import "mesa/internal/obs"

// AddScalars accumulates o's scalar counters into c (per-node and per-edge
// vectors are left untouched). Used to aggregate counters across regions or
// engine swaps for the unified stats report.
func (c *Counters) AddScalars(o *Counters) {
	if o == nil {
		return
	}
	c.Iterations += o.Iterations
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Forwarded += o.Forwarded
	c.Prefetches += o.Prefetches
	c.Coalesced += o.Coalesced
	c.Invalidations += o.Invalidations
	c.PortWaitCycles += o.PortWaitCycles
	c.NoCTransfers += o.NoCTransfers
	c.NoCWaitCycles += o.NoCWaitCycles
	c.LocalTransfers += o.LocalTransfers
	c.BusTransfers += o.BusTransfers
	c.ActiveCycles += o.ActiveCycles
	for i, v := range o.RowTransfers {
		if i >= len(c.RowTransfers) {
			c.RowTransfers = append(c.RowTransfers, v)
			continue
		}
		c.RowTransfers[i] += v
	}
	for i, v := range o.PortGrants {
		if i >= len(c.PortGrants) {
			c.PortGrants = append(c.PortGrants, v)
			continue
		}
		c.PortGrants[i] += v
	}
	for i, v := range o.PortWait {
		if i >= len(c.PortWait) {
			c.PortWait = append(c.PortWait, v)
			continue
		}
		c.PortWait[i] += v
	}
}

// Metrics snapshots the scalar performance counters for the stats report.
func (c *Counters) Metrics() []obs.Metric {
	return []obs.Metric{
		obs.Count("iterations", c.Iterations),
		obs.Count("loads", c.Loads),
		obs.Count("stores", c.Stores),
		obs.Count("forwarded", c.Forwarded),
		obs.Count("prefetches", c.Prefetches),
		obs.Count("coalesced", c.Coalesced),
		obs.Count("invalidations", c.Invalidations),
		obs.M("port_wait_cycles", c.PortWaitCycles),
		obs.Count("noc_transfers", c.NoCTransfers),
		obs.M("noc_wait_cycles", c.NoCWaitCycles),
		obs.Count("local_transfers", c.LocalTransfers),
		obs.Count("bus_transfers", c.BusTransfers),
		obs.M("active_cycles", c.ActiveCycles),
	}
}

// Metrics snapshots the component activity for the stats report.
func (a Activity) Metrics() []obs.Metric {
	return []obs.Metric{
		obs.M("cycles", a.Cycles),
		obs.M("int_alu_cycles", a.IntALU),
		obs.M("fpu_cycles", a.FPU),
		obs.M("noc_cycles", a.NoC),
		obs.M("lsu_cycles", a.LSU),
		obs.Count("ctrl_events", a.CtrlEvents),
		obs.Count("mem_accesses", a.MemAccesses),
		obs.M("pes_configured", a.PEsConfigured),
	}
}
