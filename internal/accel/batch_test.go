package accel

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// runScalarWindows runs the scalar engine through the given windows of
// MaxIterations (the controller's offload pattern) and returns the per-window
// results.
func runScalarWindows(t *testing.T, e *Engine, regs *[isa.NumRegs]uint32, opts LoopOptions, windows []uint64) []*LoopResult {
	t.Helper()
	out := make([]*LoopResult, 0, len(windows))
	for _, w := range windows {
		o := opts
		o.MaxIterations = w
		res, err := e.RunLoop(regs, o)
		if err != nil {
			t.Fatalf("scalar RunLoop: %v", err)
		}
		out = append(out, res)
	}
	return out
}

// assertLoopResultsEqual asserts deep and byte (JSON) equality of two loop
// results, including the attribution report.
func assertLoopResultsEqual(t *testing.T, label string, scalar, batch *LoopResult) {
	t.Helper()
	if !reflect.DeepEqual(scalar, batch) {
		t.Errorf("%s: LoopResult differs\nscalar: %+v\nbatch:  %+v", label, scalar, batch)
	}
	sj, err := json.Marshal(scalar)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(bj) {
		t.Errorf("%s: LoopResult JSON differs\nscalar: %s\nbatch:  %s", label, sj, bj)
	}
}

// TestBatchMatchesScalarLockstep pins the tentpole invariant at the engine
// level: every lane of a BatchEngine produces byte-identical results —
// LoopResult (with attribution), counters, activity, registers, and memory —
// to a scalar Engine running the same lane alone. Lanes are heterogeneous
// (spatial, time-shared, vectorization off, fewer ports) and execution runs
// in two windows so counter accumulation across RunLoop calls is covered too.
func TestBatchMatchesScalarLockstep(t *testing.T) {
	type variant struct {
		name   string
		mut    func(l *BatchLane)
		shared bool // time-shared placement
		opts   LoopOptions
	}
	variants := []variant{
		{name: "spatial", opts: LoopOptions{}},
		{name: "timeshared", shared: true, opts: LoopOptions{}},
		{name: "novec", mut: func(l *BatchLane) {
			cfg := *l.Cfg
			cfg.EnableVectorization = false
			cfg.EnablePrefetch = false
			l.Cfg = &cfg
		}, opts: LoopOptions{Pipelined: true}},
		{name: "fewports", mut: func(l *BatchLane) {
			cfg := *l.Cfg
			cfg.MemPorts = 2
			l.Cfg = &cfg
		}, opts: LoopOptions{Pipelined: true, Tiles: 2}},
	}
	windows := []uint64{100, 150}

	// Scalar reference: one fresh engine per variant.
	scalarRes := make([][]*LoopResult, len(variants))
	scalarRegs := make([][isa.NumRegs]uint32, len(variants))
	scalarEng := make([]*Engine, len(variants))
	for i, v := range variants {
		l, regs := allocLoopLane(t, v.shared)
		if v.mut != nil {
			v.mut(&l)
		}
		e, err := NewEngine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
		if err != nil {
			t.Fatal(err)
		}
		scalarRes[i] = runScalarWindows(t, e, &regs, v.opts, windows)
		scalarRegs[i] = regs
		scalarEng[i] = e
	}

	// Batched: the same variants as lanes of one engine.
	lanes := make([]BatchLane, len(variants))
	batchRegs := make([][isa.NumRegs]uint32, len(variants))
	for i, v := range variants {
		l, regs := allocLoopLane(t, v.shared)
		if v.mut != nil {
			v.mut(&l)
		}
		lanes[i] = l
		batchRegs[i] = regs
	}
	b, err := NewBatchEngine(lanes)
	if err != nil {
		t.Fatal(err)
	}
	for w, win := range windows {
		runs := make([]LaneRun, len(variants))
		for i, v := range variants {
			o := v.opts
			o.MaxIterations = win
			runs[i] = LaneRun{Lane: i, Regs: &batchRegs[i], Opts: o}
		}
		results, err := b.RunLoops(runs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range variants {
			if results[i].Err != nil {
				t.Fatalf("%s window %d: batch lane error: %v", v.name, w, results[i].Err)
			}
			assertLoopResultsEqual(t, v.name, scalarRes[i][w], results[i].Res)
		}
	}
	for i, v := range variants {
		if got, want := batchRegs[i], scalarRegs[i]; got != want {
			t.Errorf("%s: registers differ\nscalar: %v\nbatch:  %v", v.name, want, got)
		}
		sc := copyCounters(scalarEng[i].Counters())
		bc := b.LaneCounters(i)
		if !reflect.DeepEqual(sc, bc) {
			t.Errorf("%s: counters differ\nscalar: %+v\nbatch:  %+v", v.name, sc, bc)
		}
		if sa, ba := scalarEng[i].Activity(), b.LaneActivity(i); sa != ba {
			t.Errorf("%s: activity differs\nscalar: %+v\nbatch:  %+v", v.name, sa, ba)
		}
		if !scalarEng[i].mem.Equal(b.lanes[i].mem) {
			t.Errorf("%s: memory differs at %v", v.name, scalarEng[i].mem.Diff(b.lanes[i].mem, 4))
		}
		sf, bf := scalarEng[i].MeasuredAMAT(), b.LaneMeasuredAMAT(i)
		if sf != bf {
			t.Errorf("%s: MeasuredAMAT differs: scalar %v batch %v", v.name, sf, bf)
		}
		se := scalarEng[i].Explain(LoopOptions{Pipelined: true, Tiles: 1})
		be := b.LaneExplain(i, LoopOptions{Pipelined: true, Tiles: 1})
		if !reflect.DeepEqual(se, be) {
			t.Errorf("%s: Explain differs", v.name)
		}
	}
}

// TestBatchFeedbackMatchesScalar pins the feedback path: applying a lane's
// measured latencies to a graph matches the scalar engine's Feedback.
func TestBatchFeedbackMatchesScalar(t *testing.T) {
	ls, regsS := allocLoopLane(t, false)
	eng, err := NewEngine(ls.Cfg, ls.G, ls.Pos, ls.LoopBranch, ls.Mem, ls.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunLoop(&regsS, LoopOptions{MaxIterations: 50}); err != nil {
		t.Fatal(err)
	}

	lb, regsB := allocLoopLane(t, false)
	b, err := NewBatchEngine([]BatchLane{lb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunLoops([]LaneRun{{Lane: 0, Regs: &regsB, Opts: LoopOptions{MaxIterations: 50}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}

	ns, es, err := eng.Feedback(ls.G)
	if err != nil {
		t.Fatal(err)
	}
	nb, eb, err := b.LaneFeedback(0, lb.G)
	if err != nil {
		t.Fatal(err)
	}
	if ns != nb || es != eb {
		t.Fatalf("feedback counts differ: scalar (%d,%d), batch (%d,%d)", ns, es, nb, eb)
	}
	for i := range ls.G.Nodes {
		if ls.G.Nodes[i].OpLat != lb.G.Nodes[i].OpLat {
			t.Errorf("node i%d OpLat differs after feedback: scalar %v batch %v",
				i, ls.G.Nodes[i].OpLat, lb.G.Nodes[i].OpLat)
		}
	}
	if _, _, err := b.LaneFeedback(0, newGraphOfLen(t)); err == nil {
		t.Error("LaneFeedback accepted a graph of the wrong size")
	}
}

// newGraphOfLen returns a trivially wrong-sized graph for error-path tests.
func newGraphOfLen(t *testing.T) *dfg.Graph {
	t.Helper()
	l, _ := allocLoopLane(t, false)
	g := l.G
	g.Nodes = g.Nodes[:1]
	return g
}

// TestBatchSlotReconfigure pins slot-reuse semantics: after a run completes,
// a slot can be reconfigured with a fresh lane and produce results identical
// to a fresh scalar engine (counters, activity, and prefetch state all reset).
func TestBatchSlotReconfigure(t *testing.T) {
	l0, regs0 := allocLoopLane(t, false)
	b, err := NewBatchEngine([]BatchLane{l0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunLoops([]LaneRun{{Lane: 0, Regs: &regs0, Opts: LoopOptions{MaxIterations: 120}}}); err != nil {
		t.Fatal(err)
	}

	// Reconfigure the same slot with a fresh time-shared lane.
	l1, regs1 := allocLoopLane(t, true)
	if err := b.configureSlot(0, l1); err != nil {
		t.Fatal(err)
	}
	res, err := b.RunLoops([]LaneRun{{Lane: 0, Regs: &regs1, Opts: LoopOptions{MaxIterations: 80}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}

	ls, regsS := allocLoopLane(t, true)
	e, err := NewEngine(ls.Cfg, ls.G, ls.Pos, ls.LoopBranch, ls.Mem, ls.Hier)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.RunLoop(&regsS, LoopOptions{MaxIterations: 80})
	if err != nil {
		t.Fatal(err)
	}
	assertLoopResultsEqual(t, "reconfigured", want, res[0].Res)
	if regs1 != regsS {
		t.Errorf("registers differ after reconfigured run")
	}
	if !reflect.DeepEqual(copyCounters(e.Counters()), b.LaneCounters(0)) {
		t.Errorf("counters differ after reconfigured run")
	}
	if e.Activity() != b.LaneActivity(0) {
		t.Errorf("activity differs after reconfigured run")
	}
}

// TestBatchShapeMismatch asserts that a lane whose graph differs structurally
// from the batch shape is rejected at configuration time.
func TestBatchShapeMismatch(t *testing.T) {
	l0, _ := allocLoopLane(t, false)
	l1, _ := allocLoopLane(t, false)
	l1.G.Nodes[1].Inst.Imm = 2 // different immediate: not the same kernel
	if _, err := NewBatchEngine([]BatchLane{l0, l1}); err == nil {
		t.Fatal("structurally different lane accepted")
	}

	l2, _ := allocLoopLane(t, false)
	l3, _ := allocLoopLane(t, false)
	l3.G.Nodes = l3.G.Nodes[:len(l3.G.Nodes)-1]
	l3.Pos = l3.Pos[:len(l3.Pos)-1]
	if _, err := NewBatchEngine([]BatchLane{l2, l3}); err == nil {
		t.Fatal("shorter lane graph accepted")
	}

	// OpLat differences are explicitly allowed (perf-model weights).
	l4, _ := allocLoopLane(t, false)
	l5, _ := allocLoopLane(t, false)
	l5.G.Nodes[0].OpLat = 99
	if _, err := NewBatchEngine([]BatchLane{l4, l5}); err != nil {
		t.Fatalf("OpLat-only difference rejected: %v", err)
	}
}

// TestBatchStartLoopsValidation covers the API misuse errors.
func TestBatchStartLoopsValidation(t *testing.T) {
	l, regs := allocLoopLane(t, false)
	b, err := NewBatchEngine([]BatchLane{l})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.StartLoops(nil); err == nil {
		t.Error("empty run list accepted")
	}
	if err := b.StartLoops([]LaneRun{{Lane: 5, Regs: &regs}}); err == nil {
		t.Error("out-of-range lane accepted")
	}
	if err := b.StartLoops([]LaneRun{{Lane: 0, Regs: nil}}); err == nil {
		t.Error("nil regs accepted")
	}
	if err := b.StartLoops([]LaneRun{{Lane: 0, Regs: &regs}, {Lane: 0, Regs: &regs}}); err == nil {
		t.Error("duplicate lane accepted")
	}
	if _, err := b.Step(); err == nil {
		t.Error("Step without StartLoops accepted")
	}
	if err := b.StartLoops([]LaneRun{{Lane: 0, Regs: &regs, Opts: LoopOptions{MaxIterations: 5}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.StartLoops([]LaneRun{{Lane: 0, Regs: &regs}}); err == nil {
		t.Error("second StartLoops before Results accepted")
	}
	for {
		left, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if left == 0 {
			break
		}
	}
	if got := b.Results(); len(got) != 1 || got[0].Err != nil {
		t.Fatalf("unexpected results: %+v", got)
	}
}

// TestBatchStepZeroAllocs pins the steady-state batched step at zero heap
// allocations, like the scalar TestRunIterationZeroAllocs: all per-lane
// scratch lives in the engine's SoA blocks or lane-owned arrays.
func TestBatchStepZeroAllocs(t *testing.T) {
	const lanes = 4
	ls := make([]BatchLane, lanes)
	regs := make([][isa.NumRegs]uint32, lanes)
	for i := range ls {
		ls[i], regs[i] = allocLoopLane(t, i%2 == 1)
	}
	b, err := NewBatchEngine(ls)
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]LaneRun, lanes)
	for i := range runs {
		runs[i] = LaneRun{Lane: i, Regs: &regs[i]}
	}
	if err := b.StartLoops(runs); err != nil {
		t.Fatal(err)
	}
	// Warm once so one-time growth (store-buffer backing arrays) is excluded.
	if _, err := b.Step(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := b.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("batched Step allocates %.2f objects/step, want 0", avg)
	}
}

// TestBatchLaneM64 exercises lanes with a structurally identical graph but a
// different backend grid (placements recomputed for the smaller array).
func TestBatchLaneM64(t *testing.T) {
	mk := func() (BatchLane, [isa.NumRegs]uint32) {
		l, regs := allocLoopLane(t, false)
		cfg := M64()
		cfg.EnablePrefetch = true
		cfg.EnableVectorization = true
		l.Cfg = cfg
		l.Pos = rowPlacement(cfg, l.G)
		return l, regs
	}
	ls, regsS := mk()
	e, err := NewEngine(ls.Cfg, ls.G, ls.Pos, ls.LoopBranch, ls.Mem, ls.Hier)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.RunLoop(&regsS, LoopOptions{Pipelined: true, MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}

	l0, regs0 := allocLoopLane(t, false) // M128 lane establishes the shape
	lb, regsB := mk()
	b, err := NewBatchEngine([]BatchLane{l0, lb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunLoops([]LaneRun{
		{Lane: 0, Regs: &regs0, Opts: LoopOptions{MaxIterations: 200}},
		{Lane: 1, Regs: &regsB, Opts: LoopOptions{Pipelined: true, MaxIterations: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Err != nil {
		t.Fatal(res[1].Err)
	}
	assertLoopResultsEqual(t, "m64-lane", want, res[1].Res)
	if regsB != regsS {
		t.Errorf("registers differ on the M64 lane")
	}
}

// TestBatchRunnerConcurrentLanes drives a BatchRunner from one goroutine per
// lane — the controller usage pattern: build an engine, run windows, rebuild
// (reconfiguration), run more windows, read counters, finish — and asserts
// every lane matches a scalar engine run bit for bit. One lane's graph is
// structurally different, forcing the sticky scalar fallback mid-flight, and
// lanes run different window counts so the quorum shrinks while others wait.
func TestBatchRunnerConcurrentLanes(t *testing.T) {
	const lanes = 5
	type laneSpec struct {
		shared   bool
		mismatch bool     // structurally different graph → scalar fallback
		windows  []uint64 // MaxIterations per window, split by a reconfigure
	}
	specs := []laneSpec{
		{windows: []uint64{100, 50, 150}},
		{shared: true, windows: []uint64{200}},
		{windows: []uint64{25, 25}},
		{mismatch: true, windows: []uint64{100, 100}},
		{shared: true, windows: []uint64{60, 40, 60, 40}},
	}

	mkLane := func(s laneSpec) (BatchLane, [isa.NumRegs]uint32) {
		l, regs := allocLoopLane(t, s.shared)
		if s.mismatch {
			l.G.Nodes[1].Inst.Imm = 3
		}
		return l, regs
	}

	// Scalar reference, sequential.
	wantRes := make([][]*LoopResult, lanes)
	wantRegs := make([][isa.NumRegs]uint32, lanes)
	wantCounters := make([]*Counters, lanes)
	wantActivity := make([]Activity, lanes)
	for i, s := range specs {
		l, regs := mkLane(s)
		var res []*LoopResult
		var e *Engine
		for w, win := range s.windows {
			if w == 0 || w == len(s.windows)/2 {
				// Fresh engine at the start and once mid-run (the controller
				// rebuilds engines on reconfiguration; counters restart).
				var err error
				e, err = NewEngine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
				if err != nil {
					t.Fatal(err)
				}
			}
			r, err := e.RunLoop(&regs, LoopOptions{Pipelined: w%2 == 1, MaxIterations: win})
			if err != nil {
				t.Fatal(err)
			}
			res = append(res, r)
		}
		wantRes[i] = res
		wantRegs[i] = regs
		wantCounters[i] = copyCounters(e.Counters())
		wantActivity[i] = e.Activity()
	}

	// Batched, one goroutine per lane.
	r := NewBatchRunner(lanes)
	gotRes := make([][]*LoopResult, lanes)
	gotRegs := make([][isa.NumRegs]uint32, lanes)
	gotCounters := make([]*Counters, lanes)
	gotActivity := make([]Activity, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s laneSpec) {
			defer wg.Done()
			h := r.Lane(i)
			defer h.Finish()
			l, regs := mkLane(s)
			var eng *BatchLaneEngine
			for w, win := range s.windows {
				if w == 0 || w == len(s.windows)/2 {
					var err error
					eng, err = h.Engine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
					if err != nil {
						errs[i] = err
						return
					}
				}
				res, err := eng.RunLoop(&regs, LoopOptions{Pipelined: w%2 == 1, MaxIterations: win})
				if err != nil {
					errs[i] = err
					return
				}
				gotRes[i] = append(gotRes[i], res)
			}
			gotRegs[i] = regs
			gotCounters[i] = eng.Counters()
			gotActivity[i] = eng.Activity()
		}(i, s)
	}
	wg.Wait()

	for i, s := range specs {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if s.mismatch {
			if !r.Lane(i).scalar {
				t.Errorf("lane %d: mismatched graph did not fall back to scalar", i)
			}
		} else if r.Lane(i).scalar {
			t.Errorf("lane %d: unexpectedly fell back to scalar", i)
		}
		for w := range s.windows {
			assertLoopResultsEqual(t, fmt.Sprintf("lane %d window %d", i, w), wantRes[i][w], gotRes[i][w])
		}
		if gotRegs[i] != wantRegs[i] {
			t.Errorf("lane %d: registers differ", i)
		}
		if !reflect.DeepEqual(wantCounters[i], gotCounters[i]) {
			t.Errorf("lane %d: counters differ", i)
		}
		if wantActivity[i] != gotActivity[i] {
			t.Errorf("lane %d: activity differs", i)
		}
	}
}

// TestBatchRunnerDetachKeepsCounters pins the superseded-engine contract:
// after a handle builds a new engine, the old engine's counters and activity
// remain readable (the controller's swapEngine reads the previous engine
// after constructing its replacement).
func TestBatchRunnerDetachKeepsCounters(t *testing.T) {
	r := NewBatchRunner(1)
	h := r.Lane(0)
	defer h.Finish()
	l, regs := allocLoopLane(t, false)
	e1, err := h.Engine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RunLoop(&regs, LoopOptions{MaxIterations: 40}); err != nil {
		t.Fatal(err)
	}
	before := e1.Counters()
	beforeAct := e1.Activity()

	e2, err := h.Engine(l.Cfg, l.G, l.Pos, l.LoopBranch, l.Mem, l.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, e1.Counters()) {
		t.Error("detached counters changed after reconfiguration")
	}
	if beforeAct != e1.Activity() {
		t.Error("detached activity changed after reconfiguration")
	}
	if _, err := e1.RunLoop(&regs, LoopOptions{MaxIterations: 1}); err == nil {
		t.Error("RunLoop on superseded engine succeeded")
	}
	if _, err := e2.RunLoop(&regs, LoopOptions{MaxIterations: 10}); err != nil {
		t.Fatal(err)
	}
	if got := e2.Counters(); got.Iterations != 10 {
		t.Errorf("new engine counters: %d iterations, want 10", got.Iterations)
	}
}
