package accel

import (
	"testing"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// stridedLoadLoop builds a loop streaming over an array: one load with a
// pointer-bump induction and the closing branch.
func stridedLoadLoop(stride int32) (*dfg.Graph, dfg.NodeID) {
	g := dfg.NewGraph()
	ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.X5, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone}, 3)
	ld.LiveIn[0] = isa.X10
	ldID := g.Add(ld)
	bump := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X10, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: stride}, 1)
	bump.LiveIn[0] = isa.X10
	bumpID := g.Add(bump)
	ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X6, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
	ind.LiveIn[0] = isa.X6
	indID := g.Add(ind)
	br := newNode(isa.Inst{Op: isa.OpBLT, Rd: isa.RegNone, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone, Imm: -12}, 1)
	br.Src[0] = indID
	br.LiveIn[1] = isa.X7
	brID := g.Add(br)
	g.LiveOut[isa.X10] = bumpID
	g.LiveOut[isa.X6] = indID
	_ = ldID
	return g, brID
}

func runStrided(t *testing.T, cfg *Config, iters uint32) (*LoopResult, *Engine) {
	t.Helper()
	g, brID := stridedLoadLoop(64) // one cache line per iteration
	pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 1}}
	memory := mem.NewMemory()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	e, err := NewEngine(cfg, g, pos, brID, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X10] = 0x100000
	regs[isa.X7] = iters
	res, err := e.RunLoop(&regs, LoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res, e
}

// TestStridedPrefetchReducesLatency: with prefetching on, the per-line cold
// misses of a streaming loop disappear after the stride locks in.
func TestStridedPrefetchReducesLatency(t *testing.T) {
	on := M128()
	off := M128()
	off.EnablePrefetch = false
	resOn, engOn := runStrided(t, on, 512)
	resOff, _ := runStrided(t, off, 512)
	if engOn.Counters().Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if resOn.SerialCycles >= resOff.SerialCycles {
		t.Errorf("prefetch did not help: %.0f vs %.0f cycles",
			resOn.SerialCycles, resOff.SerialCycles)
	}
}

// TestVectorizationCoalescesSameLine: two loads of the same cache line in
// one iteration consume a single port slot when vectorization is enabled.
func TestVectorizationCoalescesSameLine(t *testing.T) {
	g := dfg.NewGraph()
	// Two loads off the same base, adjacent words (same 64-byte line).
	for k := 0; k < 2; k++ {
		ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.IntReg(5 + k), Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: int32(4 * k)}, 3)
		ld.LiveIn[0] = isa.X10
		g.Add(ld)
	}
	g.LiveOut[isa.X5] = 0
	g.LiveOut[isa.X6] = 1

	cfg := M128()
	cfg.EnableVectorization = true
	cfg.MemPorts = 1
	pos := []noc.Coord{{Row: 0, Col: -1}, {Row: 1, Col: -1}}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	e, err := NewEngine(cfg, g, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.X10] = 0x4000
	if _, err := e.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	if e.Counters().Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1", e.Counters().Coalesced)
	}

	// Different lines must NOT coalesce.
	g2 := dfg.NewGraph()
	for k := 0; k < 2; k++ {
		ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.IntReg(5 + k), Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: int32(64 * k)}, 3)
		ld.LiveIn[0] = isa.X10
		g2.Add(ld)
	}
	g2.LiveOut[isa.X5] = 0
	e2, err := NewEngine(cfg, g2, pos, dfg.None, mem.NewMemory(), hier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunIteration(&regs); err != nil {
		t.Fatal(err)
	}
	if e2.Counters().Coalesced != 0 {
		t.Errorf("cross-line accesses coalesced: %d", e2.Counters().Coalesced)
	}
}

// TestVectorizationImprovesII: a port-starved parallel loop gains throughput
// from coalescing.
func TestVectorizationImprovesII(t *testing.T) {
	build := func(vec bool) float64 {
		g := dfg.NewGraph()
		var last dfg.NodeID
		for k := 0; k < 4; k++ {
			ld := newNode(isa.Inst{Op: isa.OpLW, Rd: isa.IntReg(5 + k), Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: int32(4 * k)}, 3)
			ld.LiveIn[0] = isa.X10
			last = g.Add(ld)
		}
		bump := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X10, Rs1: isa.X10, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 16}, 1)
		bump.LiveIn[0] = isa.X10
		bumpID := g.Add(bump)
		ind := newNode(isa.Inst{Op: isa.OpADDI, Rd: isa.X6, Rs1: isa.X6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1}, 1)
		ind.LiveIn[0] = isa.X6
		indID := g.Add(ind)
		br := newNode(isa.Inst{Op: isa.OpBLT, Rd: isa.RegNone, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone, Imm: -24}, 1)
		br.Src[0] = indID
		br.LiveIn[1] = isa.X7
		brID := g.Add(br)
		g.LiveOut[isa.X10] = bumpID
		g.LiveOut[isa.X6] = indID
		_ = last

		cfg := M128()
		cfg.MemPorts = 2
		cfg.EnableVectorization = vec
		pos := []noc.Coord{
			{Row: 0, Col: -1}, {Row: 1, Col: -1}, {Row: 2, Col: -1}, {Row: 3, Col: -1},
			{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 1},
		}
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		e, err := NewEngine(cfg, g, pos, brID, mem.NewMemory(), hier)
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]uint32
		regs[isa.X10] = 0x100000
		regs[isa.X7] = 256
		res, err := e.RunLoop(&regs, LoopOptions{Pipelined: true, Tiles: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.II
	}
	iiVec := build(true)
	iiNo := build(false)
	if iiVec >= iiNo {
		t.Errorf("vectorization did not improve II: %.3f vs %.3f", iiVec, iiNo)
	}
}
