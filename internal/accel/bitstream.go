package accel

import (
	"fmt"
	"math"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/noc"
)

// Bitstream is the serialized accelerator configuration MESA's ConfigBlock
// streams out in task T3: per-PE operation and routing control bits. The
// stream fully describes a mapped region — an accelerator loaded from it
// behaves identically to one configured directly (tested by round-trip
// execution).
//
// Layout: a 2-word header followed by 4 words per node and 1 word per
// live-out register binding.
//
//	header0: magic(16) | version(8) | reserved(8) | nodeCount(16) | liveOuts(16)
//	header1: rows(16) | cols(16) | loopBranch(16) | reserved(16)
//	node w0: op(8) | flags(8) | row(s16) | col(s16) | predLiveIn(8) | liveIn2(8)
//	node w1: imm(32) | src0(16) | src1(16)
//	node w2: src2(16) | memDep(16) | predDep(16) | ctrlDep(16)
//	node w3: liveIn0(8) | liveIn1(8) | opLatBits(32) | reserved(16)
//	liveout: reg(8) | node(16) | reserved(40)
type Bitstream []uint64

const (
	bsMagic   = 0x4D45 // "ME"
	bsVersion = 1

	bsNone16 = 0xFFFF
	bsNone8  = 0xFF

	bsFlagFwd        = 1 << 0
	bsFlagLoopBranch = 1 << 1
)

func idx16(id dfg.NodeID) uint64 {
	if id == dfg.None {
		return bsNone16
	}
	return uint64(uint16(id))
}

func reg8(r isa.Reg) uint64 {
	if r == isa.RegNone {
		return bsNone8
	}
	return uint64(r)
}

func toIdx(v uint64) dfg.NodeID {
	if v == bsNone16 {
		return dfg.None
	}
	return dfg.NodeID(v)
}

func toReg(v uint64) isa.Reg {
	if v == bsNone8 {
		return isa.RegNone
	}
	return isa.Reg(v)
}

// EncodeConfig serializes a mapped region into the configuration bitstream.
func EncodeConfig(g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID) (Bitstream, error) {
	if len(pos) != g.Len() {
		return nil, fmt.Errorf("accel: placement has %d entries for %d nodes", len(pos), g.Len())
	}
	if g.Len() >= bsNone16 {
		return nil, fmt.Errorf("accel: region of %d nodes exceeds bitstream capacity", g.Len())
	}
	bs := make(Bitstream, 0, 2+4*g.Len()+len(g.LiveOut))
	bs = append(bs,
		uint64(bsMagic)<<48|uint64(bsVersion)<<40|uint64(g.Len())<<16|uint64(len(g.LiveOut)),
		idx16(loopBranch)<<16,
	)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		flags := uint64(0)
		if n.Fwd {
			flags |= bsFlagFwd
		}
		if dfg.NodeID(i) == loopBranch {
			flags |= bsFlagLoopBranch
		}
		row := uint64(uint16(int16(pos[i].Row)))
		col := uint64(uint16(int16(pos[i].Col)))
		bs = append(bs,
			uint64(n.Inst.Op)<<56|flags<<48|row<<32|col<<16|
				reg8(n.PredLiveIn)<<8|reg8(n.LiveIn[2]),
			uint64(uint32(n.Inst.Imm))<<32|idx16(n.Src[0])<<16|idx16(n.Src[1]),
			idx16(n.Src[2])<<48|idx16(n.MemDep)<<32|idx16(n.PredDep)<<16|idx16(n.CtrlDep),
			reg8(n.LiveIn[0])<<56|reg8(n.LiveIn[1])<<48|uint64(uint32(float32bits(n.OpLat)))<<16,
		)
	}
	for r, id := range g.LiveOut {
		bs = append(bs, reg8(r)<<56|idx16(id)<<40)
	}
	return bs, nil
}

// DecodeConfig reconstructs a mapped region from a configuration bitstream.
func DecodeConfig(bs Bitstream) (*dfg.Graph, []noc.Coord, dfg.NodeID, error) {
	if len(bs) < 2 {
		return nil, nil, dfg.None, fmt.Errorf("accel: bitstream too short")
	}
	if bs[0]>>48 != bsMagic {
		return nil, nil, dfg.None, fmt.Errorf("accel: bad bitstream magic %#x", bs[0]>>48)
	}
	if v := bs[0] >> 40 & 0xFF; v != bsVersion {
		return nil, nil, dfg.None, fmt.Errorf("accel: unsupported bitstream version %d", v)
	}
	nodes := int(bs[0] >> 16 & 0xFFFF)
	liveOuts := int(bs[0] & 0xFFFF)
	if len(bs) != 2+4*nodes+liveOuts {
		return nil, nil, dfg.None, fmt.Errorf("accel: bitstream length %d != expected %d", len(bs), 2+4*nodes+liveOuts)
	}
	loopBranch := toIdx(bs[1] >> 16 & 0xFFFF)

	g := dfg.NewGraph()
	pos := make([]noc.Coord, nodes)
	for i := 0; i < nodes; i++ {
		w0 := bs[2+4*i]
		w1 := bs[2+4*i+1]
		w2 := bs[2+4*i+2]
		w3 := bs[2+4*i+3]
		n := dfg.Node{
			Inst: isa.Inst{
				Op:  isa.Op(w0 >> 56),
				Rd:  isa.RegNone,
				Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone,
				Imm: int32(uint32(w1 >> 32)),
			},
			OpLat:      float64(float32frombits(uint32(w3 >> 16))),
			Src:        [3]dfg.NodeID{toIdx(w1 >> 16 & 0xFFFF), toIdx(w1 & 0xFFFF), toIdx(w2 >> 48 & 0xFFFF)},
			LiveIn:     [3]isa.Reg{toReg(w3 >> 56), toReg(w3 >> 48 & 0xFF), toReg(w0 & 0xFF)},
			MemDep:     toIdx(w2 >> 32 & 0xFFFF),
			PredDep:    toIdx(w2 >> 16 & 0xFFFF),
			CtrlDep:    toIdx(w2 & 0xFFFF),
			PredLiveIn: toReg(w0 >> 8 & 0xFF),
			Fwd:        w0>>48&bsFlagFwd != 0,
		}
		pos[i] = noc.Coord{Row: int(int16(w0 >> 32 & 0xFFFF)), Col: int(int16(w0 >> 16 & 0xFFFF))}
		g.Add(n)
	}
	for i := 0; i < liveOuts; i++ {
		w := bs[2+4*nodes+i]
		g.LiveOut[toReg(w>>56)] = toIdx(w >> 40 & 0xFFFF)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, dfg.None, fmt.Errorf("accel: decoded graph invalid: %w", err)
	}
	return g, pos, loopBranch, nil
}

// Words reports the stream length in 64-bit configuration words.
func (b Bitstream) Words() int { return len(b) }

// Bytes serializes the stream little-endian (for size accounting and I/O).
func (b Bitstream) Bytes() []byte {
	out := make([]byte, 8*len(b))
	for i, w := range b {
		for k := 0; k < 8; k++ {
			out[8*i+k] = byte(w >> (8 * k))
		}
	}
	return out
}

func float32bits(f float64) uint32     { return math.Float32bits(float32(f)) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
