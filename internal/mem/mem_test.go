package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mesa/internal/isa"
)

func TestMemoryWordRoundTrip(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x1000, 0xDEADBEEF)
	if got := m.LoadWord(0x1000); got != 0xDEADBEEF {
		t.Errorf("word = %#x", got)
	}
	// Little-endian byte order.
	if m.LoadByte(0x1000) != 0xEF || m.LoadByte(0x1003) != 0xDE {
		t.Error("byte order is not little-endian")
	}
	// Unwritten memory reads zero.
	if m.LoadWord(0x9999000) != 0 {
		t.Error("unwritten memory should read zero")
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles the first page boundary
	m.StoreWord(addr, 0x11223344)
	if got := m.LoadWord(addr); got != 0x11223344 {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestTypedLoadsStores(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x100, 0x80FF7F01)
	cases := []struct {
		op   isa.Op
		addr uint32
		want uint32
	}{
		{isa.OpLB, 0x100, 1},
		{isa.OpLB, 0x103, 0xFFFFFF80},
		{isa.OpLBU, 0x103, 0x80},
		{isa.OpLH, 0x100, 0x7F01},
		{isa.OpLH, 0x102, 0xFFFF80FF},
		{isa.OpLHU, 0x102, 0x80FF},
		{isa.OpLW, 0x100, 0x80FF7F01},
	}
	for _, c := range cases {
		got, err := m.Load(c.op, c.addr)
		if err != nil || got != c.want {
			t.Errorf("%v@%#x = %#x (%v), want %#x", c.op, c.addr, got, err, c.want)
		}
	}
	if err := m.Store(isa.OpSB, 0x100, 0xAB); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadWord(0x100); got != 0x80FF7FAB {
		t.Errorf("after sb: %#x", got)
	}
	if _, err := m.Load(isa.OpADD, 0); err == nil {
		t.Error("Load should reject non-loads")
	}
	if err := m.Store(isa.OpADD, 0, 0); err == nil {
		t.Error("Store should reject non-stores")
	}
}

func TestMemoryF32(t *testing.T) {
	m := NewMemory()
	m.WriteF32s(0x200, []float32{1.5, -2.25, 3})
	got := m.ReadF32s(0x200, 3)
	if got[0] != 1.5 || got[1] != -2.25 || got[2] != 3 {
		t.Errorf("f32 round trip = %v", got)
	}
}

func TestMemoryCloneAndDiff(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x40, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.StoreByte(0x41, 9)
	if m.Equal(c) {
		t.Fatal("diff not detected")
	}
	d := m.Diff(c, 10)
	if len(d) != 1 || d[0] != 0x41 {
		t.Errorf("diff = %v", d)
	}
}

// Property: word store/load round-trips at arbitrary addresses.
func TestMemoryQuickWordRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0x0) {
		t.Error("cold access should miss")
	}
	if !c.Lookup(0x4) {
		t.Error("same line should hit")
	}
	if c.Stats().Misses != 1 || c.Stats().Accesses != 2 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, 8 sets of 64B lines: addresses 0, 1024, 2048 map to set 0.
	c, err := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Lookup(0)    // miss, install
	c.Lookup(1024) // miss, install
	c.Lookup(0)    // hit: 1024 becomes LRU
	c.Lookup(2048) // miss, evicts 1024
	if !c.Lookup(0) {
		t.Error("0 should still be resident")
	}
	if c.Lookup(1024) {
		t.Error("1024 should have been evicted (LRU)")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, Ways: 1, LineBytes: 64},
		{Name: "nonpow2-sets", SizeBytes: 3 * 64, Ways: 1, LineBytes: 64},
		{Name: "nonpow2-line", SizeBytes: 960, Ways: 1, LineBytes: 60},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %q should be rejected", cfg.Name)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := MustHierarchy(DefaultHierarchy())
	cfg := h.Config()
	cold := h.AccessLatency(0x100)
	wantCold := cfg.L1.HitLatency + cfg.L2.HitLatency + cfg.DRAMLatency
	if cold != wantCold {
		t.Errorf("cold access = %d, want %d", cold, wantCold)
	}
	warm := h.AccessLatency(0x104)
	if warm != cfg.L1.HitLatency {
		t.Errorf("warm access = %d, want %d", warm, cfg.L1.HitLatency)
	}
	if amat := h.AMAT(); amat <= float64(cfg.L1.HitLatency) || amat >= float64(wantCold) {
		t.Errorf("AMAT = %f out of range", amat)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h := MustHierarchy(DefaultHierarchy())
	h.Prefetch(0x4000)
	if got := h.AccessLatency(0x4000); got != h.Config().L1.HitLatency {
		t.Errorf("prefetched access = %d, want L1 hit", got)
	}
}

func TestHierarchyL2Capture(t *testing.T) {
	h := MustHierarchy(DefaultHierarchy())
	// Touch more lines than fit in L1 (64KB / 64B = 1024 lines) but fewer
	// than L2 capacity; a second sweep should hit L2, not DRAM.
	n := uint32(4096)
	for i := uint32(0); i < n; i++ {
		h.AccessLatency(i * 64)
	}
	cfg := h.Config()
	lat := h.AccessLatency(0)
	if lat != cfg.L1.HitLatency+cfg.L2.HitLatency {
		t.Errorf("second sweep = %d, want L2 hit %d", lat, cfg.L1.HitLatency+cfg.L2.HitLatency)
	}
}

func TestAccessBytes(t *testing.T) {
	if AccessBytes(isa.OpLB) != 1 || AccessBytes(isa.OpSH) != 2 || AccessBytes(isa.OpLW) != 4 || AccessBytes(isa.OpFSW) != 4 {
		t.Error("AccessBytes wrong")
	}
}
