// Package mem provides the memory substrate shared by all execution engines:
// a sparse byte-addressable functional memory and a cache-hierarchy timing
// model (the stand-in for the paper's 64KB L1 / 8MB L2 simulated system).
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mesa/internal/isa"
)

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse little-endian byte-addressable memory. The zero value
// is not usable; call NewMemory.
//
// Memory is not safe for concurrent use: even loads update the one-entry
// page cache. Every simulation owns its memory exclusively.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	// One-entry page cache: kernels access memory with high spatial
	// locality, so nearly every access lands on the previous access's page.
	// Pages are never removed, so the cache needs no invalidation.
	lastPN   uint32
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory. All bytes read as zero until written.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	if p := m.lastPage; p != nil && pn == m.lastPN {
		return p
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// LoadWord reads a 32-bit little-endian word. Words that stay within one
// page — every aligned access — take a single page lookup.
func (m *Memory) LoadWord(addr uint32) uint32 {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// StoreWord writes a 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadHalf reads a 16-bit little-endian halfword.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	if off := addr & (pageSize - 1); off <= pageSize-2 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(p[off:])
	}
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	if off := addr & (pageSize - 1); off <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr, true)[off:], v)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// LoadF32 reads an IEEE-754 single.
func (m *Memory) LoadF32(addr uint32) float32 {
	return math.Float32frombits(m.LoadWord(addr))
}

// StoreF32 writes an IEEE-754 single.
func (m *Memory) StoreF32(addr uint32, v float32) {
	m.StoreWord(addr, math.Float32bits(v))
}

// Load performs a typed load for the given load opcode, returning the value
// as it would appear in a 32-bit register (sign- or zero-extended).
func (m *Memory) Load(op isa.Op, addr uint32) (uint32, error) {
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(m.LoadByte(addr)))), nil
	case isa.OpLBU:
		return uint32(m.LoadByte(addr)), nil
	case isa.OpLH:
		return uint32(int32(int16(m.LoadHalf(addr)))), nil
	case isa.OpLHU:
		return uint32(m.LoadHalf(addr)), nil
	case isa.OpLW, isa.OpFLW:
		return m.LoadWord(addr), nil
	}
	return 0, fmt.Errorf("mem: %v is not a load", op)
}

// Store performs a typed store for the given store opcode.
func (m *Memory) Store(op isa.Op, addr uint32, v uint32) error {
	switch op {
	case isa.OpSB:
		m.StoreByte(addr, byte(v))
	case isa.OpSH:
		m.StoreHalf(addr, uint16(v))
	case isa.OpSW, isa.OpFSW:
		m.StoreWord(addr, v)
	default:
		return fmt.Errorf("mem: %v is not a store", op)
	}
	return nil
}

// AccessBytes reports the width in bytes of a memory operation.
func AccessBytes(op isa.Op) uint32 {
	switch op {
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2
	}
	return 4
}

// WriteBytes copies a byte slice into memory at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// WriteWords copies 32-bit words into memory at addr.
func (m *Memory) WriteWords(addr uint32, words []uint32) {
	for i, w := range words {
		m.StoreWord(addr+uint32(4*i), w)
	}
}

// WriteF32s copies float32 values into memory at addr.
func (m *Memory) WriteF32s(addr uint32, vals []float32) {
	for i, f := range vals {
		m.StoreF32(addr+uint32(4*i), f)
	}
}

// ReadF32s reads n float32 values starting at addr.
func (m *Memory) ReadF32s(addr uint32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.LoadF32(addr + uint32(4*i))
	}
	return out
}

// ReadWords reads n 32-bit words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.LoadWord(addr + uint32(4*i))
	}
	return out
}

// Clone returns a deep copy, used to run the same initial state through
// different execution engines for differential testing.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Diff returns up to max addresses whose bytes differ between m and o.
func (m *Memory) Diff(o *Memory, max int) []uint32 {
	var addrs []uint32
	pns := make(map[uint32]bool)
	for pn := range m.pages {
		pns[pn] = true
	}
	for pn := range o.pages {
		pns[pn] = true
	}
	sorted := make([]uint32, 0, len(pns))
	for pn := range pns {
		sorted = append(sorted, pn)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, pn := range sorted {
		base := pn << pageBits
		for off := uint32(0); off < pageSize; off++ {
			if m.LoadByte(base+off) != o.LoadByte(base+off) {
				addrs = append(addrs, base+off)
				if len(addrs) >= max {
					return addrs
				}
			}
		}
	}
	return addrs
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool { return len(m.Diff(o, 1)) == 0 }
