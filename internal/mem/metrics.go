package mem

import "mesa/internal/obs"

// Metrics snapshots one cache level's counters for the stats report.
func (s CacheStats) Metrics(prefix string) []obs.Metric {
	return []obs.Metric{
		obs.Count(prefix+"_accesses", s.Accesses),
		obs.Count(prefix+"_misses", s.Misses),
		obs.M(prefix+"_miss_rate", s.MissRate()),
	}
}

// Metrics snapshots the hierarchy's measured behaviour — per-level access
// and miss counters plus the AMAT the optimizer's memory model consumes.
func (h *Hierarchy) Metrics() []obs.Metric {
	ms := []obs.Metric{
		obs.Count("accesses", h.accesses),
		obs.M("amat", h.AMAT()),
	}
	ms = append(ms, h.L1.Stats().Metrics("l1")...)
	ms = append(ms, h.L2.Stats().Metrics("l2")...)
	return ms
}
