package mem

import "fmt"

// CacheConfig parameterizes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int // cycles on hit (includes tag check + data)
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate checks structural sanity.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %q size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("mem: cache %q set count %d not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// CacheStats accumulates access counters.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns the number of hits.
func (s CacheStats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRate returns misses/accesses (0 if no accesses).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag   uint32
	valid bool
	lru   uint64
}

// Cache is one level of a timing-only cache model with true LRU replacement.
// It tracks only tags: data correctness is the functional Memory's job.
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	clock uint64
	stats CacheStats

	setMask   uint32
	lineShift uint
}

// NewCache builds a cache level from its configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	sets := make([][]cacheLine, nsets)
	lines := make([]cacheLine, nsets*cfg.Ways)
	for i := range sets {
		sets[i], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg: cfg, sets: sets,
		setMask: uint32(nsets - 1), lineShift: shift,
	}, nil
}

// Lookup accesses the cache for addr, updating LRU state, and reports
// whether it hit. A miss installs the line.
func (c *Cache) Lookup(addr uint32) bool {
	c.clock++
	c.stats.Accesses++
	tag := addr >> c.lineShift
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
	return false
}

// Contains reports whether addr's line is present without touching LRU or
// statistics (used by prefetch heuristics).
func (c *Cache) Contains(addr uint32) bool {
	tag := addr >> c.lineShift
	for _, l := range c.sets[tag&c.setMask] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Touch installs addr's line without counting an access (prefetch).
func (c *Cache) Touch(addr uint32) {
	if c.Contains(addr) {
		return
	}
	c.clock++
	tag := addr >> c.lineShift
	set := c.sets[tag&c.setMask]
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
}

// Stats returns the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
	c.clock = 0
	c.stats = CacheStats{}
}

// HierarchyConfig describes the simulated memory system: private L1D, shared
// L2, and DRAM. Defaults follow the paper's evaluation setup (64KB L1,
// unified 8MB L2).
type HierarchyConfig struct {
	L1          CacheConfig
	L2          CacheConfig
	DRAMLatency int
}

// DefaultHierarchy returns the paper's memory configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:          CacheConfig{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, HitLatency: 3},
		L2:          CacheConfig{Name: "L2", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, HitLatency: 18},
		DRAMLatency: 120,
	}
}

// Hierarchy is a two-level cache timing model in front of DRAM.
type Hierarchy struct {
	cfg HierarchyConfig
	L1  *Cache
	L2  *Cache

	accesses    uint64
	totalCycles uint64
}

// NewHierarchy builds the memory timing model.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := NewCache(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.DRAMLatency <= 0 {
		return nil, fmt.Errorf("mem: non-positive DRAM latency %d", cfg.DRAMLatency)
	}
	return &Hierarchy{cfg: cfg, L1: l1, L2: l2}, nil
}

// MustHierarchy builds the memory timing model and panics on config errors.
func MustHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// AccessLatency simulates one access at addr and returns its total latency
// in cycles.
func (h *Hierarchy) AccessLatency(addr uint32) int {
	h.accesses++
	lat := h.cfg.L1.HitLatency
	if !h.L1.Lookup(addr) {
		lat += h.cfg.L2.HitLatency
		if !h.L2.Lookup(addr) {
			lat += h.cfg.DRAMLatency
		}
	}
	h.totalCycles += uint64(lat)
	return lat
}

// Prefetch pulls addr's line into both levels without charging latency,
// modeling a timely hardware prefetch.
func (h *Hierarchy) Prefetch(addr uint32) {
	h.L1.Touch(addr)
	h.L2.Touch(addr)
}

// AMAT returns the measured average memory access time in cycles.
func (h *Hierarchy) AMAT() float64 {
	if h.accesses == 0 {
		return float64(h.cfg.L1.HitLatency)
	}
	return float64(h.totalCycles) / float64(h.accesses)
}

// Accesses returns the number of timed accesses.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Reset clears all cache contents and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.accesses = 0
	h.totalCycles = 0
}
