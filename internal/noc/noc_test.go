package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshLatency(t *testing.T) {
	m := Mesh{}
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{0, 1}, 1},
		{Coord{0, 0}, Coord{1, 1}, 2},
		{Coord{2, 3}, Coord{5, 1}, 5},
	}
	for _, c := range cases {
		if got := m.Latency(c.a, c.b); got != c.want {
			t.Errorf("mesh %v->%v = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRowSliceLatency(t *testing.T) {
	r := DefaultRowSlice()
	if got := r.Latency(Coord{2, 0}, Coord{2, 7}); got != 1 {
		t.Errorf("in-row = %d, want 1", got)
	}
	if got := r.Latency(Coord{0, 0}, Coord{1, 0}); got != 3 {
		t.Errorf("cross-row = %d, want 3", got)
	}
	if got := r.Latency(Coord{1, 1}, Coord{1, 1}); got != 0 {
		t.Errorf("self = %d, want 0", got)
	}
}

func TestHalfRingLatency(t *testing.T) {
	h := DefaultHalfRing()
	// Immediate neighbors ride direct links: 1 cycle.
	if got := h.Latency(Coord{3, 3}, Coord{3, 4}); got != 1 {
		t.Errorf("neighbor = %d, want 1", got)
	}
	// Diagonal neighbors: two local hops.
	if got := h.Latency(Coord{3, 3}, Coord{4, 4}); got != 2 {
		t.Errorf("diagonal = %d, want 2", got)
	}
	// Long distance uses the NoC: inject + hops.
	far := h.Latency(Coord{0, 0}, Coord{0, 7})
	if far != h.InjectLat+2*h.RouterLat { // ceil(7/4)=2 slices
		t.Errorf("far = %d", far)
	}
	if !h.UsesNoC(Coord{0, 0}, Coord{0, 7}) {
		t.Error("long transfer should use the NoC")
	}
	if h.UsesNoC(Coord{0, 0}, Coord{0, 1}) || h.UsesNoC(Coord{2, 2}, Coord{2, 2}) {
		t.Error("local transfers must not use the NoC")
	}
}

func TestIdealLatency(t *testing.T) {
	if (Ideal{}).Latency(Coord{0, 0}, Coord{63, 7}) != 0 {
		t.Error("ideal interconnect must be free")
	}
}

// Properties: all latencies are non-negative, symmetric, and zero iff the
// endpoints coincide (for the distance-based models).
func TestInterconnectProperties(t *testing.T) {
	ics := []Interconnect{Mesh{}, DefaultRowSlice(), DefaultHalfRing()}
	f := func(r1, c1, r2, c2 uint8) bool {
		a := Coord{Row: int(r1 % 64), Col: int(c1 % 8)}
		b := Coord{Row: int(r2 % 64), Col: int(c2 % 8)}
		for _, ic := range ics {
			l1, l2 := ic.Latency(a, b), ic.Latency(b, a)
			if l1 < 0 || l1 != l2 {
				return false
			}
			if a == b && l1 != 0 {
				return false
			}
			if a != b && l1 == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: mesh latency satisfies the triangle inequality.
func TestMeshTriangleInequality(t *testing.T) {
	m := Mesh{}
	f := func(r1, c1, r2, c2, r3, c3 uint8) bool {
		a := Coord{int(r1), int(c1)}
		b := Coord{int(r2), int(c2)}
		c := Coord{int(r3), int(c3)}
		return m.Latency(a, c) <= m.Latency(a, b)+m.Latency(b, c)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInterconnectNames(t *testing.T) {
	if (Mesh{}).Name() != "mesh" || DefaultHalfRing().Name() != "halfring" ||
		DefaultRowSlice().Name() != "rowslice" || (Ideal{}).Name() != "ideal" {
		t.Error("interconnect names wrong")
	}
}
