// Package noc models the point-to-point transfer latency of accelerator
// interconnects. MESA is backend-agnostic: it only requires that the latency
// between any two PE coordinates can be computed quickly (paper §3.3), so
// each interconnect is a small pure function. The accelerator's execution
// engine layers contention on top of these base latencies.
package noc

import "fmt"

// Coord is a PE position in the accelerator grid (virtual or physical).
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// ManhattanDist returns |Δrow| + |Δcol|.
func ManhattanDist(a, b Coord) int {
	return abs(a.Row-b.Row) + abs(a.Col-b.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Interconnect estimates the uncontended data-transfer latency in cycles
// between two PE positions. Implementations must be cheap: the mapping
// algorithm evaluates them for every candidate position of every
// instruction.
type Interconnect interface {
	Name() string
	Latency(from, to Coord) int
}

// Mesh is a dense 2D mesh with single-cycle hops to the four neighbors;
// latency is the Manhattan distance (Figure 2 and Figure 4, Example 2).
type Mesh struct{}

// Name implements Interconnect.
func (Mesh) Name() string { return "mesh" }

// Latency implements Interconnect.
func (Mesh) Latency(from, to Coord) int { return ManhattanDist(from, to) }

// RowSlice is the hierarchical interconnect of Figure 4, Example 1:
// point-to-point single-cycle latency between PEs in the same row and a
// fixed cross-row latency otherwise.
type RowSlice struct {
	InRow    int // latency within a row (paper example: 1)
	CrossRow int // latency across rows (paper example: 3)
}

// DefaultRowSlice returns the Figure 4 parameters.
func DefaultRowSlice() RowSlice { return RowSlice{InRow: 1, CrossRow: 3} }

// Name implements Interconnect.
func (RowSlice) Name() string { return "rowslice" }

// Latency implements Interconnect.
func (r RowSlice) Latency(from, to Coord) int {
	if from == to {
		return 0
	}
	if from.Row == to.Row {
		return r.InRow
	}
	return r.CrossRow
}

// HalfRing models the paper's evaluation backend (Figure 9): direct local
// PE-to-PE links to immediate neighbors take a single cycle per hop, and a
// lightweight half-ring network-on-chip with routing logic at every
// SliceSize PEs carries long-distance transfers. The NoC charges injection
// and ejection plus one RouterLat per slice traversed horizontally and per
// row traversed vertically. Because accelerated DFGs are acyclic and data
// moves feed-forward, each lane behaves like a bus (no deadlock), so no
// turn-model restrictions are needed.
type HalfRing struct {
	SliceSize  int // PEs per routing slice along a row (paper: 4)
	LocalReach int // Manhattan radius served by direct links (paper: 1)
	InjectLat  int // cycles to enter + leave the NoC
	RouterLat  int // cycles per slice/row hop on the ring
}

// DefaultHalfRing returns the parameters used for the M-64/128/512
// configurations.
func DefaultHalfRing() HalfRing {
	return HalfRing{SliceSize: 4, LocalReach: 1, InjectLat: 2, RouterLat: 1}
}

// Name implements Interconnect.
func (HalfRing) Name() string { return "halfring" }

// Latency implements Interconnect.
func (h HalfRing) Latency(from, to Coord) int {
	d := ManhattanDist(from, to)
	if d == 0 {
		return 0
	}
	if d <= h.LocalReach {
		return d // direct PE-PE link, one cycle per hop
	}
	// Diagonal neighbors route through two local hops.
	if abs(from.Row-to.Row) <= h.LocalReach && abs(from.Col-to.Col) <= h.LocalReach {
		return 2
	}
	hops := abs(from.Row-to.Row) + (abs(from.Col-to.Col)+h.SliceSize-1)/h.SliceSize
	return h.InjectLat + hops*h.RouterLat
}

// UsesNoC reports whether a transfer between the two coordinates rides the
// shared network (true) or a dedicated local link (false). The execution
// engine applies contention only to NoC transfers.
func (h HalfRing) UsesNoC(from, to Coord) bool {
	if from == to {
		return false
	}
	return ManhattanDist(from, to) > h.LocalReach &&
		!(abs(from.Row-to.Row) <= h.LocalReach && abs(from.Col-to.Col) <= h.LocalReach)
}

// Ideal is a zero-latency interconnect, used for the "ideal scaling" series
// in the PE-scaling experiment (Figure 15).
type Ideal struct{}

// Name implements Interconnect.
func (Ideal) Name() string { return "ideal" }

// Latency implements Interconnect.
func (Ideal) Latency(from, to Coord) int { return 0 }
