package obs

import (
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one wall-clock-timed operation in a request's span tree: the
// service-side analogue of a simulation trace slice. A root span covers a
// whole request; children cover its stages (queue wait, disk store, the
// simulation itself, encoding). Spans reuse the Chrome-trace Recorder
// writer, so server spans render on the same Perfetto timeline as
// simulation cycles — on their own process track (PIDServer).
//
// A nil *Span is a valid disabled handle: every method no-ops (Child returns
// nil), so instrumentation can be threaded unconditionally.
//
// Span timestamps are wall-clock (time.Now), unlike Recorder events whose
// unit is simulated cycles. The two clocks meet only in Perfetto, where each
// track is read in its own unit.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct {
	key string
	val any
}

// StartSpan opens a root span now.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a sub-span now and links it under s. Returns nil on a nil
// receiver so disabled instrumentation composes.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. The first call wins; later calls no-op, so a span can
// be ended defensively on every exit path.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value argument. Repeated keys keep the last value.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key, val})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns the span's opening wall-clock time (zero on nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start for an ended span, or the elapsed time so far
// for a live one (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Attrs returns a sorted-copy snapshot of the span's arguments (nil on nil
// or when empty).
func (s *Span) Attrs() map[string]any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(s.attrs))
	for _, a := range s.attrs {
		m[a.key] = a.val
	}
	return m
}

// SpanNode is the JSON projection of a span tree: start offsets are relative
// to the tree's root so the document carries no absolute wall-clock values
// beyond the root's own metadata.
type SpanNode struct {
	Name            string         `json:"name"`
	StartSeconds    float64        `json:"start_seconds"` // offset from the root span's start
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []*SpanNode    `json:"children,omitempty"`
}

// Node snapshots the span tree rooted at s (nil on a nil span).
func (s *Span) Node() *SpanNode {
	if s == nil {
		return nil
	}
	return s.node(s.start)
}

func (s *Span) node(base time.Time) *SpanNode {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	n := &SpanNode{
		Name:            s.name,
		StartSeconds:    s.start.Sub(base).Seconds(),
		DurationSeconds: s.Duration().Seconds(),
		Attrs:           s.Attrs(),
	}
	for _, c := range children {
		n.Children = append(n.Children, c.node(base))
	}
	return n
}

// EmitTrace appends the span tree as Chrome complete events on the given
// process track: timestamps are microseconds since base, so one displayed
// microsecond is one wall-clock microsecond. Children share the parent's
// thread track; Perfetto nests complete events whose intervals nest.
func (s *Span) EmitTrace(rec *Recorder, pid int32, base time.Time) {
	if s == nil || !rec.Enabled() {
		return
	}
	ts := float64(s.start.Sub(base).Nanoseconds()) / 1e3
	dur := float64(s.Duration().Nanoseconds()) / 1e3
	var args map[string]any
	if attrs := s.Attrs(); len(attrs) > 0 {
		args = attrs
	}
	rec.CompleteArgs(pid, 0, "server", s.name, ts, dur, args)
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.EmitTrace(rec, pid, base)
	}
}

// WriteTrace writes the span tree as a standalone Chrome trace-event JSON
// document on the PIDServer track, with the process named so merged
// server+simulation traces label every track in Perfetto.
func (s *Span) WriteTrace(w io.Writer, processName string) error {
	rec := NewRecorder()
	rec.NameProcess(PIDServer, processName)
	s.EmitTrace(rec, PIDServer, s.StartTime())
	return rec.WriteTrace(w)
}

// FlightRecorder keeps the span trees of the N slowest recorded requests, so
// an anomalously slow request's full stage breakdown can be inspected after
// the fact (GET /debug/requests) without tracing every request. It is
// bounded: recording is O(capacity) and memory never grows past the N
// retained trees. A nil *FlightRecorder no-ops.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*FlightEntry
}

// FlightEntry is one retained request.
type FlightEntry struct {
	ID       string
	Span     *Span
	Duration time.Duration
}

// NewFlightRecorder returns a recorder retaining the n slowest requests
// (n < 1 selects 32).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 32
	}
	return &FlightRecorder{cap: n, entries: make(map[string]*FlightEntry, n)}
}

// Record offers an ended span tree under the given request id. It is kept if
// the recorder has room or the request outlasted the current fastest
// retained one; re-recording an id replaces the earlier tree (latest wins —
// the id is being actively debugged).
func (f *FlightRecorder) Record(id string, root *Span) {
	if f == nil || root == nil || id == "" {
		return
	}
	e := &FlightEntry{ID: id, Span: root, Duration: root.Duration()}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.entries[id]; ok || len(f.entries) < f.cap {
		f.entries[id] = e
		return
	}
	// Full: displace the fastest retained entry if this one is slower.
	var fastest *FlightEntry
	for _, cur := range f.entries {
		if fastest == nil || cur.Duration < fastest.Duration {
			fastest = cur
		}
	}
	if fastest != nil && e.Duration > fastest.Duration {
		delete(f.entries, fastest.ID)
		f.entries[id] = e
	}
}

// Get returns the retained entry for id.
func (f *FlightRecorder) Get(id string) (*FlightEntry, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[id]
	return e, ok
}

// Snapshot returns the retained entries slowest-first (ties broken by id so
// the listing is stable).
func (f *FlightRecorder) Snapshot() []*FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]*FlightEntry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, e)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].ID < out[j].ID
	})
	return out
}
