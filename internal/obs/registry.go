package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Metric is one named numeric measurement. float64 represents every counter
// in the simulator exactly (they stay far below 2^53).
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// M builds a Metric.
func M(name string, value float64) Metric { return Metric{Name: name, Value: value} }

// Count builds a Metric from an integer counter.
func Count(name string, value uint64) Metric { return Metric{Name: name, Value: float64(value)} }

// Section groups the metrics of one counter surface.
type Section struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// Registry collects metric sections from every layer of a run into one
// report. A nil *Registry is a valid disabled handle. The emitted JSON is
// sorted by section and metric name, so a report is byte-deterministic
// regardless of registration order.
type Registry struct {
	mu       sync.Mutex
	sections map[string][]Metric
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry { return &Registry{sections: make(map[string][]Metric)} }

// Enabled reports whether Add calls are kept.
func (g *Registry) Enabled() bool { return g != nil }

// Add appends metrics to the named section, creating it on first use.
// No-op on a nil registry.
func (g *Registry) Add(section string, ms ...Metric) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.sections[section] = append(g.sections[section], ms...)
	g.mu.Unlock()
}

// Report returns the collected sections sorted by name, each section's
// metrics sorted by name (stable, so duplicates keep insertion order).
func (g *Registry) Report() []Section {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Section, 0, len(g.sections))
	for name, ms := range g.sections {
		sorted := append([]Metric(nil), ms...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		out = append(out, Section{Name: name, Metrics: sorted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (g *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Sections []Section `json:"sections"`
	}{Sections: g.Report()})
}
