package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// MetricKind classifies a metric for exporters that distinguish
// monotonically increasing counters from point-in-time gauges (the
// Prometheus encoder). The JSON report ignores the kind, so adding it never
// changed a serialized byte.
type MetricKind uint8

const (
	KindGauge MetricKind = iota
	KindCounter
)

// Metric is one named numeric measurement. float64 represents every counter
// in the simulator exactly (they stay far below 2^53).
type Metric struct {
	Name  string     `json:"name"`
	Value float64    `json:"value"`
	Kind  MetricKind `json:"-"`
}

// M builds a gauge Metric.
func M(name string, value float64) Metric { return Metric{Name: name, Value: value} }

// Count builds a counter Metric from an integer counter.
func Count(name string, value uint64) Metric {
	return Metric{Name: name, Value: float64(value), Kind: KindCounter}
}

// Section groups the metrics of one counter surface.
type Section struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// Registry collects metric sections from every layer of a run into one
// report. A nil *Registry is a valid disabled handle. The emitted JSON is
// sorted by section and metric name, so a report is byte-deterministic
// regardless of registration order.
type Registry struct {
	mu       sync.Mutex
	sections map[string][]Metric
	hists    map[string][]*Histogram
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		sections: make(map[string][]Metric),
		hists:    make(map[string][]*Histogram),
	}
}

// Enabled reports whether Add calls are kept.
func (g *Registry) Enabled() bool { return g != nil }

// Add appends metrics to the named section, creating it on first use.
// No-op on a nil registry.
func (g *Registry) Add(section string, ms ...Metric) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.sections[section] = append(g.sections[section], ms...)
	g.mu.Unlock()
}

// AddHistogram registers live histogram handles under the named section.
// Unlike Add, which copies values, a registered histogram is snapshotted at
// every Report/WritePrometheus call, so one long-lived handle can back many
// scrapes. Nil handles are skipped; no-op on a nil registry.
func (g *Registry) AddHistogram(section string, hs ...*Histogram) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for _, h := range hs {
		if h != nil {
			g.hists[section] = append(g.hists[section], h)
		}
	}
	g.mu.Unlock()
}

// Report returns the collected sections sorted by name, each section's
// metrics sorted by name (stable, so duplicates keep insertion order).
// Registered histograms contribute their flat summary metrics
// (<name>_count/_sum/_p50/_p90/_p99) to their section.
func (g *Registry) Report() []Section {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Section, 0, len(g.sections)+len(g.hists))
	seen := make(map[string]bool, len(g.sections))
	for name, ms := range g.sections {
		seen[name] = true
		sorted := append([]Metric(nil), ms...)
		for _, h := range g.hists[name] {
			sorted = append(sorted, h.Snapshot().SummaryMetrics()...)
		}
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		out = append(out, Section{Name: name, Metrics: sorted})
	}
	for name, hs := range g.hists {
		if seen[name] {
			continue
		}
		var ms []Metric
		for _, h := range hs {
			ms = append(ms, h.Snapshot().SummaryMetrics()...)
		}
		sort.SliceStable(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
		out = append(out, Section{Name: name, Metrics: ms})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// histogramSnapshots returns the registered histograms' snapshots grouped
// and sorted by section then histogram name (the Prometheus encoder's
// iteration order).
func (g *Registry) histogramSnapshots() []HistogramSnapshot {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sections := make([]string, 0, len(g.hists))
	for name := range g.hists {
		sections = append(sections, name)
	}
	sort.Strings(sections)
	var out []HistogramSnapshot
	for _, sec := range sections {
		snaps := make([]HistogramSnapshot, 0, len(g.hists[sec]))
		for _, h := range g.hists[sec] {
			snaps = append(snaps, h.Snapshot())
		}
		sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
		out = append(out, snaps...)
	}
	return out
}

// plainSections is Report without the histogram summaries: the Prometheus
// encoder renders histograms natively from their bucket series, so their
// flat projections must not appear twice.
func (g *Registry) plainSections() []Section {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Section, 0, len(g.sections))
	for name, ms := range g.sections {
		sorted := append([]Metric(nil), ms...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		out = append(out, Section{Name: name, Metrics: sorted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (g *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Sections []Section `json:"sections"`
	}{Sections: g.Report()})
}
