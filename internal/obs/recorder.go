// Package obs is the unified observability layer of the reproduction: a
// structured event recorder that emits Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing) and a metrics registry that snapshots every
// counter surface of the simulator into one deterministic JSON report.
//
// Both halves are zero-overhead when disabled: a nil *Recorder and a nil
// *Registry are valid no-op handles, so hot paths pay one predictable nil
// check and allocate nothing. The paper's premise is counter-driven
// refinement (§5.2, F3); this package makes the counters the optimizer
// consumes inspectable from outside the Go API.
package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Process IDs partition the unified trace into Perfetto tracks. They are
// stable across runs so saved traces remain comparable.
const (
	PIDCPU        = 1 // the monitored core's retired-instruction stream
	PIDController = 2 // MESA controller FSM phases
	PIDAccel      = 3 // accelerator node firings, NoC waits, port grants
	PIDCPUTiming  = 4 // standalone CPU timing-model runs
	PIDServer     = 5 // mesad request spans (wall-clock, not simulated cycles)
)

// Event is one trace record. Timestamps and durations are in simulated
// cycles; the writer emits them as trace microseconds, so one displayed
// microsecond is one cycle.
type Event struct {
	Name  string
	Cat   string
	Phase byte // 'X' complete, 'i' instant, 'M' metadata
	TS    float64
	Dur   float64
	PID   int32
	TID   int32
	Args  map[string]any
}

// Recorder accumulates trace events. The zero value is ready to use; a nil
// *Recorder is a valid disabled recorder whose methods all no-op.
// Recorder is safe for concurrent use, but a deterministic trace requires
// the emitting simulation itself to be single-threaded (every simulation in
// this repo is; parallelism lives above whole-simulation granularity).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events will be kept. Callers should guard any
// event-argument formatting with it so disabled runs allocate nothing.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends one event. No-op on a nil recorder.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Complete records a duration slice [ts, ts+dur) on the given track.
func (r *Recorder) Complete(pid, tid int32, cat, name string, ts, dur float64) {
	r.Emit(Event{Name: name, Cat: cat, Phase: 'X', TS: ts, Dur: dur, PID: pid, TID: tid})
}

// CompleteArgs is Complete with attached key/value arguments.
func (r *Recorder) CompleteArgs(pid, tid int32, cat, name string, ts, dur float64, args map[string]any) {
	r.Emit(Event{Name: name, Cat: cat, Phase: 'X', TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records a zero-duration marker at ts.
func (r *Recorder) Instant(pid, tid int32, cat, name string, ts float64) {
	r.Emit(Event{Name: name, Cat: cat, Phase: 'i', TS: ts, PID: pid, TID: tid})
}

// InstantArgs is Instant with attached key/value arguments.
func (r *Recorder) InstantArgs(pid, tid int32, cat, name string, ts float64, args map[string]any) {
	r.Emit(Event{Name: name, Cat: cat, Phase: 'i', TS: ts, PID: pid, TID: tid, Args: args})
}

// NameProcess attaches a display name to a pid track.
func (r *Recorder) NameProcess(pid int32, name string) {
	r.Emit(Event{Name: "process_name", Phase: 'M', PID: pid, Args: map[string]any{"name": name}})
}

// NameThread attaches a display name to a (pid, tid) track.
func (r *Recorder) NameThread(pid, tid int32, name string) {
	r.Emit(Event{Name: "thread_name", Phase: 'M', PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// Len reports the number of recorded events (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// traceEvent is the Chrome trace-event wire format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteTrace emits the recorded events as a Chrome trace-event JSON object.
// Metadata events sort before content events; everything else keeps emission
// order, so single-threaded simulations produce byte-deterministic traces.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var events []Event
	if r != nil {
		r.mu.Lock()
		events = append(events, r.events...)
		r.mu.Unlock()
	}
	wire := make([]traceEvent, 0, len(events))
	appendPhase := func(meta bool) {
		for _, ev := range events {
			if (ev.Phase == 'M') != meta {
				continue
			}
			te := traceEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: string(rune(ev.Phase)),
				TS: ev.TS, PID: ev.PID, TID: ev.TID, Args: ev.Args,
			}
			switch ev.Phase {
			case 'X':
				dur := ev.Dur
				te.Dur = &dur
			case 'i':
				te.Scope = "t" // thread-scoped marker
			}
			wire = append(wire, te)
		}
	}
	appendPhase(true)
	appendPhase(false)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: wire, DisplayTimeUnit: "ms"})
}
