package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("x_seconds", "test", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets are upper-inclusive: (−∞,1], (1,10], (10,100], (100,+Inf).
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 101 + 1e9
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("q_seconds", "test", []float64{1, 2, 4, 8})
	// 100 observations uniformly in the (1,2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := h.Snapshot()
	// All mass is in one bucket: quantiles interpolate inside (1,2].
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < 1 || v > 2 {
			t.Errorf("q%v = %v, want within (1,2]", q, v)
		}
	}
	if p50, p99 := s.Quantile(0.5), s.Quantile(0.99); p50 >= p99 {
		t.Errorf("p50 %v >= p99 %v: interpolation not monotone", p50, p99)
	}

	// Empty histogram reports 0.
	if v := NewHistogram("e", "h", []float64{1}).Snapshot().Quantile(0.5); v != 0 {
		t.Errorf("empty quantile = %v, want 0", v)
	}

	// Overflow-only mass reports the largest finite bound.
	o := NewHistogram("o_seconds", "test", []float64{1, 2})
	o.Observe(50)
	if v := o.Snapshot().Quantile(0.5); v != 2 {
		t.Errorf("overflow quantile = %v, want 2 (largest finite bound)", v)
	}
}

func TestHistogramNilAndReset(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || h.Name() != "" || len(h.SummaryMetricNames()) != 0 {
		t.Error("nil histogram not inert")
	}

	r := NewHistogram("r_seconds", "test", LatencyBuckets())
	r.Observe(0.001)
	r.Reset()
	if s := r.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Errorf("reset left count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramSummaryNamesMatchMetrics(t *testing.T) {
	h := NewHistogram("s_seconds", "test", []float64{1})
	h.Observe(0.5)
	names := h.SummaryMetricNames()
	ms := h.Snapshot().SummaryMetrics()
	if len(names) != len(ms) {
		t.Fatalf("SummaryMetricNames %d entries, SummaryMetrics %d", len(names), len(ms))
	}
	for i := range ms {
		if ms[i].Name != names[i] {
			t.Errorf("metric %d named %q, declared %q", i, ms[i].Name, names[i])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("c_seconds", "test", LatencyBuckets())
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	if math.Abs(s.Sum-float64(goroutines*per)*0.01) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, float64(goroutines*per)*0.01)
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) == 0 || b[0] != 1e-5 {
		t.Fatalf("unexpected first bound: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			t.Errorf("bounds not increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if last := b[len(b)-1]; last < 60 {
		t.Errorf("largest bound %v too small to cover slow requests", last)
	}
}
