package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the whole Registry: plain
// metrics become gauge/counter families named
// <namespace>_<section>_<metric> (sanitized), registered histograms become
// native histogram families named <namespace>_<name> with cumulative
// _bucket/_sum/_count series. Output is fully sorted (families by name,
// buckets by bound), so a quiesced registry encodes byte-identically on
// every scrape.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an arbitrary string onto the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: invalid runes become '_', and a
// leading digit gains a '_' prefix. An empty input becomes "_".
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SanitizeLabelName is SanitizeMetricName without the colon (colons are
// reserved for recording rules in label position).
func SanitizeLabelName(s string) string {
	return strings.ReplaceAll(SanitizeMetricName(s), ":", "_")
}

// escapeHelp escapes a HELP string per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// unescapeHelp inverts escapeHelp so parsed families round-trip.
func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// escapeLabelValue escapes a label value: backslash, double-quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatPromValue renders a sample value. Prometheus accepts Go's shortest
// round-trip float formatting; +Inf spells as "+Inf".
func formatPromValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format. namespace prefixes every family name (e.g. "mesad"). Plain
// sections encode as single-sample gauge/counter families; registered
// histograms encode natively. Families whose sanitized names collide are
// merged under the first kind seen. A nil registry writes nothing.
func (g *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if g == nil {
		return nil
	}
	type family struct {
		name  string
		help  string
		typ   string
		lines []string
	}
	byName := map[string]*family{}
	var order []string
	get := func(name, help, typ string) *family {
		f, ok := byName[name]
		if !ok {
			f = &family{name: name, help: help, typ: typ}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}

	for _, sec := range g.plainSections() {
		for _, m := range sec.Metrics {
			name := SanitizeMetricName(namespace + "_" + sec.Name + "_" + m.Name)
			typ := "gauge"
			if m.Kind == KindCounter {
				typ = "counter"
			}
			f := get(name, "", typ)
			f.lines = append(f.lines, fmt.Sprintf("%s %s", name, formatPromValue(m.Value)))
		}
	}
	for _, snap := range g.histogramSnapshots() {
		name := SanitizeMetricName(namespace + "_" + snap.Name)
		f := get(name, snap.Help, "histogram")
		if len(f.lines) > 0 {
			// A histogram name collided with an earlier family (or a
			// duplicate registration): skip rather than emit a malformed
			// duplicate series.
			continue
		}
		var cum uint64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, formatPromValue(bound), cum))
		}
		cum += snap.Counts[len(snap.Bounds)]
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", name, cum))
		f.lines = append(f.lines, fmt.Sprintf("%s_sum %s", name, formatPromValue(snap.Sum)))
		f.lines = append(f.lines, fmt.Sprintf("%s_count %d", name, cum))
	}

	sort.Strings(order)
	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := byName[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(bw, line)
		}
	}
	return bw.Flush()
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// Bucket returns the histogram-family bucket samples in emission order.
func (f *PromFamily) Buckets() []PromSample {
	var out []PromSample
	for _, s := range f.Samples {
		if s.Name == f.Name+"_bucket" {
			out = append(out, s)
		}
	}
	return out
}

// Sample returns the first sample with the exact name, if any.
func (f *PromFamily) Sample(name string) (PromSample, bool) {
	for _, s := range f.Samples {
		if s.Name == name {
			return s, true
		}
	}
	return PromSample{}, false
}

// ParsePrometheus is a minimal, strict parser for the text exposition format
// this package emits: it validates name syntax, HELP/TYPE placement, label
// quoting, float values, histogram bucket monotonicity (bounds strictly
// increasing, cumulative counts non-decreasing, terminal +Inf bucket equal
// to _count), and rejects duplicate samples. It exists so tests and the
// mesad smoke gate can fail on any malformed exposition line without a
// third-party dependency.
func ParsePrometheus(data []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	seenSample := map[string]bool{}

	// familyFor maps a sample name onto its declared family, accounting for
	// the histogram suffixes.
	familyFor := func(sample string) *PromFamily {
		if f, ok := families[sample]; ok {
			return f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suffix)
			if !ok {
				continue
			}
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return f
			}
		}
		return nil
	}

	lineNo := 0
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("prometheus exposition line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fail("invalid metric name %q", name)
			}
			f := families[name]
			if f == nil {
				f = &PromFamily{Name: name}
				families[name] = f
			}
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
				continue
			}
			if len(fields) != 4 {
				return nil, fail("TYPE line needs a type")
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fail("unknown type %q", fields[3])
			}
			if len(f.Samples) > 0 {
				return nil, fail("TYPE after samples for %q", name)
			}
			f.Type = fields[3]
			continue
		}

		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		key := sampleKey(sample)
		if seenSample[key] {
			return nil, fail("duplicate sample")
		}
		seenSample[key] = true
		f := familyFor(sample.Name)
		if f == nil {
			f = &PromFamily{Name: sample.Name, Type: "untyped"}
			families[sample.Name] = f
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for name, f := range families {
		if f.Type != "histogram" {
			continue
		}
		if err := validateHistogramFamily(f); err != nil {
			return nil, fmt.Errorf("prometheus histogram %s: %w", name, err)
		}
	}
	return families, nil
}

func validateHistogramFamily(f *PromFamily) error {
	buckets := f.Buckets()
	if len(buckets) == 0 {
		return fmt.Errorf("no _bucket samples")
	}
	prevBound := math.Inf(-1)
	prevCount := -1.0
	sawInf := false
	for _, b := range buckets {
		le, ok := b.Labels["le"]
		if !ok {
			return fmt.Errorf("bucket without le label")
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("bucket le %q: %v", le, err)
		}
		if !(bound > prevBound) {
			return fmt.Errorf("bucket bounds not strictly increasing at le=%q", le)
		}
		if b.Value < prevCount {
			return fmt.Errorf("cumulative bucket counts decrease at le=%q", le)
		}
		prevBound, prevCount = bound, b.Value
		sawInf = math.IsInf(bound, +1)
	}
	if !sawInf {
		return fmt.Errorf("missing terminal +Inf bucket")
	}
	count, ok := f.Sample(f.Name + "_count")
	if !ok {
		return fmt.Errorf("missing _count sample")
	}
	if count.Value != prevCount {
		return fmt.Errorf("_count %v != +Inf bucket %v", count.Value, prevCount)
	}
	if _, ok := f.Sample(f.Name + "_sum"); !ok {
		return fmt.Errorf("missing _sum sample")
	}
	return nil
}

func sampleKey(s PromSample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.Labels[k])
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

// parseSampleLine parses `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		var b strings.Builder
		j := 1
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[j+1], name)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			b.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
		s = s[j:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}
