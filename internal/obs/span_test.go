package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTreeAndNesting(t *testing.T) {
	root := StartSpan("request")
	root.SetAttr("request_id", "abc")
	a := root.Child("queue")
	a.End()
	b := root.Child("simulate")
	c := b.Child("memo")
	c.End()
	b.End()
	root.End()

	n := root.Node()
	if n.Name != "request" || len(n.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", n)
	}
	if n.Attrs["request_id"] != "abc" {
		t.Errorf("root attrs = %v", n.Attrs)
	}
	if len(n.Children[1].Children) != 1 || n.Children[1].Children[0].Name != "memo" {
		t.Errorf("grandchild missing: %+v", n.Children[1])
	}
	// Children start at or after the root and fit inside its duration.
	for _, ch := range n.Children {
		if ch.StartSeconds < 0 {
			t.Errorf("child %s starts before root", ch.Name)
		}
		if ch.StartSeconds+ch.DurationSeconds > n.DurationSeconds+1e-9 {
			t.Errorf("child %s [%v+%v] exceeds root duration %v",
				ch.Name, ch.StartSeconds, ch.DurationSeconds, n.DurationSeconds)
		}
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", 1)
	if c := s.Child("x"); c != nil {
		t.Error("nil span produced a child")
	}
	if s.Duration() != 0 || s.Node() != nil || s.Name() != "" || s.Attrs() != nil {
		t.Error("nil span not inert")
	}
	s.EmitTrace(NewRecorder(), PIDServer, time.Time{})
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartSpan("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Error("second End moved the recorded end time")
	}
}

// TestSpanWriteTrace: the emitted document is valid Chrome trace JSON on the
// PIDServer track, the process is named, and child complete events nest
// inside their parents.
func TestSpanWriteTrace(t *testing.T) {
	root := StartSpan("request")
	child := root.Child("simulate")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteTrace(&buf, "mesad server"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int32          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace JSON: %v", err)
	}
	var namedServer bool
	type iv struct{ ts, dur float64 }
	spans := map[string]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.PID == PIDServer {
			if ev.Args["name"] == "mesad server" {
				namedServer = true
			}
		}
		if ev.Ph == "X" {
			if ev.PID != PIDServer {
				t.Errorf("span %s on pid %d, want %d", ev.Name, ev.PID, PIDServer)
			}
			spans[ev.Name] = iv{ev.TS, ev.Dur}
		}
	}
	if !namedServer {
		t.Error("PIDServer track not named")
	}
	req, ok1 := spans["request"]
	sim, ok2 := spans["simulate"]
	if !ok1 || !ok2 {
		t.Fatalf("missing spans: %v", spans)
	}
	if sim.ts < req.ts-1e-6 || sim.ts+sim.dur > req.ts+req.dur+1e-6 {
		t.Errorf("child [%v,%v] not nested in parent [%v,%v]",
			sim.ts, sim.ts+sim.dur, req.ts, req.ts+req.dur)
	}
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	f := NewFlightRecorder(2)
	mk := func(id string, d time.Duration) *Span {
		s := StartSpan("request")
		s.mu.Lock()
		s.end = s.start.Add(d)
		s.mu.Unlock()
		return s
	}
	f.Record("fast", mk("fast", 10*time.Millisecond))
	f.Record("slow", mk("slow", 500*time.Millisecond))
	f.Record("mid", mk("mid", 100*time.Millisecond)) // displaces "fast"
	f.Record("tiny", mk("tiny", time.Millisecond))   // too fast: dropped

	if _, ok := f.Get("fast"); ok {
		t.Error("fast entry survived displacement")
	}
	if _, ok := f.Get("tiny"); ok {
		t.Error("tiny entry was kept over slower ones")
	}
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].ID != "slow" || snap[1].ID != "mid" {
		ids := []string{}
		for _, e := range snap {
			ids = append(ids, e.ID)
		}
		t.Errorf("snapshot order = %v, want [slow mid]", ids)
	}

	// Re-recording an id replaces its tree even when full.
	f.Record("mid", mk("mid", 200*time.Millisecond))
	if e, _ := f.Get("mid"); e.Duration != 200*time.Millisecond {
		t.Errorf("re-record kept stale duration %v", e.Duration)
	}

	// Nil handle no-ops.
	var nilf *FlightRecorder
	nilf.Record("x", mk("x", time.Second))
	if nilf.Snapshot() != nil {
		t.Error("nil flight recorder produced entries")
	}
}
