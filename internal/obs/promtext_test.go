package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every encoder feature exercised:
// counters, gauges, names needing sanitization, a help string needing
// escaping, and a histogram with deterministic observations.
func goldenRegistry() *Registry {
	g := NewRegistry()
	g.Add("server",
		Count("requests", 42),
		M("admission_width", 8),
	)
	g.Add("experiments.pool", // '.' must sanitize to '_'
		Count("tasks", 17),
		M("9lives", 1), // leading digit must gain a '_' prefix
	)
	h := NewHistogram("request_seconds",
		"end-to-end /v1/simulate latency; escapes: back\\slash and\nnewline",
		[]float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	g.AddHistogram("server.latency", h)
	return g
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf, "mesad"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Round-trip: the golden bytes must parse cleanly and reproduce the
	// encoded values.
	fams, err := ParsePrometheus(want)
	if err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	reqs, ok := fams["mesad_server_requests"]
	if !ok || reqs.Type != "counter" {
		t.Fatalf("mesad_server_requests missing or wrong type: %+v", reqs)
	}
	if s, _ := reqs.Sample("mesad_server_requests"); s.Value != 42 {
		t.Errorf("requests = %v, want 42", s.Value)
	}
	gauge, ok := fams["mesad_server_admission_width"]
	if !ok || gauge.Type != "gauge" {
		t.Fatalf("admission_width missing or wrong type: %+v", gauge)
	}
	if _, ok := fams["mesad_experiments_pool_tasks"]; !ok {
		t.Error("section name not sanitized to mesad_experiments_pool_tasks")
	}
	// The digit is interior after the ns_section_name join, so no prefix is
	// needed (the leading-digit case is covered by TestSanitizeNames).
	if _, ok := fams["mesad_experiments_pool_9lives"]; !ok {
		t.Error("metric name with digit start not joined/sanitized as expected")
	}
	hist, ok := fams["mesad_request_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	if !strings.Contains(hist.Help, `back\slash`) {
		t.Errorf("help not round-tripped: %q", hist.Help)
	}
	if c, _ := hist.Sample("mesad_request_seconds_count"); c.Value != 6 {
		t.Errorf("histogram count = %v, want 6", c.Value)
	}
	buckets := hist.Buckets()
	if len(buckets) != 5 { // 4 bounds + +Inf
		t.Fatalf("bucket count = %d, want 5", len(buckets))
	}
	if le := buckets[len(buckets)-1].Labels["le"]; le != "+Inf" {
		t.Errorf("terminal bucket le = %q", le)
	}
}

// TestPrometheusStableOrdering: two encodings of the same registry are
// byte-identical, and family names appear sorted.
func TestPrometheusStableOrdering(t *testing.T) {
	g := goldenRegistry()
	var a, b bytes.Buffer
	if err := g.WritePrometheus(&a, "mesad"); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(&b, "mesad"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of a quiesced registry differ")
	}
	var prev string
	for _, line := range strings.Split(a.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if prev != "" && name < prev {
			t.Errorf("family %q emitted after %q: not sorted", name, prev)
		}
		prev = name
	}
}

func TestSanitizeNames(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"requests", "requests"},
		{"experiments.pool", "experiments_pool"},
		{"9lives", "_9lives"},
		{"a-b c/d", "a_b_c_d"},
		{"", "_"},
		{"ünïcode", "_n_code"}, // rune-wise: one '_' per invalid rune
	} {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := SanitizeLabelName("a:b"); got != "a_b" {
		t.Errorf("SanitizeLabelName(a:b) = %q, want a_b", got)
	}
}

// TestParsePrometheusRejectsMalformed: every malformed shape the smoke gate
// must catch.
func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"bad sample name":    "1bad 3\n",
		"missing value":      "good_name\n",
		"bad value":          "good_name abc\n",
		"unterminated label": "x{le=\"1 3\n",
		"unquoted label":     "x{le=1} 3\n",
		"bad type":           "# TYPE x flugel\n",
		"duplicate sample":   "x 1\nx 2\n",
		"type after samples": "x 1\n# TYPE x gauge\n",
		"buckets decrease": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"bounds not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParsePrometheus([]byte(text)); err == nil {
				t.Errorf("parsed without error:\n%s", text)
			}
		})
	}
}

func TestParsePrometheusLabelEscapes(t *testing.T) {
	fams, err := ParsePrometheus([]byte("x{l=\"a\\\\b\\\"c\\nd\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := fams["x"].Samples[0]
	if s.Labels["l"] != "a\\b\"c\nd" {
		t.Errorf("label value = %q", s.Labels["l"])
	}
}

func TestFormatPromValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{1, "1"},
		{0.001, "0.001"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		if got := formatPromValue(tc.v); got != tc.want {
			t.Errorf("formatPromValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestNilRegistryPrometheus: the nil handle writes nothing, like WriteJSON.
func TestNilRegistryPrometheus(t *testing.T) {
	var g *Registry
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf, "mesad"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
	g.AddHistogram("s", NewHistogram("h", "", []float64{1}))
}
