package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestNilHandlesAreNoOps: a nil recorder and registry must be safe to call
// everywhere the hot paths thread them.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Complete(PIDAccel, 0, "accel", "fire", 0, 1)
	r.Instant(PIDController, 0, "fsm", "detect", 0)
	r.NameProcess(PIDCPU, "cpu")
	if r.Len() != 0 {
		t.Errorf("nil recorder kept %d events", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}

	var g *Registry
	if g.Enabled() {
		t.Error("nil registry reports enabled")
	}
	g.Add("cpu", M("cycles", 1))
	if g.Report() != nil {
		t.Error("nil registry produced sections")
	}
	buf.Reset()
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestTraceFormat: the emitted JSON must be a valid Chrome trace-event
// object — a traceEvents array whose complete events carry durations and
// whose metadata events sort first.
func TestTraceFormat(t *testing.T) {
	r := NewRecorder()
	r.Complete(PIDAccel, 1, "accel", "i0 ADD", 10, 3)
	r.NameProcess(PIDAccel, "accel")
	r.Instant(PIDController, 0, "fsm", "detect", 5)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("traceEvents has %d entries, want 3", len(parsed.TraceEvents))
	}
	if parsed.TraceEvents[0]["ph"] != "M" {
		t.Errorf("metadata event not first: %v", parsed.TraceEvents[0])
	}
	for _, te := range parsed.TraceEvents {
		if te["ph"] == "X" {
			if _, ok := te["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", te)
			}
		}
	}
}

// TestRegistryDeterministic: registration order must not affect the bytes.
func TestRegistryDeterministic(t *testing.T) {
	render := func(order []int) string {
		g := NewRegistry()
		add := []func(){
			func() { g.Add("cpu", M("ipc", 1.5), Count("retired", 100)) },
			func() { g.Add("accel", Count("loads", 7)) },
			func() { g.Add("cpu", M("cycles", 66)) },
		}
		for _, i := range order {
			add[i]()
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render([]int{0, 1, 2})
	b := render([]int{2, 0, 1})
	if a != b {
		t.Errorf("registration order changed the report:\n%s\nvs\n%s", a, b)
	}
	secs := NewRegistry()
	secs.Add("z", M("m", 1))
	secs.Add("a", M("m", 2))
	rep := secs.Report()
	if len(rep) != 2 || rep[0].Name != "a" || rep[1].Name != "z" {
		t.Errorf("sections not sorted: %+v", rep)
	}
}
