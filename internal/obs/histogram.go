package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram: log-spaced upper bounds
// chosen at construction, lock-free atomic observation, and a consistent
// snapshot carrying count, sum, and interpolated quantiles. It is the
// service-side counterpart of the simulator's cycle counters: counters
// answer "where did the simulated cycles go", a Histogram answers "where did
// the wall-clock time of a request go" — two different clocks (see
// EXPERIMENTS.md).
//
// A nil *Histogram is a valid disabled handle whose methods all no-op, the
// same contract as Recorder and Registry.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // strictly increasing upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBuckets returns the standard log-spaced bucket bounds for
// wall-clock request and stage latencies: 10µs doubling up to ~84s
// (24 bounds). Everything slower lands in the implicit +Inf bucket.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 24)
	b := 1e-5
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// NewHistogram builds a histogram with the given metric name (Prometheus
// style, e.g. "request_seconds"), help text, and strictly increasing bucket
// upper bounds. Invalid bounds are a programmer error and panic.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Name returns the metric name the histogram was constructed with.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Help returns the help text the histogram was constructed with.
func (h *Histogram) Help() string {
	if h == nil {
		return ""
	}
	return h.help
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; values beyond every bound land
	// in the trailing +Inf bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Reset zeroes every bucket and the sum (tests and cold/warm comparisons).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts[i] is the
// number of observations in bucket i (NOT cumulative); the final entry is
// the +Inf overflow bucket, so len(Counts) == len(Bounds)+1. Count is the
// total, always equal to the sum of Counts, so derived cumulative bucket
// series are monotone by construction.
type HistogramSnapshot struct {
	Name   string
	Help   string
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may land between bucket reads — the snapshot is internally consistent
// (Count == sum of Counts) but Sum can trail the buckets by in-flight
// observations; monitoring consumers tolerate that, byte-stability gates
// must quiesce writers first (every test here does).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name:   h.name,
		Help:   h.help,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing the target rank, Prometheus
// histogram_quantile style. The overflow bucket cannot be interpolated and
// reports the largest finite bound. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// SummaryMetricNames lists the metric names SummaryMetrics emits, in order.
// Callers that must declare wall-clock metrics run-variant (the -stats
// determinism gate) derive the declaration from this, so the two can never
// drift apart.
func (h *Histogram) SummaryMetricNames() []string {
	if h == nil {
		return nil
	}
	return []string{
		h.name + "_count",
		h.name + "_sum",
		h.name + "_p50",
		h.name + "_p90",
		h.name + "_p99",
	}
}

// SummaryMetrics renders the snapshot as flat registry metrics:
// <name>_count, <name>_sum, and interpolated p50/p90/p99. This is the JSON
// projection of the histogram; the Prometheus encoder uses the full bucket
// series instead.
func (s HistogramSnapshot) SummaryMetrics() []Metric {
	return []Metric{
		{Name: s.Name + "_count", Value: float64(s.Count), Kind: KindCounter},
		{Name: s.Name + "_sum", Value: s.Sum, Kind: KindCounter},
		{Name: s.Name + "_p50", Value: s.Quantile(0.50)},
		{Name: s.Name + "_p90", Value: s.Quantile(0.90)},
		{Name: s.Name + "_p99", Value: s.Quantile(0.99)},
	}
}
