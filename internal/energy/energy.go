// Package energy models area, power, and energy for the reproduction. The
// component areas and powers are transcribed from the paper's Table 1
// (Synopsys DC synthesis, FreePDK 15nm, with CACTI estimates for SRAM) and
// combined with the accelerator's measured activity the same way the paper's
// testbench accumulates energy: disabled FPUs/ALUs are clock-gated and
// contribute no dynamic power; leakage accrues with cycles.
package energy

import (
	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/isa"
)

// Component is one row of the paper's Table 1.
type Component struct {
	Name    string
	AreaMM2 float64
	PowerW  float64
}

// Table1MESA returns the MESA controller breakdown (top third of Table 1).
func Table1MESA() []Component {
	return []Component{
		{"MESA Top", 0.502, 0.36},
		{"- MESA ArchModel", 0.375, 0.27},
		{"- - Instr. RenameTable", 0.0114175, 0.006161},
		{"- - LDFG", 0.1484836, 0.09},
		{"- - Instr. Convert", 0.0006014, 0.000465},
		{"- - Instr. Mapping", 0.2084329, 0.13},
		{"- - - Latency Optimizer", 0.0040604, 0.003302},
		{"- - - SDFG", 0.2011710, 0.12},
		{"- MESA ConfigBlock", 0.1013579, 0.07},
	}
}

// Table1CoreAdditions returns the per-core monitoring additions.
func Table1CoreAdditions() []Component {
	return []Component{
		{"Trace Cache", 0.0271245, 0.015455},
		{"Add'l Control / Interface", 0.0035901, 0.003219},
	}
}

// Table1Accelerator returns the 128-PE spatial accelerator breakdown.
func Table1Accelerator() []Component {
	return []Component{
		{"Accelerator Top", 26.56, 11.65},
		{"- PE Array", 14.95, 4.08},
		{"- - FP Slice (2x2)", 0.8218891, 0.213107},
	}
}

// Derived per-unit powers (active, dynamic) from Table 1 for the 128-PE
// configuration: 64 FP-capable PEs in 16 2×2 slices, 64 integer-only PEs.
const (
	// FPPEActiveW is the dynamic power of one FP-capable PE while computing
	// (213.107 mW per 2×2 slice / 4).
	FPPEActiveW = 0.213107 / 4

	// IntPEActiveW is the dynamic power of an integer PE while computing:
	// the PE array's non-FP remainder spread over 64 integer PEs.
	IntPEActiveW = (4.08 - 16*0.213107) / 64

	// Non-PE accelerator power (26.56mm² top minus the PE array) split
	// between the memory subsystem (load/store entries, buffers, cache
	// interface), the on-chip network, and control.
	LSUActiveW = 5.5 / 32   // per active load/store entry (32 entries in M-128)
	NoCHopW    = 1.1 / 64   // per NoC hop-cycle (per-slice router power)
	CtrlEventW = 0.97 / 256 // per control-network assertion

	// LeakageFraction of each component's Table-1 power is static and
	// accrues whenever the accelerator is powered.
	LeakageFraction = 0.25

	// MESAControllerW is the MESA block's power while actively building,
	// mapping, or configuring.
	MESAControllerW = 0.36
)

// Breakdown is an energy decomposition in nanojoules (Figure 13's
// categories).
type Breakdown struct {
	ComputeNJ float64 // PE dynamic energy
	MemoryNJ  float64 // LSU + cache/DRAM access energy
	NoCNJ     float64 // interconnect energy
	ControlNJ float64 // control network + MESA controller
	LeakageNJ float64
}

// TotalNJ sums the breakdown.
func (b Breakdown) TotalNJ() float64 {
	return b.ComputeNJ + b.MemoryNJ + b.NoCNJ + b.ControlNJ + b.LeakageNJ
}

// nJPerCycle converts watts at the given clock to nanojoules per cycle.
func nJPerCycle(watts, clockGHz float64) float64 { return watts / clockGHz }

// Memory access energy beyond the LSU entry itself (cache lookup + average
// DRAM amortization), in nJ per access.
const memAccessNJ = 0.35

// AccelEnergy converts accelerator activity into an energy breakdown. cfg
// supplies the clock and grid size (leakage scales with the PE count
// relative to the 128-PE reference synthesis).
func AccelEnergy(cfg *accel.Config, act accel.Activity) Breakdown {
	ghz := cfg.ClockGHz
	scale := float64(cfg.NumPEs()) / 128.0
	// Power gating: unconfigured slices are gated, so array leakage scales
	// with the configured fraction plus an always-on floor (clock tree,
	// configuration state, LSU front). With no occupancy information the
	// full array leaks.
	occupancy := 1.0
	if act.PEsConfigured > 0 {
		occupancy = act.PEsConfigured / float64(cfg.NumPEs())
		if occupancy > 1 {
			occupancy = 1
		}
	}
	leakW := 11.65 * LeakageFraction * scale * (0.15 + 0.85*occupancy)
	return Breakdown{
		ComputeNJ: act.IntALU*nJPerCycle(IntPEActiveW, ghz) + act.FPU*nJPerCycle(FPPEActiveW, ghz),
		MemoryNJ:  act.LSU*nJPerCycle(LSUActiveW, ghz) + float64(act.MemAccesses)*memAccessNJ,
		NoCNJ:     act.NoC * nJPerCycle(NoCHopW, ghz),
		ControlNJ: float64(act.CtrlEvents) * nJPerCycle(CtrlEventW, ghz),
		LeakageNJ: act.Cycles * nJPerCycle(leakW, ghz),
	}
}

// ConfigEnergy is the energy spent by the MESA controller during
// configuration and optimization activity.
func ConfigEnergy(cycles float64, clockGHz float64) float64 {
	return cycles * nJPerCycle(MESAControllerW, clockGHz)
}

// CPUParams models the baseline core's energy (the McPAT stand-in):
// per-committed-instruction energies plus static power. Values are
// BOOM-class at 15nm/2GHz; CPU instructions carry significant
// fetch/decode/rename/schedule overhead energy, which is exactly the von
// Neumann overhead MESA avoids.
type CPUParams struct {
	StaticWPerCore float64
	IntInstNJ      float64
	FPInstNJ       float64
	MemInstNJ      float64
	CtrlInstNJ     float64
	ClockGHz       float64
}

// DefaultCPUParams returns the calibrated baseline parameters: a
// BOOM-class core burning ~2–3 W under load at 2 GHz, i.e. ~0.5–1 nJ per
// committed instruction once frontend, rename, scheduling, and register-file
// energy are attributed per instruction (the von Neumann overhead of [68]).
func DefaultCPUParams() CPUParams {
	return CPUParams{
		StaticWPerCore: 0.45,
		IntInstNJ:      0.50,
		FPInstNJ:       0.75,
		MemInstNJ:      0.95,
		CtrlInstNJ:     0.55,
		ClockGHz:       2.0,
	}
}

// CPUEnergy computes the energy of a (multi)core execution in nJ: every
// active core pays static power for the duration, plus per-instruction
// dynamic energy.
func CPUEnergy(res *cpu.Result, cores int, p CPUParams) float64 {
	static := res.Cycles * nJPerCycle(p.StaticWPerCore, p.ClockGHz) * float64(cores)
	var dynamic float64
	for cls, n := range res.ByClass {
		e := p.IntInstNJ
		switch isa.Class(cls) {
		case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			e = p.FPInstNJ
		case isa.ClassLoad, isa.ClassStore:
			e = p.MemInstNJ
		case isa.ClassBranch, isa.ClassJump:
			e = p.CtrlInstNJ
		}
		dynamic += float64(n) * e
	}
	return static + dynamic
}
