package energy

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/isa"
)

func TestTable1Consistency(t *testing.T) {
	// Top-level MESA area/power must be at least the sum of the visible
	// leaf components (Table 1 rows overlap hierarchically; the top row
	// dominates all sub-rows).
	rows := Table1MESA()
	top := rows[0]
	if top.AreaMM2 != 0.502 || top.PowerW != 0.36 {
		t.Errorf("MESA top row = %+v", top)
	}
	for _, r := range rows[1:] {
		if r.AreaMM2 > top.AreaMM2 || r.PowerW > top.PowerW {
			t.Errorf("component %q exceeds its parent", r.Name)
		}
	}
	acc := Table1Accelerator()
	if acc[0].AreaMM2 != 26.56 || acc[0].PowerW != 11.65 {
		t.Errorf("accelerator top = %+v", acc[0])
	}
	// MESA controller is well under 10% of a core's area (paper: <10% of
	// a ~6mm² core at 28nm, i.e. well under 2mm² at 15nm).
	if top.AreaMM2 > 1.0 {
		t.Errorf("MESA area %f mm² too large", top.AreaMM2)
	}
	if len(Table1CoreAdditions()) == 0 {
		t.Error("missing per-core additions")
	}
}

func TestAccelEnergyBreakdown(t *testing.T) {
	cfg := accel.M128()
	act := accel.Activity{
		Cycles:      1000,
		IntALU:      400,
		FPU:         600,
		NoC:         200,
		LSU:         300,
		CtrlEvents:  50,
		MemAccesses: 300,
	}
	b := AccelEnergy(cfg, act)
	if b.TotalNJ() <= 0 {
		t.Fatal("zero energy")
	}
	for name, v := range map[string]float64{
		"compute": b.ComputeNJ, "memory": b.MemoryNJ, "noc": b.NoCNJ,
		"control": b.ControlNJ, "leakage": b.LeakageNJ,
	} {
		if v < 0 {
			t.Errorf("%s energy negative: %v", name, v)
		}
		if v == 0 {
			t.Errorf("%s energy unexpectedly zero", name)
		}
	}
	// Idle activity costs only leakage.
	idle := AccelEnergy(cfg, accel.Activity{Cycles: 1000})
	if idle.ComputeNJ != 0 || idle.LeakageNJ <= 0 {
		t.Error("clock gating broken: idle units must cost only leakage")
	}
	// Leakage scales with PE count.
	big := AccelEnergy(accel.M512(), accel.Activity{Cycles: 1000})
	if big.LeakageNJ <= idle.LeakageNJ {
		t.Error("M-512 leakage should exceed M-128")
	}
}

func TestCPUEnergy(t *testing.T) {
	p := DefaultCPUParams()
	var byClass [isa.NumClasses]uint64
	byClass[isa.ClassALU] = 1000
	byClass[isa.ClassLoad] = 300
	byClass[isa.ClassFPMul] = 200
	res := &cpu.Result{Cycles: 2000, Retired: 1500, ByClass: byClass}
	one := CPUEnergy(res, 1, p)
	sixteen := CPUEnergy(res, 16, p)
	if one <= 0 {
		t.Fatal("zero CPU energy")
	}
	// 16 cores pay 16x static power but the same dynamic energy.
	staticOne := res.Cycles * p.StaticWPerCore / p.ClockGHz
	if sixteen-one != 15*staticOne {
		t.Errorf("static scaling wrong: %v vs %v", sixteen-one, 15*staticOne)
	}
	// Memory instructions cost more than ALU instructions.
	var memHeavy, aluHeavy [isa.NumClasses]uint64
	memHeavy[isa.ClassLoad] = 1000
	aluHeavy[isa.ClassALU] = 1000
	em := CPUEnergy(&cpu.Result{Cycles: 1, ByClass: memHeavy}, 1, p)
	ea := CPUEnergy(&cpu.Result{Cycles: 1, ByClass: aluHeavy}, 1, p)
	if em <= ea {
		t.Error("memory instructions should cost more energy")
	}
}

func TestConfigEnergy(t *testing.T) {
	if ConfigEnergy(1000, 2.0) != 1000*MESAControllerW/2.0 {
		t.Error("config energy formula wrong")
	}
}
