package cpu

import (
	"fmt"
	"io"

	"mesa/internal/isa"
)

// Fingerprint writes a deterministic description of every timing-relevant
// core parameter to w, for content-hash cache keys. The FU pools are
// emitted in class order, not map order, so equal configs always produce
// equal fingerprints.
func (c Config) Fingerprint(w io.Writer) {
	fmt.Fprintf(w, "cpu|%s|%d|%d|%d|%d|%d|",
		c.Name, c.FetchWidth, c.IssueWidth, c.ROBSize, c.DecodeToIssue, c.MispredictPenalty)
	for cls := isa.Class(0); cls < isa.NumClasses; cls++ {
		if fu, ok := c.FUs[cls]; ok {
			fmt.Fprintf(w, "fu%d:%d,%d,%t|", cls, fu.Count, fu.Latency, fu.Pipelined)
		}
	}
	fmt.Fprintf(w, "%d|%t|%g", c.MemPorts, c.StridePrefetcher, c.ClockGHz)
}

// Fingerprint writes a deterministic description of the multicore baseline
// parameters (including the per-core config) to w.
func (mc MulticoreConfig) Fingerprint(w io.Writer) {
	fmt.Fprintf(w, "mc|%d|%g|%d|", mc.Cores, mc.ForkJoinOverhead, mc.SampleChunks)
	mc.Core.Fingerprint(w)
}
