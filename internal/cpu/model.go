package cpu

import (
	"fmt"
	"math"

	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/obs"
	"mesa/internal/sim"
)

// Core is the timing model. It implements sim.Tracer: attach it to a
// functional machine and run; Cycles reports the modeled execution time.
type Core struct {
	cfg  Config
	hier *mem.Hierarchy

	fetchCycle float64 // next fetch slot
	fetchInGrp int     // instructions fetched this cycle

	issueFree []float64 // issue-slot availability (IssueWidth round-robin)

	regReady [isa.NumRegs]float64

	fuFree  map[isa.Class][]float64
	memFree []float64

	rob     []float64 // retire times ring buffer
	robHead int

	lastRetire float64
	retired    uint64

	// lastStoreComplete models store-to-load conflicts conservatively
	// through the store queue.
	storeComplete map[uint32]float64

	// Per-PC stride-prefetcher state.
	pfLast   map[uint32]uint32
	pfStride map[uint32]int64

	Mispredicts uint64
	Prefetches  uint64

	// Observability: nil rec disables per-instruction trace emission.
	rec    *obs.Recorder
	recPID int32
}

// NewCore builds a timing model over the given memory hierarchy.
func NewCore(cfg Config, hier *mem.Hierarchy) *Core {
	c := &Core{
		cfg:           cfg,
		hier:          hier,
		fuFree:        make(map[isa.Class][]float64),
		memFree:       make([]float64, cfg.MemPorts),
		rob:           make([]float64, cfg.ROBSize),
		issueFree:     make([]float64, cfg.IssueWidth),
		storeComplete: make(map[uint32]float64),
		pfLast:        make(map[uint32]uint32),
		pfStride:      make(map[uint32]int64),
	}
	for cls, pool := range cfg.FUs {
		c.fuFree[cls] = make([]float64, pool.Count)
	}
	return c
}

// earliest returns the index of the earliest-available unit in the pool.
func earliest(pool []float64) int {
	best := 0
	for i := 1; i < len(pool); i++ {
		if pool[i] < pool[best] {
			best = i
		}
	}
	return best
}

// Trace implements sim.Tracer, advancing the timing model by one retired
// instruction.
func (c *Core) Trace(ev sim.Event) {
	in := ev.Inst

	// Fetch: FetchWidth instructions per cycle.
	fetchAt := c.fetchCycle
	c.fetchInGrp++
	if c.fetchInGrp >= c.cfg.FetchWidth {
		c.fetchCycle++
		c.fetchInGrp = 0
	}

	// Dispatch is gated by the front-end depth and ROB occupancy.
	dispatch := fetchAt + float64(c.cfg.DecodeToIssue)
	if robTail := c.rob[c.robHead]; robTail > dispatch {
		dispatch = robTail // ROB full: wait for the oldest entry to retire
	}

	// Operand readiness (full forwarding).
	ready := dispatch
	for _, r := range in.Sources() {
		if r != isa.RegNone && c.regReady[r] > ready {
			ready = c.regReady[r]
		}
	}
	// Stores also read their data register; Sources covers rs2 for stores.

	// Issue-slot arbitration.
	slot := earliest(c.issueFree)
	start := math.Max(ready, c.issueFree[slot])
	c.issueFree[slot] = start + 1

	var complete float64
	cls := in.Class()
	switch cls {
	case isa.ClassLoad:
		port := earliest(c.memFree)
		at := math.Max(start, c.memFree[port])
		c.memFree[port] = at + 1
		lat := float64(c.hier.AccessLatency(ev.Addr))
		complete = at + lat
		// L1 stride prefetcher: detect a per-PC stride and pull the next
		// access's line in ahead of time.
		if c.cfg.StridePrefetcher {
			if last, ok := c.pfLast[ev.PC]; ok {
				stride := int64(ev.Addr) - int64(last)
				if stride != 0 && stride == c.pfStride[ev.PC] {
					c.hier.Prefetch(uint32(int64(ev.Addr) + stride))
					c.Prefetches++
				}
				c.pfStride[ev.PC] = stride
			}
			c.pfLast[ev.PC] = ev.Addr
		}
		// Store-to-load dependence through the store queue.
		if sc, ok := c.storeComplete[ev.Addr&^3]; ok && sc > start {
			fwd := sc + 1
			if fwd < complete {
				complete = fwd // forwarded from the store queue
			}
		}
	case isa.ClassStore:
		port := earliest(c.memFree)
		at := math.Max(start, c.memFree[port])
		c.memFree[port] = at + 1
		c.hier.AccessLatency(ev.Addr)
		complete = at + 1
		c.storeComplete[ev.Addr&^3] = complete
	case isa.ClassSystem, isa.ClassInvalid:
		complete = start + 1
	default:
		pool, ok := c.fuFree[cls]
		if !ok {
			complete = start + 1
			break
		}
		fu := earliest(pool)
		at := math.Max(start, pool[fu])
		lat := float64(c.cfg.FUs[cls].Latency)
		if c.cfg.FUs[cls].Pipelined {
			pool[fu] = at + 1
		} else {
			pool[fu] = at + lat
		}
		complete = at + lat
	}

	// Branch prediction: static backward-taken / forward-not-taken.
	if in.IsBranch() {
		predictTaken := in.Imm < 0
		if ev.Taken != predictTaken {
			c.Mispredicts++
			refill := complete + float64(c.cfg.MispredictPenalty)
			if refill > c.fetchCycle {
				c.fetchCycle = refill
				c.fetchInGrp = 0
			}
		}
	}

	// Writeback.
	if rd, ok := in.Dest(); ok {
		c.regReady[rd] = complete
	}

	// In-order retirement.
	retire := math.Max(complete, c.lastRetire)
	c.lastRetire = retire
	c.rob[c.robHead] = retire
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.retired++

	if c.rec.Enabled() {
		c.rec.Complete(c.recPID, 0, "cpu", in.Op.String(), start, complete-start)
	}
}

// Cycles returns the modeled execution time so far.
func (c *Core) Cycles() float64 { return c.lastRetire }

// Retired returns the instruction count observed.
func (c *Core) Retired() uint64 { return c.retired }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.lastRetire == 0 {
		return 0
	}
	return float64(c.retired) / c.lastRetire
}

// Result summarizes a timed execution.
type Result struct {
	Cycles      float64
	Retired     uint64
	IPC         float64
	Mispredicts uint64
	ByClass     [isa.NumClasses]uint64
	AMAT        float64
}

// Time runs prog to completion on a functional machine attached to a fresh
// timing core and returns the modeled cycles.
func Time(cfg Config, prog *isa.Program, memory *mem.Memory, hier *mem.Hierarchy, maxSteps uint64) (*Result, error) {
	machine := sim.New(prog, memory)
	return TimeMachine(cfg, machine, hier, maxSteps)
}

// TimeMachine is Time over a pre-seeded machine.
func TimeMachine(cfg Config, machine *sim.Machine, hier *mem.Hierarchy, maxSteps uint64) (*Result, error) {
	core := NewCore(cfg, hier)
	machine.Attach(core)
	if _, err := machine.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	return &Result{
		Cycles:      core.Cycles(),
		Retired:     core.Retired(),
		IPC:         core.IPC(),
		Mispredicts: core.Mispredicts,
		ByClass:     machine.Stats.ByClass,
		AMAT:        hier.AMAT(),
	}, nil
}
