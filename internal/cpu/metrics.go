package cpu

import (
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/obs"
	"mesa/internal/sim"
)

// AttachRecorder routes per-instruction timing slices (issue to complete)
// to r on the given trace process. A nil recorder disables tracing; the
// timing model is unaffected either way.
func (c *Core) AttachRecorder(r *obs.Recorder, pid int32) {
	c.rec = r
	c.recPID = pid
}

// TimeTraced is Time with the core's per-instruction spans recorded to rec
// on the obs.PIDCPUTiming track.
func TimeTraced(cfg Config, prog *isa.Program, memory *mem.Memory, hier *mem.Hierarchy, maxSteps uint64, rec *obs.Recorder) (*Result, error) {
	machine := sim.New(prog, memory)
	core := NewCore(cfg, hier)
	core.AttachRecorder(rec, obs.PIDCPUTiming)
	machine.Attach(core)
	if _, err := machine.Run(maxSteps); err != nil {
		return nil, err
	}
	return &Result{
		Cycles:      core.Cycles(),
		Retired:     core.Retired(),
		IPC:         core.IPC(),
		Mispredicts: core.Mispredicts,
		ByClass:     machine.Stats.ByClass,
		AMAT:        hier.AMAT(),
	}, nil
}

// Metrics snapshots the timed run for the stats report.
func (r *Result) Metrics() []obs.Metric {
	return []obs.Metric{
		obs.M("cycles", r.Cycles),
		obs.Count("retired", r.Retired),
		obs.M("ipc", r.IPC),
		obs.Count("mispredicts", r.Mispredicts),
		obs.M("amat", r.AMAT),
	}
}
