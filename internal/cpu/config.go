// Package cpu implements a trace-driven out-of-order CPU timing model: the
// reproduction's stand-in for the paper's gem5-simulated quad-issue BOOM
// baseline. The model consumes the functional simulator's retired
// instruction stream and computes cycle counts under fetch-width, issue,
// reorder-buffer, functional-unit, branch-misprediction, and cache-latency
// constraints — the first-order effects that determine the baseline numbers
// in every figure.
package cpu

import "mesa/internal/isa"

// FUPool describes one class of functional units.
type FUPool struct {
	Count     int
	Latency   int
	Pipelined bool
}

// Config parameterizes the out-of-order core.
type Config struct {
	Name string

	FetchWidth int
	IssueWidth int
	ROBSize    int

	// DecodeToIssue is the front-end depth in cycles (fetch→rename→issue).
	DecodeToIssue int

	// MispredictPenalty is the pipeline refill cost of a branch
	// misprediction.
	MispredictPenalty int

	// FUs gives the functional-unit pools by class; loads/stores use
	// MemPorts and the cache hierarchy's latency.
	FUs map[isa.Class]FUPool

	MemPorts int

	// StridePrefetcher enables the L1 stride prefetcher: per-PC stride
	// detection with next-access prefetch, standard in BOOM-class cores.
	StridePrefetcher bool

	ClockGHz float64
}

// DefaultBOOM returns a quad-issue out-of-order configuration matching the
// paper's baseline core (BOOM-class, 2 GHz).
func DefaultBOOM() Config {
	return Config{
		Name:              "ooo-4wide",
		FetchWidth:        4,
		IssueWidth:        4,
		ROBSize:           128,
		DecodeToIssue:     6,
		MispredictPenalty: 12,
		FUs: map[isa.Class]FUPool{
			isa.ClassALU:    {Count: 4, Latency: 1, Pipelined: true},
			isa.ClassMul:    {Count: 2, Latency: 3, Pipelined: true},
			isa.ClassDiv:    {Count: 1, Latency: 12, Pipelined: false},
			isa.ClassFPAdd:  {Count: 2, Latency: 3, Pipelined: true},
			isa.ClassFPMul:  {Count: 2, Latency: 5, Pipelined: true},
			isa.ClassFPDiv:  {Count: 1, Latency: 16, Pipelined: false},
			isa.ClassBranch: {Count: 2, Latency: 1, Pipelined: true},
			isa.ClassJump:   {Count: 2, Latency: 1, Pipelined: true},
		},
		MemPorts:         2,
		StridePrefetcher: true,
		ClockGHz:         2.0,
	}
}

// SingleIssue returns a modest in-order-width configuration used for the
// DynaSpAM comparison's single-core baseline (the DynaSpAM paper's gem5
// parameters describe a smaller core).
func SingleIssue() Config {
	c := DefaultBOOM()
	c.Name = "ooo-2wide"
	c.FetchWidth = 2
	c.IssueWidth = 2
	c.ROBSize = 64
	c.FUs = map[isa.Class]FUPool{
		isa.ClassALU:    {Count: 2, Latency: 1, Pipelined: true},
		isa.ClassMul:    {Count: 1, Latency: 3, Pipelined: true},
		isa.ClassDiv:    {Count: 1, Latency: 12, Pipelined: false},
		isa.ClassFPAdd:  {Count: 1, Latency: 3, Pipelined: true},
		isa.ClassFPMul:  {Count: 1, Latency: 5, Pipelined: true},
		isa.ClassFPDiv:  {Count: 1, Latency: 16, Pipelined: false},
		isa.ClassBranch: {Count: 1, Latency: 1, Pipelined: true},
		isa.ClassJump:   {Count: 1, Latency: 1, Pipelined: true},
	}
	c.MemPorts = 1
	return c
}
