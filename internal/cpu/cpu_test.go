package cpu

import (
	"testing"

	"mesa/internal/asm"
	"mesa/internal/kernels"
	"mesa/internal/mem"
)

func timeSrc(t *testing.T, cfg Config, src string) *Result {
	t.Helper()
	p, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	res, err := Time(cfg, p, mem.NewMemory(), hier, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const independentLoop = `
	li t0, 0
	li t1, 1000
loop:
	add  t2, t3, t4
	add  t5, t6, a0
	add  a1, a2, a3
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`

const dependentLoop = `
	li t0, 0
	li t1, 1000
loop:
	add  t2, t2, t3
	add  t2, t2, t4
	add  t2, t2, t5
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`

// TestILPSensitivity: an OoO core must execute independent operations
// faster than a dependent chain of the same length.
func TestILPSensitivity(t *testing.T) {
	cfg := DefaultBOOM()
	ind := timeSrc(t, cfg, independentLoop)
	dep := timeSrc(t, cfg, dependentLoop)
	if ind.Retired != dep.Retired {
		t.Fatalf("instruction counts differ: %d vs %d", ind.Retired, dep.Retired)
	}
	if ind.Cycles >= dep.Cycles {
		t.Errorf("independent %v cycles !< dependent %v cycles", ind.Cycles, dep.Cycles)
	}
	if ind.IPC <= 1.5 {
		t.Errorf("quad-issue IPC on independent code = %.2f, want > 1.5", ind.IPC)
	}
}

// TestIssueWidthMatters: the 2-wide core must be slower than the 4-wide.
func TestIssueWidthMatters(t *testing.T) {
	wide := timeSrc(t, DefaultBOOM(), independentLoop)
	narrow := timeSrc(t, SingleIssue(), independentLoop)
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("2-wide %v !> 4-wide %v", narrow.Cycles, wide.Cycles)
	}
}

// TestMemoryLatencyVisible: a pointer-chasing loop (dependent loads) must be
// far slower than an arithmetic loop of the same instruction count. The
// stride prefetcher is disabled because the chase uses a constant stride
// (a random chain would defeat it in practice).
func TestMemoryLatencyVisible(t *testing.T) {
	cfg := DefaultBOOM()
	cfg.StridePrefetcher = false
	p, err := asm.Assemble(0x1000, `
	li t0, 0
	li t1, 500
	li t2, 0x100000
loop:
	lw   t2, 0(t2)
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	// A pointer chain striding one cache line.
	for i := uint32(0); i < 1000; i++ {
		m.StoreWord(0x100000+64*i, 0x100000+64*(i+1))
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	chase, err := Time(cfg, p, m, hier, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	arith := timeSrc(t, cfg, dependentLoop)
	cyclesPerIterChase := chase.Cycles / 500
	cyclesPerIterArith := arith.Cycles / 1000
	if cyclesPerIterChase <= 2*cyclesPerIterArith {
		t.Errorf("pointer chase %.1f c/iter !>> arithmetic %.1f c/iter",
			cyclesPerIterChase, cyclesPerIterArith)
	}
	if chase.AMAT <= 3 {
		t.Errorf("AMAT = %.1f, want above L1 hit", chase.AMAT)
	}
}

// TestStridePrefetcherHelps: a strided streaming loop must run faster with
// the L1 stride prefetcher enabled.
func TestStridePrefetcherHelps(t *testing.T) {
	src := `
	li t0, 0
	li t1, 2000
	li t2, 0x100000
loop:
	lw   t3, 0(t2)
	addi t2, t2, 64
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	with := DefaultBOOM()
	without := DefaultBOOM()
	without.StridePrefetcher = false
	fast := timeSrc(t, with, src)
	slow := timeSrc(t, without, src)
	if fast.Cycles >= slow.Cycles {
		t.Errorf("prefetcher did not help: %.0f vs %.0f cycles", fast.Cycles, slow.Cycles)
	}
}

// TestBranchMispredictPenalty: a data-dependent forward branch costs more
// than a well-predicted loop.
func TestBranchMispredictPenalty(t *testing.T) {
	cfg := DefaultBOOM()
	predictable := timeSrc(t, cfg, `
	li t0, 0
	li t1, 2000
loop:
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`)
	// Forward branch taken every other iteration: ~50% mispredicts under
	// the static not-taken predictor.
	alternating := timeSrc(t, cfg, `
	li t0, 0
	li t1, 2000
loop:
	andi t2, t0, 1
	beq  t2, zero, skip
	addi t3, t3, 1
skip:
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`)
	if alternating.Mispredicts < 900 {
		t.Errorf("mispredicts = %d, want ~1000", alternating.Mispredicts)
	}
	perIterPred := predictable.Cycles / 2000
	perIterAlt := alternating.Cycles / 2000
	if perIterAlt <= perIterPred+2 {
		t.Errorf("mispredict penalty invisible: %.2f vs %.2f c/iter", perIterAlt, perIterPred)
	}
}

// TestKernelsRunUnderTimingModel times every kernel and sanity-checks IPC.
func TestKernelsRunUnderTimingModel(t *testing.T) {
	cfg := DefaultBOOM()
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, _ := k.MustProgram()
			m := k.NewMemory(42)
			hier := mem.MustHierarchy(mem.DefaultHierarchy())
			res, err := Time(cfg, prog, m, hier, 20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.IPC <= 0.05 || res.IPC > float64(cfg.IssueWidth) {
				t.Errorf("%s IPC = %.2f out of range", k.Name, res.IPC)
			}
			if err := k.Verify(m); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %.0f cycles, IPC %.2f, AMAT %.1f", k.Name, res.Cycles, res.IPC, res.AMAT)
		})
	}
}

// TestTimeParallelScales: chunked parallel timing must beat single-core.
func TestTimeParallelScales(t *testing.T) {
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	mc := DefaultMulticore()
	par, err := TimeParallel(mc, func(chunk, cores int) (*Result, error) {
		prog, _ := k.MustChunkProgram(chunk, cores)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		return Time(mc.Core, prog, k.NewMemory(42), hier, 20_000_000)
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := k.MustProgram()
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	serial, err := Time(mc.Core, prog, k.NewMemory(42), hier, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	speedup := serial.Cycles / par.Cycles
	if speedup < 4 || speedup > 16 {
		t.Errorf("16-core speedup = %.1fx, want within (4, 16)", speedup)
	}
}

func TestTimeParallelValidation(t *testing.T) {
	mc := DefaultMulticore()
	mc.Cores = 0
	if _, err := TimeParallel(mc, nil); err == nil {
		t.Error("invalid core count accepted")
	}
}
