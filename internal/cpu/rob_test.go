package cpu

import (
	"testing"

	"mesa/internal/asm"
	"mesa/internal/mem"
)

// TestROBLimitsMLP: with a tiny reorder buffer, independent long-latency
// loads cannot overlap (memory-level parallelism collapses), so a stream of
// cache-missing loads slows down markedly versus a large ROB.
func TestROBLimitsMLP(t *testing.T) {
	// Four independent loads per iteration, each in its own 4 KiB page so
	// they all miss; page-apart addressing needs one base register per
	// stream to keep load offsets inside the 12-bit range.
	src := `
	li t0, 0
	li t1, 400
	li t2, 0x100000
	li a0, 0x101000
	li a1, 0x102000
	li a2, 0x103000
loop:
	lw   t3, 0(t2)
	lw   t4, 0(a0)
	lw   t5, 0(a1)
	lw   t6, 0(a2)
	addi t2, t2, 64
	addi a0, a0, 64
	addi a1, a1, 64
	addi a2, a2, 64
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	run := func(rob int) float64 {
		cfg := DefaultBOOM()
		cfg.ROBSize = rob
		cfg.StridePrefetcher = false
		p, err := asm.Assemble(0x1000, src)
		if err != nil {
			t.Fatal(err)
		}
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		res, err := Time(cfg, p, mem.NewMemory(), hier, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	big := run(128)
	tiny := run(4)
	if tiny <= big*1.3 {
		t.Errorf("4-entry ROB (%.0f cyc) should be much slower than 128-entry (%.0f cyc)", tiny, big)
	}
}

// TestMemPortsLimitThroughput: halving memory ports slows a load-dense loop.
func TestMemPortsLimitThroughput(t *testing.T) {
	src := `
	li t0, 0
	li t1, 1000
	li t2, 0x100000
loop:
	lw   t3, 0(t2)
	lw   t4, 4(t2)
	lw   t5, 8(t2)
	lw   t6, 12(t2)
	addi t2, t2, 16
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	run := func(ports int) float64 {
		cfg := DefaultBOOM()
		cfg.MemPorts = ports
		p, err := asm.Assemble(0x1000, src)
		if err != nil {
			t.Fatal(err)
		}
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		res, err := Time(cfg, p, mem.NewMemory(), hier, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	two := run(2)
	one := run(1)
	if one <= two {
		t.Errorf("1 port (%.0f cyc) should be slower than 2 ports (%.0f cyc)", one, two)
	}
}

// TestUnpipelinedDivStalls: back-to-back divisions serialize on the
// unpipelined divider.
func TestUnpipelinedDivStalls(t *testing.T) {
	dep := `
	li t0, 0
	li t1, 500
loop:
	div  t2, t3, t4
	div  t5, t6, t4
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	add := `
	li t0, 0
	li t1, 500
loop:
	add  t2, t3, t4
	add  t5, t6, t4
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	cfg := DefaultBOOM()
	pDiv, _ := asm.Assemble(0x1000, dep)
	pAdd, _ := asm.Assemble(0x1000, add)
	hier1 := mem.MustHierarchy(mem.DefaultHierarchy())
	hier2 := mem.MustHierarchy(mem.DefaultHierarchy())
	mDiv := mem.NewMemory()
	rDiv, err := Time(cfg, pDiv, mDiv, hier1, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rAdd, err := Time(cfg, pAdd, mem.NewMemory(), hier2, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent divs per iteration on one unpipelined divider: at
	// least ~24 cycles/iter vs ~1 for adds.
	if rDiv.Cycles < 8*rAdd.Cycles {
		t.Errorf("div loop %.0f cyc not >> add loop %.0f cyc", rDiv.Cycles, rAdd.Cycles)
	}
}
