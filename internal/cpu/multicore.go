package cpu

import "fmt"

// MulticoreConfig models the paper's 16-core CPU baseline: a data-parallel
// (OpenMP) loop is statically chunked across cores; the parallel region
// costs the slowest chunk plus fork/join overhead. Each core has a private
// L1 and the model charges the shared-L2 hierarchy per chunk.
type MulticoreConfig struct {
	Core  Config
	Cores int

	// ForkJoinOverhead is the cycles spent spawning and joining the
	// parallel region (thread wakeup, barrier).
	ForkJoinOverhead float64

	// SampleChunks bounds how many chunks are actually simulated; chunk
	// timings are symmetric for regular kernels, so the model simulates the
	// first SampleChunks chunks and takes the maximum, scaling simulation
	// cost down. 0 means simulate every chunk.
	SampleChunks int
}

// DefaultMulticore returns the paper's baseline: 16 quad-issue OoO cores.
func DefaultMulticore() MulticoreConfig {
	return MulticoreConfig{
		Core:             DefaultBOOM(),
		Cores:            16,
		ForkJoinOverhead: 3000,
		SampleChunks:     2,
	}
}

// ChunkRunner times one static chunk of a parallel loop on one core. The
// chunk index selects the iteration subrange [chunk*N/Cores, (chunk+1)*N/Cores).
type ChunkRunner func(chunk, cores int) (*Result, error)

// TimeParallel models a parallel region. For serial workloads pass a runner
// that ignores the chunk index and set Cores to 1.
func TimeParallel(cfg MulticoreConfig, run ChunkRunner) (*Result, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("cpu: invalid core count %d", cfg.Cores)
	}
	samples := cfg.SampleChunks
	if samples <= 0 || samples > cfg.Cores {
		samples = cfg.Cores
	}
	var worst *Result
	var total Result
	for chunk := 0; chunk < samples; chunk++ {
		r, err := run(chunk, cfg.Cores)
		if err != nil {
			return nil, err
		}
		total.Retired += r.Retired * uint64(cfg.Cores) / uint64(samples)
		total.Mispredicts += r.Mispredicts * uint64(cfg.Cores) / uint64(samples)
		if worst == nil || r.Cycles > worst.Cycles {
			worst = r
		}
	}
	total.Cycles = worst.Cycles
	if cfg.Cores > 1 {
		total.Cycles += cfg.ForkJoinOverhead
	}
	total.AMAT = worst.AMAT
	if total.Cycles > 0 {
		total.IPC = float64(total.Retired) / total.Cycles
	}
	return &total, nil
}
