// Package opencgra reimplements the comparison baseline of the paper's
// Figure 12: an OpenCGRA-style compiler flow that maps a loop's dataflow
// graph onto a coarse-grained reconfigurable array with *time-multiplexed*
// PEs using iterative modulo scheduling. Unlike MESA's space-only
// single-pass hardware mapper, this scheduler searches (II, time-slot, PE)
// assignments with backtracking-by-retry, the classic software approach
// (ResMII/RecMII lower bounds, modulo reservation table).
package opencgra

import (
	"fmt"

	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/noc"
	"mesa/internal/sched"
)

// Config describes the CGRA target: a homogeneous 2D array of PEs connected
// in a mesh, each PE executing one operation per II time slots.
type Config struct {
	Rows, Cols int
	// MemUnits is the number of PEs that can issue memory operations per
	// cycle (the array's memory interfaces).
	MemUnits int
	// MaxII bounds the II search.
	MaxII int
	// OpLat gives operation latencies by class (loads use LoadLat).
	OpLat   [isa.NumClasses]float64
	LoadLat float64
}

// Default returns a CGRA comparable to the M-128 backend: same PE count and
// per-op latencies, 4 memory interfaces (OpenCGRA's default tile memory
// configuration is port-limited similarly).
func Default(rows, cols int) Config {
	var lat [isa.NumClasses]float64
	lat[isa.ClassALU] = 1
	lat[isa.ClassMul] = 3
	lat[isa.ClassDiv] = 12
	lat[isa.ClassBranch] = 1
	lat[isa.ClassJump] = 1
	lat[isa.ClassFPAdd] = 3
	lat[isa.ClassFPMul] = 5
	lat[isa.ClassFPDiv] = 16
	lat[isa.ClassStore] = 1
	return Config{Rows: rows, Cols: cols, MemUnits: 4, MaxII: 64, OpLat: lat, LoadLat: 6}
}

// Schedule is the modulo-scheduling result.
type Schedule struct {
	II          int       // initiation interval (cycles per iteration, steady state)
	Length      float64   // schedule length of one iteration (latency)
	StartCycle  []float64 // per-node issue cycle
	PE          []noc.Coord
	IPC         float64 // operations per cycle at steady state
	Ops         int
	FailedAtMax bool
}

func (c Config) latOf(n *dfg.Node) float64 {
	if n.Inst.IsLoad() {
		return c.LoadLat
	}
	return c.OpLat[n.Inst.Class()]
}

// ModuloSchedule maps the graph onto the CGRA, searching increasing II until
// a legal schedule exists (or MaxII is exceeded).
func ModuloSchedule(g *dfg.Graph, cfg Config) (*Schedule, error) {
	nPE := cfg.Rows * cfg.Cols
	nOps := g.Len()
	if nOps == 0 {
		return nil, fmt.Errorf("opencgra: empty graph")
	}

	// Lower bounds from the shared machinery (internal/sched): resource
	// (PEs + memory interfaces) and recurrence (live-out registers consumed
	// as live-ins). This baseline predates predicated offload, so predicate
	// live-ins are not recurrence consumers here.
	mii := sched.MinII(
		sched.ResMII(nOps, nPE, sched.MemOps(g), cfg.MemUnits),
		sched.RecMII(g, cfg.latOf, false))

	for ii := mii; ii <= cfg.MaxII; ii++ {
		if s, ok := trySchedule(g, cfg, ii); ok {
			s.Ops = nOps
			s.IPC = float64(nOps) / float64(s.II)
			return s, nil
		}
	}
	return &Schedule{II: cfg.MaxII, FailedAtMax: true, Ops: nOps,
		IPC: float64(nOps) / float64(cfg.MaxII)}, nil
}

// trySchedule attempts a modulo schedule at a fixed II: list scheduling in
// program order with a modulo reservation table over (PE, slot).
func trySchedule(g *dfg.Graph, cfg Config, ii int) (*Schedule, bool) {
	nPE := cfg.Rows * cfg.Cols
	// Modulo reservation table over (PE, slot) plus the counted budget of
	// memory interfaces per slot.
	mrt := sched.NewTable(nPE, ii)
	memBusy := sched.NewBudget(ii, cfg.MemUnits)

	start := make([]float64, g.Len())
	pePos := make([]noc.Coord, g.Len())
	peIdx := make([]int, g.Len())
	mesh := noc.Mesh{}
	length := 0.0
	var scratch []dfg.Edge

	for i := range g.Nodes {
		n := &g.Nodes[i]
		isMem := sched.IsMemOp(n)
		// Earliest start: parents' finish plus one-hop transfer (the
		// scheduler routes through the mesh; we charge distance at
		// placement below and a minimum single-cycle hop here).
		est := 0.0
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			p := e.From
			fin := start[p] + cfg.latOf(g.Node(p))
			if fin > est {
				est = fin
			}
		}

		placed := false
		// Search slots from est upward (bounded pass), and PEs by index.
		for dt := 0; dt < 4*ii && !placed; dt++ {
			tm := int(est) + dt
			slot := mrt.Slot(tm)
			if isMem && !memBusy.Free(slot) {
				continue
			}
			for pe := 0; pe < nPE; pe++ {
				if mrt.Busy(pe, slot) {
					continue
				}
				pos := noc.Coord{Row: pe / cfg.Cols, Col: pe % cfg.Cols}
				// Respect transfer distance from parents: start must cover
				// parent finish + hop distance.
				ok := true
				arr := float64(tm)
				for _, e := range scratch {
					p := e.From
					d := float64(mesh.Latency(pePos[p], pos))
					if start[p]+cfg.latOf(g.Node(p))+d > float64(tm) {
						ok = false
						break
					}
					_ = arr
				}
				if !ok {
					continue
				}
				mrt.Reserve(pe, slot)
				if isMem {
					memBusy.Take(slot)
				}
				start[i] = float64(tm)
				pePos[i] = pos
				peIdx[i] = pe
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
		if fin := start[i] + cfg.latOf(n); fin > length {
			length = fin
		}
	}
	return &Schedule{II: ii, Length: length, StartCycle: start, PE: pePos}, true
}
