package opencgra

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
)

func graphFor(t *testing.T, name string) *core.LDFG {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M128()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestModuloScheduleBasic(t *testing.T) {
	l := graphFor(t, "nn")
	cfg := Default(16, 8)
	s, err := ModuloSchedule(l.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FailedAtMax {
		t.Fatal("nn should schedule")
	}
	if s.II < 1 {
		t.Errorf("II = %d", s.II)
	}
	if s.IPC <= 0 {
		t.Errorf("IPC = %f", s.IPC)
	}
	// Schedule legality: no two ops share (PE, slot); deps respected.
	type slotKey struct {
		pe   int
		slot int
	}
	seen := map[slotKey]int{}
	for i := range l.Graph.Nodes {
		pe := s.PE[i].Row*cfg.Cols + s.PE[i].Col
		key := slotKey{pe, int(s.StartCycle[i]) % s.II}
		if prev, dup := seen[key]; dup {
			t.Errorf("ops %d and %d share PE %d slot %d", prev, i, key.pe, key.slot)
		}
		seen[key] = i
		for _, e := range l.Graph.Nodes[i].Parents(nil) {
			pfin := s.StartCycle[e.From] + cfg.latOf(l.Graph.Node(e.From))
			if s.StartCycle[i] < pfin {
				t.Errorf("op %d starts %.0f before parent %d finishes %.0f",
					i, s.StartCycle[i], e.From, pfin)
			}
		}
	}
}

func TestModuloScheduleMemoryBound(t *testing.T) {
	// A memory-heavy loop's II must respect the memory-unit bound.
	l := graphFor(t, "cfd") // 6 memory ops
	cfg := Default(16, 8)
	cfg.MemUnits = 2
	s, err := ModuloSchedule(l.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.II < 3 { // 6 mem ops / 2 units
		t.Errorf("II = %d, want >= 3", s.II)
	}
}

func TestModuloScheduleRecurrenceBound(t *testing.T) {
	// nw carries a running max: II >= recurrence latency.
	l := graphFor(t, "nw")
	s, err := ModuloSchedule(l.Graph, Default(16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if s.II < 2 {
		t.Errorf("II = %d, want >= 2 for the loop-carried chain", s.II)
	}
}

func TestModuloScheduleTinyArray(t *testing.T) {
	// On a tiny array, resource pressure must raise II.
	l := graphFor(t, "srad")
	big, err := ModuloSchedule(l.Graph, Default(16, 8))
	if err != nil {
		t.Fatal(err)
	}
	small, err := ModuloSchedule(l.Graph, Default(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if small.II <= big.II {
		t.Errorf("4-PE II %d !> 128-PE II %d", small.II, big.II)
	}
}

func TestAllKernelsSchedule(t *testing.T) {
	for _, name := range kernels.Names() {
		l := graphFor(t, name)
		s, err := ModuloSchedule(l.Graph, Default(16, 8))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		t.Logf("%s: II=%d, len=%.0f, IPC=%.2f", name, s.II, s.Length, s.IPC)
	}
}
