// Package dynaspam models the DynaSpAM comparison point (Liu et al., ISCA
// 2015, the paper's Figure 14): dynamic spatial architecture mapping of
// out-of-order instruction schedules onto a fixed *feed-forward* (1D) CGRA
// embedded in the CPU pipeline. The mechanism differs from MESA in three
// ways this model captures: the array is small and lives inside the core
// (loops must fit, memory goes through the core's LSU ports), the
// interconnect is strictly level-to-level feed-forward (placement by
// dependence depth, no 2D routing), and speculation lets iterations pipeline
// through the array.
package dynaspam

import (
	"fmt"

	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// Config describes the in-core feed-forward array.
type Config struct {
	// Levels and FUsPerLevel give the array geometry (DynaSpAM evaluates a
	// DySER-like 8×4 feed-forward fabric).
	Levels      int
	FUsPerLevel int

	// MemPorts is the core LSU's port count, shared with the array.
	MemPorts int

	// LevelLat is the transfer latency between adjacent levels.
	LevelLat float64

	// OpLat gives operation latencies by class.
	OpLat   [isa.NumClasses]float64
	LoadLat float64

	// Speculative enables cross-iteration pipelining (DynaSpAM's results
	// are reported with speculation enabled).
	Speculative bool
}

// Default returns the configuration used for Figure 14.
func Default() Config {
	var lat [isa.NumClasses]float64
	lat[isa.ClassALU] = 1
	lat[isa.ClassMul] = 3
	lat[isa.ClassDiv] = 12
	lat[isa.ClassBranch] = 1
	lat[isa.ClassJump] = 1
	lat[isa.ClassFPAdd] = 3
	lat[isa.ClassFPMul] = 5
	lat[isa.ClassFPDiv] = 16
	lat[isa.ClassStore] = 1
	return Config{
		Levels: 8, FUsPerLevel: 8, MemPorts: 2,
		LevelLat: 1, OpLat: lat, LoadLat: 6, Speculative: true,
	}
}

// Result is the modeled mapping outcome.
type Result struct {
	Qualified bool
	Reason    string

	// IterLat is the latency of one iteration through the array.
	IterLat float64

	// II is the steady-state initiation interval with speculation.
	II float64

	// Depth is the dependence depth (levels used).
	Depth int
}

func (c Config) latOf(n *dfg.Node) float64 {
	if n.Inst.IsLoad() {
		return c.LoadLat
	}
	return c.OpLat[n.Inst.Class()]
}

// Map places the loop's DFG onto the feed-forward array: each node's level
// is its dependence depth; a level holds at most FUsPerLevel operations.
// Loops deeper than the array or wider than a level's FU budget (after
// level-splitting) do not qualify and stay on the core.
func Map(g *dfg.Graph, cfg Config) (*Result, error) {
	if g.Len() == 0 {
		return nil, fmt.Errorf("dynaspam: empty graph")
	}
	capacity := cfg.Levels * cfg.FUsPerLevel
	if g.Len() > capacity {
		return &Result{Qualified: false, Reason: fmt.Sprintf("loop of %d ops exceeds %d-FU array", g.Len(), capacity)}, nil
	}

	// Dependence depth with level-occupancy splitting: if a level is full,
	// the op slides to the next level (feed-forward links only go forward,
	// so this is always legal).
	level := make([]int, g.Len())
	occupancy := make(map[int]int)
	var scratch []dfg.Edge
	maxLevel := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		lv := 0
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			if level[e.From]+1 > lv {
				lv = level[e.From] + 1
			}
		}
		for occupancy[lv] >= cfg.FUsPerLevel {
			lv++
		}
		if lv >= cfg.Levels {
			return &Result{Qualified: false, Reason: fmt.Sprintf("dependence depth %d exceeds %d levels", lv+1, cfg.Levels)}, nil
		}
		occupancy[lv]++
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}

	// Iteration latency: critical path through levels with level-to-level
	// transfer latency.
	complete := make([]float64, g.Len())
	iterLat := 0.0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		arr := 0.0
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			hop := float64(level[i]-level[e.From]) * cfg.LevelLat
			if hop < cfg.LevelLat {
				hop = cfg.LevelLat
			}
			if a := complete[e.From] + hop; a > arr {
				arr = a
			}
		}
		complete[i] = arr + cfg.latOf(n)
		if complete[i] > iterLat {
			iterLat = complete[i]
		}
	}

	// Steady-state II with speculation: limited by LSU ports and the
	// loop-carried recurrence.
	memOps := 0
	for i := range g.Nodes {
		if g.Nodes[i].Inst.IsMem() && !g.Nodes[i].Fwd {
			memOps++
		}
	}
	ii := iterLat // without speculation the array drains per iteration
	if cfg.Speculative {
		ii = float64(memOps) / float64(cfg.MemPorts)
		liveIn := make(map[isa.Reg]bool)
		for i := range g.Nodes {
			n := &g.Nodes[i]
			for k := 0; k < 3; k++ {
				if n.Src[k] == dfg.None && n.LiveIn[k] != isa.RegNone {
					liveIn[n.LiveIn[k]] = true
				}
			}
		}
		for r, id := range g.LiveOut {
			if liveIn[r] {
				if l := cfg.latOf(g.Node(id)) + 1; l > ii {
					ii = l
				}
			}
		}
		if ii < 1 {
			ii = 1
		}
	}

	return &Result{Qualified: true, IterLat: iterLat, II: ii, Depth: maxLevel + 1}, nil
}

// LoopCycles models executing n iterations on the array.
func (r *Result) LoopCycles(n uint64) float64 {
	if !r.Qualified || n == 0 {
		return 0
	}
	if n == 1 {
		return r.IterLat
	}
	return r.IterLat + float64(n-1)*r.II
}
