package dynaspam

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
)

func graphFor(t *testing.T, name string) *core.LDFG {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M128()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMapSmallLoop(t *testing.T) {
	l := graphFor(t, "nn")
	r, err := Map(l.Graph, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Qualified {
		t.Fatalf("nn should qualify: %s", r.Reason)
	}
	if r.IterLat <= 0 || r.II <= 0 || r.Depth < 2 {
		t.Errorf("result = %+v", r)
	}
	// With speculation, the II must beat the serial iteration latency.
	if r.II >= r.IterLat {
		t.Errorf("II %v !< IterLat %v", r.II, r.IterLat)
	}
	if c := r.LoopCycles(100); c <= r.IterLat || c >= 100*r.IterLat {
		t.Errorf("LoopCycles(100) = %v out of range", c)
	}
}

func TestLargeLoopDoesNotQualify(t *testing.T) {
	l := graphFor(t, "srad") // 64 instructions on an 8x8 array with depth limits
	cfg := Default()
	cfg.Levels, cfg.FUsPerLevel = 4, 8 // 32-FU array
	r, err := Map(l.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Qualified {
		t.Error("srad should not fit a 32-FU feed-forward array")
	}
	if r.Reason == "" {
		t.Error("missing disqualification reason")
	}
}

func TestSpeculationToggle(t *testing.T) {
	l := graphFor(t, "backprop")
	withSpec := Default()
	noSpec := Default()
	noSpec.Speculative = false
	rs, err := Map(l.Graph, withSpec)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Map(l.Graph, noSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rs.II >= rn.II {
		t.Errorf("speculative II %v !< non-speculative %v", rs.II, rn.II)
	}
}

func TestDepthSplitting(t *testing.T) {
	// A wide loop (many independent ops) must slide ops to later levels
	// when a level fills, not fail.
	l := graphFor(t, "cfd")
	cfg := Default()
	cfg.FUsPerLevel = 3
	cfg.Levels = 16
	r, err := Map(l.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Qualified {
		t.Fatalf("cfd should still map with narrow levels: %s", r.Reason)
	}
}
