package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"mesa/internal/kernels"
	"mesa/internal/mapping"
)

// LoadOptions configures a LoadGen run.
type LoadOptions struct {
	// Kernels to request (default: every built-in kernel).
	Kernels []string
	// Mappers to cross with the kernels (default: every registered
	// strategy).
	Mappers []string
	// Backend for every request (default M-128).
	Backend string
	// Clients is the number of concurrent HTTP clients (default 8).
	Clients int
	// Rounds repeats the whole kernel×mapper matrix (default 1); rounds
	// after the first exercise the warm path.
	Rounds int
}

// LoadStats summarizes a LoadGen run.
type LoadStats struct {
	Requests   int // requests issued
	Mismatches int // responses that differed from the direct library call
}

// LoadGen hammers baseURL's /v1/simulate with the kernel×mapper matrix from
// concurrent clients and verifies every response body is byte-identical to
// the direct library call (EncodeResponse ∘ Simulate on ref). Any transport
// failure, non-200 status, or body mismatch is an error: the server must
// produce exactly the library's bytes whether the caches are cold, warm,
// bounded, or on disk.
func LoadGen(client *http.Client, baseURL string, ref *Server, o LoadOptions) (LoadStats, error) {
	if len(o.Kernels) == 0 {
		o.Kernels = kernels.Names()
	}
	if len(o.Mappers) == 0 {
		o.Mappers = mapping.Names()
	}
	if o.Backend == "" {
		o.Backend = "M-128"
	}
	if o.Clients < 1 {
		o.Clients = 8
	}
	if o.Rounds < 1 {
		o.Rounds = 1
	}

	var reqs []*Request
	for r := 0; r < o.Rounds; r++ {
		for _, k := range o.Kernels {
			for _, m := range o.Mappers {
				reqs = append(reqs, &Request{Kernel: k, Mapper: m, Backend: o.Backend})
			}
		}
	}

	// Expected bytes per distinct request, computed once via the library
	// path (requests are pure functions of their content, so one expectation
	// covers every round).
	type expKey struct{ kernel, mapper string }
	expected := map[expKey][]byte{}
	var expMu sync.Mutex
	expect := func(req *Request) ([]byte, error) {
		key := expKey{req.Kernel, req.Mapper}
		expMu.Lock()
		defer expMu.Unlock()
		if b, ok := expected[key]; ok {
			return b, nil
		}
		resp, err := ref.Simulate(req)
		if err != nil {
			return nil, fmt.Errorf("library call %s/%s: %w", req.Kernel, req.Mapper, err)
		}
		b, err := EncodeResponse(resp)
		if err != nil {
			return nil, err
		}
		expected[key] = b
		return b, nil
	}

	var (
		next       atomic.Int64
		mismatches atomic.Int64
		failed     atomic.Bool
		firstErr   error
		errOnce    sync.Once
		wg         sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) || failed.Load() {
					return
				}
				req := reqs[i]
				want, err := expect(req)
				if err != nil {
					fail(err)
					return
				}
				body, err := postSimulate(client, baseURL, req)
				if err != nil {
					fail(err)
					return
				}
				if !bytes.Equal(body, want) {
					mismatches.Add(1)
					fail(fmt.Errorf("%s/%s: response differs from direct library call\nserver: %s\nlibrary: %s",
						req.Kernel, req.Mapper, body, want))
					return
				}
			}
		}()
	}
	wg.Wait()
	return LoadStats{Requests: len(reqs), Mismatches: int(mismatches.Load())}, firstErr
}

// postSimulate issues one /v1/simulate request and returns the raw body.
func postSimulate(client *http.Client, baseURL string, req *Request) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(baseURL+"/v1/simulate", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/%s: status %d: %s", req.Kernel, req.Mapper, resp.StatusCode, body)
	}
	return body, nil
}
