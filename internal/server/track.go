package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"mesa/internal/obs"
)

// Request observability. Every request gets a root span, a generated-or-
// propagated X-Request-ID, and a structured log line; /v1/simulate requests
// additionally feed the wall-clock latency histograms and the slow-request
// flight recorder. None of it touches response bodies: /v1/simulate bytes
// stay a pure function of the request whether instrumentation is on or off.

// requestIDHeader is propagated when the client sets it and generated (8
// random bytes, hex) when it doesn't. It is echoed on every response.
const requestIDHeader = "X-Request-ID"

// stage names, shared by spans, histograms, and log fields.
const (
	stageQueue    = "queue"
	stageDisk     = "disk"
	stageSimulate = "simulate"
	stageEncode   = "encode"
)

// newLatencyHistograms builds the server's wall-clock latency surface:
// end-to-end request latency plus one histogram per pipeline stage.
func newLatencyHistograms() map[string]*obs.Histogram {
	mk := func(name, help string) *obs.Histogram {
		return obs.NewHistogram(name, help, obs.LatencyBuckets())
	}
	return map[string]*obs.Histogram{
		"request": mk("request_seconds",
			"end-to-end /v1/simulate wall latency"),
		stageQueue: mk("queue_seconds",
			"time /v1/simulate requests waited for an admission slot"),
		stageDisk: mk("disk_seconds",
			"response-store lookup time (when a store is attached)"),
		stageSimulate: mk("simulate_seconds",
			"time inside the simulation layer (cold runs and memo waits)"),
		stageEncode: mk("encode_seconds",
			"response JSON encoding time"),
	}
}

// track wraps a ResponseWriter for one request: it captures the status code,
// owns the root span, and accumulates per-stage wall durations. A nil *track
// is a valid disabled handle (handlers invoked with a bare ResponseWriter —
// direct unit tests — skip instrumentation entirely).
type track struct {
	http.ResponseWriter
	srv    *Server
	req    *http.Request
	id     string
	span   *obs.Span
	status int

	mu      sync.Mutex
	stages  map[string]float64 // stage -> seconds
	cache   string             // X-Mesad-Cache disposition ("" until known)
	kernel  string
	mapper  string
	backend string
}

// startTrack begins instrumentation for one request: resolves the request
// id, sets the response header, and opens the root span.
func (s *Server) startTrack(w http.ResponseWriter, r *http.Request) *track {
	id := r.Header.Get(requestIDHeader)
	if id == "" {
		var b [8]byte
		rand.Read(b[:])
		id = hex.EncodeToString(b[:])
	}
	w.Header().Set(requestIDHeader, id)
	sp := obs.StartSpan("request " + r.URL.Path)
	sp.SetAttr("request_id", id)
	sp.SetAttr("method", r.Method)
	return &track{
		ResponseWriter: w,
		srv:            s,
		req:            r,
		id:             id,
		span:           sp,
		stages:         map[string]float64{},
	}
}

func (t *track) WriteHeader(code int) {
	if t.status == 0 {
		t.status = code
	}
	t.ResponseWriter.WriteHeader(code)
}

func (t *track) Write(b []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	return t.ResponseWriter.Write(b)
}

// asTrack recovers the request's track from the ResponseWriter the mux passed
// down. Handlers called with a plain writer get nil, and every method below
// no-ops on nil.
func asTrack(w http.ResponseWriter) *track {
	t, _ := w.(*track)
	return t
}

// stage opens a child span for one pipeline stage and returns its closer.
// The closer records the stage's wall duration for histograms and the log
// line.
func (t *track) stage(name string) func() {
	if t == nil {
		return func() {}
	}
	sp := t.span.Child(name)
	t0 := time.Now()
	return func() {
		sp.End()
		d := time.Since(t0).Seconds()
		t.mu.Lock()
		t.stages[name] += d
		t.mu.Unlock()
	}
}

// setWorkload records the resolved workload identity for the span, the log
// line, and the flight-recorder entry.
func (t *track) setWorkload(kernel, backend, mapper string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.kernel, t.backend, t.mapper = kernel, backend, mapper
	t.mu.Unlock()
	if kernel != "" {
		t.span.SetAttr("kernel", kernel)
	}
	t.span.SetAttr("backend", backend)
	t.span.SetAttr("mapper", mapper)
}

// setCache records the X-Mesad-Cache disposition ("miss", "disk").
func (t *track) setCache(disposition string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cache = disposition
	t.mu.Unlock()
	t.span.SetAttr("cache", disposition)
}

// finish closes the root span, feeds the latency histograms and flight
// recorder (simulate requests only), and emits the structured log line.
func (t *track) finish() {
	if t == nil {
		return
	}
	t.span.End()
	status := t.status
	if status == 0 {
		status = http.StatusOK
	}
	t.span.SetAttr("status", status)
	dur := t.span.Duration().Seconds()

	simulate := t.req.URL.Path == "/v1/simulate"
	if simulate {
		t.srv.latency["request"].Observe(dur)
		t.mu.Lock()
		for name, secs := range t.stages {
			if h := t.srv.latency[name]; h != nil {
				h.Observe(secs)
			}
		}
		t.mu.Unlock()
		t.srv.flight.Record(t.id, t.span)
	}

	if lg := t.srv.logger; lg != nil {
		// Simulate requests log at Info; everything else (scrapes, debug
		// reads) at Debug so steady-state logs are one line per simulation.
		level := slog.LevelDebug
		if simulate {
			level = slog.LevelInfo
		}
		t.mu.Lock()
		lg.LogAttrs(t.req.Context(), level, "request",
			slog.String("id", t.id),
			slog.String("route", t.req.URL.Path),
			slog.String("method", t.req.Method),
			slog.Int("status", status),
			slog.String("kernel", t.kernel),
			slog.String("backend", t.backend),
			slog.String("mapper", t.mapper),
			slog.String("cache", t.cache),
			slog.Float64("dur_ms", dur*1e3),
			slog.Float64("queue_ms", t.stages[stageQueue]*1e3),
			slog.Float64("disk_ms", t.stages[stageDisk]*1e3),
			slog.Float64("simulate_ms", t.stages[stageSimulate]*1e3),
			slog.Float64("encode_ms", t.stages[stageEncode]*1e3),
		)
		t.mu.Unlock()
	}
}

// wantsPrometheus implements /metrics content negotiation: any Accept header
// asking for text/plain (or an OpenMetrics flavor) selects the Prometheus
// text exposition; everything else keeps the original JSON report.
func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

// handleDebugRequests serves the flight recorder's retained span trees,
// slowest first.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID              string        `json:"id"`
		DurationSeconds float64       `json:"duration_seconds"`
		TracePath       string        `json:"trace_path"`
		Root            *obs.SpanNode `json:"root"`
	}
	out := []entry{}
	for _, e := range s.flight.Snapshot() {
		out = append(out, entry{
			ID:              e.ID,
			DurationSeconds: e.Duration.Seconds(),
			TracePath:       "/debug/requests/" + e.ID + "/trace",
			Root:            e.Span.Node(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleDebugTrace serves one retained request as a Chrome trace-event JSON
// document (loadable in Perfetto, mergeable with simulation traces: server
// spans live on their own PIDServer track).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.flight.Get(id)
	if !ok {
		s.writeError(w, errf(http.StatusNotFound, "no retained trace for request id %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	e.Span.WriteTrace(w, "mesad server")
}
