package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mesa/internal/experiments"
)

// postBatch issues a POST /v1/simulate/batch body and returns the recorder.
func postBatch(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// decodeBatch parses a 200 batch response.
func decodeBatch(t *testing.T, w *httptest.ResponseRecorder) *BatchResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body.String())
	}
	var br BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if br.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", br.SchemaVersion, SchemaVersion)
	}
	return &br
}

// withNewline restores the trailing newline JSON decoding strips from an
// item body, yielding the exact bytes the single-request handler writes.
func withNewline(body json.RawMessage) []byte {
	return append(append([]byte(nil), body...), '\n')
}

// TestBatchErrors is the batch-level 4xx matrix: a malformed batch is
// rejected as a whole with the uniform Error document, before any item runs.
func TestBatchErrors(t *testing.T) {
	s := New(Config{})

	t.Run("GET", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/simulate/batch", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		assertJSONError(t, w, http.StatusMethodNotAllowed)
	})
	t.Run("malformed JSON", func(t *testing.T) {
		assertJSONError(t, postBatch(t, s, `{"requests": [`), http.StatusBadRequest)
	})
	t.Run("unknown field", func(t *testing.T) {
		assertJSONError(t, postBatch(t, s, `{"request": []}`), http.StatusBadRequest)
	})
	t.Run("empty batch", func(t *testing.T) {
		assertJSONError(t, postBatch(t, s, `{"requests": []}`), http.StatusBadRequest, "no requests")
	})
	t.Run("too many items", func(t *testing.T) {
		items := make([]string, MaxBatchItems+1)
		for i := range items {
			items[i] = `{"kernel":"nn"}`
		}
		body := fmt.Sprintf(`{"requests":[%s]}`, strings.Join(items, ","))
		assertJSONError(t, postBatch(t, s, body), http.StatusRequestEntityTooLarge, "batch too large")
	})
	t.Run("draining", func(t *testing.T) {
		d := New(Config{})
		d.Drain()
		assertJSONError(t, postBatch(t, d, `{"requests":[{"kernel":"nn"}]}`),
			http.StatusServiceUnavailable, "shutting down")
	})
}

// TestBatchItemErrors: invalid items fail individually with the same status
// and Error document the single endpoint would return, without failing the
// batch or the valid items around them.
func TestBatchItemErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := New(Config{})
	br := decodeBatch(t, postBatch(t, s,
		`{"requests":[{"kernel":"no-such-kernel"},{"kernel":"nn","mapper":"quantum"},{"kernel":"nn"}]}`))
	if len(br.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(br.Items))
	}
	if br.Items[0].Status != http.StatusNotFound || br.Items[1].Status != http.StatusBadRequest {
		t.Errorf("error item statuses = %d, %d, want 404, 400", br.Items[0].Status, br.Items[1].Status)
	}
	if br.Items[2].Status != http.StatusOK {
		t.Errorf("valid item status = %d, want 200 (body: %s)", br.Items[2].Status, br.Items[2].Body)
	}

	// Each error body is byte-identical to the single-request error body.
	for i, single := range []string{`{"kernel":"no-such-kernel"}`, `{"kernel":"nn","mapper":"quantum"}`} {
		w := post(t, s, single)
		if w.Code != br.Items[i].Status {
			t.Errorf("item %d status %d, single request %d", i, br.Items[i].Status, w.Code)
		}
		if !bytes.Equal(withNewline(br.Items[i].Body), w.Body.Bytes()) {
			t.Errorf("item %d error body differs from single request:\nbatch:  %s\nsingle: %s",
				i, br.Items[i].Body, w.Body.String())
		}
	}
}

// TestBatchByteIdentity is the endpoint's core contract: every item body —
// named kernels across backends and mappers, duplicates, and raw programs —
// is byte-identical to what POST /v1/simulate returns for the same request.
// The batch runs first (cold, through the batched lockstep engine), the
// singles after (warm memo hits): equality proves the batched path publishes
// exactly the bytes the scalar path computes.
func TestBatchByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()

	// addi x5,x0,100 ; addi x6,x6,1 ; addi x5,x5,-1 ; bne x5,x0,-8 ; ecall
	rawWords := []uint32{0x06400293, 0x00130313, 0xfff28293, 0xfe029ce3, 0x00000073}
	requests := []Request{
		{Kernel: "nn"},
		{Kernel: "nn", Backend: "M-512"},
		{Kernel: "kmeans", Mapper: "congestion"},
		{Kernel: "hotspot", Cores: 4},
		{Kernel: "nn"}, // duplicate of item 0
		{Program: &RawProgram{Base: 0x1000, Words: rawWords}},
	}
	singles := make([]string, len(requests))
	for i := range requests {
		b, err := json.Marshal(requests[i])
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = string(b)
	}
	s := New(Config{})
	br := decodeBatch(t, postBatch(t, s, fmt.Sprintf(`{"requests":[%s]}`, strings.Join(singles, ","))))
	if len(br.Items) != len(singles) {
		t.Fatalf("items = %d, want %d", len(br.Items), len(singles))
	}
	for i, body := range singles {
		item := br.Items[i]
		if item.Status != http.StatusOK {
			t.Errorf("item %d status = %d (body: %s)", i, item.Status, item.Body)
			continue
		}
		if item.Cache != "miss" {
			t.Errorf("item %d cache = %q, want miss", i, item.Cache)
		}
		w := post(t, s, body)
		if w.Code != http.StatusOK {
			t.Fatalf("single request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(withNewline(item.Body), w.Body.Bytes()) {
			t.Errorf("item %d body differs from single request:\nbatch:  %s\nsingle: %s",
				i, item.Body, w.Body.String())
		}
	}
	// Duplicate items resolve to identical bytes.
	if !bytes.Equal(br.Items[0].Body, br.Items[4].Body) {
		t.Error("duplicate batch items returned different bodies")
	}
}

// TestBatchResponseStore: with a response store attached, a repeated batch
// replays every item from disk byte-identically, and batch-written entries
// serve single requests (the fingerprint space is shared).
func TestBatchResponseStore(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	store, err := experiments.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store})
	body := `{"requests":[{"kernel":"nn"},{"kernel":"kmeans"}]}`

	cold := decodeBatch(t, postBatch(t, s, body))
	for i, item := range cold.Items {
		if item.Status != http.StatusOK || item.Cache != "miss" {
			t.Fatalf("cold item %d: status %d cache %q", i, item.Status, item.Cache)
		}
	}

	experiments.ResetSimMemo() // "restart"
	warm := decodeBatch(t, postBatch(t, s, body))
	for i, item := range warm.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("warm item %d: status %d", i, item.Status)
		}
		if item.Cache != "disk" {
			t.Errorf("warm item %d cache = %q, want disk", i, item.Cache)
		}
		if !bytes.Equal(item.Body, cold.Items[i].Body) {
			t.Errorf("warm item %d body differs from cold", i)
		}
	}

	// A single request for a batch-warmed entry replays from disk too.
	w := post(t, s, `{"kernel":"nn"}`)
	if got := w.Header().Get("X-Mesad-Cache"); got != "disk" {
		t.Errorf("single request after batch: X-Mesad-Cache = %q, want disk", got)
	}
	if !bytes.Equal(w.Body.Bytes(), withNewline(cold.Items[0].Body)) {
		t.Error("single request body differs from batch item body")
	}
}
