package server

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"mesa/internal/experiments"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
)

// TestLoadGenByteIdentity is the acceptance gate for mesad: the full 17
// kernels × every-registered-strategy matrix, issued by concurrent clients against the
// HTTP server, must produce responses byte-identical to the direct library
// call — under a cold cache, a warm cache, and a cache bounded to 4 entries
// (where nearly every lookup evicts). Identical bytes in all three regimes
// proves responses are pure functions of the request and that neither
// coalescing, LRU eviction, nor cache-state transitions leak into bodies.
func TestLoadGenByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel × strategy sweep in -short mode")
	}
	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()

	// Admission matches the client count so the gate serializes work without
	// ever rejecting: this test is about byte-identity, not backpressure
	// (TestHandlerQueueFull covers rejection). The server runs fully
	// instrumented — logging, spans, histograms, flight recorder — because
	// byte-identity must hold with observability on, not just off.
	srv := New(Config{
		Admission:  8,
		Logger:     slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
		FlightSize: 16,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The load generator sweeps every kernel under every registered
	// strategy, so the expected request count follows both registries.
	wantRequests := len(kernels.Names()) * len(mapping.Names())
	run := func(label string) {
		t.Helper()
		stats, err := LoadGen(ts.Client(), ts.URL, srv, LoadOptions{Clients: 8})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if stats.Requests != wantRequests {
			t.Fatalf("%s: issued %d requests, want %d", label, stats.Requests, wantRequests)
		}
		if stats.Mismatches != 0 {
			t.Fatalf("%s: %d responses differ from the direct library call", label, stats.Mismatches)
		}
	}

	run("cold cache")
	run("warm cache")

	// Bound the cache far below the working set: most lookups now
	// miss, evict, and recompute — and must still produce identical bytes.
	prevCap := experiments.SetSimMemoCapacity(4)
	defer experiments.SetSimMemoCapacity(prevCap)
	experiments.ResetSimMemo()
	run("bounded cache (4 entries)")

	if n := simMemoMetric(t, "sim_cache_evictions"); n == 0 {
		t.Error("bounded pass evicted nothing: the bound was not exercised")
	}
	if n := simMemoMetric(t, "sim_cache_entries"); n > 4 {
		t.Errorf("bounded pass left %v entries resident, capacity 4", n)
	}
}

func simMemoMetric(t *testing.T, name string) float64 {
	t.Helper()
	for _, m := range experiments.SimMemoMetrics() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not in SimMemoMetrics", name)
	return 0
}

// TestLoadGenDiskStoreByteIdentity: the same matrix replayed from the
// on-disk response store (fresh Server, same store, wiped in-memory caches)
// still byte-matches the direct library call.
func TestLoadGenDiskStoreByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()

	store, err := experiments.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Kernels: []string{"nn", "kmeans", "hotspot", "bfs"}, Clients: 4}

	cold := New(Config{Store: store})
	tsCold := httptest.NewServer(cold.Handler())
	stats, err := LoadGen(tsCold.Client(), tsCold.URL, cold, opts)
	tsCold.Close()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if stats.Mismatches != 0 {
		t.Fatalf("cold: %d mismatches", stats.Mismatches)
	}

	// "Restart": new Server over the same store, in-memory caches wiped.
	experiments.ResetSimMemo()
	warm := New(Config{Store: store})
	tsWarm := httptest.NewServer(warm.Handler())
	defer tsWarm.Close()
	stats, err = LoadGen(tsWarm.Client(), tsWarm.URL, warm, opts)
	if err != nil {
		t.Fatalf("disk warm: %v", err)
	}
	if stats.Mismatches != 0 {
		t.Fatalf("disk warm: %d responses differ after disk replay", stats.Mismatches)
	}
	if warm.respDiskHits.Load() == 0 {
		t.Error("disk-warm pass never hit the response store")
	}
}

// TestLoadGenReportsMismatch: the generator itself must detect divergence —
// feed it a reference server configured with a different default mapper so
// expected bytes genuinely differ.
func TestLoadGenReportsMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	srv := New(Config{DefaultMapper: "greedy"})
	ref := New(Config{DefaultMapper: "greedy+anneal"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	stats, err := LoadGen(ts.Client(), ts.URL, ref, LoadOptions{
		Kernels: []string{"nn"}, Mappers: []string{""}, Clients: 1,
	})
	if err == nil || stats.Mismatches == 0 {
		t.Errorf("diverging mapper defaults not flagged (err=%v, mismatches=%d): the gate cannot fail",
			err, stats.Mismatches)
	}
}
