package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mesa/internal/experiments"
	"mesa/internal/obs"
)

// TestRequestObservabilityE2E is the acceptance check for the observability
// layer, end to end over a real HTTP round trip: a simulate request with a
// client-supplied X-Request-ID must echo the id, emit exactly one structured
// log line carrying every stage timing, bump the Prometheus request
// histogram by one with monotone buckets, serve a valid nested Chrome trace
// for that id — and leave the response body byte-identical to the direct
// library call.
func TestRequestObservabilityE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()

	var logBuf syncBuffer
	srv := New(Config{
		Logger:     slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelInfo})),
		FlightSize: 8,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"kernel":"nn"}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "test-123")
	res, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", res.StatusCode, respBody)
	}
	if got := res.Header.Get("X-Request-ID"); got != "test-123" {
		t.Errorf("X-Request-ID = %q, want propagated test-123", got)
	}

	// Body byte-identity: instrumentation must not touch response bytes.
	direct, err := srv.Simulate(&Request{Kernel: "nn"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResponse(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(respBody, want) {
		t.Errorf("served body differs from direct library call\nserved: %s\ndirect: %s", respBody, want)
	}

	// Exactly one Info log line for the request, with every stage timing.
	var reqLines []map[string]any
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, "test-123") {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		reqLines = append(reqLines, m)
	}
	if len(reqLines) != 1 {
		t.Fatalf("got %d log lines mentioning test-123, want exactly 1:\n%s", len(reqLines), logBuf.String())
	}
	line := reqLines[0]
	for _, field := range []string{"id", "route", "method", "status", "kernel", "backend", "mapper",
		"cache", "dur_ms", "queue_ms", "disk_ms", "simulate_ms", "encode_ms"} {
		if _, ok := line[field]; !ok {
			t.Errorf("log line missing field %q: %v", field, line)
		}
	}
	if line["id"] != "test-123" || line["route"] != "/v1/simulate" || line["kernel"] != "nn" {
		t.Errorf("log line identity fields wrong: %v", line)
	}
	if line["cache"] != "miss" {
		t.Errorf("cold request logged cache=%v, want miss", line["cache"])
	}

	// Prometheus: the request histogram counted exactly this one simulate
	// request (scrapes themselves must not count), with monotone buckets —
	// ParsePrometheus rejects any non-monotone or truncated histogram.
	promReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	promReq.Header.Set("Accept", "text/plain")
	promRes, err := ts.Client().Do(promReq)
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(promRes.Body)
	promRes.Body.Close()
	fams, err := obs.ParsePrometheus(promBody)
	if err != nil {
		t.Fatalf("exposition malformed: %v\n%s", err, promBody)
	}
	hist, ok := fams["mesad_request_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatal("mesad_request_seconds histogram missing from exposition")
	}
	if c, _ := hist.Sample("mesad_request_seconds_count"); c.Value != 1 {
		t.Errorf("mesad_request_seconds_count = %v, want 1 (scrapes must not count)", c.Value)
	}

	// The flight recorder retained the request and serves a valid Chrome
	// trace whose stage spans nest inside the root.
	tres, err := ts.Client().Get(ts.URL + "/debug/requests/test-123/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tres.Body)
	tres.Body.Close()
	if tres.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d: %s", tres.StatusCode, traceBody)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int32   `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	type iv struct{ ts, dur float64 }
	spans := map[string]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if ev.PID != obs.PIDServer {
				t.Errorf("span %q on pid %d, want PIDServer", ev.Name, ev.PID)
			}
			spans[ev.Name] = iv{ev.TS, ev.Dur}
		}
	}
	root, ok := spans["request /v1/simulate"]
	if !ok {
		t.Fatalf("root span missing; spans: %v", spans)
	}
	for _, stage := range []string{"queue", "simulate", "encode"} {
		child, ok := spans[stage]
		if !ok {
			t.Errorf("stage span %q missing", stage)
			continue
		}
		if child.ts < root.ts-1e-6 || child.ts+child.dur > root.ts+root.dur+1e-6 {
			t.Errorf("stage %q [%v,%v] not nested in root [%v,%v]",
				stage, child.ts, child.ts+child.dur, root.ts, root.ts+root.dur)
		}
	}

	// /debug/requests lists the retained id, slowest first.
	dres, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var flights []struct {
		ID   string        `json:"id"`
		Root *obs.SpanNode `json:"root"`
	}
	derr := json.NewDecoder(dres.Body).Decode(&flights)
	dres.Body.Close()
	if derr != nil || len(flights) != 1 || flights[0].ID != "test-123" || flights[0].Root == nil {
		t.Errorf("/debug/requests = %+v (err %v), want the one retained request", flights, derr)
	}
}

// syncBuffer is a mutex-free stand-in: slog's JSONHandler serializes writes
// internally, and the test only reads after the round trip completes.
type syncBuffer struct{ bytes.Buffer }

// TestHealthzJSON: the health body carries uptime/capacity numbers, and a
// draining server flips to 503/ok=false so load balancers eject it.
func TestHealthzJSON(t *testing.T) {
	srv := New(Config{Admission: 3, QueueDepth: 7})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() (int, map[string]any) {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, m
	}

	status, m := get()
	if status != http.StatusOK || m["ok"] != true || m["draining"] != false {
		t.Errorf("healthy: status %d body %v", status, m)
	}
	if m["admission_width"] != 3.0 || m["queue_depth"] != 7.0 {
		t.Errorf("capacity fields wrong: %v", m)
	}
	if _, ok := m["uptime_seconds"]; !ok {
		t.Error("uptime_seconds missing")
	}
	if _, ok := m["inflight"]; !ok {
		t.Error("inflight missing")
	}

	srv.Drain()
	status, m = get()
	if status != http.StatusServiceUnavailable || m["ok"] != false || m["draining"] != true {
		t.Errorf("draining: status %d body %v, want 503/ok=false/draining=true", status, m)
	}
}

// TestMetricsNegotiation: default stays the JSON registry report; an Accept
// asking for text/plain selects the Prometheus exposition.
func TestMetricsNegotiation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type %q, want application/json", ct)
	}
	var report struct {
		Sections []struct {
			Name string `json:"name"`
		} `json:"sections"`
	}
	if err := json.Unmarshal(jsonBody, &report); err != nil {
		t.Fatalf("JSON report: %v", err)
	}
	var hasLatency bool
	for _, s := range report.Sections {
		if s.Name == "server.latency" {
			hasLatency = true
		}
	}
	if !hasLatency {
		t.Error("JSON report missing server.latency section")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	res, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("prometheus content type %q, want %q", ct, obs.PromContentType)
	}
	fams, err := obs.ParsePrometheus(promBody)
	if err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	for _, want := range []string{"mesad_server_requests", "mesad_request_seconds", "mesad_sim_run_seconds"} {
		if _, ok := fams[want]; !ok {
			t.Errorf("exposition missing family %q", want)
		}
	}
}

// TestDebugTraceUnknownID: an unretained id is a JSON 404, not a panic or an
// empty 200.
func TestDebugTraceUnknownID(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/debug/requests/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", res.StatusCode)
	}
	var e Error
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Status != http.StatusNotFound {
		t.Errorf("error body %+v (err %v), want JSON 404", e, err)
	}
}

// TestRequestIDGenerated: a request without X-Request-ID gets a generated id
// echoed on the response.
func TestRequestIDGenerated(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if id := res.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
}
