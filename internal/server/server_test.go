package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mesa/internal/experiments"
)

// post issues a request body against a fresh handler and returns the
// recorder.
func post(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// assertJSONError checks status and that the body is a well-formed Error
// document mentioning every fragment.
func assertJSONError(t *testing.T, w *httptest.ResponseRecorder, status int, fragments ...string) {
	t.Helper()
	if w.Code != status {
		t.Errorf("status = %d, want %d (body: %s)", w.Code, status, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var e Error
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v (body: %s)", err, w.Body.String())
	}
	if e.Msg == "" {
		t.Error("error body has an empty error message")
	}
	for _, f := range fragments {
		if !strings.Contains(e.Msg, f) {
			t.Errorf("error %q does not mention %q", e.Msg, f)
		}
	}
}

// TestHandlerErrors is the 4xx/5xx satellite matrix: every malformed or
// invalid request must produce the right status with a JSON error body and
// never a panic.
func TestHandlerErrors(t *testing.T) {
	s := New(Config{})

	t.Run("malformed JSON", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel": "nn"`), http.StatusBadRequest)
	})
	t.Run("unknown field", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernle": "nn"}`), http.StatusBadRequest)
	})
	t.Run("neither kernel nor program", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{}`), http.StatusBadRequest)
	})
	t.Run("both kernel and program", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel":"nn","program":{"words":[19]}}`), http.StatusBadRequest, "exactly one")
	})
	t.Run("unknown kernel", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel":"no-such-kernel"}`), http.StatusNotFound, "no-such-kernel")
	})
	t.Run("unknown mapper", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel":"nn","mapper":"quantum"}`), http.StatusBadRequest, "quantum")
	})
	t.Run("unknown backend", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel":"nn","backend":"M-9000"}`), http.StatusBadRequest, "M-9000")
	})
	t.Run("cores out of range", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"kernel":"nn","cores":1000}`), http.StatusBadRequest, "cores")
	})
	t.Run("empty program", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"program":{"words":[]}}`), http.StatusBadRequest, "no words")
	})
	t.Run("oversized program", func(t *testing.T) {
		words := make([]string, MaxProgramWords+1)
		for i := range words {
			words[i] = "19" // nop (addi x0,x0,0)
		}
		body := fmt.Sprintf(`{"program":{"words":[%s]}}`, strings.Join(words, ","))
		assertJSONError(t, post(t, s, body), http.StatusRequestEntityTooLarge, "too large")
	})
	t.Run("unencodable program word", func(t *testing.T) {
		// 0xffffffff decodes as no RV32IMF instruction.
		assertJSONError(t, post(t, s, `{"program":{"words":[19, 4294967295]}}`),
			http.StatusUnprocessableEntity, "word 1")
	})
	t.Run("misaligned base", func(t *testing.T) {
		assertJSONError(t, post(t, s, `{"program":{"base":2,"words":[19]}}`), http.StatusBadRequest, "word-aligned")
	})
	t.Run("GET simulate", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		assertJSONError(t, w, http.StatusMethodNotAllowed)
	})
}

// TestHandlerShutdown: once Drain is called, new simulation requests get a
// 503 JSON body, while work that was already admitted before the drain still
// completes — http.Server.Shutdown waits for in-flight handlers, and the
// drain flag is only consulted at handler entry, never mid-simulation.
func TestHandlerShutdown(t *testing.T) {
	s := New(Config{Admission: 1})
	admitted := make(chan struct{})
	release := make(chan struct{})

	// Model a request already past admission when Drain lands: it holds the
	// gate and is "simulating" until released.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.gate <- struct{}{}
		close(admitted)
		<-release
		// The in-flight request's simulation runs to completion during the
		// drain: the drain flag must not reach into running work.
		if _, err := s.Simulate(&Request{Kernel: "nn"}); err != nil {
			t.Errorf("in-flight simulation failed during drain: %v", err)
		}
		<-s.gate
	}()
	<-admitted

	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	// A request arriving during shutdown is refused up front with a JSON 503.
	assertJSONError(t, post(t, s, `{"kernel":"nn"}`), http.StatusServiceUnavailable, "shutting down")

	close(release)
	wg.Wait()
}

// TestHandlerSimulateOK: a valid kernel request returns 200 with a parseable
// response carrying the attribution report, and the body equals the direct
// library call's encoding.
func TestHandlerSimulateOK(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := New(Config{})
	w := post(t, s, `{"kernel":"nn","mapper":"greedy"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kernel != "nn" || resp.Backend != "M-128" || resp.Mapper != "greedy" {
		t.Errorf("echoed identity wrong: %+v", resp)
	}
	if !resp.Qualified || resp.Loop == nil || resp.Attribution == nil {
		t.Fatalf("nn must qualify with a loop summary and attribution: %s", w.Body.String())
	}
	if resp.Loop.TotalCycles <= 0 || resp.Speedup <= 0 {
		t.Errorf("degenerate result: %+v", resp.Loop)
	}

	direct, err := s.Simulate(&Request{Kernel: "nn", Mapper: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResponse(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Error("handler body differs from direct library call encoding")
	}
}

// TestHandlerRawProgram: a raw RV32IMF word stream simulates end to end (a
// small counted loop, which the detector may or may not accelerate — the
// contract is a 200 with a CPU baseline, no panic, and byte-identity with
// the library call).
func TestHandlerRawProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	// addi x5,x0,100 ; addi x6,x6,1 ; addi x5,x5,-1 ; bne x5,x0,-8 ; ecall
	words := []uint32{0x06400293, 0x00130313, 0xfff28293, 0xfe029ce3, 0x00000073}
	body, _ := json.Marshal(Request{Program: &RawProgram{Base: 0x1000, Words: words}})
	s := New(Config{})
	w := post(t, s, string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CPU.Cycles <= 0 {
		t.Errorf("raw program CPU baseline = %v, want > 0", resp.CPU.Cycles)
	}
	direct, err := s.Simulate(&Request{Program: &RawProgram{Base: 0x1000, Words: words}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResponse(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Error("raw-program handler body differs from direct library call")
	}
}

// TestHandlerQueueFull: requests beyond admission+queue are rejected with
// 503 rather than piling up.
func TestHandlerQueueFull(t *testing.T) {
	s := New(Config{Admission: 1, QueueDepth: 1})
	// Occupy the single admission slot.
	s.gate <- struct{}{}
	// Occupy the single queue slot with a request that blocks waiting for
	// the gate; detect occupancy via the queued counter.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := post(t, s, `{"kernel":"nn"}`)
		if w.Code != http.StatusOK {
			t.Errorf("queued request: status %d, want 200 once the gate frees", w.Code)
		}
	}()
	for s.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue is full now: the next request must bounce immediately.
	assertJSONError(t, post(t, s, `{"kernel":"nn"}`), http.StatusServiceUnavailable, "capacity")
	// Free the gate; the queued request proceeds and completes.
	<-s.gate
	wg.Wait()
}

// TestMetricsEndpoint: /metrics serves the obs registry with the server,
// pool, and sim-cache sections.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var doc struct {
		Sections []struct {
			Name    string `json:"name"`
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"sections"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	want := map[string]bool{"server": false, "experiments.pool": false, "experiments.memo": false}
	for _, sec := range doc.Sections {
		if _, ok := want[sec.Name]; ok {
			want[sec.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metrics missing section %q", name)
		}
	}
}

// TestKernelsEndpoint lists every built-in kernel.
func TestKernelsEndpoint(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/kernels", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var ks []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ks); err != nil {
		t.Fatal(err)
	}
	if len(ks) != 17 {
		t.Errorf("listed %d kernels, want 17", len(ks))
	}
}

// TestResponseStoreReplay: with a response store attached, a second
// identical request is served byte-identically from disk (X-Mesad-Cache:
// disk) even after the in-memory caches are wiped.
func TestResponseStoreReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	store, err := experiments.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store})
	cold := post(t, s, `{"kernel":"nn"}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.Code, cold.Body.String())
	}
	if got := cold.Header().Get("X-Mesad-Cache"); got != "miss" {
		t.Errorf("cold X-Mesad-Cache = %q, want miss", got)
	}

	experiments.ResetSimMemo() // "restart"
	warm := post(t, s, `{"kernel":"nn"}`)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm status %d", warm.Code)
	}
	if got := warm.Header().Get("X-Mesad-Cache"); got != "disk" {
		t.Errorf("warm X-Mesad-Cache = %q, want disk", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("disk-replayed response differs from cold response")
	}
}
