package server

import (
	"encoding/json"
	"net/http"

	"mesa/internal/cpu"
	"mesa/internal/experiments"
)

// MaxBatchItems bounds one POST /v1/simulate/batch request. A batch counts
// as one admission slot (the batched engine parallelises inside it), so the
// cap keeps a single request from monopolising the simulation layer.
const MaxBatchItems = 64

// maxBatchBodyBytes bounds the batch request body: MaxBatchItems raw-program
// requests would not fit in the single-request limit.
const maxBatchBodyBytes = 8 * maxBodyBytes

// BatchRequest is the POST /v1/simulate/batch body: up to MaxBatchItems
// independent simulation requests answered in one round trip.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one element of a batch response. Body carries exactly the
// bytes the same request would have received from POST /v1/simulate (the
// response document on 2xx, the Error document otherwise) minus that
// response's trailing newline, which JSON decoding strips; Cache mirrors the
// X-Mesad-Cache header ("disk" or "miss") and lives outside Body so bodies
// stay pure functions of the request.
type BatchItem struct {
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the POST /v1/simulate/batch response. The HTTP status is
// 200 whenever the batch itself was well-formed; per-item failures live in
// Items[i].Status.
type BatchResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Items         []BatchItem `json:"items"`
}

// batchItemState tracks one batch element through the pipeline.
type batchItemState struct {
	norm *normalized
	key  string
	item BatchItem
	done bool
}

// finish records an item's final disposition.
func (st *batchItemState) finish(status int, cache string, body []byte) {
	st.item = BatchItem{Status: status, Cache: cache, Body: body}
	st.done = true
}

// errItem resolves an item to the same Error document the single-request
// handler would have written.
func (st *batchItemState) errItem(s *Server, e *Error) {
	if e.Status >= 500 {
		s.serverErrors.Add(1)
	} else {
		s.clientErrors.Add(1)
	}
	data, _ := json.Marshal(e)
	st.finish(e.Status, "", append(data, '\n'))
}

// handleSimulateBatch answers many simulation requests in one round trip:
// per-item validation and response-store lookups first, then every named
// kernel that still needs simulating is dispatched through the batched
// lockstep engine (experiments.RunMESABatch) to warm the simulation memo,
// and finally each item is answered through the exact single-request path —
// so every item body is byte-identical to what POST /v1/simulate would have
// returned for that request, cold or warm.
func (s *Server) handleSimulateBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.batchRequests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, errf(http.StatusMethodNotAllowed, "use POST"))
		return
	}
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "server is shutting down"))
		return
	}

	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return
	}
	if len(breq.Requests) == 0 {
		s.writeError(w, errf(http.StatusBadRequest, "batch has no requests"))
		return
	}
	if len(breq.Requests) > MaxBatchItems {
		s.writeError(w, errf(http.StatusRequestEntityTooLarge,
			"batch too large: %d requests (limit %d)", len(breq.Requests), MaxBatchItems))
		return
	}
	s.batchItems.Add(uint64(len(breq.Requests)))

	items := make([]batchItemState, len(breq.Requests))
	for i := range breq.Requests {
		st := &items[i]
		n, apiErr := s.normalize(&breq.Requests[i])
		if apiErr != nil {
			st.errItem(s, apiErr)
			continue
		}
		st.norm = n
		st.key = n.fingerprint()
	}

	t := asTrack(w)

	// Admission: the whole batch takes one slot. Intra-batch concurrency is
	// bounded by the experiments worker pool, exactly like one heavy request.
	if s.queued.Add(1) > s.queueLimit {
		s.queued.Add(-1)
		s.rejectedBusy.Add(1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "server is at capacity (queue full)"))
		return
	}
	endQueue := t.stage(stageQueue)
	select {
	case s.gate <- struct{}{}:
	case <-r.Context().Done():
		endQueue()
		s.queued.Add(-1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "request cancelled while queued"))
		return
	}
	endQueue()
	s.queued.Add(-1)
	s.admitted.Add(1)
	defer func() { <-s.gate }()

	// Response store: items whose exact bytes are already on disk are done
	// before any simulation is grouped.
	if s.cfg.Store != nil {
		endDisk := t.stage(stageDisk)
		for i := range items {
			st := &items[i]
			if st.done {
				continue
			}
			if data, ok, err := s.cfg.Store.Get(st.key); err == nil && ok {
				s.respDiskHits.Add(1)
				st.finish(http.StatusOK, "disk", data)
			}
		}
		endDisk()
	}

	endSim := t.stage(stageSimulate)
	// Warm pass: every named kernel still pending becomes one point of a
	// batched sweep. RunMESABatch drops memo hits before forming lanes and
	// publishes every miss (results and errors alike) into the memo, so this
	// pass is pure warming — the per-item answers below re-read the memo and
	// stay byte-identical to the single-request path. Baseline-timing
	// failures are skipped here; the item reproduces the error below.
	var pts []experiments.BatchPoint
	for i := range items {
		st := &items[i]
		if st.done || st.norm.kernel == nil {
			continue
		}
		single, err := experiments.TimeSingleCore(st.norm.kernel, cpu.DefaultBOOM())
		if err != nil {
			continue
		}
		pts = append(pts, experiments.BatchPoint{
			Kernel:     st.norm.kernel,
			Backend:    st.norm.backend,
			CPUPerIter: single.Cycles / float64(st.norm.kernel.N),
			Opts:       experiments.MESAOptions{Mapper: st.norm.mapper},
		})
	}
	if len(pts) >= 2 {
		lanes := len(pts)
		if width := experiments.Workers(); lanes > width {
			lanes = width
		}
		experiments.RunMESABatch(pts, lanes)
	}

	// Answer pass: the exact single-request path per item. Kernel items hit
	// the memo entries the warm pass just published.
	for i := range items {
		st := &items[i]
		if st.done {
			continue
		}
		resp, err := simulate(st.norm)
		if err != nil {
			if apiErr, ok := err.(*Error); ok {
				st.errItem(s, apiErr)
			} else {
				st.errItem(s, errf(http.StatusInternalServerError, "simulation failed: %v", err))
			}
			continue
		}
		data, mErr := EncodeResponse(resp)
		if mErr != nil {
			st.errItem(s, errf(http.StatusInternalServerError, "encode: %v", mErr))
			continue
		}
		if s.cfg.Store != nil {
			if err := s.cfg.Store.Put(st.key, data); err == nil {
				s.respDiskWrites.Add(1)
			}
		}
		st.finish(http.StatusOK, "miss", data)
	}
	endSim()

	out := BatchResponse{SchemaVersion: SchemaVersion, Items: make([]BatchItem, len(items))}
	for i := range items {
		out.Items[i] = items[i].item
	}
	endEncode := t.stage(stageEncode)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&out)
	endEncode()
}
