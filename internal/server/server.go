// Package server implements mesad, the MESA simulation service: a
// long-running HTTP/JSON API that accepts a named kernel (or raw RV32IMF
// program words), a backend/CPU configuration, and a placement strategy, and
// returns the accelerated-loop result plus the bottleneck-attribution
// report.
//
// Layering:
//
//   - Request coalescing and warm results come from the internal/experiments
//     single-flight simulation cache (bounded LRU, optional on-disk store):
//     concurrent identical requests run one simulation; repeated requests
//     hit warm entries.
//   - Admission control bounds concurrent simulations to the
//     internal/experiments worker width, with a bounded wait queue: load
//     beyond the queue is rejected with 503 rather than piling up.
//   - Responses are pure functions of the request (no timestamps, no cache
//     markers in the body), so a response is byte-identical whether computed
//     cold, served from the warm in-process cache, or replayed from the
//     on-disk response store — the property the load-generator gate
//     enforces. Cache observability lives in the X-Mesad-Cache header and
//     /metrics, never in the body.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/experiments"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/obs"
)

// SchemaVersion stamps every response (and the response-store keys), so a
// schema change never replays stale on-disk bytes.
const SchemaVersion = 1

// MaxProgramWords bounds a raw-program request. Kernel hot loops are tens of
// instructions; 4096 words is far beyond anything the detector accepts and
// small enough that a request can never balloon a simulation arbitrarily.
const MaxProgramWords = 4096

// maxBodyBytes bounds the request body (MaxProgramWords as JSON plus slack).
const maxBodyBytes = 1 << 20

// Request is one simulation request. Exactly one of Kernel and Program must
// be set.
type Request struct {
	// Kernel names a built-in workload (GET /v1/kernels lists them).
	Kernel string `json:"kernel,omitempty"`
	// Program is a raw RV32IMF program: it runs over a zeroed memory image
	// with no output verification.
	Program *RawProgram `json:"program,omitempty"`
	// Backend selects the accelerator configuration: M-64, M-128 (default),
	// or M-512.
	Backend string `json:"backend,omitempty"`
	// Mapper selects the placement strategy (default: the server's default
	// strategy, normally "greedy").
	Mapper string `json:"mapper,omitempty"`
	// Cores sets the CPU-baseline core count (default 1). Values above 1
	// time parallel kernels on the multicore baseline.
	Cores int `json:"cores,omitempty"`
}

// RawProgram is an unassembled instruction stream: 32-bit RV32IMF words laid
// out contiguously from Base.
type RawProgram struct {
	Base  uint32   `json:"base"`
	Words []uint32 `json:"words"`
}

// CPUSummary is the CPU-baseline timing of a request.
type CPUSummary struct {
	Cores  int     `json:"cores"`
	Cycles float64 `json:"cycles"`
}

// LoopSummary is the accelerated-loop result (the LoopResult/RegionReport
// projection a client needs; the full decomposition is in Attribution).
type LoopSummary struct {
	Iterations         uint64  `json:"iterations"`
	AccelCycles        float64 `json:"accel_cycles"`
	OverheadCycles     float64 `json:"overhead_cycles"`
	CPUProfilingCycles float64 `json:"cpu_profiling_cycles"`
	TotalCycles        float64 `json:"total_cycles"`
	AvgIterCycles      float64 `json:"avg_iter_cycles"`
	II                 float64 `json:"ii"`
	Bound              string  `json:"bound"`
	Tiles              int     `json:"tiles"`
	Reconfigs          int     `json:"reconfigs"`
	ConfigWords        int     `json:"config_words"`
}

// Response is the simulation result. It is a pure function of the Request:
// byte-identical whether computed cold or served warm.
type Response struct {
	SchemaVersion int    `json:"schema_version"`
	Kernel        string `json:"kernel,omitempty"`
	Backend       string `json:"backend"`
	Mapper        string `json:"mapper"`
	Qualified     bool   `json:"qualified"`

	CPU     CPUSummary   `json:"cpu"`
	Loop    *LoopSummary `json:"loop,omitempty"`
	Speedup float64      `json:"speedup,omitempty"`

	Attribution *accel.Attribution `json:"attribution,omitempty"`
}

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	Status int    `json:"status"`
	Msg    string `json:"error"`
}

func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// Config tunes a Server.
type Config struct {
	// DefaultMapper is the strategy used when a request names none
	// ("" selects mapping.Default()).
	DefaultMapper string
	// Admission bounds concurrently running simulations (<1 selects
	// experiments.Workers()).
	Admission int
	// QueueDepth bounds requests waiting for admission (<1 selects
	// 4×Admission). Load beyond admitted+queued is rejected with 503.
	QueueDepth int
	// Store, when non-nil, caches encoded response bytes content-addressed
	// by the request fingerprint, so warm responses survive restarts.
	Store *experiments.DiskStore
	// Logger, when non-nil, receives one structured line per request
	// (simulate requests at Info, scrapes and debug reads at Debug).
	Logger *slog.Logger
	// FlightSize bounds the slow-request flight recorder: the N slowest
	// /v1/simulate span trees are retained for GET /debug/requests
	// (<1 selects 64).
	FlightSize int
}

// Server is the mesad HTTP service. Create with New, mount Handler, and call
// Drain before http.Server.Shutdown so in-flight requests finish while new
// ones are refused.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	gate       chan struct{}
	queueLimit int64
	queued     atomic.Int64
	draining   atomic.Bool

	requests         atomic.Uint64
	batchRequests    atomic.Uint64
	batchItems       atomic.Uint64
	admitted         atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedDraining atomic.Uint64
	clientErrors     atomic.Uint64
	serverErrors     atomic.Uint64
	respDiskHits     atomic.Uint64
	respDiskWrites   atomic.Uint64
	panics           atomic.Uint64

	start   time.Time
	logger  *slog.Logger
	flight  *obs.FlightRecorder
	latency map[string]*obs.Histogram // "request" + stage names -> histogram
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Admission < 1 {
		cfg.Admission = experiments.Workers()
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.Admission
	}
	if cfg.FlightSize < 1 {
		cfg.FlightSize = 64
	}
	s := &Server{
		cfg:        cfg,
		gate:       make(chan struct{}, cfg.Admission),
		queueLimit: int64(cfg.QueueDepth),
		start:      time.Now(),
		logger:     cfg.Logger,
		flight:     obs.NewFlightRecorder(cfg.FlightSize),
		latency:    newLatencyHistograms(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/v1/simulate/batch", s.handleSimulateBatch)
	s.mux.HandleFunc("/v1/kernels", s.handleKernels)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugTrace)
	return s
}

// Handler returns the service's HTTP handler (panic-safe: a panicking
// request becomes a 500 JSON error, never a torn connection). Every request
// runs inside a track: root span, request id, latency histograms, and one
// structured log line — all without touching response bodies.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := s.startTrack(w, r)
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.writeError(t, errf(http.StatusInternalServerError, "internal error: %v", rec))
			}
			t.finish()
		}()
		s.mux.ServeHTTP(t, r)
	})
}

// Drain makes the server refuse new simulation requests with 503 while
// in-flight ones complete (call before http.Server.Shutdown).
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// writeError emits the uniform JSON error body.
func (s *Server) writeError(w http.ResponseWriter, e *Error) {
	if e.Status >= 500 {
		s.serverErrors.Add(1)
	} else {
		s.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(e)
}

// handleHealthz reports liveness plus the numbers an operator checks first:
// uptime, drain state, in-flight and queued simulations, and the configured
// capacity. A draining server answers 503 so load balancers stop routing to
// it while in-flight work completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	h := struct {
		OK             bool    `json:"ok"`
		UptimeSeconds  float64 `json:"uptime_seconds"`
		Draining       bool    `json:"draining"`
		Inflight       int     `json:"inflight"`
		Queued         int64   `json:"queued"`
		AdmissionWidth int     `json:"admission_width"`
		QueueDepth     int64   `json:"queue_depth"`
	}{
		OK:             !draining,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Draining:       draining,
		Inflight:       len(s.gate),
		Queued:         s.queued.Load(),
		AdmissionWidth: cap(s.gate),
		QueueDepth:     s.queueLimit,
	}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, errf(http.StatusMethodNotAllowed, "use GET"))
		return
	}
	type kinfo struct {
		Name        string `json:"name"`
		Parallel    bool   `json:"parallel"`
		N           int    `json:"n"`
		Description string `json:"description"`
	}
	var out []kinfo
	for _, k := range kernels.All() {
		out = append(out, kinfo{Name: k.Name, Parallel: k.Parallel, N: k.N, Description: k.Description})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleMetrics serves every counter surface of the process — server
// admission/rejection/caching counters, wall-clock latency histograms, the
// experiments worker pool, and the simulation-result cache. The default
// rendering is the obs.Registry JSON report (unchanged); an Accept header
// asking for text/plain or OpenMetrics selects the Prometheus text
// exposition instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, errf(http.StatusMethodNotAllowed, "use GET"))
		return
	}
	reg := obs.NewRegistry()
	reg.Add("server",
		obs.Count("requests", s.requests.Load()),
		obs.Count("batch_requests", s.batchRequests.Load()),
		obs.Count("batch_items", s.batchItems.Load()),
		obs.Count("admitted", s.admitted.Load()),
		obs.Count("rejected_busy", s.rejectedBusy.Load()),
		obs.Count("rejected_draining", s.rejectedDraining.Load()),
		obs.Count("client_errors", s.clientErrors.Load()),
		obs.Count("server_errors", s.serverErrors.Load()),
		obs.Count("resp_disk_hits", s.respDiskHits.Load()),
		obs.Count("resp_disk_writes", s.respDiskWrites.Load()),
		obs.Count("panics", s.panics.Load()),
		obs.M("admission_width", float64(cap(s.gate))),
		obs.M("queue_depth", float64(s.queueLimit)),
	)
	reg.Add("experiments.pool", experiments.PoolMetrics()...)
	reg.Add("experiments.memo", experiments.SimMemoMetrics()...)
	reg.AddHistogram("server.latency",
		s.latency["request"], s.latency[stageQueue], s.latency[stageDisk],
		s.latency[stageSimulate], s.latency[stageEncode])
	reg.AddHistogram("experiments.timing", experiments.SimTimingHistograms()...)
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.PromContentType)
		reg.WritePrometheus(w, "mesad")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, errf(http.StatusMethodNotAllowed, "use POST"))
		return
	}
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "server is shutting down"))
		return
	}

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return
	}
	norm, apiErr := s.normalize(&req)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	t := asTrack(w)
	t.setWorkload(req.Kernel, norm.backend.Name, norm.mapper.Name())

	// Admission: at most Admission simulations run, at most QueueDepth wait.
	// The experiments worker pool bounds intra-request fan-out; this gate
	// bounds cross-request concurrency with the same width.
	if s.queued.Add(1) > s.queueLimit {
		s.queued.Add(-1)
		s.rejectedBusy.Add(1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "server is at capacity (queue full)"))
		return
	}
	endQueue := t.stage(stageQueue)
	select {
	case s.gate <- struct{}{}:
	case <-r.Context().Done():
		endQueue()
		s.queued.Add(-1)
		s.writeError(w, errf(http.StatusServiceUnavailable, "request cancelled while queued"))
		return
	}
	endQueue()
	s.queued.Add(-1)
	s.admitted.Add(1)
	defer func() { <-s.gate }()

	// Response store: replay byte-exact warm bytes across restarts.
	key := norm.fingerprint()
	if s.cfg.Store != nil {
		endDisk := t.stage(stageDisk)
		data, ok, err := s.cfg.Store.Get(key)
		endDisk()
		if err == nil && ok {
			s.respDiskHits.Add(1)
			t.setCache("disk")
			writeResponseBytes(w, data, "disk")
			return
		}
	}

	endSim := t.stage(stageSimulate)
	resp, err := simulate(norm)
	endSim()
	if err != nil {
		if apiErr, ok := err.(*Error); ok {
			s.writeError(w, apiErr)
		} else {
			s.writeError(w, errf(http.StatusInternalServerError, "simulation failed: %v", err))
		}
		return
	}
	endEncode := t.stage(stageEncode)
	data, mErr := EncodeResponse(resp)
	endEncode()
	if mErr != nil {
		s.writeError(w, errf(http.StatusInternalServerError, "encode: %v", mErr))
		return
	}
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(key, data); err == nil {
			s.respDiskWrites.Add(1)
		}
	}
	t.setCache("miss")
	writeResponseBytes(w, data, "miss")
}

func writeResponseBytes(w http.ResponseWriter, data []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mesad-Cache", cache)
	w.Write(data)
}

// EncodeResponse serializes a Response exactly as the HTTP handler does
// (fixed field order, trailing newline): the byte-identity contract between
// server responses and direct library calls compares these encodings.
func EncodeResponse(resp *Response) ([]byte, error) {
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// normalized is a validated request with every default resolved, so two
// spellings of the same request ("mapper":"" vs "mapper":"greedy") share one
// fingerprint and one cache entry.
type normalized struct {
	kernel  *kernels.Kernel // nil for raw programs
	prog    *isa.Program    // nil for kernels
	backend *accel.Config
	mapper  mapping.Strategy
	cores   int
}

// normalize validates a request and resolves defaults. Validation failures
// are 4xx API errors, never panics: everything client-controlled is checked
// here before any simulation state is touched.
func (s *Server) normalize(req *Request) (*normalized, *Error) {
	n := &normalized{cores: req.Cores}
	switch {
	case req.Kernel != "" && req.Program != nil:
		return nil, errf(http.StatusBadRequest, "set exactly one of kernel and program, not both")
	case req.Kernel == "" && req.Program == nil:
		return nil, errf(http.StatusBadRequest, "set one of kernel or program")
	case req.Kernel != "":
		k, err := kernels.ByName(req.Kernel)
		if err != nil {
			return nil, errf(http.StatusNotFound, "unknown kernel %q (GET /v1/kernels lists them)", req.Kernel)
		}
		n.kernel = k
	default:
		p := req.Program
		if len(p.Words) == 0 {
			return nil, errf(http.StatusBadRequest, "program has no words")
		}
		if len(p.Words) > MaxProgramWords {
			return nil, errf(http.StatusRequestEntityTooLarge,
				"program too large: %d words (limit %d)", len(p.Words), MaxProgramWords)
		}
		if p.Base%4 != 0 {
			return nil, errf(http.StatusBadRequest, "program base %#x is not word-aligned", p.Base)
		}
		base := p.Base
		if base == 0 {
			base = kernels.CodeBase
		}
		prog := &isa.Program{Base: base, Insts: make([]isa.Inst, 0, len(p.Words))}
		for i, word := range p.Words {
			in, err := isa.Decode(word)
			if err != nil {
				return nil, errf(http.StatusUnprocessableEntity,
					"word %d (%#08x) is not a valid RV32IMF instruction: %v", i, word, err)
			}
			in.Addr = base + uint32(4*i)
			prog.Insts = append(prog.Insts, in)
		}
		n.prog = prog
	}

	switch req.Backend {
	case "", "M-128":
		n.backend = accel.M128()
	case "M-64":
		n.backend = accel.M64()
	case "M-512":
		n.backend = accel.M512()
	default:
		return nil, errf(http.StatusBadRequest, "unknown backend %q (want M-64, M-128, or M-512)", req.Backend)
	}

	name := req.Mapper
	if name == "" {
		name = s.cfg.DefaultMapper
	}
	if name == "" {
		name = mapping.Default().Name()
	}
	strat, err := mapping.ByName(name)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	n.mapper = strat

	if n.cores < 0 || n.cores > 64 {
		return nil, errf(http.StatusBadRequest, "cores %d out of range [0, 64]", n.cores)
	}
	if n.cores == 0 {
		n.cores = 1
	}
	return n, nil
}

// fingerprint content-addresses the normalized request for the response
// store: schema version, workload identity, and the full resolved
// configuration.
func (n *normalized) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "mesad|v%d|seed%d|steps%d|", SchemaVersion, experiments.Seed, experiments.MaxSteps)
	if n.kernel != nil {
		fmt.Fprintf(h, "kernel|%s|%d|%t|", n.kernel.Name, n.kernel.N, n.kernel.Parallel)
	} else {
		fmt.Fprintf(h, "raw|base%d|", n.prog.Base)
		experiments.HashProgramWords(h, n.prog)
	}
	fmt.Fprintf(h, "|map%s|cores%d|", n.mapper.Name(), n.cores)
	n.backend.Fingerprint(h)
	return hex.EncodeToString(h.Sum(nil))
}

// Simulate is the direct library call the HTTP handler wraps: it validates
// and resolves the request exactly like the handler (returning the same
// typed *Error on invalid input) and returns the response the server would
// serve. The load-generator gate compares EncodeResponse(Simulate(req))
// against served bodies byte for byte.
func (s *Server) Simulate(req *Request) (*Response, error) {
	n, apiErr := s.normalize(req)
	if apiErr != nil {
		return nil, apiErr
	}
	return simulate(n)
}

// simulate runs a normalized request through the experiments layer (all
// simulation results are memoized and coalesced there).
func simulate(n *normalized) (*Response, error) {
	if n.kernel != nil {
		return simulateKernel(n)
	}
	return simulateRaw(n)
}

func simulateKernel(n *normalized) (*Response, error) {
	k := n.kernel
	single, err := experiments.TimeSingleCore(k, cpu.DefaultBOOM())
	if err != nil {
		return nil, err
	}
	baseline := single
	if n.cores > 1 {
		mc := cpu.DefaultMulticore()
		mc.Cores = n.cores
		baseline, err = experiments.TimeMulticore(k, mc)
		if err != nil {
			return nil, err
		}
	}
	cpuPerIter := single.Cycles / float64(k.N)
	run, err := experiments.RunMESA(k, n.backend, cpuPerIter, experiments.MESAOptions{Mapper: n.mapper})
	if err != nil {
		return nil, err
	}
	resp := &Response{
		SchemaVersion: SchemaVersion,
		Kernel:        k.Name,
		Backend:       n.backend.Name,
		Mapper:        n.mapper.Name(),
		Qualified:     run.Qualified,
		CPU:           CPUSummary{Cores: baseline.Cores, Cycles: baseline.Cycles},
	}
	if !run.Qualified {
		return resp, nil
	}
	rr := run.Region
	resp.Loop = &LoopSummary{
		Iterations:         run.Iterations,
		AccelCycles:        run.AccelCycles,
		OverheadCycles:     run.OverheadCycles,
		CPUProfilingCycles: run.CPUProfilingCycles,
		TotalCycles:        run.TotalCycles,
		AvgIterCycles:      rr.FinalAvgIter,
		II:                 rr.FinalII,
		Bound:              rr.Bound,
		Tiles:              rr.Tiles,
		Reconfigs:          rr.Reconfigs,
		ConfigWords:        rr.ConfigWords,
	}
	resp.Attribution = rr.Attrib
	if run.TotalCycles > 0 {
		resp.Speedup = baseline.Cycles / run.TotalCycles
	}
	return resp, nil
}

func simulateRaw(n *normalized) (*Response, error) {
	single, err := experiments.TimeProgramSingleCore(n.prog, cpu.DefaultBOOM())
	if err != nil {
		return nil, err
	}
	report, err := experiments.RunProgramMESA(n.prog, n.backend, n.mapper)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		SchemaVersion: SchemaVersion,
		Backend:       n.backend.Name,
		Mapper:        n.mapper.Name(),
		Qualified:     len(report.Regions) > 0,
		CPU:           CPUSummary{Cores: 1, Cycles: single.Cycles},
	}
	if len(report.Regions) == 0 {
		return resp, nil
	}
	rr := report.Regions[0]
	total := rr.TotalCycles()
	resp.Loop = &LoopSummary{
		Iterations:     rr.Iterations,
		AccelCycles:    rr.AccelCycles,
		OverheadCycles: rr.OverheadCycles,
		TotalCycles:    total,
		AvgIterCycles:  rr.FinalAvgIter,
		II:             rr.FinalII,
		Bound:          rr.Bound,
		Tiles:          rr.Tiles,
		Reconfigs:      rr.Reconfigs,
		ConfigWords:    rr.ConfigWords,
	}
	resp.Attribution = rr.Attrib
	if total > 0 {
		resp.Speedup = single.Cycles / total
	}
	return resp, nil
}
