package sim

import (
	"mesa/internal/isa"
	"mesa/internal/obs"
)

// RetireRecorder is a Tracer that logs every retired instruction to an
// obs.Recorder as one slice on the CPU track of the unified trace. It rides
// the same hook the MESA controller monitors (function F1 in the paper), so
// attaching it never perturbs execution.
type RetireRecorder struct {
	R   *obs.Recorder
	PID int32

	// Clock supplies the global cycle for each retirement. When nil, the
	// retirement index is used (the functional machine has no clock: one
	// retired instruction displays as one cycle).
	Clock func() float64

	n float64
}

// NewRetireRecorder builds a retire recorder for the monitored-core track.
func NewRetireRecorder(r *obs.Recorder, clock func() float64) *RetireRecorder {
	return &RetireRecorder{R: r, PID: obs.PIDCPU, Clock: clock}
}

// Metrics snapshots the retirement statistics for the stats report.
func (s *Stats) Metrics() []obs.Metric {
	ms := []obs.Metric{
		obs.Count("retired", s.Retired),
		obs.Count("branch_taken", s.BranchTaken),
	}
	for cls, n := range s.ByClass {
		if n > 0 {
			ms = append(ms, obs.Count("retired_"+isa.Class(cls).String(), n))
		}
	}
	return ms
}

// Trace implements Tracer.
func (t *RetireRecorder) Trace(ev Event) {
	if !t.R.Enabled() {
		return
	}
	ts := t.n
	if t.Clock != nil {
		ts = t.Clock()
	}
	t.R.Complete(t.PID, 0, "cpu", ev.Inst.Op.String(), ts, 1)
	t.n++
}
