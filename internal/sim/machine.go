// Package sim implements a functional RV32IMF interpreter. It is the
// correctness oracle of the reproduction: the CPU timing model and the
// spatial accelerator are both differentially tested against it, and the
// MESA controller monitors its retired-instruction stream the way the paper's
// hardware monitors the core's decode stage.
package sim

import (
	"fmt"

	"mesa/internal/alu"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

// Event describes one retired instruction, delivered to Tracers.
type Event struct {
	Inst   isa.Inst
	PC     uint32
	NextPC uint32
	Taken  bool // valid for branches
	Addr   uint32
	IsMem  bool
}

// Tracer observes retired instructions. The MESA controller attaches one to
// monitor execution (function F1 in the paper).
type Tracer interface {
	Trace(ev Event)
}

// Stats counts retired instructions by class.
type Stats struct {
	Retired     uint64
	ByClass     [isa.NumClasses]uint64
	BranchTaken uint64
}

// Machine is a functional RV32IMF machine: 32 integer + 32 FP registers, a
// PC, and a byte-addressable memory. Execution is exact; no timing is
// modeled here.
type Machine struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  *mem.Memory

	Prog    *isa.Program
	Halted  bool
	Stats   Stats
	tracers []Tracer
}

// New creates a machine executing prog against memory m, starting at the
// program base.
func New(prog *isa.Program, m *mem.Memory) *Machine {
	return &Machine{Mem: m, Prog: prog, PC: prog.Base}
}

// Attach registers a tracer to observe every retired instruction.
func (mc *Machine) Attach(t Tracer) { mc.tracers = append(mc.tracers, t) }

// Reg returns the value of r (x0 reads as zero).
func (mc *Machine) Reg(r isa.Reg) uint32 {
	if r == isa.X0 || r == isa.RegNone {
		return 0
	}
	return mc.Regs[r]
}

// SetReg writes a register (writes to x0 are ignored).
func (mc *Machine) SetReg(r isa.Reg, v uint32) {
	if r == isa.X0 || r == isa.RegNone {
		return
	}
	mc.Regs[r] = v
}

// SetF sets a floating-point register from a float32.
func (mc *Machine) SetF(r isa.Reg, f float32) { mc.SetReg(r, alu.F32(f)) }

// F reads a floating-point register as a float32.
func (mc *Machine) F(r isa.Reg) float32 { return alu.ToF32(mc.Reg(r)) }

// Step executes one instruction. ECALL halts the machine (the convention the
// kernels use to signal completion). An unmapped PC is an error.
func (mc *Machine) Step() error {
	if mc.Halted {
		return fmt.Errorf("sim: machine is halted")
	}
	in, ok := mc.Prog.At(mc.PC)
	if !ok {
		return fmt.Errorf("sim: PC %#x outside program [%#x, %#x)", mc.PC, mc.Prog.Base, mc.Prog.End())
	}
	ev := Event{Inst: in, PC: mc.PC, NextPC: mc.PC + 4}

	switch {
	case in.Op == isa.OpECALL:
		mc.Halted = true
	case in.Op == isa.OpEBREAK || in.Op == isa.OpFENCE || in.Op == isa.OpNOP:
		// no architectural effect
	case in.Op == isa.OpCSRRW || in.Op == isa.OpCSRRS || in.Op == isa.OpCSRRC:
		// CSRs are modeled as zero; reads return 0, writes are dropped.
		mc.SetReg(in.Rd, 0)

	case in.IsLoad():
		addr := alu.EffAddr(mc.Reg(in.Rs1), in.Imm)
		v, err := mc.Mem.Load(in.Op, addr)
		if err != nil {
			return err
		}
		mc.SetReg(in.Rd, v)
		ev.Addr, ev.IsMem = addr, true

	case in.IsStore():
		addr := alu.EffAddr(mc.Reg(in.Rs1), in.Imm)
		if err := mc.Mem.Store(in.Op, addr, mc.Reg(in.Rs2)); err != nil {
			return err
		}
		ev.Addr, ev.IsMem = addr, true

	case in.IsBranch():
		taken, err := alu.EvalBranch(in.Op, mc.Reg(in.Rs1), mc.Reg(in.Rs2))
		if err != nil {
			return err
		}
		if taken {
			ev.NextPC = in.BranchTarget()
			mc.Stats.BranchTaken++
		}
		ev.Taken = taken

	case in.Op == isa.OpJAL:
		mc.SetReg(in.Rd, mc.PC+4)
		ev.NextPC = in.BranchTarget()
		ev.Taken = true

	case in.Op == isa.OpJALR:
		target := (mc.Reg(in.Rs1) + uint32(in.Imm)) &^ 1
		mc.SetReg(in.Rd, mc.PC+4)
		ev.NextPC = target
		ev.Taken = true

	case in.Op == isa.OpAUIPC:
		mc.SetReg(in.Rd, mc.PC+uint32(in.Imm))

	default:
		a := mc.Reg(in.Rs1)
		b := mc.Reg(in.Rs2)
		if in.Op.HasImm() || in.Op == isa.OpLUI {
			b = uint32(in.Imm)
		}
		c := mc.Reg(in.Rs3)
		v, err := alu.Eval(in.Op, a, b, c)
		if err != nil {
			return err
		}
		mc.SetReg(in.Rd, v)
	}

	mc.Stats.Retired++
	mc.Stats.ByClass[in.Class()]++
	mc.PC = ev.NextPC
	for _, t := range mc.tracers {
		t.Trace(ev)
	}
	return nil
}

// Run executes until the machine halts or maxSteps instructions retire.
// It returns the number of instructions retired by this call.
func (mc *Machine) Run(maxSteps uint64) (uint64, error) {
	var n uint64
	for !mc.Halted && n < maxSteps {
		if err := mc.Step(); err != nil {
			return n, err
		}
		n++
	}
	if !mc.Halted {
		return n, fmt.Errorf("sim: did not halt within %d steps", maxSteps)
	}
	return n, nil
}
