package sim

import (
	"testing"

	"mesa/internal/alu"
	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

func run(t *testing.T, src string, setup func(*Machine)) *Machine {
	t.Helper()
	p, err := asm.Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.NewMemory())
	if setup != nil {
		setup(m)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCountedLoop(t *testing.T) {
	m := run(t, `
	li t0, 0
	li t1, 0
loop:
	add t1, t1, t0
	addi t0, t0, 1
	blt t0, t2, loop
	ecall
`, func(m *Machine) { m.SetReg(isa.RegT2, 10) })
	if got := m.Reg(isa.RegT1); got != 45 {
		t.Errorf("sum 0..9 = %d, want 45", got)
	}
}

func TestMemoryLoop(t *testing.T) {
	m := run(t, `
	li t0, 0
	li t1, 8
	li a0, 0x4000
loop:
	slli t2, t0, 2
	add  t3, a0, t2
	lw   t4, 0(t3)
	slli t4, t4, 1
	sw   t4, 64(t3)
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`, func(m *Machine) {
		for i := uint32(0); i < 8; i++ {
			m.Mem.StoreWord(0x4000+4*i, i+1)
		}
	})
	for i := uint32(0); i < 8; i++ {
		if got := m.Mem.LoadWord(0x4040 + 4*i); got != 2*(i+1) {
			t.Errorf("out[%d] = %d, want %d", i, got, 2*(i+1))
		}
	}
	if m.Stats.ByClass[isa.ClassLoad] != 8 || m.Stats.ByClass[isa.ClassStore] != 8 {
		t.Errorf("mem class counts = %d/%d", m.Stats.ByClass[isa.ClassLoad], m.Stats.ByClass[isa.ClassStore])
	}
}

func TestFloatDotProduct(t *testing.T) {
	m := run(t, `
	li   t0, 0
	li   t1, 4
	li   a0, 0x4000
	li   a1, 0x5000
	fmv.w.x fa0, zero
loop:
	slli t2, t0, 2
	add  t3, a0, t2
	add  t4, a1, t2
	flw  ft0, 0(t3)
	flw  ft1, 0(t4)
	fmadd.s fa0, ft0, ft1, fa0
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`, func(m *Machine) {
		m.Mem.WriteF32s(0x4000, []float32{1, 2, 3, 4})
		m.Mem.WriteF32s(0x5000, []float32{5, 6, 7, 8})
	})
	if got := m.F(isa.FPReg(10)); got != 70 {
		t.Errorf("dot = %g, want 70", got)
	}
}

func TestForwardBranch(t *testing.T) {
	m := run(t, `
	li t0, 0
	li t1, 10
	li t3, 0
loop:
	andi t2, t0, 1
	beq  t2, zero, skip
	addi t3, t3, 1
skip:
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`, nil)
	if got := m.Reg(isa.RegT0 + 2); got != 5 { // t2 is x7; check odd counter t3=x28
		_ = got
	}
	if got := m.Reg(isa.X28); got != 5 {
		t.Errorf("odd count = %d, want 5", got)
	}
}

func TestJALAndJALR(t *testing.T) {
	m := run(t, `
	li   a0, 5
	jal  ra, double
	addi a1, a0, 0
	ecall
double:
	slli a0, a0, 1
	ret
`, nil)
	if got := m.Reg(isa.RegA1); got != 10 {
		t.Errorf("a1 = %d, want 10", got)
	}
}

func TestX0AlwaysZero(t *testing.T) {
	m := run(t, `
	addi zero, zero, 5
	add  t0, zero, zero
	ecall
`, nil)
	if m.Reg(isa.X0) != 0 || m.Reg(isa.RegT0) != 0 {
		t.Error("x0 must stay zero")
	}
}

func TestPCOutsideProgramErrors(t *testing.T) {
	p := asm.MustAssemble(0x1000, "nop") // no ecall: runs off the end
	m := New(p, mem.NewMemory())
	if err := m.Step(); err != nil {
		t.Fatalf("first step: %v", err)
	}
	if err := m.Step(); err == nil {
		t.Fatal("expected PC-out-of-range error")
	}
}

func TestRunMaxStepsExceeded(t *testing.T) {
	p := asm.MustAssemble(0x1000, "loop: j loop")
	m := New(p, mem.NewMemory())
	if _, err := m.Run(100); err == nil {
		t.Fatal("expected non-halting error")
	}
}

func TestTracerSeesEvents(t *testing.T) {
	var events []Event
	tracerFn := tracerFunc(func(ev Event) { events = append(events, ev) })
	p := asm.MustAssemble(0x1000, `
	li t0, 1
	sw t0, 0(t1)
	beq t0, t0, done
	nop
done:
	ecall
`)
	m := New(p, mem.NewMemory())
	m.SetReg(isa.RegT1, 0x4000)
	m.Attach(tracerFn)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 { // li, sw, beq(taken), ecall — nop skipped
		t.Fatalf("saw %d events, want 4", len(events))
	}
	if !events[1].IsMem || events[1].Addr != 0x4000 {
		t.Errorf("store event = %+v", events[1])
	}
	if !events[2].Taken || events[2].NextPC != events[2].Inst.BranchTarget() {
		t.Errorf("branch event = %+v", events[2])
	}
}

type tracerFunc func(Event)

func (f tracerFunc) Trace(ev Event) { f(ev) }

func TestFloatRegisterAccess(t *testing.T) {
	m := New(asm.MustAssemble(0, "ecall"), mem.NewMemory())
	m.SetF(isa.F3, 2.5)
	if m.F(isa.F3) != 2.5 {
		t.Error("SetF/F round trip broken")
	}
	if m.Reg(isa.F3) != alu.F32(2.5) {
		t.Error("FP registers should store bit patterns")
	}
}
