package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mesa/internal/isa"
	"mesa/internal/noc"
)

func node(op isa.Op, lat float64, srcs ...NodeID) Node {
	n := Node{
		Inst:       isa.Inst{Op: op, Rd: isa.X5, Rs1: isa.X6, Rs2: isa.X7, Rs3: isa.RegNone},
		OpLat:      lat,
		Src:        [3]NodeID{None, None, None},
		LiveIn:     [3]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone},
		MemDep:     None,
		PredDep:    None,
		PredLiveIn: isa.RegNone,
		CtrlDep:    None,
	}
	for k, s := range srcs {
		n.Src[k] = s
	}
	return n
}

// TestFigure2Example reproduces the paper's worked DFG latency example:
// five instructions with add/sub at 3 cycles, multiply at 5 cycles, and
// transfer latency equal to the Manhattan distance between placements. The
// sequence completes in 15 cycles with {i1, i4, i5} on the critical path.
func TestFigure2Example(t *testing.T) {
	g := NewGraph()
	i1 := g.Add(node(isa.OpFADDS, 3))     // inputs ready from registers
	i2 := g.Add(node(isa.OpFMULS, 5, i1)) // dist 1 from i1
	i3 := g.Add(node(isa.OpFADDS, 3, i2)) // dist 1 from i2
	i4 := g.Add(node(isa.OpFMULS, 5, i1)) // dist 2 from i1
	i5 := g.Add(node(isa.OpFADDS, 3, i4)) // dist 2 from i4
	pos := map[NodeID]noc.Coord{
		i1: {Row: 0, Col: 0},
		i2: {Row: 0, Col: 1},
		i3: {Row: 1, Col: 1},
		i4: {Row: 0, Col: 2},
		i5: {Row: 2, Col: 2},
	}
	mesh := noc.Mesh{}
	edge := func(from, to NodeID) float64 {
		return float64(mesh.Latency(pos[from], pos[to]))
	}

	ev := g.Evaluate(edge)
	want := []float64{3, 9, 13, 10, 15}
	for i, w := range want {
		if ev.Completion[i] != w {
			t.Errorf("L_i%d = %v, want %v", i+1, ev.Completion[i], w)
		}
	}
	if ev.Total != 15 {
		t.Errorf("total = %v, want 15", ev.Total)
	}
	cp := ev.CriticalPath()
	if len(cp) != 3 || cp[0] != i1 || cp[1] != i4 || cp[2] != i5 {
		t.Errorf("critical path = %v, want [i1 i4 i5]", cp)
	}

	// Slack: critical-path nodes have zero slack; i3 can slip by 2.
	slack := g.Slack(ev, edge)
	for _, id := range cp {
		if slack[id] != 0 {
			t.Errorf("slack of critical node i%d = %v", id+1, slack[id])
		}
	}
	if slack[i3] != 2 {
		t.Errorf("slack(i3) = %v, want 2", slack[i3])
	}
}

func TestMeasuredEdgeOverride(t *testing.T) {
	g := NewGraph()
	a := g.Add(node(isa.OpADD, 1))
	b := g.Add(node(isa.OpADD, 1, a))
	ev := g.Evaluate(ConstantEdges(4))
	if ev.Completion[b] != 6 {
		t.Fatalf("pre-override L_b = %v", ev.Completion[b])
	}
	g.SetEdgeLatency(a, b, 10)
	ev = g.Evaluate(ConstantEdges(4))
	if ev.Completion[b] != 12 {
		t.Errorf("measured override ignored: L_b = %v", ev.Completion[b])
	}
	g.ClearMeasurements()
	ev = g.Evaluate(ConstantEdges(4))
	if ev.Completion[b] != 6 {
		t.Errorf("ClearMeasurements did not reset: L_b = %v", ev.Completion[b])
	}
}

func TestValidateRejectsForwardDeps(t *testing.T) {
	g := NewGraph()
	a := g.Add(node(isa.OpADD, 1))
	bad := node(isa.OpADD, 1)
	bad.Src[0] = a + 1 // forward reference
	g.Add(bad)
	if err := g.Validate(); err == nil {
		t.Error("forward dependency should fail validation")
	}

	g2 := NewGraph()
	x := g2.Add(node(isa.OpADD, 1))
	y := node(isa.OpADD, 1)
	y.Src[0] = x
	g2.Add(y)
	if err := g2.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestConsumers(t *testing.T) {
	g := NewGraph()
	a := g.Add(node(isa.OpADD, 1))
	b := g.Add(node(isa.OpADD, 1, a))
	c := g.Add(node(isa.OpADD, 1, a, b))
	cons := g.Consumers()
	if len(cons[a]) != 2 || cons[a][0] != b || cons[a][1] != c {
		t.Errorf("consumers(a) = %v", cons[a])
	}
	if len(cons[c]) != 0 {
		t.Errorf("consumers(c) = %v", cons[c])
	}
}

func TestParentsIncludeAllDepKinds(t *testing.T) {
	g := NewGraph()
	a := g.Add(node(isa.OpADD, 1))
	b := g.Add(node(isa.OpSW, 1, a))
	c := node(isa.OpLW, 3)
	c.MemDep = b
	c.PredDep = a
	c.CtrlDep = a
	id := g.Add(c)
	edges := g.Node(id).Parents(nil)
	kinds := map[DepKind]bool{}
	for _, e := range edges {
		kinds[e.Kind] = true
	}
	if !kinds[DepMem] || !kinds[DepPred] || !kinds[DepCtrl] {
		t.Errorf("missing dep kinds in %v", edges)
	}
}

// Property: total latency is monotone in edge latency, and every completion
// time is at least the node's own operation latency.
func TestLatencyMonotonicity(t *testing.T) {
	build := func(seed int64) *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 2 + rng.Intn(30)
		for i := 0; i < n; i++ {
			nd := node(isa.OpADD, 1+float64(rng.Intn(5)))
			for k := 0; k < 2 && i > 0; k++ {
				if rng.Intn(2) == 0 {
					nd.Src[k] = NodeID(rng.Intn(i))
				}
			}
			g.Add(nd)
		}
		return g
	}
	f := func(seed int64, lat uint8) bool {
		g := build(seed)
		lo := g.Evaluate(ConstantEdges(float64(lat % 8)))
		hi := g.Evaluate(ConstantEdges(float64(lat%8) + 1))
		if hi.Total < lo.Total {
			return false
		}
		for i := range g.Nodes {
			if lo.Completion[i] < g.Nodes[i].OpLat {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path is a chain of dependencies whose weights sum
// to the total latency.
func TestCriticalPathSumsToTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			nd := node(isa.OpADD, 1+float64(rng.Intn(4)))
			if i > 0 && rng.Intn(3) > 0 {
				nd.Src[0] = NodeID(rng.Intn(i))
			}
			g.Add(nd)
		}
		edge := ConstantEdges(2)
		ev := g.Evaluate(edge)
		cp := ev.CriticalPath()
		if len(cp) == 0 {
			return n == 0
		}
		sum := 0.0
		for i, id := range cp {
			sum += g.Node(id).OpLat
			if i > 0 {
				sum += 2 // constant edge latency
			}
		}
		return sum == ev.Total
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyTableRendering(t *testing.T) {
	g := NewGraph()
	g.Add(node(isa.OpADD, 1))
	ev := g.Evaluate(ZeroEdges)
	if s := g.LatencyTable(ev); len(s) == 0 {
		t.Error("empty latency table")
	}
	if s := g.String(); len(s) == 0 {
		t.Error("empty graph dump")
	}
}
