// Package dfg implements MESA's weighted dataflow-graph model (paper §3.1):
// a directed acyclic graph whose nodes are instructions weighted by operation
// latency and whose edges are dependencies weighted by data-transfer latency.
// The graph doubles as a functional model (what to compute) and a performance
// model (Equations 1–2, critical path) that the mapping algorithm and the
// iterative optimizer consume.
package dfg

import (
	"fmt"
	"strings"

	"mesa/internal/isa"
)

// NodeID indexes a node within a Graph. Nodes are stored in program order,
// so the LDFG view of the paper is simply the node slice, while the SDFG
// view adds coordinates on top (internal/core).
type NodeID int32

// None marks an absent dependency.
const None NodeID = -1

// DepKind labels why an edge exists; the accelerator uses it to decide what
// travels over the wire (data, memory ordering token, or predicate).
type DepKind uint8

const (
	DepData DepKind = iota // register dataflow
	DepMem                 // memory ordering (store → later load/store)
	DepPred                // hidden predication dependency (old dest value)
	DepCtrl                // controlling forward branch → shadowed instruction
)

func (k DepKind) String() string {
	switch k {
	case DepData:
		return "data"
	case DepMem:
		return "mem"
	case DepPred:
		return "pred"
	case DepCtrl:
		return "ctrl"
	}
	return fmt.Sprintf("dep(%d)", uint8(k))
}

// Edge is a dependency from From to To.
type Edge struct {
	From, To NodeID
	Kind     DepKind
	// SrcSlot is the operand slot (0..2) the edge feeds when Kind is DepData
	// or DepPred.
	SrcSlot int
}

// Node is one instruction in the DFG.
type Node struct {
	ID   NodeID
	Inst isa.Inst

	// OpLat is the node weight: average measured or estimated latency of the
	// operation in cycles, from inputs available to output produced.
	OpLat float64

	// Register dataflow: Src[k] is the node producing operand slot k, or
	// None when the operand is a live-in register or immediate. LiveIn[k]
	// names the architectural register read at loop entry when Src[k] is
	// None and the slot reads a register.
	Src    [3]NodeID
	LiveIn [3]isa.Reg

	// MemDep is the most recent prior store this memory instruction must
	// order after (None for non-memory nodes or when no prior store exists).
	MemDep NodeID

	// PredDep is the hidden dependency of a predicated instruction: the
	// previous producer of the destination register, whose value must be
	// forwarded when the instruction is disabled (paper §5.2). None when the
	// node is not under a branch shadow or has no prior producer.
	PredDep NodeID

	// PredLiveIn names the architectural register whose loop-entry value the
	// disabled instruction must forward when PredDep is None but the node is
	// predicated (RegNone otherwise).
	PredLiveIn isa.Reg

	// CtrlDep is the forward branch controlling this node (None if any).
	CtrlDep NodeID

	// Fwd marks a load whose value is satisfied by store-to-load forwarding:
	// Src[1] carries the forwarded data edge and the memory access is
	// elided (paper §4.2).
	Fwd bool
}

// HasSrc reports whether operand slot k is fed by another node.
func (n *Node) HasSrc(k int) bool { return n.Src[k] != None }

// Parents appends all dependency edges entering n to dst and returns it.
func (n *Node) Parents(dst []Edge) []Edge {
	for k := 0; k < 3; k++ {
		if n.Src[k] != None {
			dst = append(dst, Edge{From: n.Src[k], To: n.ID, Kind: DepData, SrcSlot: k})
		}
	}
	if n.MemDep != None {
		dst = append(dst, Edge{From: n.MemDep, To: n.ID, Kind: DepMem})
	}
	if n.PredDep != None {
		dst = append(dst, Edge{From: n.PredDep, To: n.ID, Kind: DepPred})
	}
	if n.CtrlDep != None {
		dst = append(dst, Edge{From: n.CtrlDep, To: n.ID, Kind: DepCtrl})
	}
	return dst
}

// Graph is a weighted DFG. Nodes are stored in program order; every
// dependency points from a lower index to a higher one (the loop bodies MESA
// accepts are strictly acyclic, paper §5.2).
type Graph struct {
	Nodes []Node

	// LiveOut maps each architectural register written in the region to the
	// last node writing it: the final state of the rename table. These
	// values are the region's register results.
	LiveOut map[isa.Reg]NodeID

	// edgeLat holds measured per-edge transfer latencies (performance
	// counters feeding back into the model); missing entries fall back to
	// the interconnect estimate during evaluation.
	edgeLat map[uint64]float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{LiveOut: make(map[isa.Reg]NodeID)}
}

// Add appends a node and returns its ID. The node's ID field is set.
func (g *Graph) Add(n Node) NodeID {
	n.ID = NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// Node returns a pointer to the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

func edgeKey(from, to NodeID) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// SetEdgeLatency records a measured transfer latency for the edge from→to.
func (g *Graph) SetEdgeLatency(from, to NodeID, lat float64) {
	if g.edgeLat == nil {
		g.edgeLat = make(map[uint64]float64)
	}
	g.edgeLat[edgeKey(from, to)] = lat
}

// MeasuredEdgeLatency returns the measured latency for an edge, if any.
func (g *Graph) MeasuredEdgeLatency(from, to NodeID) (float64, bool) {
	lat, ok := g.edgeLat[edgeKey(from, to)]
	return lat, ok
}

// ClearMeasurements drops all measured edge latencies.
func (g *Graph) ClearMeasurements() { g.edgeLat = nil }

// Edges appends every edge in the graph to dst and returns it.
func (g *Graph) Edges(dst []Edge) []Edge {
	for i := range g.Nodes {
		dst = g.Nodes[i].Parents(dst)
	}
	return dst
}

// Validate checks the structural invariants: all dependencies point
// backward (acyclicity by construction) and reference valid nodes.
func (g *Graph) Validate() error {
	var scratch []Edge
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("dfg: node %d has ID %d", i, n.ID)
		}
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			if e.From < 0 || int(e.From) >= len(g.Nodes) {
				return fmt.Errorf("dfg: node %d has out-of-range dep %d", i, e.From)
			}
			if e.From >= e.To {
				return fmt.Errorf("dfg: node %d has non-backward dep %d (%s)", i, e.From, e.Kind)
			}
		}
	}
	for reg, id := range g.LiveOut {
		if id < 0 || int(id) >= len(g.Nodes) {
			return fmt.Errorf("dfg: live-out %v references invalid node %d", reg, id)
		}
	}
	return nil
}

// Consumers returns, for each node, the IDs of nodes consuming its output
// through data edges (used by the configuration step to program fan-out).
func (g *Graph) Consumers() [][]NodeID {
	out := make([][]NodeID, len(g.Nodes))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for k := 0; k < 3; k++ {
			if n.Src[k] != None {
				out[n.Src[k]] = append(out[n.Src[k]], n.ID)
			}
		}
	}
	return out
}

// String renders the graph one node per line, showing dependencies.
func (g *Graph) String() string {
	var b strings.Builder
	for i := range g.Nodes {
		n := &g.Nodes[i]
		fmt.Fprintf(&b, "i%-3d %-28s lat=%.1f", n.ID, n.Inst.String(), n.OpLat)
		for k := 0; k < 3; k++ {
			if n.Src[k] != None {
				fmt.Fprintf(&b, " s%d=i%d", k+1, n.Src[k])
			} else if n.LiveIn[k] != isa.RegNone {
				fmt.Fprintf(&b, " s%d=%v", k+1, n.LiveIn[k])
			}
		}
		if n.MemDep != None {
			fmt.Fprintf(&b, " mem=i%d", n.MemDep)
		}
		if n.PredDep != None {
			fmt.Fprintf(&b, " pred=i%d", n.PredDep)
		}
		if n.CtrlDep != None {
			fmt.Fprintf(&b, " ctrl=i%d", n.CtrlDep)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
