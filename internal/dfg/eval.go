package dfg

import "fmt"

// EdgeLatencyFunc estimates the data-transfer latency of an edge. Mapped
// graphs derive this from node placement and the interconnect model; the
// unmapped LDFG uses a constant (often zero) estimate.
type EdgeLatencyFunc func(from, to NodeID) float64

// ZeroEdges is the edge model before any placement exists: transfers are
// free, so evaluation yields the dataflow-limit latency of the region.
func ZeroEdges(from, to NodeID) float64 { return 0 }

// ConstantEdges returns an edge model charging the same latency everywhere.
func ConstantEdges(lat float64) EdgeLatencyFunc {
	return func(from, to NodeID) float64 { return lat }
}

// Eval holds the result of evaluating the performance model over a graph:
// per-node completion cycles (L_i in the paper, Equation 2) and the overall
// region latency max{L_i}.
type Eval struct {
	// Completion[i] is L_i: the cycle at which node i produces its output,
	// measured from the start of the iteration.
	Completion []float64
	// Total is the latency of the full instruction sequence.
	Total float64
	// critParent[i] is the dependency that determined node i's start time
	// (the last-arriving input), or None for source nodes.
	critParent []NodeID
	// critTail is the node with the largest completion time.
	critTail NodeID
}

// Evaluate computes Equation 2 over the whole graph:
//
//	L_i = L_i.op + max over parents p of (L_p + L_(p,i))
//
// Measured edge latencies recorded with SetEdgeLatency take priority over
// the edge model. Nodes are in program order and all dependencies point
// backward, so a single forward sweep suffices.
func (g *Graph) Evaluate(edge EdgeLatencyFunc) *Eval {
	ev := &Eval{
		Completion: make([]float64, len(g.Nodes)),
		critParent: make([]NodeID, len(g.Nodes)),
		critTail:   None,
	}
	var scratch []Edge
	for i := range g.Nodes {
		n := &g.Nodes[i]
		arrival := 0.0
		ev.critParent[i] = None
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			lat, ok := g.MeasuredEdgeLatency(e.From, e.To)
			if !ok {
				lat = edge(e.From, e.To)
			}
			if a := ev.Completion[e.From] + lat; a > arrival {
				arrival = a
				ev.critParent[i] = e.From
			}
		}
		ev.Completion[i] = arrival + n.OpLat
		if ev.critTail == None || ev.Completion[i] > ev.Total {
			ev.Total = ev.Completion[i]
			ev.critTail = NodeID(i)
		}
	}
	return ev
}

// CriticalPath returns the node IDs of the critical path in program order:
// the chain of last-arriving dependencies ending at the node with maximum
// completion time. This is the path the mapping algorithm prioritizes.
func (e *Eval) CriticalPath() []NodeID {
	if e.critTail == None {
		return nil
	}
	var rev []NodeID
	for id := e.critTail; id != None; id = e.critParent[id] {
		rev = append(rev, id)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// OnCriticalPath returns a membership mask over nodes for the critical path.
func (e *Eval) OnCriticalPath() []bool {
	mask := make([]bool, len(e.Completion))
	for _, id := range e.CriticalPath() {
		mask[id] = true
	}
	return mask
}

// Slack returns, per node, how many cycles its completion could slip without
// extending the total latency, assuming downstream arrival times stay fixed.
// Bottleneck analysis uses low-slack nodes as optimization targets.
func (g *Graph) Slack(ev *Eval, edge EdgeLatencyFunc) []float64 {
	// latest[i] = latest completion of node i that keeps Total unchanged.
	latest := make([]float64, len(g.Nodes))
	for i := range latest {
		latest[i] = ev.Total
	}
	var scratch []Edge
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := &g.Nodes[i]
		scratch = n.Parents(scratch[:0])
		for _, e := range scratch {
			lat, ok := g.MeasuredEdgeLatency(e.From, e.To)
			if !ok {
				lat = edge(e.From, e.To)
			}
			// Parent must complete early enough for this node to start at
			// latest[i] - OpLat.
			bound := latest[i] - n.OpLat - lat
			if bound < latest[e.From] {
				latest[e.From] = bound
			}
		}
	}
	slack := make([]float64, len(g.Nodes))
	for i := range slack {
		slack[i] = latest[i] - ev.Completion[i]
	}
	return slack
}

// LatencyTable renders the per-node latency table like Figure 2 of the paper.
func (g *Graph) LatencyTable(ev *Eval) string {
	s := "node  inst                          L_i\n"
	for i := range g.Nodes {
		s += fmt.Sprintf("i%-4d %-28s %6.1f\n", i, g.Nodes[i].Inst.String(), ev.Completion[i])
	}
	s += fmt.Sprintf("total %34.1f\n", ev.Total)
	return s
}
