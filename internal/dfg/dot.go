package dfg

import (
	"fmt"
	"strings"
)

// DotOptions controls Graphviz rendering of a DFG.
type DotOptions struct {
	// Name is the graph name (default "dfg").
	Name string

	// Eval, when non-nil, annotates nodes with completion times and
	// highlights the critical path.
	Eval *Eval

	// Position, when non-nil, labels each node with its placement (the SDFG
	// view); the function returns a human-readable location string.
	Position func(NodeID) string

	// EdgeLatency, when non-nil, labels data edges with transfer latencies.
	EdgeLatency EdgeLatencyFunc
}

// Dot renders the graph in Graphviz DOT format: nodes are instructions
// (weighted by operation latency), solid edges are register dataflow, dashed
// edges are memory ordering, dotted edges predication/control. Pipe the
// output through `dot -Tsvg` to visualize a mapping.
func (g *Graph) Dot(opts DotOptions) string {
	name := opts.Name
	if name == "" {
		name = "dfg"
	}
	var crit []bool
	if opts.Eval != nil {
		crit = opts.Eval.OnCriticalPath()
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")

	for i := range g.Nodes {
		n := &g.Nodes[i]
		label := fmt.Sprintf("i%d: %s\\nop=%.1f", i, escapeDot(n.Inst.String()), n.OpLat)
		if opts.Eval != nil {
			label += fmt.Sprintf("\\nL=%.1f", opts.Eval.Completion[i])
		}
		if opts.Position != nil {
			label += "\\n@" + escapeDot(opts.Position(NodeID(i)))
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if crit != nil && crit[i] {
			attrs += ", style=filled, fillcolor=\"#ffd8a8\", penwidth=2"
		} else if n.Inst.IsMem() && !n.Fwd {
			attrs += ", style=filled, fillcolor=\"#d0ebff\""
		} else if n.CtrlDep != None {
			attrs += ", style=filled, fillcolor=\"#f3f0ff\""
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, attrs)
	}

	var scratch []Edge
	for i := range g.Nodes {
		scratch = g.Nodes[i].Parents(scratch[:0])
		for _, e := range scratch {
			style := "solid"
			color := "black"
			label := ""
			switch e.Kind {
			case DepMem:
				style, color = "dashed", "#1971c2"
			case DepPred:
				style, color = "dotted", "#9c36b5"
			case DepCtrl:
				style, color = "dotted", "#e03131"
			default:
				if opts.EdgeLatency != nil {
					if lat, ok := g.MeasuredEdgeLatency(e.From, e.To); ok {
						label = fmt.Sprintf("%.1f", lat)
					} else {
						label = fmt.Sprintf("%.1f", opts.EdgeLatency(e.From, e.To))
					}
				}
			}
			attrs := fmt.Sprintf("style=%s, color=\"%s\"", style, color)
			if label != "" {
				attrs += fmt.Sprintf(", label=\"%s\"", label)
			}
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attrs)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
