package dfg

import (
	"strings"
	"testing"

	"mesa/internal/isa"
)

func TestDotRendering(t *testing.T) {
	g := NewGraph()
	a := g.Add(node(isa.OpLW, 3))
	b := g.Add(node(isa.OpADD, 1, a))
	st := node(isa.OpSW, 1, b)
	st.MemDep = a
	g.Add(st)
	pr := node(isa.OpADDI, 1)
	pr.PredDep = b
	pr.CtrlDep = a
	g.Add(pr)

	ev := g.Evaluate(ConstantEdges(1))
	out := g.Dot(DotOptions{
		Name:        "test",
		Eval:        ev,
		Position:    func(id NodeID) string { return "(0,0)" },
		EdgeLatency: ConstantEdges(1),
	})
	for _, want := range []string{
		`digraph "test"`,
		"n0 -> n1",              // data edge
		"style=dashed",          // memory edge
		"style=dotted",          // pred/ctrl edges
		"fillcolor=\"#ffd8a8\"", // critical path highlight
		"@(0,0)",                // placement label
		"L=",                    // completion annotation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestDotEscaping(t *testing.T) {
	if escapeDot(`a"b\c`) != `a\"b\\c` {
		t.Errorf("escape = %q", escapeDot(`a"b\c`))
	}
}
