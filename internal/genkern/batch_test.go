package genkern

import (
	"reflect"
	"sync"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/mem"
	"mesa/internal/noc"
	"mesa/internal/sim"
)

// TestBatchVsScalarDifferential drives 200 seeded random programs through
// the controller twice — scalar engines, then both backend shapes as lanes
// of one shared accel.BatchRunner — and requires bit-identical final
// architectural state and identical reports (iterations, cycles, counters)
// between the two engine mechanisms.
func TestBatchVsScalarDifferential(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 30
	}
	configs := []EngineConfig{
		{Name: "greedy/spatial", Strategy: "greedy", Spatial: true},
		{Name: "greedy/timeshared", Strategy: "greedy", Spatial: false},
	}

	type outcome struct {
		machine *sim.Machine
		report  *core.Report
		err     error
	}
	run := func(prog *generatedProg, opts core.Options) outcome {
		ctl := core.NewController(opts)
		report, m, err := ctl.Run(prog.prog, prog.mkMem(), mem.MustHierarchy(mem.DefaultHierarchy()), diffMaxSteps)
		return outcome{machine: m, report: report, err: err}
	}

	accelerated := 0
	for seed := int64(0); seed < seeds; seed++ {
		g, err := Generate(seed, DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gp := &generatedProg{prog: g.Prog, mkMem: g.NewMemory}

		scalar := make([]outcome, len(configs))
		for i, ec := range configs {
			opts, err := ec.options()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			scalar[i] = run(gp, opts)
		}

		batched := make([]outcome, len(configs))
		r := accel.NewBatchRunner(len(configs))
		var wg sync.WaitGroup
		for i, ec := range configs {
			opts, err := ec.options()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			wg.Add(1)
			go func(i int, opts core.Options) {
				defer wg.Done()
				h := r.Lane(i)
				defer h.Finish()
				opts.EngineFactory = func(cfg *accel.Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (core.LoopEngine, error) {
					eng, err := h.Engine(cfg, g, pos, loopBranch, m, hier)
					if err != nil {
						return nil, err
					}
					return eng, nil
				}
				batched[i] = run(gp, opts)
			}(i, opts)
		}
		wg.Wait()

		for i, ec := range configs {
			s, b := scalar[i], batched[i]
			if (s.err != nil) != (b.err != nil) {
				t.Fatalf("seed %d %s: scalar err %v, batched err %v\nprogram:\n%s",
					seed, ec.Name, s.err, b.err, g.Dump())
			}
			if s.err != nil {
				continue
			}
			if detail := diffState(s.machine, b.machine); detail != "" {
				t.Fatalf("seed %d %s: batched state diverged from scalar: %s\nprogram:\n%s",
					seed, ec.Name, detail, g.Dump())
			}
			if s.report.AccelIterations != b.report.AccelIterations ||
				s.report.CPURetired != b.report.CPURetired ||
				len(s.report.Regions) != len(b.report.Regions) {
				t.Fatalf("seed %d %s: report shape differs (iters %d/%d, retired %d/%d, regions %d/%d)\nprogram:\n%s",
					seed, ec.Name, s.report.AccelIterations, b.report.AccelIterations,
					s.report.CPURetired, b.report.CPURetired,
					len(s.report.Regions), len(b.report.Regions), g.Dump())
			}
			for j := range s.report.Regions {
				p, q := s.report.Regions[j], b.report.Regions[j]
				if p.TotalCycles() != q.TotalCycles() || p.FinalII != q.FinalII || p.Bound != q.Bound {
					t.Fatalf("seed %d %s region %d: batched %.3f cyc II %.3f (%s), scalar %.3f cyc II %.3f (%s)\nprogram:\n%s",
						seed, ec.Name, j, q.TotalCycles(), q.FinalII, q.Bound,
						p.TotalCycles(), p.FinalII, p.Bound, g.Dump())
				}
				if !reflect.DeepEqual(p.Counters, q.Counters) {
					t.Fatalf("seed %d %s region %d: counters differ\nprogram:\n%s", seed, ec.Name, j, g.Dump())
				}
			}
			if s.report.AccelIterations > 0 && i == 0 {
				accelerated++
			}
		}
	}
	if accelerated < int(seeds)/2 {
		t.Errorf("only %d/%d seeds accelerated; differential degenerated to CPU-only runs", accelerated, seeds)
	}
}

// generatedProg bundles a program with its memory factory for the runs.
type generatedProg struct {
	prog  *isa.Program
	mkMem func() *mem.Memory
}
