package genkern

import (
	"fmt"
	"sort"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/isa"
	"mesa/internal/mapping"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// EngineConfig names one MESA controller configuration to check against the
// functional reference: a mapping strategy crossed with either the spatial
// M-128 backend or a small time-shared backend.
type EngineConfig struct {
	Name     string // display name, e.g. "greedy/spatial"
	Strategy string // registered mapping strategy name
	Spatial  bool   // true: M-128 spatial; false: 4×4 time-shared
}

// AllEngineConfigs enumerates every registered mapping strategy crossed with
// both backend shapes, in deterministic (sorted) order. New strategies
// registered with mapping.Register are picked up automatically — the fuzzer
// covers them without being told.
func AllEngineConfigs() []EngineConfig {
	var out []EngineConfig
	for _, name := range mapping.Names() {
		out = append(out,
			EngineConfig{Name: name + "/spatial", Strategy: name, Spatial: true},
			EngineConfig{Name: name + "/timeshared", Strategy: name, Spatial: false},
		)
	}
	return out
}

// options builds the controller options for this engine. The time-shared
// backend mirrors the shape used by the core time-sharing tests: a 4×4 grid
// with four virtual contexts, so loop bodies that fit 16 PEs spatially are
// forced through the time-multiplexed path.
func (ec EngineConfig) options() (core.Options, error) {
	strat, err := mapping.ByName(ec.Strategy)
	if err != nil {
		return core.Options{}, err
	}
	be := accel.M128()
	if !ec.Spatial {
		be.Name = "M-16-shared"
		be.Rows, be.Cols = 4, 4
		be.FPSlice = 4
		be.MemPorts = 2
	}
	opts := core.DefaultOptions(be)
	opts.Mapper = strat
	if !ec.Spatial {
		opts.MapperOpts.TimeShare = 4
	}
	// Small batch so even short fuzz loops leave the optimizing phases.
	opts.OptimizeBatch = 8
	return opts, nil
}

// MismatchError is a differential divergence: one engine's final
// architectural state differs from the functional reference. It carries the
// reproduction context the report and the minimizer need.
type MismatchError struct {
	Engine string // engine name (or "cpu" for the timing model)
	Detail string // which state diverged, with values
	Prog   *isa.Program
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("genkern: engine %s diverged from reference: %s", e.Engine, e.Detail)
}

// CheckReport summarizes a clean differential run.
type CheckReport struct {
	Engines     []string        // engine names checked, in order
	Accelerated map[string]bool // engine name -> controller accelerated ≥1 region
}

// Check runs the generated program through the functional interpreter (the
// oracle), the CPU timing model, and the MESA controller under every
// registered strategy and both backends, asserting bit-identical final
// memory and architectural registers everywhere. A nil error means all
// engines agreed.
func Check(g *Generated, maxSteps uint64) (*CheckReport, error) {
	return CheckProgram(g.Prog, g.NewMemory, AllEngineConfigs(), maxSteps)
}

// CheckProgram is Check over an explicit program, memory factory, and engine
// subset — the entry point the minimizer and the mesabench fuzz subcommand
// use. mkMem must return a fresh identical image on every call.
func CheckProgram(prog *isa.Program, mkMem func() *mem.Memory, engines []EngineConfig, maxSteps uint64) (*CheckReport, error) {
	// Functional reference.
	ref := sim.New(prog, mkMem())
	if _, err := ref.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("genkern: reference interpreter: %w", err)
	}

	rep := &CheckReport{Accelerated: make(map[string]bool)}

	// CPU timing model: drives the same functional machine through the
	// out-of-order timing core; final state must match the plain interpreter.
	cpuMachine := sim.New(prog, mkMem())
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	if _, err := cpu.TimeMachine(cpu.DefaultBOOM(), cpuMachine, hier, maxSteps); err != nil {
		return nil, fmt.Errorf("genkern: cpu timing model: %w", err)
	}
	rep.Engines = append(rep.Engines, "cpu")
	if detail := diffState(ref, cpuMachine); detail != "" {
		return nil, &MismatchError{Engine: "cpu", Detail: detail, Prog: prog}
	}

	// MESA controller under every engine configuration.
	for _, ec := range engines {
		opts, err := ec.options()
		if err != nil {
			return nil, fmt.Errorf("genkern: engine %s: %w", ec.Name, err)
		}
		ctl := core.NewController(opts)
		report, m, err := ctl.Run(prog, mkMem(), mem.MustHierarchy(mem.DefaultHierarchy()), maxSteps)
		if err != nil {
			return nil, fmt.Errorf("genkern: engine %s: %w", ec.Name, err)
		}
		rep.Engines = append(rep.Engines, ec.Name)
		rep.Accelerated[ec.Name] = report.AccelIterations > 0
		if detail := diffState(ref, m); detail != "" {
			return nil, &MismatchError{Engine: ec.Name, Detail: detail, Prog: prog}
		}
	}
	return rep, nil
}

// diffState compares final architectural state (all 64 registers and the
// full memory image) and renders the divergence, or "" when identical.
func diffState(ref, got *sim.Machine) string {
	var parts []string
	for r := 0; r < isa.NumRegs; r++ {
		if ref.Regs[r] != got.Regs[r] {
			parts = append(parts, fmt.Sprintf("%s: %#08x want %#08x",
				isa.Reg(r), got.Regs[r], ref.Regs[r]))
			if len(parts) >= 8 {
				break
			}
		}
	}
	if diff := ref.Mem.Diff(got.Mem, 4); len(diff) > 0 {
		for _, addr := range diff {
			parts = append(parts, fmt.Sprintf("mem[%#x]: %#08x want %#08x",
				addr&^3, got.Mem.LoadWord(addr&^3), ref.Mem.LoadWord(addr&^3)))
		}
	}
	return strings.Join(parts, "; ")
}

// SortedEngineNames returns the engine names of a report in sorted order,
// for deterministic summaries.
func (r *CheckReport) SortedEngineNames() []string {
	names := append([]string(nil), r.Engines...)
	sort.Strings(names)
	return names
}
