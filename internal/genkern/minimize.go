package genkern

import (
	"mesa/internal/isa"
)

// Minimize shrinks a failing program with delta debugging (ddmin over the
// instruction list), re-fixing branch and jump offsets as instructions drop
// out. fails must report whether a candidate still exhibits the failure; it
// is called at most maxChecks times (0 means a generous default). Candidates
// whose control flow would dangle (a branch whose target was removed) or
// that no longer encode are never passed to fails.
//
// The result always satisfies fails; if nothing can be removed the original
// program is returned unchanged.
func Minimize(prog *isa.Program, fails func(*isa.Program) bool, maxChecks int) *isa.Program {
	if maxChecks <= 0 {
		maxChecks = 2000
	}
	checks := 0
	try := func(keep []int) (*isa.Program, bool) {
		if checks >= maxChecks {
			return nil, false
		}
		cand, ok := rebuild(prog, keep)
		if !ok {
			return nil, false
		}
		checks++
		return cand, fails(cand)
	}

	keep := make([]int, len(prog.Insts))
	for i := range keep {
		keep[i] = i
	}
	best := prog

	n := 2
	for len(keep) >= 2 && n <= len(keep) {
		chunk := (len(keep) + n - 1) / n
		reduced := false
		for start := 0; start < len(keep); start += chunk {
			end := start + chunk
			if end > len(keep) {
				end = len(keep)
			}
			// Complement: drop keep[start:end].
			comp := make([]int, 0, len(keep)-(end-start))
			comp = append(comp, keep[:start]...)
			comp = append(comp, keep[end:]...)
			if cand, bad := try(comp); bad {
				keep = comp
				best = cand
				n = max2(n-1, 2)
				reduced = true
				break
			}
		}
		if checks >= maxChecks {
			break
		}
		if !reduced {
			if n == len(keep) {
				break
			}
			n = min2(n*2, len(keep))
		}
	}
	return best
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rebuild constructs the subset program keeping the instructions at the
// given (sorted) original indices. Branch/JAL immediates are re-derived from
// the retained targets; the candidate is rejected if any control transfer
// targets a removed instruction or falls outside the program, or if any
// instruction no longer encodes.
func rebuild(orig *isa.Program, keep []int) (*isa.Program, bool) {
	newIdx := make(map[int]int, len(keep))
	for ni, oi := range keep {
		newIdx[oi] = ni
	}
	insts := make([]isa.Inst, len(keep))
	for ni, oi := range keep {
		in := orig.Insts[oi]
		if in.IsBranch() || in.Op == isa.OpJAL {
			targetOld := oi + int(in.Imm/4)
			// A branch may target one past the last instruction only if that
			// address stays in bounds of the new program; otherwise require a
			// retained target.
			tn, ok := newIdx[targetOld]
			if !ok {
				if targetOld == len(orig.Insts) {
					tn = len(keep)
				} else {
					return nil, false
				}
			}
			in.Imm = int32(4 * (tn - ni))
		}
		in.Addr = orig.Base + uint32(4*ni)
		insts[ni] = in
		if _, err := isa.Encode(in); err != nil {
			return nil, false
		}
	}
	return &isa.Program{Base: orig.Base, Insts: insts}, true
}
