package genkern

import (
	"testing"

	"mesa/internal/mapping"
)

const diffMaxSteps = 2_000_000

// TestEngineConfigsCoverRegistry is the registry-exhaustiveness gate for
// the differential harness, two-directional: every registered mapping
// strategy must appear with both backend shapes (a strategy registered
// without fuzz coverage fails), and no config may name an unregistered
// strategy.
func TestEngineConfigsCoverRegistry(t *testing.T) {
	registered := map[string]bool{}
	for _, name := range mapping.Names() {
		registered[name] = true
	}
	spatial := map[string]bool{}
	shared := map[string]bool{}
	for _, ec := range AllEngineConfigs() {
		if !registered[ec.Strategy] {
			t.Errorf("engine config %q names unregistered strategy %q", ec.Name, ec.Strategy)
		}
		set := shared
		if ec.Spatial {
			set = spatial
		}
		if set[ec.Strategy] {
			t.Errorf("duplicate engine config %q", ec.Name)
		}
		set[ec.Strategy] = true
	}
	for name := range registered {
		if !spatial[name] {
			t.Errorf("strategy %q has no spatial engine config", name)
		}
		if !shared[name] {
			t.Errorf("strategy %q has no time-shared engine config", name)
		}
	}
}

// TestDifferentialAllEngines is the promoted differential test: seeded
// programs through the interpreter, the CPU timing model, and the controller
// under every registered strategy on both backends, all states bit-identical.
func TestDifferentialAllEngines(t *testing.T) {
	engines := AllEngineConfigs()
	if len(engines) < 4 {
		t.Fatalf("expected ≥2 strategies × 2 backends, got %d engine configs", len(engines))
	}
	accelerated := 0
	const seeds = 40
	for seed := int64(0); seed < seeds; seed++ {
		g, err := Generate(seed, DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := Check(g, diffMaxSteps)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, g.Dump())
		}
		anyAccel := false
		for _, ok := range rep.Accelerated {
			anyAccel = anyAccel || ok
		}
		if anyAccel {
			accelerated++
		}
	}
	// The default mix must keep the detector acceptance rate high, or the
	// differential test silently degenerates to interpreter-vs-interpreter.
	if accelerated < seeds/2 {
		t.Errorf("only %d/%d seeds accelerated on any engine; generator is out of tune with the detector", accelerated, seeds)
	}
}

// TestFPSpecialsEndToEnd drives the FP-specials mix preset through every
// engine: NaN payloads, signed zeros, infinities, and denormals flow from
// memory through FMIN/FMAX/FMA hardware on every backend. Before the RV32F
// semantics fixes in internal/alu these seeds diverged between a
// fused-capable engine and the spec; now all engines must agree bit-exactly.
func TestFPSpecialsEndToEnd(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := Generate(seed, FPSpecialMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := Check(g, diffMaxSteps); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, g.Dump())
		}
	}
}

// FuzzDifferential is the open-ended entry point: arbitrary (seed, mix
// selector) pairs become programs checked across every engine. The committed
// corpus pins seeds whose generated bodies exercise the historically buggy
// FMIN/FMAX/FMA paths end-to-end.
//
// Run open-ended with:
//
//	go test ./internal/genkern -run '^$' -fuzz '^FuzzDifferential$'
func FuzzDifferential(f *testing.F) {
	f.Add(int64(0), false)
	f.Add(int64(11), true)
	f.Add(int64(17), true)
	f.Add(int64(23), false)
	f.Fuzz(func(t *testing.T, seed int64, specials bool) {
		mix := DefaultMix()
		if specials {
			mix = FPSpecialMix()
		}
		// Keep fuzz iterations bounded: short loops, small bodies.
		mix.MaxIters = 16
		mix.MaxBody = 16
		g, err := Generate(seed, mix)
		if err != nil {
			t.Fatalf("Generate(%d): %v", seed, err)
		}
		if _, err := Check(g, diffMaxSteps); err != nil {
			t.Errorf("%v\nprogram:\n%s", err, g.Dump())
		}
	})
}
