package genkern

import (
	"testing"

	"mesa/internal/isa"
)

// TestGenerateDeterministic: same (seed, mix) → byte-identical program and
// memory image; different seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, err := Generate(seed, DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, DefaultMix())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(a.Prog.Insts) != len(b.Prog.Insts) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a.Prog.Insts), len(b.Prog.Insts))
		}
		for i := range a.Prog.Insts {
			if a.Prog.Insts[i] != b.Prog.Insts[i] {
				t.Fatalf("seed %d inst %d: %v vs %v", seed, i, a.Prog.Insts[i], b.Prog.Insts[i])
			}
		}
		if !a.NewMemory().Equal(b.NewMemory()) {
			t.Fatalf("seed %d: memory images differ", seed)
		}
	}
	a, _ := Generate(1, DefaultMix())
	b, _ := Generate(2, DefaultMix())
	if len(a.Prog.Insts) == len(b.Prog.Insts) {
		same := true
		for i := range a.Prog.Insts {
			if a.Prog.Insts[i] != b.Prog.Insts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 generated identical programs")
		}
	}
}

// TestGeneratedProgramsEncode: every generated instruction round-trips
// through the machine encoding as a fixed point — the Encode∘Decode
// canonicalization property checked over real generator output rather than
// arbitrary words (complements isa.FuzzDecodeEncode).
func TestGeneratedProgramsEncode(t *testing.T) {
	mixes := []Mix{DefaultMix(), FPSpecialMix()}
	for seed := int64(0); seed < 50; seed++ {
		for _, m := range mixes {
			g, err := Generate(seed, m)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for i, in := range g.Prog.Insts {
				w, err := isa.Encode(in)
				if err != nil {
					t.Fatalf("seed %d inst %d (%v): %v", seed, i, in, err)
				}
				dec, err := isa.Decode(w)
				if err != nil {
					t.Fatalf("seed %d inst %d: %#08x does not decode: %v", seed, i, w, err)
				}
				w2, err := isa.Encode(dec)
				if err != nil {
					t.Fatalf("seed %d inst %d: re-encode: %v", seed, i, err)
				}
				if w2 != w {
					t.Fatalf("seed %d inst %d (%v): Encode∘Decode not a fixed point: %#08x -> %#08x",
						seed, i, in, w, w2)
				}
			}
		}
	}
}

// TestMixWeights: a zero weight really disables the category, and the
// specials mix plants special bit patterns in the FP live-in slots.
func TestMixWeights(t *testing.T) {
	m := DefaultMix()
	m.FPArith, m.FMA, m.Memory = 0, 0, 0
	for seed := int64(0); seed < 10; seed++ {
		g, err := Generate(seed, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		loopAddr, ok := g.Prog.Symbols["loop"]
		if !ok {
			t.Fatalf("seed %d: no loop symbol", seed)
		}
		for _, in := range g.Prog.Insts {
			if in.Addr < loopAddr { // skip prelude (live-in LIs and FLWs)
				continue
			}
			switch in.Op {
			case isa.OpFADDS, isa.OpFSUBS, isa.OpFMULS, isa.OpFDIVS, isa.OpFMINS,
				isa.OpFMAXS, isa.OpFSQRTS, isa.OpFMADDS, isa.OpFMSUBS,
				isa.OpFNMADDS, isa.OpFNMSUBS:
				t.Fatalf("seed %d: FP op %v with zero fp/fma weights", seed, in.Op)
			case isa.OpLW, isa.OpFLW:
				t.Fatalf("seed %d: body load %v with zero mem weight", seed, in.Op)
			}
		}
	}

	g, err := Generate(7, FPSpecialMix())
	if err != nil {
		t.Fatal(err)
	}
	mem := g.NewMemory()
	specials := 0
	for i := 0; i < len(genFPRegs); i++ {
		w := mem.LoadWord(dataBase + uint32(4*i))
		for _, s := range fpSpecialValues {
			if w == s {
				specials++
				break
			}
		}
	}
	if specials != len(genFPRegs) {
		t.Errorf("specials mix planted %d/%d special FP live-ins", specials, len(genFPRegs))
	}
}

func TestParseMix(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want func(Mix) bool
	}{
		{"", true, func(m Mix) bool { return m == DefaultMix() }},
		{"default", true, func(m Mix) bool { return m == DefaultMix() }},
		{"specials", true, func(m Mix) bool { return m.FPSpecials && m.IntSpecials }},
		{"fma=5,branch=0", true, func(m Mix) bool { return m.FMA == 5 && m.Branch == 0 }},
		{"specials,fp=9", true, func(m Mix) bool { return m.FPSpecials && m.FPArith == 9 }},
		{"body=4:30,iters=2:5", true, func(m Mix) bool {
			return m.MinBody == 4 && m.MaxBody == 30 && m.MinIters == 2 && m.MaxIters == 5
		}},
		{"fpspecials", true, func(m Mix) bool { return m.FPSpecials && !m.IntSpecials }},
		{"fpspecials=false", true, func(m Mix) bool { return !m.FPSpecials }},
		{"bogus=1", false, nil},
		{"int=-1", false, nil},
		{"body=9:2", false, nil},
		{"fp=default", false, nil},
		{"int=0,muldiv=0,mem=0,fp=0,fma=0,branch=0", false, nil},
		{"fma=1,specials", false, nil}, // preset must come first
	}
	for _, c := range cases {
		m, err := ParseMix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseMix(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !c.want(m) {
			t.Errorf("ParseMix(%q) = %+v fails predicate", c.in, m)
		}
	}
	// String() round-trips through ParseMix.
	orig := FPSpecialMix()
	back, err := ParseMix(orig.String())
	if err != nil {
		t.Fatalf("ParseMix(String()): %v", err)
	}
	if back != orig {
		t.Errorf("String round trip: %+v != %+v", back, orig)
	}
}

// TestMinimize: ddmin shrinks a program to the failure-relevant core. The
// synthetic predicate fails whenever a marker instruction survives; the
// minimizer must strip everything else (modulo dangling-branch validity).
func TestMinimize(t *testing.T) {
	g, err := Generate(3, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	marker := func(in isa.Inst) bool { return in.Op == isa.OpMULHU }
	// Plant a marker if this seed has none.
	prog := g.Prog
	hasMarker := false
	for _, in := range prog.Insts {
		if marker(in) {
			hasMarker = true
			break
		}
	}
	if !hasMarker {
		insts := append([]isa.Inst(nil), prog.Insts...)
		mid := len(insts) / 2
		ni := isa.Inst{Op: isa.OpMULHU, Rd: isa.X8, Rs1: isa.X9, Rs2: isa.X8}
		insts = append(insts[:mid], append([]isa.Inst{ni}, insts[mid:]...)...)
		// Re-fix branch targets crossing the insertion point.
		for i := range insts {
			in := &insts[i]
			in.Addr = prog.Base + uint32(4*i)
			if in.IsBranch() || in.Op == isa.OpJAL {
				oi := i
				if i > mid {
					oi = i - 1
				}
				target := oi + int(in.Imm/4)
				if target >= mid {
					target++
				}
				in.Imm = int32(4 * (target - i))
			}
		}
		prog = &isa.Program{Base: prog.Base, Insts: insts}
	}

	fails := func(p *isa.Program) bool {
		for _, in := range p.Insts {
			if marker(in) {
				return true
			}
		}
		return false
	}
	small := Minimize(prog, fails, 0)
	if !fails(small) {
		t.Fatal("minimized program no longer fails")
	}
	if len(small.Insts) >= len(prog.Insts) {
		t.Fatalf("minimizer removed nothing: %d -> %d insts", len(prog.Insts), len(small.Insts))
	}
	if len(small.Insts) > 3 {
		t.Errorf("expected near-singleton result, got %d instructions:\n%s",
			len(small.Insts), DumpProgram(small))
	}
	// The result must still be encodable with consistent addresses.
	for i, in := range small.Insts {
		if in.Addr != small.Base+uint32(4*i) {
			t.Errorf("inst %d: addr %#x inconsistent", i, in.Addr)
		}
		if _, err := isa.Encode(in); err != nil {
			t.Errorf("inst %d does not encode: %v", i, err)
		}
	}
}
