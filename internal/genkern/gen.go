// Package genkern generates seeded, mix-controlled RV32IMF loop-body
// programs and differentially checks them across every execution engine in
// the reproduction: the functional interpreter (the oracle), the CPU timing
// model, and the MESA controller under every registered mapping strategy on
// both spatial and time-shared backends.
//
// It is the repository's answer to the thin-suite problem: the 17 built-in
// kernels exercise the shapes their authors thought of, while genkern turns
// the suite into an unbounded one. The package is surfaced three ways — the
// Go native fuzz targets in this package and in internal/alu and
// internal/isa, the promoted differential test in internal/core, and the
// `mesabench fuzz` subcommand.
package genkern

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

// ScratchBase is the base of the 512-word scratch array every generated
// program loads from and stores to (the same region the built-in kernels use
// for ArrA, so detector address heuristics see familiar traffic).
const ScratchBase uint32 = 0x0010_0000

// scratchWords is the size of the initialized scratch region.
const scratchWords = 512

// dataBase is where the data pointer (A0) points: body loads/stores address
// A0+[0,128), and the FP live-ins are loaded from the first slots.
const dataBase = ScratchBase + 64

// Mix controls the instruction mix of generated loop bodies. Weights are
// relative: a category with weight 2 is emitted twice as often as one with
// weight 1. A zero weight disables the category.
type Mix struct {
	IntArith int // integer ALU: add/sub/logic/shift/compare, reg-reg and imm
	MulDiv   int // RV32M: mul/mulh*/div/divu/rem/remu
	Memory   int // aliasing scratch loads/stores, both int and FP
	FPArith  int // RV32F: fadd/fsub/fmul/fdiv/fmin/fmax/fsqrt
	FMA      int // fused multiply-add family
	Branch   int // nested predicated forward branches

	// Body length range (instructions before predication labels), and the
	// loop trip-count range.
	MinBody, MaxBody   int
	MinIters, MaxIters int

	// FPSpecials seeds the FP live-ins and scratch memory with special
	// values: NaN payloads, ±0, ±Inf, and denormals. IntSpecials seeds the
	// integer live-ins with MinInt32/-1/0/1, the div/rem corner operands.
	FPSpecials  bool
	IntSpecials bool
}

// DefaultMix mirrors the historical random differential test in
// internal/core: compute-leaning with regular memory traffic and occasional
// predication, tuned so most generated loops pass the detector's C1–C3 gates.
func DefaultMix() Mix {
	return Mix{
		IntArith: 3, MulDiv: 1, Memory: 2, FPArith: 2, FMA: 1, Branch: 1,
		MinBody: 4, MaxBody: 24, MinIters: 8, MaxIters: 63,
	}
}

// FPSpecialMix forces floating-point corner cases: FP-heavy bodies whose
// live-ins include NaN payloads, signed zeros, infinities, and denormals,
// with integer live-ins at the div/rem extremes.
func FPSpecialMix() Mix {
	m := DefaultMix()
	m.FPArith, m.FMA, m.MulDiv = 4, 3, 2
	m.FPSpecials, m.IntSpecials = true, true
	return m
}

// presets are the named mixes ParseMix accepts before key=value overrides.
var presets = map[string]Mix{
	"default":  DefaultMix(),
	"specials": FPSpecialMix(),
}

// ParseMix parses a mix description: an optional preset name ("default",
// "specials") followed by comma-separated key=value overrides, e.g.
// "specials,fma=5,branch=0" or "int=3,mem=2,body=4:30". Keys: int, muldiv,
// mem, fp, fma, branch (weights); body=min:max, iters=min:max (ranges);
// fpspecials, intspecials (booleans, bare key means true). An empty string
// is the default mix.
func ParseMix(s string) (Mix, error) {
	m := DefaultMix()
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if p, ok := presets[part]; ok {
			if i != 0 {
				return m, fmt.Errorf("genkern: preset %q must come first in mix %q", part, s)
			}
			m = p
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "int", "muldiv", "mem", "fp", "fma", "branch":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return m, fmt.Errorf("genkern: bad weight %q in mix", part)
			}
			switch key {
			case "int":
				m.IntArith = n
			case "muldiv":
				m.MulDiv = n
			case "mem":
				m.Memory = n
			case "fp":
				m.FPArith = n
			case "fma":
				m.FMA = n
			case "branch":
				m.Branch = n
			}
		case "body", "iters":
			lo, hi, ok := strings.Cut(val, ":")
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if !ok || err1 != nil || err2 != nil || a < 1 || b < a {
				return m, fmt.Errorf("genkern: bad range %q in mix (want key=min:max)", part)
			}
			if key == "body" {
				m.MinBody, m.MaxBody = a, b
			} else {
				m.MinIters, m.MaxIters = a, b
			}
		case "fpspecials", "intspecials":
			v := true
			if hasVal {
				b, err := strconv.ParseBool(val)
				if err != nil {
					return m, fmt.Errorf("genkern: bad boolean %q in mix", part)
				}
				v = b
			}
			if key == "fpspecials" {
				m.FPSpecials = v
			} else {
				m.IntSpecials = v
			}
		default:
			keys := make([]string, 0, len(presets))
			for k := range presets {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return m, fmt.Errorf("genkern: unknown mix key %q (presets: %s; keys: int, muldiv, mem, fp, fma, branch, body, iters, fpspecials, intspecials)",
				key, strings.Join(keys, ", "))
		}
	}
	if m.IntArith+m.MulDiv+m.Memory+m.FPArith+m.FMA+m.Branch <= 0 {
		return m, fmt.Errorf("genkern: mix %q has no positive weights", s)
	}
	return m, nil
}

// String renders the mix in ParseMix syntax.
func (m Mix) String() string {
	s := fmt.Sprintf("int=%d,muldiv=%d,mem=%d,fp=%d,fma=%d,branch=%d,body=%d:%d,iters=%d:%d",
		m.IntArith, m.MulDiv, m.Memory, m.FPArith, m.FMA, m.Branch,
		m.MinBody, m.MaxBody, m.MinIters, m.MaxIters)
	if m.FPSpecials {
		s += ",fpspecials"
	}
	if m.IntSpecials {
		s += ",intspecials"
	}
	return s
}

// Generated is one seeded program plus everything needed to reproduce its
// run: regenerate with Generate(Seed, Mix), rebuild its memory image with
// NewMemory.
type Generated struct {
	Seed int64
	Mix  Mix
	Prog *isa.Program
}

// Register pools: t0/t1 are the induction counter and bound, a0 the data
// pointer; the rest are free data registers.
var (
	genIntRegs = []isa.Reg{isa.X8, isa.X9, isa.X18, isa.X19, isa.X28, isa.X29, isa.X30, isa.X31}
	genFPRegs  = []isa.Reg{isa.F0, isa.F1, isa.F2, isa.F3, isa.F4}
)

// intSpecialValues are the RV32M corner operands IntSpecials seeds live-ins
// with: MinInt32 and -1 (the div/rem overflow pair), 0 (divide by zero), ±1.
var intSpecialValues = []uint32{0x80000000, 0xFFFFFFFF, 0, 1, 0x7FFFFFFF}

// fpSpecialValues are the FP bit patterns FPSpecials seeds live-ins with.
var fpSpecialValues = []uint32{
	0x7FC00000, // canonical quiet NaN
	0x7FC12345, // quiet NaN with payload
	0x7F800001, // signaling NaN
	0x00000000, // +0
	0x80000000, // -0
	0x7F800000, // +inf
	0xFF800000, // -inf
	0x00000001, // smallest positive denormal
	0x007FFFFF, // largest denormal
	0x80000001, // negative denormal
	0x3F800000, // 1.0
	0xBF800000, // -1.0
}

type genCat int

const (
	catIntArith genCat = iota
	catMulDiv
	catMemory
	catFPArith
	catFMA
	catBranch
)

// Generate builds the program for (seed, mix). The same inputs always
// produce byte-identical programs; any (seed, mix) pair is valid.
func Generate(seed int64, m Mix) (*Generated, error) {
	if m.MaxBody < m.MinBody || m.MinBody < 1 {
		return nil, fmt.Errorf("genkern: invalid body range %d:%d", m.MinBody, m.MaxBody)
	}
	if m.MaxIters < m.MinIters || m.MinIters < 1 {
		return nil, fmt.Errorf("genkern: invalid iteration range %d:%d", m.MinIters, m.MaxIters)
	}
	var cats []genCat
	add := func(c genCat, w int) {
		for i := 0; i < w; i++ {
			cats = append(cats, c)
		}
	}
	add(catIntArith, m.IntArith)
	add(catMulDiv, m.MulDiv)
	add(catMemory, m.Memory)
	add(catFPArith, m.FPArith)
	add(catFMA, m.FMA)
	add(catBranch, m.Branch)
	if len(cats) == 0 {
		return nil, fmt.Errorf("genkern: mix has no positive weights")
	}

	rng := rand.New(rand.NewSource(seed))
	pickInt := func() isa.Reg { return genIntRegs[rng.Intn(len(genIntRegs))] }
	pickFP := func() isa.Reg { return genFPRegs[rng.Intn(len(genFPRegs))] }

	b := asm.NewBuilder(0x1000)
	// Prelude: seed the integer data registers.
	for _, r := range genIntRegs {
		if m.IntSpecials && rng.Intn(3) == 0 {
			b.LI(r, int32(intSpecialValues[rng.Intn(len(intSpecialValues))]))
		} else {
			b.LI(r, int32(rng.Uint32()))
		}
	}
	b.LI(isa.RegA0, int32(dataBase))
	b.LI(isa.RegT0, 0)
	b.LI(isa.RegT1, int32(m.MinIters+rng.Intn(m.MaxIters-m.MinIters+1)))
	// FP live-ins come from scratch memory (NewMemory controls the bit
	// patterns there — FPSpecials plants NaNs/zeros/infs/denormals).
	for i, r := range genFPRegs {
		b.FLW(r, int32(4*i), isa.RegA0)
	}
	b.Label("loop")

	bodyLen := m.MinBody + rng.Intn(m.MaxBody-m.MinBody+1)
	// Forward branches open predication shadows; keep them nested (the
	// hardware handles nested predication, not overlapping shadows).
	type shadow struct{ end int }
	var open []shadow
	labelN := 0
	pending := map[int][]string{} // body index -> labels to place before it

	for i := 0; i < bodyLen; i++ {
		for _, lbl := range pending[i] {
			b.Label(lbl)
		}
		delete(pending, i)
		for len(open) > 0 && open[len(open)-1].end <= i {
			open = open[:len(open)-1]
		}

		switch cats[rng.Intn(len(cats))] {
		case catIntArith:
			switch rng.Intn(4) {
			case 0:
				ops := []func(rd, rs1, rs2 isa.Reg) *asm.Builder{
					b.ADD, b.SUB, b.XOR, b.OR, b.AND, b.SLL, b.SRL, b.SRA, b.SLT, b.SLTU,
				}
				ops[rng.Intn(len(ops))](pickInt(), pickInt(), pickInt())
			case 1:
				b.ADDI(pickInt(), pickInt(), int32(rng.Intn(2048)-1024))
			case 2:
				shifts := []func(rd, rs1 isa.Reg, sh int32) *asm.Builder{b.SLLI, b.SRLI, b.SRAI}
				shifts[rng.Intn(len(shifts))](pickInt(), pickInt(), int32(rng.Intn(31)))
			case 3:
				b.SLTI(pickInt(), pickInt(), int32(rng.Intn(2048)-1024))
			}
		case catMulDiv:
			ops := []func(rd, rs1, rs2 isa.Reg) *asm.Builder{
				b.MUL, b.MULH, b.MULHU, b.MULHSU, b.DIV, b.DIVU, b.REM, b.REMU,
			}
			ops[rng.Intn(len(ops))](pickInt(), pickInt(), pickInt())
		case catMemory:
			// Random offsets into a shared window: exercises memory
			// disambiguation and store-to-load forwarding via aliasing.
			off := int32(4 * rng.Intn(32))
			switch rng.Intn(4) {
			case 0:
				b.LW(pickInt(), off, isa.RegA0)
			case 1:
				b.SW(pickInt(), off, isa.RegA0)
			case 2:
				b.FLW(pickFP(), off, isa.RegA0)
			case 3:
				b.FSW(pickFP(), off, isa.RegA0)
			}
		case catFPArith:
			switch rng.Intn(7) {
			case 0:
				b.FADD(pickFP(), pickFP(), pickFP())
			case 1:
				b.FSUB(pickFP(), pickFP(), pickFP())
			case 2:
				b.FMUL(pickFP(), pickFP(), pickFP())
			case 3:
				b.FDIV(pickFP(), pickFP(), pickFP())
			case 4:
				b.FMIN(pickFP(), pickFP(), pickFP())
			case 5:
				b.FMAX(pickFP(), pickFP(), pickFP())
			case 6:
				b.FSQRT(pickFP(), pickFP())
			}
		case catFMA:
			ops := []func(rd, rs1, rs2, rs3 isa.Reg) *asm.Builder{
				b.FMADD, b.FMSUB, b.FNMADD, b.FNMSUB,
			}
			ops[rng.Intn(len(ops))](pickFP(), pickFP(), pickFP(), pickFP())
		case catBranch:
			maxEnd := bodyLen
			if len(open) > 0 && open[len(open)-1].end < maxEnd {
				maxEnd = open[len(open)-1].end
			}
			if maxEnd <= i+2 {
				b.NOP()
				break
			}
			end := i + 2 + rng.Intn(maxEnd-i-2)
			labelN++
			lbl := "skip" + string(rune('a'+labelN%26)) + string(rune('0'+labelN/26))
			if rng.Intn(2) == 0 {
				b.BEQ(pickInt(), pickInt(), lbl)
			} else {
				b.BLT(pickInt(), pickInt(), lbl)
			}
			pending[end] = append(pending[end], lbl)
			open = append(open, shadow{end: end})
		}
	}
	// Close any labels still pending at or past the body end. Iterate in
	// index order so label placement is deterministic.
	var ends []int
	for e := range pending {
		ends = append(ends, e)
	}
	sort.Ints(ends)
	for _, e := range ends {
		for _, lbl := range pending[e] {
			b.Label(lbl)
		}
	}

	b.ADDI(isa.RegT0, isa.RegT0, 1)
	b.BLT(isa.RegT0, isa.RegT1, "loop")
	// Publish register state through memory so memory comparison alone
	// catches most divergences (registers are also compared directly).
	b.SW(isa.X8, 0, isa.RegA0)
	b.ECALL()

	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("genkern: seed %d: %w", seed, err)
	}
	return &Generated{Seed: seed, Mix: m, Prog: prog}, nil
}

// NewMemory builds the program's initial memory image: 512 scratch words
// seeded from the program seed, with FP/int special bit patterns planted
// when the mix asks for them. Each call returns a fresh, identical image.
func (g *Generated) NewMemory() *mem.Memory {
	m := mem.NewMemory()
	rng := rand.New(rand.NewSource(g.Seed * 31))
	for i := uint32(0); i < scratchWords; i++ {
		m.StoreWord(ScratchBase+4*i, rng.Uint32())
	}
	if g.Mix.FPSpecials {
		// The FP live-in slots (read by the prelude FLWs) always hold
		// specials; more are sprinkled through the load/store window.
		for i := range genFPRegs {
			m.StoreWord(dataBase+4*uint32(i), fpSpecialValues[rng.Intn(len(fpSpecialValues))])
		}
		for i := 0; i < 24; i++ {
			m.StoreWord(dataBase+4*uint32(rng.Intn(32)), fpSpecialValues[rng.Intn(len(fpSpecialValues))])
		}
	}
	return m
}

// Dump renders the program one instruction per line, for failure reports.
func (g *Generated) Dump() string { return DumpProgram(g.Prog) }

// DumpProgram renders any program one instruction per line.
func DumpProgram(p *isa.Program) string {
	var sb strings.Builder
	for _, in := range p.Insts {
		fmt.Fprintf(&sb, "%#06x  %s\n", in.Addr, in.String())
	}
	return sb.String()
}
