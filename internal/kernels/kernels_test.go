package kernels

import (
	"testing"

	"mesa/internal/isa"
	"mesa/internal/sim"
)

const seed = 42

// TestKernelsFunctional runs every kernel on the functional simulator and
// checks the verifier passes: the kernels and their Go-side oracles agree.
func TestKernelsFunctional(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, _ := k.MustProgram()
			m := k.NewMemory(seed)
			machine := sim.New(prog, m)
			if _, err := machine.Run(5_000_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := k.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelChunksCoverFullRange verifies parallel kernels' chunked programs
// together produce the same result as the full-range program.
func TestKernelChunksCoverFullRange(t *testing.T) {
	for _, k := range All() {
		if !k.Parallel {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			const chunks = 4
			m := k.NewMemory(seed)
			for c := 0; c < chunks; c++ {
				prog, _ := k.MustChunkProgram(c, chunks)
				machine := sim.New(prog, m)
				if _, err := machine.Run(5_000_000); err != nil {
					t.Fatalf("chunk %d: %v", c, err)
				}
			}
			if err := k.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelLoopsDetectable checks each kernel's hot loop has the shape the
// detector expects: a backward branch closing the region at the loop start.
func TestKernelLoopsDetectable(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, loopStart := k.MustProgram()
			if loopStart == 0 {
				t.Fatal("no loop start")
			}
			var closing *isa.Inst
			for i := range prog.Insts {
				in := prog.Insts[i]
				if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
					closing = &prog.Insts[i]
				}
			}
			if closing == nil {
				t.Fatal("no backward branch targeting the loop start")
			}
			size := int(closing.Addr+4-loopStart) / 4
			if size < 5 {
				t.Errorf("loop body suspiciously small: %d instructions", size)
			}
			t.Logf("%s: %d-instruction loop body", k.Name, size)
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nn"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
}
