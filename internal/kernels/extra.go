package kernels

import (
	"fmt"
	"math/rand"

	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

// Gaussian is the elimination update of Rodinia's gaussian: for each column
// j of the working row, a[j] -= ratio[i] * b[j], with the ratio loaded per
// element (the multiplier column).
func Gaussian() *Kernel {
	const n = 8192
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // a (in/out)
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // pivot row b
		b.LI(isa.RegA2, int32(ArrC+4*lo)) // ratios
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FLW(isa.FPReg(2), 0, isa.RegA2)
		b.FMUL(isa.FPReg(3), isa.FPReg(2), isa.FPReg(1))
		b.FSUB(isa.FPReg(4), isa.FPReg(0), isa.FPReg(3))
		b.FSW(isa.FPReg(4), 0, isa.RegA0)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	var a []float32
	setup := func(m *mem.Memory, rng *rand.Rand) {
		a = make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float32() * 8
			m.StoreF32(ArrA+4*uint32(i), a[i])
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*8)
			m.StoreF32(ArrC+4*uint32(i), rng.Float32())
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			bv := m.LoadF32(ArrB + 4*uint32(i))
			r := m.LoadF32(ArrC + 4*uint32(i))
			want := a[i] - r*bv
			if got := m.LoadF32(ArrA + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("gaussian: a[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "gaussian", Description: "gaussian: elimination update with per-element ratio",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Hotspot3D is the 7-point stencil of Rodinia's hotspot3D: the thermal
// update reads the cell and its six neighbors across three planes.
func Hotspot3D() *Kernel {
	const w = 32       // plane width
	const plane = 1024 // w * w
	const n = 4096     // interior cells
	const cc, cn, ct = float32(0.4), float32(0.09), float32(0.06)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		base := plane + w + 1 + lo
		b.LI(isa.RegA0, int32(ArrA+4*base))   // temperature (center)
		b.LI(isa.RegA1, int32(ArrOut+4*base)) // out
		// The cross-plane neighbors sit ±4096 bytes from the center, outside
		// the 12-bit load-offset range, so they get their own base pointers.
		b.LI(isa.RegA2, int32(ArrA+4*(base-plane))) // below plane
		b.LI(isa.RegA3, int32(ArrA+4*(base+plane))) // above plane
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2)  // cc
		b.FLW(isa.FPReg(9), 4, isa.RegT2)  // cn (in-plane neighbors)
		b.FLW(isa.FPReg(10), 8, isa.RegT2) // ct (cross-plane neighbors)
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)    // c
		b.FLW(isa.FPReg(1), -4, isa.RegA0)   // w
		b.FLW(isa.FPReg(2), 4, isa.RegA0)    // e
		b.FLW(isa.FPReg(3), -4*w, isa.RegA0) // n
		b.FLW(isa.FPReg(4), 4*w, isa.RegA0)  // s
		b.FLW(isa.FPReg(5), 0, isa.RegA2)    // below
		b.FLW(isa.FPReg(6), 0, isa.RegA3)    // above
		b.FADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(2))
		b.FADD(isa.FPReg(3), isa.FPReg(3), isa.FPReg(4))
		b.FADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(3)) // in-plane sum
		b.FADD(isa.FPReg(5), isa.FPReg(5), isa.FPReg(6)) // cross-plane sum
		b.FMUL(isa.FPReg(7), isa.FPReg(0), isa.FPReg(8)) // cc*c
		b.FMADD(isa.FPReg(7), isa.FPReg(1), isa.FPReg(9), isa.FPReg(7))
		b.FMADD(isa.FPReg(7), isa.FPReg(5), isa.FPReg(10), isa.FPReg(7))
		b.FSW(isa.FPReg(7), 0, isa.RegA1)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegA3, isa.RegA3, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, cc)
		m.StoreF32(Scalars+4, cn)
		m.StoreF32(Scalars+8, ct)
		for i := 0; i < n+2*plane+2*w+2; i++ {
			m.StoreF32(ArrA+4*uint32(i), 300+rng.Float32()*50)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			idx := plane + w + 1 + i
			at := func(off int) float32 { return m.LoadF32(ArrA + 4*uint32(idx+off)) }
			inPlane := (at(-1) + at(1)) + (at(-w) + at(w))
			cross := at(-plane) + at(plane)
			want := at(0) * cc
			want = inPlane*cn + want
			want = cross*ct + want
			if got := m.LoadF32(ArrOut + 4*uint32(idx)); !f32near(got, want) {
				return fmt.Errorf("hotspot3d: out[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "hotspot3d", Description: "hotspot3D: 7-point thermal stencil across planes",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// LavaMD is the pairwise-force inner loop of Rodinia's lavaMD: the inverse-
// square interaction between a particle and a neighbor, accumulated into a
// force component.
func LavaMD() *Kernel {
	const n = 4096
	const eps = float32(0.5)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo))   // neighbor x
		b.LI(isa.RegA1, int32(ArrB+4*lo))   // neighbor y
		b.LI(isa.RegA2, int32(ArrC+4*lo))   // neighbor z
		b.LI(isa.RegA3, int32(ArrD+4*lo))   // neighbor charge
		b.LI(isa.RegA4, int32(ArrOut+4*lo)) // force out
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2)   // px
		b.FLW(isa.FPReg(9), 4, isa.RegT2)   // py
		b.FLW(isa.FPReg(10), 8, isa.RegT2)  // pz
		b.FLW(isa.FPReg(11), 12, isa.RegT2) // eps
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FLW(isa.FPReg(2), 0, isa.RegA2)
		b.FLW(isa.FPReg(3), 0, isa.RegA3)
		b.FSUB(isa.FPReg(0), isa.FPReg(0), isa.FPReg(8))
		b.FSUB(isa.FPReg(1), isa.FPReg(1), isa.FPReg(9))
		b.FSUB(isa.FPReg(2), isa.FPReg(2), isa.FPReg(10))
		b.FMUL(isa.FPReg(4), isa.FPReg(0), isa.FPReg(0))
		b.FMADD(isa.FPReg(4), isa.FPReg(1), isa.FPReg(1), isa.FPReg(4))
		b.FMADD(isa.FPReg(4), isa.FPReg(2), isa.FPReg(2), isa.FPReg(4)) // r²
		b.FADD(isa.FPReg(4), isa.FPReg(4), isa.FPReg(11))               // r² + eps
		b.FDIV(isa.FPReg(5), isa.FPReg(3), isa.FPReg(4))                // q / (r²+eps)
		b.FMUL(isa.FPReg(6), isa.FPReg(5), isa.FPReg(0))                // along dx
		b.FSW(isa.FPReg(6), 0, isa.RegA4)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegA3, isa.RegA3, 4)
		b.ADDI(isa.RegA4, isa.RegA4, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	px, py, pz := float32(1.5), float32(-0.5), float32(2.0)
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, px)
		m.StoreF32(Scalars+4, py)
		m.StoreF32(Scalars+8, pz)
		m.StoreF32(Scalars+12, eps)
		for i := 0; i < n; i++ {
			m.StoreF32(ArrA+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrC+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrD+4*uint32(i), rng.Float32())
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			dx := m.LoadF32(ArrA+4*uint32(i)) - px
			dy := m.LoadF32(ArrB+4*uint32(i)) - py
			dz := m.LoadF32(ArrC+4*uint32(i)) - pz
			q := m.LoadF32(ArrD + 4*uint32(i))
			r2 := dx * dx
			r2 = dy*dy + r2
			r2 = dz*dz + r2
			r2 = r2 + eps
			f := q / r2
			want := f * dx
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("lavamd: f[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "lavamd", Description: "lavaMD: pairwise inverse-square force",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Myocyte is the per-cell ODE step of Rodinia's myocyte: a cubic polynomial
// rate evaluated by a Horner chain and integrated with forward Euler. The
// long FP dependence chain inside each iteration makes it latency-bound.
func Myocyte() *Kernel {
	const n = 4096
	const c3, c2, c1, c0, dt = float32(0.002), float32(-0.05), float32(0.3), float32(0.1), float32(0.01)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo))   // v (in)
		b.LI(isa.RegA1, int32(ArrOut+4*lo)) // v' (out)
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		for j := 0; j < 5; j++ {
			b.FLW(isa.FPReg(8+j), int32(4*j), isa.RegT2) // c3 c2 c1 c0 dt
		}
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		// Horner: ((c3*v + c2)*v + c1)*v + c0
		b.FMADD(isa.FPReg(1), isa.FPReg(8), isa.FPReg(0), isa.FPReg(9))
		b.FMADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(0), isa.FPReg(10))
		b.FMADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(0), isa.FPReg(11))
		// v' = v + dt * rate
		b.FMADD(isa.FPReg(2), isa.FPReg(1), isa.FPReg(12), isa.FPReg(0))
		b.FSW(isa.FPReg(2), 0, isa.RegA1)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for j, c := range []float32{c3, c2, c1, c0, dt} {
			m.StoreF32(Scalars+4*uint32(j), c)
		}
		for i := 0; i < n; i++ {
			m.StoreF32(ArrA+4*uint32(i), rng.Float32()*100-50)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			v := m.LoadF32(ArrA + 4*uint32(i))
			rate := c3*v + c2
			rate = rate*v + c1
			rate = rate*v + c0
			want := rate*dt + v
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("myocyte: v'[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "myocyte", Description: "myocyte: cubic ODE step (Horner chain)",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// ParticleFilter is the likelihood-evaluation loop of Rodinia's
// particlefilter: a gather through an index array into a likelihood table,
// scaled by the particle's weight.
func ParticleFilter() *Kernel {
	const n = 4096
	const table = 256
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // observation index (int)
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // particle weight
		b.LI(isa.RegA2, ArrC)             // likelihood table
		b.LI(isa.RegA3, int32(ArrOut+4*lo))
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.Label("loop")
		b.LW(isa.X28, 0, isa.RegA0)
		b.SLLI(isa.X28, isa.X28, 2)
		b.ADD(isa.X28, isa.RegA2, isa.X28)
		b.FLW(isa.FPReg(0), 0, isa.X28) // table[idx] (gather)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FMUL(isa.FPReg(2), isa.FPReg(0), isa.FPReg(1))
		b.FSW(isa.FPReg(2), 0, isa.RegA3)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA3, isa.RegA3, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			m.StoreWord(ArrA+4*uint32(i), uint32(rng.Intn(table)))
			m.StoreF32(ArrB+4*uint32(i), rng.Float32())
		}
		for i := 0; i < table; i++ {
			m.StoreF32(ArrC+4*uint32(i), rng.Float32())
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			idx := m.LoadWord(ArrA + 4*uint32(i))
			lv := m.LoadF32(ArrC + 4*idx)
			w := m.LoadF32(ArrB + 4*uint32(i))
			want := lv * w
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("particlefilter: out[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "particlefilter", Description: "particlefilter: likelihood gather and weighting",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}
