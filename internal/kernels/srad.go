package kernels

import (
	"fmt"
	"math/rand"

	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

// SRAD is Rodinia's speckle-reducing anisotropic diffusion kernel: for each
// cell, image gradients to the four neighbors, the normalized gradient
// magnitude and laplacian, the instantaneous coefficient of variation, and
// the diffusion coefficient. The loop body is compiled 2-wide (the Rodinia
// kernel fuses the two passes and unrolls), giving ~64 instructions with 48
// FP operations: more FP work than the 64-PE configuration's 32 FP-capable
// PEs can host, so mapping structurally fails on M-64 (as in the paper's
// Figure 14, where srad does not qualify there) while fitting M-128 and
// above.
func SRAD() *Kernel {
	const w = 64   // grid width
	const n = 4096 // iterations; each handles 2 cells
	const unroll = 2
	const q0 = float32(0.25)

	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		base := w + unroll*lo
		b.LI(isa.RegA0, int32(ArrA+4*base))   // image J (center)
		b.LI(isa.RegA1, int32(ArrOut+4*base)) // diffusion coefficient out
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2)   // fs0 = 0.5
		b.FLW(isa.FPReg(9), 4, isa.RegT2)   // fs1 = 1/16
		b.FLW(isa.FPReg(10), 8, isa.RegT2)  // fs2 = 0.25
		b.FLW(isa.FPReg(11), 12, isa.RegT2) // fs3 = 1.0
		b.FLW(isa.FPReg(12), 16, isa.RegT2) // fs4 = q0*(1+q0)
		b.FLW(isa.FPReg(13), 20, isa.RegT2) // fs5 = q0
		b.Label("loop")
		for u := 0; u < unroll; u++ {
			off := int32(4 * u)
			// Gradients to the four neighbors.
			b.FLW(isa.FPReg(0), off, isa.RegA0)     // Jc
			b.FLW(isa.FPReg(1), off-4*w, isa.RegA0) // N
			b.FLW(isa.FPReg(2), off+4*w, isa.RegA0) // S
			b.FLW(isa.FPReg(3), off-4, isa.RegA0)   // W
			b.FLW(isa.FPReg(4), off+4, isa.RegA0)   // E
			b.FSUB(isa.FPReg(1), isa.FPReg(1), isa.FPReg(0))
			b.FSUB(isa.FPReg(2), isa.FPReg(2), isa.FPReg(0))
			b.FSUB(isa.FPReg(3), isa.FPReg(3), isa.FPReg(0))
			b.FSUB(isa.FPReg(4), isa.FPReg(4), isa.FPReg(0))
			// G2 = (dN²+dS²+dW²+dE²) / Jc²
			b.FMUL(isa.FPReg(5), isa.FPReg(1), isa.FPReg(1))
			b.FMADD(isa.FPReg(5), isa.FPReg(2), isa.FPReg(2), isa.FPReg(5))
			b.FMADD(isa.FPReg(5), isa.FPReg(3), isa.FPReg(3), isa.FPReg(5))
			b.FMADD(isa.FPReg(5), isa.FPReg(4), isa.FPReg(4), isa.FPReg(5))
			b.FMUL(isa.FPReg(6), isa.FPReg(0), isa.FPReg(0))
			b.FDIV(isa.FPReg(5), isa.FPReg(5), isa.FPReg(6))
			// L = (dN+dS+dW+dE) / Jc
			b.FADD(isa.FPReg(7), isa.FPReg(1), isa.FPReg(2))
			b.FADD(isa.FPReg(14), isa.FPReg(3), isa.FPReg(4))
			b.FADD(isa.FPReg(7), isa.FPReg(7), isa.FPReg(14))
			b.FDIV(isa.FPReg(7), isa.FPReg(7), isa.FPReg(0))
			// num = 0.5*G2 - (1/16)*L²
			b.FMUL(isa.FPReg(15), isa.FPReg(5), isa.FPReg(8))
			b.FMUL(isa.FPReg(16), isa.FPReg(7), isa.FPReg(7))
			b.FNMSUB(isa.FPReg(15), isa.FPReg(16), isa.FPReg(9), isa.FPReg(15))
			// den = 1 + 0.25*L ; qsqr = num / den²
			b.FMADD(isa.FPReg(17), isa.FPReg(7), isa.FPReg(10), isa.FPReg(11))
			b.FMUL(isa.FPReg(17), isa.FPReg(17), isa.FPReg(17))
			b.FDIV(isa.FPReg(18), isa.FPReg(15), isa.FPReg(17))
			// c = 1 / (1 + (qsqr - q0)/(q0*(1+q0)))
			b.FSUB(isa.FPReg(19), isa.FPReg(18), isa.FPReg(13))
			b.FDIV(isa.FPReg(19), isa.FPReg(19), isa.FPReg(12))
			b.FADD(isa.FPReg(19), isa.FPReg(19), isa.FPReg(11))
			b.FDIV(isa.FPReg(20), isa.FPReg(11), isa.FPReg(19))
			b.FSW(isa.FPReg(20), off, isa.RegA1)
		}
		b.ADDI(isa.RegA0, isa.RegA0, 4*unroll)
		b.ADDI(isa.RegA1, isa.RegA1, 4*unroll)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, 0.5)
		m.StoreF32(Scalars+4, 1.0/16.0)
		m.StoreF32(Scalars+8, 0.25)
		m.StoreF32(Scalars+12, 1.0)
		m.StoreF32(Scalars+16, q0*(1+q0))
		m.StoreF32(Scalars+20, q0)
		for i := 0; i < unroll*n+2*w+unroll; i++ {
			m.StoreF32(ArrA+4*uint32(i), 50+rng.Float32()*200)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			for u := 0; u < unroll; u++ {
				idx := w + unroll*i + u
				jc := m.LoadF32(ArrA + 4*uint32(idx))
				dn := m.LoadF32(ArrA+4*uint32(idx-w)) - jc
				ds := m.LoadF32(ArrA+4*uint32(idx+w)) - jc
				dw := m.LoadF32(ArrA+4*uint32(idx-1)) - jc
				de := m.LoadF32(ArrA+4*uint32(idx+1)) - jc
				g2 := dn * dn
				g2 = ds*ds + g2
				g2 = dw*dw + g2
				g2 = de*de + g2
				g2 = g2 / (jc * jc)
				l := (dn + ds) + (dw + de)
				l = l / jc
				num := g2 * 0.5
				l2 := l * l
				num = -(l2 * (1.0 / 16.0)) + num
				den := l*0.25 + 1.0
				den = den * den
				qsqr := num / den
				c := qsqr - q0
				c = c / (q0 * (1 + q0))
				c = c + 1.0
				c = 1.0 / c
				if got := m.LoadF32(ArrOut + 4*uint32(idx)); !f32near(got, c) {
					return fmt.Errorf("srad: c[%d] = %g, want %g", idx, got, c)
				}
			}
		}
		return nil
	}
	return &Kernel{
		Name: "srad", Description: "srad: anisotropic diffusion coefficient (2-wide body)",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}
