package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// NN is Rodinia's nearest-neighbor kernel: the Euclidean distance of every
// record to a query point (the paper's PE-scaling case study, Figure 15 —
// small enough to fit on 16 PEs).
func NN() *Kernel {
	const n = 8192
	const qlat, qlng = float32(30.5), float32(120.25)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo))   // lat
		b.LI(isa.RegA1, int32(ArrB+4*lo))   // lng
		b.LI(isa.RegA2, int32(ArrOut+4*lo)) // dist
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2) // fs0 = qlat
		b.FLW(isa.FPReg(9), 4, isa.RegT2) // fs1 = qlng
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FSUB(isa.FPReg(0), isa.FPReg(0), isa.FPReg(8))
		b.FSUB(isa.FPReg(1), isa.FPReg(1), isa.FPReg(9))
		b.FMUL(isa.FPReg(0), isa.FPReg(0), isa.FPReg(0))
		b.FMADD(isa.FPReg(2), isa.FPReg(1), isa.FPReg(1), isa.FPReg(0))
		b.FSQRT(isa.FPReg(3), isa.FPReg(2))
		b.FSW(isa.FPReg(3), 0, isa.RegA2)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, qlat)
		m.StoreF32(Scalars+4, qlng)
		for i := 0; i < n; i++ {
			m.StoreF32(ArrA+4*uint32(i), rng.Float32()*180)
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*360)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			lat := m.LoadF32(ArrA + 4*uint32(i))
			lng := m.LoadF32(ArrB + 4*uint32(i))
			dx := lat - qlat
			dy := lng - qlng
			s := dx * dx
			s = dy*dy + s
			want := sqrtf(s)
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("nn: dist[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "nn", Description: "nearest neighbor: Euclidean distance to query",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Kmeans is the Rodinia kmeans assignment kernel's distance computation: the
// squared distance of each 4-feature point to a centroid.
func Kmeans() *Kernel {
	const n = 8192
	const f = 4
	centroid := [f]float32{10.5, -3.25, 7.75, 0.5}
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+16*lo))  // features
		b.LI(isa.RegA1, int32(ArrOut+4*lo)) // distances
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		for j := 0; j < f; j++ {
			b.FLW(isa.FPReg(8+j), int32(4*j), isa.RegT2) // fs0..fs3 = centroid
		}
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FSUB(isa.FPReg(0), isa.FPReg(0), isa.FPReg(8))
		b.FMUL(isa.FPReg(4), isa.FPReg(0), isa.FPReg(0))
		for j := 1; j < f; j++ {
			b.FLW(isa.FPReg(j), int32(4*j), isa.RegA0)
			b.FSUB(isa.FPReg(j), isa.FPReg(j), isa.FPReg(8+j))
			b.FMADD(isa.FPReg(4), isa.FPReg(j), isa.FPReg(j), isa.FPReg(4))
		}
		b.FSW(isa.FPReg(4), 0, isa.RegA1)
		b.ADDI(isa.RegA0, isa.RegA0, 16)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for j := 0; j < f; j++ {
			m.StoreF32(Scalars+4*uint32(j), centroid[j])
		}
		for i := 0; i < n*f; i++ {
			m.StoreF32(ArrA+4*uint32(i), rng.Float32()*20-10)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			var acc float32
			for j := 0; j < f; j++ {
				d := m.LoadF32(ArrA+16*uint32(i)+4*uint32(j)) - centroid[j]
				if j == 0 {
					acc = d * d
				} else {
					acc = d*d + acc
				}
			}
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, acc) {
				return fmt.Errorf("kmeans: dist[%d] = %g, want %g", i, got, acc)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "kmeans", Description: "kmeans: point-to-centroid squared distance",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Hotspot is Rodinia's thermal stencil: each interior cell's new temperature
// from its four neighbors and the local power dissipation.
func Hotspot() *Kernel {
	const w = 64   // grid width
	const n = 8192 // interior cells processed
	const k1, k2 = float32(0.175), float32(0.035)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		base := w + lo                        // skip the first row
		b.LI(isa.RegA0, int32(ArrA+4*base))   // temperature (center)
		b.LI(isa.RegA1, int32(ArrB+4*base))   // power
		b.LI(isa.RegA2, int32(ArrOut+4*base)) // out
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2)  // fs0 = k1
		b.FLW(isa.FPReg(9), 4, isa.RegT2)  // fs1 = k2
		b.FLW(isa.FPReg(10), 8, isa.RegT2) // fs2 = 4.0
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)    // c
		b.FLW(isa.FPReg(1), -4*w, isa.RegA0) // north
		b.FLW(isa.FPReg(2), 4*w, isa.RegA0)  // south
		b.FLW(isa.FPReg(3), -4, isa.RegA0)   // west
		b.FLW(isa.FPReg(4), 4, isa.RegA0)    // east
		b.FADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(2))
		b.FADD(isa.FPReg(3), isa.FPReg(3), isa.FPReg(4))
		b.FADD(isa.FPReg(1), isa.FPReg(1), isa.FPReg(3))
		b.FNMSUB(isa.FPReg(5), isa.FPReg(0), isa.FPReg(10), isa.FPReg(1)) // sum - 4c
		b.FLW(isa.FPReg(6), 0, isa.RegA1)
		b.FMADD(isa.FPReg(6), isa.FPReg(6), isa.FPReg(9), isa.FPReg(0)) // c + k2*p
		b.FMADD(isa.FPReg(7), isa.FPReg(5), isa.FPReg(8), isa.FPReg(6)) // + k1*(...)
		b.FSW(isa.FPReg(7), 0, isa.RegA2)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, k1)
		m.StoreF32(Scalars+4, k2)
		m.StoreF32(Scalars+8, 4.0)
		for i := 0; i < n+2*w+2; i++ {
			m.StoreF32(ArrA+4*uint32(i), 300+rng.Float32()*40)
			m.StoreF32(ArrB+4*uint32(i), rng.Float32())
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			c := m.LoadF32(ArrA + 4*uint32(w+i))
			no := m.LoadF32(ArrA + 4*uint32(i))
			so := m.LoadF32(ArrA + 4*uint32(2*w+i))
			we := m.LoadF32(ArrA + 4*uint32(w+i-1))
			ea := m.LoadF32(ArrA + 4*uint32(w+i+1))
			p := m.LoadF32(ArrB + 4*uint32(w+i))
			sum := no + so
			sum2 := we + ea
			sum = sum + sum2
			diff := -(c * 4.0) + sum
			t6 := p*k2 + c
			want := diff*k1 + t6
			if got := m.LoadF32(ArrOut + 4*uint32(w+i)); !f32near(got, want) {
				return fmt.Errorf("hotspot: out[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "hotspot", Description: "hotspot: 5-point thermal stencil",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// CFD is the flux computation at the core of Rodinia's cfd solver
// (simplified 2D Euler flux with pressure term; division-heavy).
func CFD() *Kernel {
	const n = 4096
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo))   // density
		b.LI(isa.RegA1, int32(ArrB+4*lo))   // momentum x
		b.LI(isa.RegA2, int32(ArrC+4*lo))   // momentum y
		b.LI(isa.RegA3, int32(ArrD+4*lo))   // energy
		b.LI(isa.RegA4, int32(ArrE+4*lo))   // flux1 out
		b.LI(isa.RegA5, int32(ArrOut+4*lo)) // flux2 out
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2) // fs0 = 0.5
		b.FLW(isa.FPReg(9), 4, isa.RegT2) // fs1 = 0.4 (gamma-1)
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0) // d
		b.FLW(isa.FPReg(1), 0, isa.RegA1) // mx
		b.FLW(isa.FPReg(2), 0, isa.RegA2) // my
		b.FLW(isa.FPReg(3), 0, isa.RegA3) // e
		b.FMUL(isa.FPReg(4), isa.FPReg(1), isa.FPReg(1))
		b.FMADD(isa.FPReg(4), isa.FPReg(2), isa.FPReg(2), isa.FPReg(4))
		b.FDIV(isa.FPReg(5), isa.FPReg(4), isa.FPReg(0))
		b.FMUL(isa.FPReg(5), isa.FPReg(5), isa.FPReg(8))
		b.FSUB(isa.FPReg(6), isa.FPReg(3), isa.FPReg(5))
		b.FMUL(isa.FPReg(6), isa.FPReg(6), isa.FPReg(9))                 // pressure
		b.FDIV(isa.FPReg(7), isa.FPReg(1), isa.FPReg(0))                 // u = mx/d
		b.FMADD(isa.FPReg(11), isa.FPReg(7), isa.FPReg(1), isa.FPReg(6)) // u*mx + p
		b.FMUL(isa.FPReg(12), isa.FPReg(7), isa.FPReg(2))                // u*my
		b.FSW(isa.FPReg(11), 0, isa.RegA4)
		b.FSW(isa.FPReg(12), 0, isa.RegA5)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegA3, isa.RegA3, 4)
		b.ADDI(isa.RegA4, isa.RegA4, 4)
		b.ADDI(isa.RegA5, isa.RegA5, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, 0.5)
		m.StoreF32(Scalars+4, 0.4)
		for i := 0; i < n; i++ {
			m.StoreF32(ArrA+4*uint32(i), 1+rng.Float32()) // density > 0
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrC+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrD+4*uint32(i), 10+rng.Float32()*10)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			d := m.LoadF32(ArrA + 4*uint32(i))
			mx := m.LoadF32(ArrB + 4*uint32(i))
			my := m.LoadF32(ArrC + 4*uint32(i))
			e := m.LoadF32(ArrD + 4*uint32(i))
			ke := mx * mx
			ke = my*my + ke
			ke = ke / d
			ke = ke * 0.5
			p := (e - ke) * 0.4
			u := mx / d
			f1 := u*mx + p
			f2 := u * my
			if got := m.LoadF32(ArrE + 4*uint32(i)); !f32near(got, f1) {
				return fmt.Errorf("cfd: flux1[%d] = %g, want %g", i, got, f1)
			}
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, f2) {
				return fmt.Errorf("cfd: flux2[%d] = %g, want %g", i, got, f2)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "cfd", Description: "cfd: Euler flux with pressure (division-heavy)",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Backprop is Rodinia's backprop weight-adjustment loop:
// w[j] += (eta*delta) * x[j].
func Backprop() *Kernel {
	const n = 8192
	const etaDelta = float32(0.0625)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // weights (in/out)
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // inputs
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2) // fs0 = eta*delta
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FMADD(isa.FPReg(2), isa.FPReg(1), isa.FPReg(8), isa.FPReg(0))
		b.FSW(isa.FPReg(2), 0, isa.RegA0)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	var weights []float32
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, etaDelta)
		weights = make([]float32, n)
		for i := 0; i < n; i++ {
			weights[i] = rng.Float32()*2 - 1
			m.StoreF32(ArrA+4*uint32(i), weights[i])
			m.StoreF32(ArrB+4*uint32(i), rng.Float32())
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			x := m.LoadF32(ArrB + 4*uint32(i))
			want := x*etaDelta + weights[i]
			if got := m.LoadF32(ArrA + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("backprop: w[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "backprop", Description: "backprop: weight adjustment (fmadd stream)",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// LUD is the update loop of Rodinia's LU decomposition:
// a[j] -= pivot * row[j].
func LUD() *Kernel {
	const n = 8192
	const pivot = float32(0.375)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // a (in/out)
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // row
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2) // fs0 = pivot
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FNMSUB(isa.FPReg(2), isa.FPReg(1), isa.FPReg(8), isa.FPReg(0)) // a - p*r
		b.FSW(isa.FPReg(2), 0, isa.RegA0)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	var a []float32
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, pivot)
		a = make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float32() * 8
			m.StoreF32(ArrA+4*uint32(i), a[i])
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*8)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			r := m.LoadF32(ArrB + 4*uint32(i))
			// FNMSUB is fused: a - p·r cancels catastrophically, so an
			// unfused float32 recomputation lands outside f32near here.
			want := float32(math.FMA(-float64(r), float64(pivot), float64(a[i])))
			if got := m.LoadF32(ArrA + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("lud: a[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "lud", Description: "lud: row elimination update",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// Streamcluster is the weighted distance kernel of Rodinia's streamcluster:
// out[i] = w[i] * ((x[i]-cx)^2 + (y[i]-cy)^2).
func Streamcluster() *Kernel {
	const n = 8192
	const cx, cy = float32(1.5), float32(-2.5)
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // x
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // y
		b.LI(isa.RegA2, int32(ArrC+4*lo)) // weight
		b.LI(isa.RegA3, int32(ArrOut+4*lo))
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegT2, Scalars)
		b.FLW(isa.FPReg(8), 0, isa.RegT2)
		b.FLW(isa.FPReg(9), 4, isa.RegT2)
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FSUB(isa.FPReg(0), isa.FPReg(0), isa.FPReg(8))
		b.FMUL(isa.FPReg(2), isa.FPReg(0), isa.FPReg(0))
		b.FLW(isa.FPReg(1), 0, isa.RegA1)
		b.FSUB(isa.FPReg(1), isa.FPReg(1), isa.FPReg(9))
		b.FMADD(isa.FPReg(2), isa.FPReg(1), isa.FPReg(1), isa.FPReg(2))
		b.FLW(isa.FPReg(3), 0, isa.RegA2)
		b.FMUL(isa.FPReg(4), isa.FPReg(3), isa.FPReg(2))
		b.FSW(isa.FPReg(4), 0, isa.RegA3)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegA3, isa.RegA3, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		m.StoreF32(Scalars, cx)
		m.StoreF32(Scalars+4, cy)
		for i := 0; i < n; i++ {
			m.StoreF32(ArrA+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrB+4*uint32(i), rng.Float32()*10-5)
			m.StoreF32(ArrC+4*uint32(i), rng.Float32()+0.5)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			x := m.LoadF32(ArrA+4*uint32(i)) - cx
			y := m.LoadF32(ArrB+4*uint32(i)) - cy
			w := m.LoadF32(ArrC + 4*uint32(i))
			s := x * x
			s = y*y + s
			want := w * s
			if got := m.LoadF32(ArrOut + 4*uint32(i)); !f32near(got, want) {
				return fmt.Errorf("streamcluster: out[%d] = %g, want %g", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "streamcluster", Description: "streamcluster: weighted squared distance",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}
