// Package kernels provides the Rodinia-like workloads used throughout the
// evaluation. Each kernel is a hand-written RV32IMF loop whose instruction
// mix, memory behaviour, and parallel structure match the hot loop of the
// corresponding Rodinia benchmark (the paper cross-compiles the suite with
// -O3; we reproduce the loop bodies such compilation produces: pointer
// bumping, fused multiply-adds, predicated inner branches).
//
// Every kernel carries a data generator and an output verifier computed in
// Go with identical float32 semantics, so the functional simulator, the CPU
// timing model's machine, and the spatial accelerator can all be checked for
// bit-exact agreement.
package kernels

import (
	"fmt"
	"math/rand"
	"sync"

	"mesa/internal/isa"
	"mesa/internal/mem"
)

// Standard memory layout: arrays live at fixed, well-separated addresses.
const (
	ArrA    = 0x0010_0000
	ArrB    = 0x0020_0000
	ArrC    = 0x0030_0000
	ArrD    = 0x0040_0000
	ArrE    = 0x0050_0000
	ArrOut  = 0x0060_0000
	Scalars = 0x0008_0000
)

// CodeBase is where kernel programs are assembled.
const CodeBase = 0x0000_1000

// Kernel is one benchmark workload.
type Kernel struct {
	Name        string
	Description string

	// Parallel marks loops annotated `omp parallel for` in the Rodinia
	// source: iterations are independent, so MESA may tile/pipeline and the
	// multicore baseline may chunk.
	Parallel bool

	// N is the trip count of the hot loop.
	N int

	// build assembles the program executing iterations [lo, hi).
	build func(lo, hi int) (*isa.Program, uint32, error)

	// setup initializes input arrays.
	setup func(m *mem.Memory, rng *rand.Rand)

	// verify checks outputs for iterations [lo, hi).
	verify func(m *mem.Memory, lo, hi int) error

	// mu serializes setup and verify: several kernels carry expected outputs
	// from setup to verify in closure-captured state (e.g. backprop's weight
	// vector), and concurrent simulations of one kernel instance — batch
	// lanes, parallel sweep points — call NewMemory simultaneously. The
	// state is a pure function of the seed, so serializing keeps every
	// same-seed caller's view identical.
	mu sync.Mutex
}

// progKey identifies one memoized build: kernel plus iteration subrange
// (the subrange is what (chunk, cores) selects).
type progKey struct {
	name   string
	lo, hi int
}

// progVal is a finished build. Programs are immutable once assembled, so a
// single instance is shared by every caller, including concurrent ones.
type progVal struct {
	prog      *isa.Program
	loopStart uint32
	err       error
}

// progCache memoizes builds across Kernel instances (All constructs fresh
// Kernel values on every call, so the cache is package-level and keyed by
// name). The timing sweeps rebuild the same programs hundreds of times;
// building each (kernel, lo, hi) once is both faster and safe to share
// between worker goroutines.
var progCache sync.Map // progKey -> progVal

// buildCached assembles iterations [lo, hi), memoized.
func (k *Kernel) buildCached(lo, hi int) (*isa.Program, uint32, error) {
	key := progKey{k.Name, lo, hi}
	if v, ok := progCache.Load(key); ok {
		pv := v.(progVal)
		return pv.prog, pv.loopStart, pv.err
	}
	prog, loopStart, err := k.build(lo, hi)
	v, _ := progCache.LoadOrStore(key, progVal{prog, loopStart, err})
	pv := v.(progVal)
	return pv.prog, pv.loopStart, pv.err
}

// Program returns the full-range program and the hot loop's start address.
// The build is memoized; callers must treat the program as read-only.
func (k *Kernel) Program() (*isa.Program, uint32, error) {
	return k.buildCached(0, k.N)
}

// MustProgram is Program but panics on a build error, for the statically
// known-good suite kernels.
func (k *Kernel) MustProgram() (*isa.Program, uint32) {
	prog, loopStart, err := k.Program()
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", k.Name, err))
	}
	return prog, loopStart
}

// ChunkProgram returns the program for one static chunk of a parallel
// kernel (used by the multicore baseline). The build is memoized; callers
// must treat the program as read-only.
func (k *Kernel) ChunkProgram(chunk, chunks int) (*isa.Program, uint32, error) {
	lo := chunk * k.N / chunks
	hi := (chunk + 1) * k.N / chunks
	return k.buildCached(lo, hi)
}

// MustChunkProgram is ChunkProgram but panics on a build error.
func (k *Kernel) MustChunkProgram(chunk, chunks int) (*isa.Program, uint32) {
	prog, loopStart, err := k.ChunkProgram(chunk, chunks)
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", k.Name, err))
	}
	return prog, loopStart
}

// NewMemory returns a freshly initialized memory for the kernel.
func (k *Kernel) NewMemory(seed int64) *mem.Memory {
	m := mem.NewMemory()
	k.mu.Lock()
	defer k.mu.Unlock()
	k.setup(m, rand.New(rand.NewSource(seed)))
	return m
}

// Verify checks the kernel's output for the full range.
func (k *Kernel) Verify(m *mem.Memory) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.verify(m, 0, k.N)
}

// VerifyRange checks outputs for iterations [lo, hi).
func (k *Kernel) VerifyRange(m *mem.Memory, lo, hi int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.verify(m, lo, hi)
}

// All returns every kernel in the suite, in the order the figures report
// them.
func All() []*Kernel {
	return []*Kernel{
		NN(), Kmeans(), Hotspot(), CFD(), Backprop(), Pathfinder(),
		BFS(), SRAD(), LUD(), NW(), Streamcluster(), BTree(),
		Gaussian(), Hotspot3D(), LavaMD(), Myocyte(), ParticleFilter(),
	}
}

// ByName returns the named kernel or an error.
func ByName(name string) (*Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Names lists the kernel names in report order.
func Names() []string {
	ks := All()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// f32near checks approximate equality for verification (the engines are
// bit-identical; the tolerance only guards the Go-side recomputation).
func f32near(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	mag := a
	if mag < 0 {
		mag = -mag
	}
	if b > mag {
		mag = b
	}
	if -b > mag {
		mag = -b
	}
	return d <= 1e-5*mag+1e-30
}
