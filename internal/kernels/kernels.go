// Package kernels provides the Rodinia-like workloads used throughout the
// evaluation. Each kernel is a hand-written RV32IMF loop whose instruction
// mix, memory behaviour, and parallel structure match the hot loop of the
// corresponding Rodinia benchmark (the paper cross-compiles the suite with
// -O3; we reproduce the loop bodies such compilation produces: pointer
// bumping, fused multiply-adds, predicated inner branches).
//
// Every kernel carries a data generator and an output verifier computed in
// Go with identical float32 semantics, so the functional simulator, the CPU
// timing model's machine, and the spatial accelerator can all be checked for
// bit-exact agreement.
package kernels

import (
	"fmt"
	"math/rand"

	"mesa/internal/isa"
	"mesa/internal/mem"
)

// Standard memory layout: arrays live at fixed, well-separated addresses.
const (
	ArrA    = 0x0010_0000
	ArrB    = 0x0020_0000
	ArrC    = 0x0030_0000
	ArrD    = 0x0040_0000
	ArrE    = 0x0050_0000
	ArrOut  = 0x0060_0000
	Scalars = 0x0008_0000
)

// CodeBase is where kernel programs are assembled.
const CodeBase = 0x0000_1000

// Kernel is one benchmark workload.
type Kernel struct {
	Name        string
	Description string

	// Parallel marks loops annotated `omp parallel for` in the Rodinia
	// source: iterations are independent, so MESA may tile/pipeline and the
	// multicore baseline may chunk.
	Parallel bool

	// N is the trip count of the hot loop.
	N int

	// build assembles the program executing iterations [lo, hi).
	build func(lo, hi int) (*isa.Program, uint32)

	// setup initializes input arrays.
	setup func(m *mem.Memory, rng *rand.Rand)

	// verify checks outputs for iterations [lo, hi).
	verify func(m *mem.Memory, lo, hi int) error
}

// Program returns the full-range program and the hot loop's start address.
func (k *Kernel) Program() (*isa.Program, uint32) { return k.build(0, k.N) }

// ChunkProgram returns the program for one static chunk of a parallel
// kernel (used by the multicore baseline).
func (k *Kernel) ChunkProgram(chunk, chunks int) (*isa.Program, uint32) {
	lo := chunk * k.N / chunks
	hi := (chunk + 1) * k.N / chunks
	return k.build(lo, hi)
}

// NewMemory returns a freshly initialized memory for the kernel.
func (k *Kernel) NewMemory(seed int64) *mem.Memory {
	m := mem.NewMemory()
	k.setup(m, rand.New(rand.NewSource(seed)))
	return m
}

// Verify checks the kernel's output for the full range.
func (k *Kernel) Verify(m *mem.Memory) error { return k.verify(m, 0, k.N) }

// VerifyRange checks outputs for iterations [lo, hi).
func (k *Kernel) VerifyRange(m *mem.Memory, lo, hi int) error { return k.verify(m, lo, hi) }

// All returns every kernel in the suite, in the order the figures report
// them.
func All() []*Kernel {
	return []*Kernel{
		NN(), Kmeans(), Hotspot(), CFD(), Backprop(), Pathfinder(),
		BFS(), SRAD(), LUD(), NW(), Streamcluster(), BTree(),
		Gaussian(), Hotspot3D(), LavaMD(), Myocyte(), ParticleFilter(),
	}
}

// ByName returns the named kernel or an error.
func ByName(name string) (*Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Names lists the kernel names in report order.
func Names() []string {
	ks := All()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// f32near checks approximate equality for verification (the engines are
// bit-identical; the tolerance only guards the Go-side recomputation).
func f32near(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	mag := a
	if mag < 0 {
		mag = -mag
	}
	if b > mag {
		mag = b
	}
	if -b > mag {
		mag = -b
	}
	return d <= 1e-5*mag+1e-30
}
