package kernels

import (
	"fmt"
	"math/rand"

	"mesa/internal/asm"
	"mesa/internal/isa"
	"mesa/internal/mem"
)

// Pathfinder is Rodinia's dynamic-programming row update:
// dst[i] = src[i] + min(prev[i-1], prev[i], prev[i+1]),
// with the min computed through predicated forward branches.
func Pathfinder() *Kernel {
	const n = 8192
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*(1+lo))) // prev row (centered)
		b.LI(isa.RegA1, int32(ArrB+4*(1+lo))) // src row
		b.LI(isa.RegA2, int32(ArrOut+4*(1+lo)))
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.Label("loop")
		b.LW(isa.RegT2, -4, isa.RegA0) // prev[i-1]
		b.LW(isa.X28, 0, isa.RegA0)    // prev[i]
		b.LW(isa.X29, 4, isa.RegA0)    // prev[i+1]
		b.MV(isa.X30, isa.RegT2)
		b.BLT(isa.X30, isa.X28, "skip1") // keep if already smaller
		b.MV(isa.X30, isa.X28)
		b.Label("skip1")
		b.BLT(isa.X30, isa.X29, "skip2")
		b.MV(isa.X30, isa.X29)
		b.Label("skip2")
		b.LW(isa.X31, 0, isa.RegA1)
		b.ADD(isa.X31, isa.X31, isa.X30)
		b.SW(isa.X31, 0, isa.RegA2)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for i := 0; i < n+2; i++ {
			m.StoreWord(ArrA+4*uint32(i), uint32(rng.Intn(1000)))
			m.StoreWord(ArrB+4*uint32(i), uint32(rng.Intn(10)))
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		for i := lo; i < hi; i++ {
			p0 := int32(m.LoadWord(ArrA + 4*uint32(i)))
			p1 := int32(m.LoadWord(ArrA + 4*uint32(i+1)))
			p2 := int32(m.LoadWord(ArrA + 4*uint32(i+2)))
			mn := p0
			if p1 < mn {
				mn = p1
			}
			if p2 < mn {
				mn = p2
			}
			want := int32(m.LoadWord(ArrB+4*uint32(i+1))) + mn
			if got := int32(m.LoadWord(ArrOut + 4*uint32(i+1))); got != want {
				return fmt.Errorf("pathfinder: out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}
	return &Kernel{
		Name: "pathfinder", Description: "pathfinder: DP row update with predicated min",
		Parallel: true, N: n, build: build, setup: setup, verify: verify,
	}
}

// BFS is Rodinia's breadth-first search, edge-centric: relax each edge of
// the frontier. Iterations carry dependencies through the visited array and
// the control flow is data-dependent, so the loop is not annotated parallel
// — the memory/control-heavy benchmark that holds back Figure 11's average.
func BFS() *Kernel {
	const nodes = 1024
	const n = 8192 // edges
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // edge sources
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // edge destinations
		b.LI(isa.RegA2, ArrC)             // visited[]
		b.LI(isa.RegA3, ArrD)             // cost[]
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.RegS1, 1)
		b.Label("loop")
		b.LW(isa.RegT2, 0, isa.RegA0) // s
		b.LW(isa.X28, 0, isa.RegA1)   // d
		b.SLLI(isa.X29, isa.RegT2, 2)
		b.ADD(isa.X29, isa.RegA2, isa.X29)
		b.LW(isa.X30, 0, isa.X29) // visited[s]
		b.BEQ(isa.X30, isa.X0, "skip")
		b.SLLI(isa.X31, isa.X28, 2)
		b.ADD(isa.X31, isa.RegA2, isa.X31)
		b.LW(isa.RegA4, 0, isa.X31) // visited[d]
		b.BNE(isa.RegA4, isa.X0, "skip")
		b.SW(isa.RegS1, 0, isa.X31) // visited[d] = 1
		b.SLLI(isa.RegA5, isa.RegT2, 2)
		b.ADD(isa.RegA5, isa.RegA3, isa.RegA5)
		b.LW(isa.RegA6, 0, isa.RegA5) // cost[s]
		b.ADDI(isa.RegA6, isa.RegA6, 1)
		b.SLLI(isa.RegA7, isa.X28, 2)
		b.ADD(isa.RegA7, isa.RegA3, isa.RegA7)
		b.SW(isa.RegA6, 0, isa.RegA7) // cost[d] = cost[s]+1
		b.Label("skip")
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			m.StoreWord(ArrA+4*uint32(i), uint32(rng.Intn(nodes)))
			m.StoreWord(ArrB+4*uint32(i), uint32(rng.Intn(nodes)))
		}
		// Seed the frontier with node 0.
		m.StoreWord(ArrC, 1)
		for i := 1; i < nodes; i++ {
			m.StoreWord(ArrC+4*uint32(i), 0)
		}
		for i := 0; i < nodes; i++ {
			m.StoreWord(ArrD+4*uint32(i), 0)
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		// Recompute sequentially from pristine inputs.
		visited := make([]uint32, nodes)
		cost := make([]uint32, nodes)
		visited[0] = 1
		for i := 0; i < hi; i++ {
			s := m.LoadWord(ArrA + 4*uint32(i))
			d := m.LoadWord(ArrB + 4*uint32(i))
			if i >= lo && visited[s] == 1 && visited[d] == 0 {
				visited[d] = 1
				cost[d] = cost[s] + 1
			}
		}
		for v := 0; v < nodes; v++ {
			if got := m.LoadWord(ArrC + 4*uint32(v)); got != visited[v] {
				return fmt.Errorf("bfs: visited[%d] = %d, want %d", v, got, visited[v])
			}
			if got := m.LoadWord(ArrD + 4*uint32(v)); got != cost[v] {
				return fmt.Errorf("bfs: cost[%d] = %d, want %d", v, got, cost[v])
			}
		}
		return nil
	}
	return &Kernel{
		Name: "bfs", Description: "bfs: edge relaxation (branchy, dependent loads)",
		Parallel: false, N: n, build: build, setup: setup, verify: verify,
	}
}

// NW is Rodinia's Needleman-Wunsch inner loop along a row: a running
// maximum carried in a register makes the loop serial (true loop-carried
// dependence beyond the induction variable).
func NW() *Kernel {
	const n = 8192
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // previous row (nw at 0, n at +4)
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // match scores
		b.LI(isa.RegA2, int32(ArrOut+4*lo))
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LW(isa.X18, 0, isa.RegA0) // s2: running west value, seeded from prev row
		b.Label("loop")
		b.LW(isa.RegT2, 0, isa.RegA0)        // nw
		b.LW(isa.X28, 4, isa.RegA0)          // n
		b.LW(isa.X29, 0, isa.RegA1)          // match
		b.ADD(isa.RegT2, isa.RegT2, isa.X29) // nw + match
		b.ADDI(isa.X28, isa.X28, -1)         // n + gap
		b.ADDI(isa.X30, isa.X18, -1)         // w + gap
		b.MV(isa.X18, isa.RegT2)
		b.BGE(isa.X18, isa.X28, "k1")
		b.MV(isa.X18, isa.X28)
		b.Label("k1")
		b.BGE(isa.X18, isa.X30, "k2")
		b.MV(isa.X18, isa.X30)
		b.Label("k2")
		b.SW(isa.X18, 0, isa.RegA2)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for i := 0; i < n+2; i++ {
			m.StoreWord(ArrA+4*uint32(i), uint32(rng.Intn(40)))
			m.StoreWord(ArrB+4*uint32(i), uint32(rng.Intn(10)))
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		w := int32(m.LoadWord(ArrA + 4*uint32(lo)))
		for i := lo; i < hi; i++ {
			nw := int32(m.LoadWord(ArrA + 4*uint32(i)))
			nn := int32(m.LoadWord(ArrA + 4*uint32(i+1)))
			match := int32(m.LoadWord(ArrB + 4*uint32(i)))
			best := nw + match
			if v := nn - 1; v > best {
				best = v
			}
			if v := w - 1; v > best {
				best = v
			}
			if got := int32(m.LoadWord(ArrOut + 4*uint32(i))); got != best {
				return fmt.Errorf("nw: out[%d] = %d, want %d", i, got, best)
			}
			w = best
		}
		return nil
	}
	return &Kernel{
		Name: "nw", Description: "nw: sequence alignment row (loop-carried max)",
		Parallel: false, N: n, build: build, setup: setup, verify: verify,
	}
}

// BTree is the leaf-scan of Rodinia's b+tree lookups: key comparisons with
// data-dependent branches and a dependent (gather) load chain. Serial and
// memory-latency-bound.
func BTree() *Kernel {
	const n = 8192
	const vals = 1024
	const pivot = 500
	build := func(lo, hi int) (*isa.Program, uint32, error) {
		b := asm.NewBuilder(CodeBase)
		b.LI(isa.RegA0, int32(ArrA+4*lo)) // keys
		b.LI(isa.RegA1, int32(ArrB+4*lo)) // index array
		b.LI(isa.RegA2, ArrC)             // value table
		b.LI(isa.RegT0, int32(lo))
		b.LI(isa.RegT1, int32(hi))
		b.LI(isa.X19, pivot) // s3
		b.LI(isa.X20, 0)     // s4: count of keys < pivot
		b.LI(isa.X21, 0)     // s5: gathered sum
		b.Label("loop")
		b.LW(isa.RegT2, 0, isa.RegA0)
		b.BGE(isa.RegT2, isa.X19, "skip")
		b.ADDI(isa.X20, isa.X20, 1)
		b.Label("skip")
		b.LW(isa.X28, 0, isa.RegA1)
		b.SLLI(isa.X28, isa.X28, 2)
		b.ADD(isa.X28, isa.RegA2, isa.X28)
		b.LW(isa.X29, 0, isa.X28) // dependent gather load
		b.ADD(isa.X21, isa.X21, isa.X29)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		// Publish the reduction results for verification.
		b.LI(isa.X23, Scalars+0x100)
		b.SW(isa.X20, 0, isa.X23)
		b.SW(isa.X21, 4, isa.X23)
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			return nil, 0, err
		}
		return p, p.Symbols["loop"], nil
	}
	setup := func(m *mem.Memory, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			m.StoreWord(ArrA+4*uint32(i), uint32(rng.Intn(1000)))
			m.StoreWord(ArrB+4*uint32(i), uint32(rng.Intn(vals)))
		}
		for i := 0; i < vals; i++ {
			m.StoreWord(ArrC+4*uint32(i), uint32(rng.Intn(100)))
		}
	}
	verify := func(m *mem.Memory, lo, hi int) error {
		var count, sum uint32
		for i := lo; i < hi; i++ {
			if int32(m.LoadWord(ArrA+4*uint32(i))) < pivot {
				count++
			}
			idx := m.LoadWord(ArrB + 4*uint32(i))
			sum += m.LoadWord(ArrC + 4*idx)
		}
		if got := m.LoadWord(Scalars + 0x100); got != count {
			return fmt.Errorf("btree: count = %d, want %d", got, count)
		}
		if got := m.LoadWord(Scalars + 0x104); got != sum {
			return fmt.Errorf("btree: sum = %d, want %d", got, sum)
		}
		return nil
	}
	return &Kernel{
		Name: "btree", Description: "btree: leaf scan with gather loads",
		Parallel: false, N: n, build: build, setup: setup, verify: verify,
	}
}
