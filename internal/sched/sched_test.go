package sched_test

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/kernels"
	"mesa/internal/sched"
)

func TestResMII(t *testing.T) {
	cases := []struct {
		ops, units, memOps, memUnits, want int
	}{
		{ops: 0, units: 8, memOps: 0, memUnits: 4, want: 1},
		{ops: 8, units: 8, memOps: 0, memUnits: 4, want: 1},
		{ops: 9, units: 8, memOps: 0, memUnits: 4, want: 2},
		{ops: 4, units: 8, memOps: 4, memUnits: 4, want: 1},
		{ops: 4, units: 8, memOps: 5, memUnits: 4, want: 2},
		{ops: 16, units: 1, memOps: 0, memUnits: 1, want: 16},
		// Degenerate unit counts clamp to 1 instead of dividing by zero.
		{ops: 3, units: 0, memOps: 2, memUnits: 0, want: 3},
	}
	for _, c := range cases {
		if got := sched.ResMII(c.ops, c.units, c.memOps, c.memUnits); got != c.want {
			t.Errorf("ResMII(%d,%d,%d,%d) = %d, want %d",
				c.ops, c.units, c.memOps, c.memUnits, got, c.want)
		}
	}
}

// TestRecMIIOnKernels checks the recurrence bound against hand-audited
// kernels: nw's running max closes a one-ALU-op inter-iteration cycle, so
// its bound is at least 2; and the bound is never below the floor of 1.
func TestRecMIIOnKernels(t *testing.T) {
	lat := func(n *dfg.Node) float64 { return n.OpLat }

	g := graphFor(t, "nw")
	if rec := sched.RecMII(g, lat, true); rec < 2 {
		t.Errorf("nw RecMII = %v, want >= 2 (running-max recurrence)", rec)
	}

	for _, k := range kernels.All() {
		g := graphFor(t, k.Name)
		if rec := sched.RecMII(g, lat, true); rec < 1 {
			t.Errorf("%s: RecMII = %v, want >= 1", k.Name, rec)
		}
	}
}

// TestRecMIIPredFlag pins the includePred contract: the flag can only
// widen the live-in set, so the bound is monotone in it.
func TestRecMIIPredFlag(t *testing.T) {
	lat := func(n *dfg.Node) float64 { return n.OpLat }
	for _, k := range kernels.All() {
		g := graphFor(t, k.Name)
		without := sched.RecMII(g, lat, false)
		with := sched.RecMII(g, lat, true)
		if with < without {
			t.Errorf("%s: RecMII(includePred) = %v < %v without", k.Name, with, without)
		}
	}
}

func TestMinII(t *testing.T) {
	if got := sched.MinII(3, 2.5); got != 3 {
		t.Errorf("MinII(3, 2.5) = %d, want 3", got)
	}
	if got := sched.MinII(1, 4.0); got != 4 {
		t.Errorf("MinII(1, 4.0) = %d, want 4", got)
	}
	if got := sched.MinII(0, 0.5); got != 1 {
		t.Errorf("MinII(0, 0.5) = %d, want 1", got)
	}
}

func TestMemOps(t *testing.T) {
	g := graphFor(t, "nn")
	byHand := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Inst.IsMem() && !n.Fwd {
			byHand++
		}
	}
	if got := sched.MemOps(g); got != byHand {
		t.Errorf("MemOps = %d, hand count %d", got, byHand)
	}
}

func TestTable(t *testing.T) {
	tab := sched.NewTable(4, 3)
	if tab.II() != 3 {
		t.Fatalf("II = %d, want 3", tab.II())
	}
	if tab.Slot(7) != 1 {
		t.Errorf("Slot(7) = %d, want 1", tab.Slot(7))
	}
	if tab.Busy(2, 1) {
		t.Error("fresh table reports busy")
	}
	tab.Reserve(2, 1)
	if !tab.Busy(2, 1) {
		t.Error("Reserve did not stick")
	}
	if tab.Busy(2, 0) || tab.Busy(1, 1) {
		t.Error("Reserve leaked into a neighboring cell")
	}
	tab.Release(2, 1)
	if tab.Busy(2, 1) {
		t.Error("Release did not clear the cell")
	}
}

func TestBudget(t *testing.T) {
	b := sched.NewBudget(2, 2)
	if !b.Free(0) || !b.Free(1) {
		t.Fatal("fresh budget not free")
	}
	b.Take(0)
	b.Take(0)
	if b.Free(0) {
		t.Error("slot 0 should be exhausted at cap 2")
	}
	if !b.Free(1) {
		t.Error("slot 1 must be unaffected")
	}
	if b.Used(0) != 2 {
		t.Errorf("Used(0) = %d, want 2", b.Used(0))
	}
	b.Release(0)
	if !b.Free(0) {
		t.Error("Release did not restore capacity")
	}
	if b.Slot(5) != 1 {
		t.Errorf("Slot(5) = %d, want 1", b.Slot(5))
	}
}

func graphFor(t *testing.T, name string) *dfg.Graph {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M128()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		t.Fatal(err)
	}
	return l.Graph
}
