// Package sched holds the modulo-scheduling machinery shared by the
// OpenCGRA comparison baseline (internal/baseline/opencgra) and the
// mapping package's `modulo` strategy: the classic ResMII/RecMII lower
// bounds on the initiation interval, and the modulo reservation
// structures (a boolean table over unit × slot, and a counted per-slot
// budget for shared interfaces such as memory ports or NoC lanes).
//
// The bounds are deliberately parametric in the latency model: the
// baseline charges its own per-class latencies (loads at LoadLat),
// while the MESA mapper charges each node's OpLat. Both call the same
// functions so the two flows cannot drift apart.
package sched

import (
	"mesa/internal/dfg"
	"mesa/internal/isa"
)

// Latency gives a node's operation latency in cycles under the caller's
// cost model.
type Latency func(n *dfg.Node) float64

// IsMemOp reports whether a node occupies a memory interface when it
// issues: loads and stores that were not eliminated by store-to-load
// forwarding.
func IsMemOp(n *dfg.Node) bool {
	return n.Inst.IsMem() && !n.Fwd
}

// MemOps counts the nodes of g that occupy a memory interface.
func MemOps(g *dfg.Graph) int {
	m := 0
	for i := range g.Nodes {
		if IsMemOp(&g.Nodes[i]) {
			m++
		}
	}
	return m
}

// ResMII is the resource-constrained lower bound on the initiation
// interval: every operation needs a unit slot each iteration, and every
// memory operation additionally needs one of the shared memory
// interfaces. Both counts round up; the result is at least 1.
func ResMII(ops, units, memOps, memUnits int) int {
	if units < 1 {
		units = 1
	}
	if memUnits < 1 {
		memUnits = 1
	}
	ii := (ops + units - 1) / units
	if m := (memOps + memUnits - 1) / memUnits; m > ii {
		ii = m
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// RecMII is the recurrence-constrained lower bound on the initiation
// interval: a live-out register consumed as a live-in closes an
// inter-iteration dependence cycle through its producing node, so
// iteration i+1 cannot issue that chain before the producer of
// iteration i finishes (latency + 1 for the register turnaround).
//
// includePred additionally treats predicate live-ins (PredLiveIn) as
// consumers, matching the MESA engine's predication semantics; the
// OpenCGRA baseline predates predicated offload and charges only data
// operands.
func RecMII(g *dfg.Graph, lat Latency, includePred bool) float64 {
	liveIn := make(map[isa.Reg]bool)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for k := 0; k < 3; k++ {
			if n.Src[k] == dfg.None && n.LiveIn[k] != isa.RegNone {
				liveIn[n.LiveIn[k]] = true
			}
		}
		if includePred && n.PredLiveIn != isa.RegNone {
			liveIn[n.PredLiveIn] = true
		}
	}
	rec := 1.0
	for r, id := range g.LiveOut {
		if liveIn[r] {
			if l := lat(g.Node(id)) + 1; l > rec {
				rec = l
			}
		}
	}
	return rec
}

// MinII combines the two lower bounds into the smallest candidate
// initiation interval for the II search.
func MinII(resMII int, recMII float64) int {
	ii := resMII
	if r := int(recMII); r > ii {
		ii = r
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// Table is a modulo reservation table: units × II slots of boolean
// occupancy. Reserving (unit, t) claims the unit at every time congruent
// to t modulo II — the steady-state pipeline reuses the slot each
// iteration.
type Table struct {
	ii   int
	busy []bool
}

// NewTable returns an empty reservation table for the given unit count
// and initiation interval.
func NewTable(units, ii int) *Table {
	if ii < 1 {
		ii = 1
	}
	return &Table{ii: ii, busy: make([]bool, units*ii)}
}

// II returns the table's initiation interval.
func (t *Table) II() int { return t.ii }

// Slot maps an absolute issue time to its modulo slot.
func (t *Table) Slot(time int) int {
	return ((time % t.ii) + t.ii) % t.ii
}

// Busy reports whether the unit is reserved at the given slot.
func (t *Table) Busy(unit, slot int) bool {
	return t.busy[unit*t.ii+slot]
}

// Reserve claims the unit at the given slot.
func (t *Table) Reserve(unit, slot int) {
	t.busy[unit*t.ii+slot] = true
}

// Release frees the unit at the given slot.
func (t *Table) Release(unit, slot int) {
	t.busy[unit*t.ii+slot] = false
}

// Budget is a counted per-slot resource shared across all units — the
// array's memory interfaces, or a row's NoC lanes: at most cap claims
// per modulo slot.
type Budget struct {
	cap  int
	used []int
}

// NewBudget returns an empty budget of cap claims per slot over an II
// of the given length.
func NewBudget(ii, cap int) *Budget {
	if ii < 1 {
		ii = 1
	}
	return &Budget{cap: cap, used: make([]int, ii)}
}

// Slot maps an absolute issue time to its modulo slot.
func (b *Budget) Slot(time int) int {
	ii := len(b.used)
	return ((time % ii) + ii) % ii
}

// Free reports whether the slot has spare capacity.
func (b *Budget) Free(slot int) bool {
	return b.used[slot] < b.cap
}

// Used returns the number of claims already taken at the slot.
func (b *Budget) Used(slot int) int { return b.used[slot] }

// Take claims one unit of capacity at the slot.
func (b *Budget) Take(slot int) { b.used[slot]++ }

// Release returns one unit of capacity at the slot.
func (b *Budget) Release(slot int) { b.used[slot]-- }
