package experiments

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

func memoMetric(t *testing.T, name string) float64 {
	t.Helper()
	for _, m := range SimMemoMetrics() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not in SimMemoMetrics", name)
	return 0
}

// TestSimMemoPanicRetry is the poisoned-entry regression test: a panicking
// simulation must not leave a permanently cached failure behind. The first
// call panics (and propagates), concurrent waiters joined to the flight get
// an error naming the panic, and the NEXT call for the same key re-runs the
// function and succeeds.
func TestSimMemoPanicRetry(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	c := simMemo
	const key = "00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef0000"

	// A waiter that joins the in-flight entry must be unblocked with an
	// error, not hang. The flight panics only after the waiter has provably
	// joined (its lookup increments the hit counter before it blocks on the
	// entry's done channel).
	joined := make(chan struct{})
	var waitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-joined
		_, waitErr = c.do(key, nil, func() (any, error) {
			t.Error("waiter ran the function: single-flight broken")
			return nil, nil
		})
	}()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic did not propagate to the panicking caller")
			}
		}()
		c.do(key, nil, func() (any, error) {
			close(joined)
			for memoMetric(t, "sim_cache_hits") < 1 {
				time.Sleep(time.Millisecond)
			}
			panic("transient simulator bug")
		})
	}()
	wg.Wait()
	if waitErr == nil {
		t.Fatal("waiter joined to a panicking flight got no error")
	}

	// The poisoned entry must be gone: a retry runs the function again and
	// its success is cached normally.
	ran := 0
	v, err := c.do(key, nil, func() (any, error) { ran++; return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after panic: v=%v err=%v, want ok/nil (cached panic error not evicted)", v, err)
	}
	if ran != 1 {
		t.Fatalf("retry ran %d times, want 1", ran)
	}
	if v, err := c.do(key, nil, func() (any, error) { ran++; return "again", nil }); err != nil || v != "ok" {
		t.Fatalf("post-retry lookup: v=%v err=%v, want cached ok", v, err)
	}
	if ran != 1 {
		t.Fatal("successful retry result was not cached")
	}
}

// TestSimMemoErrorStaysCached pins the documented asymmetry: a plain error
// (a failing configuration) IS cached — failing identically on every lookup
// — while only panics are evicted.
func TestSimMemoErrorStaysCached(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	const key = "11deadbeef00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef0000"
	ran := 0
	fail := errors.New("bad config")
	for i := 0; i < 3; i++ {
		if _, err := simMemo.do(key, nil, func() (any, error) { ran++; return nil, fail }); err != fail {
			t.Fatalf("lookup %d: err=%v, want the cached error", i, err)
		}
	}
	if ran != 1 {
		t.Fatalf("failing function ran %d times, want 1 (errors are cached)", ran)
	}
}

// TestSimMemoLRUBound pins the boundedness contract: with capacity N, at
// most N completed entries stay resident, least-recently-used entries are
// evicted (and counted), and an evicted key re-misses.
func TestSimMemoLRUBound(t *testing.T) {
	ResetSimMemo()
	prevCap := SetSimMemoCapacity(2)
	defer func() {
		SetSimMemoCapacity(prevCap)
		ResetSimMemo()
	}()

	key := func(i int) string {
		return fmt.Sprintf("%064x", i)
	}
	runs := map[int]int{}
	get := func(i int) {
		t.Helper()
		v, err := simMemo.do(key(i), nil, func() (any, error) { runs[i]++; return i, nil })
		if err != nil || v != i {
			t.Fatalf("key %d: v=%v err=%v", i, v, err)
		}
	}

	get(1)
	get(2)
	get(1) // 1 is now most recent; LRU order: 1, 2
	get(3) // evicts 2
	if n := memoMetric(t, "sim_cache_entries"); n != 2 {
		t.Fatalf("entries = %v, want 2 (capacity bound not enforced)", n)
	}
	if n := memoMetric(t, "sim_cache_evictions"); n != 1 {
		t.Fatalf("evictions = %v, want 1", n)
	}
	get(1) // still resident
	if runs[1] != 1 {
		t.Fatalf("key 1 ran %d times, want 1 (should still be cached)", runs[1])
	}
	get(2) // was evicted: must re-run
	if runs[2] != 2 {
		t.Fatalf("key 2 ran %d times, want 2 (eviction must force a re-miss)", runs[2])
	}

	// Shrinking below the population evicts immediately.
	SetSimMemoCapacity(1)
	if n := memoMetric(t, "sim_cache_entries"); n != 1 {
		t.Fatalf("entries after shrink = %v, want 1", n)
	}
	// Capacity 0 = unbounded.
	SetSimMemoCapacity(0)
	for i := 10; i < 20; i++ {
		get(i)
	}
	if n := memoMetric(t, "sim_cache_entries"); n != 11 {
		t.Fatalf("unbounded entries = %v, want 11", n)
	}
}

// TestSimMemoInflightPinned: an entry whose simulation is still running is
// never evicted, even when the capacity is exceeded — evicting it would let
// a concurrent request start a second flight for the same key.
func TestSimMemoInflightPinned(t *testing.T) {
	ResetSimMemo()
	prevCap := SetSimMemoCapacity(1)
	defer func() {
		SetSimMemoCapacity(prevCap)
		ResetSimMemo()
	}()

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		simMemo.do(fmt.Sprintf("%064x", 100), nil, func() (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
	}()
	<-started
	// Overflow the capacity while the slow flight runs.
	for i := 0; i < 3; i++ {
		if _, err := simMemo.do(fmt.Sprintf("%064x", 200+i), nil, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	wg.Wait()
	// The slow entry must still resolve from cache (it was pinned, and on
	// completion it becomes the most recent entry).
	ran := false
	v, err := simMemo.do(fmt.Sprintf("%064x", 100), nil, func() (any, error) { ran = true; return "rerun", nil })
	if err != nil || v != "slow" || ran {
		t.Fatalf("pinned in-flight entry was evicted: v=%v ran=%v", v, ran)
	}
}

// TestSimMemoDiskWarm: with a disk store attached, CPU-timing results
// persist across a full in-memory reset (the process-restart story) and the
// warm-from-disk result is identical to the cold one.
func TestSimMemoDiskWarm(t *testing.T) {
	ResetSimMemo()
	dir := t.TempDir()
	if err := SetSimMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		SetSimMemoDir("")
		ResetSimMemo()
	}()

	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := TimeSingleCore(k, cpu.DefaultBOOM())
	if err != nil {
		t.Fatal(err)
	}
	if n := memoMetric(t, "sim_cache_disk_writes"); n != 1 {
		t.Fatalf("disk writes = %v, want 1", n)
	}

	ResetSimMemo() // "restart": in-memory cache gone, disk store remains
	warm, err := TimeSingleCore(k, cpu.DefaultBOOM())
	if err != nil {
		t.Fatal(err)
	}
	if n := memoMetric(t, "sim_cache_disk_hits"); n != 1 {
		t.Fatalf("disk hits = %v, want 1 (result not served from disk)", n)
	}
	if warm == cold {
		t.Fatal("warm result is the same pointer: did not round-trip through disk")
	}
	if *warm.Result != *cold.Result || warm.Cycles != cold.Cycles ||
		warm.EnergyNJ != cold.EnergyNJ || warm.Cores != cold.Cores {
		t.Fatalf("disk round-trip changed the result:\ncold: %+v / %+v\nwarm: %+v / %+v",
			cold, cold.Result, warm, warm.Result)
	}

	// Third lookup: served from memory (the disk hit was installed in the
	// LRU), no second disk hit.
	again, err := TimeSingleCore(k, cpu.DefaultBOOM())
	if err != nil {
		t.Fatal(err)
	}
	if again != warm {
		t.Fatal("second warm lookup did not hit the in-memory entry")
	}
	if n := memoMetric(t, "sim_cache_disk_hits"); n != 1 {
		t.Fatalf("disk hits = %v after memory hit, want still 1", n)
	}
}

// TestSimMemoDiskIgnoresMESAKind: controller reports carry live graph state
// no serializer round-trips, so the "mesa" kind must stay memory-only even
// with a store attached.
func TestSimMemoDiskIgnoresMESAKind(t *testing.T) {
	if diskCodec("mesa") != nil {
		t.Fatal("mesa kind has a disk codec; *core.Report is not disk-codable")
	}
	if diskCodec("raw.mesa") != nil {
		t.Fatal("raw.mesa kind has a disk codec; *core.Report is not disk-codable")
	}
	if diskCodec("cpu1") == nil || diskCodec("cpuN") == nil || diskCodec("raw.cpu1") == nil {
		t.Fatal("CPU-timing kinds must be disk-codable")
	}
}
