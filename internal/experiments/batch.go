package experiments

import (
	"fmt"
	"io"
	"sync"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// BatchPoint is one sweep point for RunMESABatch: the same inputs RunMESA
// takes, as data.
type BatchPoint struct {
	Kernel     *kernels.Kernel
	Backend    *accel.Config
	CPUPerIter float64
	Opts       MESAOptions
}

// BatchRunResult pairs RunMESA's two results for one point.
type BatchRunResult struct {
	Run *MESARun
	Err error
}

// batchPrepared is one memo-distinct simulation ready to run as a batch
// lane: program assembled, controller options resolved.
type batchPrepared struct {
	k    *kernels.Kernel
	be   *accel.Config
	prog *isa.Program
	opts core.Options
}

// RunMESABatch runs a set of sweep points, stepping up to lanes memo-missing
// simulations of the same kernel in lockstep on one accel.BatchEngine.
// Results — values and errors — are identical to calling RunMESA per point
// (the batched engine is byte-identical to the scalar one; the differential
// tests enforce this), and the memo cache sees exactly the same keys:
// in-memory and disk hits are excluded before lanes are formed, and misses
// are published under the same single-flight discipline as the scalar path,
// so concurrent RunMESA calls for the same point join the batch's flight.
// lanes <= 1 degenerates to the scalar path.
func RunMESABatch(pts []BatchPoint, lanes int) []BatchRunResult {
	res := make([]BatchRunResult, len(pts))
	if lanes <= 1 {
		for i, p := range pts {
			res[i].Run, res[i].Err = RunMESA(p.Kernel, p.Backend, p.CPUPerIter, p.Opts)
		}
		return res
	}

	// Resolve each point to its memo key, dedupe, and group the distinct
	// simulations by kernel program identity: lanes of one batch must share
	// the dataflow-graph shape, and the detected graph is a pure function of
	// the program. Points whose program fails to assemble error out here,
	// with the same wrapping as RunMESA.
	byKey := map[string]*batchPrepared{}
	groups := map[string][]string{}
	var groupOrder []string
	keyOf := make([]string, len(pts))
	for i := range pts {
		p := &pts[i]
		prog, loopStart, err := p.Kernel.Program()
		if err != nil {
			res[i].Err = fmt.Errorf("%s on %s: %w", p.Kernel.Name, p.Backend.Name, err)
			continue
		}
		opts := mesaControllerOptions(p.Kernel, loopStart, p.Backend, p.Opts)
		key, err := memoKey("mesa", p.Kernel, opts.Fingerprint)
		if err != nil {
			// Unreachable once Program succeeded; keep the scalar behavior.
			res[i].Run, res[i].Err = RunMESA(p.Kernel, p.Backend, p.CPUPerIter, p.Opts)
			continue
		}
		keyOf[i] = key
		if _, ok := byKey[key]; ok {
			continue
		}
		byKey[key] = &batchPrepared{k: p.Kernel, be: p.Backend, prog: prog, opts: opts}
		gk := memoKeyFromFill("batchgroup", func(h io.Writer) {
			fmt.Fprintf(h, "base%d|", prog.Base)
			hashProgram(h, prog)
		})
		if _, ok := groups[gk]; !ok {
			groupOrder = append(groupOrder, gk)
		}
		groups[gk] = append(groups[gk], key)
	}

	// Groups are independent (no shared engine, no shared keys), so they run
	// concurrently up to the sweep worker width: within a group the lanes
	// step one shared BatchEngine in lockstep (data-parallel, one thread),
	// across groups the machine parallelises. Results are merged by group
	// index, so the outcome set is identical for any worker count. A group
	// panic (transient by the memo contract; doBatch has already evicted and
	// unblocked waiters) is captured and re-raised on this goroutine.
	groupOut := make([]map[string]memoOutcome, len(groupOrder))
	groupPanics := make([]any, len(groupOrder))
	sem := make(chan struct{}, Workers())
	var wg sync.WaitGroup
	for gi, gk := range groupOrder {
		wg.Add(1)
		go func(gi int, keys []string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					groupPanics[gi] = rec
				}
			}()
			run := func(miss []string) map[string]memoOutcome {
				// Chunks of one group are independent batches (each gets its
				// own BatchRunner), so they too run concurrently; the shared
				// out map is written only after every chunk joined.
				var chunks [][]string
				for start := 0; start < len(miss); start += lanes {
					end := start + lanes
					if end > len(miss) {
						end = len(miss)
					}
					chunks = append(chunks, miss[start:end])
				}
				chunkOut := make([][]memoOutcome, len(chunks))
				chunkPanics := make([]any, len(chunks))
				var cwg sync.WaitGroup
				for ci, chunk := range chunks {
					cwg.Add(1)
					go func(ci int, chunk []string) {
						defer cwg.Done()
						defer func() {
							if rec := recover(); rec != nil {
								chunkPanics[ci] = rec
							}
						}()
						prep := make([]*batchPrepared, len(chunk))
						for j, key := range chunk {
							prep[j] = byKey[key]
						}
						chunkOut[ci] = runMESALanes(prep)
					}(ci, chunk)
				}
				cwg.Wait()
				for _, rec := range chunkPanics {
					if rec != nil {
						panic(rec)
					}
				}
				out := make(map[string]memoOutcome, len(miss))
				for ci, chunk := range chunks {
					for j, o := range chunkOut[ci] {
						out[chunk[j]] = o
					}
				}
				return out
			}
			if memoEnabled.Load() {
				groupOut[gi] = simMemo.doBatch(keys, diskCodec("mesa"), run)
			} else {
				groupOut[gi] = run(keys)
			}
		}(gi, groups[gk])
	}
	wg.Wait()
	for _, rec := range groupPanics {
		if rec != nil {
			panic(rec)
		}
	}
	outcomes := map[string]memoOutcome{}
	for _, got := range groupOut {
		for k, v := range got {
			outcomes[k] = v
		}
	}

	for i := range pts {
		if keyOf[i] == "" {
			continue // already resolved above
		}
		o, ok := outcomes[keyOf[i]]
		if !ok {
			res[i].Err = fmt.Errorf("experiments: batch produced no outcome for %s on %s",
				pts[i].Kernel.Name, pts[i].Backend.Name)
			continue
		}
		if o.err != nil {
			res[i].Err = o.err
			continue
		}
		res[i].Run = deriveMESARun(pts[i].Kernel, pts[i].Backend, pts[i].CPUPerIter, o.val.(*core.Report))
	}
	return res
}

// runMESALanes executes one lockstep batch: one controller per point, each
// on its own goroutine, every offloaded loop stepping on a shared
// accel.BatchRunner. Lanes whose engine configuration is incompatible with
// the batch shape fall back to scalar engines inside the runner, so the
// result is always exactly the scalar result. A panicking controller
// releases its lane (no deadlock for the others) and re-panics here.
func runMESALanes(prep []*batchPrepared) []memoOutcome {
	outs := make([]memoOutcome, len(prep))
	panics := make([]any, len(prep))
	r := accel.NewBatchRunner(len(prep))
	var wg sync.WaitGroup
	for i, p := range prep {
		wg.Add(1)
		go func(i int, p *batchPrepared) {
			defer wg.Done()
			h := r.Lane(i)
			defer h.Finish()
			defer func() {
				if rec := recover(); rec != nil {
					panics[i] = rec
				}
			}()
			opts := p.opts
			opts.EngineFactory = func(cfg *accel.Config, g *dfg.Graph, pos []noc.Coord, loopBranch dfg.NodeID, m *mem.Memory, hier *mem.Hierarchy) (core.LoopEngine, error) {
				eng, err := h.Engine(cfg, g, pos, loopBranch, m, hier)
				if err != nil {
					return nil, err
				}
				return eng, nil
			}
			outs[i].val, outs[i].err = runMESAUncached(p.k, p.be, p.prog, opts)
		}(i, p)
	}
	wg.Wait()
	for _, rec := range panics {
		if rec != nil {
			panic(rec)
		}
	}
	return outs
}

// DefaultSweepPoints enumerates the (kernel, backend, options) triples the
// experiment suite simulates, for warming the memo cache in one batched
// sweep (mesabench -batch). CPUPerIter is zero throughout: it only affects
// the cheap per-call derivation, never the memo key, so the warmed entries
// are shared by the real call sites whatever their per-iteration CPU costs.
func DefaultSweepPoints() []BatchPoint {
	var pts []BatchPoint
	add := func(k *kernels.Kernel, be *accel.Config, o MESAOptions) {
		pts = append(pts, BatchPoint{Kernel: k, Backend: be, Opts: o})
	}
	for _, k := range kernels.All() {
		add(k, accel.M128(), MESAOptions{})
		add(k, accel.M512(), MESAOptions{})
	}
	for _, name := range Figure12Kernels {
		if k, err := kernels.ByName(name); err == nil {
			add(k, accel.M128(), MESAOptions{DisableLoopOpts: true, DisableOptimization: true})
		}
	}
	for _, name := range Figure14Kernels {
		if k, err := kernels.ByName(name); err == nil {
			add(k, accel.M64(), MESAOptions{DisableOptimization: true})
			add(k, accel.M64(), MESAOptions{})
		}
	}
	if nn, err := kernels.ByName("nn"); err == nil {
		for _, pes := range Figure15PECounts {
			add(nn, accel.WithPEs(pes), MESAOptions{})
			ideal := accel.WithPEs(pes)
			ideal.Name += "-idealmem"
			ideal.MemPorts = 512
			add(nn, ideal, MESAOptions{})
		}
	}
	return pts
}
