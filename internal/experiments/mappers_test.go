package experiments

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/obs"
)

// TestMappersAblationImproves is the acceptance gate of the strategy
// extension: a refinement strategy (annealing or congestion-aware
// re-placement) must strictly improve the analytic II bound or the measured
// per-iteration cost over the greedy seed on at least 3 kernels.
func TestMappersAblationImproves(t *testing.T) {
	r, err := Mappers()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(kernels.All()) {
		t.Fatalf("ablation covers %d kernels, suite has %d", len(r.Rows), len(kernels.All()))
	}
	for _, row := range r.Rows {
		if !row.OK {
			continue
		}
		if len(row.Cells) != 3 {
			t.Fatalf("%s: %d strategy cells, want 3", row.Kernel, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.PredictedII <= 0 || c.MeasuredIter <= 0 {
				t.Errorf("%s/%s: non-positive measurement %+v", row.Kernel, c.Strategy, c)
			}
		}
	}
	if r.ImprovedKernels < 3 {
		t.Errorf("refinement strategies improve only %d kernels, want >= 3:\n%s",
			r.ImprovedKernels, r.Render())
	}
	if !strings.Contains(r.Render(), "greedy+anneal") {
		t.Error("rendered table does not show the greedy+anneal column")
	}
}

// TestMappersDeterministic: the ablation is byte-identical between workers=1
// and workers=4 (the suite-wide -parallel guarantee).
func TestMappersDeterministic(t *testing.T) {
	runTwice(t, "mappers", Mappers,
		func(r *MappersResult) string { return r.Render() })
}

// TestMapperStrategyMemoDifferential is the fingerprint acceptance test:
// warm the simulation cache with greedy runs, then run the same kernel under
// the congestion strategy — the cache must miss (the strategy name keys
// core.Options.Fingerprint), not serve a stale greedy result.
func TestMapperStrategyMemoDifferential(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()

	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	be := accel.M128()

	counters := func() (hits, misses float64) {
		for _, m := range SimMemoMetrics() {
			switch m.Name {
			case "sim_cache_hits":
				hits = m.Value
			case "sim_cache_misses":
				misses = m.Value
			}
		}
		return
	}

	// Warm: greedy (the default) populates the cache.
	if _, err := RunMESA(k, be, 1, MESAOptions{}); err != nil {
		t.Fatal(err)
	}
	_, warmMisses := counters()

	// Same options again: pure hit, no new entry.
	if _, err := RunMESA(k, be, 1, MESAOptions{}); err != nil {
		t.Fatal(err)
	}
	hits, misses := counters()
	if misses != warmMisses {
		t.Fatalf("repeat greedy run missed the cache (%v -> %v misses)", warmMisses, misses)
	}
	if hits == 0 {
		t.Fatal("repeat greedy run recorded no cache hit")
	}

	// Different strategy: must miss, not reuse the greedy entry.
	cong, err := mapping.ByName("congestion")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMESA(k, be, 1, MESAOptions{Mapper: cong}); err != nil {
		t.Fatal(err)
	}
	if _, after := counters(); after <= misses {
		t.Errorf("congestion run hit the greedy cache entry (misses %v -> %v); Fingerprint does not key on the strategy",
			misses, after)
	}
}

// TestSetMapperStrategy pins the suite-wide default override used by the
// -mapper flags.
func TestSetMapperStrategy(t *testing.T) {
	defer SetMapperStrategy(nil)
	if got := MapperStrategy().Name(); got != "greedy" {
		t.Fatalf("default strategy %q, want greedy", got)
	}
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	SetMapperStrategy(anneal)
	if got := MapperStrategy().Name(); got != "greedy+anneal" {
		t.Errorf("after SetMapperStrategy: %q", got)
	}
	SetMapperStrategy(nil)
	if got := MapperStrategy().Name(); got != "greedy" {
		t.Errorf("SetMapperStrategy(nil) did not restore the default: %q", got)
	}
}

// TestMapperMetricsPerStrategy: a controller run reports its placement
// counters under the strategy's own mapper.<name> metric group.
func TestMapperMetricsPerStrategy(t *testing.T) {
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunMESA(k, accel.M128(), 1, MESAOptions{Mapper: anneal})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Qualified {
		t.Fatal("nn did not qualify")
	}
	reg := obs.NewRegistry()
	run.Report.AddMetrics(reg)
	var section *obs.Section
	var names []string
	for _, s := range reg.Report() {
		names = append(names, s.Name)
		if s.Name == "mapper.greedy+anneal" {
			sec := s
			section = &sec
		}
	}
	if section == nil {
		t.Fatalf("no mapper.greedy+anneal metric section; sections: %v", names)
	}
	var nodes float64
	for _, m := range section.Metrics {
		if m.Name == "nodes" {
			nodes = m.Value
		}
	}
	if nodes == 0 {
		t.Error("mapper.greedy+anneal nodes metric is zero")
	}
}
