package experiments

import (
	"strings"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/obs"
)

// TestMappersAblationImproves is the acceptance gate of the strategy
// extension: a refinement strategy (annealing or congestion-aware
// re-placement) must strictly improve the analytic II bound or the measured
// per-iteration cost over the greedy seed on at least 3 kernels.
func TestMappersAblationImproves(t *testing.T) {
	r, err := Mappers()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(kernels.All()) {
		t.Fatalf("ablation covers %d kernels, suite has %d", len(r.Rows), len(kernels.All()))
	}
	for _, row := range r.Rows {
		if !row.OK {
			continue
		}
		if len(row.Cells) != len(mapperAblationOrder) {
			t.Fatalf("%s: %d strategy cells, want %d", row.Kernel, len(row.Cells), len(mapperAblationOrder))
		}
		for _, c := range row.Cells {
			if c.PredictedII <= 0 || c.MeasuredIter <= 0 {
				t.Errorf("%s/%s: non-positive measurement %+v", row.Kernel, c.Strategy, c)
			}
		}
	}
	if r.ImprovedKernels < 3 {
		t.Errorf("refinement strategies improve only %d kernels, want >= 3:\n%s",
			r.ImprovedKernels, r.Render())
	}
	if !strings.Contains(r.Render(), "greedy+anneal") {
		t.Error("rendered table does not show the greedy+anneal column")
	}
}

// TestAutoNeverWorseThanGreedy is the acceptance criterion of the auto
// meta-strategy: with the controller's revert-on-regression rule applied,
// its measured cycles/iteration never exceed the greedy seed's on any
// kernel in the suite.
func TestAutoNeverWorseThanGreedy(t *testing.T) {
	r, err := Mappers()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	checked := 0
	for _, row := range r.Rows {
		if !row.OK {
			continue
		}
		var greedy, auto *MapperCell
		for i := range row.Cells {
			switch row.Cells[i].Strategy {
			case "greedy":
				greedy = &row.Cells[i]
			case "auto":
				auto = &row.Cells[i]
			}
		}
		if greedy == nil || auto == nil {
			t.Fatalf("%s: ablation row lacks a greedy or auto cell", row.Kernel)
		}
		if auto.MeasuredIter > greedy.MeasuredIter+eps {
			t.Errorf("%s: auto measured %.3f cycles/iter, greedy %.3f — auto must never be worse",
				row.Kernel, auto.MeasuredIter, greedy.MeasuredIter)
		}
		if auto.Delegate == "" {
			t.Errorf("%s: auto cell has no delegate", row.Kernel)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no kernel rows to check")
	}
}

// TestMappersDeterministic: the ablation is byte-identical between workers=1
// and workers=4 (the suite-wide -parallel guarantee).
func TestMappersDeterministic(t *testing.T) {
	runTwice(t, "mappers", Mappers,
		func(r *MappersResult) string { return r.Render() })
}

// TestMapperStrategyMemoDifferential is the fingerprint acceptance test:
// warm the simulation cache with greedy runs, then run the same kernel under
// the congestion strategy — the cache must miss (the strategy name keys
// core.Options.Fingerprint), not serve a stale greedy result.
func TestMapperStrategyMemoDifferential(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()

	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	be := accel.M128()

	counters := func() (hits, misses float64) {
		for _, m := range SimMemoMetrics() {
			switch m.Name {
			case "sim_cache_hits":
				hits = m.Value
			case "sim_cache_misses":
				misses = m.Value
			}
		}
		return
	}

	// Warm: greedy (the default) populates the cache.
	if _, err := RunMESA(k, be, 1, MESAOptions{}); err != nil {
		t.Fatal(err)
	}
	_, warmMisses := counters()

	// Same options again: pure hit, no new entry.
	if _, err := RunMESA(k, be, 1, MESAOptions{}); err != nil {
		t.Fatal(err)
	}
	hits, misses := counters()
	if misses != warmMisses {
		t.Fatalf("repeat greedy run missed the cache (%v -> %v misses)", warmMisses, misses)
	}
	if hits == 0 {
		t.Fatal("repeat greedy run recorded no cache hit")
	}

	// Different strategy: must miss, not reuse the greedy entry.
	cong, err := mapping.ByName("congestion")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMESA(k, be, 1, MESAOptions{Mapper: cong}); err != nil {
		t.Fatal(err)
	}
	if _, after := counters(); after <= misses {
		t.Errorf("congestion run hit the greedy cache entry (misses %v -> %v); Fingerprint does not key on the strategy",
			misses, after)
	}
}

// TestMapperAblationCoversRegistry is the registry-exhaustiveness gate,
// two-directional: every registered strategy appears in the mappers
// ablation (registering a strategy without ablation coverage fails), and
// the ablation names only registered strategies (a stale entry after a
// rename fails too). The genkern differential and the strategy determinism
// property test enumerate mapping.Names() directly, so this single check
// keeps all three surfaces exhaustive.
func TestMapperAblationCoversRegistry(t *testing.T) {
	registered := map[string]bool{}
	for _, name := range mapping.Names() {
		registered[name] = true
	}
	ablated := map[string]bool{}
	for _, name := range MapperAblationStrategies() {
		if !registered[name] {
			t.Errorf("ablation strategy %q is not in the mapping registry", name)
		}
		if ablated[name] {
			t.Errorf("ablation lists strategy %q twice", name)
		}
		ablated[name] = true
	}
	for name := range registered {
		if !ablated[name] {
			t.Errorf("registered strategy %q is missing from the mappers ablation", name)
		}
	}
}

// TestSetMapperStrategy pins the suite-wide default override used by the
// -mapper flags.
func TestSetMapperStrategy(t *testing.T) {
	defer SetMapperStrategy(nil)
	if got := MapperStrategy().Name(); got != "greedy" {
		t.Fatalf("default strategy %q, want greedy", got)
	}
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	SetMapperStrategy(anneal)
	if got := MapperStrategy().Name(); got != "greedy+anneal" {
		t.Errorf("after SetMapperStrategy: %q", got)
	}
	SetMapperStrategy(nil)
	if got := MapperStrategy().Name(); got != "greedy" {
		t.Errorf("SetMapperStrategy(nil) did not restore the default: %q", got)
	}
}

// TestMapperMetricsPerStrategy: a controller run reports its placement
// counters under the strategy's own mapper.<name> metric group.
func TestMapperMetricsPerStrategy(t *testing.T) {
	anneal, err := mapping.ByName("greedy+anneal")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunMESA(k, accel.M128(), 1, MESAOptions{Mapper: anneal})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Qualified {
		t.Fatal("nn did not qualify")
	}
	reg := obs.NewRegistry()
	run.Report.AddMetrics(reg)
	var section *obs.Section
	var names []string
	for _, s := range reg.Report() {
		names = append(names, s.Name)
		if s.Name == "mapper.greedy+anneal" {
			sec := s
			section = &sec
		}
	}
	if section == nil {
		t.Fatalf("no mapper.greedy+anneal metric section; sections: %v", names)
	}
	var nodes float64
	for _, m := range section.Metrics {
		if m.Name == "nodes" {
			nodes = m.Value
		}
	}
	if nodes == 0 {
		t.Error("mapper.greedy+anneal nodes metric is zero")
	}
}

// TestMapperAutoMetrics: a controller run under the auto meta-strategy
// reports which concrete strategy each placement delegated to as
// mapper.auto.selected_<delegate> counters — the observable output of the
// selection policy.
func TestMapperAutoMetrics(t *testing.T) {
	auto, err := mapping.ByName("auto")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunMESA(k, accel.M128(), 1, MESAOptions{Mapper: auto})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Qualified {
		t.Fatal("nn did not qualify")
	}
	reg := obs.NewRegistry()
	run.Report.AddMetrics(reg)
	var section *obs.Section
	for _, s := range reg.Report() {
		if s.Name == "mapper.auto" {
			sec := s
			section = &sec
		}
	}
	if section == nil {
		t.Fatal("no mapper.auto metric section")
	}
	var nodes, selected float64
	for _, m := range section.Metrics {
		if m.Name == "nodes" {
			nodes = m.Value
		}
		if strings.HasPrefix(m.Name, "selected_") {
			selected += m.Value
		}
	}
	if nodes == 0 {
		t.Error("mapper.auto nodes metric is zero")
	}
	if selected == 0 {
		t.Error("mapper.auto reports no selected_<delegate> counter")
	}
}
