package experiments

import (
	"encoding/json"
	"testing"

	"mesa/internal/kernels"
)

// The parallel harness must not change any number: every task builds
// private state from the fixed Seed, and reductions happen in task-index
// order, so workers=1 and workers=N must produce byte-identical figures.

// runTwice renders an experiment under both worker settings and asserts
// byte-identical structured results (JSON of the result value plus the
// rendered table).
func runTwice[T any](t *testing.T, name string, exp func() (T, error), render func(T) string) {
	t.Helper()
	prev := Workers()
	defer SetWorkers(prev)

	type snapshot struct {
		JSON   string
		Render string
	}
	take := func(workers int) snapshot {
		SetWorkers(workers)
		r, err := exp()
		if err != nil {
			t.Fatalf("%s with workers=%d: %v", name, workers, err)
		}
		j, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		return snapshot{JSON: string(j), Render: render(r)}
	}

	serial := take(1)
	parallel := take(4)
	if serial.JSON != parallel.JSON {
		t.Errorf("%s: structured results differ between workers=1 and workers=4\nserial:   %s\nparallel: %s",
			name, serial.JSON, parallel.JSON)
	}
	if serial.Render != parallel.Render {
		t.Errorf("%s: rendered output differs between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			name, serial.Render, parallel.Render)
	}
}

func TestFigure2Deterministic(t *testing.T) {
	runTwice(t, "figure2",
		func() (*Figure2Result, error) { return Figure2(), nil },
		func(r *Figure2Result) string { return r.Render() })
}

func TestFigure13Deterministic(t *testing.T) {
	runTwice(t, "figure13", Figure13,
		func(r *Figure13Result) string { return r.Render() })
}

func TestFigure15Deterministic(t *testing.T) {
	runTwice(t, "figure15", Figure15,
		func(r *Figure15Result) string { return r.Render() })
}

func TestWindowAblationDeterministic(t *testing.T) {
	runTwice(t, "window ablation", WindowAblation,
		func(rows []WindowAblationRow) string {
			out := ""
			for _, r := range rows {
				out += r.Name
			}
			return out
		})
}

// TestProgramCacheSharesBuilds pins the memoization contract: repeated
// builds of the same (kernel, range) return the identical immutable
// program, including across Kernel instances.
func TestProgramCacheSharesBuilds(t *testing.T) {
	a, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	p1, l1, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	p2, l2, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || l1 != l2 {
		t.Error("Program() not memoized across Kernel instances")
	}
	c1, _, err := a.ChunkProgram(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := b.ChunkProgram(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("ChunkProgram() not memoized across Kernel instances")
	}
	if c1 == p1 {
		t.Error("chunk build must differ from the full-range build")
	}
}
