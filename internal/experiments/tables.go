package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/energy"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/noc"
)

// Table1Result reproduces Table 1: the hardware area and power breakdown by
// component, transcribed from the paper's Synopsys DC synthesis at FreePDK
// 15nm (the reproduction's energy model consumes these numbers directly).
type Table1Result struct {
	MESA          []energy.Component
	CoreAdditions []energy.Component
	Accelerator   []energy.Component
}

// Table1 returns the synthesis breakdown.
func Table1() *Table1Result {
	return &Table1Result{
		MESA:          energy.Table1MESA(),
		CoreAdditions: energy.Table1CoreAdditions(),
		Accelerator:   energy.Table1Accelerator(),
	}
}

// Render prints the table.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: hardware area and power breakdown (Synopsys DC, FreePDK 15nm)\n")
	section := func(title string, rows []energy.Component) {
		b.WriteString(title + "\n")
		for _, c := range rows {
			b.WriteString(fmt.Sprintf("  %-28s %10.4f mm² %10.4f W\n", c.Name, c.AreaMM2, c.PowerW))
		}
	}
	section("MESA Extensions", r.MESA)
	section("CPU Core Additions", r.CoreAdditions)
	section("Spatial Accelerator (128 PEs)", r.Accelerator)
	return b.String()
}

// Table2Row is one approach in the DBT comparison.
type Table2Row struct {
	Work         string
	ConfigLat    string
	Targets      string
	Optimization string
}

// Table2Result reproduces Table 2: MESA versus related DBT approaches in
// configuration latency, target hardware, and optimizations, with MESA's
// row backed by measured configuration latencies across the kernel suite.
type Table2Result struct {
	Static []Table2Row

	// Measured MESA configuration latency across the suite.
	MinCycles, MaxCycles int
	MinMicros, MaxMicros float64
	PerKernel            map[string]int
}

// Table2 measures MESA's configuration latency per kernel and assembles the
// comparison.
func Table2() (*Table2Result, error) {
	be := accel.M128()
	res := &Table2Result{
		Static: []Table2Row{
			{"TRIPS", "AOT", "2D Spatial", "H-Block (EDGE)"},
			{"CCA", "-", "1D FF", "N/A"},
			{"DynaSpAM", "JIT (ns)", "1D FF", "Out-of-order"},
			{"DORA", "JIT (ms)", "2D Spatial", "Vect., Unroll, Deepen"},
		},
		PerKernel: map[string]int{},
		MinCycles: 1 << 30,
	}
	ks := kernels.All()
	type kernelCost struct {
		name   string
		total  int
		mapped bool
	}
	costs, err := runAll(len(ks), func(i int) (kernelCost, error) {
		k := ks[i]
		body, err := regionFor(k)
		if err != nil {
			return kernelCost{}, err
		}
		l, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			return kernelCost{}, err
		}
		_, stats, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
		if err != nil {
			return kernelCost{name: k.Name}, nil // region does not map on this backend
		}
		tiles := 1
		if k.Parallel {
			tiles = 8
		}
		return kernelCost{name: k.Name, total: core.EstimateConfigCost(l, stats, tiles).Total(), mapped: true}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range costs {
		if !c.mapped {
			continue
		}
		res.PerKernel[c.name] = c.total
		if c.total < res.MinCycles {
			res.MinCycles = c.total
		}
		if c.total > res.MaxCycles {
			res.MaxCycles = c.total
		}
	}
	res.MinMicros = float64(res.MinCycles) / (be.ClockGHz * 1e3)
	res.MaxMicros = float64(res.MaxCycles) / (be.ClockGHz * 1e3)
	return res, nil
}

// Render prints the table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: comparison with related DBT approaches\n")
	b.WriteString(fmt.Sprintf("%-10s %-14s %-12s %s\n", "work", "config lat.", "targets", "optimizations"))
	for _, row := range r.Static {
		b.WriteString(fmt.Sprintf("%-10s %-14s %-12s %s\n", row.Work, row.ConfigLat, row.Targets, row.Optimization))
	}
	b.WriteString(fmt.Sprintf("%-10s %-14s %-12s %s\n", "MESA", "JIT (ns-µs)", "2D Spatial", "Dynamic, Tile, Pipeline"))
	b.WriteString(fmt.Sprintf("measured MESA config latency: %d–%d cycles (%.2f–%.2f µs at 2 GHz)\n",
		r.MinCycles, r.MaxCycles, r.MinMicros, r.MaxMicros))
	b.WriteString("paper: MESA hardware configuration time is generally 10^3–10^4 cycles\n")
	return b.String()
}

// Figure2Result reproduces the paper's worked latency-model example: five
// instructions with FP add/sub at 3 cycles and FP multiply at 5, transfers
// at Manhattan distance; the sequence completes in 15 cycles with
// {i1, i4, i5} on the critical path.
type Figure2Result struct {
	Completion []float64
	Total      float64
	Critical   []dfg.NodeID
	Table      string
}

// Figure2 builds and evaluates the example DFG.
func Figure2() *Figure2Result {
	g := dfg.NewGraph()
	mk := func(op isa.Op, lat float64, srcs ...dfg.NodeID) dfg.NodeID {
		n := dfg.Node{
			Inst:       isa.Inst{Op: op, Rd: isa.F1, Rs1: isa.F2, Rs2: isa.F3, Rs3: isa.RegNone},
			OpLat:      lat,
			Src:        [3]dfg.NodeID{dfg.None, dfg.None, dfg.None},
			LiveIn:     [3]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone},
			MemDep:     dfg.None,
			PredDep:    dfg.None,
			PredLiveIn: isa.RegNone,
			CtrlDep:    dfg.None,
		}
		for k, s := range srcs {
			n.Src[k] = s
		}
		return g.Add(n)
	}
	i1 := mk(isa.OpFADDS, 3)
	i2 := mk(isa.OpFMULS, 5, i1)
	i3 := mk(isa.OpFADDS, 3, i2)
	i4 := mk(isa.OpFMULS, 5, i1)
	i5 := mk(isa.OpFADDS, 3, i4)
	pos := map[dfg.NodeID]noc.Coord{
		i1: {Row: 0, Col: 0}, i2: {Row: 0, Col: 1}, i3: {Row: 1, Col: 1},
		i4: {Row: 0, Col: 2}, i5: {Row: 2, Col: 2},
	}
	mesh := noc.Mesh{}
	ev := g.Evaluate(func(from, to dfg.NodeID) float64 {
		return float64(mesh.Latency(pos[from], pos[to]))
	})
	return &Figure2Result{
		Completion: ev.Completion,
		Total:      ev.Total,
		Critical:   ev.CriticalPath(),
		Table:      g.LatencyTable(ev),
	}
}

// Render prints the worked example.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: worked DFG latency example (add/sub 3 cyc, mul 5 cyc, Manhattan transfers)\n")
	b.WriteString(r.Table)
	b.WriteString("critical path:")
	for _, id := range r.Critical {
		fmt.Fprintf(&b, " i%d", id+1)
	}
	b.WriteString(fmt.Sprintf("\npaper: 15 cycles total, critical path {i1, i4, i5}\n"))
	return b.String()
}

// Figure8Result reproduces the imap FSM timing of Figure 8: the
// per-instruction stage counts of the mapping state machine for a kernel,
// plus a rendered timing diagram from the cycle-stepped FSM simulation.
type Figure8Result struct {
	Kernel          string
	Instructions    int
	FixedStages     int
	ReductionCycles int
	TotalMapCycles  int
	AvgPerInst      float64
	TimingDiagram   string
}

// Figure8 measures the imap FSM cycles for the nn kernel on M-128.
func Figure8() (*Figure8Result, error) {
	k, err := kernels.ByName("nn")
	if err != nil {
		return nil, err
	}
	be := accel.M128()
	body, err := regionFor(k)
	if err != nil {
		return nil, err
	}
	l, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		return nil, err
	}
	_, stats, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
	if err != nil {
		return nil, err
	}
	cost := core.EstimateConfigCost(l, stats, 1)
	tr, _, err := core.SimulateImapFSM(l, be, core.DefaultMapperOptions())
	if err != nil {
		return nil, err
	}
	return &Figure8Result{
		Kernel:          k.Name,
		Instructions:    l.Graph.Len(),
		FixedStages:     cost.InstrMap - stats.ReductionCycles,
		ReductionCycles: stats.ReductionCycles,
		TotalMapCycles:  cost.InstrMap,
		AvgPerInst:      float64(cost.InstrMap) / float64(l.Graph.Len()),
		TimingDiagram:   tr.RenderTimingDiagram(8),
	}, nil
}

// Render prints the FSM accounting.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: imap FSM timing (per-instruction mapping stages)\n")
	b.WriteString(fmt.Sprintf("kernel %s: %d instructions\n", r.Kernel, r.Instructions))
	b.WriteString(fmt.Sprintf("  fixed stages (read/candidates/filter/write): %d cycles\n", r.FixedStages))
	b.WriteString(fmt.Sprintf("  reduction stages (candidate-matrix dependent): %d cycles\n", r.ReductionCycles))
	b.WriteString(fmt.Sprintf("  total instruction mapping: %d cycles (%.1f per instruction)\n",
		r.TotalMapCycles, r.AvgPerInst))
	b.WriteString("timing diagram (r=read c=candidates f=filter R=reduce w=write):\n")
	b.WriteString(r.TimingDiagram)
	b.WriteString("paper: all states constant except the reduction stage, whose cycle count\n")
	b.WriteString("       depends on the candidate matrix dimensions\n")
	return b.String()
}
