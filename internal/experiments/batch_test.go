package experiments

import (
	"reflect"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/kernels"
)

// batchTestPoints is a small heterogeneous sweep: several kernels, two
// backend sizes, and an optimization-ablation variant, so one batch mixes
// kernels (grouped apart), backends (same group, heterogeneous lanes), and
// option fingerprints.
func batchTestPoints(t *testing.T) []BatchPoint {
	t.Helper()
	ks := kernels.All()
	n := 3
	if !testing.Short() {
		n = 6
	}
	if n > len(ks) {
		n = len(ks)
	}
	var pts []BatchPoint
	for _, k := range ks[:n] {
		pts = append(pts, BatchPoint{Kernel: k, Backend: accel.M128()})
		pts = append(pts, BatchPoint{Kernel: k, Backend: accel.M512(), CPUPerIter: 2.5})
	}
	pts = append(pts, BatchPoint{
		Kernel: ks[0], Backend: accel.M128(),
		Opts: MESAOptions{DisableLoopOpts: true, DisableOptimization: true},
	})
	return pts
}

// TestRunMESABatchMatchesScalar is the sweep-level identity gate: every
// point of a batched run must equal — by deep comparison of the full
// MESARun, report included — the scalar RunMESA result computed with the
// cache disabled (so both sides genuinely simulate).
func TestRunMESABatchMatchesScalar(t *testing.T) {
	pts := batchTestPoints(t)

	SetSimMemoEnabled(false)
	scalar := make([]BatchRunResult, len(pts))
	for i, p := range pts {
		scalar[i].Run, scalar[i].Err = RunMESA(p.Kernel, p.Backend, p.CPUPerIter, p.Opts)
	}
	SetSimMemoEnabled(true)

	ResetSimMemo()
	defer ResetSimMemo()
	batch := RunMESABatch(pts, 4)
	if len(batch) != len(pts) {
		t.Fatalf("got %d results for %d points", len(batch), len(pts))
	}
	for i, p := range pts {
		if (batch[i].Err != nil) != (scalar[i].Err != nil) {
			t.Errorf("point %d (%s on %s): err %v vs scalar %v",
				i, p.Kernel.Name, p.Backend.Name, batch[i].Err, scalar[i].Err)
			continue
		}
		if batch[i].Err != nil {
			continue
		}
		if !reflect.DeepEqual(batch[i].Run, scalar[i].Run) {
			t.Errorf("point %d (%s on %s): batched MESARun differs from scalar\n batch: %+v\nscalar: %+v",
				i, p.Kernel.Name, p.Backend.Name, batch[i].Run, scalar[i].Run)
		}
	}

	// Cache accounting must be exactly what the scalar sweep would record:
	// one miss per distinct (kernel, backend, options) key, a hit for each
	// duplicate lookup.
	distinct := map[string]bool{}
	for i := range pts {
		p := &pts[i]
		prog, loopStart, err := p.Kernel.Program()
		if err != nil {
			t.Fatal(err)
		}
		_ = prog
		opts := mesaControllerOptions(p.Kernel, loopStart, p.Backend, p.Opts)
		key, err := memoKey("mesa", p.Kernel, opts.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		distinct[key] = true
	}
	m := map[string]float64{}
	for _, metric := range SimMemoMetrics() {
		m[metric.Name] = metric.Value
	}
	if int(m["sim_cache_misses"]) != len(distinct) {
		t.Errorf("misses = %v, want %d (one per distinct key)", m["sim_cache_misses"], len(distinct))
	}
	if int(m["sim_cache_hits"]) != len(pts)-len(distinct) {
		t.Errorf("hits = %v, want %d (one per duplicate point)", m["sim_cache_hits"], len(pts)-len(distinct))
	}

	// A follow-up scalar call is served from the entries the batch populated
	// (shared report pointer), and a duplicate point shares within the batch.
	r0, err := RunMESA(pts[0].Kernel, pts[0].Backend, pts[0].CPUPerIter, pts[0].Opts)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Report != batch[0].Run.Report {
		t.Error("scalar RunMESA after the batch did not share the batch-populated cache entry")
	}
}

// TestRunMESABatchMemoHitExclusion checks warm points never become lanes:
// a pre-warmed point is served from cache (same shared report) and only the
// cold points count as misses.
func TestRunMESABatchMemoHitExclusion(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	ks := kernels.All()
	warm, err := RunMESA(ks[0], accel.M128(), 0, MESAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts := []BatchPoint{
		{Kernel: ks[0], Backend: accel.M128()},
		{Kernel: ks[0], Backend: accel.M512()},
		{Kernel: ks[1], Backend: accel.M128()},
	}
	batch := RunMESABatch(pts, 4)
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
	}
	if batch[0].Run.Report != warm.Report {
		t.Error("warm point was re-simulated instead of served from cache")
	}
	m := map[string]float64{}
	for _, metric := range SimMemoMetrics() {
		m[metric.Name] = metric.Value
	}
	if m["sim_cache_misses"] != 3 { // 1 warmup + 2 cold batch lanes
		t.Errorf("misses = %v, want 3", m["sim_cache_misses"])
	}
	if m["sim_cache_hits"] != 1 {
		t.Errorf("hits = %v, want 1 (the warm point)", m["sim_cache_hits"])
	}
}

// TestRunMESABatchScalarDegenerate pins lanes<=1 to the plain scalar path.
func TestRunMESABatchScalarDegenerate(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	ks := kernels.All()
	pts := []BatchPoint{{Kernel: ks[0], Backend: accel.M128()}}
	for _, lanes := range []int{0, 1} {
		res := RunMESABatch(pts, lanes)
		if res[0].Err != nil {
			t.Fatalf("lanes=%d: %v", lanes, res[0].Err)
		}
		scalar, err := RunMESA(ks[0], accel.M128(), 0, MESAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Run.Report != scalar.Report {
			t.Errorf("lanes=%d: degenerate batch did not share the scalar cache entry", lanes)
		}
	}
}
