package experiments

import (
	"strings"
	"testing"
)

func TestWindowAblation(t *testing.T) {
	rows, err := WindowAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Hardware cost (candidates scanned, reduction depth) grows with the
	// window.
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgCandidates <= rows[i-1].AvgCandidates {
			t.Errorf("candidates not increasing: %s %.1f vs %s %.1f",
				rows[i].Name, rows[i].AvgCandidates, rows[i-1].Name, rows[i-1].AvgCandidates)
		}
	}
	// Placement quality has diminishing returns: the paper's 4×8 window is
	// within 5% of the full-column search.
	paper, full := rows[1], rows[3]
	if paper.GeomeanModeledIter > full.GeomeanModeledIter*1.05 {
		t.Errorf("4x8 window loses too much quality: %.1f vs %.1f",
			paper.GeomeanModeledIter, full.GeomeanModeledIter)
	}
	// And the full search costs at least 2x the candidates.
	if full.AvgCandidates < 2*paper.AvgCandidates {
		t.Errorf("full search unexpectedly cheap: %.1f vs %.1f",
			full.AvgCandidates, paper.AvgCandidates)
	}
}

func TestTieBreakAblation(t *testing.T) {
	r, err := TieBreakAblation()
	if err != nil {
		t.Fatal(err)
	}
	// The tie-break is a congestion heuristic: it must never cause more bus
	// fallbacks, and quality should stay within a few percent either way.
	if r.WithBusFalls > r.WithoutBusFalls {
		t.Errorf("tie-break increased bus fallbacks: %d vs %d",
			r.WithBusFalls, r.WithoutBusFalls)
	}
	if r.WithGeomean > r.WithoutGeomean*1.10 {
		t.Errorf("tie-break degraded latency: %.1f vs %.1f",
			r.WithGeomean, r.WithoutGeomean)
	}
}

func TestMemOptAblation(t *testing.T) {
	rows, err := MemOptAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Speedup is monotone non-decreasing as optimizations stack.
	for i := 1; i < len(rows); i++ {
		if rows[i].GeomeanSpeedup < rows[i-1].GeomeanSpeedup*0.99 {
			t.Errorf("%s regressed: %.2f vs %.2f",
				rows[i].Name, rows[i].GeomeanSpeedup, rows[i-1].GeomeanSpeedup)
		}
	}
	// Prefetching must fire and help on these streaming kernels.
	last := rows[len(rows)-1]
	if last.TotalPrefetches == 0 {
		t.Error("no prefetches issued")
	}
	if last.GeomeanSpeedup <= 1.05 {
		t.Errorf("memory optimizations gained only %.2fx", last.GeomeanSpeedup)
	}
}

func TestForwardingAblation(t *testing.T) {
	r, err := ForwardingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if r.LoadsElided != 1 {
		t.Errorf("loads elided = %d, want 1", r.LoadsElided)
	}
	if r.WithIterLat >= r.WithoutIterLat {
		t.Errorf("forwarding did not help: %.1f vs %.1f",
			r.WithIterLat, r.WithoutIterLat)
	}
}

func TestInterconnectAblation(t *testing.T) {
	rows, err := InterconnectAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All interconnects map the suite without excessive fallback, and the
	// modeled latencies stay within a factor of 2 of each other (the mapper
	// adapts placement to each latency function).
	for _, r := range rows {
		if r.BusFallbacks > 5 {
			t.Errorf("%s: %d bus fallbacks", r.Name, r.BusFallbacks)
		}
		if r.GeomeanModeledIter <= 0 {
			t.Errorf("%s: no latency measured", r.Name)
		}
	}
	for _, a := range rows {
		for _, b := range rows {
			if a.GeomeanModeledIter > 2*b.GeomeanModeledIter {
				t.Errorf("interconnect gap too large: %s %.1f vs %s %.1f",
					a.Name, a.GeomeanModeledIter, b.Name, b.GeomeanModeledIter)
			}
		}
	}
}

func TestTimeShareAblation(t *testing.T) {
	r, err := TimeShareAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !r.M64Qualified {
		t.Fatal("srad should qualify on M-64 with 2-way sharing")
	}
	// Sharing is a capacity trade: slower per iteration than M-128 spatial.
	if r.M64SharedII <= r.M128SpatialII {
		t.Errorf("shared M-64 II %.2f should exceed spatial M-128 II %.2f",
			r.M64SharedII, r.M128SpatialII)
	}
}

func TestRenderAblations(t *testing.T) {
	out, err := RenderAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation C2", "Ablation D", "Ablation E"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	t.Log("\n" + out)
}
