package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/energy"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// Figure16Point is one point of the amortization curve.
type Figure16Point struct {
	Iterations   uint64
	PerIterNJ    float64 // cumulative energy / iterations
	CumulativeNJ float64
}

// Figure16Result reproduces Figure 16: average energy consumed per
// execution of each nn loop iteration as iterations elapse. The sunk cost
// of configuration dominates initially and amortizes over time — the paper
// observes amortization around 70 iterations.
type Figure16Result struct {
	Points []Figure16Point

	// ConfigNJ is the up-front configuration energy (the sunk cost).
	ConfigNJ float64
	// SteadyNJ is the asymptotic per-iteration energy.
	SteadyNJ float64
	// AmortizedAt is the iteration count where per-iteration energy falls
	// within 20% of steady state.
	AmortizedAt uint64

	PaperAmortizedAt uint64 // ≈70
}

// Figure16 runs the experiment by executing nn region batches of increasing
// length on the accelerator and accounting energy after each batch.
func Figure16() (*Figure16Result, error) {
	k, err := kernels.ByName("nn")
	if err != nil {
		return nil, err
	}
	prog, loopStart, err := k.Program()
	if err != nil {
		return nil, err
	}
	be := accel.M128()

	// Build the mapped region directly so iteration counts can be swept.
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		return nil, err
	}
	sdfg, stats, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
	if err != nil {
		return nil, err
	}
	cost := core.EstimateConfigCost(l, stats, 1)
	configNJ := energy.ConfigEnergy(float64(cost.Total()), be.ClockGHz)
	// Configuration also burns accelerator leakage while the array waits.
	configNJ += energy.AccelEnergy(be, accel.Activity{Cycles: float64(cost.Total())}).LeakageNJ

	// Seed architectural state the way the CPU would deliver it: run the
	// program up to the loop entry.
	memory := k.NewMemory(Seed)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	machine, err := runToLoop(prog, memory, loopStart)
	if err != nil {
		return nil, err
	}

	engine, err := accel.NewEngine(be, l.Graph, sdfg.Pos, l.LoopBranch, memory, hier)
	if err != nil {
		return nil, err
	}

	res := &Figure16Result{ConfigNJ: configNJ, PaperAmortizedAt: 70}
	checkpoints := []uint64{1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 512, 1024}
	var done uint64
	for _, cp := range checkpoints {
		if cp > uint64(k.N) {
			break
		}
		if _, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{MaxIterations: cp - done}); err != nil {
			return nil, err
		}
		done = cp
		b := energy.AccelEnergy(be, engine.Activity())
		cum := configNJ + b.TotalNJ()
		res.Points = append(res.Points, Figure16Point{
			Iterations: cp, PerIterNJ: cum / float64(cp), CumulativeNJ: cum,
		})
	}
	// Steady-state per-iteration energy from the last checkpoint interval.
	n := len(res.Points)
	if n >= 2 {
		last, prev := res.Points[n-1], res.Points[n-2]
		res.SteadyNJ = (last.CumulativeNJ - prev.CumulativeNJ) /
			float64(last.Iterations-prev.Iterations)
	}
	for _, p := range res.Points {
		if p.PerIterNJ <= 1.2*res.SteadyNJ {
			res.AmortizedAt = p.Iterations
			break
		}
	}
	return res, nil
}

// runToLoop executes the program functionally until PC reaches the loop
// entry, yielding the architectural state the CPU hands to the accelerator.
func runToLoop(prog *isa.Program, memory *mem.Memory, loopStart uint32) (*sim.Machine, error) {
	machine := sim.New(prog, memory)
	for machine.PC != loopStart {
		if err := machine.Step(); err != nil {
			return nil, err
		}
	}
	return machine, nil
}

// Render prints the amortization curve.
func (r *Figure16Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: nn average energy (nJ) per iteration vs iterations elapsed\n")
	b.WriteString(fmt.Sprintf("config energy (sunk): %.1f nJ, steady per-iteration: %.2f nJ\n",
		r.ConfigNJ, r.SteadyNJ))
	b.WriteString(fmt.Sprintf("%10s %14s\n", "iterations", "nJ/iteration"))
	for _, p := range r.Points {
		b.WriteString(fmt.Sprintf("%10d %14.2f\n", p.Iterations, p.PerIterNJ))
	}
	b.WriteString(fmt.Sprintf("amortized (within 20%% of steady) at %d iterations (paper: ~%d)\n",
		r.AmortizedAt, r.PaperAmortizedAt))
	return b.String()
}
