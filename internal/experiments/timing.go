package experiments

import (
	"time"

	"mesa/internal/obs"
)

// Wall-clock timing of the simulation memo layer. These histograms measure
// host time, not simulated cycles — the two are different clocks (a cache hit
// takes microseconds of wall time regardless of how many cycles the cached
// simulation covered). They exist for service observability (mesad /metrics,
// mesabench -stats) and are always on: Observe is two atomic adds, noise on
// top of a millisecond-scale simulation.
//
// Wall-clock distributions are inherently worker-count-VARIANT — scheduling,
// contention, and cache warmth all shift them — so every metric they
// contribute to a stats report is listed in StatsVariantMetricNames and
// excluded from byte-identical `-parallel N` comparisons.
var (
	// simRunSeconds times cold simulations: the f() the memo layer actually
	// ran (single-flight, so one observation per distinct key per process).
	simRunSeconds = obs.NewHistogram("sim_run_seconds",
		"wall-clock duration of cold (uncached) simulations", obs.LatencyBuckets())
	// simHitWaitSeconds times everything a hit costs: waiting on an
	// in-flight computation, or loading and decoding a disk entry.
	simHitWaitSeconds = obs.NewHistogram("sim_hit_wait_seconds",
		"wall-clock wait for memoized results (in-memory joins and disk loads)", obs.LatencyBuckets())
)

// SimTimingHistograms returns the memo layer's wall-clock histograms for
// registration (obs.Registry.AddHistogram). Callers must not mutate them
// other than via Observe.
func SimTimingHistograms() []*obs.Histogram {
	return []*obs.Histogram{simHitWaitSeconds, simRunSeconds}
}

// ResetSimTiming zeroes the wall-clock histograms (tests and cold/warm
// differential comparisons; paired with ResetSimMemo).
func ResetSimTiming() {
	simRunSeconds.Reset()
	simHitWaitSeconds.Reset()
}

// StatsVariantMetricNames lists every metric name that may differ between
// byte-compared stats reports at different worker counts: the scheduling-
// dependent cache counters (SimMemoVariantMetricNames) plus all summary
// metrics derived from wall-clock histograms. Derived programmatically from
// the histograms' own SummaryMetricNames so the list cannot drift from what
// the registry actually emits (TestStatsVariantNamesExhaustive enforces
// the converse: everything wall-clock-shaped is listed here).
func StatsVariantMetricNames() []string {
	names := SimMemoVariantMetricNames()
	for _, h := range SimTimingHistograms() {
		names = append(names, h.SummaryMetricNames()...)
	}
	return names
}

// observeSince records a wall-clock duration started at t0 into h.
func observeSince(h *obs.Histogram, t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}
