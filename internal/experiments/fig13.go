package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/energy"
	"mesa/internal/kernels"
)

// Figure13Kernels are the four benchmarks the paper averages for the
// energy-consumption breakdown.
var Figure13Kernels = []string{"nn", "kmeans", "hotspot", "cfd"}

// Figure13Result reproduces Figure 13: the breakdown of area, power, and
// energy by component for MESA including the accelerator. The paper's
// headline observation: almost 87% of total energy goes to memory or
// computation, with a small fraction on control.
type Figure13Result struct {
	// Energy fractions averaged over the four benchmarks.
	ComputeFrac float64
	MemoryFrac  float64
	NoCFrac     float64
	ControlFrac float64
	LeakageFrac float64

	// Area and power shares from the Table 1 synthesis numbers.
	AreaPEArray  float64
	AreaOther    float64
	AreaMESA     float64
	PowerPEArray float64
	PowerOther   float64
	PowerMESA    float64

	PaperComputeMemoryFrac float64 // ≈0.87
}

// Figure13 runs the experiment, fanning the per-kernel runs out over the
// sweep worker pool and summing the breakdowns in kernel order.
func Figure13() (*Figure13Result, error) {
	parts, err := runAll(len(Figure13Kernels), func(i int) (energy.Breakdown, error) {
		name := Figure13Kernels[i]
		k, err := kernels.ByName(name)
		if err != nil {
			return energy.Breakdown{}, err
		}
		single, err := TimeSingleCore(k, cpu.DefaultBOOM())
		if err != nil {
			return energy.Breakdown{}, err
		}
		run, err := RunMESA(k, accel.M128(), single.Cycles/float64(k.N), MESAOptions{})
		if err != nil {
			return energy.Breakdown{}, err
		}
		if !run.Qualified {
			return energy.Breakdown{}, fmt.Errorf("figure13: %s did not qualify", name)
		}
		return run.Breakdown, nil
	})
	if err != nil {
		return nil, err
	}
	var total energy.Breakdown
	for _, b := range parts {
		total.ComputeNJ += b.ComputeNJ
		total.MemoryNJ += b.MemoryNJ
		total.NoCNJ += b.NoCNJ
		total.ControlNJ += b.ControlNJ
		total.LeakageNJ += b.LeakageNJ
	}
	sum := total.TotalNJ()
	res := &Figure13Result{
		ComputeFrac: total.ComputeNJ / sum,
		MemoryFrac:  total.MemoryNJ / sum,
		NoCFrac:     total.NoCNJ / sum,
		ControlFrac: total.ControlNJ / sum,
		LeakageFrac: total.LeakageNJ / sum,

		PaperComputeMemoryFrac: 0.87,
	}
	// Area/power shares from the synthesis constants.
	accTop := energy.Table1Accelerator()[0]
	peArr := energy.Table1Accelerator()[1]
	mesaTop := energy.Table1MESA()[0]
	res.AreaPEArray = peArr.AreaMM2
	res.AreaOther = accTop.AreaMM2 - peArr.AreaMM2
	res.AreaMESA = mesaTop.AreaMM2
	res.PowerPEArray = peArr.PowerW
	res.PowerOther = accTop.PowerW - peArr.PowerW
	res.PowerMESA = mesaTop.PowerW
	return res, nil
}

// ComputeMemoryFrac returns the combined compute+memory energy fraction
// (the paper's ~87% headline).
func (r *Figure13Result) ComputeMemoryFrac() float64 {
	return r.ComputeFrac + r.MemoryFrac
}

// Render prints the figure.
func (r *Figure13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13: area / power / energy breakdown (avg of nn, kmeans, hotspot, cfd)\n")
	b.WriteString("energy by component:\n")
	b.WriteString(fmt.Sprintf("  compute      %5.1f%%\n", 100*r.ComputeFrac))
	b.WriteString(fmt.Sprintf("  memory       %5.1f%%\n", 100*r.MemoryFrac))
	b.WriteString(fmt.Sprintf("  interconnect %5.1f%%\n", 100*r.NoCFrac))
	b.WriteString(fmt.Sprintf("  control      %5.1f%%\n", 100*r.ControlFrac))
	b.WriteString(fmt.Sprintf("  leakage      %5.1f%%\n", 100*r.LeakageFrac))
	b.WriteString(fmt.Sprintf("compute+memory = %.1f%% (paper: ~%.0f%%)\n",
		100*r.ComputeMemoryFrac(), 100*r.PaperComputeMemoryFrac))
	b.WriteString("area (mm²):  ")
	b.WriteString(fmt.Sprintf("PE array %.2f, accel other %.2f, MESA %.2f\n",
		r.AreaPEArray, r.AreaOther, r.AreaMESA))
	b.WriteString("power (W):   ")
	b.WriteString(fmt.Sprintf("PE array %.2f, accel other %.2f, MESA %.2f\n",
		r.PowerPEArray, r.PowerOther, r.PowerMESA))
	return b.String()
}
