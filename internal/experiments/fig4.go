package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/core"
	"mesa/internal/noc"
)

// Figure4Case is one interconnect's placement outcome for the paper's
// worked masking example.
type Figure4Case struct {
	Interconnect string
	I1, I2, I3   noc.Coord
	TransferLat  int // latency of the i1→i3 edge under this placement
}

// Figure4Result reproduces the paper's Figure 4: placing instruction i3
// (an FP multiply that depends only on i1) after i1 and i2 are already
// placed, under two backend interconnects. With the hierarchical row-slice
// network, any free in-row position costs one cycle; with the mesh, the
// nearest free neighbor wins. F_op masks integer-only PEs, F_free masks the
// occupied ones.
type Figure4Result struct {
	Cases []Figure4Case
}

// Figure4 runs the example.
func Figure4() (*Figure4Result, error) {
	// The same snippet as Figure 3: i1 and i2 placed, then i3 (fmul on i1).
	body := asm.MustAssemble(0x1000, `
	fadd.s f1, f2, f3
	fmul.s f4, f1, f1
	fmul.s f5, f1, f1
	blt    x5, x6, -12
`).Insts

	res := &Figure4Result{}
	for _, ic := range []noc.Interconnect{noc.DefaultRowSlice(), noc.Mesh{}} {
		be := accel.M128()
		be.Rows, be.Cols = 4, 4
		be.FPSlice = 4 // top-left 4x4 block fully FP-capable for the example
		be.Interconnect = ic
		l, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			return nil, err
		}
		s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
		if err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, Figure4Case{
			Interconnect: ic.Name(),
			I1:           s.Pos[0],
			I2:           s.Pos[1],
			I3:           s.Pos[2],
			TransferLat:  ic.Latency(s.Pos[0], s.Pos[2]),
		})
	}
	return res, nil
}

// Render prints the placements.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: placing i3 (depends only on i1) under two interconnects\n")
	for _, c := range r.Cases {
		b.WriteString(fmt.Sprintf("  %-9s i1@%v i2@%v -> i3@%v (i1→i3 transfer %d cycle(s))\n",
			c.Interconnect, c.I1, c.I2, c.I3, c.TransferLat))
	}
	b.WriteString("paper: row-slice places i3 anywhere in i1's row (1 cycle);\n")
	b.WriteString("       mesh places it at the nearest free compatible PE\n")
	return b.String()
}
