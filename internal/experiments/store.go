package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mesa/internal/cpu"
)

// DiskStore is a content-addressed blob store: values are filed under their
// sha256-hex key in a two-level fan-out (dir/ab/abcdef…), written atomically
// (temp file + rename) so concurrent processes sharing one directory never
// observe a torn blob. It backs the simulation-result cache across process
// restarts (SetSimMemoDir) and mesad's response cache.
//
// The store is deliberately append-only from the cache's point of view:
// entries are immutable (the key is a content hash of everything that
// determines the value), so there is nothing to invalidate — stale results
// are impossible, only missing ones.
type DiskStore struct {
	dir string
}

// OpenDiskStore opens (creating if necessary) a store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a key to its blob path. Keys are sha256 hex strings; anything
// else is rejected by validateKey before reaching the filesystem.
func (s *DiskStore) path(key string) string {
	return filepath.Join(s.dir, key[:2], key[2:])
}

func validateKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("experiments: bad store key %q (want sha256 hex)", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("experiments: bad store key %q (want sha256 hex)", key)
		}
	}
	return nil
}

// Get returns the blob stored under key, reporting ok=false when absent.
func (s *DiskStore) Get(key string) (data []byte, ok bool, err error) {
	if err := validateKey(key); err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Put stores data under key atomically. An existing blob is left untouched:
// the key is a content hash, so an extant entry is already the right bytes.
func (s *DiskStore) Put(key string, data []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Len reports the number of blobs in the store (tests and smoke checks; it
// walks the directory, so it is not for hot paths).
func (s *DiskStore) Len() (int, error) {
	n := 0
	err := filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Base(path)[0] != '.' {
			n++
		}
		return nil
	})
	return n, err
}

// memoCodec (de)serializes one entry-point kind's cached value for the disk
// store. Only plain-data results are disk-codable: a *core.Report carries
// live graph state (measured per-edge latency maps, SDFG occupancy) whose
// unexported fields no serializer round-trips, so MESA controller runs stay
// memory-only — mesad instead persists its byte-exact response encodings in
// the same store (see internal/server).
type memoCodec struct {
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// cpuRunCodec round-trips *CPURun via JSON: every field (including the
// nested *cpu.Result) is exported plain data, and encoding/json prints
// float64s in their shortest round-trip form, so decode(encode(v)) is
// bit-identical to v — the property the warm-vs-cold differential test
// enforces end to end.
var cpuRunCodec = &memoCodec{
	encode: func(v any) ([]byte, error) { return json.Marshal(v.(*CPURun)) },
	decode: func(data []byte) (any, error) {
		r := new(CPURun)
		if err := json.Unmarshal(data, r); err != nil {
			return nil, err
		}
		return r, nil
	},
}

// cpuResultCodec round-trips the raw-program CPU baseline (*cpu.Result).
var cpuResultCodec = &memoCodec{
	encode: func(v any) ([]byte, error) { return json.Marshal(v.(*cpu.Result)) },
	decode: func(data []byte) (any, error) {
		r := new(cpu.Result)
		if err := json.Unmarshal(data, r); err != nil {
			return nil, err
		}
		return r, nil
	},
}

// diskCodec returns the serializer for an entry-point kind, or nil when the
// kind's values are memory-only.
func diskCodec(kind string) *memoCodec {
	switch kind {
	case "cpu1", "cpuN":
		return cpuRunCodec
	case "raw.cpu1":
		return cpuResultCodec
	default:
		return nil
	}
}
