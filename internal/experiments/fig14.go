package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/baseline/dynaspam"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// Figure14Kernels is the benchmark subset shared with the DynaSpAM paper's
// Rodinia evaluation.
var Figure14Kernels = []string{
	"nn", "kmeans", "hotspot", "backprop", "pathfinder", "lud", "srad", "btree",
}

// Figure14Row compares the smallest MESA configuration (M-64, optimizations
// enabled) and DynaSpAM against a single out-of-order core.
type Figure14Row struct {
	Kernel string

	CPUCycles float64

	// M-64 with parallel optimizations but no iterative reconfiguration,
	// and with full runtime iterative reconfiguration.
	M64Speedup     float64
	M64IterSpeedup float64
	M64Qualified   bool

	DynaSpAMSpeedup   float64
	DynaSpAMQualified bool
}

// Figure14Result reproduces Figure 14. The paper reports M-64 achieving
// 1.86× (2.01× with runtime iterative reconfiguration) versus DynaSpAM's
// 1.42×, with benchmarks like srad not qualifying on MESA's M-64.
type Figure14Result struct {
	Rows []Figure14Row

	GeomeanM64     float64
	GeomeanM64Iter float64
	GeomeanDyna    float64

	PaperM64Iter float64 // 2.01
	PaperM64     float64 // 1.86
	PaperDyna    float64 // 1.42
}

// Figure14 runs the experiment, fanning the per-kernel comparisons out over
// the sweep worker pool.
func Figure14() (*Figure14Result, error) {
	res := &Figure14Result{PaperM64: 1.86, PaperM64Iter: 2.01, PaperDyna: 1.42}
	rows, err := runAll(len(Figure14Kernels), func(i int) (Figure14Row, error) {
		name := Figure14Kernels[i]
		k, err := kernels.ByName(name)
		if err != nil {
			return Figure14Row{}, err
		}
		// The DynaSpAM paper's smaller gem5 core.
		single, err := TimeSingleCore(k, cpu.SingleIssue())
		if err != nil {
			return Figure14Row{}, err
		}
		cpuPerIter := single.Cycles / float64(k.N)

		noIter, err := RunMESA(k, accel.M64(), cpuPerIter, MESAOptions{DisableOptimization: true})
		if err != nil {
			return Figure14Row{}, err
		}
		withIter, err := RunMESA(k, accel.M64(), cpuPerIter, MESAOptions{})
		if err != nil {
			return Figure14Row{}, err
		}

		row := Figure14Row{
			Kernel:         name,
			CPUCycles:      single.Cycles,
			M64Qualified:   withIter.Qualified,
			M64Speedup:     single.Cycles / noIter.TotalCycles,
			M64IterSpeedup: single.Cycles / withIter.TotalCycles,
		}

		// DynaSpAM: map the same loop body onto the in-core feed-forward
		// array; non-loop instructions stay on the core.
		dyn, err := dynaSpamCycles(k, cpuPerIter)
		if err != nil {
			return Figure14Row{}, err
		}
		row.DynaSpAMQualified = dyn > 0
		if dyn > 0 {
			row.DynaSpAMSpeedup = single.Cycles / dyn
		} else {
			row.DynaSpAMSpeedup = 1.0
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var m64s, m64is, dynas []float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		m64s = append(m64s, row.M64Speedup)
		m64is = append(m64is, row.M64IterSpeedup)
		dynas = append(dynas, row.DynaSpAMSpeedup)
	}
	res.GeomeanM64 = geomean(m64s)
	res.GeomeanM64Iter = geomean(m64is)
	res.GeomeanDyna = geomean(dynas)
	return res, nil
}

// dynaSpamCycles models the kernel's hot loop on the DynaSpAM array.
// Returns 0 when the loop does not qualify.
func dynaSpamCycles(k *kernels.Kernel, cpuPerIter float64) (float64, error) {
	prog, loopStart, err := k.Program()
	if err != nil {
		return 0, err
	}
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	be := accel.M64()
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		return 0, err
	}
	r, err := dynaspam.Map(l.Graph, dynaspam.Default())
	if err != nil {
		return 0, err
	}
	if !r.Qualified {
		return 0, nil
	}
	// Configuration on DynaSpAM is near-free (ns-range, within the
	// pipeline); charge a small fixed mapping window plus the loop.
	const dynaConfig = 200.0
	return dynaConfig + r.LoopCycles(uint64(k.N)), nil
}

// Render prints the figure.
func (r *Figure14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14: speedup vs single OoO core (M-64 with optimizations)\n")
	b.WriteString(fmt.Sprintf("%-12s %10s %14s %10s\n", "benchmark", "M-64", "M-64+iter", "DynaSpAM"))
	for _, row := range r.Rows {
		m64 := fmt.Sprintf("%9.2fx", row.M64Speedup)
		m64i := fmt.Sprintf("%13.2fx", row.M64IterSpeedup)
		if !row.M64Qualified {
			m64 = "       n/q"
			m64i = "           n/q"
		}
		dyn := fmt.Sprintf("%9.2fx", row.DynaSpAMSpeedup)
		if !row.DynaSpAMQualified {
			dyn = "      n/q"
		}
		b.WriteString(fmt.Sprintf("%-12s %s %s %s\n", row.Kernel, m64, m64i, dyn))
	}
	b.WriteString(fmt.Sprintf("%-12s %9.2fx %13.2fx %9.2fx\n",
		"geomean", r.GeomeanM64, r.GeomeanM64Iter, r.GeomeanDyna))
	b.WriteString(fmt.Sprintf("%-12s %9.2fx %13.2fx %9.2fx  (paper)\n",
		"paper", r.PaperM64, r.PaperM64Iter, r.PaperDyna))
	return b.String()
}
