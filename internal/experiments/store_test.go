package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storeKey(data string) string {
	sum := sha256.Sum256([]byte(data))
	return hex.EncodeToString(sum[:])
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := OpenDiskStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	key := storeKey("hello")
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("Get after Put: %q ok=%v err=%v", data, ok, err)
	}
	// Re-Put of an existing content address is a no-op, never a rewrite.
	if err := s.Put(key, []byte("different")); err != nil {
		t.Fatal(err)
	}
	data, _, _ = s.Get(key)
	if !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("re-Put overwrote a content-addressed blob: %q", data)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d err=%v, want 1", n, err)
	}
}

func TestDiskStoreRejectsBadKeys(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("z", 64), // right length, not hex
		strings.Repeat("A", 64), // upper-case hex is not canonical
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a non-sha256 key", key)
		}
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a non-sha256 key", key)
		}
	}
}

func TestDiskStoreLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := storeKey("layout")
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Two-level fan-out: dir/<first two hex chars>/<remaining 62>.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key[2:])); err != nil {
		t.Fatalf("blob not at fan-out path: %v", err)
	}
}
