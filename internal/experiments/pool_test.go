package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRunOrdersResultsByTaskIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		results, err := Run(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(results))
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			if i == 13 || i == 37 {
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 13 failed" {
			t.Fatalf("workers=%d: err = %v, want task 13's error", workers, err)
		}
	}
}

func TestRunCapturesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), workers, 8, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Task != 3 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error = %+v", workers, pe)
		}
	}
}

func TestRunStopsDispatchAfterError(t *testing.T) {
	// Serial mode must stop at the failing task, like the loops it replaces.
	ran := 0
	_, err := Run(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		ran++
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil || ran != 3 {
		t.Fatalf("ran %d tasks (err=%v), want 3", ran, err)
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 4, 10, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEmpty(t *testing.T) {
	results, err := Run(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	})
	if err != nil || results != nil {
		t.Fatalf("got %v, %v", results, err)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if got := SetWorkers(5); got != 3 {
		t.Fatalf("SetWorkers returned %d, want previous value 3", got)
	}
}
