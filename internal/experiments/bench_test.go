package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(metrics ...BenchMetric) *BenchSnapshot {
	return &BenchSnapshot{SchemaVersion: BenchSchemaVersion, Metrics: metrics}
}

// TestCompareBenchInjectedRegression: a synthetic 5% regression in each
// direction-sensitive metric kind must trip the gate under a 2% tolerance,
// and the diff table must name the offending metrics.
func TestCompareBenchInjectedRegression(t *testing.T) {
	baseline := snap(
		BenchMetric{Name: "kernel.nn.m128.total_cycles", Value: 1000},
		BenchMetric{Name: "fig11.geomean_speedup_m128", Value: 2.0, HigherIsBetter: true},
	)
	current := snap(
		BenchMetric{Name: "kernel.nn.m128.total_cycles", Value: 1050}, // +5%: worse
		BenchMetric{Name: "fig11.geomean_speedup_m128", Value: 1.9, HigherIsBetter: true}, // -5%: worse
	)
	diffs, regressed := CompareBench(baseline, current, 0.02)
	if !regressed {
		t.Fatal("5% regressions under 2% tolerance: want regressed=true")
	}
	for _, d := range diffs {
		if !d.Regressed {
			t.Errorf("%s: Regressed=false, want true (Worse=%v)", d.Name, d.Worse)
		}
	}
	table := RenderBenchDiff(diffs, 0.02)
	for _, name := range []string{"kernel.nn.m128.total_cycles", "fig11.geomean_speedup_m128"} {
		if !strings.Contains(table, name) {
			t.Errorf("diff table does not name the offending metric %s:\n%s", name, table)
		}
	}
	if !strings.Contains(table, "REGRESSED") {
		t.Errorf("diff table does not flag the regression:\n%s", table)
	}
}

// TestCompareBenchDirectionAware: the same 5% move is a regression only in
// the metric's bad direction.
func TestCompareBenchDirectionAware(t *testing.T) {
	baseline := snap(
		BenchMetric{Name: "cycles", Value: 1000},
		BenchMetric{Name: "speedup", Value: 2.0, HigherIsBetter: true},
	)
	improved := snap(
		BenchMetric{Name: "cycles", Value: 950},  // -5%: better
		BenchMetric{Name: "speedup", Value: 2.1}, // +5%: better (direction from baseline)
	)
	diffs, regressed := CompareBench(baseline, improved, 0.02)
	if regressed {
		t.Errorf("improvements flagged as regression: %+v", diffs)
	}
	for _, d := range diffs {
		if d.Worse >= 0 {
			t.Errorf("%s: Worse = %v for an improvement, want negative", d.Name, d.Worse)
		}
	}
}

// TestCompareBenchMissingMetric: a metric that vanishes from the current run
// (a kernel silently dropped) is a regression; new metrics are ignored.
func TestCompareBenchMissingMetric(t *testing.T) {
	baseline := snap(BenchMetric{Name: "kernel.fft.cpu1_cycles", Value: 500})
	current := snap(BenchMetric{Name: "kernel.new.cpu1_cycles", Value: 1})
	diffs, regressed := CompareBench(baseline, current, 0.02)
	if !regressed {
		t.Fatal("missing baseline metric must regress the run")
	}
	if len(diffs) != 1 || !diffs[0].Missing || diffs[0].Name != "kernel.fft.cpu1_cycles" {
		t.Fatalf("diffs = %+v, want the single missing baseline metric", diffs)
	}
	if table := RenderBenchDiff(diffs, 0.02); !strings.Contains(table, "missing") {
		t.Errorf("diff table does not call out the missing metric:\n%s", table)
	}
}

// TestCompareBenchWithinTolerance: moves inside the tolerance pass.
func TestCompareBenchWithinTolerance(t *testing.T) {
	baseline := snap(BenchMetric{Name: "cycles", Value: 1000})
	current := snap(BenchMetric{Name: "cycles", Value: 1015}) // +1.5% < 2%
	if _, regressed := CompareBench(baseline, current, 0.02); regressed {
		t.Error("a 1.5% move under 2% tolerance must pass")
	}
}

// TestReadBenchRejectsSchemaMismatch: snapshots from a different schema
// version must be refused, not silently compared.
func TestReadBenchRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "metrics": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("ReadBench(v99) error = %v, want a schema mismatch", err)
	}
}

// TestBenchDeterministic: the snapshot metrics must be byte-identical across
// worker counts (WallSeconds is stamped by the caller and stays zero here).
func TestBenchDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	runTwice(t, "bench", CollectBench, func(s *BenchSnapshot) string {
		return fmt.Sprintf("%d metrics", len(s.Metrics))
	})
}

// TestAttribDeterministic: the suite-wide attribution report — JSON and
// rendered table — must be byte-identical between workers=1 and workers=N.
func TestAttribDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep in -short mode")
	}
	runTwice(t, "attrib", Attrib, (*AttribResult).Render)
}
