package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/mem"
)

// The suite-wide default placement strategy. mesabench/mesasim set it once
// at startup from the -mapper flag; every RunMESA call without an explicit
// MESAOptions.Mapper override picks it up.
var (
	mapperMu      sync.Mutex
	mapperDefault mapping.Strategy = mapping.Default()
)

// SetMapperStrategy installs the default placement strategy for the whole
// experiment suite. A nil strategy restores the built-in default.
func SetMapperStrategy(s mapping.Strategy) {
	mapperMu.Lock()
	defer mapperMu.Unlock()
	if s == nil {
		s = mapping.Default()
	}
	mapperDefault = s
}

// MapperStrategy returns the suite-wide default placement strategy.
func MapperStrategy() mapping.Strategy {
	mapperMu.Lock()
	defer mapperMu.Unlock()
	return mapperDefault
}

// mapperMeasureIters bounds the measured engine run of the mappers ablation;
// 512 iterations is enough for the per-iteration average to converge.
const mapperMeasureIters = 512

// mapperAblationOrder fixes the strategy order of the ablation rows: the
// greedy seed first (every other strategy is compared against it), then
// annealing, attribution-fed congestion-aware re-placement, the modulo
// scheduler, and the attribution-driven auto selector. The registry-
// exhaustiveness test pins this list equal to mapping.Names(), so a new
// strategy cannot register without joining the ablation.
var mapperAblationOrder = []string{"greedy", "greedy+anneal", "congestion", "modulo", "auto"}

// MapperAblationStrategies returns the strategies the mappers ablation
// compares, in row order (exposed for the registry-exhaustiveness test).
func MapperAblationStrategies() []string {
	return append([]string(nil), mapperAblationOrder...)
}

// MapperTag returns the metric-safe short tag for a strategy name
// ("greedy+anneal" contains '+', which stays out of metric keys).
func MapperTag(name string) string {
	switch name {
	case "greedy+anneal":
		return "anneal"
	default:
		return name
	}
}

// MapperCell is one strategy's outcome on one kernel.
type MapperCell struct {
	Strategy       string
	PredictedII    float64 // analytic II bound of the placement (1 tile)
	ModeledIter    float64 // mapper's modeled iteration latency
	MeasuredIter   float64 // measured cycles/iteration on the engine
	BusFallbacks   int
	RefineAccepted int

	// Delegate is the strategy auto selected from the measured attribution
	// (empty for concrete strategies).
	Delegate string
	// Reverted marks an auto cell whose delegated placement measured worse
	// than the greedy seed: the ablation applies the controller's
	// revert-on-regression rule (with zero tolerance) and reports the
	// greedy numbers the controller would have rolled back to.
	Reverted bool
}

// MappersRow compares every registered strategy on one kernel's hot loop.
type MappersRow struct {
	Kernel   string
	OK       bool // hot loop maps under the default options
	Cells    []MapperCell
	Improved bool // a refinement strategy strictly beats the greedy seed
}

// MappersResult is the mapper-strategy ablation across the kernel suite.
type MappersResult struct {
	Rows            []MappersRow
	ImprovedKernels int
}

// Mappers runs every kernel's hot loop through every registered placement
// strategy on M-128 and measures each placement on the accelerator
// engine. The congestion and auto strategies receive the attribution
// counters measured on the greedy placement — the same measure→re-optimize
// feedback the controller applies during iterative optimization — and the
// auto cell additionally applies the controller's revert-on-regression
// rule, so its reported numbers are never worse than the greedy seed.
func Mappers() (*MappersResult, error) {
	ks := kernels.All()
	rows, err := runAll(len(ks), func(i int) (MappersRow, error) {
		return mappersRow(ks[i])
	})
	if err != nil {
		return nil, err
	}
	res := &MappersResult{Rows: rows}
	for _, r := range rows {
		if r.Improved {
			res.ImprovedKernels++
		}
	}
	return res, nil
}

// mappersRow memoizes one kernel's three-strategy comparison (CollectBench
// and the rendered ablation share the simulations).
func mappersRow(k *kernels.Kernel) (MappersRow, error) {
	v, err := memoDo("mappers", k, func(w io.Writer) {
		accel.M128().Fingerprint(w)
		fmt.Fprintf(w, "|mappers|iters%d|", mapperMeasureIters)
		for _, name := range mapperAblationOrder {
			io.WriteString(w, name+"|")
		}
	}, func() (any, error) {
		row, err := mappersRowUncached(k)
		if err != nil {
			return nil, err
		}
		return &row, nil
	})
	if err != nil {
		return MappersRow{}, err
	}
	return *(v.(*MappersRow)), nil
}

func mappersRowUncached(k *kernels.Kernel) (MappersRow, error) {
	be := accel.M128()
	prog, loopStart, err := k.Program()
	if err != nil {
		return MappersRow{}, fmt.Errorf("%s: %w", k.Name, err)
	}
	body, err := regionFor(k)
	if err != nil {
		return MappersRow{}, err
	}
	l, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		return MappersRow{}, fmt.Errorf("%s: %w", k.Name, err)
	}

	// measure runs one placement serially on the engine from fresh seeded
	// state and returns the converged per-iteration cost plus the
	// bottleneck-attribution report of the run.
	measure := func(s *core.SDFG) (float64, *accel.Attribution, error) {
		memory := k.NewMemory(Seed)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		machine, err := runToLoop(prog, memory, loopStart)
		if err != nil {
			return 0, nil, err
		}
		engine, err := accel.NewEngine(be, l.Graph, s.Pos, l.LoopBranch, memory, hier)
		if err != nil {
			return 0, nil, err
		}
		res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{MaxIterations: mapperMeasureIters})
		if err != nil {
			return 0, nil, err
		}
		return res.AvgIterCycles, res.Attrib, nil
	}

	row := MappersRow{Kernel: k.Name}
	var greedyAttrib *accel.Attribution
	for _, name := range mapperAblationOrder {
		strat, err := mapping.ByName(name)
		if err != nil {
			return MappersRow{}, err
		}
		o := core.DefaultMapperOptions()
		if name == "congestion" || name == "auto" {
			// Feed the attribution measured on the greedy placement — this
			// is what distinguishes these strategies from their greedy
			// fallback.
			o.Attrib = greedyAttrib
		}
		s, stats, err := strat.Map(l, be, o)
		if err != nil {
			if name == mapperAblationOrder[0] {
				return row, nil // kernel does not map; report OK=false
			}
			return MappersRow{}, fmt.Errorf("%s/%s: %w", k.Name, name, err)
		}
		avg, attrib, err := measure(s)
		if err != nil {
			return MappersRow{}, fmt.Errorf("%s/%s: %w", k.Name, name, err)
		}
		if name == mapperAblationOrder[0] {
			greedyAttrib = attrib
		}
		cell := MapperCell{
			Strategy:       name,
			PredictedII:    s.PredictedII(1),
			ModeledIter:    s.Evaluate().Total,
			MeasuredIter:   avg,
			BusFallbacks:   stats.BusFallbacks,
			RefineAccepted: stats.RefineAccepted,
			Delegate:       stats.Delegate,
		}
		if name == "auto" {
			// The controller adopts an auto remap only if it predicts an
			// improvement and rolls it back if it measures worse; mirror
			// that guard so the ablation reports what a controller run
			// would actually keep.
			if g := row.Cells[0]; avg > g.MeasuredIter+1e-9 {
				cell.PredictedII = g.PredictedII
				cell.ModeledIter = g.ModeledIter
				cell.MeasuredIter = g.MeasuredIter
				cell.BusFallbacks = g.BusFallbacks
				cell.RefineAccepted = g.RefineAccepted
				cell.Reverted = true
			}
		}
		row.Cells = append(row.Cells, cell)
	}
	row.OK = true

	// A refinement strategy "improves" a kernel when it strictly lowers the
	// analytic II bound or the measured per-iteration cost vs the greedy
	// seed (ties are not improvements).
	const eps = 1e-9
	g := row.Cells[0]
	for _, c := range row.Cells[1:] {
		if c.PredictedII < g.PredictedII-eps || c.MeasuredIter < g.MeasuredIter-eps {
			row.Improved = true
		}
	}
	return row, nil
}

// Render formats the ablation as a table.
func (r *MappersResult) Render() string {
	var b strings.Builder
	b.WriteString("Mapper strategy ablation: greedy seed vs refinement (M-128, serial, " )
	fmt.Fprintf(&b, "%d measured iterations)\n", mapperMeasureIters)
	b.WriteString("congestion and auto re-place with the attribution counters measured on the greedy placement;\n")
	b.WriteString("auto:<delegate> names the selected strategy, (rev) a delegation reverted for measuring worse\n")
	fmt.Fprintf(&b, "%-12s %-20s %8s %11s %13s %5s %9s\n",
		"kernel", "strategy", "pred II", "model c/i", "measured c/i", "bus", "accepted")
	for _, row := range r.Rows {
		if !row.OK {
			fmt.Fprintf(&b, "%-12s does not map under the default window\n", row.Kernel)
			continue
		}
		name := row.Kernel
		if row.Improved {
			name += "*"
		}
		for i, c := range row.Cells {
			label := name
			if i > 0 {
				label = ""
			}
			strat := c.Strategy
			if c.Delegate != "" {
				strat += ":" + c.Delegate
			}
			if c.Reverted {
				strat += "(rev)"
			}
			fmt.Fprintf(&b, "%-12s %-20s %8.2f %11.1f %13.2f %5d %9d\n",
				label, strat, c.PredictedII, c.ModeledIter, c.MeasuredIter,
				c.BusFallbacks, c.RefineAccepted)
		}
	}
	fmt.Fprintf(&b, "\n* kernels where a refinement strategy strictly improves the greedy seed: %d/%d\n",
		r.ImprovedKernels, len(r.Rows))
	return b.String()
}
