package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// Figure11Row is one benchmark's result: performance and energy efficiency
// of M-128 and M-512 relative to the 16-core CPU baseline.
type Figure11Row struct {
	Kernel string

	CPUCycles float64
	CPUEnergy float64

	M128Speedup   float64
	M512Speedup   float64
	M128EnergyEff float64
	M512EnergyEff float64

	M128Qualified bool
	M512Qualified bool
}

// Figure11Result reproduces Figure 11: normalized performance and energy
// efficiency of MESA (M-128, M-512) against the 16-core out-of-order CPU
// across the Rodinia benchmarks.
type Figure11Result struct {
	Rows []Figure11Row

	GeomeanSpeedupM128 float64
	GeomeanSpeedupM512 float64
	GeomeanEnergyM128  float64
	GeomeanEnergyM512  float64

	// Paper-reported averages for comparison.
	PaperSpeedupM128 float64
	PaperSpeedupM512 float64
	PaperEnergyM128  float64
	PaperEnergyM512  float64
}

// Figure11 runs the experiment. The per-kernel measurements are independent
// seeded simulations, so they fan out over the sweep worker pool; results
// are reduced in kernel order, making the figure identical for any worker
// count.
func Figure11() (*Figure11Result, error) {
	res := &Figure11Result{
		PaperSpeedupM128: 1.33, PaperSpeedupM512: 1.81,
		PaperEnergyM128: 1.86, PaperEnergyM512: 1.92,
	}
	ks := kernels.All()
	rows, err := runAll(len(ks), func(i int) (Figure11Row, error) {
		k := ks[i]
		mc := cpu.DefaultMulticore() // private: Config carries an FU map
		single, err := TimeSingleCore(k, mc.Core)
		if err != nil {
			return Figure11Row{}, err
		}
		cpuPerIter := single.Cycles / float64(k.N)
		multi, err := TimeMulticore(k, mc)
		if err != nil {
			return Figure11Row{}, err
		}
		m128, err := RunMESA(k, accel.M128(), cpuPerIter, MESAOptions{})
		if err != nil {
			return Figure11Row{}, err
		}
		m512, err := RunMESA(k, accel.M512(), cpuPerIter, MESAOptions{})
		if err != nil {
			return Figure11Row{}, err
		}
		row := Figure11Row{
			Kernel:        k.Name,
			CPUCycles:     multi.Cycles,
			CPUEnergy:     multi.EnergyNJ,
			M128Qualified: m128.Qualified,
			M512Qualified: m512.Qualified,
		}
		row.M128Speedup = multi.Cycles / m128.TotalCycles
		row.M512Speedup = multi.Cycles / m512.TotalCycles
		if m128.Qualified {
			row.M128EnergyEff = multi.EnergyNJ / m128.EnergyNJ
		} else {
			row.M128EnergyEff = multi.EnergyNJ / single.EnergyNJ
		}
		if m512.Qualified {
			row.M512EnergyEff = multi.EnergyNJ / m512.EnergyNJ
		} else {
			row.M512EnergyEff = multi.EnergyNJ / single.EnergyNJ
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var sp128, sp512, ee128, ee512 []float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		sp128 = append(sp128, row.M128Speedup)
		sp512 = append(sp512, row.M512Speedup)
		ee128 = append(ee128, row.M128EnergyEff)
		ee512 = append(ee512, row.M512EnergyEff)
	}
	res.GeomeanSpeedupM128 = geomean(sp128)
	res.GeomeanSpeedupM512 = geomean(sp512)
	res.GeomeanEnergyM128 = geomean(ee128)
	res.GeomeanEnergyM512 = geomean(ee512)
	return res, nil
}

// Render prints the figure as a table.
func (r *Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: performance and energy efficiency vs 16-core OoO CPU\n")
	b.WriteString(fmt.Sprintf("%-14s %10s %10s %10s %10s\n",
		"benchmark", "M128 perf", "M512 perf", "M128 e.eff", "M512 e.eff"))
	for _, row := range r.Rows {
		note := ""
		if !row.M128Qualified {
			note = "  (not accelerated on M-128)"
		}
		b.WriteString(fmt.Sprintf("%-14s %9.2fx %9.2fx %9.2fx %9.2fx%s\n",
			row.Kernel, row.M128Speedup, row.M512Speedup,
			row.M128EnergyEff, row.M512EnergyEff, note))
	}
	b.WriteString(fmt.Sprintf("%-14s %9.2fx %9.2fx %9.2fx %9.2fx\n",
		"geomean", r.GeomeanSpeedupM128, r.GeomeanSpeedupM512,
		r.GeomeanEnergyM128, r.GeomeanEnergyM512))
	b.WriteString(fmt.Sprintf("%-14s %9.2fx %9.2fx %9.2fx %9.2fx\n",
		"paper avg", r.PaperSpeedupM128, r.PaperSpeedupM512,
		r.PaperEnergyM128, r.PaperEnergyM512))
	return b.String()
}
