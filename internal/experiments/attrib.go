package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/kernels"
)

// AttribRow is one kernel's bottleneck attribution on the M-128 backend.
type AttribRow struct {
	Kernel    string             `json:"kernel"`
	Qualified bool               `json:"qualified"`
	Attrib    *accel.Attribution `json:"attrib,omitempty"`
}

// AttribResult is the per-kernel bottleneck attribution sweep: the
// measure → attribute half of the paper's feedback loop, surfaced for the
// whole suite. Each row carries all four candidate initiation-interval
// bounds, the recurrence contributors, and the resource heatmaps of the
// final engine configuration.
type AttribResult struct {
	Rows []AttribRow `json:"rows"`
}

// Attrib runs every kernel under a MESA controller on M-128 and collects
// the bottleneck attribution of its accelerated region. The per-kernel runs
// are independent seeded simulations, so they fan out over the sweep worker
// pool; rows are reduced in kernel order, making the result byte-identical
// for any worker count.
func Attrib() (*AttribResult, error) {
	ks := kernels.All()
	rows, err := runAll(len(ks), func(i int) (AttribRow, error) {
		k := ks[i]
		run, err := RunMESA(k, accel.M128(), 0, MESAOptions{})
		if err != nil {
			return AttribRow{}, err
		}
		row := AttribRow{Kernel: k.Name, Qualified: run.Qualified}
		if run.Qualified {
			row.Attrib = run.Region.Attrib
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AttribResult{Rows: rows}, nil
}

// Render prints the suite-wide attribution: one summary line per kernel
// followed by the full per-kernel report.
func (r *AttribResult) Render() string {
	var b strings.Builder
	b.WriteString("Bottleneck attribution (M-128): all four II bounds per kernel\n")
	b.WriteString(fmt.Sprintf("%-14s %-10s %10s %10s %10s %10s %10s\n",
		"kernel", "bound", "II", "dep", "memports", "noc", "timeshare"))
	for _, row := range r.Rows {
		if !row.Qualified {
			b.WriteString(fmt.Sprintf("%-14s %-10s (not accelerated)\n", row.Kernel, "-"))
			continue
		}
		a := row.Attrib
		ii := func(name string) float64 {
			for _, c := range a.Bounds {
				if c.Name == name {
					return c.II
				}
			}
			return 0
		}
		b.WriteString(fmt.Sprintf("%-14s %-10s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.Kernel, a.Chosen, a.II,
			ii("dependence"), ii("memports"), ii("noc"), ii("timeshare")))
	}
	b.WriteString("\nper-kernel detail:\n")
	for _, row := range r.Rows {
		if !row.Qualified {
			continue
		}
		b.WriteString(fmt.Sprintf("--- %s ---\n%s", row.Kernel, row.Attrib.Render()))
	}
	return b.String()
}
