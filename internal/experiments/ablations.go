package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/asm"
	"mesa/internal/core"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/noc"
)

// The ablation studies quantify the design choices DESIGN.md calls out:
// the fixed candidate-window size of Algorithm 1 (a hardware cost/quality
// trade), the free-neighborhood tie-breaking rule, static store-to-load
// forwarding, the memory-system optimizations (§4.2 prefetch and
// vectorization), and the backend interconnect. Each returns geomean
// metrics across the kernel suite.

// regionFor extracts a kernel's hot-loop body.
func regionFor(k *kernels.Kernel) ([]isa.Inst, error) {
	prog, loopStart, err := k.Program()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	return prog.Slice(loopStart, end), nil
}

// mapOutcome is one kernel's mapping result inside an ablation sweep.
type mapOutcome struct {
	ok    bool // mapping succeeded (ablations skip kernels that do not map)
	lat   float64
	stats core.MapStats
}

// mapSuite maps every kernel's hot loop onto the backend with the given
// mapper options, fanned out over the sweep worker pool. Each task builds a
// private mapper (Mapper carries probe state) and LDFG.
func mapSuite(opts core.MapperOptions, be *accel.Config) ([]mapOutcome, error) {
	ks := kernels.All()
	return runAll(len(ks), func(i int) (mapOutcome, error) {
		body, err := regionFor(ks[i])
		if err != nil {
			return mapOutcome{}, err
		}
		l, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			return mapOutcome{}, err
		}
		s, stats, err := core.NewMapper(opts).Map(l, be)
		if err != nil {
			return mapOutcome{}, nil // kernel does not map under this config
		}
		return mapOutcome{ok: true, lat: s.Evaluate().Total, stats: *stats}, nil
	})
}

// WindowAblationRow is one candidate-window configuration.
type WindowAblationRow struct {
	Name               string
	WindowRows, Cols   int
	GeomeanModeledIter float64 // modeled iteration latency across kernels
	AvgCandidates      float64 // candidates scanned per instruction (hardware cost)
	AvgReduction       float64 // reduction-tree cycles per instruction
	BusFallbacks       int
}

// WindowAblation sweeps the mapper's fixed candidate-matrix dimensions. The
// paper fixes 4×8 "due to constraints"; this quantifies the trade: larger
// windows scan more candidates (more reduction cycles in the imap FSM) for
// diminishing placement-quality returns.
func WindowAblation() ([]WindowAblationRow, error) {
	configs := []struct {
		name string
		r, c int
	}{
		{"2x4", 2, 4},
		{"4x8 (paper)", 4, 8},
		{"8x8", 8, 8},
		{"16x8 (full column)", 16, 8},
	}
	be := accel.M128()
	var rows []WindowAblationRow
	for _, cfg := range configs {
		opts := core.DefaultMapperOptions()
		opts.WindowRows, opts.WindowCols = cfg.r, cfg.c
		outcomes, err := mapSuite(opts, be)
		if err != nil {
			return nil, err
		}
		var lats []float64
		var cand, red, insts, bus int
		for _, o := range outcomes {
			if !o.ok {
				continue
			}
			lats = append(lats, o.lat)
			cand += o.stats.CandidatesScanned
			red += o.stats.ReductionCycles
			insts += o.stats.Nodes
			bus += o.stats.BusFallbacks
		}
		rows = append(rows, WindowAblationRow{
			Name: cfg.name, WindowRows: cfg.r, Cols: cfg.c,
			GeomeanModeledIter: geomean(lats),
			AvgCandidates:      float64(cand) / float64(insts),
			AvgReduction:       float64(red) / float64(insts),
			BusFallbacks:       bus,
		})
	}
	return rows, nil
}

// TieBreakAblationResult compares the free-neighborhood tie-break on/off.
type TieBreakAblationResult struct {
	WithGeomean, WithoutGeomean   float64
	WithBusFalls, WithoutBusFalls int
}

// TieBreakAblation measures the tie-breaking rule's effect.
func TieBreakAblation() (*TieBreakAblationResult, error) {
	be := accel.M128()
	res := &TieBreakAblationResult{}
	for _, disable := range []bool{false, true} {
		opts := core.DefaultMapperOptions()
		opts.DisableTieBreak = disable
		outcomes, err := mapSuite(opts, be)
		if err != nil {
			return nil, err
		}
		var lats []float64
		bus := 0
		for _, o := range outcomes {
			if !o.ok {
				continue
			}
			lats = append(lats, o.lat)
			bus += o.stats.BusFallbacks
		}
		if disable {
			res.WithoutGeomean, res.WithoutBusFalls = geomean(lats), bus
		} else {
			res.WithGeomean, res.WithBusFalls = geomean(lats), bus
		}
	}
	return res, nil
}

// MemOptAblationRow is one memory-optimization configuration measured
// end-to-end (controller + accelerator execution).
type MemOptAblationRow struct {
	Name            string
	GeomeanSpeedup  float64 // vs the all-off configuration
	GeomeanIterLat  float64
	TotalPrefetches uint64
	TotalForwarded  uint64
	TotalCoalesced  uint64
}

// MemOptAblation toggles the §4.2 memory optimizations — store-to-load
// forwarding, strided prefetch, vectorization — and measures accelerated
// per-iteration latency across a memory-sensitive kernel subset.
func MemOptAblation() ([]MemOptAblationRow, error) {
	subset := []string{"nn", "hotspot", "srad", "kmeans", "backprop", "hotspot3d"}
	type knobs struct {
		name                string
		forwarding          bool
		prefetch, vectorize bool
	}
	configs := []knobs{
		{"none", false, false, false},
		{"+forwarding", true, false, false},
		{"+prefetch", true, true, false},
		{"+vectorization (all)", true, true, true},
	}
	var baseline []float64
	var rows []MemOptAblationRow
	for ci, cfg := range configs {
		type kernelRun struct {
			total float64
			stats regionStats
		}
		runs, err := runAll(len(subset), func(i int) (kernelRun, error) {
			k, err := kernels.ByName(subset[i])
			if err != nil {
				return kernelRun{}, err
			}
			be := accel.M128()
			be.EnablePrefetch = cfg.prefetch
			be.EnableVectorization = cfg.vectorize

			total, stats, err := runRegionSerial(k, be, cfg.forwarding)
			if err != nil {
				return kernelRun{}, err
			}
			return kernelRun{total: total, stats: stats}, nil
		})
		if err != nil {
			return nil, err
		}
		var totals []float64
		row := MemOptAblationRow{Name: cfg.name}
		for _, r := range runs {
			totals = append(totals, r.total)
			row.TotalPrefetches += r.stats.Prefetches
			row.TotalForwarded += r.stats.Forwarded + uint64(r.stats.StaticFwd)
			row.TotalCoalesced += r.stats.Coalesced
		}
		row.GeomeanIterLat = geomean(totals)
		if ci == 0 {
			baseline = totals
		}
		var ratios []float64
		for i := range totals {
			ratios = append(ratios, baseline[i]/totals[i])
		}
		row.GeomeanSpeedup = geomean(ratios)
		rows = append(rows, row)
	}
	return rows, nil
}

// regionStats carries the memory-behaviour counters of a run.
type regionStats struct {
	Prefetches, Forwarded, Coalesced uint64
	StaticFwd                        int
}

// runRegionSerial executes a kernel's hot loop serially on the accelerator
// with explicit LDFG options and returns the average iteration latency.
func runRegionSerial(k *kernels.Kernel, be *accel.Config, forwarding bool) (float64, regionStats, error) {
	prog, loopStart, err := k.Program()
	if err != nil {
		return 0, regionStats{}, err
	}
	body, err := regionFor(k)
	if err != nil {
		return 0, regionStats{}, err
	}
	l, err := core.BuildLDFGOpts(body, be.EstimateLat, core.LDFGOptions{DisableForwarding: !forwarding})
	if err != nil {
		return 0, regionStats{}, err
	}
	s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
	if err != nil {
		return 0, regionStats{}, err
	}
	memory := k.NewMemory(Seed)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	machine, err := runToLoop(prog, memory, loopStart)
	if err != nil {
		return 0, regionStats{}, err
	}
	engine, err := accel.NewEngine(be, l.Graph, s.Pos, l.LoopBranch, memory, hier)
	if err != nil {
		return 0, regionStats{}, err
	}
	res, err := engine.RunLoop(&machine.Regs, accel.LoopOptions{MaxIterations: 1024})
	if err != nil {
		return 0, regionStats{}, err
	}
	c := engine.Counters()
	return res.AvgIterCycles, regionStats{
		Prefetches: c.Prefetches, Forwarded: c.Forwarded,
		Coalesced: c.Coalesced, StaticFwd: l.Forwarded,
	}, nil
}

// ForwardingAblationResult measures static store-to-load forwarding on a
// loop that reloads a just-stored address (the pattern §4.2 eliminates).
// The Rodinia loop bodies rarely reload a stored address within one
// iteration, so this uses a synthetic in-place-update loop.
type ForwardingAblationResult struct {
	WithIterLat, WithoutIterLat float64
	LoadsElided                 int
}

// ForwardingAblation builds `t[i] = f(t[i]); u[i] = g(t[i])` — store then
// exact reload — and compares per-iteration latency with forwarding on/off.
func ForwardingAblation() (*ForwardingAblationResult, error) {
	build := func() []isa.Inst {
		b := asm.NewBuilder(kernels.CodeBase)
		b.Label("loop")
		b.FLW(isa.FPReg(0), 0, isa.RegA0)
		b.FADD(isa.FPReg(1), isa.FPReg(0), isa.FPReg(0))
		b.FSW(isa.FPReg(1), 0, isa.RegA1)
		b.FLW(isa.FPReg(2), 0, isa.RegA1) // exact reload: forwarding target
		b.FMUL(isa.FPReg(3), isa.FPReg(2), isa.FPReg(2))
		b.FSW(isa.FPReg(3), 0, isa.RegA2)
		b.ADDI(isa.RegA0, isa.RegA0, 4)
		b.ADDI(isa.RegA1, isa.RegA1, 4)
		b.ADDI(isa.RegA2, isa.RegA2, 4)
		b.ADDI(isa.RegT0, isa.RegT0, 1)
		b.BLT(isa.RegT0, isa.RegT1, "loop")
		b.ECALL()
		p := b.MustProgram()
		return p.Slice(p.Symbols["loop"], p.Symbols["loop"]+4*11)
	}
	be := accel.M128()
	res := &ForwardingAblationResult{}
	for _, fwd := range []bool{true, false} {
		l, err := core.BuildLDFGOpts(build(), be.EstimateLat, core.LDFGOptions{DisableForwarding: !fwd})
		if err != nil {
			return nil, err
		}
		s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
		if err != nil {
			return nil, err
		}
		memory := mem.NewMemory()
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		engine, err := accel.NewEngine(be, l.Graph, s.Pos, l.LoopBranch, memory, hier)
		if err != nil {
			return nil, err
		}
		var regs [isa.NumRegs]uint32
		regs[isa.RegA0] = kernels.ArrA
		regs[isa.RegA1] = kernels.ArrB
		regs[isa.RegA2] = kernels.ArrC
		regs[isa.RegT1] = 512
		r, err := engine.RunLoop(&regs, accel.LoopOptions{})
		if err != nil {
			return nil, err
		}
		if fwd {
			res.WithIterLat = r.AvgIterCycles
			res.LoadsElided = l.Forwarded
		} else {
			res.WithoutIterLat = r.AvgIterCycles
		}
	}
	return res, nil
}

// InterconnectAblationRow compares backend interconnects.
type InterconnectAblationRow struct {
	Name               string
	GeomeanModeledIter float64
	BusFallbacks       int
}

// InterconnectAblation maps the suite onto M-128 variants with different
// networks, demonstrating MESA's backend-agnostic mapping (§3.3).
func InterconnectAblation() ([]InterconnectAblationRow, error) {
	nets := []noc.Interconnect{
		noc.DefaultHalfRing(), noc.Mesh{}, noc.DefaultRowSlice(),
	}
	var rows []InterconnectAblationRow
	for _, ic := range nets {
		be := accel.M128()
		be.Interconnect = ic
		outcomes, err := mapSuite(core.DefaultMapperOptions(), be)
		if err != nil {
			return nil, err
		}
		var lats []float64
		bus := 0
		for _, o := range outcomes {
			if !o.ok {
				continue
			}
			lats = append(lats, o.lat)
			bus += o.stats.BusFallbacks
		}
		rows = append(rows, InterconnectAblationRow{
			Name: ic.Name(), GeomeanModeledIter: geomean(lats), BusFallbacks: bus,
		})
	}
	return rows, nil
}

// TimeShareAblationResult measures the time-multiplexing extension (the
// paper's stated future work): srad on M-64, unmappable spatially, runs
// with 2-way sharing — slower per iteration than M-128's spatial mapping
// but far better than staying on the CPU.
type TimeShareAblationResult struct {
	M64SharedII   float64 // srad II on M-64 with 2-way sharing
	M128SpatialII float64 // srad II on M-128, pure spatial
	M64Qualified  bool
}

// TimeShareAblation runs the extension study.
func TimeShareAblation() (*TimeShareAblationResult, error) {
	k, err := kernels.ByName("srad")
	if err != nil {
		return nil, err
	}
	prog, loopStart, err := k.Program()
	if err != nil {
		return nil, err
	}
	res := &TimeShareAblationResult{}

	run := func(be *accel.Config, share int) (float64, bool, error) {
		opts := core.DefaultOptions(be)
		opts.MapperOpts.TimeShare = share
		opts.Detector.MaxInsts = 0
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
		ctl := core.NewController(opts)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		report, _, err := ctl.Run(prog, k.NewMemory(Seed), hier, MaxSteps)
		if err != nil {
			return 0, false, err
		}
		if len(report.Regions) == 0 {
			return 0, false, nil
		}
		return report.Regions[0].FinalII, true, nil
	}

	ii, ok, err := run(accel.M64(), 2)
	if err != nil {
		return nil, err
	}
	res.M64SharedII, res.M64Qualified = ii, ok
	ii, _, err = run(accel.M128(), 1)
	if err != nil {
		return nil, err
	}
	res.M128SpatialII = ii
	return res, nil
}

// RenderAblations runs every ablation and formats the results.
func RenderAblations() (string, error) {
	var b strings.Builder

	win, err := WindowAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("Ablation A: candidate-window size (Algorithm 1 hardware cost vs quality)\n")
	b.WriteString(fmt.Sprintf("%-20s %14s %12s %12s %6s\n",
		"window", "geo iter lat", "cand/inst", "reduce/inst", "bus"))
	for _, r := range win {
		b.WriteString(fmt.Sprintf("%-20s %14.1f %12.1f %12.1f %6d\n",
			r.Name, r.GeomeanModeledIter, r.AvgCandidates, r.AvgReduction, r.BusFallbacks))
	}

	tie, err := TieBreakAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("\nAblation B: free-neighborhood tie-break\n")
	b.WriteString(fmt.Sprintf("  with:    geo iter lat %.1f, bus fallbacks %d\n", tie.WithGeomean, tie.WithBusFalls))
	b.WriteString(fmt.Sprintf("  without: geo iter lat %.1f, bus fallbacks %d\n", tie.WithoutGeomean, tie.WithoutBusFalls))

	mo, err := MemOptAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("\nAblation C: memory optimizations (§4.2), serial iteration latency\n")
	b.WriteString(fmt.Sprintf("%-22s %10s %12s %10s %10s %10s\n",
		"config", "speedup", "geo iterlat", "prefetch", "forwarded", "coalesced"))
	for _, r := range mo {
		b.WriteString(fmt.Sprintf("%-22s %9.2fx %12.1f %10d %10d %10d\n",
			r.Name, r.GeomeanSpeedup, r.GeomeanIterLat,
			r.TotalPrefetches, r.TotalForwarded, r.TotalCoalesced))
	}

	fa, err := ForwardingAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("\nAblation C2: store-to-load forwarding on a store-then-reload loop\n")
	b.WriteString(fmt.Sprintf("  with forwarding:    %.1f cycles/iter (%d loads elided)\n", fa.WithIterLat, fa.LoadsElided))
	b.WriteString(fmt.Sprintf("  without forwarding: %.1f cycles/iter\n", fa.WithoutIterLat))

	ic, err := InterconnectAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("\nAblation D: backend interconnect (same Algorithm 1, different l(C))\n")
	for _, r := range ic {
		b.WriteString(fmt.Sprintf("  %-10s geo iter lat %.1f, bus fallbacks %d\n",
			r.Name, r.GeomeanModeledIter, r.BusFallbacks))
	}

	ts, err := TimeShareAblation()
	if err != nil {
		return "", err
	}
	b.WriteString("\nAblation E: time-multiplexing extension (paper's future work)\n")
	b.WriteString(fmt.Sprintf("  srad on M-64, 2-way shared: qualified=%v, II %.2f cycles/iter\n",
		ts.M64Qualified, ts.M64SharedII))
	b.WriteString(fmt.Sprintf("  srad on M-128, pure spatial: II %.2f cycles/iter\n", ts.M128SpatialII))
	b.WriteString("  (without the extension, srad cannot map on M-64 at all)\n")
	return b.String(), nil
}
