package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/genkern"
	"mesa/internal/isa"
)

// FuzzOptions configures a differential fuzzing sweep.
type FuzzOptions struct {
	Seeds          int // number of sequential seeds, starting at FirstSeed
	FirstSeed      int64
	Mix            genkern.Mix
	Engines        []genkern.EngineConfig // nil: every strategy × both backends
	MaxSteps       uint64                 // per-engine step bound (0: default)
	Minimize       bool                   // ddmin failing programs
	MinimizeChecks int                    // predicate budget per minimization (0: default)
}

// FuzzResult is the outcome for one seed. The sweep never aborts on a
// mismatch: every seed reports, and the summary aggregates.
type FuzzResult struct {
	Seed           int64
	Insts          int
	Accelerated    int    // engine configs that accelerated ≥1 region
	Engines        int    // engine configs checked
	Mismatch       string // divergence description, "" when clean
	Minimized      string // dump of the ddmin-reduced failing program
	MinimizedInsts int
}

// FuzzSummary aggregates a sweep. Results are seed-ordered regardless of
// worker count, so the rendered report is byte-identical across -parallel
// settings.
type FuzzSummary struct {
	Mix        string
	Engines    []string
	Results    []FuzzResult
	Mismatches int
}

// FuzzSweep generates Seeds programs and differentially checks each across
// the configured engines, fanning seeds out over the shared worker pool.
func FuzzSweep(opts FuzzOptions) (*FuzzSummary, error) {
	if opts.Seeds <= 0 {
		return nil, fmt.Errorf("experiments: fuzz sweep needs a positive seed count")
	}
	engines := opts.Engines
	if engines == nil {
		engines = genkern.AllEngineConfigs()
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}

	results, err := runAll(opts.Seeds, func(i int) (FuzzResult, error) {
		seed := opts.FirstSeed + int64(i)
		g, err := genkern.Generate(seed, opts.Mix)
		if err != nil {
			return FuzzResult{}, err
		}
		res := FuzzResult{Seed: seed, Insts: len(g.Prog.Insts)}
		rep, err := genkern.CheckProgram(g.Prog, g.NewMemory, engines, maxSteps)
		if err == nil {
			res.Engines = len(rep.Engines)
			for _, ok := range rep.Accelerated {
				if ok {
					res.Accelerated++
				}
			}
			return res, nil
		}
		mm, ok := err.(*genkern.MismatchError)
		if !ok {
			// Harness failure (e.g. an engine refused the program) — a bug in
			// its own right, surfaced as a sweep error rather than a mismatch.
			return FuzzResult{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		res.Mismatch = mm.Error()
		if opts.Minimize {
			small := genkern.Minimize(g.Prog, func(p *isa.Program) bool {
				_, cerr := genkern.CheckProgram(p, g.NewMemory, engines, maxSteps)
				_, isMM := cerr.(*genkern.MismatchError)
				return isMM
			}, opts.MinimizeChecks)
			res.Minimized = genkern.DumpProgram(small)
			res.MinimizedInsts = len(small.Insts)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	sum := &FuzzSummary{Mix: opts.Mix.String()}
	for _, ec := range engines {
		sum.Engines = append(sum.Engines, ec.Name)
	}
	sum.Results = results
	for _, r := range results {
		if r.Mismatch != "" {
			sum.Mismatches++
		}
	}
	return sum, nil
}

// RenderFuzz formats a sweep summary deterministically: aggregate counts,
// then one line per mismatching seed with its (optionally minimized)
// reproduction.
func RenderFuzz(s *FuzzSummary) string {
	var sb strings.Builder
	totalInsts, accelerated := 0, 0
	for _, r := range s.Results {
		totalInsts += r.Insts
		if r.Accelerated > 0 {
			accelerated++
		}
	}
	fmt.Fprintf(&sb, "fuzz: %d seeds, mix %s\n", len(s.Results), s.Mix)
	fmt.Fprintf(&sb, "fuzz: engines: cpu, %s\n", strings.Join(s.Engines, ", "))
	fmt.Fprintf(&sb, "fuzz: %d insts generated, %d/%d seeds accelerated on ≥1 engine\n",
		totalInsts, accelerated, len(s.Results))
	if s.Mismatches == 0 {
		fmt.Fprintf(&sb, "fuzz: PASS — no divergence on any seed\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "fuzz: FAIL — %d/%d seeds diverged\n", s.Mismatches, len(s.Results))
	for _, r := range s.Results {
		if r.Mismatch == "" {
			continue
		}
		fmt.Fprintf(&sb, "\nseed %d (%d insts): %s\n", r.Seed, r.Insts, r.Mismatch)
		if r.Minimized != "" {
			fmt.Fprintf(&sb, "minimized to %d insts:\n%s", r.MinimizedInsts, r.Minimized)
		}
	}
	return sb.String()
}
