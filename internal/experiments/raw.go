package experiments

import (
	"fmt"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/isa"
	"mesa/internal/mapping"
	"mesa/internal/mem"
)

// Raw-program entry points: mesad accepts arbitrary RV32IMF program words,
// not just named kernels. These run over a zeroed memory image (a raw
// program carries no data generator) and share the simulation-result cache
// with the kernel paths — keys are the program's content hash plus the
// configuration fingerprint, so repeated and concurrent requests for the
// same program coalesce into one simulation.

// TimeProgramSingleCore times an arbitrary program on one out-of-order core.
// The result is memoized: treat it as read-only.
func TimeProgramSingleCore(prog *isa.Program, cfg cpu.Config) (*cpu.Result, error) {
	v, err := memoDoProgram("raw.cpu1", prog, cfg.Fingerprint, func() (any, error) {
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		res, err := cpu.Time(cfg, prog, mem.NewMemory(), hier, MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("raw program: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cpu.Result), nil
}

// RunProgramMESA runs an arbitrary program under a MESA controller on the
// given backend with the given placement strategy (nil selects the
// suite-wide default). There is no output verification — a raw program has
// no oracle — but detection, mapping, offload, and attribution behave
// exactly as for kernels. The shared Report must be treated as read-only.
func RunProgramMESA(prog *isa.Program, be *accel.Config, strat mapping.Strategy) (*core.Report, error) {
	opts := core.DefaultOptions(be)
	if strat != nil {
		opts.Mapper = strat
	} else {
		opts.Mapper = MapperStrategy()
	}
	v, err := memoDoProgram("raw.mesa", prog, opts.Fingerprint, func() (any, error) {
		ctl := core.NewController(opts)
		report, _, err := ctl.Run(prog, mem.NewMemory(), mem.MustHierarchy(mem.DefaultHierarchy()), MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("raw program on %s: %w", be.Name, err)
		}
		return report, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Report), nil
}
