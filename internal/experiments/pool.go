package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mesa/internal/obs"
)

// The experiment sweeps are embarrassingly parallel: every timing run is an
// independent, seeded, deterministic simulation that builds its own memory,
// hierarchy, and engine state. Run fans such tasks out over a bounded worker
// pool while keeping results (and errors) deterministic, so workers=1 and
// workers=N produce byte-identical figures.

// defaultWorkers is the pool width used by the Figure*/Table*/ablation
// functions. mesabench sets it from its -parallel flag; tests may override
// it to exercise both serial and parallel paths.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetWorkers sets the worker count used by the experiment sweeps. n < 1
// selects runtime.GOMAXPROCS(0). It returns the previous setting.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(defaultWorkers.Swap(int32(n)))
}

// Workers returns the current sweep worker count.
func Workers() int { return int(defaultWorkers.Load()) }

// Pool statistics for the unified stats report. Only worker-count-invariant
// values are kept: every successful sweep executes the same tasks whether it
// ran on 1 worker or N, so the snapshot stays byte-identical across
// -parallel settings (the ROADMAP determinism check).
var poolStats struct {
	fanouts atomic.Uint64 // Run invocations
	tasks   atomic.Uint64 // tasks executed
	panics  atomic.Uint64 // tasks recovered from a panic
}

// PoolMetrics snapshots the worker pool's counters.
func PoolMetrics() []obs.Metric {
	return []obs.Metric{
		obs.Count("fanouts", poolStats.fanouts.Load()),
		obs.Count("tasks", poolStats.tasks.Load()),
		obs.Count("panics", poolStats.panics.Load()),
	}
}

// ResetPoolStats clears the pool counters (tests snapshotting deltas).
func ResetPoolStats() {
	poolStats.fanouts.Store(0)
	poolStats.tasks.Store(0)
	poolStats.panics.Store(0)
}

// PanicError is a task panic converted into an error by Run.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v\n%s", e.Task, e.Value, e.Stack)
}

// Run executes n independent tasks on at most workers goroutines and
// returns their results ordered by task index — results[i] is task(i)
// regardless of completion order, so reductions over the slice (appends,
// geomeans) are identical for any worker count.
//
// Error handling is deterministic too: if any tasks fail, Run returns the
// error of the lowest-indexed failing task (the one a serial loop would
// have hit first) and cancels the context passed to still-running tasks.
// A panicking task is captured as a *PanicError instead of tearing down
// the process. workers < 1 selects runtime.GOMAXPROCS(0); workers == 1
// runs the tasks serially in index order on the calling goroutine.
func Run[T any](ctx context.Context, workers, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	poolStats.fanouts.Add(1)
	call := func(ctx context.Context, i int) {
		poolStats.tasks.Add(1)
		defer func() {
			if r := recover(); r != nil {
				poolStats.panics.Add(1)
				errs[i] = &PanicError{Task: i, Value: r, Stack: debug.Stack()}
			}
		}()
		results[i], errs[i] = task(ctx, i)
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			call(ctx, i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := ctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					call(ctx, i)
					if errs[i] != nil {
						cancel() // stop dispatching; running tasks may finish
					}
				}
			}()
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	// Only cancellations (no real failure won the race): report the first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runAll is the sweep-facing wrapper: Run with the package worker setting
// and a background context.
func runAll[T any](n int, task func(i int) (T, error)) ([]T, error) {
	return Run(context.Background(), Workers(), n, func(_ context.Context, i int) (T, error) {
		return task(i)
	})
}
