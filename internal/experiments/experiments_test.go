package experiments

import (
	"strings"
	"testing"

	"mesa/internal/kernels"
)

func kernelNames() []string { return kernels.Names() }

// The experiment tests assert the reproduction *shapes*: who wins, by
// roughly what factor, where crossovers fall. Absolute numbers differ from
// the paper (different substrate) and are recorded in EXPERIMENTS.md.

func TestFigure2MatchesPaper(t *testing.T) {
	r := Figure2()
	if r.Total != 15 {
		t.Errorf("total = %v, want 15", r.Total)
	}
	if len(r.Critical) != 3 || r.Critical[0] != 0 || r.Critical[1] != 3 || r.Critical[2] != 4 {
		t.Errorf("critical path = %v, want [i1 i4 i5]", r.Critical)
	}
	if !strings.Contains(r.Render(), "15.0") {
		t.Error("render missing total")
	}
}

func TestFigure8(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if r.ReductionCycles <= 0 || r.FixedStages != 4*r.Instructions {
		t.Errorf("FSM accounting wrong: %+v", r)
	}
	if r.AvgPerInst < 5 || r.AvgPerInst > 12 {
		t.Errorf("per-instruction mapping cost = %.1f cycles, implausible", r.AvgPerInst)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.MESA) == 0 || len(r.Accelerator) == 0 || len(r.CoreAdditions) == 0 {
		t.Fatal("missing sections")
	}
	out := r.Render()
	for _, want := range []string{"MESA Top", "0.5020", "Trace Cache", "26.56"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2ConfigLatencyRange(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: configuration latency is generally 10^3–10^4 cycles,
	// sub-microsecond to a few microseconds.
	if r.MinCycles < 200 || r.MinCycles > 5_000 {
		t.Errorf("min config latency = %d cycles, out of plausible range", r.MinCycles)
	}
	if r.MaxCycles < 1_000 || r.MaxCycles > 50_000 {
		t.Errorf("max config latency = %d cycles, out of plausible range", r.MaxCycles)
	}
	if r.MaxMicros > 10 {
		t.Errorf("config latency %.2f µs is not in the ns–µs range", r.MaxMicros)
	}
	if len(r.PerKernel) < 10 {
		t.Errorf("only %d kernels mapped", len(r.PerKernel))
	}
}

func TestFigure11Shape(t *testing.T) {
	r, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(kernelNames()) {
		t.Fatalf("expected %d benchmarks, got %d", len(kernelNames()), len(r.Rows))
	}
	// Shape 1: MESA wins on average.
	if r.GeomeanSpeedupM128 <= 1.0 {
		t.Errorf("M-128 geomean speedup = %.2f, want > 1", r.GeomeanSpeedupM128)
	}
	// Shape 2: M-512 is at least as fast as M-128 on average but not
	// linearly better (cache limits).
	if r.GeomeanSpeedupM512 < r.GeomeanSpeedupM128 {
		t.Errorf("M-512 (%.2f) slower than M-128 (%.2f)", r.GeomeanSpeedupM512, r.GeomeanSpeedupM128)
	}
	if r.GeomeanSpeedupM512 > 4*r.GeomeanSpeedupM128 {
		t.Errorf("M-512 scales implausibly: %.2f vs %.2f", r.GeomeanSpeedupM512, r.GeomeanSpeedupM128)
	}
	// Shape 3: energy efficiency gains exceed 1 on average.
	if r.GeomeanEnergyM128 <= 1.0 || r.GeomeanEnergyM512 <= 1.0 {
		t.Errorf("energy efficiency gains = %.2f / %.2f, want > 1",
			r.GeomeanEnergyM128, r.GeomeanEnergyM512)
	}
	// Shape 4: the average is held back by memory/control-heavy kernels
	// like bfs, which must not beat the CPU.
	for _, row := range r.Rows {
		if row.Kernel == "bfs" && row.M128Speedup >= 1.0 {
			t.Errorf("bfs speedup = %.2f, expected < 1 (unsuitable for spatial accel)", row.M128Speedup)
		}
	}
	t.Log("\n" + r.Render())
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Figure12Kernels) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Without optimizations MESA's greedy hardware mapping does not beat
	// the compiler's modulo schedule on average...
	if r.GeomeanNoOptRatio >= 1.2 {
		t.Errorf("no-opt IPC ratio = %.2f, expected <= ~1 (compiler should win)", r.GeomeanNoOptRatio)
	}
	// ...but with loop parallelization MESA easily outperforms.
	if r.GeomeanOptRatio <= 1.5 {
		t.Errorf("opt IPC ratio = %.2f, expected >> 1", r.GeomeanOptRatio)
	}
	if r.GeomeanOptRatio <= r.GeomeanNoOptRatio {
		t.Error("optimizations must improve the ratio")
	}
	t.Log("\n" + r.Render())
}

func TestFigure13Shape(t *testing.T) {
	r, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// Compute + memory dominate (paper: ~87%).
	if f := r.ComputeMemoryFrac(); f < 0.6 || f > 0.98 {
		t.Errorf("compute+memory fraction = %.2f, want dominant", f)
	}
	// Control is a small fraction.
	if r.ControlFrac > 0.15 {
		t.Errorf("control fraction = %.2f, want small", r.ControlFrac)
	}
	sum := r.ComputeFrac + r.MemoryFrac + r.NoCFrac + r.ControlFrac + r.LeakageFrac
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	t.Log("\n" + r.Render())
}

func TestFigure14Shape(t *testing.T) {
	r, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1: MESA M-64 with optimizations beats DynaSpAM on average.
	if r.GeomeanM64Iter <= r.GeomeanDyna {
		t.Errorf("M-64+iter %.2f !> DynaSpAM %.2f", r.GeomeanM64Iter, r.GeomeanDyna)
	}
	// Shape 2: iterative reconfiguration helps (or at least does not hurt).
	if r.GeomeanM64Iter < r.GeomeanM64*0.98 {
		t.Errorf("iterative reconfig hurt: %.2f vs %.2f", r.GeomeanM64Iter, r.GeomeanM64)
	}
	// Shape 3: both beat the single core on average.
	if r.GeomeanM64Iter <= 1.0 || r.GeomeanDyna <= 1.0 {
		t.Errorf("geomeans %.2f / %.2f, want > 1", r.GeomeanM64Iter, r.GeomeanDyna)
	}
	// Shape 4: srad does not qualify on M-64.
	for _, row := range r.Rows {
		if row.Kernel == "srad" && row.M64Qualified {
			t.Error("srad should not qualify on M-64")
		}
	}
	t.Log("\n" + r.Render())
}

func TestFigure15Shape(t *testing.T) {
	r, err := Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(Figure15PECounts) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Shape 1: performance is monotone non-decreasing with PEs.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Default < r.Points[i-1].Default*0.95 {
			t.Errorf("scaling regressed at %d PEs: %.2f < %.2f",
				r.Points[i].PEs, r.Points[i].Default, r.Points[i-1].Default)
		}
	}
	// Shape 2: good scaling up to 128 PEs (at least half of ideal-memory).
	for _, p := range r.Points {
		if p.PEs <= 128 && p.Default < 0.5*p.IdealMemory {
			t.Errorf("premature bottleneck at %d PEs: %.2f vs ideal-mem %.2f",
				p.PEs, p.Default, p.IdealMemory)
		}
	}
	// Shape 3: beyond 128 PEs the default series falls behind ideal memory
	// (the paper's memory bottleneck).
	last := r.Points[len(r.Points)-1]
	if last.Default >= 0.9*last.IdealMemory {
		t.Errorf("no memory bottleneck at %d PEs: %.2f vs ideal-mem %.2f",
			last.PEs, last.Default, last.IdealMemory)
	}
	// Shape 4: the default series never dramatically exceeds ideal PE
	// scaling (mild super-linearity is possible at small counts where an
	// extra tile unlocks pipelining).
	for _, p := range r.Points {
		if p.Default > p.IdealPE*1.6 {
			t.Errorf("default %.2f exceeds ideal scaling %.2f at %d PEs",
				p.Default, p.IdealPE, p.PEs)
		}
	}
	t.Log("\n" + r.Render())
}

func TestFigure16Shape(t *testing.T) {
	r, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 8 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Shape 1: per-iteration energy decreases monotonically.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].PerIterNJ > r.Points[i-1].PerIterNJ {
			t.Errorf("per-iteration energy increased at %d iterations",
				r.Points[i].Iterations)
		}
	}
	// Shape 2: the first iteration is dominated by the sunk config cost.
	if r.Points[0].PerIterNJ < 5*r.SteadyNJ {
		t.Errorf("config cost not visible: first %.2f vs steady %.2f",
			r.Points[0].PerIterNJ, r.SteadyNJ)
	}
	// Shape 3: amortization lands in the paper's few-tens-to-~100 range.
	if r.AmortizedAt < 8 || r.AmortizedAt > 256 {
		t.Errorf("amortized at %d iterations, paper observes ~70", r.AmortizedAt)
	}
	t.Log("\n" + r.Render())
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 2 {
		t.Fatalf("cases = %d", len(r.Cases))
	}
	for _, c := range r.Cases {
		// i3's transfer from i1 must achieve the interconnect's minimum.
		if c.TransferLat != 1 {
			t.Errorf("%s: i1->i3 transfer = %d, want 1", c.Interconnect, c.TransferLat)
		}
		if c.I3 == c.I1 || c.I3 == c.I2 {
			t.Errorf("%s: i3 shares a PE", c.Interconnect)
		}
	}
	// Row-slice: i3 lands in i1's row (any in-row slot is single-cycle).
	if rs := r.Cases[0]; rs.I3.Row != rs.I1.Row {
		t.Errorf("rowslice: i3 at %v, want row %d", rs.I3, rs.I1.Row)
	}
	if !strings.Contains(r.Render(), "rowslice") {
		t.Error("render missing case")
	}
}
