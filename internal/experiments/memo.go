package experiments

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/obs"
)

// simMemo is the cross-experiment simulation-result cache: figures, tables,
// ablations, and mesad requests repeatedly time the same (program,
// configuration) pair, and every such simulation is deterministic — same
// assembled program, same seeded memory, same config, same result. Entries
// are keyed by a content hash of the assembled program bytes plus the full
// timing-relevant configuration fingerprint, so a hit is only possible when
// the simulation would be bit-for-bit identical.
//
// The cache is single-flight: concurrent requests for the same key run the
// simulation once and share the result. That makes the hit/miss counters
// worker-count-invariant (misses = distinct keys, hits = lookups − misses),
// preserving mesabench's byte-identical `-parallel N` vs `-parallel 1`
// guarantee even for `-stats` output — as long as nothing is evicted. The
// cache is a bounded LRU (a long-running mesad must not grow without bound);
// once the working set exceeds the capacity, eviction order depends on
// request scheduling, so `sim_cache_entries` and `sim_cache_evictions` are
// worker-count-VARIANT and are excluded from byte-identical stats
// comparisons (see TestStatsWorkerInvariant).
//
// Cached values (and the errors of failed simulations) are shared across
// callers and goroutines: callers must treat them as read-only. Every
// existing consumer only reads the returned structs; publication via the
// entry's done channel provides the happens-before edge.
//
// An optional on-disk content-addressed store (SetSimMemoDir) persists
// entries whose kind registered a codec, so warm results survive process
// restarts and are shared between mesabench and mesad. Disk entries are
// keyed by the same sha256 fingerprint as in-memory ones.
type memoCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element // key -> element whose Value is *memoEntry
	lru     *list.List               // front = most recently used
	cap     int                      // max completed entries; 0 = unbounded

	store *DiskStore

	hits       uint64
	misses     uint64
	evictions  uint64
	diskHits   uint64
	diskWrites uint64
	diskErrors uint64
}

type memoEntry struct {
	key      string
	done     chan struct{}
	val      any
	err      error
	inflight bool // pinned: never evicted while the simulation runs
}

// DefaultSimMemoCapacity bounds the in-memory cache. The full experiment
// sweep creates a few hundred distinct entries, so the default never evicts
// during benchmarking (keeping the hit/miss counters worker-count-invariant)
// while still bounding a long-running mesad process.
const DefaultSimMemoCapacity = 4096

var (
	simMemo     = newMemoCache(DefaultSimMemoCapacity)
	memoEnabled atomic.Bool
)

func init() { memoEnabled.Store(true) }

func newMemoCache(capacity int) *memoCache {
	return &memoCache{
		entries: map[string]*list.Element{},
		lru:     list.New(),
		cap:     capacity,
	}
}

// SetSimMemoEnabled toggles the simulation-result cache (mesabench's
// `-nocache` escape hatch). Disabling does not clear existing entries;
// re-enabling resumes using them.
func SetSimMemoEnabled(on bool) { memoEnabled.Store(on) }

// SetSimMemoCapacity bounds the in-memory LRU to n completed entries
// (n <= 0 selects unbounded) and returns the previous capacity. Shrinking
// below the current population evicts least-recently-used entries
// immediately; in-flight simulations are never evicted.
func SetSimMemoCapacity(n int) int {
	simMemo.mu.Lock()
	defer simMemo.mu.Unlock()
	prev := simMemo.cap
	if n < 0 {
		n = 0
	}
	simMemo.cap = n
	simMemo.evictOverLocked()
	return prev
}

// SimMemoCapacity returns the current LRU capacity (0 = unbounded).
func SimMemoCapacity() int {
	simMemo.mu.Lock()
	defer simMemo.mu.Unlock()
	return simMemo.cap
}

// SetSimMemoDir attaches an on-disk content-addressed store rooted at dir to
// the cache (creating the directory if needed), so results of disk-codable
// entry points persist across processes. An empty dir detaches the store.
func SetSimMemoDir(dir string) error {
	var st *DiskStore
	if dir != "" {
		var err error
		st, err = OpenDiskStore(dir)
		if err != nil {
			return err
		}
	}
	simMemo.mu.Lock()
	simMemo.store = st
	simMemo.mu.Unlock()
	return nil
}

// ResetSimMemo drops all cached in-memory results and zeroes every counter
// (tests, and cold/warm differential comparisons). The on-disk store, if
// attached, is left untouched.
func ResetSimMemo() {
	simMemo.mu.Lock()
	simMemo.entries = map[string]*list.Element{}
	simMemo.lru = list.New()
	simMemo.hits, simMemo.misses = 0, 0
	simMemo.evictions = 0
	simMemo.diskHits, simMemo.diskWrites, simMemo.diskErrors = 0, 0, 0
	simMemo.mu.Unlock()
}

// SimMemoMetrics snapshots the cache-effectiveness counters for `-stats`.
// sim_cache_hits / sim_cache_misses / sim_cache_disk_* are worker-count-
// invariant as long as nothing is evicted (single-flight makes misses =
// distinct keys). sim_cache_entries and sim_cache_evictions are NOT: once
// the LRU is bounded below the working set, which key evicts which depends
// on request scheduling. Byte-identical stats comparisons must exclude the
// two variant counters (SimMemoVariantMetricNames).
func SimMemoMetrics() []obs.Metric {
	simMemo.mu.Lock()
	defer simMemo.mu.Unlock()
	return []obs.Metric{
		obs.Count("sim_cache_hits", simMemo.hits),
		obs.Count("sim_cache_misses", simMemo.misses),
		obs.Count("sim_cache_entries", uint64(simMemo.lru.Len())),
		obs.Count("sim_cache_evictions", simMemo.evictions),
		obs.Count("sim_cache_disk_hits", simMemo.diskHits),
		obs.Count("sim_cache_disk_writes", simMemo.diskWrites),
		obs.Count("sim_cache_disk_errors", simMemo.diskErrors),
	}
}

// SimMemoVariantMetricNames lists the cache counters whose values depend on
// request scheduling once eviction is possible. Determinism checks that
// byte-compare stats reports across worker counts must drop these.
func SimMemoVariantMetricNames() []string {
	return []string{"sim_cache_entries", "sim_cache_evictions"}
}

// evictOverLocked evicts least-recently-used completed entries until the
// population fits the capacity. In-flight entries are pinned: evicting one
// would let a concurrent request start a second flight for the same key,
// breaking the misses-=-distinct-keys invariant mid-run. c.mu must be held.
func (c *memoCache) evictOverLocked() {
	if c.cap <= 0 {
		return
	}
	for e := c.lru.Back(); e != nil && c.lru.Len() > c.cap; {
		prev := e.Prev()
		ent := e.Value.(*memoEntry)
		if !ent.inflight {
			c.lru.Remove(e)
			delete(c.entries, ent.key)
			c.evictions++
		}
		e = prev
	}
}

// removeLocked drops the entry for key if it is still present (panic
// recovery: the entry must not poison future lookups). c.mu must be held.
func (c *memoCache) removeLocked(key string) {
	if e, ok := c.entries[key]; ok {
		c.lru.Remove(e)
		delete(c.entries, key)
	}
}

// do returns the cached value for key, or runs f once (single-flight) and
// caches its result — including its error, so a failing configuration fails
// identically on every lookup. A panicking f is the exception: its entry is
// evicted before the panic propagates, so a transient panic never becomes a
// permanently cached failure (waiters already joined to the flight still
// receive an error naming the panic).
//
// When codec is non-nil and a disk store is attached, a miss first consults
// the store (a disk hit skips the simulation), and a freshly computed value
// is persisted best-effort (IO failures count in sim_cache_disk_errors and
// never fail the simulation).
func (c *memoCache) do(key string, codec *memoCodec, f func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e)
		ent := e.Value.(*memoEntry)
		c.mu.Unlock()
		t0 := time.Now()
		<-ent.done
		observeSince(simHitWaitSeconds, t0)
		return ent.val, ent.err
	}
	ent := &memoEntry{key: key, done: make(chan struct{}), inflight: true}
	c.entries[key] = c.lru.PushFront(ent)
	c.misses++
	store := c.store
	c.mu.Unlock()

	finish := func(diskHit bool) {
		c.mu.Lock()
		ent.inflight = false
		// Completion counts as a use: a just-finished simulation must not be
		// the first thing a concurrent overflow evicts.
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e)
		}
		if diskHit {
			c.diskHits++
		}
		c.evictOverLocked()
		c.mu.Unlock()
	}

	if codec != nil && store != nil {
		t0 := time.Now()
		if data, ok, err := store.Get(key); err != nil {
			c.countDiskError()
		} else if ok {
			if v, err := codec.decode(data); err != nil {
				// A corrupt blob is dropped and recomputed below.
				c.countDiskError()
			} else {
				ent.val = v
				close(ent.done)
				finish(true)
				observeSince(simHitWaitSeconds, t0)
				return ent.val, ent.err
			}
		}
	}

	defer func() {
		if r := recover(); r != nil {
			// Unblock waiters before propagating: they see an error naming
			// the panic, the panicking goroutine keeps its stack. The entry
			// is evicted so the next request retries instead of receiving a
			// permanently cached failure.
			ent.err = fmt.Errorf("experiments: memoized simulation panicked: %v", r)
			c.mu.Lock()
			c.removeLocked(key)
			c.mu.Unlock()
			close(ent.done)
			panic(r)
		}
	}()
	t0 := time.Now()
	ent.val, ent.err = f()
	observeSince(simRunSeconds, t0)
	close(ent.done)
	if ent.err == nil && codec != nil && store != nil {
		if data, err := codec.encode(ent.val); err != nil {
			c.countDiskError()
		} else if err := store.Put(key, data); err != nil {
			c.countDiskError()
		} else {
			c.countDiskWrite()
		}
	}
	finish(false)
	return ent.val, ent.err
}

// memoOutcome pairs a simulation result with its error, for batch lookups
// where each key succeeds or fails independently.
type memoOutcome struct {
	val any
	err error
}

// doBatch is do() for a group of keys whose misses one call can compute
// together (the batched lockstep sweep). Semantics match running do() per
// key: hits join in-flight or completed entries, misses are pinned before
// the lock drops (single-flight — a concurrent do() for the same key joins
// this batch's flight), the disk store is consulted per miss, and run is
// invoked exactly once with the keys that remain. Hit/miss counters advance
// per distinct key, so stats stay worker-count-invariant. A panicking run
// poisons no entry: every unpublished key is evicted, its waiters receive
// an error naming the panic, and the panic propagates.
//
// run must return an outcome for every key it is given; a missing key is
// reported as an error on that key (never a hang — the entry is always
// published). Input keys may contain duplicates; the returned map holds one
// outcome per distinct key.
func (c *memoCache) doBatch(keys []string, codec *memoCodec, run func(miss []string) map[string]memoOutcome) map[string]memoOutcome {
	uniq := make([]string, 0, len(keys))
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, k)
	}

	var waits, missEnts []*memoEntry
	c.mu.Lock()
	store := c.store
	for _, key := range uniq {
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(e)
			waits = append(waits, e.Value.(*memoEntry))
			continue
		}
		ent := &memoEntry{key: key, done: make(chan struct{}), inflight: true}
		c.entries[key] = c.lru.PushFront(ent)
		c.misses++
		missEnts = append(missEnts, ent)
	}
	c.mu.Unlock()

	finish := func(ent *memoEntry, diskHit bool) {
		c.mu.Lock()
		ent.inflight = false
		if e, ok := c.entries[ent.key]; ok {
			c.lru.MoveToFront(e)
		}
		if diskHit {
			c.diskHits++
		}
		c.evictOverLocked()
		c.mu.Unlock()
	}

	pending := make([]*memoEntry, 0, len(missEnts))
	for _, ent := range missEnts {
		if codec != nil && store != nil {
			t0 := time.Now()
			if data, ok, err := store.Get(ent.key); err != nil {
				c.countDiskError()
			} else if ok {
				if v, err := codec.decode(data); err != nil {
					// A corrupt blob is dropped and recomputed below.
					c.countDiskError()
				} else {
					ent.val = v
					close(ent.done)
					finish(ent, true)
					observeSince(simHitWaitSeconds, t0)
					continue
				}
			}
		}
		pending = append(pending, ent)
	}

	if len(pending) > 0 {
		missKeys := make([]string, len(pending))
		for i, ent := range pending {
			missKeys[i] = ent.key
		}
		var out map[string]memoOutcome
		t0 := time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("experiments: memoized simulation panicked: %v", r)
					c.mu.Lock()
					for _, ent := range pending {
						ent.err = err
						c.removeLocked(ent.key)
					}
					c.mu.Unlock()
					for _, ent := range pending {
						close(ent.done)
					}
					panic(r)
				}
			}()
			out = run(missKeys)
		}()
		observeSince(simRunSeconds, t0)
		for _, ent := range pending {
			o, ok := out[ent.key]
			if !ok {
				o = memoOutcome{err: fmt.Errorf("experiments: batch run returned no result for key %s", ent.key)}
			}
			ent.val, ent.err = o.val, o.err
			close(ent.done)
			if ent.err == nil && codec != nil && store != nil {
				if data, err := codec.encode(ent.val); err != nil {
					c.countDiskError()
				} else if err := store.Put(ent.key, data); err != nil {
					c.countDiskError()
				} else {
					c.countDiskWrite()
				}
			}
			finish(ent, false)
		}
	}

	for _, ent := range waits {
		t0 := time.Now()
		<-ent.done
		observeSince(simHitWaitSeconds, t0)
	}

	res := make(map[string]memoOutcome, len(uniq))
	for _, ent := range waits {
		res[ent.key] = memoOutcome{val: ent.val, err: ent.err}
	}
	for _, ent := range missEnts {
		res[ent.key] = memoOutcome{val: ent.val, err: ent.err}
	}
	return res
}

func (c *memoCache) countDiskError() {
	c.mu.Lock()
	c.diskErrors++
	c.mu.Unlock()
}

func (c *memoCache) countDiskWrite() {
	c.mu.Lock()
	c.diskWrites++
	c.mu.Unlock()
}

// memoDo wraps a simulation in the cache. kind namespaces the entry point
// ("cpu1", "cpuN", "mesa", "raw.*"); fill appends the configuration
// fingerprint to the key hash. If the cache is disabled or the kernel's
// program cannot be assembled, f runs uncached (the latter so error wrapping
// stays exactly as before).
func memoDo(kind string, k *kernels.Kernel, fill func(io.Writer), f func() (any, error)) (any, error) {
	if !memoEnabled.Load() {
		return f()
	}
	key, err := memoKey(kind, k, fill)
	if err != nil {
		return f()
	}
	return simMemo.do(key, diskCodec(kind), f)
}

// memoDoProgram is memoDo for raw programs that have no kernel identity:
// mesad accepts arbitrary RV32IMF words, keyed purely by their content hash
// plus the configuration fingerprint.
func memoDoProgram(kind string, prog *isa.Program, fill func(io.Writer), f func() (any, error)) (any, error) {
	if !memoEnabled.Load() {
		return f()
	}
	key := memoKeyFromFill(kind, func(h io.Writer) {
		fmt.Fprintf(h, "base%d|", prog.Base)
		hashProgram(h, prog)
		fmt.Fprintf(h, "|seed%d|steps%d|", Seed, MaxSteps)
		fill(h)
	})
	return simMemo.do(key, diskCodec(kind), f)
}

// memoKey builds the content-hash key: entry-point kind, kernel identity
// (name and problem size determine the seeded memory image), the assembled
// program bytes (base address plus encoded instruction words — layout and
// addresses are fully determined by these), the global simulation bounds,
// and the caller-supplied configuration fingerprint.
func memoKey(kind string, k *kernels.Kernel, fill func(io.Writer)) (string, error) {
	prog, _, err := k.Program()
	if err != nil {
		return "", err
	}
	return memoKeyFromFill(kind, func(h io.Writer) {
		fmt.Fprintf(h, "%s|%d|%t|base%d|", k.Name, k.N, k.Parallel, prog.Base)
		hashProgram(h, prog)
		fmt.Fprintf(h, "|seed%d|steps%d|", Seed, MaxSteps)
		fill(h)
	}), nil
}

// memoKeyFromFill is the single construction point for memo keys: a sha256
// content hash over the entry-point kind and a caller-written fingerprint.
// memoKey, memoDoProgram, and the batch-sweep kernel grouping all build
// their keys through it, so their layouts can never drift apart; the unit
// test pins the byte layout so keys (and the disk store entries they
// address) stay stable across refactors.
func memoKeyFromFill(kind string, fill func(io.Writer)) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|", kind)
	fill(h)
	return hex.EncodeToString(h.Sum(nil))
}

// HashProgramWords writes prog's encoded instruction words to h: the
// program's content address, together with its base. Exported so mesad's
// response-store keys agree with the memo layer's notion of program
// identity.
func HashProgramWords(h io.Writer, prog *isa.Program) { hashProgram(h, prog) }

// hashProgram writes the encoded instruction words to h (the program's
// content address, together with its base).
func hashProgram(h io.Writer, prog *isa.Program) {
	var word [4]byte
	for _, in := range prog.Insts {
		enc, err := isa.Encode(in)
		if err != nil {
			// Unencodable pseudo-instruction: hash its full printed form.
			fmt.Fprintf(h, "raw%+v|", in)
			continue
		}
		binary.LittleEndian.PutUint32(word[:], enc)
		h.Write(word[:])
	}
}
