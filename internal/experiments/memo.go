package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/obs"
)

// simMemo is the cross-experiment simulation-result cache: figures, tables,
// and ablations repeatedly time the same (kernel, configuration) pair, and
// every such simulation is deterministic — same assembled program, same
// seeded memory, same config, same result. Entries are keyed by a content
// hash of the assembled program bytes plus the full timing-relevant
// configuration fingerprint, so a hit is only possible when the simulation
// would be bit-for-bit identical.
//
// The cache is single-flight: concurrent requests for the same key run the
// simulation once and share the result. That makes the hit/miss counters
// worker-count-invariant (misses = distinct keys, hits = lookups − misses),
// preserving mesabench's byte-identical `-parallel N` vs `-parallel 1`
// guarantee even for `-stats` output.
//
// Cached values (and the errors of failed simulations) are shared across
// callers and goroutines: callers must treat them as read-only. Every
// existing consumer only reads the returned structs; publication via the
// entry's done channel provides the happens-before edge.
type memoCache struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	hits    uint64
	misses  uint64
}

type memoEntry struct {
	done chan struct{}
	val  any
	err  error
}

var (
	simMemo     = &memoCache{entries: map[string]*memoEntry{}}
	memoEnabled atomic.Bool
)

func init() { memoEnabled.Store(true) }

// SetSimMemoEnabled toggles the simulation-result cache (mesabench's
// `-nocache` escape hatch). Disabling does not clear existing entries;
// re-enabling resumes using them.
func SetSimMemoEnabled(on bool) { memoEnabled.Store(on) }

// ResetSimMemo drops all cached results and zeroes the hit/miss counters
// (tests, and cold/warm differential comparisons).
func ResetSimMemo() {
	simMemo.mu.Lock()
	simMemo.entries = map[string]*memoEntry{}
	simMemo.hits, simMemo.misses = 0, 0
	simMemo.mu.Unlock()
}

// SimMemoMetrics snapshots the cache-effectiveness counters for `-stats`.
// All values are worker-count-invariant (see the single-flight note above).
func SimMemoMetrics() []obs.Metric {
	simMemo.mu.Lock()
	defer simMemo.mu.Unlock()
	return []obs.Metric{
		obs.Count("sim_cache_hits", simMemo.hits),
		obs.Count("sim_cache_misses", simMemo.misses),
		obs.Count("sim_cache_entries", uint64(len(simMemo.entries))),
	}
}

// do returns the cached value for key, or runs f once (single-flight) and
// caches its result — including its error, so a failing configuration fails
// identically on every lookup.
func (c *memoCache) do(key string, f func() (any, error)) (any, error) {
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-ent.done
		return ent.val, ent.err
	}
	ent := &memoEntry{done: make(chan struct{})}
	c.entries[key] = ent
	c.misses++
	c.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			// Unblock waiters before propagating: they see an error naming
			// the panic, the panicking goroutine keeps its stack.
			ent.err = fmt.Errorf("experiments: memoized simulation panicked: %v", r)
			close(ent.done)
			panic(r)
		}
	}()
	ent.val, ent.err = f()
	close(ent.done)
	return ent.val, ent.err
}

// memoDo wraps a simulation in the cache. kind namespaces the entry point
// ("cpu1", "cpuN", "mesa"); fill appends the configuration fingerprint to
// the key hash. If the cache is disabled or the kernel's program cannot be
// assembled, f runs uncached (the latter so error wrapping stays exactly as
// before).
func memoDo(kind string, k *kernels.Kernel, fill func(io.Writer), f func() (any, error)) (any, error) {
	if !memoEnabled.Load() {
		return f()
	}
	key, err := memoKey(kind, k, fill)
	if err != nil {
		return f()
	}
	return simMemo.do(key, f)
}

// memoKey builds the content-hash key: entry-point kind, kernel identity
// (name and problem size determine the seeded memory image), the assembled
// program bytes (base address plus encoded instruction words — layout and
// addresses are fully determined by these), the global simulation bounds,
// and the caller-supplied configuration fingerprint.
func memoKey(kind string, k *kernels.Kernel, fill func(io.Writer)) (string, error) {
	prog, _, err := k.Program()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%t|base%d|", kind, k.Name, k.N, k.Parallel, prog.Base)
	var word [4]byte
	for _, in := range prog.Insts {
		enc, err := isa.Encode(in)
		if err != nil {
			// Unencodable pseudo-instruction: hash its full printed form.
			fmt.Fprintf(h, "raw%+v|", in)
			continue
		}
		binary.LittleEndian.PutUint32(word[:], enc)
		h.Write(word[:])
	}
	fmt.Fprintf(h, "|seed%d|steps%d|", Seed, MaxSteps)
	fill(h)
	return hex.EncodeToString(h.Sum(nil)), nil
}
