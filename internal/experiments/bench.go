package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// BenchSchemaVersion identifies the benchmark-snapshot layout. Readers
// refuse snapshots with a different version rather than silently comparing
// incompatible metrics.
const BenchSchemaVersion = 1

// BenchMetric is one headline measurement of a bench run. HigherIsBetter
// records the metric's good direction so the regression gate knows which way
// a change has to move before it counts as a regression (speedups regress
// downward, cycle counts regress upward).
type BenchMetric struct {
	Name           string  `json:"name"`
	Value          float64 `json:"value"`
	HigherIsBetter bool    `json:"higher_is_better"`
}

// BenchSnapshot is the machine-readable performance baseline of the whole
// suite: per-kernel CPU and accelerator cycles, configuration latency, and
// per-figure speedup/energy aggregates. All metrics are deterministic
// simulation outputs — WallSeconds is the only host-dependent field and is
// excluded from comparison and from the determinism guarantees.
type BenchSnapshot struct {
	SchemaVersion int           `json:"schema_version"`
	WallSeconds   float64       `json:"wall_seconds"`
	Metrics       []BenchMetric `json:"metrics"`
}

// Metric returns the named metric and whether it exists.
func (s *BenchSnapshot) Metric(name string) (BenchMetric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return BenchMetric{}, false
}

// benchBatchLanes gates the batched-sweep wall measurement appended to the
// snapshot. Zero (the default) skips it, keeping the metric list fully
// deterministic; mesabench sets it from -batch when a snapshot is collected.
var benchBatchLanes atomic.Int64

// SetBenchBatchLanes selects the lane count for the batch.* wall metrics in
// CollectBench (n < 2 disables them) and returns the previous value.
func SetBenchBatchLanes(n int) int {
	return int(benchBatchLanes.Swap(int64(n)))
}

// CollectBench measures the suite's headline numbers: every kernel on the
// single-core and 16-core CPU baselines and on the M-128 and M-512 MESA
// backends. Per-kernel tasks are independent seeded simulations fanned out
// over the sweep worker pool and reduced in kernel order, so the metric list
// is byte-identical for any worker count. WallSeconds is left zero for the
// caller to stamp.
//
// When SetBenchBatchLanes enabled it, the snapshot additionally carries
// batch.* wall metrics: the cold scalar-vs-batched sweep times and their
// ratio. Those are host-dependent wall-clock values, and CompareBench
// excludes the whole batch. prefix from regression checks.
func CollectBench() (*BenchSnapshot, error) {
	s, err := collectBenchKernels(kernels.All())
	if err != nil {
		return nil, err
	}
	if lanes := int(benchBatchLanes.Load()); lanes >= 2 {
		s.Metrics = append(s.Metrics, collectBatchBench(lanes)...)
		sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	}
	return s, nil
}

// collectBatchBench times the default sweep cold — memo disabled, so both
// sides genuinely simulate — through scalar RunMESA calls in a serial loop
// (the `-batch 0` path) and through RunMESABatch with the given lane count,
// and reports both walls plus the measured speedup. The sides are
// interleaved over three repetitions and each side reports its minimum
// wall: min is the standard noise-resistant wall estimator, and
// interleaving keeps slow host phases (GC, CPU-frequency shifts, noisy
// neighbors) from landing entirely on one side. Simulation errors are
// ignored here: a failing point fails identically on both sides (the
// differential tests pin that), and the wall comparison is what this
// measures.
func collectBatchBench(lanes int) []BenchMetric {
	pts := DefaultSweepPoints()
	prev := memoEnabled.Load()
	SetSimMemoEnabled(false)
	defer SetSimMemoEnabled(prev)

	const reps = 3
	scalarSecs := math.Inf(1)
	batchSecs := math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for _, p := range pts {
			RunMESA(p.Kernel, p.Backend, p.CPUPerIter, p.Opts)
		}
		scalarSecs = math.Min(scalarSecs, time.Since(t0).Seconds())

		t1 := time.Now()
		RunMESABatch(pts, lanes)
		batchSecs = math.Min(batchSecs, time.Since(t1).Seconds())
	}

	speedup := 0.0
	if batchSecs > 0 {
		speedup = scalarSecs / batchSecs
	}
	return []BenchMetric{
		{Name: "batch.lanes", Value: float64(lanes)},
		{Name: "batch.points", Value: float64(len(pts))},
		{Name: "batch.scalar_wall_seconds", Value: scalarSecs},
		{Name: "batch.wall_seconds", Value: batchSecs},
		{Name: "batch.speedup", Value: speedup, HigherIsBetter: true},
	}
}

// benchKernel is the per-kernel raw material for the snapshot metrics.
type benchKernel struct {
	name                   string
	cpu1, cpu16            float64
	cpu16Energy, cpuEnergy float64 // 16-core and single-core energy
	m128, m512             *MESARun
}

func collectBenchKernels(ks []*kernels.Kernel) (*BenchSnapshot, error) {
	rows, err := runAll(len(ks), func(i int) (benchKernel, error) {
		k := ks[i]
		mc := cpu.DefaultMulticore()
		single, err := TimeSingleCore(k, mc.Core)
		if err != nil {
			return benchKernel{}, err
		}
		cpuPerIter := single.Cycles / float64(k.N)
		multi, err := TimeMulticore(k, mc)
		if err != nil {
			return benchKernel{}, err
		}
		m128, err := RunMESA(k, accel.M128(), cpuPerIter, MESAOptions{})
		if err != nil {
			return benchKernel{}, err
		}
		m512, err := RunMESA(k, accel.M512(), cpuPerIter, MESAOptions{})
		if err != nil {
			return benchKernel{}, err
		}
		return benchKernel{
			name: k.Name,
			cpu1: single.Cycles, cpu16: multi.Cycles,
			cpu16Energy: multi.EnergyNJ, cpuEnergy: single.EnergyNJ,
			m128: m128, m512: m512,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	s := &BenchSnapshot{SchemaVersion: BenchSchemaVersion}
	lower := func(name string, v float64) {
		s.Metrics = append(s.Metrics, BenchMetric{Name: name, Value: v})
	}
	higher := func(name string, v float64) {
		s.Metrics = append(s.Metrics, BenchMetric{Name: name, Value: v, HigherIsBetter: true})
	}

	var sp128, sp512, ee128, ee512 []float64
	for _, r := range rows {
		prefix := "kernel." + r.name
		lower(prefix+".cpu1_cycles", r.cpu1)
		lower(prefix+".cpu16_cycles", r.cpu16)
		for _, m := range []struct {
			tag string
			run *MESARun
		}{{"m128", r.m128}, {"m512", r.m512}} {
			p := prefix + "." + m.tag
			lower(p+".total_cycles", m.run.TotalCycles)
			lower(p+".accel_cycles", m.run.AccelCycles)
			lower(p+".config_cycles", m.run.OverheadCycles)
			higher(p+".speedup", r.cpu16/m.run.TotalCycles)
			// Energy efficiency vs the 16-core baseline; a kernel that never
			// qualified stays on one core (fig11's convention).
			eff := r.cpu16Energy / r.cpuEnergy
			if m.run.Qualified {
				eff = r.cpu16Energy / m.run.EnergyNJ
			}
			higher(p+".energy_eff", eff)
		}
		sp128 = append(sp128, r.cpu16/r.m128.TotalCycles)
		sp512 = append(sp512, r.cpu16/r.m512.TotalCycles)
		effOf := func(run *MESARun) float64 {
			if run.Qualified {
				return r.cpu16Energy / run.EnergyNJ
			}
			return r.cpu16Energy / r.cpuEnergy
		}
		ee128 = append(ee128, effOf(r.m128))
		ee512 = append(ee512, effOf(r.m512))
	}
	higher("fig11.geomean_speedup_m128", geomean(sp128))
	higher("fig11.geomean_speedup_m512", geomean(sp512))
	higher("fig11.geomean_energy_eff_m128", geomean(ee128))
	higher("fig11.geomean_energy_eff_m512", geomean(ee512))

	// Mapper-strategy ablation metrics: per-kernel analytic II and measured
	// per-iteration cost for every placement strategy, plus the count of
	// kernels a refinement strategy strictly improves. Shares the memoized
	// mappersRow simulations with the rendered `mappers` experiment.
	mapRows, err := runAll(len(ks), func(i int) (MappersRow, error) {
		return mappersRow(ks[i])
	})
	if err != nil {
		return nil, err
	}
	improved := 0
	for _, row := range mapRows {
		if !row.OK {
			continue
		}
		if row.Improved {
			improved++
		}
		for _, c := range row.Cells {
			p := "mappers." + row.Kernel + "." + MapperTag(c.Strategy)
			lower(p+".predicted_ii", c.PredictedII)
			lower(p+".measured_iter", c.MeasuredIter)
		}
	}
	higher("mappers.improved_kernels", float64(improved))

	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s, nil
}

// WriteJSON emits the snapshot as indented JSON with a trailing newline,
// byte-stable for a given snapshot.
func (s *BenchSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadBench loads a snapshot file, rejecting unknown schema versions.
func ReadBench(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("%s: snapshot schema v%d, this binary reads v%d — regenerate the baseline",
			path, s.SchemaVersion, BenchSchemaVersion)
	}
	return &s, nil
}

// BenchDiff is one baseline metric's comparison against the current run.
// Rel is the signed relative change (current-baseline)/|baseline|; Worse is
// the change measured in the metric's bad direction, so Worse > tol means
// regression regardless of whether higher or lower is better.
type BenchDiff struct {
	Name              string
	Baseline, Current float64
	Rel, Worse        float64
	Missing           bool // metric absent from the current run
	Regressed         bool
}

// CompareBench checks every baseline metric against the current snapshot
// under the given relative tolerance and returns the per-metric diffs (in
// baseline order) plus whether any metric regressed. Metrics only present
// in the current snapshot are additions, not regressions, and are ignored;
// metrics missing from the current snapshot are regressions (a kernel or
// figure silently dropped out of the run). The batch.* metrics are wall-
// clock measurements — host-dependent by nature, like WallSeconds — so the
// whole prefix is excluded from comparison in both directions.
func CompareBench(baseline, current *BenchSnapshot, tol float64) ([]BenchDiff, bool) {
	cur := make(map[string]BenchMetric, len(current.Metrics))
	for _, m := range current.Metrics {
		cur[m.Name] = m
	}
	diffs := make([]BenchDiff, 0, len(baseline.Metrics))
	regressed := false
	for _, b := range baseline.Metrics {
		if strings.HasPrefix(b.Name, "batch.") {
			continue
		}
		d := BenchDiff{Name: b.Name, Baseline: b.Value}
		c, ok := cur[b.Name]
		if !ok {
			d.Missing, d.Regressed = true, true
			regressed = true
			diffs = append(diffs, d)
			continue
		}
		d.Current = c.Value
		switch {
		case b.Value == c.Value:
			// Identical (including both zero): no change.
		case b.Value == 0:
			d.Rel = math.Inf(1)
			if c.Value < 0 == b.HigherIsBetter {
				d.Worse = math.Inf(1)
			}
		default:
			d.Rel = (c.Value - b.Value) / math.Abs(b.Value)
			d.Worse = d.Rel
			if b.HigherIsBetter {
				d.Worse = -d.Rel
			}
		}
		if d.Worse > tol {
			d.Regressed = true
			regressed = true
		}
		diffs = append(diffs, d)
	}
	return diffs, regressed
}

// RenderBenchDiff prints the comparison as a table: every regressed metric,
// plus any metric that moved beyond half the tolerance (so near-misses are
// visible), plus a one-line summary of the rest.
func RenderBenchDiff(diffs []BenchDiff, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark regression check (tolerance %.1f%%):\n", 100*tol)
	fmt.Fprintf(&b, "%-44s %14s %14s %9s  %s\n", "metric", "baseline", "current", "change", "status")
	shown, regressed, unchanged := 0, 0, 0
	for _, d := range diffs {
		if d.Regressed {
			regressed++
		}
		if !d.Regressed && math.Abs(d.Rel) <= tol/2 {
			unchanged++
			continue
		}
		shown++
		status := "ok"
		switch {
		case d.Missing:
			status = "REGRESSED (missing from current run)"
		case d.Regressed:
			status = "REGRESSED"
		case d.Worse < 0:
			status = "improved"
		}
		change := fmt.Sprintf("%+.2f%%", 100*d.Rel)
		if d.Missing {
			change = "-"
		}
		fmt.Fprintf(&b, "%-44s %14.4f %14.4f %9s  %s\n", d.Name, d.Baseline, d.Current, change, status)
	}
	if shown == 0 {
		b.WriteString("(no metric moved beyond half the tolerance)\n")
	}
	fmt.Fprintf(&b, "%d metrics compared: %d regressed, %d moved, %d within ±%.1f%%\n",
		len(diffs), regressed, shown-regressed, unchanged, 50*tol)
	return b.String()
}
