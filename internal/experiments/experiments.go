// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each Figure*/Table* function runs the relevant
// simulations and returns a structured result with a Render method that
// prints the same rows/series the paper reports, alongside the paper's
// published numbers where the text states them.
package experiments

import (
	"fmt"
	"math"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/energy"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/mem"
)

// Seed fixes all workload data so results are reproducible.
const Seed = 42

// MaxSteps bounds every functional simulation.
const MaxSteps = 50_000_000

// CPURun is a timed CPU execution of one kernel.
type CPURun struct {
	Cycles   float64
	Result   *cpu.Result
	EnergyNJ float64
	Cores    int
}

// TimeSingleCore times a kernel on one out-of-order core. Results are
// memoized across experiments (see memo.go): treat the returned CPURun as
// read-only.
func TimeSingleCore(k *kernels.Kernel, cfg cpu.Config) (*CPURun, error) {
	v, err := memoDo("cpu1", k, cfg.Fingerprint, func() (any, error) {
		return timeSingleCoreUncached(k, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*CPURun), nil
}

func timeSingleCoreUncached(k *kernels.Kernel, cfg cpu.Config) (*CPURun, error) {
	prog, _, err := k.Program()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	res, err := cpu.Time(cfg, prog, k.NewMemory(Seed), hier, MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	p := energy.DefaultCPUParams()
	return &CPURun{Cycles: res.Cycles, Result: res, EnergyNJ: energy.CPUEnergy(res, 1, p), Cores: 1}, nil
}

// TimeMulticore times a kernel on the 16-core baseline: parallel kernels
// are statically chunked; serial kernels run on one core (the other cores
// are free for other work and are not charged).
func TimeMulticore(k *kernels.Kernel, mc cpu.MulticoreConfig) (*CPURun, error) {
	if !k.Parallel {
		r, err := TimeSingleCore(k, mc.Core)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	// The chunk programs are derived deterministically from the kernel's
	// full program, so hashing the latter (plus the multicore config)
	// contents-addresses the whole parallel run. Treat the result as
	// read-only (shared across cache hits).
	v, err := memoDo("cpuN", k, mc.Fingerprint, func() (any, error) {
		return timeMulticoreUncached(k, mc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*CPURun), nil
}

func timeMulticoreUncached(k *kernels.Kernel, mc cpu.MulticoreConfig) (*CPURun, error) {
	res, err := cpu.TimeParallel(mc, func(chunk, cores int) (*cpu.Result, error) {
		prog, _, err := k.ChunkProgram(chunk, cores)
		if err != nil {
			return nil, err
		}
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		return cpu.Time(mc.Core, prog, k.NewMemory(Seed), hier, MaxSteps)
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	p := energy.DefaultCPUParams()
	return &CPURun{Cycles: res.Cycles, Result: res, EnergyNJ: energy.CPUEnergy(res, mc.Cores, p), Cores: mc.Cores}, nil
}

// MESARun is a MESA-accelerated execution of one kernel.
type MESARun struct {
	Backend   string
	Qualified bool

	// TotalCycles covers the whole hot loop: the profiling iterations that
	// ran on the CPU while MESA monitored, the configuration latency, and
	// the accelerated execution.
	TotalCycles        float64
	AccelCycles        float64
	OverheadCycles     float64
	CPUProfilingCycles float64

	Iterations uint64
	Region     *core.RegionReport
	Report     *core.Report

	EnergyNJ  float64
	Breakdown energy.Breakdown
}

// MESAOptions tweaks a RunMESA invocation.
type MESAOptions struct {
	DisableOptimization bool // no iterative reconfiguration rounds
	DisableLoopOpts     bool // no tiling, no pipelining (Figure 12's "no opt")

	// Mapper overrides the placement strategy for this run; nil uses the
	// suite-wide default (SetMapperStrategy).
	Mapper mapping.Strategy
}

// RunMESA executes a kernel under a MESA controller on the given backend.
// cpuPerIter is the single-core CPU cost per loop iteration, used to charge
// the profiling iterations executed before offload. A kernel whose hot loop
// fails detection or mapping is reported with Qualified=false and CPU-only
// cycles.
//
// The controller run and result verification are memoized across experiments
// (cpuPerIter only affects the cheap derivation below, never the simulation,
// so call sites with different per-iteration CPU costs still share one
// simulation). The shared Report must be treated as read-only.
func RunMESA(k *kernels.Kernel, be *accel.Config, cpuPerIter float64, o MESAOptions) (*MESARun, error) {
	prog, loopStart, err := k.Program()
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", k.Name, be.Name, err)
	}
	opts := mesaControllerOptions(k, loopStart, be, o)
	v, err := memoDo("mesa", k, opts.Fingerprint, func() (any, error) {
		return runMESAUncached(k, be, prog, opts)
	})
	if err != nil {
		return nil, err
	}
	return deriveMESARun(k, be, cpuPerIter, v.(*core.Report)), nil
}

// mesaControllerOptions translates a RunMESA invocation into controller
// options. The strategy participates in opts.Fingerprint, so runs under
// different mappers never share a memo entry.
func mesaControllerOptions(k *kernels.Kernel, loopStart uint32, be *accel.Config, o MESAOptions) core.Options {
	opts := core.DefaultOptions(be)
	if k.Parallel {
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
	}
	if o.DisableOptimization {
		opts.MaxOptimizeRounds = 0
	}
	if o.DisableLoopOpts {
		opts.EnableTiling = false
		opts.EnablePipelining = false
	}
	if o.Mapper != nil {
		opts.Mapper = o.Mapper
	} else {
		opts.Mapper = MapperStrategy()
	}
	return opts
}

// runMESAUncached is the memoized body of RunMESA: one full controller run
// plus result verification. The batched sweep path reuses it with
// opts.EngineFactory pointed at a shared lockstep batch; everything else is
// identical to the scalar path.
func runMESAUncached(k *kernels.Kernel, be *accel.Config, prog *isa.Program, opts core.Options) (any, error) {
	ctl := core.NewController(opts)
	m := k.NewMemory(Seed)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	report, _, err := ctl.Run(prog, m, hier, MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", k.Name, be.Name, err)
	}
	if err := k.Verify(m); err != nil {
		return nil, fmt.Errorf("%s on %s: verification failed: %w", k.Name, be.Name, err)
	}
	return report, nil
}

// deriveMESARun projects a (possibly cached) controller report onto one
// call site's MESARun: cpuPerIter only affects this cheap derivation, never
// the simulation.
func deriveMESARun(k *kernels.Kernel, be *accel.Config, cpuPerIter float64, report *core.Report) *MESARun {
	run := &MESARun{Backend: be.Name, Report: report}
	if len(report.Regions) == 0 {
		run.Qualified = false
		run.TotalCycles = cpuPerIter * float64(k.N)
		return run
	}
	rr := report.Regions[0]
	run.Qualified = true
	run.Region = rr
	run.Iterations = rr.Iterations
	run.AccelCycles = rr.AccelCycles
	run.OverheadCycles = rr.OverheadCycles
	profIters := float64(k.N) - float64(rr.Iterations)
	if profIters < 0 {
		profIters = 0
	}
	run.CPUProfilingCycles = profIters * cpuPerIter
	run.TotalCycles = run.AccelCycles + run.OverheadCycles + run.CPUProfilingCycles

	run.Breakdown = energy.AccelEnergy(be, rr.Activity)
	cfgNJ := energy.ConfigEnergy(run.OverheadCycles, be.ClockGHz)
	profNJ := profIters * cpuPerIter * energy.DefaultCPUParams().StaticWPerCore / be.ClockGHz
	run.Breakdown.ControlNJ += cfgNJ
	run.EnergyNJ = run.Breakdown.TotalNJ() + profNJ
	return run
}

// geomean returns the geometric mean of the values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
