package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"mesa/internal/isa"
	"mesa/internal/kernels"
)

// TestMemoKeyFromFillStability pins the memo key construction byte-for-byte.
// Keys address the on-disk result store, so an accidental layout change
// would silently orphan every persisted entry: the literal hash below must
// only ever change deliberately.
func TestMemoKeyFromFillStability(t *testing.T) {
	got := memoKeyFromFill("kindA", func(h io.Writer) { io.WriteString(h, "payload") })
	const want = "94fd61c46be242c6b82760b8af8d7a781f40995c72cbbeeb782e15f054a40901"
	if got != want {
		t.Errorf("memoKeyFromFill layout changed:\n got %s\nwant %s", got, want)
	}
	if again := memoKeyFromFill("kindA", func(h io.Writer) { io.WriteString(h, "payload") }); again != got {
		t.Errorf("memoKeyFromFill not deterministic: %s vs %s", got, again)
	}
	if other := memoKeyFromFill("kindB", func(h io.Writer) { io.WriteString(h, "payload") }); other == got {
		t.Error("distinct kinds produced the same key")
	}
}

// TestMemoKeyLayout rebuilds memoKey's documented layout by hand — kind,
// kernel identity, program base and encoded words, literal seed/step bounds,
// config fingerprint — and checks the production path produces the identical
// digest. This is the guard that the memoKeyFromFill recomposition did not
// change what the key hashes.
func TestMemoKeyLayout(t *testing.T) {
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	got, err := memoKey("mesa", k, func(h io.Writer) { io.WriteString(h, "CFG") })
	if err != nil {
		t.Fatal(err)
	}

	h := sha256.New()
	fmt.Fprintf(h, "mesa|%s|%d|%t|base%d|", k.Name, k.N, k.Parallel, prog.Base)
	var word [4]byte
	for _, in := range prog.Insts {
		enc, err := isa.Encode(in)
		if err != nil {
			fmt.Fprintf(h, "raw%+v|", in)
			continue
		}
		binary.LittleEndian.PutUint32(word[:], enc)
		h.Write(word[:])
	}
	io.WriteString(h, "|seed42|steps50000000|CFG")
	if want := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Errorf("memoKey layout drifted:\n got %s\nwant %s", got, want)
	}
}

// TestMemoDoBatch exercises the batch cache path on a private cache: dedupe,
// per-key hit/miss accounting identical to per-key do(), error caching, and
// the missing-outcome guard.
func TestMemoDoBatch(t *testing.T) {
	c := newMemoCache(0)
	calls := 0
	boom := errors.New("boom")
	run := func(miss []string) map[string]memoOutcome {
		calls++
		out := make(map[string]memoOutcome, len(miss))
		for _, k := range miss {
			if k == "err" {
				out[k] = memoOutcome{err: boom}
				continue
			}
			out[k] = memoOutcome{val: "v:" + k}
		}
		return out
	}

	got := c.doBatch([]string{"a", "b", "a", "err"}, nil, run)
	if calls != 1 {
		t.Fatalf("run called %d times, want 1", calls)
	}
	if len(got) != 3 || got["a"].val != "v:a" || got["b"].val != "v:b" {
		t.Fatalf("unexpected outcomes: %+v", got)
	}
	if got["err"].err != boom {
		t.Fatalf("error outcome = %v, want boom", got["err"].err)
	}
	if c.misses != 3 || c.hits != 0 {
		t.Fatalf("misses=%d hits=%d after cold batch, want 3/0", c.misses, c.hits)
	}

	// Second batch: everything (including the cached error) is a hit.
	got = c.doBatch([]string{"a", "err", "b"}, nil, run)
	if calls != 1 {
		t.Fatalf("run re-invoked on a fully warm batch")
	}
	if got["err"].err != boom || got["a"].val != "v:a" {
		t.Fatalf("warm outcomes differ: %+v", got)
	}
	if c.misses != 3 || c.hits != 3 {
		t.Fatalf("misses=%d hits=%d after warm batch, want 3/3", c.misses, c.hits)
	}

	// Partial overlap: only the new key reaches run.
	var lastMiss []string
	c.doBatch([]string{"a", "c"}, nil, func(miss []string) map[string]memoOutcome {
		lastMiss = append([]string(nil), miss...)
		return map[string]memoOutcome{"c": {val: "v:c"}}
	})
	if len(lastMiss) != 1 || lastMiss[0] != "c" {
		t.Fatalf("warm keys leaked into run: %v", lastMiss)
	}

	// A per-key do() for a batch-cached key is a pure hit.
	v, err := c.do("c", nil, func() (any, error) {
		t.Error("do() recomputed a batch-cached key")
		return nil, nil
	})
	if err != nil || v != "v:c" {
		t.Fatalf("do() after batch = %v, %v", v, err)
	}

	// A run that omits a key publishes an error instead of hanging waiters.
	got = c.doBatch([]string{"d"}, nil, func(miss []string) map[string]memoOutcome {
		return map[string]memoOutcome{}
	})
	if got["d"].err == nil || !strings.Contains(got["d"].err.Error(), "no result") {
		t.Fatalf("missing outcome not surfaced: %+v", got["d"])
	}
}

// TestMemoDoBatchPanic pins the poisoning contract: a panicking batch run
// propagates, waiters joined to the flight get an error naming the panic,
// and the affected keys are evicted so the next request recomputes.
func TestMemoDoBatchPanic(t *testing.T) {
	c := newMemoCache(0)
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	var batchPanic any
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { batchPanic = recover() }()
		c.doBatch([]string{"p"}, nil, func(miss []string) map[string]memoOutcome {
			close(entered)
			<-release
			panic("kaboom")
		})
	}()

	var waitVal any
	var waitErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-entered
		waitVal, waitErr = c.do("p", nil, func() (any, error) {
			t.Error("waiter started a second flight")
			return nil, nil
		})
	}()

	// Release the panic only once the waiter has demonstrably joined the
	// flight (the hit counter advances under the lock before it blocks on
	// the entry), so it must be served by the poisoning path.
	<-entered
	for {
		c.mu.Lock()
		joined := c.hits == 1
		c.mu.Unlock()
		if joined {
			break
		}
	}
	close(release)
	wg.Wait()

	if batchPanic == nil {
		t.Fatal("doBatch swallowed the panic")
	}

	if waitVal != nil || waitErr == nil || !strings.Contains(waitErr.Error(), "kaboom") {
		t.Errorf("waiter got (%v, %v), want error naming the panic", waitVal, waitErr)
	}
	// The entry must be gone: a fresh request recomputes.
	ran := false
	v, err := c.do("p", nil, func() (any, error) { ran = true; return 7, nil })
	if !ran || err != nil || v != 7 {
		t.Errorf("post-panic recompute: ran=%v v=%v err=%v", ran, v, err)
	}
}
