package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/baseline/opencgra"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// Figure12Kernels is the subset of eight Rodinia benchmarks compatible with
// the OpenCGRA comparison (compute loops the CGRA scheduler can map).
var Figure12Kernels = []string{
	"nn", "kmeans", "hotspot", "cfd", "backprop", "pathfinder", "lud", "streamcluster",
}

// Figure12Row compares per-iteration execution between OpenCGRA's
// modulo-scheduled mapping and MESA's spatial mapping, with and without
// MESA's loop-level optimizations.
type Figure12Row struct {
	Kernel string
	Ops    int // loop-body operations per iteration

	// Cycles per iteration under each scheme.
	MESANoOptCPI float64
	OpenCGRACPI  float64
	MESAOptCPI   float64

	// The figure's metric: per-iteration IPC (ops / cycles-per-iteration).
	MESANoOptIPC float64
	OpenCGRAIPC  float64
	MESAOptIPC   float64
}

// Figure12Result reproduces Figure 12: simulated IPC against a similarly
// configured OpenCGRA baseline. Without optimizations, MESA's single-pass
// hardware mapping falls slightly behind the compiler's modulo schedule in
// most benchmarks; with tiling/pipelining enabled it easily outperforms.
type Figure12Result struct {
	Rows []Figure12Row

	GeomeanNoOptRatio float64 // MESA-no-opt IPC / OpenCGRA IPC
	GeomeanOptRatio   float64 // MESA-opt IPC / OpenCGRA IPC
}

// Figure12 runs the experiment, fanning the per-kernel comparisons out over
// the sweep worker pool.
func Figure12() (*Figure12Result, error) {
	res := &Figure12Result{}
	rows, err := runAll(len(Figure12Kernels), func(i int) (Figure12Row, error) {
		name := Figure12Kernels[i]
		k, err := kernels.ByName(name)
		if err != nil {
			return Figure12Row{}, err
		}
		single, err := TimeSingleCore(k, cpu.DefaultBOOM())
		if err != nil {
			return Figure12Row{}, err
		}
		cpuPerIter := single.Cycles / float64(k.N)

		be := accel.M128()
		noOpt, err := RunMESA(k, be, cpuPerIter, MESAOptions{DisableLoopOpts: true, DisableOptimization: true})
		if err != nil {
			return Figure12Row{}, err
		}
		opt, err := RunMESA(k, be, cpuPerIter, MESAOptions{})
		if err != nil {
			return Figure12Row{}, err
		}
		if !noOpt.Qualified || !opt.Qualified {
			return Figure12Row{}, fmt.Errorf("figure12: %s did not qualify", name)
		}

		// OpenCGRA: modulo-schedule the same LDFG on a same-sized array.
		// Without its loop-optimization features the tool schedules one
		// iteration at a time, so the per-iteration cost is the schedule
		// length.
		ldfg := noOpt.Region.LDFG
		sched, err := opencgra.ModuloSchedule(ldfg.Graph, opencgra.Default(be.Rows, be.Cols))
		if err != nil {
			return Figure12Row{}, err
		}

		ops := ldfg.Graph.Len()
		row := Figure12Row{
			Kernel:       name,
			Ops:          ops,
			MESANoOptCPI: noOpt.Region.FinalAvgIter,
			OpenCGRACPI:  sched.Length,
			MESAOptCPI:   opt.Region.FinalII,
		}
		row.MESANoOptIPC = float64(ops) / row.MESANoOptCPI
		row.OpenCGRAIPC = float64(ops) / row.OpenCGRACPI
		row.MESAOptIPC = float64(ops) / row.MESAOptCPI
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var noOptRatios, optRatios []float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		noOptRatios = append(noOptRatios, row.MESANoOptIPC/row.OpenCGRAIPC)
		optRatios = append(optRatios, row.MESAOptIPC/row.OpenCGRAIPC)
	}
	res.GeomeanNoOptRatio = geomean(noOptRatios)
	res.GeomeanOptRatio = geomean(optRatios)
	return res, nil
}

// Render prints the figure as a table.
func (r *Figure12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: per-iteration IPC vs OpenCGRA (M-128-sized array)\n")
	b.WriteString(fmt.Sprintf("%-14s %4s %12s %12s %12s\n",
		"benchmark", "ops", "MESA no-opt", "OpenCGRA", "MESA opt"))
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-14s %4d %12.2f %12.2f %12.2f\n",
			row.Kernel, row.Ops, row.MESANoOptIPC, row.OpenCGRAIPC, row.MESAOptIPC))
	}
	b.WriteString(fmt.Sprintf("geomean IPC ratio vs OpenCGRA: no-opt %.2fx, opt %.2fx\n",
		r.GeomeanNoOptRatio, r.GeomeanOptRatio))
	b.WriteString("paper: MESA falls slightly behind without optimizations (ratio < 1),\n")
	b.WriteString("       easily outperforms with loop parallelization enabled (ratio >> 1)\n")
	return b.String()
}
