package experiments

import (
	"fmt"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// Figure15PECounts is the swept PE range for the nn scaling study.
var Figure15PECounts = []int{16, 32, 64, 128, 256, 512}

// Figure15Point is one point of the scaling curves.
type Figure15Point struct {
	PEs int

	// Speedups normalized to the 16-PE default configuration.
	Default     float64
	IdealMemory float64
	IdealPE     float64

	Tiles int
	Bound string
}

// Figure15Result reproduces Figure 15: MESA performance scaling with PE
// count for the nn kernel, with an "ideal memory" series (infinite memory
// ports) and the ideal linear-scaling reference. The paper observes
// near-perfect scaling until memory bottlenecks beyond 128 PEs.
type Figure15Result struct {
	Points []Figure15Point

	// SaturationPEs is the first configuration where the default series
	// falls below 70% of ideal-memory performance (the bottleneck knee).
	SaturationPEs int
}

// Figure15 runs the experiment.
func Figure15() (*Figure15Result, error) {
	k, err := kernels.ByName("nn")
	if err != nil {
		return nil, err
	}
	single, err := TimeSingleCore(k, cpu.DefaultBOOM())
	if err != nil {
		return nil, err
	}
	cpuPerIter := single.Cycles / float64(k.N)

	type meas struct {
		cycles float64
		tiles  int
		bound  string
	}
	measure := func(be *accel.Config) (meas, error) {
		run, err := RunMESA(k, be, cpuPerIter, MESAOptions{})
		if err != nil {
			return meas{}, err
		}
		if !run.Qualified {
			return meas{}, fmt.Errorf("figure15: nn did not qualify on %s", be.Name)
		}
		return meas{cycles: run.TotalCycles, tiles: run.Region.Tiles, bound: run.Region.Bound}, nil
	}

	res := &Figure15Result{}
	// Each PE count is an independent pair of simulations; fan them out and
	// normalize against the first configuration once all points are in.
	type pair struct{ def, ideal meas }
	pairs, err := runAll(len(Figure15PECounts), func(i int) (pair, error) {
		pes := Figure15PECounts[i]
		def, err := measure(accel.WithPEs(pes))
		if err != nil {
			return pair{}, err
		}
		ideal := accel.WithPEs(pes)
		ideal.Name += "-idealmem"
		// Enough ports that no access ever waits (the kernel issues at most
		// a few accesses per iteration per tile).
		ideal.MemPorts = 512
		im, err := measure(ideal)
		if err != nil {
			return pair{}, err
		}
		return pair{def: def, ideal: im}, nil
	})
	if err != nil {
		return nil, err
	}
	base := pairs[0].def.cycles
	for i, p := range pairs {
		res.Points = append(res.Points, Figure15Point{
			PEs:         Figure15PECounts[i],
			Default:     base / p.def.cycles,
			IdealMemory: base / p.ideal.cycles,
			IdealPE:     float64(Figure15PECounts[i]) / float64(Figure15PECounts[0]),
			Tiles:       p.def.tiles,
			Bound:       p.def.bound,
		})
	}
	for _, p := range res.Points {
		if p.Default < 0.7*p.IdealMemory {
			res.SaturationPEs = p.PEs
			break
		}
	}
	return res, nil
}

// Render prints the scaling series.
func (r *Figure15Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 15: nn performance scaling with PE count (normalized to 16 PEs)\n")
	b.WriteString(fmt.Sprintf("%6s %10s %12s %10s %6s %10s\n",
		"PEs", "default", "ideal mem", "ideal PE", "tiles", "bound"))
	for _, p := range r.Points {
		b.WriteString(fmt.Sprintf("%6d %9.2fx %11.2fx %9.2fx %6d %10s\n",
			p.PEs, p.Default, p.IdealMemory, p.IdealPE, p.Tiles, p.Bound))
	}
	if r.SaturationPEs > 0 {
		b.WriteString(fmt.Sprintf("memory bottleneck visible from %d PEs (paper: beyond 128 PEs)\n",
			r.SaturationPEs))
	} else {
		b.WriteString("no memory bottleneck observed in the swept range\n")
	}
	return b.String()
}
