package experiments

import (
	"bytes"
	"testing"

	"mesa/internal/obs"
)

// TestStatsWorkerInvariant pins the contract behind mesabench -stats for the
// simulation-result cache section: with the cache at its default capacity
// (nothing evicted), the single-flight design makes sim_cache_hits and
// sim_cache_misses worker-count-invariant (misses = distinct keys, hits =
// lookups − misses), so the serialized report byte-compares across -parallel
// settings.
//
// sim_cache_entries and sim_cache_evictions are deliberately EXCLUDED from
// the byte comparison: they are worker-count-VARIANT by construction. Once
// the LRU is bounded below the working set, which key is resident (entries)
// and how many were displaced (evictions) depend on the order concurrent
// workers inserted them — two 4-worker runs can legally disagree with each
// other, let alone with a serial run. Only the variant pair is dropped;
// every other counter must still match byte for byte.
func TestStatsWorkerInvariant(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	invariantMemoMetrics := func() []obs.Metric {
		variant := map[string]bool{}
		for _, name := range SimMemoVariantMetricNames() {
			variant[name] = true
		}
		var kept []obs.Metric
		for _, m := range SimMemoMetrics() {
			if !variant[m.Name] {
				kept = append(kept, m)
			}
		}
		return kept
	}

	take := func(workers int) string {
		ResetPoolStats()
		ResetSimMemo()
		SetWorkers(workers)
		if _, err := Figure13(); err != nil {
			t.Fatalf("figure13 with workers=%d: %v", workers, err)
		}
		reg := obs.NewRegistry()
		reg.Add("experiments.pool", PoolMetrics()...)
		reg.Add("experiments.memo", invariantMemoMetrics()...)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := take(1)
	parallel := take(4)
	if serial != parallel {
		t.Errorf("invariant stats differ between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestPoolStatsWorkerInvariant pins the contract behind mesabench -stats:
// the pool's snapshot holds only worker-count-invariant counters, so the
// serialized report is byte-identical whether a sweep ran on 1 worker or 4.
func TestPoolStatsWorkerInvariant(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	take := func(workers int) string {
		ResetPoolStats()
		SetWorkers(workers)
		if _, err := Figure13(); err != nil {
			t.Fatalf("figure13 with workers=%d: %v", workers, err)
		}
		reg := obs.NewRegistry()
		reg.Add("experiments.pool", PoolMetrics()...)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := take(1)
	parallel := take(4)
	if serial != parallel {
		t.Errorf("pool stats differ between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	// The snapshot must have actually observed the sweep.
	var saw bool
	for _, m := range PoolMetrics() {
		if m.Name == "tasks" && m.Value > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("pool stats recorded no tasks for a fanned-out sweep")
	}
}
