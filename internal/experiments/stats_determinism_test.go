package experiments

import (
	"bytes"
	"testing"

	"mesa/internal/obs"
)

// TestPoolStatsWorkerInvariant pins the contract behind mesabench -stats:
// the pool's snapshot holds only worker-count-invariant counters, so the
// serialized report is byte-identical whether a sweep ran on 1 worker or 4.
func TestPoolStatsWorkerInvariant(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	take := func(workers int) string {
		ResetPoolStats()
		SetWorkers(workers)
		if _, err := Figure13(); err != nil {
			t.Fatalf("figure13 with workers=%d: %v", workers, err)
		}
		reg := obs.NewRegistry()
		reg.Add("experiments.pool", PoolMetrics()...)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := take(1)
	parallel := take(4)
	if serial != parallel {
		t.Errorf("pool stats differ between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	// The snapshot must have actually observed the sweep.
	var saw bool
	for _, m := range PoolMetrics() {
		if m.Name == "tasks" && m.Value > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("pool stats recorded no tasks for a fanned-out sweep")
	}
}
