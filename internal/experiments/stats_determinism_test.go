package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"mesa/internal/obs"
)

// TestStatsWorkerInvariant pins the contract behind mesabench -stats for the
// simulation-result cache section: with the cache at its default capacity
// (nothing evicted), the single-flight design makes sim_cache_hits and
// sim_cache_misses worker-count-invariant (misses = distinct keys, hits =
// lookups − misses), so the serialized report byte-compares across -parallel
// settings.
//
// sim_cache_entries and sim_cache_evictions are deliberately EXCLUDED from
// the byte comparison: they are worker-count-VARIANT by construction. Once
// the LRU is bounded below the working set, which key is resident (entries)
// and how many were displaced (evictions) depend on the order concurrent
// workers inserted them — two 4-worker runs can legally disagree with each
// other, let alone with a serial run. Only the variant pair is dropped;
// every other counter must still match byte for byte.
func TestStatsWorkerInvariant(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	// Build the report exactly as mesabench -stats does — including the
	// wall-clock timing histograms — then strip every metric declared
	// worker-count-variant before byte-comparing. Only declared names are
	// dropped; every other counter must still match byte for byte.
	variant := map[string]bool{}
	for _, name := range StatsVariantMetricNames() {
		variant[name] = true
	}

	take := func(workers int) string {
		ResetPoolStats()
		ResetSimMemo()
		ResetSimTiming()
		SetWorkers(workers)
		if _, err := Figure13(); err != nil {
			t.Fatalf("figure13 with workers=%d: %v", workers, err)
		}
		reg := obs.NewRegistry()
		reg.Add("experiments.pool", PoolMetrics()...)
		reg.Add("experiments.memo", SimMemoMetrics()...)
		reg.AddHistogram("experiments.timing", SimTimingHistograms()...)
		var kept []obs.Section
		for _, sec := range reg.Report() {
			out := obs.Section{Name: sec.Name}
			for _, m := range sec.Metrics {
				if !variant[m.Name] {
					out.Metrics = append(out.Metrics, m)
				}
			}
			kept = append(kept, out)
		}
		data, err := json.MarshalIndent(kept, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	serial := take(1)
	parallel := take(4)
	if serial != parallel {
		t.Errorf("invariant stats differ between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestStatsVariantNamesExhaustive pins StatsVariantMetricNames from both
// directions: every declared name must exist in a real stats report (a stale
// entry would silently stop filtering anything), and every metric in the
// wall-clock timing section must be declared variant (a new histogram whose
// summaries leak into byte-compares would break `-parallel N` identity).
func TestStatsVariantNamesExhaustive(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("experiments.memo", SimMemoMetrics()...)
	reg.AddHistogram("experiments.timing", SimTimingHistograms()...)

	present := map[string]bool{}
	for _, sec := range reg.Report() {
		for _, m := range sec.Metrics {
			present[m.Name] = true
		}
	}
	variant := map[string]bool{}
	for _, name := range StatsVariantMetricNames() {
		if variant[name] {
			t.Errorf("StatsVariantMetricNames lists %q twice", name)
		}
		variant[name] = true
		if !present[name] {
			t.Errorf("declared variant metric %q does not appear in the stats report", name)
		}
	}
	for _, sec := range reg.Report() {
		if sec.Name != "experiments.timing" {
			continue
		}
		for _, m := range sec.Metrics {
			if !variant[m.Name] {
				t.Errorf("wall-clock metric %q is not declared in StatsVariantMetricNames", m.Name)
			}
		}
	}
}

// TestPoolStatsWorkerInvariant pins the contract behind mesabench -stats:
// the pool's snapshot holds only worker-count-invariant counters, so the
// serialized report is byte-identical whether a sweep ran on 1 worker or 4.
func TestPoolStatsWorkerInvariant(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	take := func(workers int) string {
		ResetPoolStats()
		SetWorkers(workers)
		if _, err := Figure13(); err != nil {
			t.Fatalf("figure13 with workers=%d: %v", workers, err)
		}
		reg := obs.NewRegistry()
		reg.Add("experiments.pool", PoolMetrics()...)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := take(1)
	parallel := take(4)
	if serial != parallel {
		t.Errorf("pool stats differ between workers=1 and workers=4\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	// The snapshot must have actually observed the sweep.
	var saw bool
	for _, m := range PoolMetrics() {
		if m.Name == "tasks" && m.Value > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("pool stats recorded no tasks for a fanned-out sweep")
	}
}
