package experiments

import (
	"bytes"
	"sync"
	"testing"

	"mesa/internal/accel"
	"mesa/internal/cpu"
	"mesa/internal/kernels"
)

// sweepOutputs renders the full experiment set — every figure, Table 2, the
// ablations, the attribution report, and the BENCH snapshot JSON — into one
// name→bytes map for byte comparison.
func sweepOutputs(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	add := func(name string, f func() (string, error)) {
		t.Helper()
		s, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	add("fig11", func() (string, error) {
		r, err := Figure11()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("fig12", func() (string, error) {
		r, err := Figure12()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("fig13", func() (string, error) {
		r, err := Figure13()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("fig14", func() (string, error) {
		r, err := Figure14()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("fig15", func() (string, error) {
		r, err := Figure15()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("fig16", func() (string, error) {
		r, err := Figure16()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("table2", func() (string, error) {
		r, err := Table2()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("ablations", RenderAblations)
	add("attrib", func() (string, error) {
		r, err := Attrib()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	add("BENCH.json", func() (string, error) {
		snap, err := CollectBench()
		if err != nil {
			return "", err
		}
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			return "", err
		}
		return buf.String(), nil
	})
	return out
}

// TestSimMemoDifferential is the cache-correctness gate: the full experiment
// set must be byte-identical when run cold (empty cache), warm (cache
// pre-populated by the cold run), and with the cache disabled entirely. A
// single diverging byte would mean a cache key ignores something the
// simulation depends on.
func TestSimMemoDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-sweep differential in -short mode")
	}
	ResetSimMemo()
	cold := sweepOutputs(t)
	warm := sweepOutputs(t)

	SetSimMemoEnabled(false)
	uncached := sweepOutputs(t)
	SetSimMemoEnabled(true)

	for name, want := range cold {
		if warm[name] != want {
			t.Errorf("%s: warm (cached) output differs from cold run", name)
		}
		if uncached[name] != want {
			t.Errorf("%s: -nocache output differs from cached run", name)
		}
	}

	// The warm pass must have been served from cache: no new entries, only
	// hits. (The uncached pass must not have touched the counters at all.)
	m := SimMemoMetrics()
	byName := map[string]float64{}
	for _, metric := range m {
		byName[metric.Name] = metric.Value
	}
	if byName["sim_cache_entries"] != byName["sim_cache_misses"] {
		t.Errorf("entries %v != misses %v: single-flight accounting broken",
			byName["sim_cache_entries"], byName["sim_cache_misses"])
	}
	if byName["sim_cache_hits"] == 0 {
		t.Error("warm sweep recorded no cache hits")
	}
}

// TestSimMemoSingleFlight pins the concurrency contract: N concurrent
// requests for one uncached configuration run the simulation once and share
// the identical result pointer, and the hit/miss counters come out
// worker-count-invariant (misses = distinct keys).
func TestSimMemoSingleFlight(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	runs := make([]*CPURun, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := TimeSingleCore(k, cpu.DefaultBOOM())
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if runs[i] != runs[0] {
			t.Fatalf("goroutine %d got a different result pointer: simulation ran more than once", i)
		}
	}
	m := map[string]float64{}
	for _, metric := range SimMemoMetrics() {
		m[metric.Name] = metric.Value
	}
	if m["sim_cache_misses"] != 1 || m["sim_cache_hits"] != n-1 {
		t.Errorf("counters hits=%v misses=%v, want %d/1", m["sim_cache_hits"], m["sim_cache_misses"], n-1)
	}
}

// TestSimMemoKeyedByConfig guards against over-sharing: the same kernel under
// different backend configurations must occupy distinct cache entries.
func TestSimMemoKeyedByConfig(t *testing.T) {
	ResetSimMemo()
	defer ResetSimMemo()
	k, err := kernels.ByName("nn")
	if err != nil {
		t.Fatal(err)
	}
	r128, err := RunMESA(k, accel.M128(), 0, MESAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r512, err := RunMESA(k, accel.M512(), 0, MESAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r128.Report == r512.Report {
		t.Error("M-128 and M-512 runs shared one cached report")
	}
	m := map[string]float64{}
	for _, metric := range SimMemoMetrics() {
		m[metric.Name] = metric.Value
	}
	if m["sim_cache_misses"] != 2 {
		t.Errorf("misses = %v, want 2 (distinct configs must not share entries)", m["sim_cache_misses"])
	}
	// Identical invocation with a different cpuPerIter still shares the
	// simulation (the CPU-profiling charge is derived after the cache).
	r128b, err := RunMESA(k, accel.M128(), 123, MESAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r128b.Report != r128.Report {
		t.Error("same config did not share the cached report")
	}
	if r128b.CPUProfilingCycles == r128.CPUProfilingCycles && r128.Iterations < uint64(k.N) {
		t.Error("cpuPerIter derivation did not run per call")
	}
}
