package experiments

import (
	"strings"
	"testing"

	"mesa/internal/genkern"
)

// TestFuzzSweepDeterministic: the rendered fuzz report is byte-identical
// across worker counts, clean on the default mix, and seed-ordered.
func TestFuzzSweepDeterministic(t *testing.T) {
	defer SetWorkers(Workers())

	opts := FuzzOptions{Seeds: 8, FirstSeed: 3, Mix: genkern.DefaultMix()}
	SetWorkers(1)
	serial, err := FuzzSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	wide, err := FuzzSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := RenderFuzz(wide), RenderFuzz(serial); got != want {
		t.Errorf("report differs across worker counts:\n-- serial --\n%s\n-- wide --\n%s", want, got)
	}
	if serial.Mismatches != 0 {
		t.Fatalf("default mix diverged:\n%s", RenderFuzz(serial))
	}
	for i, r := range serial.Results {
		if r.Seed != opts.FirstSeed+int64(i) {
			t.Fatalf("result %d carries seed %d, want %d", i, r.Seed, opts.FirstSeed+int64(i))
		}
		if r.Engines == 0 {
			t.Fatalf("seed %d checked zero engines", r.Seed)
		}
	}
	if !strings.Contains(RenderFuzz(serial), "PASS") {
		t.Errorf("clean sweep should render PASS:\n%s", RenderFuzz(serial))
	}
}
